package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunTinyMatrixTable(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-families", "gnp", "-sizes", "10", "-seeds", "2",
		"-scheds", "sync", "-faults", "none,lossy:0.1", "-quiet"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"family", "lossy:0.1", "gnp"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, out.String())
		}
	}
}

func TestRunJSONParses(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-families", "gnp", "-sizes", "10", "-seeds", "2",
		"-scheds", "sync", "-faults", "none,targeted:root", "-format", "json",
		"-quiet"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var m struct {
		TotalRuns int `json:"totalRuns"`
		Cells     []struct {
			Fault      string `json:"fault"`
			Legitimate bool   `json:"legitimate"`
		} `json:"cells"`
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &m); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if m.TotalRuns != 4 || len(m.Cells) != 2 || len(m.Runs) != 4 {
		t.Fatalf("runs=%d cells=%d perRun=%d", m.TotalRuns, len(m.Cells), len(m.Runs))
	}
	for _, c := range m.Cells {
		if !c.Legitimate {
			t.Fatalf("cell %q not legitimate", c.Fault)
		}
	}
}

// The matrix must be byte-identical across worker counts: seeding is
// per-run, aggregation is in expansion order, and no timing leaks into
// the output.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	invoke := func(workers string) string {
		var out, errOut bytes.Buffer
		code := run([]string{"-families", "gnp,ring+chords", "-sizes", "10",
			"-scheds", "sync", "-seeds", "2", "-faults", "none,corrupt:3",
			"-format", "json", "-workers", workers, "-quiet"}, &out, &errOut)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errOut.String())
		}
		return out.String()
	}
	serial := invoke("1")
	parallel := invoke("8")
	if serial != parallel {
		t.Fatal("matrix JSON differs between -workers 1 and -workers 8")
	}
}

// Acceptance: `-backend live` and `-backend tcp` complete a small
// matrix end to end through the same engine as the sim default.
func TestRunWallClockBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock backends")
	}
	for _, backend := range []string{"live", "tcp"} {
		var out, errOut bytes.Buffer
		// No -scheds: the default sync,async axis must shrink to sync for
		// a wall-clock backend instead of expanding rejected async cells.
		code := run([]string{"-backend", backend, "-families", "wheel",
			"-sizes", "8", "-seeds", "1",
			"-format", "json", "-quiet"}, &out, &errOut)
		if code != 0 {
			t.Fatalf("backend %s: exit %d: %s", backend, code, errOut.String())
		}
		var m struct {
			Cells []struct {
				Backend     string `json:"backend"`
				Converged   bool   `json:"converged"`
				Legitimate  bool   `json:"legitimate"`
				WithinBound bool   `json:"withinBound"`
			} `json:"cells"`
		}
		if err := json.Unmarshal(out.Bytes(), &m); err != nil {
			t.Fatalf("backend %s: bad JSON: %v", backend, err)
		}
		if len(m.Cells) != 1 {
			t.Fatalf("backend %s: %d cells", backend, len(m.Cells))
		}
		c := m.Cells[0]
		if c.Backend != backend || !c.Converged || !c.Legitimate || !c.WithinBound {
			t.Fatalf("backend %s: cell %+v", backend, c)
		}
	}
}

// -suppress off,on expands the paired suppression axis: same seeds, the
// on cells carry the suppression counters, the off cells serialize
// without them (baseline byte-identity contract).
func TestRunSuppressionAxis(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-families", "gnp", "-sizes", "12", "-seeds", "2",
		"-scheds", "sync", "-suppress", "off,on", "-format", "json",
		"-quiet"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var m struct {
		Cells []struct {
			Suppress      string  `json:"suppress"`
			Legitimate    bool    `json:"legitimate"`
			WithinBound   bool    `json:"withinBound"`
			SuppressedAvg float64 `json:"searchesSuppressedAvg"`
		} `json:"cells"`
		Runs []struct {
			Seed int64 `json:"seed"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &m); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(m.Cells) != 2 {
		t.Fatalf("cells=%d, want off+on", len(m.Cells))
	}
	off, on := m.Cells[0], m.Cells[1]
	if off.Suppress != "" || on.Suppress != "on" {
		t.Fatalf("suppress labels %q/%q", off.Suppress, on.Suppress)
	}
	if !off.Legitimate || !on.Legitimate || !off.WithinBound || !on.WithinBound {
		t.Fatalf("paired cells broke the guarantee: %+v %+v", off, on)
	}
	if off.SuppressedAvg != 0 || on.SuppressedAvg <= 0 {
		t.Fatalf("suppressed averages off=%v on=%v", off.SuppressedAvg, on.SuppressedAvg)
	}
	if m.Runs[0].Seed != m.Runs[2].Seed {
		t.Fatalf("suppression axis changed run seeds: %d vs %d", m.Runs[0].Seed, m.Runs[2].Seed)
	}
}

// -xbackend runs the medium-n cross-backend preset; the reduced ladder
// keeps test runtime low (the committed full table is regression-locked
// by internal/scenario's TestCrossBackendTableReproduces).
func TestRunCrossBackendPreset(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock cross-backend preset")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-xbackend", "-sizes", "64", "-quiet"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep struct {
		Rows []struct {
			Backend     string `json:"backend"`
			Suppress    string `json:"suppress"`
			Converged   bool   `json:"converged"`
			Legitimate  bool   `json:"legitimate"`
			WithinBound bool   `json:"withinBound"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows=%d, want sim+live+tcp", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Suppress != "on" || !row.Converged || !row.Legitimate || !row.WithinBound {
			t.Fatalf("preset row broke a claim: %+v", row)
		}
	}
}

func TestRunBadFlagsRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-faults", "lossy:2"},
		{"-faults", "bogus"},
		{"-starts", "bogus"},
		{"-sizes", "x"},
		{"-families", "no-such-family", "-quiet"},
		{"-format", "bogus", "-families", "gnp", "-sizes", "8", "-seeds", "1"},
		{"-backend", "quantum"},
		{"-deadline", "-5s"},
		{"-suppress", "maybe"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// -scale emits the deterministic scale report; the reduced ladder keeps
// test runtime low while covering the full-vs-incremental baseline
// cross-check inside ScaleSweep.
func TestRunScaleReport(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-scale", "-sizes", "32,48", "-quiet"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep struct {
		Cells []struct {
			N         int  `json:"n"`
			Converged bool `json:"converged"`
		} `json:"cells"`
		BaselineN             int   `json:"baselineN"`
		FullRehashRecomputes  int64 `json:"fullRehashRecomputes"`
		IncrementalRecomputes int64 `json:"incrementalRecomputes"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rep.Cells) != 2 || rep.BaselineN != 32 {
		t.Fatalf("cells=%d baselineN=%d", len(rep.Cells), rep.BaselineN)
	}
	for _, c := range rep.Cells {
		if !c.Converged {
			t.Fatalf("n=%d did not converge", c.N)
		}
	}
	if rep.FullRehashRecomputes <= rep.IncrementalRecomputes {
		t.Fatalf("no fingerprint savings: full=%d incremental=%d",
			rep.FullRehashRecomputes, rep.IncrementalRecomputes)
	}
}

// The default invocation is the acceptance-scale matrix: >= 100 runs,
// verified by dry-run expansion (no execution).
func TestDefaultMatrixIsAtLeast100Runs(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-expand", "-quiet"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	lines := strings.Count(out.String(), "\n")
	if lines < 100 {
		t.Fatalf("default matrix expands to only %d runs, want >= 100", lines)
	}
}

// -metrics threads the observability plane through the matrix: per-run
// JSON gains metrics time series and audit chain heads, while the
// default (metrics-off) output keeps the committed baselines
// byte-identical — asserted directly by the drift tests.
func TestRunMetricsFlagJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-families", "gnp", "-sizes", "10", "-seeds", "1",
		"-metrics", "-format", "json", "-quiet"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{`"auditChain"`, `"metrics"`, `"versionFill"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in -metrics JSON", want)
		}
	}
	var off bytes.Buffer
	if code := run([]string{"-families", "gnp", "-sizes", "10", "-seeds", "1",
		"-format", "json", "-quiet"}, &off, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.Contains(off.String(), `"auditChain"`) {
		t.Error("metrics-off JSON contains auditChain")
	}
}
