// Command mdstmatrix expands and executes a declarative scenario matrix
// (graph families × sizes × schedulers × start modes × variants × fault
// models × seeds) across all CPUs and prints the aggregated per-cell
// result table. Results are bit-reproducible: every run is seeded from
// a hash of its matrix coordinates, so the same invocation produces
// byte-identical output regardless of worker count.
//
// Usage:
//
//	mdstmatrix                            # default 108-run matrix, text table
//	mdstmatrix -format json               # full matrix incl. per-run results
//	mdstmatrix -families gnp -sizes 16,24 -faults none,lossy:0.05,targeted:root,churn:add-edge
//	mdstmatrix -scheds sync,async,adversarial -starts clean,corrupt -seeds 5
//	mdstmatrix -engines compat,event       # paired full-sweep vs discrete-event cells
//	mdstmatrix -workers 1                 # serial execution (same results)
//	mdstmatrix -scale                     # n=256/512/1024 scale sweep -> BENCH_scale.json content
//	mdstmatrix -backend live -sizes 8 -seeds 1   # goroutine-per-node runtime
//	mdstmatrix -backend sim,live,tcp      # cross-backend comparison matrix
//	mdstmatrix -suppress off,on           # paired search-suppression comparison
//	mdstmatrix -backoff off,on            # paired static vs adaptive suppression windows
//	mdstmatrix -xbackend                  # medium-n cross-backend preset -> committed table
//	mdstmatrix -backend tcp -batch 16 -batchwait 1ms   # coalesced tcp frames
//	mdstmatrix -tcpbench                  # tcp frame-coalescing bench -> BENCH_tcp.json content
//	mdstmatrix -metrics -format json      # per-run metrics time series + audit chain heads
//
// The sim backend (default) is bit-reproducible; the live and tcp
// backends execute on the wall clock, so their rounds/messages columns
// vary across repeats while the legitimacy and degree-bound claims must
// not.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mdst/internal/harness"
	"mdst/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdstmatrix", flag.ContinueOnError)
	fs.SetOutput(stderr)
	families := fs.String("families", "ring+chords,gnp,geometric", "comma-separated graph families")
	sizes := fs.String("sizes", "16,24,32", "comma-separated node counts")
	scheds := fs.String("scheds", "sync,async", "comma-separated schedulers: sync|async|adversarial (sim backend only; defaults to sync when a wall-clock backend is requested)")
	starts := fs.String("starts", "corrupt", "comma-separated start modes: clean|corrupt|legitimate|path")
	variants := fs.String("variants", "core", "comma-separated protocol variants: core|literal")
	engines := fs.String("engines", "compat", "comma-separated simulator cores: compat|event (sim backend only; event is the frontier-only discrete-event loop, excluded from seed hashing so cells pair with compat)")
	backends := fs.String("backend", "sim", "comma-separated execution backends: sim|live|tcp (sim is deterministic; live/tcp are wall-clock)")
	deadline := fs.Duration("deadline", 0, "per-run wall-clock budget for the live/tcp backends (0: 30s default, or -budget)")
	budget := fs.Float64("budget", 0, "convergence-aware deadlines for the live/tcp backends: scale each cell's deadline from the paired sim run's observed rounds × tick × this factor (0: fixed -deadline)")
	faults := fs.String("faults", "none", "comma-separated fault models: none|lossy:RATE|corrupt:K|targeted:ROLE|churn:OP")
	seeds := fs.Int("seeds", 6, "seeds (runs) per matrix cell")
	baseSeed := fs.Int64("baseseed", 1, "base seed perturbing every derived run seed")
	maxRounds := fs.Int("maxrounds", 0, "per-run round bound (0: harness default)")
	workers := fs.Int("workers", 0, "concurrent run executors (0: GOMAXPROCS)")
	format := fs.String("format", "table", "output format: table|csv|json")
	expand := fs.Bool("expand", false, "dry run: print the expanded run matrix without executing")
	quiet := fs.Bool("quiet", false, "suppress the execution summary on stderr")
	scale := fs.Bool("scale", false, "run the large-n scale sweep and print the deterministic BENCH_scale.json report (uses -sizes when given, else 256,512,1024)")
	suppress := fs.String("suppress", "off", "comma-separated search-suppression axis: off|on (on prunes duplicate Search tokens; seeds pair on/off cells on identical workloads)")
	backoff := fs.String("backoff", "off", "comma-separated adaptive-backoff axis: off|on (on doubles the suppression window each full unchanged window, resetting on any neighborhood change; implies suppression; seeds pair cells on identical workloads)")
	xbackend := fs.Bool("xbackend", false, "run the medium-n cross-backend preset (sim/live/tcp, suppression on) and print the committed-table JSON (uses -sizes when given, else the preset ladder)")
	batch := fs.Int("batch", 0, "tcp frame coalescing: messages per wire frame (0/1: one frame per message, the compatible default; >1: batched format)")
	batchwait := fs.Duration("batchwait", 0, "tcp frame coalescing: max time a partially filled frame is held open (0: flush immediately)")
	tcpbench := fs.Bool("tcpbench", false, "run the tcp frame-coalescing bench (ring+chords, batch 1/8/16) and print the BENCH_tcp.json report (uses the first -sizes entry when given, else n=128)")
	metricsOn := fs.Bool("metrics", false, "enable the observability plane on every run: sampled metrics time series and hash-chained audit heads in per-run JSON output (off keeps committed baselines byte-identical)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *scale {
		return runScale(fs, *sizes, *workers, *quiet, stdout, stderr)
	}
	if *xbackend {
		return runCrossBackend(fs, *sizes, *workers, *quiet, stdout, stderr)
	}
	if *tcpbench {
		return runTCPBench(fs, *sizes, *quiet, stdout, stderr)
	}

	spec := scenario.Spec{
		SeedsPerCell: *seeds,
		BaseSeed:     *baseSeed,
		MaxRounds:    *maxRounds,
		Metrics:      *metricsOn,
	}
	spec.Families = splitList(*families)
	for _, s := range splitList(*sizes) {
		v, err := strconv.Atoi(s)
		if err != nil {
			fmt.Fprintln(stderr, "mdstmatrix: bad -sizes:", err)
			return 2
		}
		spec.Sizes = append(spec.Sizes, v)
	}
	for _, s := range splitList(*backends) {
		b, err := harness.ParseBackend(s)
		if err != nil {
			fmt.Fprintln(stderr, "mdstmatrix:", err)
			return 2
		}
		spec.Backends = append(spec.Backends, b)
	}
	if *deadline < 0 {
		// A negative deadline would silently fall back to the harness's
		// 30s default; reject it like every other bad flag.
		fmt.Fprintln(stderr, "mdstmatrix: -deadline must be non-negative")
		return 2
	}
	spec.Tuning.Deadline = *deadline
	spec.Tuning.Budget = *budget
	spec.Tuning.BatchSize = *batch
	spec.Tuning.BatchMaxWait = *batchwait
	if err := spec.Tuning.Validate(); err != nil {
		fmt.Fprintln(stderr, "mdstmatrix:", err)
		return 2
	}
	// The scheduler axis only exists on the deterministic simulator; when
	// a wall-clock backend is requested and -scheds was left at its
	// default, shrink the axis to the sync label instead of expanding
	// cells the harness would (correctly, loudly) reject.
	schedsExplicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "scheds" {
			schedsExplicit = true
		}
	})
	if !schedsExplicit {
		for _, b := range spec.Backends {
			if b != harness.BackendSim {
				*scheds = "sync"
				break
			}
		}
	}
	for _, s := range splitList(*scheds) {
		spec.Schedulers = append(spec.Schedulers, harness.SchedulerKind(s))
	}
	for _, s := range splitList(*starts) {
		mode, err := harness.ParseStartMode(s)
		if err != nil {
			fmt.Fprintln(stderr, "mdstmatrix:", err)
			return 2
		}
		spec.Starts = append(spec.Starts, mode)
	}
	for _, s := range splitList(*variants) {
		spec.Variants = append(spec.Variants, harness.Variant(s))
	}
	for _, s := range splitList(*engines) {
		e, err := harness.ParseEngine(s)
		if err != nil {
			fmt.Fprintln(stderr, "mdstmatrix:", err)
			return 2
		}
		spec.Engines = append(spec.Engines, e)
	}
	for _, s := range splitList(*suppress) {
		switch s {
		case "off":
			spec.Suppression = append(spec.Suppression, false)
		case "on":
			spec.Suppression = append(spec.Suppression, true)
		default:
			fmt.Fprintf(stderr, "mdstmatrix: bad -suppress %q (want off|on)\n", s)
			return 2
		}
	}
	for _, s := range splitList(*backoff) {
		switch s {
		case "off":
			spec.Backoff = append(spec.Backoff, false)
		case "on":
			spec.Backoff = append(spec.Backoff, true)
		default:
			fmt.Fprintf(stderr, "mdstmatrix: bad -backoff %q (want off|on)\n", s)
			return 2
		}
	}
	models, err := scenario.ParseFaults(*faults)
	if err != nil {
		fmt.Fprintln(stderr, "mdstmatrix:", err)
		return 2
	}
	spec.Faults = models

	switch *format {
	case "table", "csv", "json":
	default:
		// Reject before executing: a typo must not cost a full matrix.
		fmt.Fprintln(stderr, "mdstmatrix: unknown -format", *format)
		return 2
	}

	if *expand {
		runs, err := spec.Expand()
		if err != nil {
			fmt.Fprintln(stderr, "mdstmatrix:", err)
			return 2
		}
		for _, r := range runs {
			fmt.Fprintf(stdout, "%s seed[%d]=%d\n", r.Cell, r.SeedIndex, r.Seed)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "mdstmatrix: %d runs (dry run)\n", len(runs))
		}
		return 0
	}

	m, err := scenario.Engine{Workers: *workers}.Execute(spec)
	if err != nil {
		fmt.Fprintln(stderr, "mdstmatrix:", err)
		return 2
	}

	switch *format {
	case "table":
		fmt.Fprint(stdout, m.RenderTable())
	case "csv":
		fmt.Fprint(stdout, m.CSV())
	case "json":
		b, err := m.JSON()
		if err != nil {
			fmt.Fprintln(stderr, "mdstmatrix:", err)
			return 1
		}
		stdout.Write(b)
	}
	if !*quiet {
		fmt.Fprintf(stderr, "mdstmatrix: %d runs in %d cells, %d workers, %s\n",
			m.TotalRuns, len(m.Cells), m.Workers, m.Elapsed.Round(1e6))
	}
	return 0
}

// runScale executes the deterministic large-n scale sweep (make bench
// writes its output to BENCH_scale.json).
func runScale(fs *flag.FlagSet, sizes string, workers int, quiet bool, stdout, stderr io.Writer) int {
	spec := scenario.ScaleSpec{Workers: workers}
	// -sizes overrides the default 256,512,1024 ladder only when the
	// caller sets it explicitly (the matrix default would shrink it).
	explicit, ok := explicitSizes(fs, sizes, stderr)
	if !ok {
		return 2
	}
	spec.Sizes = explicit
	rep, err := scenario.ScaleSweep(spec)
	if err != nil {
		fmt.Fprintln(stderr, "mdstmatrix:", err)
		return 1
	}
	b, err := rep.JSON()
	if err != nil {
		fmt.Fprintln(stderr, "mdstmatrix:", err)
		return 1
	}
	stdout.Write(b)
	if !quiet {
		fmt.Fprintf(stderr, "mdstmatrix: scale sweep %d cells, fingerprint overhead reduced %.1fx at n=%d\n",
			len(rep.Cells), rep.OverheadReduction, rep.BaselineN)
	}
	return 0
}

// runCrossBackend executes the committed medium-n cross-backend preset
// (the content of internal/scenario/testdata/crossbackend_medium.json):
// the same drawn instances across sim, live and tcp with search
// suppression on. Only deterministic/invariant columns are printed;
// wall times and restarts go to the stderr summary.
func runCrossBackend(fs *flag.FlagSet, sizes string, workers int, quiet bool, stdout, stderr io.Writer) int {
	spec := scenario.CrossBackendSpec{Workers: workers}
	explicit, ok := explicitSizes(fs, sizes, stderr)
	if !ok {
		return 2
	}
	spec.Sizes = explicit
	rep, err := scenario.CrossBackendSweep(spec)
	if err != nil {
		fmt.Fprintln(stderr, "mdstmatrix:", err)
		return 1
	}
	b, err := rep.JSON()
	if err != nil {
		fmt.Fprintln(stderr, "mdstmatrix:", err)
		return 1
	}
	stdout.Write(b)
	if !quiet {
		for i, row := range rep.Rows {
			fmt.Fprintf(stderr, "mdstmatrix: n=%d %-4s converged=%v restarts=%d wall=%s\n",
				row.N, row.Backend, row.Converged, rep.Restarts[i], rep.Walls[i].Round(1e6))
		}
	}
	return 0
}

// runTCPBench executes the tcp frame-coalescing bench (make bench
// writes its output to BENCH_tcp.json): one medium-n instance per batch
// size over loopback TCP, with the paired sim run supplying the
// protocol-round denominator. The output is a wall-clock snapshot, not
// a byte-identity artifact — it stays out of the drift gate.
func runTCPBench(fs *flag.FlagSet, sizes string, quiet bool, stdout, stderr io.Writer) int {
	spec := scenario.TCPBenchSpec{}
	explicit, ok := explicitSizes(fs, sizes, stderr)
	if !ok {
		return 2
	}
	if len(explicit) > 1 {
		fmt.Fprintln(stderr, "mdstmatrix: -tcpbench takes at most one -sizes entry")
		return 2
	}
	if len(explicit) == 1 {
		spec.N = explicit[0]
	}
	rep, err := scenario.TCPBenchSweep(spec)
	if err != nil {
		fmt.Fprintln(stderr, "mdstmatrix:", err)
		return 1
	}
	b, err := rep.JSON()
	if err != nil {
		fmt.Fprintln(stderr, "mdstmatrix:", err)
		return 1
	}
	stdout.Write(b)
	if !quiet {
		for _, row := range rep.Rows {
			fmt.Fprintf(stderr, "mdstmatrix: n=%d batch=%-2d frames/msg=%.3f wall/round=%.3fms restarts=%d\n",
				rep.N, row.Batch, row.FramesPerMessage, row.WallPerRoundMS, row.Restarts)
		}
	}
	return 0
}

// explicitSizes parses -sizes for the preset modes (-scale, -xbackend),
// but only when the caller set the flag explicitly — the matrix-mode
// default would otherwise shrink each preset's own ladder. A nil result
// with ok=true means "use the preset default".
func explicitSizes(fs *flag.FlagSet, sizes string, stderr io.Writer) ([]int, bool) {
	explicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "sizes" {
			explicit = true
		}
	})
	if !explicit {
		return nil, true
	}
	var out []int
	for _, s := range splitList(sizes) {
		v, err := strconv.Atoi(s)
		if err != nil {
			fmt.Fprintln(stderr, "mdstmatrix: bad -sizes:", err)
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
