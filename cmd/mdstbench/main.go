// Command mdstbench regenerates the experiment tables E1–E12 of
// EXPERIMENTS.md. The sweep-shaped experiments (E1, E2, E8–E10) execute
// through the internal/scenario matrix engine and shard their runs
// across all CPUs; -workers caps that parallelism (ad-hoc scenario
// matrices beyond the fixed tables are cmd/mdstmatrix's job).
//
// Usage:
//
//	mdstbench                 # full suite, default sweep
//	mdstbench -exp E1 -csv    # one experiment as CSV
//	mdstbench -sizes 16,32,64 -seeds 5 -sched async
//	mdstbench -exp E9 -workers 1                          # serial execution
//	mdstbench -exp fit -families gnp -sizes 12,16,24,32   # complexity fit
//	mdstbench -series conv -families geometric -sizes 32  # figure series CSV
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mdst/internal/benchtab"
	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdstbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run: E1..E12, fit, or all")
	sizes := fs.String("sizes", "", "comma-separated node counts (default 16,24,32,48)")
	seeds := fs.Int("seeds", 3, "runs per sweep cell")
	sched := fs.String("sched", "sync", "scheduler: sync|async|adversarial")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	famFlag := fs.String("families", "", "comma-separated family subset (default all)")
	series := fs.String("series", "", "emit a per-round figure series: conv|recovery")
	faults := fs.Int("faults", 4, "with -series recovery: corrupted nodes")
	variant := fs.String("variant", "core", "with -series conv: protocol implementation core|literal")
	workers := fs.Int("workers", 0, "cap on scenario-engine parallelism (0: all CPUs)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	benchtab.Workers = *workers

	sweep := benchtab.DefaultSweep()
	sweep.Seeds = *seeds
	sweep.Sched = harness.SchedulerKind(*sched)
	if *sizes != "" {
		sweep.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(stderr, "mdstbench: bad -sizes:", err)
				return 2
			}
			sweep.Sizes = append(sweep.Sizes, v)
		}
	}
	families := graph.Families()
	if *famFlag != "" {
		families = nil
		for _, name := range strings.Split(*famFlag, ",") {
			families = append(families, graph.MustFamily(strings.TrimSpace(name)))
		}
	}

	if *series != "" {
		famName := "gnp"
		if len(families) > 0 {
			famName = families[0].Name
		}
		n := 32
		if len(sweep.Sizes) > 0 {
			n = sweep.Sizes[0]
		}
		var s *trace.Series
		switch *series {
		case "conv":
			s, _ = benchtab.SeriesConvergenceVariant(famName, n, 1, sweep.Sched,
				harness.Variant(*variant))
		case "recovery":
			s, _ = benchtab.SeriesRecovery(famName, n, *faults, 1, sweep.Sched)
		default:
			fmt.Fprintln(stderr, "mdstbench: unknown -series", *series)
			return 2
		}
		fmt.Fprint(stdout, s.CSV())
		return 0
	}

	var tables []*benchtab.Table
	switch strings.ToUpper(*exp) {
	case "ALL":
		tables = benchtab.All(sweep, families)
	case "E1":
		tables = append(tables, benchtab.E1DegreeQuality(sweep, families))
	case "E2":
		tables = append(tables, benchtab.E2Convergence(sweep, families))
	case "E3":
		tables = append(tables, benchtab.E3Memory(sweep, families))
	case "E4":
		tables = append(tables, benchtab.E4MessageLength(sweep, families))
	case "E5":
		n := 32
		if len(sweep.Sizes) > 0 {
			n = sweep.Sizes[len(sweep.Sizes)-1]
		}
		tables = append(tables, benchtab.E5FaultRecovery(n, sweep.Seeds, sweep.Sched))
	case "E6":
		tables = append(tables, benchtab.E6Baselines(sweep, families))
	case "E7":
		n := 24
		if len(sweep.Sizes) > 0 {
			n = sweep.Sizes[0]
		}
		tables = append(tables, benchtab.E7Ablations(n, sweep.Seeds))
	case "E8":
		n := 32
		if len(sweep.Sizes) > 0 {
			n = sweep.Sizes[len(sweep.Sizes)-1]
		}
		famName := "gnp"
		if len(families) > 0 {
			famName = families[0].Name
		}
		tables = append(tables, benchtab.E8TargetedFaults(famName, n, sweep.Seeds, sweep.Sched))
	case "E9":
		n := 24
		if len(sweep.Sizes) > 0 {
			n = sweep.Sizes[0]
		}
		famName := "gnp"
		if len(families) > 0 {
			famName = families[0].Name
		}
		tables = append(tables, benchtab.E9LossyLinks(famName, n, sweep.Seeds))
	case "E10":
		n := 24
		if len(sweep.Sizes) > 0 {
			n = sweep.Sizes[0]
		}
		famName := "gnp"
		if len(families) > 0 {
			famName = families[0].Name
		}
		tables = append(tables, benchtab.E10Churn(famName, n, sweep.Seeds, sweep.Sched))
	case "E11":
		sizes := sweep.Sizes
		if len(sizes) == 0 {
			sizes = []int{16, 24}
		}
		tables = append(tables, benchtab.E11Choreography(sizes, sweep.Seeds, sweep.Sched))
	case "E12":
		sizes := sweep.Sizes
		if len(sizes) == 0 {
			sizes = []int{16, 24}
		}
		famName := "gnp"
		if len(families) > 0 {
			famName = families[0].Name
		}
		tables = append(tables, benchtab.E12SearchTraffic(famName, sizes, sweep.Seeds, sweep.Sched))
	case "FIT":
		for _, fam := range families {
			tables = append(tables, benchtab.E2Fit(fam.Name, sweep.Sizes, sweep.Seeds, sweep.Sched))
		}
	default:
		fmt.Fprintln(stderr, "mdstbench: unknown -exp", *exp)
		return 2
	}

	for i, t := range tables {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if *csv {
			fmt.Fprint(stdout, t.CSV())
		} else {
			fmt.Fprint(stdout, t.Render())
		}
	}
	return 0
}
