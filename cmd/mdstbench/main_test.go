package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunE1Tiny(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "E1", "-sizes", "10", "-seeds", "1",
		"-families", "ring+chords"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "E1: degree quality") {
		t.Fatalf("missing title:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "true") {
		t.Fatal("no withinBound column")
	}
}

func TestRunCSVMode(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "E3", "-sizes", "10", "-seeds", "1",
		"-families", "gnp", "-csv"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.HasPrefix(first, "family,n,delta") {
		t.Fatalf("not CSV: %q", first)
	}
}

func TestRunSeriesConv(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-series", "conv", "-families", "gnp", "-sizes", "12"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out.String(), "round,treeDeg,roots") {
		t.Fatalf("series header wrong: %q", strings.SplitN(out.String(), "\n", 2)[0])
	}
}

func TestRunSeriesRecovery(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-series", "recovery", "-families", "gnp", "-sizes", "12",
		"-faults", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if len(strings.Split(out.String(), "\n")) < 3 {
		t.Fatal("series too short")
	}
}

func TestRunFit(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "fit", "-families", "ring+chords",
		"-sizes", "10,14,20", "-seeds", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "E2-fit") || !strings.Contains(out.String(), "m n^2 log n") {
		t.Fatalf("fit output wrong:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-exp", "E99"},
		{"-series", "bogus"},
		{"-sizes", "abc"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}
