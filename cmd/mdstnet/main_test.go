package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCoreOverTCP(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-family", "wheel", "-n", "8"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"graph: n=8", "legitimate: true", "tree degree:",
		"quiescence certificate:", "cluster restarts: 0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in output:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadTuningFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-probe", "-1ms"},
		{"-deadline", "0"},
		{"-budget", "-2"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Fatalf("%v: exit %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
	}
}

func TestRunLiteralCorrupted(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-family", "ring+chords", "-n", "10", "-variant", "literal", "-corrupt"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "legitimate: true") {
		t.Fatalf("literal variant failed over TCP:\n%s", out.String())
	}
}

// -suppress runs the tcp backend with duplicate Search-token pruning on:
// the run must still converge legitimately. Whether any token is
// actually pruned is wall-clock timing (a fast run may never see a
// duplicate), so only the outcome is asserted; deterministic suppression
// coverage lives in the sim-backed tests.
func TestRunSuppressedOverTCP(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-family", "ring+chords", "-n", "16", "-corrupt", "-suppress"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "legitimate: true") {
		t.Fatalf("suppressed tcp run failed:\n%s", out.String())
	}
}

func TestRunUnknownVariant(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-variant", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// -metrics samples the stream over the control channel and dumps it as
// a JSON series alongside the audit chain head.
func TestRunMetricsOverTCP(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-family", "wheel", "-n", "8", "-metrics"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"audit chain:", "metrics:", `"name": "tcp"`, `"columns"`, `"sentTotal"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in -metrics output:\n%s", want, out.String())
		}
	}
}
