// Command mdstnet runs the self-stabilizing MDST protocol over real TCP
// connections on the loopback interface: one goroutine per node, one
// socket per edge, gob-encoded messages — the paper's asynchronous
// reliable-FIFO message passing realized by an actual network stack.
//
// It is a thin front-end over the harness's tcp execution backend (the
// same driver the scenario engine uses for `mdstmatrix -backend tcp`),
// so the CLI carries no cluster plumbing of its own. Convergence is
// detected in-band: the driver polls the cluster's side-channel control
// connection and stops it only once internal/detect issues a quiescence
// certificate, which the command reports alongside the restart count
// (zero on converging runs — the cluster is never stopped just to look).
//
// Usage:
//
//	mdstnet -family wheel -n 12
//	mdstnet -family gnp -n 24 -variant literal -corrupt
//	mdstnet -family wheel -n 12 -budget 8      # deadline scaled from the paired sim run
//	mdstnet -family gnp -n 64 -suppress        # duplicate Search-token pruning on
//	mdstnet -family gnp -n 128 -batch 16 -batchwait 1ms   # coalesced wire frames
//	mdstnet -family wheel -n 12 -metrics       # metrics time series (JSON) + audit chain head
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/mdstseq"
	"mdst/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdstnet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	family := fs.String("family", "gnp", "workload family (see graphgen -list)")
	n := fs.Int("n", 16, "approximate node count")
	seed := fs.Int64("seed", 1, "seed for generation and corruption")
	variant := fs.String("variant", "core", "protocol implementation: core|literal")
	corrupt := fs.Bool("corrupt", false, "randomize every node state before starting")
	probe := fs.Duration("probe", 0, "convergence-detection sampling interval over the control connection (0 = driver default)")
	deadline := fs.Duration("deadline", 10*time.Second, "total wall-clock budget (ignored when -budget is set)")
	budget := fs.Float64("budget", 0, "convergence-aware deadline: scale the paired sim run's observed rounds × tick by this factor (0 = fixed -deadline)")
	tick := fs.Duration("tick", 0, "gossip period (0 = runtime default)")
	suppress := fs.Bool("suppress", false, "enable the search-traffic suppression hot path (duplicate Search-token pruning + batched launches)")
	backoff := fs.Bool("backoff", false, "enable adaptive suppression backoff (implies -suppress): the retry window doubles each full unchanged window, resetting on any neighborhood change; the stability window and budget deadline take the conservative cap")
	batch := fs.Int("batch", 0, "messages coalesced per wire frame (0/1 = one frame per message, the compatible default)")
	batchwait := fs.Duration("batchwait", 0, "max time a partially filled frame is held open (0 = flush immediately)")
	metricsOn := fs.Bool("metrics", false, "sample the metrics stream over the control channel and dump it as JSON alongside the result, plus the audit chain head")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fam, okFam := graph.LookupFamily(*family)
	if !okFam {
		fmt.Fprintln(stderr, "mdstnet: unknown -family", *family)
		return 2
	}
	switch *variant {
	case "core", "literal":
	default:
		fmt.Fprintln(stderr, "mdstnet: unknown -variant", *variant)
		return 2
	}
	if *probe < 0 || *tick < 0 || *budget < 0 {
		fmt.Fprintln(stderr, "mdstnet: -probe, -tick and -budget must be non-negative")
		return 2
	}
	if *batch < 0 || *batchwait < 0 {
		fmt.Fprintln(stderr, "mdstnet: -batch and -batchwait must be non-negative")
		return 2
	}
	if *deadline <= 0 && *budget == 0 {
		// A zero budget used to run zero phases silently; reject it loudly
		// (the harness driver would otherwise substitute its 30s default).
		fmt.Fprintln(stderr, "mdstnet: -deadline must be positive (or set -budget)")
		return 2
	}
	if *budget > 0 {
		*deadline = 0 // let the budget mode size the deadline
	}
	g := fam.Build(*n, rand.New(rand.NewSource(*seed)))
	fmt.Fprintf(stdout, "graph: n=%d m=%d family=%s\n", g.N(), g.M(), *family)

	start := harness.StartClean
	if *corrupt {
		start = harness.StartCorrupt
	}
	var coll *metrics.Collector
	if *metricsOn {
		coll = &metrics.Collector{}
	}
	res, err := harness.Run(harness.RunSpec{
		Graph:    g,
		Variant:  harness.Variant(*variant),
		Start:    start,
		Seed:     *seed,
		Backend:  harness.BackendTCP,
		Suppress: *suppress,
		Backoff:  *backoff,
		Collect:  coll,
		Audit:    *metricsOn,
		Tuning: harness.BackendTuning{
			Tick:         *tick,
			Probe:        *probe,
			Deadline:     *deadline,
			Budget:       *budget,
			BatchSize:    *batch,
			BatchMaxWait: *batchwait,
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "mdstnet:", err)
		return 1
	}
	fmt.Fprintf(stdout, "legitimate: %v after %d probe(s), %v wall time (deadline %v)\n",
		res.Legit.OK(), res.Rounds, res.WallTime.Round(time.Millisecond),
		res.Deadline.Round(time.Millisecond))
	if res.Cert != nil {
		fmt.Fprintf(stdout, "%s\n", res.Cert)
		fmt.Fprintf(stdout, "cluster restarts: %d\n", res.Restarts)
	} else {
		fmt.Fprintln(stdout, "no quiescence certificate (deadline reached)")
	}

	if res.Tree == nil {
		fmt.Fprintln(stderr, "mdstnet: no tree:", res.Legit.Detail)
		return 1
	}
	lo := mdstseq.LowerBoundDelta(g)
	fmt.Fprintf(stdout, "tree degree: %d (Δ* >= %d, bound Δ*+1)\n", res.Tree.MaxDegree(), lo)
	if res.Dropped > 0 {
		fmt.Fprintf(stdout, "backpressure drops: %d\n", res.Dropped)
	}
	if *batch > 1 && res.TotalMessages > 0 {
		fmt.Fprintf(stdout, "wire frames: %d (%.3f frames/message)\n",
			res.Frames, float64(res.Frames)/float64(res.TotalMessages))
	}
	if res.SearchesSuppressed > 0 {
		fmt.Fprintf(stdout, "searches suppressed: %d\n", res.SearchesSuppressed)
	}
	if coll != nil {
		fmt.Fprintf(stdout, "audit chain: %016x over %d mutation(s)\n", res.AuditChain, res.AuditRecords)
		fmt.Fprintf(stdout, "metrics: %d snapshot(s)\n", coll.Len())
		if err := coll.Series("tcp").WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "mdstnet:", err)
			return 1
		}
	}
	if !res.Legit.OK() {
		return 1
	}
	return 0
}
