// Command mdstnet runs the self-stabilizing MDST protocol over real TCP
// connections on the loopback interface: one goroutine per node, one
// socket per edge, gob-encoded messages — the paper's asynchronous
// reliable-FIFO message passing realized by an actual network stack.
//
// Usage:
//
//	mdstnet -family wheel -n 12 -duration 2s
//	mdstnet -family gnp -n 24 -variant literal -corrupt
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/netrun"
	"mdst/internal/paperproto"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdstnet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	family := fs.String("family", "gnp", "workload family (see graphgen -list)")
	n := fs.Int("n", 16, "approximate node count")
	seed := fs.Int64("seed", 1, "seed for generation and corruption")
	variant := fs.String("variant", "core", "protocol implementation: core|literal")
	corrupt := fs.Bool("corrupt", false, "randomize every node state before starting")
	phase := fs.Duration("phase", 250*time.Millisecond, "length of one run phase between inspections")
	phases := fs.Int("phases", 40, "maximum number of run phases")
	tick := fs.Duration("tick", 0, "gossip period (0 = runtime default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fam, okFam := graph.LookupFamily(*family)
	if !okFam {
		fmt.Fprintln(stderr, "mdstnet: unknown -family", *family)
		return 2
	}
	rng := rand.New(rand.NewSource(*seed))
	g := fam.Build(*n, rng)
	fmt.Fprintf(stdout, "graph: n=%d m=%d family=%s\n", g.N(), g.M(), *family)

	var check func() bool
	var finalTree func() (*spanning.Tree, error)
	var cluster *netrun.Cluster
	switch *variant {
	case "core":
		cfg := core.DefaultConfig(g.N())
		cluster = netrun.NewCluster(g, func(id int, nbrs []int) sim.Process {
			return core.NewNode(id, nbrs, cfg)
		}, netrun.Config{TickInterval: *tick})
		nodes := func() []*core.Node {
			out := make([]*core.Node, g.N())
			for i := range out {
				out[i] = cluster.Process(i).(*core.Node)
			}
			return out
		}
		if *corrupt {
			for _, nd := range nodes() {
				nd.Corrupt(rng, g.N())
			}
		}
		check = func() bool { return core.CheckLegitimacy(g, nodes()).OK() }
		finalTree = func() (*spanning.Tree, error) { return core.ExtractTree(g, nodes()) }
	case "literal":
		cfg := paperproto.DefaultConfig(g.N())
		cluster = netrun.NewCluster(g, func(id int, nbrs []int) sim.Process {
			return paperproto.NewNode(id, nbrs, cfg)
		}, netrun.Config{TickInterval: *tick})
		nodes := func() []*paperproto.Node {
			out := make([]*paperproto.Node, g.N())
			for i := range out {
				out[i] = cluster.Process(i).(*paperproto.Node)
			}
			return out
		}
		if *corrupt {
			for _, nd := range nodes() {
				nd.Corrupt(rng, g.N())
			}
		}
		check = func() bool { return paperproto.CheckLegitimacy(g, nodes()).OK() }
		finalTree = func() (*spanning.Tree, error) { return paperproto.ExtractTree(g, nodes()) }
	default:
		fmt.Fprintln(stderr, "mdstnet: unknown -variant", *variant)
		return 2
	}

	startAt := time.Now()
	phasesRun := 0
	ok, err := cluster.RunUntil(*phase, *phases, func() bool {
		phasesRun++
		return check()
	})
	if err != nil {
		fmt.Fprintln(stderr, "mdstnet:", err)
		return 1
	}
	elapsed := time.Since(startAt).Round(time.Millisecond)
	fmt.Fprintf(stdout, "legitimate: %v after %d phase(s), %v wall time\n", ok, phasesRun, elapsed)

	tree, err := finalTree()
	if err != nil {
		fmt.Fprintln(stderr, "mdstnet: no tree:", err)
		return 1
	}
	lo := mdstseq.LowerBoundDelta(g)
	fmt.Fprintf(stdout, "tree degree: %d (Δ* >= %d, bound Δ*+1)\n", tree.MaxDegree(), lo)
	if cluster.Dropped() > 0 {
		fmt.Fprintf(stdout, "backpressure drops: %d\n", cluster.Dropped())
	}
	if !ok {
		return 1
	}
	return 0
}
