// Command mdstviz stabilizes the protocol on a workload and renders the
// result as an SVG: thin grey edges are the network, thick blue edges
// the stabilized minimum-degree spanning tree, node colors the tree
// degree (green = leaf, red = maximum). Writes SVG to stdout.
//
// With -live the protocol runs on the goroutine-per-node runtime
// instead of the deterministic simulator, and the command polls the live
// metrics stream while it stabilizes: each detection-probe snapshot is
// printed to stderr (version-vector fill, stability-window position,
// in-flight deficit, messages sent), so convergence is watchable in real
// time; the SVG of the stabilized tree still goes to stdout.
//
// Usage:
//
//	mdstviz -family geometric -n 32 -layout spring > tree.svg
//	mdstviz -family wheel... (see graphgen -list for families)
//	mdstviz -family gnp -n 24 -live > tree.svg   # watch the stream on stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/metrics"
	"mdst/internal/viz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdstviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	family := fs.String("family", "geometric", "workload family (see graphgen -list)")
	n := fs.Int("n", 32, "approximate node count")
	seed := fs.Int64("seed", 1, "seed")
	layout := fs.String("layout", "spring", "node layout: circle|spring")
	size := fs.Int("size", 720, "canvas size in pixels")
	raw := fs.Bool("graph-only", false, "skip the protocol; draw only the network")
	live := fs.Bool("live", false, "run on the goroutine-per-node runtime and stream live metrics snapshots to stderr while stabilizing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fam := graph.MustFamily(*family)
	g := fam.Build(*n, rand.New(rand.NewSource(*seed)))

	opt := viz.Options{Size: *size, Layout: *layout}
	if *raw {
		opt.Title = fmt.Sprintf("%s n=%d m=%d", *family, g.N(), g.M())
		if err := viz.Render(stdout, g, nil, opt); err != nil {
			fmt.Fprintln(stderr, "mdstviz:", err)
			return 1
		}
		return 0
	}

	spec := harness.RunSpec{
		Graph:     g,
		Scheduler: harness.SchedSync,
		Start:     harness.StartCorrupt,
		Seed:      *seed,
	}
	if *live {
		spec.Backend = harness.BackendLive
		spec.Audit = true
		spec.Collect = &metrics.Collector{OnSnapshot: func(s metrics.Snapshot) {
			fmt.Fprintf(stderr, "mdstviz: epoch=%d fill=%.2f stable=%d/%d deficit=%d sent=%d\n",
				s.Epoch, s.VersionFill, s.Stable, s.Window, s.Deficit, s.SentTotal)
		}}
	}
	res, err := harness.Run(spec)
	if err != nil {
		fmt.Fprintln(stderr, "mdstviz:", err)
		return 1
	}
	if *live {
		fmt.Fprintf(stderr, "mdstviz: audit chain %016x over %d mutation(s)\n",
			res.AuditChain, res.AuditRecords)
	}
	if res.Tree == nil {
		fmt.Fprintf(stderr, "mdstviz: no tree: %+v\n", res.Legit)
		return 1
	}
	opt.Title = fmt.Sprintf("%s n=%d m=%d deg(T)=%d rounds=%d",
		*family, g.N(), g.M(), res.Tree.MaxDegree(), res.LastChange)
	if err := viz.Render(stdout, g, res.Tree, opt); err != nil {
		fmt.Fprintln(stderr, "mdstviz:", err)
		return 1
	}
	return 0
}
