package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunRendersTree(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-family", "ring+chords", "-n", "12", "-layout", "circle"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	svg := out.String()
	if !strings.HasPrefix(svg, "<svg ") {
		t.Fatal("not SVG")
	}
	if !strings.Contains(svg, "deg(T)=") {
		t.Fatal("title missing protocol result")
	}
	if !strings.Contains(svg, `stroke-width="3"`) {
		t.Fatal("no tree edges drawn")
	}
}

func TestRunGraphOnly(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-family", "grid", "-n", "9", "-graph-only"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out.String(), `stroke-width="3"`) {
		t.Fatal("tree edges drawn in graph-only mode")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// -live runs on the goroutine-per-node runtime, streaming metrics
// snapshots to stderr while stabilizing; the SVG contract is unchanged.
func TestRunLiveStreamsMetrics(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-family", "wheel", "-n", "10", "-live"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "<svg ") {
		t.Fatal("not SVG")
	}
	for _, want := range []string{"fill=", "stable=", "audit chain"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("missing %q in -live stderr stream:\n%s", want, errOut.String())
		}
	}
}
