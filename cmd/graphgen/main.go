// Command graphgen emits workload graphs in the repository's edge-list
// format. It exposes every generator family used by the experiments.
//
// Usage:
//
//	graphgen -family gnp -n 32 -seed 7 > g.edges
//	graphgen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"mdst/internal/graph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	family := fs.String("family", "gnp", "workload family (see -list)")
	n := fs.Int("n", 32, "approximate node count")
	seed := fs.Int64("seed", 1, "generator seed")
	list := fs.Bool("list", false, "list families and exit")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of edge list")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, f := range graph.Families() {
			fmt.Fprintln(stdout, f.Name)
		}
		return 0
	}
	var fam graph.Family
	found := false
	for _, f := range graph.Families() {
		if f.Name == *family {
			fam = f
			found = true
			break
		}
	}
	if !found {
		fmt.Fprintf(stderr, "graphgen: unknown family %q (try -list)\n", *family)
		return 2
	}
	g := fam.Build(*n, rand.New(rand.NewSource(*seed)))
	if *dot {
		fmt.Fprint(stdout, g.DOT(*family, nil))
		return 0
	}
	if _, err := g.WriteTo(stdout); err != nil {
		fmt.Fprintln(stderr, "graphgen:", err)
		return 1
	}
	return 0
}
