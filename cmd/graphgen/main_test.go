package main

import (
	"bytes"
	"strings"
	"testing"

	"mdst/internal/graph"
)

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "gnp") || !strings.Contains(out.String(), "geometric") {
		t.Fatalf("missing families:\n%s", out.String())
	}
}

func TestRunEdgeListRoundTrips(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-family", "grid", "-n", "16"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	g, err := graph.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 || !g.IsConnected() {
		t.Fatalf("bad graph n=%d", g.N())
	}
}

func TestRunDOT(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-family", "ring+chords", "-n", "8", "-dot"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out.String(), "graph ring+chords {") {
		t.Fatalf("not DOT:\n%s", out.String()[:40])
	}
}

func TestRunUnknownFamily(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-family", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown family") {
		t.Fatal("no error message")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	gen := func() string {
		var out, errOut bytes.Buffer
		if code := run([]string{"-family", "gnp", "-n", "20", "-seed", "5"}, &out, &errOut); code != 0 {
			t.Fatalf("exit %d", code)
		}
		return out.String()
	}
	if gen() != gen() {
		t.Fatal("same seed, different output")
	}
}
