// Command mdstsim runs the self-stabilizing MDST protocol on one graph
// and reports the outcome: the stabilized tree, its degree, the Δ*
// bracket, convergence rounds and message counts.
//
// Usage:
//
//	mdstsim -family geometric -n 32 -start corrupt -sched sync -v
//	graphgen -family gnp -n 24 | mdstsim -stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/mdstseq"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdstsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	family := fs.String("family", "gnp", "workload family (see graphgen -list)")
	n := fs.Int("n", 24, "approximate node count")
	useStdin := fs.Bool("stdin", false, "read the graph from stdin (edge-list format)")
	seed := fs.Int64("seed", 1, "seed for generation, corruption and scheduling")
	start := fs.String("start", "corrupt", "initial configuration: clean|corrupt|legit|path")
	faults := fs.Int("faults", 0, "with -start legit/path: number of nodes to corrupt")
	sched := fs.String("sched", "sync", "scheduler: sync|async|adversarial")
	engine := fs.String("engine", "compat", "simulator core: compat (full-sweep rounds)|event (frontier-only)")
	verbose := fs.Bool("v", false, "print per-kind message counts and the degree profile")
	dot := fs.Bool("dot", false, "print the stabilized tree as Graphviz DOT")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var g *graph.Graph
	canonicalRing := false
	if *useStdin {
		var err error
		g, err = graph.Read(stdin)
		if err != nil {
			fmt.Fprintln(stderr, "mdstsim:", err)
			return 1
		}
	} else {
		fam := graph.MustFamily(*family)
		g = fam.Build(*n, rand.New(rand.NewSource(*seed)))
		canonicalRing = fam.CanonicalRing
	}

	mode := harness.StartCorrupt
	switch *start {
	case "clean":
		mode = harness.StartClean
	case "legit":
		mode = harness.StartLegitimate
	case "path":
		mode = harness.StartPath
	case "corrupt":
	default:
		fmt.Fprintln(stderr, "mdstsim: unknown -start", *start)
		return 2
	}
	eng, err := harness.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(stderr, "mdstsim:", err)
		return 2
	}

	res := harness.MustRun(harness.RunSpec{
		Graph:        g,
		Scheduler:    harness.SchedulerKind(*sched),
		Start:        mode,
		CorruptNodes: *faults,
		Seed:         *seed,
		Engine:       eng,
	})

	fmt.Fprintf(stdout, "graph: n=%d m=%d delta=%d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Fprintf(stdout, "converged: %v (rounds=%d, last state change at round %d)\n",
		res.Converged, res.Rounds, res.LastChange)
	fmt.Fprintf(stdout, "legitimate: %v\n", res.Legit.OK())
	if !res.Legit.OK() {
		fmt.Fprintf(stdout, "  detail: %+v\n", res.Legit)
	}
	if res.Tree != nil {
		deg := res.Tree.MaxDegree()
		fmt.Fprintf(stdout, "tree degree: %d\n", deg)
		if g.N() <= 20 {
			if star, ok := mdstseq.ExactDelta(g, 0); ok {
				fmt.Fprintf(stdout, "delta*: %d (exact) — bound delta*+1 = %d, within: %v\n",
					star, star+1, deg <= star+1)
			}
		} else if canonicalRing && g.N() > 2048 {
			// The Fürer–Raghavachari oracle takes minutes at this size; the
			// canonical ring edges give Δ* = 2 constructively (path witness).
			fmt.Fprintf(stdout, "delta*: 2 (canonical ring witness) — bound delta*+1 = 3, within: %v\n", deg <= 3)
		} else {
			fr := mdstseq.Approximate(g).MaxDegree()
			fmt.Fprintf(stdout, "delta*: in [%d, %d] (FR bracket)\n", fr-1, fr)
		}
		if *dot {
			fmt.Fprint(stdout, g.DOT("mdst", res.Tree.EdgeSet()))
		}
	}
	if *verbose {
		fmt.Fprintf(stdout, "messages: total=%d maxWords=%d (%s)\n",
			res.TotalMessages, res.Metrics.MaxMsgSize, res.Metrics.MaxMsgSizeKind)
		if eng == harness.EngineEvent {
			fmt.Fprintf(stdout, "events: total=%d tail=%d (after last state change)\n",
				res.Metrics.Events, res.Metrics.Events-res.Metrics.EventsAtLastChange)
		}
		kinds := make([]string, 0, len(res.Metrics.SentByKind))
		for k := range res.Metrics.SentByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(stdout, "  %-12s %d\n", k, res.Metrics.SentByKind[k])
		}
		if res.Tree != nil {
			fmt.Fprintf(stdout, "degree profile: %v\n", mdstseq.DegreeProfile(res.Tree))
		}
		fmt.Fprintf(stdout, "state: max %d bits/node\n", res.MaxStateBits)
	}
	if !res.Legit.OK() {
		return 1
	}
	return 0
}
