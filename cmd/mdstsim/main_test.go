package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunWheelVerbose(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-family", "ring+chords", "-n", "12", "-v"}, nil, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"legitimate: true", "tree degree:", "messages: total=", "degree profile:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in output:\n%s", want, out.String())
		}
	}
}

func TestRunFromStdin(t *testing.T) {
	graphText := "n 4\ne 0 1\ne 1 2\ne 2 3\ne 3 0\n"
	var out, errOut bytes.Buffer
	code := run([]string{"-stdin"}, strings.NewReader(graphText), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "graph: n=4 m=4") {
		t.Fatalf("wrong graph:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "tree degree: 2") {
		t.Fatalf("ring must give a degree-2 path:\n%s", out.String())
	}
}

func TestRunBadStdin(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-stdin"}, strings.NewReader("garbage"), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestRunBadStart(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-start", "weird"}, nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunLegitWithFaults(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-family", "gnp", "-n", "14", "-start", "legit", "-faults", "3"}, nil, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "legitimate: true") {
		t.Fatalf("did not recover:\n%s", out.String())
	}
}

func TestRunDOTOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-family", "grid", "-n", "9", "-dot"}, nil, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "[style=bold]") {
		t.Fatal("DOT tree edges missing")
	}
}
