// Ad-hoc radio network scenario (the paper's first motivation): in a
// deployed sensor field, a high-degree relay in the communication tree
// is a congestion hotspot and a prime attack target. This example builds
// a random geometric radio network, compares the degree of a naive BFS
// backbone against the self-stabilized minimum-degree tree, and reports
// the hotspot relief.
//
//	go run ./examples/adhoc [-n 48] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/mdstseq"
	"mdst/internal/spanning"
)

func main() {
	n := flag.Int("n", 48, "number of sensor nodes")
	seed := flag.Int64("seed", 7, "deployment seed")
	flag.Parse()

	radius := 1.6 * math.Sqrt(math.Log(float64(*n))/float64(*n))
	rng := rand.New(rand.NewSource(*seed))
	g := graph.RandomGeometric(*n, radius, rng)
	fmt.Printf("sensor field: n=%d links=%d radio degree max=%d avg=%.1f\n",
		g.N(), g.M(), g.MaxDegree(), 2*float64(g.M())/float64(g.N()))

	bfs := spanning.BFSTree(g, 0)
	fmt.Printf("naive BFS backbone: degree %d (profile %v)\n",
		bfs.MaxDegree(), mdstseq.DegreeProfile(bfs)[:5])

	res := harness.MustRun(harness.RunSpec{
		Graph:     g,
		Scheduler: harness.SchedAsync, // radios are asynchronous
		Start:     harness.StartCorrupt,
		Seed:      *seed,
	})
	if !res.Legit.OK() {
		log.Fatalf("backbone did not stabilize: %+v", res.Legit)
	}
	fmt.Printf("self-stabilized MDST backbone: degree %d (profile %v)\n",
		res.Tree.MaxDegree(), mdstseq.DegreeProfile(res.Tree)[:5])

	fr := mdstseq.Approximate(g)
	fmt.Printf("centralized Fürer–Raghavachari reference: degree %d\n", fr.MaxDegree())
	fmt.Printf("hotspot relief: busiest relay serves %d links instead of %d\n",
		res.Tree.MaxDegree(), bfs.MaxDegree())
	fmt.Printf("stabilization: last change at round %d, %d messages\n",
		res.LastChange, res.TotalMessages)
}
