// Live runtime demo: the same protocol nodes running as real goroutines
// exchanging messages over Go channels (one inbox per node, FIFO per
// sender) — the CSP rendering of the paper's asynchronous message
// passing model. The run is wall-clock bounded and nondeterministic; at
// the end the tree is extracted and validated.
//
//	go run ./examples/livenet [-n 24] [-ms 1500]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/sim"
)

func main() {
	n := flag.Int("n", 24, "number of nodes")
	ms := flag.Int("ms", 1500, "wall-clock run budget in milliseconds")
	seed := flag.Int64("seed", 5, "topology seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g := graph.HamiltonianAugmented(*n, *n, rng)
	cfg := core.DefaultConfig(g.N())

	ln := sim.NewLiveNetwork(g, func(id sim.NodeID, nbrs []sim.NodeID) sim.Process {
		nd := core.NewNode(id, nbrs, cfg)
		nd.Corrupt(rng, g.N()) // arbitrary initial states
		return nd
	}, sim.LiveConfig{TickInterval: 200 * time.Microsecond})

	fmt.Printf("running %d goroutine nodes for %dms...\n", g.N(), *ms)
	ln.RunFor(time.Duration(*ms) * time.Millisecond)

	nodes := make([]*core.Node, g.N())
	for i := range nodes {
		nodes[i] = ln.Process(i).(*core.Node)
	}
	tree, err := core.ExtractTree(g, nodes)
	if err != nil {
		log.Fatalf("no spanning tree after live run: %v", err)
	}
	leg := core.CheckLegitimacy(g, nodes)
	fmt.Printf("tree degree: %d (Δ* = 2 by construction, bound 3)\n", tree.MaxDegree())
	fmt.Printf("fully legitimate: %v (views may still be syncing)\n", leg.OK())
	fmt.Printf("degree profile: %v\n", mdstseq.DegreeProfile(tree)[:5])
}
