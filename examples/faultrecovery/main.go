// Transient-fault recovery demo (Definition 1 of the paper): starting
// from a legitimate configuration, corrupt an increasing number of nodes
// and watch the protocol converge back, printing a recovery timeline per
// fault size. This is the self-stabilization property made visible.
//
//	go run ./examples/faultrecovery [-n 36]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"mdst/internal/graph"
	"mdst/internal/harness"
)

func main() {
	n := flag.Int("n", 36, "network size")
	seed := flag.Int64("seed", 3, "seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g := graph.RandomGnp(*n, 0.15, rng)
	fmt.Printf("network: n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("%-8s %-10s %-10s %-8s %s\n", "faults", "recovery", "messages", "degree", "legitimate")

	for _, faults := range []int{0, 1, 2, 4, 8, *n / 2, *n} {
		if faults > *n {
			continue
		}
		res := harness.MustRun(harness.RunSpec{
			Graph:        g,
			Scheduler:    harness.SchedSync,
			Start:        harness.StartLegitimate,
			CorruptNodes: faults,
			Seed:         *seed + int64(faults),
		})
		deg := -1
		if res.Tree != nil {
			deg = res.Tree.MaxDegree()
		}
		fmt.Printf("%-8d %-10d %-10d %-8d %v\n",
			faults, res.LastChange, res.TotalMessages, deg, res.Legit.OK())
	}
	fmt.Println("\nrecovery = round of the last state change; 0 faults may still")
	fmt.Println("show a few rounds while colors and views re-synchronize.")

	// Visualize one recovery: per-round root count and tree degree after
	// corrupting a quarter of the nodes.
	res, series := harness.RunTraced(harness.RunSpec{
		Graph:        g,
		Scheduler:    harness.SchedSync,
		Start:        harness.StartLegitimate,
		CorruptNodes: *n / 4,
		Seed:         *seed + 100,
	}, 1)
	fmt.Printf("\ntimeline of one recovery (%d faults, %d rounds):\n", *n/4, res.Rounds)
	fmt.Printf("  roots   %s\n", series.Sparkline("roots", 60))
	fmt.Printf("  treeDeg %s\n", series.Sparkline("treeDeg", 60))
	fmt.Printf("  pending %s\n", series.Sparkline("pending", 60))
}
