// TCP cluster: run the protocol over real loopback TCP sockets — one
// goroutine per node, one socket per edge, gob-encoded messages — and
// compare both protocol implementations (the S3 chain exchange and the
// paper's literal Remove/Back choreography) on the same topology.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/netrun"
	"mdst/internal/paperproto"
	"mdst/internal/sim"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomGeometric(16, 0.5, rng)
	fmt.Printf("network: n=%d m=%d (random geometric — an ad-hoc radio layout)\n", g.N(), g.M())
	lo := mdstseq.LowerBoundDelta(g)
	fmt.Printf("Δ* >= %d, so the protocol guarantees degree <= Δ*+1\n\n", lo)

	// --- Primary implementation over TCP -------------------------------
	coreCfg := core.DefaultConfig(g.N())
	cluster := netrun.NewCluster(g, func(id int, nbrs []int) sim.Process {
		return core.NewNode(id, nbrs, coreCfg)
	}, netrun.Config{})
	coreNodes := func() []*core.Node {
		out := make([]*core.Node, g.N())
		for i := range out {
			out[i] = cluster.Process(i).(*core.Node)
		}
		return out
	}
	for _, nd := range coreNodes() {
		nd.Corrupt(rng, g.N()) // Definition 1: arbitrary initial state
	}
	start := time.Now()
	ok, err := cluster.RunUntil(250*time.Millisecond, 40, func() bool {
		return core.CheckLegitimacy(g, coreNodes()).OK()
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := core.ExtractTree(g, coreNodes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core variant over TCP:    legitimate=%v in %v, tree degree %d\n",
		ok, time.Since(start).Round(time.Millisecond), tree.MaxDegree())

	// --- Literal choreography over TCP ---------------------------------
	litCfg := paperproto.DefaultConfig(g.N())
	lit := netrun.NewCluster(g, func(id int, nbrs []int) sim.Process {
		return paperproto.NewNode(id, nbrs, litCfg)
	}, netrun.Config{})
	litNodes := func() []*paperproto.Node {
		out := make([]*paperproto.Node, g.N())
		for i := range out {
			out[i] = lit.Process(i).(*paperproto.Node)
		}
		return out
	}
	for _, nd := range litNodes() {
		nd.Corrupt(rng, g.N())
	}
	start = time.Now()
	ok, err = lit.RunUntil(250*time.Millisecond, 40, func() bool {
		return paperproto.CheckLegitimacy(g, litNodes()).OK()
	})
	if err != nil {
		log.Fatal(err)
	}
	litTree, err := paperproto.ExtractTree(g, litNodes())
	if err != nil {
		log.Fatal(err)
	}
	st := paperproto.AggregateStats(litNodes())
	fmt.Printf("literal variant over TCP: legitimate=%v in %v, tree degree %d\n",
		ok, time.Since(start).Round(time.Millisecond), litTree.MaxDegree())
	fmt.Printf("  choreography: %d exchanges completed (%d via Back), %d hops aborted\n",
		st.ExchangesComplete, st.BacksStarted, st.ChoreoAborted)
}
