// Quickstart: build a small network, run the self-stabilizing MDST
// protocol from a fully corrupted configuration, and print the resulting
// spanning tree next to the optimal degree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/mdstseq"
)

func main() {
	// A wheel: one hub connected to a ring. The naive BFS tree is the
	// degree-9 star; the minimum-degree spanning tree is a Hamiltonian
	// path of degree 2.
	g := graph.Wheel(10)
	fmt.Printf("network: n=%d m=%d max graph degree=%d\n", g.N(), g.M(), g.MaxDegree())

	res := harness.MustRun(harness.RunSpec{
		Graph:     g,
		Scheduler: harness.SchedSync,
		Start:     harness.StartCorrupt, // arbitrary initial state (Definition 1)
		Seed:      1,
	})
	if !res.Legit.OK() {
		log.Fatalf("did not stabilize: %+v", res.Legit)
	}

	star, _ := mdstseq.ExactDelta(g, 0)
	fmt.Printf("stabilized after round %d (quiescence declared at round %d)\n",
		res.LastChange, res.Rounds)
	fmt.Printf("tree degree: %d   Δ* = %d   guarantee Δ*+1 = %d\n",
		res.Tree.MaxDegree(), star, star+1)
	fmt.Println("tree edges:")
	for _, e := range res.Tree.Edges() {
		fmt.Printf("  %v\n", e)
	}
	fmt.Printf("messages: %d total, largest %d words (%s)\n",
		res.TotalMessages, res.Metrics.MaxMsgSize, res.Metrics.MaxMsgSizeKind)
}
