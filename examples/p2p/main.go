// Peer-to-peer overlay scenario (the paper's second motivation): relaying
// traffic for others consumes a peer's bandwidth, so the overlay tree
// should spread relay duty — i.e. minimize the maximum degree. This
// example builds an overlay with a hidden low-degree backbone
// (Hamiltonian-augmented), stabilizes the MDST, then simulates peer
// churn by corrupting a batch of peers and shows the tree re-stabilizing
// without global coordination.
//
//	go run ./examples/p2p [-n 40] [-churn 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/mdstseq"
)

func main() {
	n := flag.Int("n", 40, "number of peers")
	churn := flag.Int("churn", 8, "peers whose state churns mid-run")
	seed := flag.Int64("seed", 11, "overlay seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g := graph.HamiltonianAugmented(*n, 2**n, rng)
	fmt.Printf("overlay: n=%d links=%d (hidden backbone: Δ* = 2)\n", g.N(), g.M())

	// Phase 1: stabilize from arbitrary states.
	res := harness.MustRun(harness.RunSpec{
		Graph:     g,
		Scheduler: harness.SchedAsync,
		Start:     harness.StartCorrupt,
		Seed:      *seed,
	})
	if !res.Legit.OK() {
		log.Fatalf("overlay did not stabilize: %+v", res.Legit)
	}
	fmt.Printf("phase 1: stabilized at round %d, relay tree degree %d (bound Δ*+1 = 3)\n",
		res.LastChange, res.Tree.MaxDegree())
	fmt.Printf("  relay duty profile (top 5): %v\n", mdstseq.DegreeProfile(res.Tree)[:5])

	// Phase 2: churn — a batch of peers comes back with garbage state.
	res2 := harness.MustRun(harness.RunSpec{
		Graph:        g,
		Scheduler:    harness.SchedAsync,
		Start:        harness.StartLegitimate,
		CorruptNodes: *churn,
		Seed:         *seed + 1,
	})
	if !res2.Legit.OK() {
		log.Fatalf("overlay did not recover from churn: %+v", res2.Legit)
	}
	fmt.Printf("phase 2: %d peers churned; recovered by round %d, degree %d\n",
		*churn, res2.LastChange, res2.Tree.MaxDegree())
	fmt.Printf("  recovery used %d messages (%d rounds of quiescence check)\n",
		res2.TotalMessages, res2.Rounds)
}
