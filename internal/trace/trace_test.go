package trace

import (
	"strings"
	"testing"
)

func TestSeriesAppendAndColumns(t *testing.T) {
	s := NewSeries("demo", "round", "deg")
	s.Append(0, 5)
	s.Append(1, 3)
	s.Append(2, 2)
	if s.Len() != 3 {
		t.Fatalf("len=%d", s.Len())
	}
	col := s.Column("deg")
	if len(col) != 3 || col[0] != 5 || col[2] != 2 {
		t.Fatalf("column %v", col)
	}
	if s.Last("deg") != 2 || s.Max("deg") != 5 {
		t.Fatal("last/max wrong")
	}
	if s.Row(1)[1] != 3 {
		t.Fatal("row access")
	}
}

func TestSeriesAppendArityPanics(t *testing.T) {
	s := NewSeries("demo", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Append(1)
}

func TestSeriesUnknownColumnPanics(t *testing.T) {
	s := NewSeries("demo", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Column("zzz")
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("demo", "round", "x")
	s.Append(0, 1.5)
	s.Append(1, 2)
	csv := s.CSV()
	want := "round,x\n0,1.5000\n1,2\n"
	if csv != want {
		t.Fatalf("csv:\n%q\nwant:\n%q", csv, want)
	}
}

func TestSeriesEmptyAccessors(t *testing.T) {
	s := NewSeries("demo", "x")
	if s.Last("x") != 0 || s.Max("x") != 0 {
		t.Fatal("empty accessors should return 0")
	}
	if s.CSV() != "x\n" {
		t.Fatal("empty csv")
	}
}

func TestSparkline(t *testing.T) {
	s := NewSeries("demo", "v")
	for i := 0; i < 40; i++ {
		s.Append(float64(i % 10))
	}
	sp := s.Sparkline("v", 8)
	if len([]rune(sp)) != 8 {
		t.Fatalf("sparkline width %d: %q", len([]rune(sp)), sp)
	}
	if !strings.ContainsRune(sp, '█') {
		t.Fatalf("no full block in %q", sp)
	}
	if s.Sparkline("v", 0) != "" {
		t.Fatal("zero width should be empty")
	}
	empty := NewSeries("e", "v")
	if empty.Sparkline("v", 5) != "" {
		t.Fatal("empty series sparkline")
	}
}

func TestSparklineFlatZero(t *testing.T) {
	s := NewSeries("demo", "v")
	s.Append(0)
	s.Append(0)
	sp := s.Sparkline("v", 4)
	if len([]rune(sp)) != 4 {
		t.Fatalf("flat sparkline %q", sp)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := NewSeries("metrics", "round", "sent", "fill")
	s.Append(0, 12, 0.25)
	s.Append(5, 40, 1)
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.Len() != s.Len() {
		t.Fatalf("round-trip shape: name=%q len=%d", got.Name, got.Len())
	}
	for i := 0; i < s.Len(); i++ {
		a, bRow := s.Row(i), got.Row(i)
		for j := range a {
			if a[j] != bRow[j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, a[j], bRow[j])
			}
		}
	}
	if got.Last("fill") != 1 {
		t.Fatalf("Last(fill)=%v", got.Last("fill"))
	}
}

func TestJSONEmptySeries(t *testing.T) {
	s := NewSeries("empty", "round")
	got, err := ReadJSON(strings.NewReader(s.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || len(got.Columns) != 1 {
		t.Fatalf("empty round-trip: len=%d cols=%v", got.Len(), got.Columns)
	}
}

func TestJSONRejectsRaggedRows(t *testing.T) {
	bad := `{"name":"x","columns":["a","b"],"rows":[[1,2],[3]]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("ragged row must be rejected")
	}
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSON must be rejected")
	}
}
