// Package trace records per-round time series of a protocol execution —
// the figure data behind the experiment tables: tree degree over time,
// dmax agreement, legitimacy components, traffic. A Series is a dense
// column-oriented table with CSV and JSON export; the harness fills one
// via its OnRound hook, and the metrics collector
// (internal/metrics) renders its snapshot stream through the same
// Series so both share one export path.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Series is a column-oriented time series: one row per sampled round.
type Series struct {
	Name    string
	Columns []string
	rows    [][]float64
}

// NewSeries creates a series with the given column names. The first
// column is conventionally the round index.
func NewSeries(name string, columns ...string) *Series {
	return &Series{Name: name, Columns: append([]string(nil), columns...)}
}

// Append adds one row; the number of values must match the columns.
func (s *Series) Append(values ...float64) {
	if len(values) != len(s.Columns) {
		panic(fmt.Sprintf("trace: %d values for %d columns", len(values), len(s.Columns)))
	}
	s.rows = append(s.rows, append([]float64(nil), values...))
}

// Len returns the number of rows.
func (s *Series) Len() int { return len(s.rows) }

// Row returns row i (shared slice; do not modify).
func (s *Series) Row(i int) []float64 { return s.rows[i] }

// Column returns a copy of the named column's values.
func (s *Series) Column(name string) []float64 {
	idx := -1
	for i, c := range s.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx == -1 {
		panic("trace: unknown column " + name)
	}
	out := make([]float64, len(s.rows))
	for i, r := range s.rows {
		out[i] = r[idx]
	}
	return out
}

// Last returns the final value of the named column, or 0 on empty.
func (s *Series) Last(name string) float64 {
	col := s.Column(name)
	if len(col) == 0 {
		return 0
	}
	return col[len(col)-1]
}

// Max returns the maximum of the named column, or 0 on empty.
func (s *Series) Max(name string) float64 {
	max := 0.0
	for i, v := range s.Column(name) {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// WriteCSV writes the series as CSV.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(s.Columns, ",")); err != nil {
		return err
	}
	for _, r := range s.rows {
		cells := make([]string, len(r))
		for i, v := range r {
			if v == float64(int64(v)) {
				cells[i] = fmt.Sprintf("%d", int64(v))
			} else {
				cells[i] = fmt.Sprintf("%.4f", v)
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// CSV returns the series rendered as a CSV string.
func (s *Series) CSV() string {
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

// seriesJSON is the stable JSON shape of a Series.
type seriesJSON struct {
	Name    string      `json:"name"`
	Columns []string    `json:"columns"`
	Rows    [][]float64 `json:"rows"`
}

// WriteJSON writes the series as deterministic indented JSON
// ({name, columns, rows}) — the export path metrics time series and
// OnRound traces share.
func (s *Series) WriteJSON(w io.Writer) error {
	rows := s.rows
	if rows == nil {
		rows = [][]float64{}
	}
	b, err := json.MarshalIndent(seriesJSON{Name: s.Name, Columns: s.Columns, Rows: rows}, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// JSON returns the series rendered as a JSON string.
func (s *Series) JSON() string {
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

// ReadJSON parses a series previously written by WriteJSON. Rows with
// a value count different from the column count are rejected — the
// same invariant Append enforces.
func ReadJSON(r io.Reader) (*Series, error) {
	var sj seriesJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, fmt.Errorf("trace: decode series: %w", err)
	}
	s := NewSeries(sj.Name, sj.Columns...)
	for i, row := range sj.Rows {
		if len(row) != len(sj.Columns) {
			return nil, fmt.Errorf("trace: row %d has %d values for %d columns", i, len(row), len(sj.Columns))
		}
		s.Append(row...)
	}
	return s, nil
}

// Sparkline renders one column as a coarse unicode sparkline (terminal
// figure): useful in example output and logs.
func (s *Series) Sparkline(name string, width int) string {
	col := s.Column(name)
	if len(col) == 0 || width <= 0 {
		return ""
	}
	// Downsample to width buckets by max.
	buckets := make([]float64, width)
	for i, v := range col {
		b := i * width / len(col)
		if v > buckets[b] {
			buckets[b] = v
		}
	}
	max := 0.0
	for _, v := range buckets {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range buckets {
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
