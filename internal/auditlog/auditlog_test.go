package auditlog

import "testing"

func TestGenesisDistinguishesRuns(t *testing.T) {
	if Genesis(1, 8) == Genesis(2, 8) {
		t.Fatal("different seeds must give different genesis heads")
	}
	if Genesis(1, 8) == Genesis(1, 9) {
		t.Fatal("different sizes must give different genesis heads")
	}
}

func TestEmptyChainHeadIsGenesis(t *testing.T) {
	g := Genesis(42, 4)
	r := NewRecorder(4, g)
	if r.ChainHead() != g {
		t.Fatalf("empty recorder head = %x, want genesis %x", r.ChainHead(), g)
	}
	if r.Len() != 0 {
		t.Fatalf("empty recorder Len = %d", r.Len())
	}
}

func TestChainDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := NewRecorder(4, Genesis(7, 4))
		r.SetRound(3)
		r.Record(1, KindParentChange, 1, 0)
		r.Record(2, KindReset, 0, 2)
		r.SetRound(9)
		r.Record(1, KindExchange, 0, 3)
		return r
	}
	a, b := build(), build()
	if a.ChainHead() != b.ChainHead() {
		t.Fatalf("identical record sequences disagree: %x vs %x", a.ChainHead(), b.ChainHead())
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
}

func TestChainOrderSensitive(t *testing.T) {
	a := NewRecorder(4, Genesis(7, 4))
	a.Record(1, KindParentChange, 1, 0)
	a.Record(1, KindExchange, 0, 3)
	b := NewRecorder(4, Genesis(7, 4))
	b.Record(1, KindExchange, 0, 3)
	b.Record(1, KindParentChange, 1, 0)
	if a.ChainHead() == b.ChainHead() {
		t.Fatal("reordered per-node records must change the chain head")
	}
}

func TestRoundExcludedFromHash(t *testing.T) {
	a := NewRecorder(2, Genesis(1, 2))
	a.SetRound(5)
	a.Record(0, KindReset, 1, 0)
	b := NewRecorder(2, Genesis(1, 2))
	// No SetRound: wall-clock backends stamp round 0.
	b.Record(0, KindReset, 1, 0)
	if a.ChainHead() != b.ChainHead() {
		t.Fatal("Round must not contribute to the chain hash (wall-clock comparability)")
	}
	if got := a.NodeLog(0)[0].Round; got != 5 {
		t.Fatalf("record round = %d, want 5", got)
	}
}

func TestHookBindsNode(t *testing.T) {
	r := NewRecorder(3, Genesis(1, 3))
	hook := r.Hook(2)
	hook(KindExchange, 0, 1)
	if len(r.NodeLog(2)) != 1 || len(r.NodeLog(0)) != 0 {
		t.Fatal("Hook must append to the bound node's log only")
	}
	recs := r.Records()
	if len(recs) != 1 || recs[0].Node != 2 {
		t.Fatalf("Records() = %+v", recs)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindParentChange: "parent", KindReset: "reset", KindExchange: "exchange", Kind(9): "unknown",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
