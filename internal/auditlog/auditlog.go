// Package auditlog is the tamper-evident record of a run's accepted
// tree mutations: every parent change, blocking-edge exchange
// attachment and deblock-triggered root reset appends a Record to a
// per-run hash chain whose running head is exposed in harness.Result.
//
// The chain is built from the same splitmix64 primitive the quiescence
// detector uses (detect.MixNode), so heads are comparable across
// execution backends: two observers of the same seeded deterministic
// run — or a wall-clock run and its paired sim run when neither
// mutates — must produce byte-identical chain heads. That turns "did
// live and sim really do the same thing?" from a final-state
// comparison into a full-execution comparison, and any divergence in
// the mutation sequence (an extra reset, a re-parenting the other
// backend never applied) changes the head.
//
// Concurrency contract: the Recorder keeps one append-only log per
// node and each node's log is written only by the goroutine executing
// that node (the sim backend is single-threaded; the live and tcp
// backends run one goroutine per node, and a node only ever records
// its own mutations). SetRound is the deterministic simulator's round
// stamp and must not race Record — the sim driver calls both from its
// single run loop; the wall-clock backends never call it, so their
// records carry round 0 (they have no round clock, and Round is
// excluded from the chain hash for exactly that reason). ChainHead and
// Len are read after the run stopped (the drivers' Stop/wg.Wait
// establishes the happens-before edge).
package auditlog

import "mdst/internal/detect"

// Kind classifies one accepted tree mutation.
type Kind uint8

// Mutation kinds. The numeric values are folded into the chain hash,
// so they are part of the cross-backend comparison contract: renumber
// them and every committed chain head changes.
const (
	// KindParentChange is a tree-module re-parenting: the node adopted a
	// better parent (change_parent_to). Old and New are parent IDs.
	KindParentChange Kind = 1
	// KindReset is a tree-module root reset (create_new_root), including
	// the deblock-triggered ones: the node became its own root. Old is
	// the abandoned parent, New the node itself.
	KindReset Kind = 2
	// KindExchange is a re-parenting applied by the degree-reduction
	// choreography (chain reversal hops in core, Remove/Back/Reverse
	// hops in paperproto). Old and New are parent IDs.
	KindExchange Kind = 3
)

// String returns the stable kind label used in dumps and tests.
func (k Kind) String() string {
	switch k {
	case KindParentChange:
		return "parent"
	case KindReset:
		return "reset"
	case KindExchange:
		return "exchange"
	default:
		return "unknown"
	}
}

// Record is one accepted tree mutation. Round is informational only —
// the wall-clock backends have no round clock, so it is excluded from
// the chain hash to keep heads cross-backend comparable.
type Record struct {
	Round int  `json:"round"` // sim round index; 0 on wall-clock backends
	Node  int  `json:"node"`
	Kind  Kind `json:"kind"`
	Old   int  `json:"old"` // previous parent
	New   int  `json:"new"` // adopted parent (the node itself for resets)
}

// Genesis derives the chain's genesis head from the run parameters.
// Distinct (seed, n) pairs get distinct genesis values, so an empty
// chain still identifies which run it audits.
func Genesis(seed int64, n int) uint64 {
	return detect.MixNode(n, uint64(seed))
}

// Recorder accumulates the per-run mutation log. One log per node;
// see the package comment for the single-writer-per-node contract.
type Recorder struct {
	genesis uint64
	round   int
	logs    [][]Record
}

// NewRecorder returns a Recorder for n nodes starting from the given
// genesis head (normally Genesis(seed, n)).
func NewRecorder(n int, genesis uint64) *Recorder {
	return &Recorder{genesis: genesis, logs: make([][]Record, n)}
}

// SetRound stamps subsequent records with the given round index.
// Deterministic-simulator use only; must not race Record.
func (r *Recorder) SetRound(round int) { r.round = round }

// Record appends one accepted mutation to the node's log.
func (r *Recorder) Record(node int, kind Kind, old, new int) {
	r.logs[node] = append(r.logs[node], Record{
		Round: r.round, Node: node, Kind: kind, Old: old, New: new,
	})
}

// Hook returns the node-bound closure the protocol's mutation sites
// invoke; it fixes the node index so the protocol layer never sees the
// Recorder itself.
func (r *Recorder) Hook(node int) func(kind Kind, old, new int) {
	return func(kind Kind, old, new int) { r.Record(node, kind, old, new) }
}

// Len returns the total number of records across all nodes.
func (r *Recorder) Len() int {
	total := 0
	for _, log := range r.logs {
		total += len(log)
	}
	return total
}

// NodeLog returns node's append-order mutation log (read-only view).
func (r *Recorder) NodeLog(node int) []Record { return r.logs[node] }

// Records returns every record in chain order: node-ID-major, each
// node's records in append order — the exact order ChainHead folds.
func (r *Recorder) Records() []Record {
	out := make([]Record, 0, r.Len())
	for _, log := range r.logs {
		out = append(out, log...)
	}
	return out
}

// ChainHead folds the genesis head through every record in chain order
// (node-ID-major, per-node append order). Each record is chained by
// four sequential MixNode applications over (Node, Kind, Old, New);
// Round is deliberately excluded (wall-clock backends have none).
// The fold is order-sensitive by construction — MixNode(a, MixNode(b,
// h)) != MixNode(b, MixNode(a, h)) — so a reordering of a node's
// mutations changes the head even when the multiset of records agrees.
func (r *Recorder) ChainHead() uint64 {
	h := r.genesis
	for _, log := range r.logs {
		for _, rec := range log {
			h = chain(h, rec)
		}
	}
	return h
}

// chain folds one record into the running head.
func chain(h uint64, rec Record) uint64 {
	h = detect.MixNode(rec.Node, h)
	h = detect.MixNode(int(rec.Kind), h)
	h = detect.MixNode(rec.Old, h)
	h = detect.MixNode(rec.New, h)
	return h
}
