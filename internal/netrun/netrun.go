// Package netrun executes the protocol over real TCP connections: each
// node is a goroutine with a listener on the loopback interface, each
// graph edge is one TCP connection carrying gob-encoded messages in
// both directions, and each direction is written by a single goroutine —
// so every link is a reliable FIFO channel, exactly the paper's §2
// communication model realized by an actual network stack.
//
// The wire carries one of two formats, selected by Config.BatchSize and
// shared by both endpoints of a cluster: at batch size 1 (the default)
// every message is its own envelope frame, byte-compatible with the
// pre-batching stream; above 1 each per-direction writer coalesces
// queued messages into multi-message frames flushed on batch-size or
// max-wait, so one node tick costs at most one syscall burst per
// neighbor (see batch.go). Exactly one gob encoder and one gob decoder
// are attached to a connection for its lifetime — gob decoders read
// ahead through an internal buffer, so a second decoder on the same
// conn would silently lose buffered bytes (the hello handshake hands
// its decoder to the edge reader for exactly this reason).
//
// The runtime is restartable: Stop tears down every connection and
// listener but keeps the node states, and a subsequent Start re-dials.
// For a self-stabilizing protocol a restart is just more asynchrony
// (messages in flight at Stop are lost, which the protocol must — and
// does — tolerate), so tests can alternate run phases with safe
// state inspections until the configuration is legitimate.
//
// Convergence is detectable in-band, without stopping anything: every
// node loop publishes its process's quiescence epoch (StateVersion) and
// state hash after each step, and Start opens a side-channel control
// listener serving those observations over a dedicated TCP connection
// (DialProbe / ProbeConn.Sample). A driver feeds the samples to a
// detect.Detector and only stops the cluster once a quiescence
// certificate is issued — which is how the harness's tcp driver avoids
// the stop-the-world restart-per-inspection loop entirely on converging
// runs (Restarts counts the re-starts it did need).
//
// The control channel speaks two request/reply pairs over one
// connection: the quiescence probe (probeRequest/probeReply, the PR-4
// protocol) and the metrics stream (metricsRequest/metricsReply —
// cumulative traffic counters, ProbeConn.Metrics), added for the
// metrics collection surface (internal/metrics). Requests are
// gob-encoded as interface values so one decoder dispatches both kinds
// by type switch; replies are concrete, since the client knows which
// reply its request earns. The single-encoder/single-decoder-per-conn
// rule holds exactly as on the edge connections, and the edge wire
// format itself is untouched — a metrics-polling driver interoperates
// with the PR-6 batching framing unchanged. Metrics requests against a
// cluster built without Config.CountKinds still answer (totals only,
// nil per-kind map), so the pair is always safe to speak.
package netrun

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mdst/internal/detect"
	"mdst/internal/graph"
	"mdst/internal/sim"
)

// envelope is the wire format: one message with its sender.
type envelope struct {
	From int
	Msg  sim.Message
}

// hello identifies the dialing endpoint of an edge connection.
type hello struct {
	From int
}

// Config controls a Cluster.
type Config struct {
	// TickInterval is the gossip period of each node's "do forever" loop
	// (default 2ms: TCP round trips are slower than channel sends).
	TickInterval time.Duration
	// OutboxSize is the per-direction send buffer in messages (default
	// 1024). A full outbox drops the newest message — over TCP the
	// protocol's periodic gossip refreshes any lost state, and dropping
	// beats deadlocking the node loop.
	OutboxSize int
	// ActiveKinds names the message kinds whose sent/received counters
	// feed the control channel's quiescence samples (the protocol's
	// reduction kinds: they must both drain and stop flowing at the
	// fixed point, while periodic gossip keeps going forever). Empty
	// disables the accounting; probes then report a zero deficit and
	// detection rests on version-vector and fingerprint stability.
	ActiveKinds []string
	// BatchSize caps how many messages one wire frame may carry
	// (default 1: every message is its own envelope frame, the
	// pre-batching wire format). Above 1 each per-direction writer
	// coalesces queued messages into multi-message frames — see
	// batch.go for the format and the flush policy.
	BatchSize int
	// BatchMaxWait bounds how long a partially filled frame may stay
	// open for further messages after its first (0: flush immediately
	// with whatever is already queued, so coalescing only amortizes
	// backlog and adds zero latency). Only meaningful above batch
	// size 1.
	BatchMaxWait time.Duration
	// CountKinds enables per-kind send counters for the control
	// channel's metrics replies (ProbeConn.Metrics). Off by default:
	// the per-send map update, cheap as it is, stays entirely off the
	// hot path unless a driver asked to observe the breakdown.
	CountKinds bool
}

// Cluster runs one process per node of g over loopback TCP.
type Cluster struct {
	g     *graph.Graph
	cfg   Config
	procs []sim.Process

	mu      sync.Mutex
	running bool
	starts  int // Start calls so far; starts-1 is the restart count
	stop    chan struct{}
	wg      sync.WaitGroup
	inbox   []chan envelope
	outbox  []map[int]*sendLink // node -> neighbor -> send direction
	lns     []net.Listener
	conns   []net.Conn
	dropped atomic.Int64
	sent    atomic.Int64
	frames  atomic.Int64
	// kindSent breaks sent down by message kind (Config.CountKinds
	// only): string -> *atomic.Int64, lock-free on the send path.
	kindSent sync.Map

	// testWriteErr and testAfterListen are fault-injection hooks for the
	// regression tests (dead-writer settlement, Start-failure cleanup).
	// Only set before Start; nil in production.
	testWriteErr    func(me, peer int) error
	testAfterListen func()

	// In-band quiescence observation. Each node loop publishes its
	// process's state version and state hash into these after every
	// step (single-writer: the node's own goroutine), and the control
	// channel reads them — no locks, no stopping the cluster.
	versioners []sim.StateVersioner
	fpers      []sim.Fingerprinter
	versions   []atomic.Uint64
	fps        []atomic.Uint64

	// Active-kind accounting for the Dijkstra–Scholten deficit.
	// activeLost absorbs active messages lost to a Stop (in-flight
	// messages die with the connections): Start re-baselines it so the
	// published deficit counts only messages genuinely in flight since
	// the current phase began. Lost messages are counted as settled —
	// the self-stabilizing protocol re-issues any work they carried.
	active     map[string]struct{}
	activeSent atomic.Int64
	activeRecv atomic.Int64
	activeLost atomic.Int64

	// Control channel: one listener per running cluster, any number of
	// probe connections. ctlMu guards the connection list (handlers
	// register concurrently with Stop closing them).
	ctlLn    net.Listener
	ctlMu    sync.Mutex
	ctlConns []net.Conn
}

// Dropped returns the number of messages dropped by full outboxes.
func (c *Cluster) Dropped() int64 { return c.dropped.Load() }

// Sent returns the number of messages accepted onto outboxes so far.
// The counter accumulates across Stop/Start cycles — a restart never
// resets it, so drivers can report whole-run traffic.
func (c *Cluster) Sent() int64 { return c.sent.Load() }

// FramesWritten returns the number of wire frames the edge writers have
// flushed so far (accumulating across restarts, like Sent). With
// batching off every message is one frame; FramesWritten/Sent is the
// coalescing figure of merit the tcp benchmark records.
func (c *Cluster) FramesWritten() int64 { return c.frames.Load() }

// Restarts returns how many times the cluster has been re-started after
// its first Start. The harness's tcp driver asserts this stays zero on
// converging runs: certificate-gated probing needs no stop-the-world
// inspections.
func (c *Cluster) Restarts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.starts > 1 {
		return c.starts - 1
	}
	return 0
}

// NewCluster builds the cluster. The factory contract matches
// sim.NewNetwork: called once per node in ID order.
func NewCluster(g *graph.Graph, factory func(id int, neighbors []int) sim.Process, cfg Config) *Cluster {
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 2 * time.Millisecond
	}
	if cfg.OutboxSize <= 0 {
		cfg.OutboxSize = 1024
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if cfg.BatchMaxWait < 0 {
		cfg.BatchMaxWait = 0
	}
	n := g.N()
	c := &Cluster{
		g: g, cfg: cfg,
		procs:      make([]sim.Process, n),
		versioners: make([]sim.StateVersioner, n),
		fpers:      make([]sim.Fingerprinter, n),
		versions:   make([]atomic.Uint64, n),
		fps:        make([]atomic.Uint64, n),
	}
	if len(cfg.ActiveKinds) > 0 {
		c.active = make(map[string]struct{}, len(cfg.ActiveKinds))
		for _, k := range cfg.ActiveKinds {
			c.active[k] = struct{}{}
		}
	}
	for id := 0; id < n; id++ {
		c.procs[id] = factory(id, g.Neighbors(id))
		if vs, ok := c.procs[id].(sim.StateVersioner); ok {
			c.versioners[id] = vs
		}
		if fp, ok := c.procs[id].(sim.Fingerprinter); ok {
			c.fpers[id] = fp
		}
	}
	return c
}

// Process returns the process at node id. Only safe to call before Start
// or after Stop.
func (c *Cluster) Process(id int) sim.Process { return c.procs[id] }

// Graph returns the topology.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Start listens, dials every edge and launches the node loops. It
// returns once the whole mesh is connected.
func (c *Cluster) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return fmt.Errorf("netrun: already running")
	}
	n := c.g.N()
	c.stop = make(chan struct{})
	c.starts++
	// Re-baseline the in-flight accounting: whatever active messages the
	// previous phase left undelivered died with its connections, so they
	// are settled (lost), not in flight. Counters are frozen while
	// stopped, so this read-modify-write is race-free.
	c.activeLost.Store(c.activeSent.Load() - c.activeRecv.Load())
	c.inbox = make([]chan envelope, n)
	c.outbox = make([]map[int]*sendLink, n)
	c.lns = make([]net.Listener, n)
	c.conns = nil
	for id := 0; id < n; id++ {
		c.inbox[id] = make(chan envelope, 4096)
		c.outbox[id] = make(map[int]*sendLink, len(c.g.Neighbors(id)))
		for _, u := range c.g.Neighbors(id) {
			c.outbox[id][u] = &sendLink{q: make(chan sim.Message, c.cfg.OutboxSize)}
		}
	}

	addrs := make([]string, n)
	for id := 0; id < n; id++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.teardownLocked()
			return fmt.Errorf("netrun: listen node %d: %w", id, err)
		}
		c.lns[id] = ln
		addrs[id] = ln.Addr().String()
	}
	if c.testAfterListen != nil {
		c.testAfterListen()
	}

	// Side-channel control listener: probe clients query the cluster's
	// quiescence observations here while it runs.
	ctl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.teardownLocked()
		return fmt.Errorf("netrun: control listen: %w", err)
	}
	c.ctlLn = ctl
	c.ctlMu.Lock()
	c.ctlConns = nil
	c.ctlMu.Unlock()
	c.wg.Add(1)
	go c.serveControl(ctl, c.stop)

	// Accept side: each node expects one connection per lower-ID
	// neighbor; the dialer sends a hello naming itself. The hello
	// decoder travels with the connection (bugfix): gob decoders read
	// ahead through an internal buffer, so a second decoder on the same
	// conn would silently lose any frame bytes this one buffered past
	// the hello — rare at one frame per message, near-certain once
	// batching packs frames back-to-back.
	type accepted struct {
		to   int
		conn net.Conn
		dec  *gob.Decoder
		from int
		err  error
	}
	expect := 0
	for id := 0; id < n; id++ {
		for _, u := range c.g.Neighbors(id) {
			if u < id {
				expect++
			}
		}
	}
	// Buffered to every expected connection (bugfix): a Start that fails
	// mid-dial takes the teardown path without draining acceptCh, and an
	// unbuffered send would strand accept goroutines — and the conns
	// they hold — forever (c.wg never knew them, so Stop could not help).
	acceptCh := make(chan accepted, expect)
	var acceptWG sync.WaitGroup
	for id := 0; id < n; id++ {
		want := 0
		for _, u := range c.g.Neighbors(id) {
			if u < id {
				want++
			}
		}
		if want == 0 {
			continue
		}
		acceptWG.Add(1)
		go func(id, want int) {
			defer acceptWG.Done()
			for k := 0; k < want; k++ {
				conn, err := c.lns[id].Accept()
				if err != nil {
					acceptCh <- accepted{to: id, err: err}
					return
				}
				dec := gob.NewDecoder(conn)
				var h hello
				if err := dec.Decode(&h); err != nil {
					conn.Close()
					acceptCh <- accepted{to: id, err: err}
					return
				}
				acceptCh <- accepted{to: id, conn: conn, dec: dec, from: h.From}
			}
		}(id, want)
	}

	// failStart cleans up a partially connected mesh: teardown closes
	// listeners (unblocking every accept goroutine) and started edges,
	// the wait guarantees all sends on the buffered channel happened,
	// and the drain closes accepted conns nobody will ever own.
	failStart := func() {
		c.teardownLocked()
		acceptWG.Wait()
		for {
			select {
			case a := <-acceptCh:
				if a.conn != nil {
					a.conn.Close()
				}
			default:
				return
			}
		}
	}

	// Dial side: the lower-ID endpoint of each edge dials the higher.
	for id := 0; id < n; id++ {
		for _, u := range c.g.Neighbors(id) {
			if u < id { // u dials id; we dial only our higher neighbors
				continue
			}
			conn, err := net.Dial("tcp", addrs[u])
			if err != nil {
				failStart()
				return fmt.Errorf("netrun: dial %d->%d: %w", id, u, err)
			}
			// One encoder per direction for the connection's lifetime:
			// it writes the hello and then every frame (a second encoder
			// would re-emit type definitions mid-stream). The bufio layer
			// turns each flushed frame into one syscall burst.
			bw := bufio.NewWriterSize(conn, frameBufSize)
			enc := gob.NewEncoder(bw)
			err = enc.Encode(hello{From: id})
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				conn.Close()
				failStart()
				return fmt.Errorf("netrun: hello %d->%d: %w", id, u, err)
			}
			c.conns = append(c.conns, conn)
			c.startEdge(id, u, conn, enc, bw, gob.NewDecoder(conn))
		}
	}
	for k := 0; k < expect; k++ {
		a := <-acceptCh
		if a.err != nil {
			failStart()
			return fmt.Errorf("netrun: accept at %d: %w", a.to, a.err)
		}
		c.conns = append(c.conns, a.conn)
		bw := bufio.NewWriterSize(a.conn, frameBufSize)
		c.startEdge(a.to, a.from, a.conn, gob.NewEncoder(bw), bw, a.dec)
	}

	// Node loops.
	for id := 0; id < n; id++ {
		id := id
		ctx := sim.NewContext(id, c.g.Neighbors(id), c.send)
		c.procs[id].Init(ctx)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			// Publish this node's quiescence epoch (state version) and
			// state hash for the control channel after every step. The
			// node's own goroutine is the single writer; the StateVersion
			// fast path skips re-hashing when the version did not move,
			// so a quiesced node's ticks publish nothing.
			vs, fper := c.versioners[id], c.fpers[id]
			var lastV uint64
			published := false
			publish := func() {
				if vs != nil {
					v := vs.StateVersion()
					if published && v == lastV {
						return
					}
					lastV = v
				}
				var f uint64
				if fper != nil {
					f = fper.Fingerprint()
				}
				c.fps[id].Store(f)
				if vs != nil {
					c.versions[id].Store(lastV)
				} else {
					// No version to report: the state hash doubles as the
					// quiescence epoch (it moves exactly when state does).
					c.versions[id].Store(f)
				}
				published = true
			}
			publish()
			ticker := time.NewTicker(c.cfg.TickInterval)
			defer ticker.Stop()
			for {
				select {
				case <-c.stop:
					return
				case env := <-c.inbox[id]:
					c.procs[id].Receive(ctx, env.From, env.Msg)
					if c.active != nil {
						if _, ok := c.active[env.Msg.Kind()]; ok {
							c.activeRecv.Add(1)
						}
					}
					publish()
				case <-ticker.C:
					c.procs[id].Tick(ctx)
					publish()
				}
			}
		}()
	}
	c.running = true
	return nil
}

// startEdge launches the writer (draining me's outbox toward peer,
// coalescing per batch.go) and the reader (decoding the peer's frames
// into me's inbox) for one direction pair of an edge connection. enc
// and dec must be the connection's ONLY encoder/decoder — the accept
// path hands over the decoder that already read the hello, because a
// fresh decoder would lose whatever that one buffered ahead.
func (c *Cluster) startEdge(me, peer int, conn net.Conn, enc *gob.Encoder, bw *bufio.Writer, dec *gob.Decoder) {
	_ = conn // owned by Stop/teardown; all I/O goes through enc/bw/dec
	stop := c.stop
	link := c.outbox[me][peer]
	in := c.inbox[me]
	c.wg.Add(2)
	go func() { // writer: me -> peer
		defer c.wg.Done()
		c.writeLoop(me, peer, link, enc, bw, stop)
	}()
	go func() { // reader: peer -> me
		defer c.wg.Done()
		c.readLoop(in, dec, stop)
	}()
}

// send enqueues a message on the per-direction outbox; a full outbox
// drops the message (gossip repair handles the loss).
func (c *Cluster) send(from, to int, m sim.Message) {
	l, ok := c.outbox[from][to]
	if !ok {
		panic(fmt.Sprintf("netrun: node %d sent to non-neighbor %d", from, to))
	}
	if l.dead.Load() {
		// The writer died mid-phase (connection failure): drop — never
		// counted sent — so the active-kind deficit cannot be starved by
		// a direction nobody drains (bugfix; see killLink).
		c.dropped.Add(1)
		return
	}
	select {
	case l.q <- m:
		c.sent.Add(1)
		if c.active != nil {
			if _, ok := c.active[m.Kind()]; ok {
				c.activeSent.Add(1)
			}
		}
		if c.cfg.CountKinds {
			v, ok := c.kindSent.Load(m.Kind())
			if !ok {
				v, _ = c.kindSent.LoadOrStore(m.Kind(), new(atomic.Int64))
			}
			v.(*atomic.Int64).Add(1)
		}
	default:
		// Dropped before entering any queue: never counted as sent, so
		// the active-kind deficit stays balanced.
		c.dropped.Add(1)
	}
}

// probeRequest/probeReply and metricsRequest/metricsReply are the
// control channel's wire format: a client sends a sequenced request
// and gets the cluster's current observation back. Requests travel as
// gob interface values (registered below) so the server's single
// decoder dispatches both pairs on one stream by type switch.
type probeRequest struct {
	Seq uint64
}

// metricsRequest asks for the cluster's cumulative traffic counters.
type metricsRequest struct {
	Seq uint64
}

func init() {
	// Interface-encoded control requests: both concrete request types
	// must be registered on both ends of the connection.
	gob.Register(probeRequest{})
	gob.Register(metricsRequest{})
}

type probeReply struct {
	Seq uint64
	// Versions is the per-node quiescence-epoch vector (state versions,
	// or state hashes for processes that report none).
	Versions []uint64
	// Fingerprint is the combined state fingerprint (detect.Combine of
	// the published per-node hashes).
	Fingerprint uint64
	// ActiveSent and ActiveReceived are the active-kind message
	// counters; received includes messages settled as lost by restarts,
	// so the difference is the genuine in-flight deficit.
	ActiveSent     int64
	ActiveReceived int64
}

// probeReply builds one observation. The counter ordering is
// conservative: received is loaded before the per-node scan and sent
// after it, so the reported deficit can only overestimate the number of
// active messages in flight — a skewed sample delays a certificate,
// never forges one.
func (c *Cluster) probeReply(seq uint64) probeReply {
	n := len(c.procs)
	r := probeReply{Seq: seq, Versions: make([]uint64, n)}
	r.ActiveReceived = c.activeRecv.Load() + c.activeLost.Load()
	var combined uint64
	for id := 0; id < n; id++ {
		r.Versions[id] = c.versions[id].Load()
		combined ^= detect.MixNode(id, c.fps[id].Load())
	}
	r.Fingerprint = combined
	r.ActiveSent = c.activeSent.Load()
	return r
}

// metricsReply carries the cluster's cumulative traffic counters — the
// metrics stream's wall-clock observables. Per-kind counts are nil
// unless the cluster was built with Config.CountKinds.
type metricsReply struct {
	Seq            uint64
	SentTotal      int64
	SentByKind     map[string]int64
	Dropped        int64
	Frames         int64
	ActiveSent     int64
	ActiveReceived int64
}

// metricsReply builds one metrics observation (same conservative
// counter ordering as probeReply: received before sent).
func (c *Cluster) metricsReply(seq uint64) metricsReply {
	r := metricsReply{Seq: seq}
	r.ActiveReceived = c.activeRecv.Load() + c.activeLost.Load()
	r.SentByKind = c.SentByKind()
	r.Dropped = c.dropped.Load()
	r.Frames = c.frames.Load()
	r.SentTotal = c.sent.Load()
	r.ActiveSent = c.activeSent.Load()
	return r
}

// SentByKind returns a copy of the per-kind send counters, nil unless
// the cluster was built with Config.CountKinds. Safe to call at any
// time (atomic reads).
func (c *Cluster) SentByKind() map[string]int64 {
	if !c.cfg.CountKinds {
		return nil
	}
	out := make(map[string]int64)
	c.kindSent.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// serveControl accepts probe connections until the listener closes and
// answers each request with the current observation.
func (c *Cluster) serveControl(ln net.Listener, stop chan struct{}) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Stop/teardown
		}
		c.ctlMu.Lock()
		select {
		case <-stop:
			// Stop already ran (or is closing conns): don't register a
			// connection nobody will close.
			c.ctlMu.Unlock()
			conn.Close()
			continue
		default:
		}
		c.ctlConns = append(c.ctlConns, conn)
		c.ctlMu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			// Close on handler exit so a client that sent garbage (or
			// half a request) is shed instead of left hanging on a reply
			// that will never come; the registry close in Stop is then a
			// harmless double close.
			defer conn.Close()
			dec := gob.NewDecoder(conn)
			enc := gob.NewEncoder(conn)
			for {
				// Requests are interface-encoded so the two request kinds
				// share one decoder stream (the registered concrete type
				// rides inside the gob interface value).
				var req any
				if err := dec.Decode(&req); err != nil {
					return // client gone or teardown
				}
				switch r := req.(type) {
				case probeRequest:
					if err := enc.Encode(c.probeReply(r.Seq)); err != nil {
						return
					}
				case metricsRequest:
					if err := enc.Encode(c.metricsReply(r.Seq)); err != nil {
						return
					}
				default:
					return // unknown request kind: drop the connection
				}
			}
		}()
	}
}

// ControlAddr returns the control listener's address. Only meaningful
// while the cluster is running; empty otherwise.
func (c *Cluster) ControlAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.running || c.ctlLn == nil {
		return ""
	}
	return c.ctlLn.Addr().String()
}

// ProbeConn is a client of a running cluster's control channel. It is
// the side channel the harness's tcp driver uses to watch for
// quiescence without stopping the cluster; one request/reply round trip
// per Sample. Not safe for concurrent use.
type ProbeConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	seq  uint64
}

// DialProbe connects to a cluster's control channel (ControlAddr).
func DialProbe(addr string) (*ProbeConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netrun: dial control: %w", err)
	}
	return &ProbeConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Sample fetches one quiescence observation, shaped for detect.Detector.
func (p *ProbeConn) Sample() (detect.Sample, error) {
	p.seq++
	var req any = probeRequest{Seq: p.seq}
	if err := p.enc.Encode(&req); err != nil {
		return detect.Sample{}, fmt.Errorf("netrun: probe request: %w", err)
	}
	var r probeReply
	if err := p.dec.Decode(&r); err != nil {
		return detect.Sample{}, fmt.Errorf("netrun: probe reply: %w", err)
	}
	if r.Seq != p.seq {
		return detect.Sample{}, fmt.Errorf("netrun: probe reply out of sequence: got %d want %d", r.Seq, p.seq)
	}
	return detect.Sample{
		Versions:       r.Versions,
		Fingerprint:    r.Fingerprint,
		ActiveSent:     r.ActiveSent,
		ActiveReceived: r.ActiveReceived,
	}, nil
}

// MetricsSample is one metrics-stream observation fetched over the
// control channel: the cluster's cumulative traffic counters.
// SentByKind is nil unless the cluster was built with Config.CountKinds.
type MetricsSample struct {
	SentTotal      int64
	SentByKind     map[string]int64
	Dropped        int64
	Frames         int64
	ActiveSent     int64
	ActiveReceived int64
}

// Metrics fetches one metrics observation. It shares the connection's
// sequence space with Sample — the two request kinds interleave freely
// on one ProbeConn (still not safe for concurrent use).
func (p *ProbeConn) Metrics() (MetricsSample, error) {
	p.seq++
	var req any = metricsRequest{Seq: p.seq}
	if err := p.enc.Encode(&req); err != nil {
		return MetricsSample{}, fmt.Errorf("netrun: metrics request: %w", err)
	}
	var r metricsReply
	if err := p.dec.Decode(&r); err != nil {
		return MetricsSample{}, fmt.Errorf("netrun: metrics reply: %w", err)
	}
	if r.Seq != p.seq {
		return MetricsSample{}, fmt.Errorf("netrun: metrics reply out of sequence: got %d want %d", r.Seq, p.seq)
	}
	return MetricsSample{
		SentTotal:      r.SentTotal,
		SentByKind:     r.SentByKind,
		Dropped:        r.Dropped,
		Frames:         r.Frames,
		ActiveSent:     r.ActiveSent,
		ActiveReceived: r.ActiveReceived,
	}, nil
}

// Close closes the control connection.
func (p *ProbeConn) Close() error { return p.conn.Close() }

// closeControlLocked shuts the control listener and every registered
// probe connection. Caller holds mu; close(stop) must already have
// happened so late registrations see the closed channel.
func (c *Cluster) closeControlLocked() {
	if c.ctlLn != nil {
		c.ctlLn.Close()
	}
	c.ctlMu.Lock()
	for _, conn := range c.ctlConns {
		conn.Close()
	}
	c.ctlConns = nil
	c.ctlMu.Unlock()
}

// Stop tears down connections and listeners and waits for every
// goroutine. Node states remain inspectable and a new Start resumes.
func (c *Cluster) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.running {
		return
	}
	close(c.stop)
	c.closeControlLocked()
	for _, ln := range c.lns {
		if ln != nil {
			ln.Close()
		}
	}
	for _, conn := range c.conns {
		conn.Close()
	}
	c.wg.Wait()
	c.running = false
}

// teardownLocked releases partially created resources after a Start
// failure. Caller holds mu.
func (c *Cluster) teardownLocked() {
	if c.stop != nil {
		select {
		case <-c.stop:
		default:
			close(c.stop)
		}
	}
	c.closeControlLocked()
	for _, ln := range c.lns {
		if ln != nil {
			ln.Close()
		}
	}
	for _, conn := range c.conns {
		conn.Close()
	}
	c.wg.Wait()
}

// RunFor starts the cluster, lets it run for d, then stops it.
func (c *Cluster) RunFor(d time.Duration) error {
	if err := c.Start(); err != nil {
		return err
	}
	time.Sleep(d)
	c.Stop()
	return nil
}

// RunUntil alternates run phases of `phase` each with safe inspections
// of the stopped cluster until check returns true or maxPhases phases
// have run. It reports whether check ever succeeded.
func (c *Cluster) RunUntil(phase time.Duration, maxPhases int, check func() bool) (bool, error) {
	for k := 0; k < maxPhases; k++ {
		if err := c.RunFor(phase); err != nil {
			return false, err
		}
		if check() {
			return true, nil
		}
	}
	return false, nil
}
