// Package netrun executes the protocol over real TCP connections: each
// node is a goroutine with a listener on the loopback interface, each
// graph edge is one TCP connection carrying gob-encoded envelopes in
// both directions, and each direction is written by a single goroutine —
// so every link is a reliable FIFO channel, exactly the paper's §2
// communication model realized by an actual network stack.
//
// The runtime is restartable: Stop tears down every connection and
// listener but keeps the node states, and a subsequent Start re-dials.
// For a self-stabilizing protocol a restart is just more asynchrony
// (messages in flight at Stop are lost, which the protocol must — and
// does — tolerate), so tests can alternate run phases with safe
// state inspections until the configuration is legitimate.
package netrun

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mdst/internal/graph"
	"mdst/internal/sim"
)

// envelope is the wire format: one message with its sender.
type envelope struct {
	From int
	Msg  sim.Message
}

// hello identifies the dialing endpoint of an edge connection.
type hello struct {
	From int
}

// Config controls a Cluster.
type Config struct {
	// TickInterval is the gossip period of each node's "do forever" loop
	// (default 2ms: TCP round trips are slower than channel sends).
	TickInterval time.Duration
	// OutboxSize is the per-direction send buffer in messages (default
	// 1024). A full outbox drops the newest message — over TCP the
	// protocol's periodic gossip refreshes any lost state, and dropping
	// beats deadlocking the node loop.
	OutboxSize int
}

// Cluster runs one process per node of g over loopback TCP.
type Cluster struct {
	g     *graph.Graph
	cfg   Config
	procs []sim.Process

	mu      sync.Mutex
	running bool
	stop    chan struct{}
	wg      sync.WaitGroup
	inbox   []chan envelope
	outbox  []map[int]chan sim.Message // node -> neighbor -> send queue
	lns     []net.Listener
	conns   []net.Conn
	dropped atomic.Int64
	sent    atomic.Int64
}

// Dropped returns the number of messages dropped by full outboxes.
func (c *Cluster) Dropped() int64 { return c.dropped.Load() }

// Sent returns the number of messages accepted onto outboxes so far.
func (c *Cluster) Sent() int64 { return c.sent.Load() }

// NewCluster builds the cluster. The factory contract matches
// sim.NewNetwork: called once per node in ID order.
func NewCluster(g *graph.Graph, factory func(id int, neighbors []int) sim.Process, cfg Config) *Cluster {
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 2 * time.Millisecond
	}
	if cfg.OutboxSize <= 0 {
		cfg.OutboxSize = 1024
	}
	c := &Cluster{g: g, cfg: cfg, procs: make([]sim.Process, g.N())}
	for id := 0; id < g.N(); id++ {
		c.procs[id] = factory(id, g.Neighbors(id))
	}
	return c
}

// Process returns the process at node id. Only safe to call before Start
// or after Stop.
func (c *Cluster) Process(id int) sim.Process { return c.procs[id] }

// Graph returns the topology.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Start listens, dials every edge and launches the node loops. It
// returns once the whole mesh is connected.
func (c *Cluster) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return fmt.Errorf("netrun: already running")
	}
	n := c.g.N()
	c.stop = make(chan struct{})
	c.inbox = make([]chan envelope, n)
	c.outbox = make([]map[int]chan sim.Message, n)
	c.lns = make([]net.Listener, n)
	c.conns = nil
	for id := 0; id < n; id++ {
		c.inbox[id] = make(chan envelope, 4096)
		c.outbox[id] = make(map[int]chan sim.Message, len(c.g.Neighbors(id)))
		for _, u := range c.g.Neighbors(id) {
			c.outbox[id][u] = make(chan sim.Message, c.cfg.OutboxSize)
		}
	}

	addrs := make([]string, n)
	for id := 0; id < n; id++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.teardownLocked()
			return fmt.Errorf("netrun: listen node %d: %w", id, err)
		}
		c.lns[id] = ln
		addrs[id] = ln.Addr().String()
	}

	// Accept side: each node expects one connection per lower-ID
	// neighbor; the dialer sends a hello naming itself.
	type accepted struct {
		to   int
		conn net.Conn
		from int
		err  error
	}
	expect := 0
	acceptCh := make(chan accepted)
	for id := 0; id < n; id++ {
		for _, u := range c.g.Neighbors(id) {
			if u < id {
				expect++
			}
		}
		go func(id int) {
			want := 0
			for _, u := range c.g.Neighbors(id) {
				if u < id {
					want++
				}
			}
			for k := 0; k < want; k++ {
				conn, err := c.lns[id].Accept()
				if err != nil {
					acceptCh <- accepted{to: id, err: err}
					return
				}
				var h hello
				if err := gob.NewDecoder(conn).Decode(&h); err != nil {
					acceptCh <- accepted{to: id, err: err}
					return
				}
				acceptCh <- accepted{to: id, conn: conn, from: h.From}
			}
		}(id)
	}

	// Dial side: the lower-ID endpoint of each edge dials the higher.
	for id := 0; id < n; id++ {
		for _, u := range c.g.Neighbors(id) {
			if u < id { // u dials id; we dial only our higher neighbors
				continue
			}
			conn, err := net.Dial("tcp", addrs[u])
			if err != nil {
				c.teardownLocked()
				return fmt.Errorf("netrun: dial %d->%d: %w", id, u, err)
			}
			enc := gob.NewEncoder(conn)
			if err := enc.Encode(hello{From: id}); err != nil {
				conn.Close()
				c.teardownLocked()
				return fmt.Errorf("netrun: hello %d->%d: %w", id, u, err)
			}
			c.conns = append(c.conns, conn)
			c.startEdge(id, u, conn, enc)
		}
	}
	for k := 0; k < expect; k++ {
		a := <-acceptCh
		if a.err != nil {
			c.teardownLocked()
			return fmt.Errorf("netrun: accept at %d: %w", a.to, a.err)
		}
		c.conns = append(c.conns, a.conn)
		c.startEdge(a.to, a.from, a.conn, gob.NewEncoder(a.conn))
	}

	// Node loops.
	for id := 0; id < n; id++ {
		id := id
		ctx := sim.NewContext(id, c.g.Neighbors(id), c.send)
		c.procs[id].Init(ctx)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			ticker := time.NewTicker(c.cfg.TickInterval)
			defer ticker.Stop()
			for {
				select {
				case <-c.stop:
					return
				case env := <-c.inbox[id]:
					c.procs[id].Receive(ctx, env.From, env.Msg)
				case <-ticker.C:
					c.procs[id].Tick(ctx)
				}
			}
		}()
	}
	c.running = true
	return nil
}

// startEdge launches the writer (draining me's outbox toward peer) and
// the reader (decoding the peer's messages into me's inbox) for one
// direction pair of an edge connection.
func (c *Cluster) startEdge(me, peer int, conn net.Conn, enc *gob.Encoder) {
	stop := c.stop
	out := c.outbox[me][peer]
	in := c.inbox[me]
	c.wg.Add(2)
	go func() { // writer: me -> peer
		defer c.wg.Done()
		for {
			select {
			case <-stop:
				return
			case m := <-out:
				if err := enc.Encode(envelope{From: me, Msg: m}); err != nil {
					return // connection torn down
				}
			}
		}
	}()
	go func() { // reader: peer -> me
		defer c.wg.Done()
		dec := gob.NewDecoder(conn)
		for {
			var env envelope
			if err := dec.Decode(&env); err != nil {
				return // EOF or teardown
			}
			select {
			case <-stop:
				return
			case in <- env:
			}
		}
	}()
}

// send enqueues a message on the per-direction outbox; a full outbox
// drops the message (gossip repair handles the loss).
func (c *Cluster) send(from, to int, m sim.Message) {
	q, ok := c.outbox[from][to]
	if !ok {
		panic(fmt.Sprintf("netrun: node %d sent to non-neighbor %d", from, to))
	}
	select {
	case q <- m:
		c.sent.Add(1)
	default:
		c.dropped.Add(1)
	}
}

// Stop tears down connections and listeners and waits for every
// goroutine. Node states remain inspectable and a new Start resumes.
func (c *Cluster) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.running {
		return
	}
	close(c.stop)
	for _, ln := range c.lns {
		if ln != nil {
			ln.Close()
		}
	}
	for _, conn := range c.conns {
		conn.Close()
	}
	c.wg.Wait()
	c.running = false
}

// teardownLocked releases partially created resources after a Start
// failure. Caller holds mu.
func (c *Cluster) teardownLocked() {
	if c.stop != nil {
		select {
		case <-c.stop:
		default:
			close(c.stop)
		}
	}
	for _, ln := range c.lns {
		if ln != nil {
			ln.Close()
		}
	}
	for _, conn := range c.conns {
		conn.Close()
	}
	c.wg.Wait()
}

// RunFor starts the cluster, lets it run for d, then stops it.
func (c *Cluster) RunFor(d time.Duration) error {
	if err := c.Start(); err != nil {
		return err
	}
	time.Sleep(d)
	c.Stop()
	return nil
}

// RunUntil alternates run phases of `phase` each with safe inspections
// of the stopped cluster until check returns true or maxPhases phases
// have run. It reports whether check ever succeeded.
func (c *Cluster) RunUntil(phase time.Duration, maxPhases int, check func() bool) (bool, error) {
	for k := 0; k < maxPhases; k++ {
		if err := c.RunFor(phase); err != nil {
			return false, err
		}
		if check() {
			return true, nil
		}
	}
	return false, nil
}
