package netrun

import (
	"net"
	"runtime"
	"testing"
	"time"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/sim"
)

// buildCoreKinds wires a cluster of primary-variant nodes with per-kind
// send counting on.
func buildCoreKinds(g *graph.Graph) *Cluster {
	cfg := core.DefaultConfig(g.N())
	return NewCluster(g, func(id int, nbrs []int) sim.Process {
		return core.NewNode(id, nbrs, cfg)
	}, Config{CountKinds: true})
}

// TestMetricsOverControlChannel exercises the metrics request/reply pair
// end to end: the two request kinds interleave on one ProbeConn, the
// traffic counters are live, and the per-kind breakdown sums to the
// total (every send increments both under CountKinds).
func TestMetricsOverControlChannel(t *testing.T) {
	g := graph.Wheel(6)
	c := buildCoreKinds(g)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	probe, err := DialProbe(c.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()

	if _, err := probe.Sample(); err != nil {
		t.Fatal("probe before metrics:", err)
	}
	time.Sleep(50 * time.Millisecond) // let some gossip flow
	ms, err := probe.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if ms.SentTotal <= 0 {
		t.Fatalf("no traffic observed (SentTotal=%d)", ms.SentTotal)
	}
	if len(ms.SentByKind) == 0 {
		t.Fatal("CountKinds on but SentByKind empty")
	}
	var sum int64
	for kind, v := range ms.SentByKind {
		if v <= 0 {
			t.Fatalf("non-positive count for kind %q: %d", kind, v)
		}
		sum += v
	}
	if sum > ms.SentTotal {
		t.Fatalf("per-kind sum %d exceeds SentTotal %d", sum, ms.SentTotal)
	}
	// The pair interleaves with the probe pair on the same connection.
	if _, err := probe.Sample(); err != nil {
		t.Fatal("probe after metrics:", err)
	}
	later, err := probe.Metrics()
	if err != nil {
		t.Fatal("second metrics fetch:", err)
	}
	if later.SentTotal < ms.SentTotal {
		t.Fatalf("SentTotal went backwards: %d then %d", ms.SentTotal, later.SentTotal)
	}
}

// TestMetricsWithoutCountKinds: the metrics pair is always safe to
// speak; without Config.CountKinds the reply carries totals only.
func TestMetricsWithoutCountKinds(t *testing.T) {
	g := graph.Ring(5)
	cfg := core.DefaultConfig(g.N())
	c := NewCluster(g, func(id int, nbrs []int) sim.Process {
		return core.NewNode(id, nbrs, cfg)
	}, Config{})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	probe, err := DialProbe(c.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	time.Sleep(30 * time.Millisecond)
	ms, err := probe.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if ms.SentByKind != nil {
		t.Fatalf("SentByKind should be nil without CountKinds, got %v", ms.SentByKind)
	}
	if ms.SentTotal <= 0 {
		t.Fatalf("totals must still flow (SentTotal=%d)", ms.SentTotal)
	}
}

// Satellite regression: a control client that disconnects mid-request —
// half a gob frame, then gone — must be shed by the server without
// leaking its per-connection goroutine and without stalling
// Cluster.Stop. Before the per-connection registry this hung Stop
// (wg.Wait waited on a handler blocked in Decode on a dead conn).
func TestControlClientDisconnectMidRequest(t *testing.T) {
	g := graph.Wheel(6)
	c := buildCoreKinds(g)
	before := runtime.NumGoroutine()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	// Client 1: connect, write half a gob stream (a type descriptor with
	// no value), vanish. The server handler must not spin or crash.
	raw, err := net.Dial("tcp", c.ControlAddr())
	if err != nil {
		c.Stop()
		t.Fatal(err)
	}
	raw.Write([]byte{0x07, 0xff, 0x81, 0x03}) // truncated gob preamble
	raw.Close()

	// Client 2: a full handshake followed by an abrupt disconnect while
	// the server may still be mid-reply.
	probe, err := DialProbe(c.ControlAddr())
	if err != nil {
		c.Stop()
		t.Fatal(err)
	}
	if _, err := probe.Sample(); err != nil {
		probe.Close()
		c.Stop()
		t.Fatal(err)
	}
	probe.Close()

	// The cluster must keep serving fresh clients after both departures.
	probe2, err := DialProbe(c.ControlAddr())
	if err != nil {
		c.Stop()
		t.Fatal(err)
	}
	if _, err := probe2.Sample(); err != nil {
		probe2.Close()
		c.Stop()
		t.Fatalf("control channel dead after client disconnects: %v", err)
	}
	if _, err := probe2.Metrics(); err != nil {
		probe2.Close()
		c.Stop()
		t.Fatalf("metrics pair dead after client disconnects: %v", err)
	}
	probe2.Close()

	// Stop must return promptly (it wg.Waits on every handler): run it
	// under a watchdog so a leaked handler fails the test instead of
	// hanging the suite.
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Cluster.Stop stalled by a disconnected control client")
	}

	// Every goroutine the run launched — node loops, edge workers, and
	// all three connection handlers — must be gone.
	ok := false
	for wait := time.Now().Add(5 * time.Second); time.Now().Before(wait); {
		if runtime.NumGoroutine() <= before {
			ok = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Fatalf("goroutines leaked by disconnected control clients: %d before, %d after",
			before, runtime.NumGoroutine())
	}
}

// TestUnknownControlRequestDropsConnection: a registered-but-unexpected
// request type closes that connection without disturbing the listener.
func TestUnknownControlRequestDropsConnection(t *testing.T) {
	g := graph.Ring(4)
	c := buildCoreKinds(g)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	probe, err := DialProbe(c.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	// Speak a concrete (non-interface) probeRequest — the pre-extension
	// client encoding. The server decodes into an interface and cannot
	// match it, so it drops the connection.
	if err := probe.enc.Encode(probeRequest{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	var r probeReply
	if err := probe.dec.Decode(&r); err == nil {
		t.Fatal("server answered a non-interface-encoded request")
	}
	probe.Close()

	// The listener survives: fresh clients still get answers.
	probe2, err := DialProbe(c.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer probe2.Close()
	if _, err := probe2.Sample(); err != nil {
		t.Fatalf("listener hurt by dropped connection: %v", err)
	}
}
