package netrun

import (
	"encoding/gob"

	"mdst/internal/core"
	"mdst/internal/paperproto"
)

// Gob needs the concrete message types behind the sim.Message interface
// registered once per process. Both protocol variants' wire formats are
// registered so a cluster can run either.
func init() {
	gob.Register(core.InfoMsg{})
	gob.Register(core.SearchMsg{})
	gob.Register(core.ReverseMsg{})
	gob.Register(core.DeblockMsg{})
	gob.Register(core.UpdateDistMsg{})
	gob.Register(paperproto.RemoveMsg{})
	gob.Register(paperproto.BackMsg{})
	gob.Register(paperproto.ReverseMsg{})
}
