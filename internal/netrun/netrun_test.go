package netrun

import (
	"math/rand"
	"testing"
	"time"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/paperproto"
	"mdst/internal/sim"
)

// buildCore wires a cluster of primary-variant nodes over g.
func buildCore(g *graph.Graph) *Cluster {
	cfg := core.DefaultConfig(g.N())
	return NewCluster(g, func(id int, nbrs []int) sim.Process {
		return core.NewNode(id, nbrs, cfg)
	}, Config{})
}

func coreNodes(c *Cluster) []*core.Node {
	out := make([]*core.Node, c.Graph().N())
	for i := range out {
		out[i] = c.Process(i).(*core.Node)
	}
	return out
}

// TestTCPWheelConverges runs the protocol over real TCP sockets on a
// wheel graph until the configuration is legitimate — the end-to-end
// proof that the implementation works outside the simulator.
func TestTCPWheelConverges(t *testing.T) {
	g := graph.Wheel(8)
	c := buildCore(g)
	ok, err := c.RunUntil(250*time.Millisecond, 40, func() bool {
		return core.CheckLegitimacy(g, coreNodes(c)).OK()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		leg := core.CheckLegitimacy(g, coreNodes(c))
		t.Fatalf("no legitimacy over TCP: %+v", leg)
	}
	tree, err := core.ExtractTree(g, coreNodes(c))
	if err != nil {
		t.Fatal(err)
	}
	// Wheel(8): Δ* = 2 (Hamiltonian path exists), so deg(T) <= 3.
	if tree.MaxDegree() > 3 {
		t.Fatalf("degree %d > 3 over TCP", tree.MaxDegree())
	}
}

// TestTCPCorruptedStart corrupts every node before the first Start.
func TestTCPCorruptedStart(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomGnp(9, 0.45, rng)
	c := buildCore(g)
	for _, nd := range coreNodes(c) {
		nd.Corrupt(rng, g.N())
	}
	// Generous budget: the race detector slows handlers ~10x and this
	// runs on wall-clock phases, not simulated rounds.
	ok, err := c.RunUntil(250*time.Millisecond, 120, func() bool {
		return core.CheckLegitimacy(g, coreNodes(c)).OK()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no recovery over TCP: %+v", core.CheckLegitimacy(g, coreNodes(c)))
	}
}

// TestTCPLiteralVariant runs the literal-choreography variant over TCP.
func TestTCPLiteralVariant(t *testing.T) {
	g := graph.Wheel(7)
	cfg := paperproto.DefaultConfig(g.N())
	c := NewCluster(g, func(id int, nbrs []int) sim.Process {
		return paperproto.NewNode(id, nbrs, cfg)
	}, Config{})
	nodes := func() []*paperproto.Node {
		out := make([]*paperproto.Node, g.N())
		for i := range out {
			out[i] = c.Process(i).(*paperproto.Node)
		}
		return out
	}
	ok, err := c.RunUntil(250*time.Millisecond, 40, func() bool {
		return paperproto.CheckLegitimacy(g, nodes()).OK()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("literal variant no legitimacy over TCP: %+v",
			paperproto.CheckLegitimacy(g, nodes()))
	}
}

// TestStartStopIdempotence: Stop without Start is a no-op; double Start
// errors; restart works.
func TestStartStopIdempotence(t *testing.T) {
	g := graph.Ring(4)
	c := buildCore(g)
	c.Stop() // no-op
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		c.Stop()
		t.Fatal("double Start did not error")
	}
	c.Stop()
	if err := c.Start(); err != nil {
		t.Fatalf("restart failed: %v", err)
	}
	c.Stop()
}

// TestSendToNonNeighborPanics: locality is enforced over TCP too.
func TestSendToNonNeighborPanics(t *testing.T) {
	g := graph.Path(3) // 0-1-2: 0 and 2 are not adjacent
	c := buildCore(g)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	defer func() {
		if recover() == nil {
			t.Error("send to non-neighbor did not panic")
		}
	}()
	c.send(0, 2, core.UpdateDistMsg{Dist: 1})
}
