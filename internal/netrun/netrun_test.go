package netrun

import (
	"math/rand"
	"testing"
	"time"

	"mdst/internal/core"
	"mdst/internal/detect"
	"mdst/internal/graph"
	"mdst/internal/paperproto"
	"mdst/internal/sim"
)

// buildCore wires a cluster of primary-variant nodes over g.
func buildCore(g *graph.Graph) *Cluster {
	cfg := core.DefaultConfig(g.N())
	return NewCluster(g, func(id int, nbrs []int) sim.Process {
		return core.NewNode(id, nbrs, cfg)
	}, Config{})
}

func coreNodes(c *Cluster) []*core.Node {
	out := make([]*core.Node, c.Graph().N())
	for i := range out {
		out[i] = c.Process(i).(*core.Node)
	}
	return out
}

// TestTCPWheelConverges runs the protocol over real TCP sockets on a
// wheel graph until the configuration is legitimate — the end-to-end
// proof that the implementation works outside the simulator.
func TestTCPWheelConverges(t *testing.T) {
	g := graph.Wheel(8)
	c := buildCore(g)
	ok, err := c.RunUntil(250*time.Millisecond, 40, func() bool {
		return core.CheckLegitimacy(g, coreNodes(c)).OK()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		leg := core.CheckLegitimacy(g, coreNodes(c))
		t.Fatalf("no legitimacy over TCP: %+v", leg)
	}
	tree, err := core.ExtractTree(g, coreNodes(c))
	if err != nil {
		t.Fatal(err)
	}
	// Wheel(8): Δ* = 2 (Hamiltonian path exists), so deg(T) <= 3.
	if tree.MaxDegree() > 3 {
		t.Fatalf("degree %d > 3 over TCP", tree.MaxDegree())
	}
}

// TestTCPCorruptedStart corrupts every node before the first Start.
func TestTCPCorruptedStart(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomGnp(9, 0.45, rng)
	c := buildCore(g)
	for _, nd := range coreNodes(c) {
		nd.Corrupt(rng, g.N())
	}
	// Generous budget: the race detector slows handlers ~10x and this
	// runs on wall-clock phases, not simulated rounds.
	ok, err := c.RunUntil(250*time.Millisecond, 120, func() bool {
		return core.CheckLegitimacy(g, coreNodes(c)).OK()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no recovery over TCP: %+v", core.CheckLegitimacy(g, coreNodes(c)))
	}
}

// TestTCPLiteralVariant runs the literal-choreography variant over TCP.
func TestTCPLiteralVariant(t *testing.T) {
	g := graph.Wheel(7)
	cfg := paperproto.DefaultConfig(g.N())
	c := NewCluster(g, func(id int, nbrs []int) sim.Process {
		return paperproto.NewNode(id, nbrs, cfg)
	}, Config{})
	nodes := func() []*paperproto.Node {
		out := make([]*paperproto.Node, g.N())
		for i := range out {
			out[i] = c.Process(i).(*paperproto.Node)
		}
		return out
	}
	ok, err := c.RunUntil(250*time.Millisecond, 40, func() bool {
		return paperproto.CheckLegitimacy(g, nodes()).OK()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("literal variant no legitimacy over TCP: %+v",
			paperproto.CheckLegitimacy(g, nodes()))
	}
}

// TestStartStopIdempotence: Stop without Start is a no-op; double Start
// errors; restart works.
func TestStartStopIdempotence(t *testing.T) {
	g := graph.Ring(4)
	c := buildCore(g)
	c.Stop() // no-op
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		c.Stop()
		t.Fatal("double Start did not error")
	}
	c.Stop()
	if err := c.Start(); err != nil {
		t.Fatalf("restart failed: %v", err)
	}
	c.Stop()
}

// Satellite regression: the Sent counter accumulates across phase
// restarts — a Stop/Start cycle must never reset it. This pins the
// whole-run traffic semantics the certificate-gated driver reports (and
// that the old restart-per-inspection loop relied on implicitly).
func TestSentAccumulatesAcrossRestarts(t *testing.T) {
	g := graph.Wheel(6)
	c := buildCore(g)
	if err := c.RunFor(150 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	first := c.Sent()
	if first <= 0 {
		t.Fatalf("no messages accepted in the first phase (Sent=%d)", first)
	}
	if c.Restarts() != 0 {
		t.Fatalf("Restarts=%d after one Start", c.Restarts())
	}
	if err := c.RunFor(150 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if second := c.Sent(); second <= first {
		t.Fatalf("Sent reset across restart: %d after restart, %d before", second, first)
	}
	if c.Restarts() != 1 {
		t.Fatalf("Restarts=%d after two Starts, want 1", c.Restarts())
	}
}

// End-to-end in-band detection: watch a running cluster over the
// side-channel control connection only — no Stop, no state inspection —
// until a detect certificate is issued, then stop once and verify the
// cluster really is legitimate and the certificate's fingerprint equals
// the combine of the stopped processes' state hashes.
func TestControlChannelCertifiesQuiescence(t *testing.T) {
	g := graph.Wheel(8)
	cfg := core.DefaultConfig(g.N())
	c := NewCluster(g, func(id int, nbrs []int) sim.Process {
		return core.NewNode(id, nbrs, cfg)
	}, Config{ActiveKinds: core.ReductionKinds()})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	probe, err := DialProbe(c.ControlAddr())
	if err != nil {
		c.Stop()
		t.Fatal(err)
	}
	// Window sized like the harness driver: cover a full search retry
	// period in ticks (harness.QuiesceWindowRounds; restated here to
	// avoid a netrun->harness test import cycle), converted to probes.
	window := time.Duration(2*g.N()+40+2*cfg.SearchPeriod) * 2 * time.Millisecond
	det := detect.New(detect.Config{Window: int(window/(5*time.Millisecond)) + 1, Backend: "tcp"})
	deadline := time.Now().Add(60 * time.Second)
	var cert detect.Certificate
	certified := false
	for !certified && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		s, err := probe.Sample()
		if err != nil {
			probe.Close()
			c.Stop()
			t.Fatal(err)
		}
		cert, certified = det.Observe(s)
	}
	probe.Close()
	c.Stop()
	if !certified {
		t.Fatalf("no certificate within the deadline (epoch %d, streak %d)", det.Epoch(), det.Stable())
	}
	if !core.CheckLegitimacy(g, coreNodes(c)).OK() {
		t.Fatalf("certified but not legitimate: %+v", core.CheckLegitimacy(g, coreNodes(c)))
	}
	fps := make([]uint64, g.N())
	for id := range fps {
		fps[id] = c.Process(id).(*core.Node).Fingerprint()
	}
	if want := detect.Combine(fps); cert.Fingerprint != want {
		t.Fatalf("certificate fingerprint %x != combine of stopped state %x", cert.Fingerprint, want)
	}
	if cert.Sent != cert.Received {
		t.Fatalf("certificate deficit %d", cert.Sent-cert.Received)
	}
	if c.Restarts() != 0 {
		t.Fatalf("in-band detection restarted the cluster %d times", c.Restarts())
	}
}

// TestSendToNonNeighborPanics: locality is enforced over TCP too.
func TestSendToNonNeighborPanics(t *testing.T) {
	g := graph.Path(3) // 0-1-2: 0 and 2 are not adjacent
	c := buildCore(g)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	defer func() {
		if recover() == nil {
			t.Error("send to non-neighbor did not panic")
		}
	}()
	c.send(0, 2, core.UpdateDistMsg{Dist: 1})
}
