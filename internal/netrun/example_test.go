package netrun_test

import (
	"fmt"
	"time"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/netrun"
	"mdst/internal/sim"
)

// Example runs the protocol over real loopback TCP connections until the
// configuration is legitimate.
func Example() {
	g := graph.Wheel(8)
	cfg := core.DefaultConfig(g.N())
	cluster := netrun.NewCluster(g, func(id int, nbrs []int) sim.Process {
		return core.NewNode(id, nbrs, cfg)
	}, netrun.Config{})
	nodes := func() []*core.Node {
		out := make([]*core.Node, g.N())
		for i := range out {
			out[i] = cluster.Process(i).(*core.Node)
		}
		return out
	}
	ok, err := cluster.RunUntil(250*time.Millisecond, 40, func() bool {
		return core.CheckLegitimacy(g, nodes()).OK()
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tree, _ := core.ExtractTree(g, nodes())
	fmt.Println("legitimate over TCP:", ok)
	fmt.Println("degree within Δ*+1:", tree.MaxDegree() <= 3)
	// Output:
	// legitimate over TCP: true
	// degree within Δ*+1: true
}
