package netrun

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/sim"
)

// pingMsg is a minimal active-kind message for transport-level tests:
// the protocol under test is the cluster itself, not MDST.
type pingMsg struct{ Seq int }

func (pingMsg) Kind() string { return "ping" }
func (pingMsg) Size() int    { return 64 }

func init() { gob.Register(pingMsg{}) }

// pinger sends one ping to every neighbor per tick.
type pinger struct{ seq int }

func (p *pinger) Init(ctx *sim.Context) {}
func (p *pinger) Tick(ctx *sim.Context) {
	p.seq++
	for _, u := range ctx.Neighbors() {
		ctx.Send(u, pingMsg{Seq: p.seq})
	}
}
func (p *pinger) Receive(ctx *sim.Context, from sim.NodeID, m sim.Message) {}

// --- Bugfix regression: gob stream handoff -------------------------------

// The accept side decodes the hello and then hands the SAME decoder to
// startEdge. A gob decoder buffers ahead, so when the dialer's hello and
// its first envelopes arrive in one burst (here: one buffered Write —
// exactly what the batching writer produces), a second decoder on the
// conn would read from after the buffered bytes and lose or corrupt
// every buffered envelope. This test drives the handoff directly and
// fails by timeout under the old two-decoder accept path.
func TestHelloDecoderHandoffSurvivesBurst(t *testing.T) {
	g := graph.Path(2)
	c := NewCluster(g, func(id int, nbrs []int) sim.Process {
		return &pinger{}
	}, Config{})
	// Minimal Start plumbing for one edge direction (no node loops: the
	// inbox is inspected directly).
	c.stop = make(chan struct{})
	defer close(c.stop)
	c.inbox = []chan envelope{make(chan envelope, 64), make(chan envelope, 64)}
	c.outbox = []map[int]*sendLink{
		{1: &sendLink{q: make(chan sim.Message, 8)}},
		{0: &sendLink{q: make(chan sim.Message, 8)}},
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptedCh := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		acceptedCh <- conn
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-acceptedCh
	defer server.Close()

	// Dialer: hello + 5 envelopes gob-encoded back-to-back into ONE
	// buffer, delivered in ONE Write — the burst the hello decoder will
	// buffer past the hello.
	const burst = 5
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(hello{From: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < burst; i++ {
		if err := enc.Encode(envelope{From: 1, Msg: pingMsg{Seq: i}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Accept path under test: decode the hello, hand the SAME decoder to
	// startEdge (the fix; a fresh gob.NewDecoder(server) here reproduces
	// the lost-envelope bug).
	dec := gob.NewDecoder(server)
	var h hello
	if err := dec.Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.From != 1 {
		t.Fatalf("hello from %d, want 1", h.From)
	}
	bw := bufio.NewWriterSize(server, frameBufSize)
	c.startEdge(0, 1, server, gob.NewEncoder(bw), bw, dec)

	for i := 0; i < burst; i++ {
		select {
		case env := <-c.inbox[0]:
			if got := env.Msg.(pingMsg).Seq; got != i {
				t.Fatalf("envelope %d out of order: seq %d", i, got)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("envelope %d of %d never arrived: the hello decoder's buffered bytes were lost", i, burst)
		}
	}
}

// --- Bugfix regression: dead-writer deficit starvation -------------------

// A writer that dies mid-phase must not leave the Dijkstra–Scholten
// deficit permanently positive: sends to the dead direction count as
// dropped (never sent), and whatever the queue held — all counted sent —
// is settled as lost. The published deficit must therefore return to
// zero; before the fix it grows monotonically with every ping queued
// onto the dead direction and the probe path can never certify.
func TestDeadWriterSettlesDeficit(t *testing.T) {
	g := graph.Path(2)
	c := NewCluster(g, func(id int, nbrs []int) sim.Process {
		return &pinger{}
	}, Config{
		TickInterval: time.Millisecond,
		ActiveKinds:  []string{"ping"},
	})
	// Kill the 0->1 writer on its first frame (and every retry).
	injected := errors.New("injected encode failure")
	c.testWriteErr = func(me, peer int) error {
		if me == 0 && peer == 1 {
			return injected
		}
		return nil
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	deadline := time.Now().Add(10 * time.Second)
	sawZero := false
	var last probeReply
	for time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		last = c.probeReply(0)
		if last.ActiveSent > 0 && last.ActiveSent == last.ActiveReceived {
			sawZero = true
			break
		}
	}
	if !sawZero {
		t.Fatalf("published deficit never returned to zero: sent=%d received(+lost)=%d",
			last.ActiveSent, last.ActiveReceived)
	}
	if c.Dropped() == 0 {
		t.Fatal("no sends were counted dropped on the dead direction")
	}
}

// --- Bugfix regression: Start-failure goroutine leak ---------------------

// A Start that fails mid-dial must not strand accept goroutines: before
// the fix, goroutines that had already accepted a connection blocked
// forever on the unbuffered acceptCh send (and their conns leaked with
// them) because the error path never drains the channel and wg never
// knew them. Path(8) makes the failure late: listeners 1..6 accept
// their edge before the dial to the closed listener 7 fails.
func TestStartFailureDoesNotLeakAcceptGoroutines(t *testing.T) {
	g := graph.Path(8)
	c := NewCluster(g, func(id int, nbrs []int) sim.Process {
		return &pinger{}
	}, Config{TickInterval: time.Millisecond})
	c.testAfterListen = func() { c.lns[7].Close() }

	before := runtime.NumGoroutine()
	if err := c.Start(); err == nil {
		c.Stop()
		t.Fatal("Start succeeded despite the closed listener")
	}

	// Every goroutine Start launched must be gone; allow the runtime a
	// grace period to observe the exits.
	ok := false
	for wait := time.Now().Add(5 * time.Second); time.Now().Before(wait); {
		if runtime.NumGoroutine() <= before {
			ok = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Fatalf("goroutines leaked by failed Start: %d before, %d after", before, runtime.NumGoroutine())
	}

	// The teardown must leave the cluster restartable: a fresh Start
	// (listeners re-created, no hook) runs normally.
	c.testAfterListen = nil
	if err := c.Start(); err != nil {
		t.Fatalf("cluster not restartable after failed Start: %v", err)
	}
	c.Stop()
}

// --- Wire format ---------------------------------------------------------

// encodeWire renders what a writer with the given config puts on the
// wire for one coalesced batch.
func encodeWire(t *testing.T, cfg Config, me int, batch []sim.Message) []byte {
	t.Helper()
	c := &Cluster{cfg: cfg}
	if c.cfg.BatchSize <= 0 {
		c.cfg.BatchSize = 1
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := c.writeFrame(gob.NewEncoder(bw), bw, me, 1, batch); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The batch frame encoding is pinned so the wire format cannot drift
// silently: batch size 1 must stay byte-identical to the pre-batching
// envelope-per-message stream, and the batched format must round-trip
// with count and order intact.
func TestBatchWireFormatPinned(t *testing.T) {
	msgs := []sim.Message{
		core.UpdateDistMsg{Dist: 1},
		core.UpdateDistMsg{Dist: 2},
		core.UpdateDistMsg{Dist: 3},
	}

	// Batch size 1: byte-for-byte the legacy stream.
	var legacy bytes.Buffer
	enc := gob.NewEncoder(&legacy)
	for _, m := range msgs {
		if err := enc.Encode(envelope{From: 3, Msg: m}); err != nil {
			t.Fatal(err)
		}
	}
	var got []byte
	{
		c := &Cluster{cfg: Config{BatchSize: 1}}
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		e := gob.NewEncoder(bw)
		for _, m := range msgs {
			if err := c.writeFrame(e, bw, 3, 1, []sim.Message{m}); err != nil {
				t.Fatal(err)
			}
		}
		got = buf.Bytes()
	}
	if !bytes.Equal(got, legacy.Bytes()) {
		t.Fatalf("batch=1 wire bytes drifted from the legacy envelope stream:\n got %x\nwant %x", got, legacy.Bytes())
	}

	// Batched: one frame carrying the whole batch, decoding to the same
	// messages in the same order.
	wire := encodeWire(t, Config{BatchSize: 16}, 3, msgs)
	dec := gob.NewDecoder(bytes.NewReader(wire))
	var f frame
	if err := dec.Decode(&f); err != nil {
		t.Fatal(err)
	}
	if f.From != 3 || len(f.Msgs) != len(msgs) {
		t.Fatalf("frame decoded as from=%d count=%d, want from=3 count=%d", f.From, len(f.Msgs), len(msgs))
	}
	for i, m := range f.Msgs {
		if m.(core.UpdateDistMsg) != msgs[i].(core.UpdateDistMsg) {
			t.Fatalf("frame message %d decoded as %+v, want %+v", i, m, msgs[i])
		}
	}
	var second frame
	if err := dec.Decode(&second); err == nil {
		t.Fatal("batched wire held more than one frame for one batch")
	}

	// The batch must cost ONE frame on the wire, not one per message —
	// the whole point of the format (amortized From + one count prefix).
	if perMsg := len(encodeWire(t, Config{BatchSize: 1}, 3, msgs[:1])); len(wire) >= 3*perMsg {
		t.Fatalf("batched frame (%dB) is not smaller than 3 envelope frames (3×%dB)", len(wire), perMsg)
	}
}

// --- End-to-end batching -------------------------------------------------

// A batched cluster must still converge through the certificate path —
// and actually coalesce: the frame count must come in well under the
// message count. This is the `make smoke` tcp-batch job.
func TestTCPBatchedWheelConverges(t *testing.T) {
	g := graph.Wheel(8)
	cfg := core.DefaultConfig(g.N())
	c := NewCluster(g, func(id int, nbrs []int) sim.Process {
		return core.NewNode(id, nbrs, cfg)
	}, Config{
		BatchSize:    16,
		BatchMaxWait: time.Millisecond,
		ActiveKinds:  core.ReductionKinds(),
	})
	ok, err := c.RunUntil(250*time.Millisecond, 40, func() bool {
		return core.CheckLegitimacy(g, coreNodes(c)).OK()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no legitimacy over batched TCP: %+v", core.CheckLegitimacy(g, coreNodes(c)))
	}
	sent, frames := c.Sent(), c.FramesWritten()
	if frames <= 0 || sent <= 0 {
		t.Fatalf("counters missing: sent=%d frames=%d", sent, frames)
	}
	if frames >= sent {
		t.Fatalf("batching never coalesced: %d frames for %d messages", frames, sent)
	}
	t.Logf("batched run: %d messages in %d frames (%.3f frames/message)",
		sent, frames, float64(frames)/float64(sent))
}

// A full outbox must still drop (not block) with the batching layer in
// place, and a dead link must drop at send.
func TestSendPathsWithBatching(t *testing.T) {
	g := graph.Path(2)
	c := NewCluster(g, func(id int, nbrs []int) sim.Process {
		return &pinger{}
	}, Config{BatchSize: 4, OutboxSize: 2})
	c.inbox = []chan envelope{make(chan envelope, 4), make(chan envelope, 4)}
	c.outbox = []map[int]*sendLink{
		{1: &sendLink{q: make(chan sim.Message, 2)}},
		{0: &sendLink{q: make(chan sim.Message, 2)}},
	}
	// No writer is draining: the third send overflows the queue.
	for i := 0; i < 3; i++ {
		c.send(0, 1, pingMsg{Seq: i})
	}
	if got := c.Dropped(); got != 1 {
		t.Fatalf("overflow dropped %d messages, want 1", got)
	}
	if got := c.Sent(); got != 2 {
		t.Fatalf("sent %d, want 2", got)
	}
	// A dead link drops every send without touching the queue.
	c.outbox[0][1].dead.Store(true)
	c.send(0, 1, pingMsg{Seq: 9})
	if got := c.Dropped(); got != 2 {
		t.Fatalf("dead-link send dropped %d total, want 2", got)
	}
	if got := c.Sent(); got != 2 {
		t.Fatalf("dead-link send was counted sent (%d)", got)
	}
}

// The config defaults pin the wire-compatible baseline: batch size 1,
// no frame hold time.
func TestBatchConfigDefaults(t *testing.T) {
	c := NewCluster(graph.Path(2), func(id int, nbrs []int) sim.Process { return &pinger{} }, Config{})
	if c.cfg.BatchSize != 1 {
		t.Fatalf("default BatchSize %d, want 1 (wire-compatible)", c.cfg.BatchSize)
	}
	c2 := NewCluster(graph.Path(2), func(id int, nbrs []int) sim.Process { return &pinger{} },
		Config{BatchSize: 8, BatchMaxWait: -time.Second})
	if c2.cfg.BatchMaxWait != 0 {
		t.Fatalf("negative BatchMaxWait not normalized: %v", c2.cfg.BatchMaxWait)
	}
}
