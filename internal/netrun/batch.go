package netrun

// Per-link frame coalescing: the transport layer that lets the tcp
// backend keep its fast tick past n=128. The pre-batching stream wrote
// one gob frame per message per edge direction — at medium n the
// resulting syscall fan-out saturates the socket layer, keeps stale
// tokens in flight, and forced an 8ms tick where 2ms should do. Here a
// per-direction writer drains its outbox into multi-message frames:
// flush on batch-size or max-wait, bufio-backed so one frame is one
// syscall burst, so one node tick costs at most one burst per neighbor.
//
// Wire format: with Config.BatchSize <= 1 every message travels as its
// own envelope — byte-identical to the pre-batching stream (pinned by
// TestBatchWireFormatPinned). Above 1 the writer packs up to BatchSize
// queued messages into one frame (gob encodes the Msgs slice with a
// leading count — the count prefix of the batch format) and the reader
// unpacks it in order, preserving the reliable-FIFO link abstraction.
// Both endpoints of a cluster share one Config, so the two formats
// never mix on a wire.
//
// Exactly one gob encoder and one gob decoder touch a connection for
// its whole lifetime. Decoders read ahead through an internal buffer,
// so a second decoder on the same conn silently loses whatever its
// predecessor buffered — harmless-looking at one frame per message,
// fatal once frames pack back-to-back (see startEdge and the hello
// handoff in Start).

import (
	"bufio"
	"encoding/gob"
	"sync/atomic"
	"time"

	"mdst/internal/sim"
)

// frame is the batched wire format: all Msgs share one From, so the
// per-message envelope overhead is paid once per frame.
type frame struct {
	From int
	Msgs []sim.Message
}

// sendLink is one direction of an edge: the outbox queue plus the dead
// flag its writer raises when the connection fails mid-phase. A dead
// link drops at send (never counted sent), so nothing accumulates on a
// queue nobody drains.
type sendLink struct {
	q    chan sim.Message
	dead atomic.Bool
}

// frameBufSize backs each direction's bufio.Writer: large enough that a
// full frame of gossip flushes in one Write.
const frameBufSize = 32 * 1024

// writeLoop drains link.q toward peer, one frame per iteration. The
// first message of a frame is taken blocking; above batch size 1 the
// rest coalesce per collectBatch. A write error is a mid-phase link
// death: killLink settles the undeliverable messages (bugfix — they
// were counted sent, so leaving them queued would hold the published
// Dijkstra–Scholten deficit positive forever and starve the
// certificate path).
func (c *Cluster) writeLoop(me, peer int, link *sendLink, enc *gob.Encoder, bw *bufio.Writer, stop chan struct{}) {
	batch := make([]sim.Message, 0, c.cfg.BatchSize)
	for {
		batch = batch[:0]
		select {
		case <-stop:
			return
		case m := <-link.q:
			batch = append(batch, m)
		}
		if c.cfg.BatchSize > 1 {
			batch = c.collectBatch(link, batch, stop)
		}
		if err := c.writeFrame(enc, bw, me, peer, batch); err != nil {
			c.killLink(link, batch, stop)
			return
		}
		c.frames.Add(1)
	}
}

// collectBatch fills a started batch up to Config.BatchSize: a greedy
// pass first takes whatever is already queued (free coalescing — under
// backlog this alone packs full frames with zero added latency), then a
// positive BatchMaxWait keeps the frame open for stragglers until the
// timer fires.
func (c *Cluster) collectBatch(link *sendLink, batch []sim.Message, stop chan struct{}) []sim.Message {
	size := c.cfg.BatchSize
	for len(batch) < size {
		select {
		case m := <-link.q:
			batch = append(batch, m)
			continue
		default:
		}
		break
	}
	if len(batch) >= size || c.cfg.BatchMaxWait <= 0 {
		return batch
	}
	timer := time.NewTimer(c.cfg.BatchMaxWait)
	defer timer.Stop()
	for len(batch) < size {
		select {
		case <-stop:
			return batch
		case m := <-link.q:
			batch = append(batch, m)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// writeFrame encodes one coalesced batch and flushes it in a single
// syscall burst. Batch size 1 keeps the pre-batching wire format — one
// envelope per message — so the default is byte-compatible with every
// stream written before the batching layer existed.
func (c *Cluster) writeFrame(enc *gob.Encoder, bw *bufio.Writer, me, peer int, batch []sim.Message) error {
	if c.testWriteErr != nil {
		if err := c.testWriteErr(me, peer); err != nil {
			return err
		}
	}
	if c.cfg.BatchSize > 1 {
		if err := enc.Encode(frame{From: me, Msgs: batch}); err != nil {
			return err
		}
	} else {
		for _, m := range batch {
			if err := enc.Encode(envelope{From: me, Msg: m}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// killLink handles a writer death mid-phase (bugfix): the direction is
// marked dead so send drops instead of enqueueing, the frame that
// failed and everything still queued are settled as lost (they were
// counted sent; settling keeps the published deficit able to reach
// zero), and the loop keeps settling stragglers that raced past the
// dead check until the phase stops — so no message is ever both counted
// sent and left un-settled.
func (c *Cluster) killLink(link *sendLink, pending []sim.Message, stop chan struct{}) {
	link.dead.Store(true)
	for _, m := range pending {
		c.settleLost(m)
	}
	for {
		select {
		case m := <-link.q:
			c.settleLost(m)
		case <-stop:
			return
		}
	}
}

// settleLost counts one undeliverable active-kind message as settled.
// Lost messages join activeLost (not activeRecv): Start's re-baseline
// overwrites activeLost with the full sent-received gap, so the two
// accountings agree across restarts.
func (c *Cluster) settleLost(m sim.Message) {
	if c.active == nil {
		return
	}
	if _, ok := c.active[m.Kind()]; ok {
		c.activeLost.Add(1)
	}
}

// readLoop decodes the peer's stream into me's inbox, unpacking batch
// frames in order (the link stays reliable FIFO: frame order is socket
// order, in-frame order is slice order).
func (c *Cluster) readLoop(in chan envelope, dec *gob.Decoder, stop chan struct{}) {
	if c.cfg.BatchSize > 1 {
		for {
			var f frame
			if err := dec.Decode(&f); err != nil {
				return // EOF or teardown
			}
			for _, m := range f.Msgs {
				select {
				case <-stop:
					return
				case in <- envelope{From: f.From, Msg: m}:
				}
			}
		}
	}
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return // EOF or teardown
		}
		select {
		case <-stop:
			return
		case in <- env:
		}
	}
}
