package sim

// Schedulers. All three implement the Scheduler interface and use the
// network's seeded RNG exclusively, so executions are reproducible.

// SyncScheduler executes classical synchronous rounds: every message
// pending at the round start is delivered (in randomized link order,
// FIFO within each link), then every node ticks once (in randomized
// order). Messages sent during the round are delivered the next round.
// Experiment E2 measures rounds under this scheduler, matching the round
// complexity statement of the paper's Lemma 5.
type SyncScheduler struct {
	// Scratch buffers reused across rounds: the delivery snapshot and
	// the tick permutation used to allocate fresh slices every round,
	// which dominated the scheduler's own allocation profile at large n
	// (see BenchmarkSyncRoundAllocs).
	slots []syncSlot
	perm  []int
}

// syncSlot is one entry of the per-round delivery snapshot.
type syncSlot struct{ li, count int }

// NewSyncScheduler returns a SyncScheduler.
func NewSyncScheduler() *SyncScheduler { return &SyncScheduler{} }

// RunRound implements Scheduler.
func (s *SyncScheduler) RunRound(n *Network) int {
	events := 0
	rng := n.Rand()
	// Snapshot pending counts per link; deliver exactly those.
	slots := s.slots[:0]
	for _, li := range n.NonEmptyLinks() {
		slots = append(slots, syncSlot{li, n.LinkLen(li)})
	}
	s.slots = slots
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	for _, sl := range slots {
		for c := 0; c < sl.count; c++ {
			n.Deliver(sl.li)
			events++
		}
	}
	// In-place Fisher–Yates with rand.Perm's exact draw sequence
	// (m[i]=m[j]; m[j]=i over Intn(i+1)), so the scratch buffer changes
	// neither the RNG stream nor the tick order of the committed
	// baselines.
	nn := n.Graph().N()
	if cap(s.perm) < nn {
		s.perm = make([]int, nn)
	}
	order := s.perm[:nn]
	for i := 0; i < nn; i++ {
		j := rng.Intn(i + 1)
		order[i] = order[j]
		order[j] = i
	}
	for _, id := range order {
		n.Tick(id)
		events++
	}
	n.resetRoundSnapshot()
	return events
}

// AsyncScheduler executes a random asynchronous schedule: each atomic
// step is either the delivery of a uniformly chosen undelivered MESSAGE
// or a tick at a uniformly chosen node. Weighting deliveries by queued
// messages (not by link) keeps the system subcritical: when traffic
// piles up, deliveries dominate and queues drain, matching the standard
// model where every in-flight message has the same delivery rate. A
// round ends when every node has taken a step and all messages pending
// at the round start have been delivered (the standard asynchronous
// round).
type AsyncScheduler struct {
	// TickWeight is the relative probability mass of tick events versus
	// a single pending message (default 1.0: a tick at a random node is
	// as likely as the delivery of any given specific pending message
	// when queues are short).
	TickWeight float64
	// MaxStepsPerRound guards against pathological schedules; the round
	// is cut after this many steps (default 1<<20).
	MaxStepsPerRound int
}

// NewAsyncScheduler returns an AsyncScheduler with default weights.
func NewAsyncScheduler() *AsyncScheduler {
	return &AsyncScheduler{TickWeight: 1.0, MaxStepsPerRound: 1 << 20}
}

// RunRound implements Scheduler.
func (s *AsyncScheduler) RunRound(n *Network) int {
	rng := n.Rand()
	nNodes := n.Graph().N()
	limit := s.MaxStepsPerRound
	if limit <= 0 {
		limit = 1 << 20
	}
	events := 0
	for events < limit {
		pending := n.Pending()
		tickMass := s.TickWeight * float64(nNodes)
		total := tickMass + float64(pending)
		if rng.Float64()*total < tickMass {
			n.Tick(rng.Intn(nNodes))
		} else {
			n.Deliver(n.RandomPendingLink())
		}
		events++
		if n.roundComplete() {
			break
		}
	}
	n.resetRoundSnapshot()
	return events
}

// AdversarialScheduler starves ticks and favors the most backlogged
// links, delaying gossip refresh as long as the fairness assumption
// allows: all old messages are delivered (always from the currently
// longest queue) before any node ticks, and ticks run in descending ID
// order. Every node still ticks exactly once per round: the "do forever:
// send InfoMsg" loop of the paper is weakly fair, so a schedule that
// permanently starved ticks at a node that keeps receiving messages
// would be illegal — it can freeze the whole network in a stale-view
// orbit that no self-stabilizing protocol can escape. This is the
// harshest legal schedule for the protocol's freshness assumptions and
// is used by ablation E7.
type AdversarialScheduler struct {
	MaxStepsPerRound int

	// heap indexes the non-empty links by queue length so each
	// longest-queue selection is O(log links) instead of a full scan
	// (the old per-delivery O(links) walk made a round O(messages ×
	// links)). Ties break toward the lowest link index — a total,
	// deterministic order. Lazily sized to the network's link count.
	heap *linkMaxHeap
}

// NewAdversarialScheduler returns an AdversarialScheduler.
func NewAdversarialScheduler() *AdversarialScheduler {
	return &AdversarialScheduler{MaxStepsPerRound: 1 << 20}
}

// RunRound implements Scheduler.
func (s *AdversarialScheduler) RunRound(n *Network) int {
	limit := s.MaxStepsPerRound
	if limit <= 0 {
		limit = 1 << 20
	}
	events := 0
	// Deliver every old message first, always from the longest link.
	// The heap tracks queue lengths across deliveries and the sends they
	// trigger (via the network's send hook); it is rebuilt per round
	// from the non-empty index, which also keeps it correct if the same
	// scheduler is reused across networks.
	if s.heap == nil || len(s.heap.pos) != len(n.links) {
		s.heap = newLinkMaxHeap(len(n.links))
	} else {
		s.heap.Reset()
	}
	for _, li := range n.NonEmptyLinks() {
		s.heap.Update(li, n.LinkLen(li))
	}
	prevHook := n.sendHook
	n.sendHook = func(li int) { s.heap.Update(li, n.LinkLen(li)) }
	for events < limit && n.pendingOld > 0 {
		best, ok := s.heap.Max()
		if !ok {
			break
		}
		n.Deliver(best)
		s.heap.Update(best, n.LinkLen(best))
		events++
	}
	n.sendHook = prevHook
	// Then tick every node once, largest ID first (deterministic
	// starvation order) — receives alone do not discharge a node's
	// do-forever obligation.
	for id := n.Graph().N() - 1; id >= 0 && events < limit; id-- {
		n.Tick(id)
		events++
	}
	n.resetRoundSnapshot()
	return events
}
