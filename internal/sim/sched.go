package sim

// Schedulers. All three implement the Scheduler interface and use the
// network's seeded RNG exclusively, so executions are reproducible.

// SyncScheduler executes classical synchronous rounds: every message
// pending at the round start is delivered (in randomized link order,
// FIFO within each link), then every node ticks once (in randomized
// order). Messages sent during the round are delivered the next round.
// Experiment E2 measures rounds under this scheduler, matching the round
// complexity statement of the paper's Lemma 5.
type SyncScheduler struct{}

// NewSyncScheduler returns a SyncScheduler.
func NewSyncScheduler() *SyncScheduler { return &SyncScheduler{} }

// RunRound implements Scheduler.
func (s *SyncScheduler) RunRound(n *Network) int {
	events := 0
	rng := n.Rand()
	// Snapshot pending counts per link; deliver exactly those.
	type slot struct{ li, count int }
	var slots []slot
	for _, li := range n.NonEmptyLinks() {
		slots = append(slots, slot{li, n.LinkLen(li)})
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	for _, sl := range slots {
		for c := 0; c < sl.count; c++ {
			n.Deliver(sl.li)
			events++
		}
	}
	order := rng.Perm(n.Graph().N())
	for _, id := range order {
		n.Tick(id)
		events++
	}
	n.resetRoundSnapshot()
	return events
}

// AsyncScheduler executes a random asynchronous schedule: each atomic
// step is either the delivery of a uniformly chosen undelivered MESSAGE
// or a tick at a uniformly chosen node. Weighting deliveries by queued
// messages (not by link) keeps the system subcritical: when traffic
// piles up, deliveries dominate and queues drain, matching the standard
// model where every in-flight message has the same delivery rate. A
// round ends when every node has taken a step and all messages pending
// at the round start have been delivered (the standard asynchronous
// round).
type AsyncScheduler struct {
	// TickWeight is the relative probability mass of tick events versus
	// a single pending message (default 1.0: a tick at a random node is
	// as likely as the delivery of any given specific pending message
	// when queues are short).
	TickWeight float64
	// MaxStepsPerRound guards against pathological schedules; the round
	// is cut after this many steps (default 1<<20).
	MaxStepsPerRound int
}

// NewAsyncScheduler returns an AsyncScheduler with default weights.
func NewAsyncScheduler() *AsyncScheduler {
	return &AsyncScheduler{TickWeight: 1.0, MaxStepsPerRound: 1 << 20}
}

// RunRound implements Scheduler.
func (s *AsyncScheduler) RunRound(n *Network) int {
	rng := n.Rand()
	nNodes := n.Graph().N()
	limit := s.MaxStepsPerRound
	if limit <= 0 {
		limit = 1 << 20
	}
	events := 0
	for events < limit {
		pending := n.Pending()
		tickMass := s.TickWeight * float64(nNodes)
		total := tickMass + float64(pending)
		if rng.Float64()*total < tickMass {
			n.Tick(rng.Intn(nNodes))
		} else {
			n.Deliver(n.RandomPendingLink())
		}
		events++
		if n.roundComplete() {
			break
		}
	}
	n.resetRoundSnapshot()
	return events
}

// AdversarialScheduler starves ticks and favors the most backlogged
// links, delaying gossip refresh as long as the fairness assumption
// allows: all old messages are delivered (always from the currently
// longest queue) before any node ticks, and ticks run in descending ID
// order. Every node still ticks exactly once per round: the "do forever:
// send InfoMsg" loop of the paper is weakly fair, so a schedule that
// permanently starved ticks at a node that keeps receiving messages
// would be illegal — it can freeze the whole network in a stale-view
// orbit that no self-stabilizing protocol can escape. This is the
// harshest legal schedule for the protocol's freshness assumptions and
// is used by ablation E7.
type AdversarialScheduler struct {
	MaxStepsPerRound int
}

// NewAdversarialScheduler returns an AdversarialScheduler.
func NewAdversarialScheduler() *AdversarialScheduler {
	return &AdversarialScheduler{MaxStepsPerRound: 1 << 20}
}

// RunRound implements Scheduler.
func (s *AdversarialScheduler) RunRound(n *Network) int {
	limit := s.MaxStepsPerRound
	if limit <= 0 {
		limit = 1 << 20
	}
	events := 0
	// Deliver every old message first, always from the longest link.
	for events < limit && n.pendingOld > 0 {
		best, bestLen := -1, 0
		for _, li := range n.NonEmptyLinks() {
			if l := n.LinkLen(li); l > bestLen {
				best, bestLen = li, l
			}
		}
		if best < 0 {
			break
		}
		n.Deliver(best)
		events++
	}
	// Then tick every node once, largest ID first (deterministic
	// starvation order) — receives alone do not discharge a node's
	// do-forever obligation.
	for id := n.Graph().N() - 1; id >= 0 && events < limit; id-- {
		n.Tick(id)
		events++
	}
	n.resetRoundSnapshot()
	return events
}
