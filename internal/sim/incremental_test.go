package sim

import (
	"math/rand"
	"testing"

	"mdst/internal/graph"
)

// stepProc counts its own atomic steps (ticks + receives) and gossips
// like minProc, so rounds carry real traffic. It deliberately does NOT
// implement StateVersioner: the counters below are the test's oracle for
// the round definition, and the proc exercises the rehash-on-touch path.
type stepProc struct {
	id    int
	min   int
	steps int
}

func (p *stepProc) Init(ctx *Context) {}
func (p *stepProc) Tick(ctx *Context) {
	p.steps++
	for _, nb := range ctx.Neighbors() {
		ctx.Send(nb, minMsg{p.min})
	}
}
func (p *stepProc) Receive(ctx *Context, from NodeID, m Message) {
	p.steps++
	if v := m.(minMsg).val; v < p.min {
		p.min = v
	}
}
func (p *stepProc) Fingerprint() uint64 { return uint64(p.min) }

// Regression for the lossy-link round-accounting bug: a dropped delivery
// used to mark the recipient as having stepped, so under loss a node
// could "complete" a round with zero atomic steps — violating §2's round
// definition (every node takes at least one step per round) and
// undercounting rounds in the E9/lossy cells. A drop must settle only
// the old-message obligation.
func TestEveryNodeStepsEachRoundUnderLoss(t *testing.T) {
	g := graph.RandomGnp(12, 0.4, rand.New(rand.NewSource(3)))
	net := NewNetwork(g, func(id NodeID, _ []NodeID) Process {
		return &stepProc{id: id, min: id}
	}, 17)
	net.SetDropRate(0.5)
	sched := NewAsyncScheduler()
	for round := 0; round < 40; round++ {
		for id := 0; id < g.N(); id++ {
			net.Process(id).(*stepProc).steps = 0
		}
		sched.RunRound(net)
		for id := 0; id < g.N(); id++ {
			if s := net.Process(id).(*stepProc).steps; s < 1 {
				t.Fatalf("round %d: node %d completed the round with %d steps (DropRate=0.5)",
					round, id, s)
			}
		}
		if net.Dropped() == 0 && round > 10 {
			t.Fatal("no drops at 50% loss: the regression is not being exercised")
		}
	}
}

// TestDropSettlesOldMessageObligation pins the half of the drop
// semantics that must keep working: a lost old message still lets the
// round's delivery obligation complete (the round cannot wait forever
// on a message that no longer exists).
func TestDropSettlesOldMessageObligation(t *testing.T) {
	g := graph.Path(2)
	net := NewNetwork(g, func(id NodeID, _ []NodeID) Process {
		return &stepProc{id: id, min: id}
	}, 5)
	net.SetDropRate(0.9999) // force drops deterministically enough
	net.Tick(0)             // sends one message 0->1
	net.resetRoundSnapshot()
	if net.pendingOld != 1 {
		t.Fatalf("pendingOld=%d, want 1", net.pendingOld)
	}
	net.Deliver(0)
	if net.pendingOld != 0 {
		t.Fatalf("pendingOld=%d after consuming the only old message", net.pendingOld)
	}
}

// Differential oracle for the incremental fingerprint cache: two
// networks run the same seeded execution, one with the per-node cache
// and one in the full-rehash reference mode; their fingerprints must
// agree after every scheduler round, and so must the final metrics.
// Randomized drops exercise the drop path of the accounting.
func TestIncrementalFingerprintMatchesFullRehash(t *testing.T) {
	for _, drop := range []float64{0, 0.3} {
		g := graph.RandomGnp(20, 0.3, rand.New(rand.NewSource(11)))
		build := func(full bool) *Network {
			SetFullFingerprintRehash(full)
			defer SetFullFingerprintRehash(false)
			net := NewNetwork(g, func(id NodeID, _ []NodeID) Process {
				return &stepProc{id: id, min: id}
			}, 23)
			if drop > 0 {
				net.SetDropRate(drop)
			}
			return net
		}
		inc, full := build(false), build(true)

		schedInc, schedFull := NewAsyncScheduler(), NewAsyncScheduler()
		for round := 0; round < 60; round++ {
			schedInc.RunRound(inc)
			schedFull.RunRound(full)
			fi, ff := inc.Fingerprint(), full.Fingerprint()
			if fi != ff {
				t.Fatalf("drop=%v round %d: incremental fingerprint %x != full rehash %x",
					drop, round, fi, ff)
			}
		}
		if inc.Metrics().Events != full.Metrics().Events ||
			inc.Metrics().Deliveries != full.Metrics().Deliveries ||
			inc.Dropped() != full.Dropped() {
			t.Fatalf("drop=%v: executions diverged: events %d vs %d, deliveries %d vs %d, dropped %d vs %d",
				drop, inc.Metrics().Events, full.Metrics().Events,
				inc.Metrics().Deliveries, full.Metrics().Deliveries,
				inc.Dropped(), full.Dropped())
		}
		// The cache must actually be cheaper: touched-but-unchanged nodes
		// skip nothing for unversioned procs, so only assert <=.
		if inc.Metrics().FingerprintRecomputes > full.Metrics().FingerprintRecomputes {
			t.Fatalf("drop=%v: incremental mode hashed more than full rehash (%d > %d)",
				drop, inc.Metrics().FingerprintRecomputes, full.Metrics().FingerprintRecomputes)
		}
	}
}

// TestInvalidateFingerprintsAfterDirectMutation pins the documented
// contract for external state mutation outside Tick/Receive.
func TestInvalidateFingerprintsAfterDirectMutation(t *testing.T) {
	g := graph.Ring(6)
	net := newMinNetwork(g, 9)
	before := net.Fingerprint()
	net.Process(3).(*minProc).min = -7 // direct mutation, invisible to the cache
	net.InvalidateFingerprints()
	if net.Fingerprint() == before {
		t.Fatal("fingerprint unchanged after invalidation of a mutated node")
	}
}

// TestPendingKindCountsStayConsistent cross-checks the O(1) per-kind
// counters against a direct link scan through sends, deliveries and
// drops.
func TestPendingKindCountsStayConsistent(t *testing.T) {
	g := graph.RandomGnp(10, 0.5, rand.New(rand.NewSource(2)))
	net := newMinNetwork(g, 31)
	net.SetDropRate(0.4)
	sched := NewAsyncScheduler()
	for round := 0; round < 25; round++ {
		sched.RunRound(net)
		scan := 0
		for _, li := range net.NonEmptyLinks() {
			scan += net.LinkLen(li)
		}
		if got := net.PendingKind("min"); got != scan || got != net.Pending() {
			t.Fatalf("round %d: PendingKind=%d, scan=%d, Pending=%d", round, got, scan, net.Pending())
		}
		if net.PendingKind("nope") != 0 {
			t.Fatal("unknown kind has pending messages")
		}
	}
}
