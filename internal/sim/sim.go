// Package sim is the distributed-system substrate of the reproduction: an
// asynchronous message-passing network with reliable FIFO links and
// send/receive atomicity, executed either by deterministic seeded
// schedulers (synchronous, random-asynchronous, adversarial) or by a live
// goroutine-per-node runtime with real channels (live.go).
//
// The paper's model (§2) maps as follows: each node is a Process driven
// by Tick (the "do forever: send InfoMsg" loop) and Receive (one message
// per atomic step); links are per-direction FIFO queues; a round is the
// standard asynchronous round — the minimal execution segment in which
// every node takes at least one step and every message pending at the
// segment's start is delivered.
package sim

import (
	"fmt"
	"math/rand"

	"mdst/internal/graph"
)

// NodeID identifies a node; IDs are the graph's dense node indices and
// double as the unique, totally ordered identifiers of the paper's model.
type NodeID = int

// Message is anything a Process sends over a link. Kind groups messages
// for metrics; Size is the abstract message length in O(log n)-bit words,
// used by experiment E4 to check the paper's O(n log n) buffer claim.
type Message interface {
	Kind() string
	Size() int
}

// Process is a node program. Implementations must confine all state to
// the process itself: the only interaction with the world is through the
// Context passed to Init, Tick and Receive.
type Process interface {
	// Init is called once before execution starts. It must NOT reset
	// state: self-stabilization runs start from whatever (possibly
	// corrupted) state the process already carries.
	Init(ctx *Context)
	// Tick is one iteration of the node's "do forever" loop.
	Tick(ctx *Context)
	// Receive handles a single message — one atomic step in the
	// send/receive atomicity model.
	Receive(ctx *Context, from NodeID, m Message)
}

// Fingerprinter lets the runner detect quiescence: a process returns a
// hash of its protocol-visible state (message traffic excluded).
type Fingerprinter interface {
	Fingerprint() uint64
}

// StateSizer reports the current size of a process's state in bits, for
// the memory experiment E3.
type StateSizer interface {
	StateBits() int
}

// Context gives a process its identity, neighborhood and send primitive.
type Context struct {
	id   NodeID
	nbrs []NodeID
	send func(from, to NodeID, m Message)
}

// NewContext builds a standalone context for harnesses outside Network
// (e.g. the exhaustive model checker): the send function receives every
// outgoing message.
func NewContext(id NodeID, neighbors []NodeID, send func(from, to NodeID, m Message)) *Context {
	return &Context{id: id, nbrs: append([]NodeID(nil), neighbors...), send: send}
}

// ID returns the node's identifier.
func (c *Context) ID() NodeID { return c.id }

// Neighbors returns the node's neighbor IDs in increasing order. The
// slice is shared; callers must not modify it.
func (c *Context) Neighbors() []NodeID { return c.nbrs }

// Send enqueues m on the FIFO link to neighbor `to`. Sending to a
// non-neighbor panics: the paper's algorithm is strictly local.
func (c *Context) Send(to NodeID, m Message) { c.send(c.id, to, m) }

// envelope is a queued message with a global sequence number used for
// round accounting.
type envelope struct {
	from NodeID
	msg  Message
	seq  uint64
}

// link is one directed FIFO queue implemented as a re-slicing deque.
type link struct {
	from, to NodeID
	buf      []envelope
	head     int
}

func (l *link) empty() bool { return l.head >= len(l.buf) }
func (l *link) len() int    { return len(l.buf) - l.head }

func (l *link) push(e envelope) { l.buf = append(l.buf, e) }

func (l *link) pop() envelope {
	e := l.buf[l.head]
	l.buf[l.head] = envelope{} // release for GC
	l.head++
	if l.head == len(l.buf) {
		l.buf = l.buf[:0]
		l.head = 0
	}
	return e
}

// Metrics aggregates execution statistics.
type Metrics struct {
	Rounds          int
	Events          int64
	Deliveries      int64
	Ticks           int64
	SentByKind      map[string]int64
	MaxMsgSize      int
	MaxMsgSizeKind  string
	MaxQueueLen     int
	LastChangeRound int // round index of the most recent fingerprint change
}

func newMetrics() *Metrics {
	return &Metrics{SentByKind: make(map[string]int64)}
}

// Network is the deterministic simulated network.
type Network struct {
	g     *graph.Graph
	procs []Process
	ctxs  []*Context

	links     []*link
	linkIdx   map[[2]NodeID]int
	nonEmpty  []int       // indices of non-empty links
	nePos     map[int]int // link index -> position in nonEmpty
	nextSeq   uint64
	delivered uint64 // highest contiguous... (not needed; see pendingOld)

	pendingTotal int // undelivered messages across all links

	// Lossy-link fault injection (violates the paper's reliable-links
	// assumption; used by the robustness extension E9): each delivery is
	// dropped with probability dropRate, drawn from the scheduling RNG.
	dropRate float64
	dropped  int64

	// Asynchronous round accounting.
	snapshotSeq uint64 // messages with seq <= snapshotSeq are "old"
	pendingOld  int    // undelivered old messages
	needStep    map[NodeID]bool

	rng     *rand.Rand
	metrics *Metrics
}

// NewNetwork builds a simulated network over g. The factory is called
// once per node, in ID order, to create the process; seed drives every
// scheduling decision, making runs fully reproducible.
func NewNetwork(g *graph.Graph, factory func(id NodeID, neighbors []NodeID) Process, seed int64) *Network {
	n := g.N()
	net := &Network{
		g:        g,
		procs:    make([]Process, n),
		ctxs:     make([]*Context, n),
		linkIdx:  make(map[[2]NodeID]int),
		nePos:    make(map[int]int),
		needStep: make(map[NodeID]bool, n),
		rng:      rand.New(rand.NewSource(seed)),
		metrics:  newMetrics(),
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			net.linkIdx[[2]NodeID{u, v}] = len(net.links)
			net.links = append(net.links, &link{from: u, to: v})
		}
	}
	for id := 0; id < n; id++ {
		ctx := &Context{id: id, nbrs: g.Neighbors(id), send: net.send}
		net.ctxs[id] = ctx
		net.procs[id] = factory(id, ctx.nbrs)
	}
	for id := 0; id < n; id++ {
		net.procs[id].Init(net.ctxs[id])
	}
	net.resetRoundSnapshot()
	return net
}

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// Process returns the process at node id for inspection between steps.
func (n *Network) Process(id NodeID) Process { return n.procs[id] }

// Context returns node id's context. It lets tests drive a process's
// handlers directly while still sending over the network's real links.
func (n *Network) Context(id NodeID) *Context { return n.ctxs[id] }

// Metrics returns the accumulated execution metrics.
func (n *Network) Metrics() *Metrics { return n.metrics }

// Rand returns the scheduling RNG (shared with schedulers for
// determinism).
func (n *Network) Rand() *rand.Rand { return n.rng }

// Pending returns the number of undelivered messages.
func (n *Network) Pending() int { return n.pendingTotal }

// RandomPendingLink returns a link index chosen with probability
// proportional to its queue length — i.e. a uniformly random undelivered
// message. Panics if nothing is pending.
func (n *Network) RandomPendingLink() int {
	if n.pendingTotal <= 0 {
		panic("sim: RandomPendingLink with no pending messages")
	}
	idx := n.rng.Intn(n.pendingTotal)
	for _, li := range n.nonEmpty {
		idx -= n.links[li].len()
		if idx < 0 {
			return li
		}
	}
	panic("sim: pending counter out of sync")
}

// PendingKind returns the number of undelivered messages of the given
// kind (linear scan; used by stop conditions, not hot paths).
func (n *Network) PendingKind(kind string) int {
	total := 0
	for _, li := range n.nonEmpty {
		l := n.links[li]
		for i := l.head; i < len(l.buf); i++ {
			if l.buf[i].msg.Kind() == kind {
				total++
			}
		}
	}
	return total
}

func (n *Network) send(from, to NodeID, m Message) {
	key := [2]NodeID{from, to}
	li, ok := n.linkIdx[key]
	if !ok {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbor %d", from, to))
	}
	l := n.links[li]
	wasEmpty := l.empty()
	n.nextSeq++
	l.push(envelope{from: from, msg: m, seq: n.nextSeq})
	n.pendingTotal++
	if wasEmpty {
		n.nePos[li] = len(n.nonEmpty)
		n.nonEmpty = append(n.nonEmpty, li)
	}
	if ql := l.len(); ql > n.metrics.MaxQueueLen {
		n.metrics.MaxQueueLen = ql
	}
	n.metrics.SentByKind[m.Kind()]++
	if s := m.Size(); s > n.metrics.MaxMsgSize {
		n.metrics.MaxMsgSize = s
		n.metrics.MaxMsgSizeKind = m.Kind()
	}
}

// removeNonEmpty drops link li from the non-empty index.
func (n *Network) removeNonEmpty(li int) {
	pos := n.nePos[li]
	last := len(n.nonEmpty) - 1
	n.nonEmpty[pos] = n.nonEmpty[last]
	n.nePos[n.nonEmpty[pos]] = pos
	n.nonEmpty = n.nonEmpty[:last]
	delete(n.nePos, li)
}

// Deliver pops the head of link li and delivers it: one atomic receive
// step at the destination. With a configured drop rate the message may
// be lost instead (it still counts as an event, not as a delivery).
func (n *Network) Deliver(li int) {
	l := n.links[li]
	if l.empty() {
		panic("sim: Deliver on empty link")
	}
	env := l.pop()
	n.pendingTotal--
	if l.empty() {
		n.removeNonEmpty(li)
	}
	if env.seq <= n.snapshotSeq {
		n.pendingOld--
	}
	n.metrics.Events++
	if n.dropRate > 0 && n.rng.Float64() < n.dropRate {
		n.dropped++
		delete(n.needStep, l.to) // the round cannot wait on a lost message
		return
	}
	n.metrics.Deliveries++
	delete(n.needStep, l.to)
	n.procs[l.to].Receive(n.ctxs[l.to], env.from, env.msg)
}

// SetDropRate configures lossy links: every delivery is independently
// lost with probability rate. Zero (the default) is the paper's
// reliable-link model.
func (n *Network) SetDropRate(rate float64) {
	if rate < 0 || rate >= 1 {
		panic("sim: drop rate must be in [0,1)")
	}
	n.dropRate = rate
}

// Dropped returns the number of messages lost to SetDropRate.
func (n *Network) Dropped() int64 { return n.dropped }

// Tick runs one loop iteration at node id: one atomic step.
func (n *Network) Tick(id NodeID) {
	n.metrics.Ticks++
	n.metrics.Events++
	delete(n.needStep, id)
	n.procs[id].Tick(n.ctxs[id])
}

// NonEmptyLinks returns the indices of links with pending messages. The
// slice is owned by the network; schedulers must not retain it across
// steps.
func (n *Network) NonEmptyLinks() []int { return n.nonEmpty }

// LinkLen returns the queue length of link li.
func (n *Network) LinkLen(li int) int { return n.links[li].len() }

// LinkEnds returns the (from, to) endpoints of link li.
func (n *Network) LinkEnds(li int) (NodeID, NodeID) {
	return n.links[li].from, n.links[li].to
}

func (n *Network) resetRoundSnapshot() {
	n.snapshotSeq = n.nextSeq
	n.pendingOld = n.Pending()
	for id := 0; id < n.g.N(); id++ {
		n.needStep[id] = true
	}
}

// roundComplete reports whether the asynchronous round condition holds:
// every node stepped and all old messages were delivered.
func (n *Network) roundComplete() bool {
	return len(n.needStep) == 0 && n.pendingOld == 0
}

// Fingerprint hashes all process states (FNV-style combination) for
// quiescence detection. Processes that do not implement Fingerprinter
// contribute a constant.
func (n *Network) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, p := range n.procs {
		var f uint64
		if fp, ok := p.(Fingerprinter); ok {
			f = fp.Fingerprint()
		}
		h ^= f
		h *= prime
	}
	return h
}

// MaxStateBits returns the maximum StateBits over all processes, or 0 if
// unsupported.
func (n *Network) MaxStateBits() int {
	max := 0
	for _, p := range n.procs {
		if s, ok := p.(StateSizer); ok {
			if b := s.StateBits(); b > max {
				max = b
			}
		}
	}
	return max
}

// Scheduler executes one round of the network per RunRound call.
type Scheduler interface {
	// RunRound advances the network by one round and returns the number
	// of atomic events executed. Returning 0 means no progress is
	// possible (should not happen: ticks are always enabled).
	RunRound(n *Network) int
}

// RunConfig controls Network.Run.
type RunConfig struct {
	Scheduler Scheduler
	// MaxRounds bounds the execution; Run returns with Converged=false
	// when exceeded.
	MaxRounds int
	// QuiesceRounds: stop after this many consecutive rounds without a
	// fingerprint change (and no pending messages of the kinds listed in
	// ActiveKinds, if any). Zero disables quiescence detection.
	QuiesceRounds int
	// ActiveKinds: message kinds that must drain before quiescence is
	// declared (e.g. reduction messages still in flight).
	ActiveKinds []string
	// OnRound, if non-nil, is called after every round with the round
	// index; returning false stops the run (Converged=false).
	OnRound func(round int) bool
}

// RunResult summarizes a Run.
type RunResult struct {
	Converged       bool
	Rounds          int
	LastChangeRound int
}

// Run executes rounds until quiescence or the round bound.
func (n *Network) Run(cfg RunConfig) RunResult {
	if cfg.Scheduler == nil {
		cfg.Scheduler = NewSyncScheduler()
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1 << 20
	}
	lastFP := n.Fingerprint()
	stable := 0
	for r := 0; r < cfg.MaxRounds; r++ {
		cfg.Scheduler.RunRound(n)
		n.metrics.Rounds++
		fp := n.Fingerprint()
		if fp != lastFP {
			lastFP = fp
			stable = 0
			n.metrics.LastChangeRound = n.metrics.Rounds
		} else {
			stable++
		}
		if cfg.QuiesceRounds > 0 && stable >= cfg.QuiesceRounds {
			drained := true
			for _, k := range cfg.ActiveKinds {
				if n.PendingKind(k) > 0 {
					drained = false
					break
				}
			}
			if drained {
				return RunResult{Converged: true, Rounds: n.metrics.Rounds,
					LastChangeRound: n.metrics.LastChangeRound}
			}
		}
		if cfg.OnRound != nil && !cfg.OnRound(r) {
			break
		}
	}
	return RunResult{Converged: false, Rounds: n.metrics.Rounds,
		LastChangeRound: n.metrics.LastChangeRound}
}
