// Package sim is the distributed-system substrate of the reproduction: an
// asynchronous message-passing network with reliable FIFO links and
// send/receive atomicity, executed either by deterministic seeded
// schedulers (synchronous, random-asynchronous, adversarial) or by a live
// goroutine-per-node runtime with real channels (live.go).
//
// The paper's model (§2) maps as follows: each node is a Process driven
// by Tick (the "do forever: send InfoMsg" loop) and Receive (one message
// per atomic step); links are per-direction FIFO queues; a round is the
// standard asynchronous round — the minimal execution segment in which
// every node takes at least one step and every message pending at the
// segment's start is delivered.
//
// The run loop is incremental end to end so that matrices scale past
// n=256 (the per-round work used to be dominated by quiescence
// bookkeeping): per-node fingerprints are cached and re-hashed only for
// nodes whose state version moved since the last round; round accounting
// is an epoch-stamped step array (no per-round map churn); and pending
// messages are counted per kind on send/consume so PendingKind is O(1).
//
// # Dual execution cores
//
// The package has two execution cores over the same Network:
//
//   - The compatibility core (Network.Run + the Scheduler
//     implementations in sched.go) replays the original per-round full
//     sweep: every round delivers the pending snapshot and ticks every
//     node, consuming the seeded RNG in the exact legacy order. Every
//     committed byte-identity baseline (the default scenario matrix,
//     BENCH_scale.json) is produced by this core and must stay
//     byte-identical under `make drift`.
//
//   - The event core (Network.RunEvents, event.go) is a discrete-event
//     scheduler over the same links and processes: pending deliveries
//     and per-node tick timers are bucketed by virtual round in a
//     calendar queue, and only nodes with work — an undelivered
//     message, a state change since their last tick, or a due search
//     retry (the EventProcess interface) — are touched. Idle nodes park;
//     their tick counters are fast-forwarded on wake (SkipTicks) so
//     tick-denominated protocol schedules stay aligned with virtual
//     rounds. Round numbers, Metrics.Rounds, LastChangeRound and the
//     quiescence window keep their meaning as a derived view of virtual
//     time, and convergence can be declared by fast-forwarding over
//     empty buckets (empty queue + expired timers). The three
//     schedulers map onto bucket-ordering policies (EventPolicy).
//
// Engine selection lives in harness.RunSpec.Engine: "compat" (default,
// byte-identical baselines) or "event" (frontier-only scheduling for
// large n). The two cores are differential-tested for outcome
// equivalence on paired seeds.
package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"mdst/internal/detect"
	"mdst/internal/graph"
)

// NodeID identifies a node; IDs are the graph's dense node indices and
// double as the unique, totally ordered identifiers of the paper's model.
type NodeID = int

// Message is anything a Process sends over a link. Kind groups messages
// for metrics; Size is the abstract message length in O(log n)-bit words,
// used by experiment E4 to check the paper's O(n log n) buffer claim.
type Message interface {
	Kind() string
	Size() int
}

// Process is a node program. Implementations must confine all state to
// the process itself: the only interaction with the world is through the
// Context passed to Init, Tick and Receive. The runner relies on that
// confinement: a step at node v can only change v's own state.
type Process interface {
	// Init is called once before execution starts. It must NOT reset
	// state: self-stabilization runs start from whatever (possibly
	// corrupted) state the process already carries.
	Init(ctx *Context)
	// Tick is one iteration of the node's "do forever" loop.
	Tick(ctx *Context)
	// Receive handles a single message — one atomic step in the
	// send/receive atomicity model.
	Receive(ctx *Context, from NodeID, m Message)
}

// Fingerprinter lets the runner detect quiescence: a process returns a
// hash of its protocol-visible state (message traffic excluded).
type Fingerprinter interface {
	Fingerprint() uint64
}

// StateVersioner is an optional fast path for quiescence detection: a
// process reports a counter that moves whenever its fingerprinted state
// may have changed (and stays put across no-op steps). The runner then
// skips re-hashing nodes whose version did not move — at quiescence
// every node ticks every round but nothing changes, so the per-round
// fingerprint cost drops from O(Σ degree) to O(n) version compares.
// Processes that do not implement it are re-hashed after every step
// that touches them (always correct, just slower).
type StateVersioner interface {
	StateVersion() uint64
}

// StateSizer reports the current size of a process's state in bits, for
// the memory experiment E3.
type StateSizer interface {
	StateBits() int
}

// RetryAware is implemented by processes whose worst-case search-retry
// spacing varies over time (the adaptive suppression backoff): the
// quiescence-stability window must track the current maximum over
// nodes, not a static per-run constant. CurrentRetryPeriod must be a
// pure read.
type RetryAware interface {
	CurrentRetryPeriod() int
}

// Context gives a process its identity, neighborhood and send primitive.
type Context struct {
	id   NodeID
	nbrs []NodeID
	send func(from, to NodeID, m Message)
}

// NewContext builds a standalone context for harnesses outside Network
// (e.g. the exhaustive model checker): the send function receives every
// outgoing message.
func NewContext(id NodeID, neighbors []NodeID, send func(from, to NodeID, m Message)) *Context {
	return &Context{id: id, nbrs: append([]NodeID(nil), neighbors...), send: send}
}

// ID returns the node's identifier.
func (c *Context) ID() NodeID { return c.id }

// Neighbors returns the node's neighbor IDs in increasing order. The
// slice is shared; callers must not modify it.
func (c *Context) Neighbors() []NodeID { return c.nbrs }

// Send enqueues m on the FIFO link to neighbor `to`. Sending to a
// non-neighbor panics: the paper's algorithm is strictly local.
func (c *Context) Send(to NodeID, m Message) { c.send(c.id, to, m) }

// envelope is a queued message with a global sequence number used for
// round accounting.
type envelope struct {
	from NodeID
	msg  Message
	seq  uint64
}

// link is one directed FIFO queue implemented as a re-slicing deque.
type link struct {
	from, to NodeID
	buf      []envelope
	head     int
}

func (l *link) empty() bool { return l.head >= len(l.buf) }
func (l *link) len() int    { return len(l.buf) - l.head }

func (l *link) push(e envelope) { l.buf = append(l.buf, e) }

func (l *link) pop() envelope {
	e := l.buf[l.head]
	l.buf[l.head] = envelope{} // release for GC
	l.head++
	if l.head == len(l.buf) {
		l.buf = l.buf[:0]
		l.head = 0
	}
	return e
}

// Metrics aggregates execution statistics.
type Metrics struct {
	Rounds          int
	Events          int64
	Deliveries      int64
	Ticks           int64
	SentByKind      map[string]int64
	MaxMsgSize      int
	MaxMsgSizeKind  string
	MaxQueueLen     int
	LastChangeRound int // round index of the most recent fingerprint change
	// EventsAtLastChange is the Events counter as of the last fingerprint
	// change. Events - EventsAtLastChange is the tail work executed after
	// the network stopped changing (the quiescence window); for the event
	// core this tail is the frontier figure of merit — sub-linear in n
	// once idle nodes park — while the compat core's tail stays O(n+m)
	// per round by construction.
	EventsAtLastChange int64
	// FingerprintRecomputes counts per-node state hashes performed for
	// quiescence detection. It is deterministic for a seeded run and is
	// the committed figure of merit for the incremental fingerprint cache
	// (BENCH_scale.json compares it against the full-rehash baseline).
	FingerprintRecomputes int64
}

func newMetrics() *Metrics {
	return &Metrics{SentByKind: make(map[string]int64)}
}

// fullRehash is the package-wide reference knob: networks created while
// it is set re-hash every node on every Fingerprint call instead of
// using the incremental cache. The combine is identical, so results
// must match bit for bit — the differential tests and the committed
// scale benchmark are built on that equivalence. Not a hot-path flag:
// it is read once per NewNetwork.
var fullRehash atomic.Bool

// SetFullFingerprintRehash switches networks built AFTER the call to the
// full-rehash reference mode (true) or the incremental cache (false,
// the default). It exists for differential tests and the committed
// baseline benchmark; production paths never touch it.
func SetFullFingerprintRehash(v bool) { fullRehash.Store(v) }

// Network is the deterministic simulated network.
type Network struct {
	g     *graph.Graph
	procs []Process
	ctxs  []*Context

	links    []*link
	linkIdx  map[[2]NodeID]int
	nonEmpty []int // indices of non-empty links
	nePos    []int // link index -> position in nonEmpty (-1 when empty)
	// pendingIdx mirrors the queue length of nonEmpty[p] at position p:
	// the prefix-sum index that makes RandomPendingLink O(log links)
	// while preserving the exact idx→link mapping of the old linear walk
	// (same nonEmpty order, same cumulative-length threshold).
	pendingIdx fenwick
	nextSeq    uint64

	// sendHook, when set, observes every enqueued message by link index.
	// The adversarial scheduler uses it to keep its longest-queue heap
	// current, the event core to schedule delivery events; nil (one
	// predictable branch) on every other path.
	sendHook func(li int)

	pendingTotal  int            // undelivered messages across all links
	pendingByKind map[string]int // undelivered messages per message kind

	// Lossy-link fault injection (violates the paper's reliable-links
	// assumption; used by the robustness extension E9): each delivery is
	// dropped with probability dropRate, drawn from the scheduling RNG.
	dropRate float64
	dropped  int64

	// Asynchronous round accounting, O(1) per step and per round reset:
	// a node has stepped in the current round iff stepped[id] == epoch.
	snapshotSeq uint64 // messages with seq <= snapshotSeq are "old"
	pendingOld  int    // undelivered old messages
	epoch       uint32
	stepped     []uint32
	needSteps   int // nodes that still owe a step this round

	// Incremental fingerprint cache: fps holds each node's last known
	// state hash, combined is their order-independent mix. A step at
	// node v pushes v onto dirty; the next Fingerprint call re-hashes
	// only dirty nodes (version-skipped when the process exposes
	// StateVersion) and patches combined in O(changed).
	fps        []uint64
	versions   []uint64
	versioners []StateVersioner // non-nil where the process supports it
	dirtyMark  []bool
	dirty      []NodeID
	combined   uint64
	rehashAll  bool // reference mode: ignore the cache entirely

	rng     *rand.Rand
	metrics *Metrics
}

// NewNetwork builds a simulated network over g. The factory is called
// once per node, in ID order, to create the process; seed drives every
// scheduling decision, making runs fully reproducible.
func NewNetwork(g *graph.Graph, factory func(id NodeID, neighbors []NodeID) Process, seed int64) *Network {
	n := g.N()
	net := &Network{
		g:             g,
		procs:         make([]Process, n),
		ctxs:          make([]*Context, n),
		linkIdx:       make(map[[2]NodeID]int),
		pendingByKind: make(map[string]int),
		stepped:       make([]uint32, n),
		fps:           make([]uint64, n),
		versions:      make([]uint64, n),
		versioners:    make([]StateVersioner, n),
		dirtyMark:     make([]bool, n),
		rehashAll:     fullRehash.Load(),
		rng:           rand.New(rand.NewSource(seed)),
		metrics:       newMetrics(),
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			net.linkIdx[[2]NodeID{u, v}] = len(net.links)
			net.links = append(net.links, &link{from: u, to: v})
		}
	}
	net.nePos = make([]int, len(net.links))
	for i := range net.nePos {
		net.nePos[i] = -1
	}
	net.pendingIdx = newFenwick(len(net.links))
	for id := 0; id < n; id++ {
		ctx := &Context{id: id, nbrs: g.Neighbors(id), send: net.send}
		net.ctxs[id] = ctx
		net.procs[id] = factory(id, ctx.nbrs)
		if vs, ok := net.procs[id].(StateVersioner); ok {
			net.versioners[id] = vs
		}
	}
	for id := 0; id < n; id++ {
		net.procs[id].Init(net.ctxs[id])
	}
	net.rehashAllNodes()
	net.resetRoundSnapshot()
	return net
}

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// Process returns the process at node id for inspection between steps.
func (n *Network) Process(id NodeID) Process { return n.procs[id] }

// Context returns node id's context. It lets tests drive a process's
// handlers directly while still sending over the network's real links.
func (n *Network) Context(id NodeID) *Context { return n.ctxs[id] }

// Metrics returns the accumulated execution metrics.
func (n *Network) Metrics() *Metrics { return n.metrics }

// Rand returns the scheduling RNG (shared with schedulers for
// determinism).
func (n *Network) Rand() *rand.Rand { return n.rng }

// Pending returns the number of undelivered messages.
func (n *Network) Pending() int { return n.pendingTotal }

// RandomPendingLink returns a link index chosen with probability
// proportional to its queue length — i.e. a uniformly random undelivered
// message. Panics if nothing is pending.
func (n *Network) RandomPendingLink() int {
	if n.pendingTotal <= 0 {
		panic("sim: RandomPendingLink with no pending messages")
	}
	// Fenwick selection over positions in nonEmpty order: identical to
	// the old linear cumulative-length walk (first position whose prefix
	// sum exceeds idx), in O(log links) instead of O(nonEmpty). The
	// committed async-scheduler matrix cells guard the byte-identity of
	// this mapping.
	idx := n.rng.Intn(n.pendingTotal)
	return n.nonEmpty[n.pendingIdx.Select(idx)]
}

// PendingKind returns the number of undelivered messages of the given
// kind, maintained incrementally on send and consume (O(1)).
func (n *Network) PendingKind(kind string) int {
	return n.pendingByKind[kind]
}

func (n *Network) send(from, to NodeID, m Message) {
	key := [2]NodeID{from, to}
	li, ok := n.linkIdx[key]
	if !ok {
		panic(fmt.Sprintf("sim: node %d sent to non-neighbor %d", from, to))
	}
	l := n.links[li]
	wasEmpty := l.empty()
	n.nextSeq++
	l.push(envelope{from: from, msg: m, seq: n.nextSeq})
	n.pendingTotal++
	kind := m.Kind()
	n.pendingByKind[kind]++
	if wasEmpty {
		n.nePos[li] = len(n.nonEmpty)
		n.nonEmpty = append(n.nonEmpty, li)
	}
	n.pendingIdx.Add(n.nePos[li], 1)
	if n.sendHook != nil {
		n.sendHook(li)
	}
	if ql := l.len(); ql > n.metrics.MaxQueueLen {
		n.metrics.MaxQueueLen = ql
	}
	n.metrics.SentByKind[kind]++
	if s := m.Size(); s > n.metrics.MaxMsgSize {
		n.metrics.MaxMsgSize = s
		n.metrics.MaxMsgSizeKind = kind
	}
}

// removeNonEmpty drops link li from the non-empty index. The link's
// prefix-sum mass is already zero (Deliver decrements before removal);
// only the swapped-in link's mass moves.
func (n *Network) removeNonEmpty(li int) {
	pos := n.nePos[li]
	last := len(n.nonEmpty) - 1
	if pos != last {
		moved := n.nonEmpty[last]
		m := n.links[moved].len()
		n.pendingIdx.Add(last, -m)
		n.pendingIdx.Add(pos, m)
		n.nonEmpty[pos] = moved
		n.nePos[moved] = pos
	}
	n.nonEmpty = n.nonEmpty[:last]
	n.nePos[li] = -1
}

// markStepped records an atomic step at node id for round accounting.
func (n *Network) markStepped(id NodeID) {
	if n.stepped[id] != n.epoch {
		n.stepped[id] = n.epoch
		n.needSteps--
	}
}

// touch flags node id's cached fingerprint as possibly stale.
func (n *Network) touch(id NodeID) {
	if !n.dirtyMark[id] {
		n.dirtyMark[id] = true
		n.dirty = append(n.dirty, id)
	}
}

// Deliver pops the head of link li and delivers it: one atomic receive
// step at the destination. With a configured drop rate the message may
// be lost instead (it still counts as an event, not as a delivery).
//
// A dropped message settles only the old-message obligation of the
// round: the recipient took no step, so it is NOT marked as stepped —
// under lossy links every node still owes ≥1 step per round (§2's round
// definition; this was the lossy round-undercount bug).
func (n *Network) Deliver(li int) {
	l := n.links[li]
	if l.empty() {
		panic("sim: Deliver on empty link")
	}
	env := l.pop()
	n.pendingTotal--
	n.pendingByKind[env.msg.Kind()]--
	n.pendingIdx.Add(n.nePos[li], -1)
	if l.empty() {
		n.removeNonEmpty(li)
	}
	if env.seq <= n.snapshotSeq {
		n.pendingOld--
	}
	n.metrics.Events++
	if n.dropRate > 0 && n.rng.Float64() < n.dropRate {
		n.dropped++
		return
	}
	n.metrics.Deliveries++
	n.markStepped(l.to)
	n.touch(l.to)
	n.procs[l.to].Receive(n.ctxs[l.to], env.from, env.msg)
}

// SetDropRate configures lossy links: every delivery is independently
// lost with probability rate. Zero (the default) is the paper's
// reliable-link model.
func (n *Network) SetDropRate(rate float64) {
	if rate < 0 || rate >= 1 {
		panic("sim: drop rate must be in [0,1)")
	}
	n.dropRate = rate
}

// Dropped returns the number of messages lost to SetDropRate.
func (n *Network) Dropped() int64 { return n.dropped }

// Tick runs one loop iteration at node id: one atomic step.
func (n *Network) Tick(id NodeID) {
	n.metrics.Ticks++
	n.metrics.Events++
	n.markStepped(id)
	n.touch(id)
	n.procs[id].Tick(n.ctxs[id])
}

// NonEmptyLinks returns the indices of links with pending messages. The
// slice is owned by the network; schedulers must not retain it across
// steps.
func (n *Network) NonEmptyLinks() []int { return n.nonEmpty }

// LinkLen returns the queue length of link li.
func (n *Network) LinkLen(li int) int { return n.links[li].len() }

// LinkEnds returns the (from, to) endpoints of link li.
func (n *Network) LinkEnds(li int) (NodeID, NodeID) {
	return n.links[li].from, n.links[li].to
}

func (n *Network) resetRoundSnapshot() {
	n.snapshotSeq = n.nextSeq
	n.pendingOld = n.pendingTotal
	n.epoch++
	n.needSteps = n.g.N()
}

// roundComplete reports whether the asynchronous round condition holds:
// every node stepped and all old messages were delivered.
func (n *Network) roundComplete() bool {
	return n.needSteps == 0 && n.pendingOld == 0
}

// nodeFingerprint hashes one process's state.
func (n *Network) nodeFingerprint(id NodeID) uint64 {
	n.metrics.FingerprintRecomputes++
	if fp, ok := n.procs[id].(Fingerprinter); ok {
		return fp.Fingerprint()
	}
	return 0
}

// mixNode folds one node's fingerprint into the combined hash with a
// position-dependent bijective finalizer (splitmix64), making the
// combine commutative — combined is the XOR over nodes of
// mixNode(id, fps[id]) — and therefore patchable in O(1) per changed
// node: combined ^= mix(id, old) ^ mix(id, new). The mix itself lives
// in internal/detect so every backend (including netrun's control
// channel, which combines from published per-node hashes) produces
// comparable certificate fingerprints.
func mixNode(id NodeID, f uint64) uint64 { return detect.MixNode(id, f) }

// rehashAllNodes recomputes every cached fingerprint and the combined
// hash from scratch.
func (n *Network) rehashAllNodes() {
	var combined uint64
	for id := range n.procs {
		f := n.nodeFingerprint(id)
		n.fps[id] = f
		if vs := n.versioners[id]; vs != nil {
			n.versions[id] = vs.StateVersion()
		}
		combined ^= mixNode(id, f)
	}
	n.combined = combined
	for _, id := range n.dirty {
		n.dirtyMark[id] = false
	}
	n.dirty = n.dirty[:0]
}

// InvalidateFingerprints discards the incremental fingerprint cache.
// Call it after mutating process state directly (SetState, Corrupt,
// preloads) outside Tick/Receive when the process does not report state
// versions; Network.Run invalidates on entry, so harness-style
// "mutate, then Run" flows need nothing.
func (n *Network) InvalidateFingerprints() {
	n.rehashAllNodes()
}

// Fingerprint combines all process states for quiescence detection
// (processes that do not implement Fingerprinter contribute a
// constant). Only nodes touched since the last call are re-hashed, and
// of those only the ones whose StateVersion moved; the full-rehash
// reference mode hashes everything and must agree bit for bit.
func (n *Network) Fingerprint() uint64 {
	if n.rehashAll {
		n.rehashAllNodes()
		return n.combined
	}
	for _, id := range n.dirty {
		n.dirtyMark[id] = false
		if vs := n.versioners[id]; vs != nil {
			v := vs.StateVersion()
			if v == n.versions[id] {
				continue // state version unmoved: cached hash is current
			}
			n.versions[id] = v
		}
		f := n.nodeFingerprint(id)
		if f != n.fps[id] {
			n.combined ^= mixNode(id, n.fps[id]) ^ mixNode(id, f)
			n.fps[id] = f
		}
	}
	n.dirty = n.dirty[:0]
	return n.combined
}

// LastFingerprint returns the combined fingerprint as of the most
// recent Fingerprint computation, without touching the cache or the
// recompute counters (Run's quiescence loop keeps it current, so after
// a converged Run it is exactly the quiesced fingerprint). Certificate
// construction uses it instead of Fingerprint so the deterministic
// FingerprintRecomputes figure of merit is unchanged by detection.
func (n *Network) LastFingerprint() uint64 { return n.combined }

// StateVersions returns the per-node quiescence-epoch vector: each
// node's StateVersion where the process reports one, its cached state
// hash otherwise. Pure reads — deterministic for a seeded run.
func (n *Network) StateVersions() []uint64 {
	out := make([]uint64, len(n.procs))
	for id := range n.procs {
		if vs := n.versioners[id]; vs != nil {
			out[id] = vs.StateVersion()
		} else {
			out[id] = n.fps[id]
		}
	}
	return out
}

// MaxStateBits returns the maximum StateBits over all processes, or 0 if
// unsupported.
func (n *Network) MaxStateBits() int { return MaxStateBitsOf(n.procs) }

// MaxRetryPeriod returns the maximum CurrentRetryPeriod over processes
// implementing RetryAware, or def when none do. Pure reads — safe from
// run-loop observers and deterministic for a seeded run.
func (n *Network) MaxRetryPeriod(def int) int {
	max, found := 0, false
	for _, p := range n.procs {
		if ra, ok := p.(RetryAware); ok {
			found = true
			if r := ra.CurrentRetryPeriod(); r > max {
				max = r
			}
		}
	}
	if !found {
		return def
	}
	return max
}

// MaxStateBitsOf returns the maximum StateBits over the processes, or 0
// if unsupported — shared by every backend's result collection.
func MaxStateBitsOf(procs []Process) int {
	max := 0
	for _, p := range procs {
		if s, ok := p.(StateSizer); ok {
			if b := s.StateBits(); b > max {
				max = b
			}
		}
	}
	return max
}

// Scheduler executes one round of the network per RunRound call.
type Scheduler interface {
	// RunRound advances the network by one round and returns the number
	// of atomic events executed. Returning 0 means no progress is
	// possible (should not happen: ticks are always enabled).
	RunRound(n *Network) int
}

// RunConfig controls Network.Run.
type RunConfig struct {
	Scheduler Scheduler
	// MaxRounds bounds the execution; Run returns with Converged=false
	// when exceeded.
	MaxRounds int
	// QuiesceRounds: stop after this many consecutive rounds without a
	// fingerprint change (and no pending messages of the kinds listed in
	// ActiveKinds, if any). Zero disables quiescence detection.
	QuiesceRounds int
	// QuiesceWindow, if non-nil, resolves the stability window CURRENTLY
	// required — the adaptive suppression backoff makes the retry
	// schedule time-varying, so the window must cover the deepest
	// backoff tier in effect, which only a live read can know.
	// QuiesceRounds then acts as the static floor that gates the O(n)
	// evaluation: the function is consulted only once the floor is met.
	// Nil keeps the fixed-window behavior byte-identical.
	QuiesceWindow func() int
	// ActiveKinds: message kinds that must drain before quiescence is
	// declared (e.g. reduction messages still in flight).
	ActiveKinds []string
	// OnRound, if non-nil, is called after every round with the round
	// index; returning false stops the run (Converged=false).
	OnRound func(round int) bool
}

// RunResult summarizes a Run.
type RunResult struct {
	Converged       bool
	Rounds          int
	LastChangeRound int
}

// quiesceTracker is the per-round quiescence accounting shared by the
// two execution cores: it observes the combined fingerprint after each
// executed round, stamps LastChangeRound/EventsAtLastChange on change,
// and reports convergence once the fingerprint has held for the window
// with every active message kind drained. The compat core feeds it
// consecutive rounds; the event core also consults it when
// fast-forwarding over empty buckets (stability there is implied: no
// events means no possible change).
type quiesceTracker struct {
	net      *Network
	window   int
	windowFn func() int // non-nil: adaptive requirement on top of the floor
	kinds    []string
	lastFP   uint64
	stable   int
}

func newQuiesceTracker(n *Network, window int, windowFn func() int, kinds []string) *quiesceTracker {
	return &quiesceTracker{net: n, window: window, windowFn: windowFn,
		kinds: kinds, lastFP: n.combined}
}

// windowNow resolves the stability window currently required: the
// static floor, raised to the adaptive requirement when a window
// function is installed. During a stable stretch backoff tiers only
// deepen (a reset implies a version bump, hence a fingerprint change
// that already restarted the count), so the value read at evaluation
// time bounds the retry spacing over the whole stretch.
func (q *quiesceTracker) windowNow() int {
	w := q.window
	if q.windowFn != nil {
		if need := q.windowFn(); need > w {
			w = need
		}
	}
	return w
}

// observe records the completed round and returns true when quiescence
// is certain: window consecutive unchanged rounds and active kinds
// drained.
func (q *quiesceTracker) observe(round int) bool {
	fp := q.net.Fingerprint()
	if fp != q.lastFP {
		q.lastFP = fp
		q.stable = 0
		q.net.metrics.LastChangeRound = round
		q.net.metrics.EventsAtLastChange = q.net.metrics.Events
	} else {
		q.stable++
	}
	if q.window <= 0 || q.stable < q.window {
		return false
	}
	if q.windowFn != nil && q.stable < q.windowNow() {
		return false
	}
	return q.drained()
}

// drained reports whether every active message kind has zero pending
// messages.
func (q *quiesceTracker) drained() bool {
	for _, k := range q.kinds {
		if q.net.PendingKind(k) > 0 {
			return false
		}
	}
	return true
}

// Run executes rounds until quiescence or the round bound. This is the
// compatibility core: it steps the legacy per-round schedulers in the
// exact pre-event-core order (RNG consumption, metrics, one Fingerprint
// per round), so its outputs are byte-identical to the committed
// baselines. Network.RunEvents is the frontier-only alternative.
func (n *Network) Run(cfg RunConfig) RunResult {
	if cfg.Scheduler == nil {
		cfg.Scheduler = NewSyncScheduler()
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1 << 20
	}
	// Re-seed the cache: harness flows mutate process state directly
	// (corruption, preloads) between NewNetwork and Run.
	n.rehashAllNodes()
	q := newQuiesceTracker(n, cfg.QuiesceRounds, cfg.QuiesceWindow, cfg.ActiveKinds)
	for r := 0; r < cfg.MaxRounds; r++ {
		cfg.Scheduler.RunRound(n)
		n.metrics.Rounds++
		if q.observe(n.metrics.Rounds) {
			return RunResult{Converged: true, Rounds: n.metrics.Rounds,
				LastChangeRound: n.metrics.LastChangeRound}
		}
		if cfg.OnRound != nil && !cfg.OnRound(r) {
			break
		}
	}
	return RunResult{Converged: false, Rounds: n.metrics.Rounds,
		LastChangeRound: n.metrics.LastChangeRound}
}
