package sim

// fenwick is a binary indexed tree over a fixed position range, used as
// the prefix-sum index behind RandomPendingLink: position p mirrors
// nonEmpty[p]'s queue length, so selecting the link holding the k-th
// pending message is O(log cap) instead of a linear walk over every
// non-empty link. Positions past len(nonEmpty) always hold zero (links
// leave the index with their length already decremented to zero), so
// swap-removal only has to move the relocated link's mass.
type fenwick struct {
	tree  []int // 1-based BIT; tree[i] covers (i - lowbit(i), i]
	hibit int   // largest power of two <= len(tree)-1, for Select's descent
}

func newFenwick(cap int) fenwick {
	hi := 1
	for hi<<1 <= cap {
		hi <<= 1
	}
	return fenwick{tree: make([]int, cap+1), hibit: hi}
}

// Add applies delta at 0-based position p.
func (f *fenwick) Add(p, delta int) {
	for i := p + 1; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// Select returns the smallest 0-based position whose prefix sum
// (inclusive) exceeds k — i.e. the position holding the (k+1)-th unit of
// mass. The caller guarantees k < total mass.
func (f *fenwick) Select(k int) int {
	pos := 0
	for step := f.hibit; step > 0; step >>= 1 {
		if next := pos + step; next < len(f.tree) && f.tree[next] <= k {
			pos = next
			k -= f.tree[next]
		}
	}
	return pos // 1-based pos is the last prefix <= k; 0-based answer is pos
}
