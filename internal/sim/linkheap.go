package sim

// linkMaxHeap is an indexed max-heap over link queue lengths: PopMax
// returns the link with the longest queue, ties broken toward the
// lowest link index (a total, deterministic order). The position index
// supports increase/decrease-key in O(log k), which is what turns the
// adversarial scheduler's per-delivery longest-queue scan from O(links)
// into O(log links): deliveries decrease one key, and the sends a
// delivery triggers increase others via the network's send hook.
type linkMaxHeap struct {
	li  []int // heap order: li[0] is the max
	key []int // key[i] is li[i]'s queue length
	pos []int // link index -> heap position, -1 when absent
}

func newLinkMaxHeap(links int) *linkMaxHeap {
	h := &linkMaxHeap{pos: make([]int, links)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// less reports whether heap slot i ranks strictly below slot j (shorter
// queue, or equal length with a larger link index).
func (h *linkMaxHeap) less(i, j int) bool {
	if h.key[i] != h.key[j] {
		return h.key[i] < h.key[j]
	}
	return h.li[i] > h.li[j]
}

func (h *linkMaxHeap) swap(i, j int) {
	h.li[i], h.li[j] = h.li[j], h.li[i]
	h.key[i], h.key[j] = h.key[j], h.key[i]
	h.pos[h.li[i]], h.pos[h.li[j]] = i, j
}

func (h *linkMaxHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(p, i) {
			break
		}
		h.swap(p, i)
		i = p
	}
}

func (h *linkMaxHeap) down(i int) {
	n := len(h.li)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.less(big, l) {
			big = l
		}
		if r < n && h.less(big, r) {
			big = r
		}
		if big == i {
			return
		}
		h.swap(i, big)
		i = big
	}
}

// Len returns the number of indexed links.
func (h *linkMaxHeap) Len() int { return len(h.li) }

// Update inserts link li with the given queue length, or re-keys it if
// already present. A length of zero removes it.
func (h *linkMaxHeap) Update(li, length int) {
	p := h.pos[li]
	if length <= 0 {
		if p >= 0 {
			h.removeAt(p)
		}
		return
	}
	if p < 0 {
		h.li = append(h.li, li)
		h.key = append(h.key, length)
		h.pos[li] = len(h.li) - 1
		h.up(len(h.li) - 1)
		return
	}
	old := h.key[p]
	h.key[p] = length
	if length > old {
		h.up(p)
	} else if length < old {
		h.down(p)
	}
}

func (h *linkMaxHeap) removeAt(p int) {
	last := len(h.li) - 1
	h.pos[h.li[p]] = -1
	if p != last {
		h.li[p], h.key[p] = h.li[last], h.key[last]
		h.pos[h.li[p]] = p
	}
	h.li = h.li[:last]
	h.key = h.key[:last]
	if p < last {
		h.down(p)
		h.up(p)
	}
}

// Max returns the longest link's index without removing it; ok is false
// when the heap is empty.
func (h *linkMaxHeap) Max() (li int, ok bool) {
	if len(h.li) == 0 {
		return 0, false
	}
	return h.li[0], true
}

// Reset empties the heap, keeping the position index consistent.
func (h *linkMaxHeap) Reset() {
	for _, li := range h.li {
		h.pos[li] = -1
	}
	h.li = h.li[:0]
	h.key = h.key[:0]
}
