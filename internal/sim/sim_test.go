package sim

import (
	"testing"
	"time"

	"mdst/internal/graph"
)

// minMsg floods the smallest ID seen so far.
type minMsg struct{ val int }

func (m minMsg) Kind() string { return "min" }
func (m minMsg) Size() int    { return 1 }

// minProc is a toy protocol: converge to the global minimum ID.
type minProc struct {
	id  int
	min int
}

func (p *minProc) Init(ctx *Context) {}
func (p *minProc) Tick(ctx *Context) {
	for _, nb := range ctx.Neighbors() {
		ctx.Send(nb, minMsg{p.min})
	}
}
func (p *minProc) Receive(ctx *Context, from NodeID, m Message) {
	if v := m.(minMsg).val; v < p.min {
		p.min = v
	}
}
func (p *minProc) Fingerprint() uint64 { return uint64(p.min) }
func (p *minProc) StateBits() int      { return 64 }

func newMinNetwork(g *graph.Graph, seed int64) *Network {
	return NewNetwork(g, func(id NodeID, _ []NodeID) Process {
		return &minProc{id: id, min: id}
	}, seed)
}

func checkAllMin(t *testing.T, get func(id int) Process, n int) {
	t.Helper()
	for id := 0; id < n; id++ {
		if p := get(id).(*minProc); p.min != 0 {
			t.Fatalf("node %d: min=%d, want 0", id, p.min)
		}
	}
}

func TestSyncSchedulerConvergesMinFlood(t *testing.T) {
	g := graph.Ring(10)
	net := newMinNetwork(g, 1)
	res := net.Run(RunConfig{Scheduler: NewSyncScheduler(), MaxRounds: 100, QuiesceRounds: 3})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	checkAllMin(t, net.Process, 10)
	// Min-ID flood on a ring of 10 takes about diameter rounds.
	if res.LastChangeRound > 10 {
		t.Fatalf("took %d rounds, expected <= 10", res.LastChangeRound)
	}
}

func TestAsyncSchedulerConvergesMinFlood(t *testing.T) {
	g := graph.Grid(4, 4)
	net := newMinNetwork(g, 2)
	res := net.Run(RunConfig{Scheduler: NewAsyncScheduler(), MaxRounds: 500, QuiesceRounds: 3})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	checkAllMin(t, net.Process, 16)
}

func TestAdversarialSchedulerConvergesMinFlood(t *testing.T) {
	g := graph.Ring(12)
	net := newMinNetwork(g, 3)
	res := net.Run(RunConfig{Scheduler: NewAdversarialScheduler(), MaxRounds: 500, QuiesceRounds: 3})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	checkAllMin(t, net.Process, 12)
}

func TestDeterministicReplay(t *testing.T) {
	g := graph.Grid(3, 5)
	run := func() (uint64, int64) {
		net := newMinNetwork(g, 99)
		net.Run(RunConfig{Scheduler: NewAsyncScheduler(), MaxRounds: 50})
		return net.Fingerprint(), net.Metrics().Events
	}
	fp1, ev1 := run()
	fp2, ev2 := run()
	if fp1 != fp2 || ev1 != ev2 {
		t.Fatalf("same seed diverged: fp %d vs %d, events %d vs %d", fp1, fp2, ev1, ev2)
	}
}

func TestMetricsAccounting(t *testing.T) {
	g := graph.Ring(6)
	net := newMinNetwork(g, 4)
	net.Run(RunConfig{Scheduler: NewSyncScheduler(), MaxRounds: 5})
	m := net.Metrics()
	if m.Rounds != 5 {
		t.Fatalf("rounds=%d, want 5", m.Rounds)
	}
	// Each round each of 6 nodes sends 2 messages.
	if m.SentByKind["min"] != 6*2*5 {
		t.Fatalf("sent=%d, want 60", m.SentByKind["min"])
	}
	if m.Ticks != 30 {
		t.Fatalf("ticks=%d, want 30", m.Ticks)
	}
	if m.MaxMsgSize != 1 || m.MaxMsgSizeKind != "min" {
		t.Fatalf("max size %d kind %q", m.MaxMsgSize, m.MaxMsgSizeKind)
	}
	if net.MaxStateBits() != 64 {
		t.Fatalf("state bits %d", net.MaxStateBits())
	}
}

// fifoMsg carries a sequence number to verify per-link FIFO order.
type fifoMsg struct{ seq int }

func (m fifoMsg) Kind() string { return "fifo" }
func (m fifoMsg) Size() int    { return 1 }

type fifoSender struct{ next int }

func (p *fifoSender) Init(ctx *Context) {}
func (p *fifoSender) Tick(ctx *Context) {
	for _, nb := range ctx.Neighbors() {
		ctx.Send(nb, fifoMsg{p.next})
	}
	p.next++
}
func (p *fifoSender) Receive(ctx *Context, from NodeID, m Message) {}

type fifoReceiver struct {
	last    map[NodeID]int
	violate bool
}

func (p *fifoReceiver) Init(ctx *Context) { p.last = make(map[NodeID]int) }
func (p *fifoReceiver) Tick(ctx *Context) {}
func (p *fifoReceiver) Receive(ctx *Context, from NodeID, m Message) {
	seq := m.(fifoMsg).seq
	if prev, ok := p.last[from]; ok && seq != prev+1 {
		p.violate = true
	}
	p.last[from] = seq
}

func TestFIFOOrderPerLink(t *testing.T) {
	g := graph.Star(5) // center 0 receives from 4 senders
	net := NewNetwork(g, func(id NodeID, _ []NodeID) Process {
		if id == 0 {
			return &fifoReceiver{}
		}
		return &fifoSender{}
	}, 7)
	net.Run(RunConfig{Scheduler: NewAsyncScheduler(), MaxRounds: 200})
	if net.Process(0).(*fifoReceiver).violate {
		t.Fatal("FIFO violated on some link")
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	g := graph.Path(3)
	net := NewNetwork(g, func(id NodeID, _ []NodeID) Process {
		return &minProc{id: id, min: id}
	}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-neighbor send")
		}
	}()
	// Node 0's only neighbor is 1; sending to 2 must panic.
	net.ctxs[0].Send(2, minMsg{0})
}

func TestRunStopsAtMaxRounds(t *testing.T) {
	// A protocol that changes state forever never quiesces.
	g := graph.Path(2)
	net := NewNetwork(g, func(id NodeID, _ []NodeID) Process {
		return &fifoSender{}
	}, 1)
	res := net.Run(RunConfig{Scheduler: NewSyncScheduler(), MaxRounds: 17})
	if res.Converged {
		t.Fatal("converged without quiescence detection enabled")
	}
	if net.Metrics().Rounds != 17 {
		t.Fatalf("rounds=%d, want 17", net.Metrics().Rounds)
	}
}

func TestOnRoundEarlyStop(t *testing.T) {
	g := graph.Ring(5)
	net := newMinNetwork(g, 1)
	rounds := 0
	net.Run(RunConfig{Scheduler: NewSyncScheduler(), MaxRounds: 100,
		OnRound: func(r int) bool { rounds++; return r < 3 }})
	if rounds != 4 {
		t.Fatalf("OnRound called %d times, want 4", rounds)
	}
}

func TestPendingKind(t *testing.T) {
	g := graph.Path(2)
	net := newMinNetwork(g, 1)
	net.Tick(0) // node 0 sends one minMsg to node 1
	if got := net.PendingKind("min"); got != 1 {
		t.Fatalf("pending=%d, want 1", got)
	}
	if got := net.PendingKind("other"); got != 0 {
		t.Fatalf("pending other=%d, want 0", got)
	}
	if net.Pending() != 1 {
		t.Fatal("total pending wrong")
	}
}

func TestQuiesceWaitsForActiveKinds(t *testing.T) {
	// minProc state stabilizes quickly, but "min" messages keep flowing;
	// with ActiveKinds{"min"} quiescence must never be declared.
	g := graph.Ring(4)
	net := newMinNetwork(g, 5)
	res := net.Run(RunConfig{Scheduler: NewSyncScheduler(), MaxRounds: 30,
		QuiesceRounds: 2, ActiveKinds: []string{"min"}})
	if res.Converged {
		t.Fatal("quiesced despite perpetual min traffic")
	}
}

func TestLiveNetworkMinFlood(t *testing.T) {
	g := graph.Grid(4, 4)
	ln := NewLiveNetwork(g, func(id NodeID, _ []NodeID) Process {
		return &minProc{id: id, min: id}
	}, LiveConfig{TickInterval: 100 * time.Microsecond})
	ln.RunFor(300 * time.Millisecond)
	checkAllMin(t, ln.Process, 16)
	if ln.Fingerprint() == 0 {
		t.Fatal("fingerprint should combine node states")
	}
}

func TestLiveNetworkStopIdempotentInspection(t *testing.T) {
	g := graph.Ring(4)
	ln := NewLiveNetwork(g, func(id NodeID, _ []NodeID) Process {
		return &minProc{id: id, min: id}
	}, LiveConfig{})
	ln.Start()
	time.Sleep(50 * time.Millisecond)
	ln.Stop()
	// After Stop, inspection is safe.
	_ = ln.Process(2).(*minProc).min
}

func TestDeliverEmptyLinkPanics(t *testing.T) {
	g := graph.Path(2)
	net := newMinNetwork(g, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty-link delivery")
		}
	}()
	net.Deliver(0)
}

func TestLinkEnds(t *testing.T) {
	g := graph.Path(2)
	net := newMinNetwork(g, 1)
	from, to := net.LinkEnds(0)
	if from != 0 || to != 1 {
		t.Fatalf("link0 = %d->%d", from, to)
	}
}

func TestLossyLinksDropMessages(t *testing.T) {
	g := graph.Ring(8)
	net := newMinNetwork(g, 11)
	net.SetDropRate(0.5)
	net.Run(RunConfig{Scheduler: NewSyncScheduler(), MaxRounds: 60})
	if net.Dropped() == 0 {
		t.Fatal("no messages dropped at 50% loss")
	}
	// Min flood is idempotent and periodic: it converges despite loss.
	checkAllMin(t, net.Process, 8)
}

func TestDropRateValidation(t *testing.T) {
	g := graph.Path(2)
	net := newMinNetwork(g, 1)
	net.SetDropRate(0) // legal no-op
	for _, bad := range []float64{-0.1, 1.0, 2.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v accepted", bad)
				}
			}()
			net.SetDropRate(bad)
		}()
	}
}
