package sim

import (
	"container/heap"
	"sort"
)

// The event core: a discrete-event alternative to the per-round full
// sweep of Network.Run. Virtual time is the round index; pending
// deliveries and node tick timers live in calendar-queue buckets keyed
// by round, and a round's bucket is executed only if it has events.
// Nodes without work park their timers entirely (see EventProcess), so
// per-round cost tracks the active frontier instead of n+m. Round
// semantics are preserved as a derived view: a message sent in round t
// is deliverable in round t+1 (the sync-scheduler contract),
// Metrics.Rounds/LastChangeRound advance in virtual rounds, and the
// quiescence window is measured in virtual rounds — convergence can
// therefore be declared by fast-forwarding over a gap of empty buckets
// without executing the idle rounds.

// NoWork is the EventProcess.NextWork sentinel for "parked": the node
// needs no tick until new input (a delivery or direct state mutation)
// arrives.
const NoWork = -1

// EventProcess is the optional interface that lets the event core park
// idle nodes. A process that does not implement it is ticked in every
// executed round (always correct, no frontier win).
//
// The contract ties tick-denominated protocol schedules to virtual
// rounds: NextWork reports, relative to the process's CURRENT tick
// counter, in how many ticks the next tick with observable work falls
// (1 = the very next tick must run; k>1 = the next k-1 ticks would be
// no-ops; NoWork = no tick needed until new input). SkipTicks advances
// the tick counter by k without doing work — the engine calls it on
// wake so counters stay aligned with virtual time and tick-keyed
// schedules (search retry deadlines, suppression windows) keep their
// round meaning.
type EventProcess interface {
	NextWork() int
	SkipTicks(k int)
}

// EventPolicy selects the intra-round event ordering of the event core,
// mirroring the three legacy schedulers.
type EventPolicy int

const (
	// EventPolicySync mirrors SyncScheduler: due deliveries first
	// (randomized link order, FIFO within links), then ticks in
	// randomized order.
	EventPolicySync EventPolicy = iota
	// EventPolicyAsync mirrors AsyncScheduler's spirit: due deliveries
	// and ticks of the round interleave in one random order.
	EventPolicyAsync
	// EventPolicyAdversarial mirrors AdversarialScheduler: due
	// deliveries always from the currently longest queue (lowest link
	// index on ties), then ticks in descending ID order.
	EventPolicyAdversarial
)

// EventConfig controls Network.RunEvents. The fields correspond to
// RunConfig one for one; Policy replaces the Scheduler.
type EventConfig struct {
	Policy EventPolicy
	// MaxRounds bounds virtual time; RunEvents returns Converged=false
	// when the bound passes without quiescence.
	MaxRounds int
	// QuiesceRounds: declare convergence once this many consecutive
	// virtual rounds pass without a fingerprint change (and the
	// ActiveKinds drained). Zero disables detection.
	QuiesceRounds int
	// QuiesceWindow, if non-nil, resolves the stability window currently
	// required on top of the QuiesceRounds floor (time-varying retry
	// schedules; see RunConfig.QuiesceWindow). During an empty gap no
	// launches fire, so backoff tiers are frozen and the value read at
	// the gap's start stays valid across the fast-forward.
	QuiesceWindow func() int
	ActiveKinds   []string
	// OnRound, if non-nil, is called after every EXECUTED round with the
	// legacy 0-based round index; rounds skipped over as empty are not
	// reported (nothing ran, nothing could change). Returning false
	// stops the run.
	OnRound func(round int) bool
}

// eventBucket holds one virtual round's work: candidate tick events and
// one delivery entry per due message (link index, send order).
type eventBucket struct {
	ticks []NodeID
	dels  []int
}

// intMinHeap is a container/heap min-heap over bucket times.
type intMinHeap []int

func (h intMinHeap) Len() int            { return len(h) }
func (h intMinHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intMinHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// eventEngine is the per-run state of the event core.
type eventEngine struct {
	net    *Network
	policy EventPolicy

	procs      []EventProcess // nil where the process cannot park
	nextTickAt []int          // armed tick round per node; 0 = unarmed
	tickSync   []int          // node's current tick-counter value, in rounds

	buckets map[int]*eventBucket
	times   intMinHeap
	free    []*eventBucket // bucket recycling

	now         int
	touched     []NodeID
	touchedMark []bool

	// Scratch for the delivery-ordering policies.
	dueCount []int
	groups   []int
	advHeap  *linkMaxHeap
	async    []asyncItem
}

type asyncItem struct {
	tick bool
	v    int // node ID for ticks, link index for deliveries
}

func (e *eventEngine) bucket(t int) *eventBucket {
	if b, ok := e.buckets[t]; ok {
		return b
	}
	var b *eventBucket
	if n := len(e.free); n > 0 {
		b = e.free[n-1]
		e.free = e.free[:n-1]
		b.ticks = b.ticks[:0]
		b.dels = b.dels[:0]
	} else {
		b = &eventBucket{}
	}
	e.buckets[t] = b
	heap.Push(&e.times, t)
	return b
}

// arm schedules node v's next tick at round t, keeping the earliest of
// the existing and requested times (later duplicates in old buckets are
// skipped at fire time via the nextTickAt check).
func (e *eventEngine) arm(v NodeID, t int) {
	if cur := e.nextTickAt[v]; cur != 0 && cur <= t {
		return
	}
	e.nextTickAt[v] = t
	b := e.bucket(t)
	b.ticks = append(b.ticks, v)
}

func (e *eventEngine) touch(v NodeID) {
	if !e.touchedMark[v] {
		e.touchedMark[v] = true
		e.touched = append(e.touched, v)
	}
}

// syncClock fast-forwards node v's tick counter to round now-1 (the
// value a legacy node would hold while receiving round now's
// deliveries), so handlers observe a current clock.
func (e *eventEngine) syncClock(v NodeID) {
	if p := e.procs[v]; p != nil {
		if d := (e.now - 1) - e.tickSync[v]; d > 0 {
			p.SkipTicks(d)
			e.tickSync[v] = e.now - 1
		}
	}
}

// deliver executes one due delivery on link li.
func (e *eventEngine) deliver(li int) {
	to := e.net.links[li].to
	e.syncClock(to)
	e.touch(to)
	e.net.Deliver(li)
}

// fireTick validates and executes node id's tick event at round t. A
// stale entry (the node re-armed elsewhere or parked) is skipped; an
// armed node whose work horizon moved is re-armed without ticking, so
// parked-then-retargeted timers never produce futile gossip.
func (e *eventEngine) fireTick(id NodeID, t int) {
	if e.nextTickAt[id] != t {
		return
	}
	e.nextTickAt[id] = 0
	if p := e.procs[id]; p != nil {
		w := p.NextWork()
		if w == NoWork {
			return // parked; the next event at this node re-arms it
		}
		if due := e.tickSync[id] + w; due > t {
			e.arm(id, due)
			return
		}
	}
	e.syncClock(id)
	e.net.Tick(id)
	e.tickSync[id] = t
	e.touch(id)
}

// rearm computes node v's next timer after the events of round now.
func (e *eventEngine) rearm(v NodeID) {
	p := e.procs[v]
	if p == nil {
		e.arm(v, e.now+1)
		return
	}
	w := p.NextWork()
	if w == NoWork {
		return
	}
	due := e.tickSync[v] + w
	if due <= e.now {
		due = e.now + 1
	}
	e.arm(v, due)
}

// runBucket executes round t's events under the configured policy.
func (e *eventEngine) runBucket(t int, b *eventBucket) {
	rng := e.net.rng
	switch e.policy {
	case EventPolicyAsync:
		items := e.async[:0]
		for _, li := range b.dels {
			items = append(items, asyncItem{tick: false, v: li})
		}
		for _, id := range b.ticks {
			items = append(items, asyncItem{tick: true, v: id})
		}
		e.async = items
		rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
		for _, it := range items {
			if it.tick {
				e.fireTick(it.v, t)
			} else {
				e.deliver(it.v)
			}
		}
	case EventPolicyAdversarial:
		// Longest-queue-first over the due messages: the heap keys the
		// links with due deliveries by current total queue length
		// (lowest index on ties) and is re-keyed after each delivery
		// and each send a delivery triggers.
		groups := e.groups[:0]
		for _, li := range b.dels {
			if e.dueCount[li] == 0 {
				groups = append(groups, li)
			}
			e.dueCount[li]++
		}
		e.groups = groups
		e.advHeap.Reset()
		for _, li := range groups {
			e.advHeap.Update(li, e.net.LinkLen(li))
		}
		inner := e.net.sendHook
		e.net.sendHook = func(li int) {
			if e.dueCount[li] > 0 {
				e.advHeap.Update(li, e.net.LinkLen(li))
			}
			inner(li)
		}
		for {
			best, ok := e.advHeap.Max()
			if !ok {
				break
			}
			e.deliver(best)
			e.dueCount[best]--
			if e.dueCount[best] > 0 {
				e.advHeap.Update(best, e.net.LinkLen(best))
			} else {
				e.advHeap.Update(best, 0)
			}
		}
		e.net.sendHook = inner
		for _, li := range groups {
			e.dueCount[li] = 0
		}
		ids := append([]NodeID(nil), b.ticks...)
		sort.Sort(sort.Reverse(sort.IntSlice(ids)))
		for _, id := range ids {
			e.fireTick(id, t)
		}
	default: // EventPolicySync
		// Deliveries first, grouped per link in first-appearance order
		// (FIFO within a link), link order randomized; then ticks in
		// randomized order.
		groups := e.groups[:0]
		for _, li := range b.dels {
			if e.dueCount[li] == 0 {
				groups = append(groups, li)
			}
			e.dueCount[li]++
		}
		e.groups = groups
		rng.Shuffle(len(groups), func(i, j int) { groups[i], groups[j] = groups[j], groups[i] })
		for _, li := range groups {
			cnt := e.dueCount[li]
			e.dueCount[li] = 0
			for c := 0; c < cnt; c++ {
				e.deliver(li)
			}
		}
		ids := b.ticks
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids {
			e.fireTick(id, t)
		}
	}
}

// RunEvents executes the network on the event core until quiescence or
// the round bound. It is the frontier-only counterpart of Run: rounds
// in which no node has work are never executed, and once the last
// fingerprint change is a full quiescence window in the past with no
// event scheduled in between, convergence is declared at the window's
// end round — the "empty queue + expired timers" certificate basis.
//
// RunEvents assumes reliable links: with a configured drop rate a lost
// gossip message is never re-sent to a parked sender, which breaks the
// stale-view recovery the compat core gets from its always-on gossip
// (the harness rejects that combination up front).
func (n *Network) RunEvents(cfg EventConfig) RunResult {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1 << 20
	}
	nn := n.g.N()
	e := &eventEngine{
		net:         n,
		policy:      cfg.Policy,
		procs:       make([]EventProcess, nn),
		nextTickAt:  make([]int, nn),
		tickSync:    make([]int, nn),
		buckets:     make(map[int]*eventBucket),
		touchedMark: make([]bool, nn),
		dueCount:    make([]int, len(n.links)),
		advHeap:     newLinkMaxHeap(len(n.links)),
	}
	for id := 0; id < nn; id++ {
		if p, ok := n.procs[id].(EventProcess); ok {
			e.procs[id] = p
		}
	}
	// Virtual time continues from any earlier Run on this network
	// (metrics.Rounds rounds have executed, so every tick counter and
	// LastChangeRound stamp is already in that frame).
	base := n.metrics.Rounds
	for id := 0; id < nn; id++ {
		e.tickSync[id] = base
		e.arm(id, base+1)
	}
	// Pre-existing pending messages are all deliverable next round.
	for _, li := range n.nonEmpty {
		b := e.bucket(base + 1)
		for c := n.links[li].len(); c > 0; c-- {
			b.dels = append(b.dels, li)
		}
	}
	prevHook := n.sendHook
	n.sendHook = func(li int) {
		b := e.bucket(e.now + 1)
		b.dels = append(b.dels, li)
	}
	defer func() { n.sendHook = prevHook }()

	// Re-seed the cache exactly as Run does: harness flows mutate
	// process state directly between NewNetwork and the run.
	n.rehashAllNodes()
	q := newQuiesceTracker(n, cfg.QuiesceRounds, cfg.QuiesceWindow, cfg.ActiveKinds)
	maxRound := base + cfg.MaxRounds
	for e.times.Len() > 0 {
		t := e.times[0]
		// Fast-forward convergence across a gap of empty rounds: if the
		// quiescence window ends strictly before the next scheduled
		// event, the intervening rounds were eventless — the fingerprint
		// could not have changed and no message was pending.
		if q.window > 0 {
			cand := n.metrics.LastChangeRound + q.windowNow()
			if cand > n.metrics.Rounds && cand < t && cand <= maxRound &&
				n.pendingTotal == 0 && q.drained() {
				n.metrics.Rounds = cand
				return RunResult{Converged: true, Rounds: n.metrics.Rounds,
					LastChangeRound: n.metrics.LastChangeRound}
			}
		}
		if t > maxRound {
			break
		}
		heap.Pop(&e.times)
		b := e.buckets[t]
		delete(e.buckets, t)
		e.now = t
		e.runBucket(t, b)
		e.free = append(e.free, b)
		n.metrics.Rounds = t
		for _, v := range e.touched {
			e.touchedMark[v] = false
			e.rearm(v)
		}
		e.touched = e.touched[:0]
		if q.observe(t) {
			return RunResult{Converged: true, Rounds: t,
				LastChangeRound: n.metrics.LastChangeRound}
		}
		if cfg.OnRound != nil && !cfg.OnRound(t-1) {
			return RunResult{Converged: false, Rounds: n.metrics.Rounds,
				LastChangeRound: n.metrics.LastChangeRound}
		}
	}
	// Queue exhausted: every timer is parked and nothing is in flight —
	// eternal quiescence if the window fits under the round bound.
	if q.window > 0 {
		cand := n.metrics.LastChangeRound + q.windowNow()
		if cand < n.metrics.Rounds {
			cand = n.metrics.Rounds
		}
		if cand <= maxRound && n.pendingTotal == 0 && q.drained() {
			n.metrics.Rounds = cand
			return RunResult{Converged: true, Rounds: cand,
				LastChangeRound: n.metrics.LastChangeRound}
		}
	}
	n.metrics.Rounds = maxRound
	return RunResult{Converged: false, Rounds: n.metrics.Rounds,
		LastChangeRound: n.metrics.LastChangeRound}
}
