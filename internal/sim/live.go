package sim

import (
	"sync"
	"time"

	"mdst/internal/graph"
)

// LiveNetwork runs each node as a goroutine exchanging messages over Go
// channels — the natural CSP rendering of the paper's asynchronous
// message-passing model. A node's inbox is a single buffered channel;
// because channel delivery preserves send order per sender, each
// (sender, receiver) pair sees FIFO delivery, which is exactly the
// paper's reliable-FIFO-link assumption.
//
// LiveNetwork trades determinism for real concurrency; the deterministic
// Network is used for experiments, the live runtime for validating the
// protocol under true parallelism (run with -race in tests).
type LiveNetwork struct {
	g      *graph.Graph
	procs  []Process
	inbox  []chan liveEnvelope
	wg     sync.WaitGroup
	tick   time.Duration
	inboxN int

	// stop is replaced on every Start so the network is restartable:
	// run–pause–inspect loops (e.g. the differential tests that poll the
	// legitimacy predicate between bursts) Start again after Stop.
	// lifecycle serializes whole Start/Stop transitions (a Start cannot
	// overlap a Stop that is still draining goroutines); mu guards the
	// stop field for concurrent readers in send.
	lifecycle sync.Mutex
	mu        sync.RWMutex
	stop      chan struct{}
	inited    bool
	running   bool
}

type liveEnvelope struct {
	from NodeID
	msg  Message
}

// LiveConfig controls a LiveNetwork.
type LiveConfig struct {
	// TickInterval is the gossip period of each node's "do forever" loop
	// (default 200µs).
	TickInterval time.Duration
	// InboxSize is each node's channel buffer (default 4096). A full
	// inbox blocks the sender, which models link back-pressure.
	InboxSize int
}

// NewLiveNetwork builds the live runtime over g. The factory contract is
// the same as NewNetwork's.
func NewLiveNetwork(g *graph.Graph, factory func(id NodeID, neighbors []NodeID) Process, cfg LiveConfig) *LiveNetwork {
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 200 * time.Microsecond
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 4096
	}
	n := g.N()
	ln := &LiveNetwork{
		g:      g,
		procs:  make([]Process, n),
		inbox:  make([]chan liveEnvelope, n),
		tick:   cfg.TickInterval,
		inboxN: cfg.InboxSize,
	}
	for id := 0; id < n; id++ {
		ln.inbox[id] = make(chan liveEnvelope, cfg.InboxSize)
	}
	for id := 0; id < n; id++ {
		ln.procs[id] = factory(id, g.Neighbors(id))
	}
	return ln
}

// Start launches one goroutine per node. Each goroutine alternates
// between draining its inbox and ticking on its gossip timer until Stop.
// Start after a Stop resumes execution with the nodes' current state
// (Init is only called on the first Start: self-stabilizing processes
// must not reset their state).
func (ln *LiveNetwork) Start() {
	ln.lifecycle.Lock()
	defer ln.lifecycle.Unlock()
	if ln.running {
		panic("sim: LiveNetwork.Start while running")
	}
	stop := make(chan struct{})
	ln.mu.Lock()
	ln.stop = stop
	ln.mu.Unlock()
	ln.running = true
	first := !ln.inited
	ln.inited = true

	for id := 0; id < ln.g.N(); id++ {
		id := id
		ctx := &Context{
			id:   id,
			nbrs: ln.g.Neighbors(id),
			send: ln.send,
		}
		if first {
			ln.procs[id].Init(ctx)
		}
		ln.wg.Add(1)
		go func() {
			defer ln.wg.Done()
			ticker := time.NewTicker(ln.tick)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case env := <-ln.inbox[id]:
					ln.procs[id].Receive(ctx, env.from, env.msg)
				case <-ticker.C:
					ln.procs[id].Tick(ctx)
				}
			}
		}()
	}
}

func (ln *LiveNetwork) send(from, to NodeID, m Message) {
	if !ln.g.HasEdge(from, to) {
		panic("sim: live send to non-neighbor")
	}
	ln.mu.RLock()
	stop := ln.stop
	ln.mu.RUnlock()
	select {
	case ln.inbox[to] <- liveEnvelope{from: from, msg: m}:
	case <-stop:
		// Shutting down: drop the message (links are being torn down).
	}
}

// Stop halts all node goroutines and waits for them to exit. After Stop
// returns, process states can be inspected safely, and Start may be
// called again to resume.
func (ln *LiveNetwork) Stop() {
	ln.lifecycle.Lock()
	defer ln.lifecycle.Unlock()
	if !ln.running {
		return
	}
	close(ln.stop)
	ln.wg.Wait()
	// Only now is a subsequent Start safe: every goroutine has exited.
	ln.running = false
}

// RunFor starts the network, lets it run for d, then stops it.
func (ln *LiveNetwork) RunFor(d time.Duration) {
	ln.Start()
	time.Sleep(d)
	ln.Stop()
}

// Process returns the process at node id. Only safe to call before Start
// or after Stop.
func (ln *LiveNetwork) Process(id NodeID) Process { return ln.procs[id] }

// Fingerprint combines process fingerprints; only safe after Stop.
func (ln *LiveNetwork) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, p := range ln.procs {
		var f uint64
		if fp, ok := p.(Fingerprinter); ok {
			f = fp.Fingerprint()
		}
		h ^= f
		h *= prime
	}
	return h
}
