package sim

import (
	"sync"
	"sync/atomic"
	"time"

	"mdst/internal/detect"
	"mdst/internal/graph"
)

// LiveNetwork runs each node as a goroutine exchanging messages over Go
// channels — the natural CSP rendering of the paper's asynchronous
// message-passing model. A node's inbox is a single buffered channel;
// because channel delivery preserves send order per sender, each
// (sender, receiver) pair sees FIFO delivery, which is exactly the
// paper's reliable-FIFO-link assumption.
//
// LiveNetwork trades determinism for real concurrency; the deterministic
// Network is used for experiments, the live runtime for validating the
// protocol under true parallelism (run with -race in tests).
//
// Quiescence detection mirrors the deterministic simulator's incremental
// scheme: every node step sets a per-node touched flag, Fingerprint
// re-hashes only touched nodes (and of those only the ones whose
// StateVersion moved), and the combined hash is the same
// order-independent splitmix mix, patched in O(changed) per probe.
// Fingerprint snapshots each node under its per-node step lock, so it is
// safe to call concurrently with a running network — RunUntilQuiescent
// is built on that.
type LiveNetwork struct {
	g      *graph.Graph
	procs  []Process
	inbox  []chan liveEnvelope
	wg     sync.WaitGroup
	tick   time.Duration
	inboxN int

	// stop is replaced on every Start so the network is restartable:
	// run–pause–inspect loops (e.g. the differential tests that poll the
	// legitimacy predicate between bursts) Start again after Stop.
	// lifecycle serializes whole Start/Stop transitions (a Start cannot
	// overlap a Stop that is still draining goroutines); mu guards the
	// stop field for concurrent readers in send.
	lifecycle sync.Mutex
	mu        sync.RWMutex
	stop      chan struct{}
	inited    bool
	running   bool

	// Per-node step locks: node id's goroutine holds nodeMu[id] around
	// every Tick/Receive, and Fingerprint holds it while hashing id — the
	// only cross-goroutine access to process state while running.
	// Fingerprint never blocks on a channel while holding a node lock, so
	// probing cannot extend a send-cycle into a deadlock.
	nodeMu  []sync.Mutex
	touched []atomic.Bool // node stepped since its last re-hash

	// Incremental fingerprint cache (probeMu serializes probers): fps
	// holds each node's last known state hash, combined their
	// order-independent mix, versions the StateVersion observed at the
	// last re-hash for processes that support the fast path.
	probeMu    sync.Mutex
	fps        []uint64
	versions   []uint64
	versioners []StateVersioner // non-nil where the process supports it
	combined   uint64
	fpValid    bool
	recomputes atomic.Int64
	sent       atomic.Int64

	// Active-kind accounting for convergence detection (internal/detect):
	// the Dijkstra–Scholten deficit activeSent-activeRecv counts the
	// reduction messages still in flight — periodic gossip is excluded,
	// since a silent protocol keeps gossiping at its fixed point. Both
	// counters only move on messages whose Kind is in active.
	active     map[string]struct{}
	activeSent atomic.Int64
	activeRecv atomic.Int64

	// Per-kind send counters for the metrics stream, gated by
	// LiveConfig.CountKinds so the hot send path pays nothing when the
	// stream is off. Map of string -> *atomic.Int64, lock-free.
	countKinds bool
	kindSent   sync.Map
}

type liveEnvelope struct {
	from NodeID
	msg  Message
}

// LiveConfig controls a LiveNetwork.
type LiveConfig struct {
	// TickInterval is the gossip period of each node's "do forever" loop
	// (default 200µs).
	TickInterval time.Duration
	// InboxSize is each node's channel buffer (default 4096). A full
	// inbox blocks the sender, which models link back-pressure.
	InboxSize int
	// ActiveKinds names the message kinds whose sent/received counters
	// feed convergence detection (ProbeSample's Dijkstra–Scholten
	// deficit) — the protocol's reduction kinds, which must both drain
	// and stop flowing at quiescence. Empty disables the accounting
	// (ProbeSample then reports a zero deficit and detection rests on
	// version-vector and fingerprint stability alone).
	ActiveKinds []string
	// CountKinds enables per-message-kind send counters (SentByKind) for
	// the metrics stream. Off by default: the counters add a sync.Map
	// lookup per send to the hot path, so only metrics-collecting runs
	// pay for them.
	CountKinds bool
}

// NewLiveNetwork builds the live runtime over g. The factory contract is
// the same as NewNetwork's.
func NewLiveNetwork(g *graph.Graph, factory func(id NodeID, neighbors []NodeID) Process, cfg LiveConfig) *LiveNetwork {
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 200 * time.Microsecond
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 4096
	}
	n := g.N()
	ln := &LiveNetwork{
		g:          g,
		procs:      make([]Process, n),
		inbox:      make([]chan liveEnvelope, n),
		tick:       cfg.TickInterval,
		inboxN:     cfg.InboxSize,
		nodeMu:     make([]sync.Mutex, n),
		touched:    make([]atomic.Bool, n),
		fps:        make([]uint64, n),
		versions:   make([]uint64, n),
		versioners: make([]StateVersioner, n),
		countKinds: cfg.CountKinds,
	}
	if len(cfg.ActiveKinds) > 0 {
		ln.active = make(map[string]struct{}, len(cfg.ActiveKinds))
		for _, k := range cfg.ActiveKinds {
			ln.active[k] = struct{}{}
		}
	}
	for id := 0; id < n; id++ {
		ln.inbox[id] = make(chan liveEnvelope, cfg.InboxSize)
	}
	for id := 0; id < n; id++ {
		ln.procs[id] = factory(id, g.Neighbors(id))
		if vs, ok := ln.procs[id].(StateVersioner); ok {
			ln.versioners[id] = vs
		}
	}
	return ln
}

// Start launches one goroutine per node. Each goroutine alternates
// between draining its inbox and ticking on its gossip timer until Stop.
// Start after a Stop resumes execution with the nodes' current state
// (Init is only called on the first Start: self-stabilizing processes
// must not reset their state).
func (ln *LiveNetwork) Start() {
	ln.lifecycle.Lock()
	defer ln.lifecycle.Unlock()
	if ln.running {
		panic("sim: LiveNetwork.Start while running")
	}
	stop := make(chan struct{})
	ln.mu.Lock()
	ln.stop = stop
	ln.mu.Unlock()
	ln.running = true
	first := !ln.inited
	ln.inited = true

	for id := 0; id < ln.g.N(); id++ {
		id := id
		ctx := &Context{
			id:   id,
			nbrs: ln.g.Neighbors(id),
			send: ln.send,
		}
		if first {
			ln.procs[id].Init(ctx)
		}
		ln.wg.Add(1)
		go func() {
			defer ln.wg.Done()
			ticker := time.NewTicker(ln.tick)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case env := <-ln.inbox[id]:
					ln.nodeMu[id].Lock()
					ln.procs[id].Receive(ctx, env.from, env.msg)
					ln.touched[id].Store(true)
					ln.nodeMu[id].Unlock()
					if ln.active != nil {
						if _, ok := ln.active[env.msg.Kind()]; ok {
							ln.activeRecv.Add(1)
						}
					}
				case <-ticker.C:
					ln.nodeMu[id].Lock()
					ln.procs[id].Tick(ctx)
					ln.touched[id].Store(true)
					ln.nodeMu[id].Unlock()
				}
			}
		}()
	}
}

func (ln *LiveNetwork) send(from, to NodeID, m Message) {
	if !ln.g.HasEdge(from, to) {
		panic("sim: live send to non-neighbor")
	}
	ln.mu.RLock()
	stop := ln.stop
	ln.mu.RUnlock()
	select {
	case ln.inbox[to] <- liveEnvelope{from: from, msg: m}:
		ln.sent.Add(1)
		if ln.active != nil {
			if _, ok := ln.active[m.Kind()]; ok {
				ln.activeSent.Add(1)
			}
		}
		if ln.countKinds {
			kind := m.Kind()
			ctr, ok := ln.kindSent.Load(kind)
			if !ok {
				ctr, _ = ln.kindSent.LoadOrStore(kind, new(atomic.Int64))
			}
			ctr.(*atomic.Int64).Add(1)
		}
	case <-stop:
		// Shutting down: drop the message (links are being torn down).
		// Messages already accepted onto inboxes survive a Stop/Start
		// cycle (the channels persist), so the active-kind counters stay
		// balanced across restarts.
	}
}

// Stop halts all node goroutines and waits for them to exit. After Stop
// returns, process states can be inspected safely, and Start may be
// called again to resume.
func (ln *LiveNetwork) Stop() {
	ln.lifecycle.Lock()
	defer ln.lifecycle.Unlock()
	if !ln.running {
		return
	}
	close(ln.stop)
	ln.wg.Wait()
	// Only now is a subsequent Start safe: every goroutine has exited.
	ln.running = false
}

// RunFor starts the network, lets it run for d, then stops it.
func (ln *LiveNetwork) RunFor(d time.Duration) {
	ln.Start()
	time.Sleep(d)
	ln.Stop()
}

// Process returns the process at node id. Only safe to call before Start
// or after Stop.
func (ln *LiveNetwork) Process(id NodeID) Process { return ln.procs[id] }

// Sent returns the number of messages accepted onto inboxes so far. It
// is maintained atomically and safe to read at any time.
func (ln *LiveNetwork) Sent() int64 { return ln.sent.Load() }

// SentByKind returns a copy of the per-kind send counters, nil unless
// the network was built with LiveConfig.CountKinds. Safe to read at any
// time (atomic reads).
func (ln *LiveNetwork) SentByKind() map[string]int64 {
	if !ln.countKinds {
		return nil
	}
	out := make(map[string]int64)
	ln.kindSent.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// FingerprintRecomputes counts per-node state hashes performed by
// Fingerprint — the live counterpart of the simulator's
// Metrics.FingerprintRecomputes figure of merit.
func (ln *LiveNetwork) FingerprintRecomputes() int64 { return ln.recomputes.Load() }

// InvalidateFingerprints discards the incremental fingerprint cache.
// Call it after mutating process state directly (SetState, Corrupt,
// preloads) while the network is stopped, when the process does not
// report state versions; the next Fingerprint re-hashes everything.
func (ln *LiveNetwork) InvalidateFingerprints() {
	ln.probeMu.Lock()
	ln.fpValid = false
	ln.probeMu.Unlock()
}

// nodeFingerprint hashes one process's state. Caller holds the node's
// step lock.
func (ln *LiveNetwork) nodeFingerprint(id NodeID) uint64 {
	ln.recomputes.Add(1)
	if fp, ok := ln.procs[id].(Fingerprinter); ok {
		return fp.Fingerprint()
	}
	return 0
}

// Fingerprint combines all process states for quiescence detection
// (processes that do not implement Fingerprinter contribute a
// constant). It is safe to call concurrently with a running network:
// each node is snapshotted under its per-node step lock, so a probe
// sees only whole atomic steps. Only nodes touched since the last probe
// are re-hashed, and of those only the ones whose StateVersion moved —
// at quiescence every node still ticks, so the per-probe cost is O(n)
// version compares and O(changed) hashes, not a full rehash.
func (ln *LiveNetwork) Fingerprint() uint64 { return ln.probe(nil) }

// probe is Fingerprint's implementation; when versions is non-nil it
// additionally copies out the per-node quiescence-epoch vector (the
// StateVersion observed at each node's last re-hash — current for
// untouched and version-stable nodes — or the node's state hash where
// the process reports no versions).
func (ln *LiveNetwork) probe(versions []uint64) uint64 {
	ln.probeMu.Lock()
	defer ln.probeMu.Unlock()
	if !ln.fpValid {
		var combined uint64
		for id := range ln.procs {
			ln.nodeMu[id].Lock()
			ln.touched[id].Store(false)
			f := ln.nodeFingerprint(id)
			if vs := ln.versioners[id]; vs != nil {
				ln.versions[id] = vs.StateVersion()
			}
			ln.nodeMu[id].Unlock()
			ln.fps[id] = f
			combined ^= mixNode(id, f)
		}
		ln.combined = combined
		ln.fpValid = true
	} else {
		for id := range ln.procs {
			// Lock-free fast path: an untouched node took no step since its
			// last re-hash, so the cached hash is current. A step landing
			// right after the load is caught by the next probe — exactly the
			// snapshot semantics quiescence detection needs.
			if !ln.touched[id].Load() {
				continue
			}
			ln.nodeMu[id].Lock()
			ln.touched[id].Store(false)
			if vs := ln.versioners[id]; vs != nil {
				v := vs.StateVersion()
				if v == ln.versions[id] {
					// Touched but version unmoved: the steps were no-ops
					// (the fixed-point case once the node quiesces).
					ln.nodeMu[id].Unlock()
					continue
				}
				ln.versions[id] = v
			}
			f := ln.nodeFingerprint(id)
			ln.nodeMu[id].Unlock()
			if f != ln.fps[id] {
				ln.combined ^= mixNode(id, ln.fps[id]) ^ mixNode(id, f)
				ln.fps[id] = f
			}
		}
	}
	if versions != nil {
		for id := range ln.procs {
			if ln.versioners[id] != nil {
				versions[id] = ln.versions[id]
			} else {
				versions[id] = ln.fps[id]
			}
		}
	}
	return ln.combined
}

// ProbeSample takes one in-band convergence-detection observation:
// the incremental combined fingerprint, the per-node version vector and
// the active-kind message counters, packaged for detect.Detector. Safe
// to call concurrently with a running network (same locking discipline
// as Fingerprint). The counter ordering is conservative: received is
// loaded before the fingerprint pass and sent after it, so the sampled
// deficit can only overestimate the number of active messages in flight
// — a transiently skewed sample delays a certificate, never forges one.
func (ln *LiveNetwork) ProbeSample() detect.Sample {
	s := detect.Sample{Versions: make([]uint64, len(ln.procs))}
	s.ActiveReceived = ln.activeRecv.Load()
	s.Fingerprint = ln.probe(s.Versions)
	s.ActiveSent = ln.activeSent.Load()
	return s
}

// QuiesceConfig controls RunUntilQuiescent.
type QuiesceConfig struct {
	// ProbeInterval is the fingerprint sampling period (default 2ms).
	ProbeInterval time.Duration
	// StableProbes is the number of consecutive unchanged fingerprints
	// required to declare quiescence (default 25). The covered wall-time
	// window (StableProbes × ProbeInterval) must exceed the protocol's
	// longest internal timer — for the MDST protocol a full jittered
	// search retry period — or a slow phase is mistaken for a fixed point.
	StableProbes int
	// MaxWait bounds the whole call (default 30s).
	MaxWait time.Duration
}

// RunUntilQuiescent starts the network, probes the incremental
// fingerprint until it is unchanged for StableProbes consecutive probes
// or MaxWait elapses, then stops the network. It returns the number of
// probes taken and whether quiescence was observed. Like the
// deterministic runner's detection it is a heuristic — messages still
// buffered in channels are invisible to the probe — so callers verify
// the actual predicate (legitimacy) on the stopped network afterwards.
func (ln *LiveNetwork) RunUntilQuiescent(cfg QuiesceConfig) (probes int, quiesced bool) {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Millisecond
	}
	if cfg.StableProbes <= 0 {
		cfg.StableProbes = 25
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 30 * time.Second
	}
	ln.Start()
	defer ln.Stop()
	deadline := time.Now().Add(cfg.MaxWait)
	ticker := time.NewTicker(cfg.ProbeInterval)
	defer ticker.Stop()
	last := ln.Fingerprint()
	probes = 1
	stable := 0
	for time.Now().Before(deadline) {
		<-ticker.C
		fp := ln.Fingerprint()
		probes++
		if fp == last {
			stable++
			if stable >= cfg.StableProbes {
				return probes, true
			}
		} else {
			last = fp
			stable = 0
		}
	}
	return probes, false
}
