package sim

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"mdst/internal/graph"
)

// liveProc is a min-gossip process with guarded state writes: the
// version moves exactly when min changes, never on no-op receives or
// ticks — the same contract the protocol implementations give the
// incremental fingerprint machinery.
type liveProc struct {
	id      int
	min     int
	version uint64
}

func (p *liveProc) Init(*Context) {}
func (p *liveProc) Tick(ctx *Context) {
	for _, nb := range ctx.Neighbors() {
		ctx.Send(nb, minMsg{p.min})
	}
}
func (p *liveProc) Receive(_ *Context, _ NodeID, m Message) {
	if v := m.(minMsg).val; v < p.min {
		p.min = v
		p.version++
	}
}
func (p *liveProc) Fingerprint() uint64  { return uint64(p.min) + 1 }
func (p *liveProc) StateVersion() uint64 { return p.version }

func newLiveMin(g *graph.Graph, tick time.Duration) *LiveNetwork {
	return NewLiveNetwork(g, func(id NodeID, _ []NodeID) Process {
		return &liveProc{id: id, min: id}
	}, LiveConfig{TickInterval: tick})
}

// Satellite: Fingerprint must be safe to call concurrently with a
// running network (it used to be "only safe after Stop"). Several
// goroutines hammer the probe while the nodes gossip; the race detector
// (make race covers this package) is the real assertion, the final
// fingerprint check proves the probes converge on the true state.
func TestLiveFingerprintConcurrentWithRun(t *testing.T) {
	g := graph.RandomGnp(12, 0.4, rand.New(rand.NewSource(7)))
	ln := newLiveMin(g, 100*time.Microsecond)
	ln.Start()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					ln.Fingerprint()
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	ln.Stop()

	// The busy-spinning probers can starve the node goroutines on a
	// single-CPU machine, so convergence within the hammering phase is
	// not guaranteed — let the network finish undisturbed instead of
	// asserting a wall-clock race.
	if _, quiesced := ln.RunUntilQuiescent(QuiesceConfig{
		ProbeInterval: time.Millisecond, StableProbes: 20, MaxWait: 30 * time.Second,
	}); !quiesced {
		t.Fatal("no quiescence after the concurrent-probing phase")
	}

	// All nodes have converged on min=0; the cached combine must agree
	// with a from-scratch mix of the true final state.
	var want uint64
	for id := 0; id < g.N(); id++ {
		if got := ln.Process(id).(*liveProc).min; got != 0 {
			t.Fatalf("node %d min=%d after run", id, got)
		}
		want ^= mixNode(id, uint64(0)+1)
	}
	if got := ln.Fingerprint(); got != want {
		t.Fatalf("fingerprint %x after concurrent probing, want %x", got, want)
	}
}

// RunUntilQuiescent must detect the min-gossip fixed point, and the
// incremental cache must make detection O(changed) per probe: a second
// quiescence pass over an already-quiesced network — every node still
// ticking and gossiping, versions unmoved — must re-hash nothing at all.
func TestLiveRunUntilQuiescentIncremental(t *testing.T) {
	g := graph.Ring(10)
	ln := newLiveMin(g, 100*time.Microsecond)
	probes, quiesced := ln.RunUntilQuiescent(QuiesceConfig{
		ProbeInterval: time.Millisecond,
		StableProbes:  20,
		MaxWait:       20 * time.Second,
	})
	if !quiesced {
		t.Fatalf("no quiescence after %d probes", probes)
	}
	for id := 0; id < g.N(); id++ {
		if got := ln.Process(id).(*liveProc).min; got != 0 {
			t.Fatalf("quiesced with node %d at min=%d", id, got)
		}
	}

	before := ln.FingerprintRecomputes()
	_, quiesced = ln.RunUntilQuiescent(QuiesceConfig{
		ProbeInterval: time.Millisecond,
		StableProbes:  20,
		MaxWait:       20 * time.Second,
	})
	if !quiesced {
		t.Fatal("no quiescence on the second pass")
	}
	if delta := ln.FingerprintRecomputes() - before; delta != 0 {
		t.Fatalf("quiesced network re-hashed %d nodes (StateVersion fast path broken)", delta)
	}
}

// InvalidateFingerprints is the contract for direct state mutation while
// stopped (corruption, preloads): the cache must be discarded, because
// an untouched node is otherwise never re-hashed.
func TestLiveInvalidateFingerprints(t *testing.T) {
	g := graph.Ring(6)
	ln := newLiveMin(g, 100*time.Microsecond)
	before := ln.Fingerprint()
	ln.Process(3).(*liveProc).min = -7 // direct mutation, invisible to the cache
	ln.InvalidateFingerprints()
	if ln.Fingerprint() == before {
		t.Fatal("fingerprint unchanged after invalidation of a mutated node")
	}
}

// The restart loop (Start–Stop–inspect–Start) must keep the cache
// coherent: quiesce, stop, mutate one node through its own setter-like
// path (version bump), restart, and the network must re-converge and the
// probe must see it.
func TestLiveFingerprintAcrossRestart(t *testing.T) {
	g := graph.Ring(8)
	ln := newLiveMin(g, 100*time.Microsecond)
	if _, quiesced := ln.RunUntilQuiescent(QuiesceConfig{
		ProbeInterval: time.Millisecond, StableProbes: 20, MaxWait: 20 * time.Second,
	}); !quiesced {
		t.Fatal("no initial quiescence")
	}
	fp1 := ln.Fingerprint()
	p := ln.Process(5).(*liveProc)
	p.min = -1
	p.version++
	ln.InvalidateFingerprints()
	if _, quiesced := ln.RunUntilQuiescent(QuiesceConfig{
		ProbeInterval: time.Millisecond, StableProbes: 20, MaxWait: 20 * time.Second,
	}); !quiesced {
		t.Fatal("no re-quiescence after restart")
	}
	for id := 0; id < g.N(); id++ {
		if got := ln.Process(id).(*liveProc).min; got != -1 {
			t.Fatalf("node %d min=%d after re-convergence", id, got)
		}
	}
	if ln.Fingerprint() == fp1 {
		t.Fatal("fingerprint did not move across the -1 re-convergence")
	}
}
