package sim

import (
	"math/rand"
	"testing"

	"mdst/internal/graph"
)

// eventMinProc is the min-flood toy with parking: it implements
// EventProcess, so the event core can skip it once its minimum stopped
// moving.
type eventMinProc struct {
	minProc
	rest   int
	rested bool
}

func (p *eventMinProc) Tick(ctx *Context) {
	p.minProc.Tick(ctx)
	p.rest = p.min
	p.rested = true
}

func (p *eventMinProc) NextWork() int {
	if !p.rested || p.min != p.rest {
		return 1
	}
	return NoWork
}

func (p *eventMinProc) SkipTicks(int) {}

func newEventMinNetwork(g *graph.Graph, seed int64) *Network {
	return NewNetwork(g, func(id NodeID, _ []NodeID) Process {
		return &eventMinProc{minProc: minProc{id: id, min: id}}
	}, seed)
}

func TestRunEventsConvergesMinFlood(t *testing.T) {
	for _, policy := range []EventPolicy{EventPolicySync, EventPolicyAsync, EventPolicyAdversarial} {
		g := graph.Ring(10)
		net := newMinNetwork(g, 1) // no EventProcess: ticked every round
		res := net.RunEvents(EventConfig{Policy: policy, MaxRounds: 200, QuiesceRounds: 3})
		if !res.Converged {
			t.Fatalf("policy %d did not converge", policy)
		}
		checkAllMin(t, net.Process, 10)
		if res.LastChangeRound > 10 {
			t.Fatalf("policy %d took %d rounds to last change", policy, res.LastChangeRound)
		}
	}
}

// Derived round semantics: convergence is declared exactly one
// quiescence window after the last fingerprint change, whether or not
// the intervening rounds were executed.
func TestRunEventsDerivedRoundClock(t *testing.T) {
	g := graph.Ring(16)
	net := newEventMinNetwork(g, 2)
	const window = 50
	res := net.RunEvents(EventConfig{Policy: EventPolicySync, MaxRounds: 1000, QuiesceRounds: window})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for id := 0; id < 16; id++ {
		if p := net.Process(id).(*eventMinProc); p.min != 0 {
			t.Fatalf("node %d: min=%d, want 0", id, p.min)
		}
	}
	if res.Rounds != res.LastChangeRound+window {
		t.Fatalf("rounds %d != lastChange %d + window %d",
			res.Rounds, res.LastChangeRound, window)
	}
	// The frontier win: an always-on sweep executes 16 ticks in each of
	// the ~window tail rounds; the parked network must not.
	tail := net.Metrics().Events - net.Metrics().EventsAtLastChange
	if tail > int64(4*g.N()) {
		t.Fatalf("tail events %d: nodes did not park", tail)
	}
}

// pulseProc exercises timer scheduling with no messages at all: work
// fires every period ticks, and the clock must be fast-forwarded over
// the parked rounds so pulses land on exact period multiples.
type pulseProc struct {
	tick, period int
	pulses       []int
}

func (p *pulseProc) Init(*Context) {}
func (p *pulseProc) Tick(*Context) {
	p.tick++
	if p.tick%p.period == 0 {
		p.pulses = append(p.pulses, p.tick)
	}
}
func (p *pulseProc) Receive(*Context, NodeID, Message) {}
func (p *pulseProc) NextWork() int                     { return p.period - p.tick%p.period }
func (p *pulseProc) SkipTicks(k int)                   { p.tick += k }

func TestRunEventsGapFastForward(t *testing.T) {
	g := graph.Ring(4)
	net := NewNetwork(g, func(NodeID, []NodeID) Process {
		return &pulseProc{period: 5}
	}, 3)
	res := net.RunEvents(EventConfig{Policy: EventPolicySync, MaxRounds: 1000, QuiesceRounds: 7})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// The state never changes, so quiescence completes at round 7 —
	// strictly before the second pulse at round 10, which must therefore
	// never execute.
	if res.Rounds != 7 || res.LastChangeRound != 0 {
		t.Fatalf("rounds=%d lastChange=%d, want 7/0", res.Rounds, res.LastChangeRound)
	}
	for id := 0; id < 4; id++ {
		p := net.Process(id).(*pulseProc)
		if len(p.pulses) != 1 || p.pulses[0] != 5 {
			t.Fatalf("node %d pulses = %v, want [5]", id, p.pulses)
		}
	}
}

func TestRunEventsDeterministicReplay(t *testing.T) {
	g := graph.Grid(3, 5)
	run := func() (uint64, int64, int) {
		net := newEventMinNetwork(g, 99)
		res := net.RunEvents(EventConfig{Policy: EventPolicyAsync, MaxRounds: 500, QuiesceRounds: 10})
		return net.Fingerprint(), net.Metrics().Events, res.Rounds
	}
	fp1, ev1, r1 := run()
	fp2, ev2, r2 := run()
	if fp1 != fp2 || ev1 != ev2 || r1 != r2 {
		t.Fatalf("same seed diverged: fp %d/%d events %d/%d rounds %d/%d",
			fp1, fp2, ev1, ev2, r1, r2)
	}
}

// The Fenwick index behind RandomPendingLink must agree with a naive
// prefix-sum walk for every Add/Select interleaving.
func TestFenwickMatchesNaivePrefixSums(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const cap = 37
	f := newFenwick(cap)
	naive := make([]int, cap)
	total := 0
	for step := 0; step < 5000; step++ {
		if total == 0 || rng.Intn(3) > 0 {
			p := rng.Intn(cap)
			d := 1 + rng.Intn(4)
			if rng.Intn(4) == 0 && naive[p] > 0 {
				if d > naive[p] {
					d = naive[p]
				}
				d = -d
			}
			f.Add(p, d)
			naive[p] += d
			total += d
			continue
		}
		k := rng.Intn(total)
		want, acc := 0, 0
		for p, v := range naive {
			acc += v
			if acc > k {
				want = p
				break
			}
		}
		if got := f.Select(k); got != want {
			t.Fatalf("step %d: Select(%d) = %d, want %d", step, k, got, want)
		}
	}
}

// The indexed max-heap must agree with a naive longest-queue scan
// (lowest index on ties) under arbitrary re-keying.
func TestLinkMaxHeapMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const links = 23
	h := newLinkMaxHeap(links)
	naive := make([]int, links)
	for step := 0; step < 5000; step++ {
		li := rng.Intn(links)
		length := rng.Intn(5) // 0 removes
		h.Update(li, length)
		naive[li] = length
		bestLi, bestLen := -1, 0
		for i, l := range naive {
			if l > bestLen {
				bestLi, bestLen = i, l
			}
		}
		got, ok := h.Max()
		if bestLi < 0 {
			if ok {
				t.Fatalf("step %d: Max=%d on empty heap", step, got)
			}
			continue
		}
		if !ok || got != bestLi {
			t.Fatalf("step %d: Max=%d,%v want %d (lengths %v)", step, got, ok, bestLi, naive)
		}
	}
	h.Reset()
	if _, ok := h.Max(); ok {
		t.Fatal("Max after Reset")
	}
}

// The sync scheduler's steady state must not allocate: the delivery
// snapshot and tick permutation are scratch buffers reused across
// rounds.
func TestSyncRoundAllocsSteadyState(t *testing.T) {
	g := graph.Ring(64)
	net := newMinNetwork(g, 5)
	sched := NewSyncScheduler()
	for i := 0; i < 10; i++ { // warm up link buffers and scratch space
		sched.RunRound(net)
	}
	avg := testing.AllocsPerRun(100, func() { sched.RunRound(net) })
	if avg > 1 {
		t.Fatalf("sync round allocates %.1f objects/round in steady state", avg)
	}
}

func BenchmarkSyncRoundAllocs(b *testing.B) {
	g := graph.Ring(256)
	net := newMinNetwork(g, 5)
	sched := NewSyncScheduler()
	for i := 0; i < 4; i++ {
		sched.RunRound(net)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.RunRound(net)
	}
}

func BenchmarkAdversarialRound(b *testing.B) {
	g := graph.RandomGnp(128, 0.1, rand.New(rand.NewSource(9)))
	net := newMinNetwork(g, 9)
	sched := NewAdversarialScheduler()
	for i := 0; i < 4; i++ {
		sched.RunRound(net)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.RunRound(net)
	}
}

func BenchmarkRunEventsRing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := newEventMinNetwork(graph.Ring(1024), 13)
		res := net.RunEvents(EventConfig{Policy: EventPolicySync, MaxRounds: 1 << 20, QuiesceRounds: 100})
		if !res.Converged {
			b.Fatal("no convergence")
		}
	}
}
