package benchtab

import (
	"strings"
	"testing"

	"mdst/internal/graph"
	"mdst/internal/harness"
)

// tinySweep keeps test runtime low.
func tinySweep() SweepSpec {
	return SweepSpec{Sizes: []int{10}, Seeds: 1, Sched: harness.SchedSync}
}

func tinyFamilies() []graph.Family {
	return []graph.Family{graph.MustFamily("ring+chords"), graph.MustFamily("gnp")}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n1"},
	}
	out := tab.Render()
	for _, want := range []string{"== demo ==", "a    bb", "333  4", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Errorf("csv wrong:\n%s", csv)
	}
}

func TestSortRows(t *testing.T) {
	tab := &Table{Columns: []string{"x"}, Rows: [][]string{{"b"}, {"a"}}}
	tab.SortRows()
	if tab.Rows[0][0] != "a" {
		t.Fatal("not sorted")
	}
}

func TestE1AllWithinBound(t *testing.T) {
	tab := E1DegreeQuality(tinySweep(), tinyFamilies())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("Theorem 2 violated in row %v", row)
		}
	}
}

func TestE2HasPositiveRounds(t *testing.T) {
	tab := E2Convergence(tinySweep(), tinyFamilies())
	for _, row := range tab.Rows {
		if row[3] == "0" {
			t.Fatalf("zero rounds in %v", row)
		}
	}
}

func TestE3RatioBounded(t *testing.T) {
	tab := E3Memory(tinySweep(), tinyFamilies())
	for _, row := range tab.Rows {
		// stateBits present and nonzero.
		if row[3] == "0" {
			t.Fatalf("no state bits in %v", row)
		}
	}
}

func TestE4MessageWords(t *testing.T) {
	tab := E4MessageLength(tinySweep(), tinyFamilies())
	for _, row := range tab.Rows {
		if row[2] == "0" {
			t.Fatalf("no messages in %v", row)
		}
	}
}

func TestE5FaultRecoveryTable(t *testing.T) {
	tab := E5FaultRecovery(12, 1, harness.SchedSync)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] != "true" {
			t.Fatalf("recovery failed: %v", row)
		}
	}
}

func TestE6BaselinesOrdering(t *testing.T) {
	tab := E6Baselines(tinySweep(), tinyFamilies())
	for _, row := range tab.Rows {
		// selfstab (col 6) never worse than worstBFS (col 4).
		if row[6] > row[4] && len(row[6]) >= len(row[4]) {
			t.Fatalf("selfstab worse than worst tree: %v", row)
		}
	}
}

func TestE7AblationsLegitimate(t *testing.T) {
	tab := E7Ablations(10, 1)
	if len(tab.Rows) != len(Ablations()) {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[4] != "true" {
			t.Fatalf("ablation not legitimate: %v", row)
		}
	}
}

func TestE12SearchTrafficPairedRows(t *testing.T) {
	tab := E12SearchTraffic("gnp", []int{12}, 2, "sync")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d, want off+on pair", len(tab.Rows))
	}
	off, on := tab.Rows[0], tab.Rows[1]
	if off[1] != "off" || on[1] != "on" {
		t.Fatalf("suppress labels %q/%q", off[1], on[1])
	}
	// Outcome equivalence: quality columns agree between the pair.
	for _, c := range []int{0, 7, 8} { // n, legitimate, within
		if off[c] != on[c] {
			t.Fatalf("column %d diverged: %q vs %q", c, off[c], on[c])
		}
	}
	if off[7] != "true" || off[8] != "true" {
		t.Fatalf("paired rows not legitimate/within bound: %v %v", off, on)
	}
	if off[5] != "0" || on[5] == "0" {
		t.Fatalf("suppressed counters off=%q on=%q", off[5], on[5])
	}
}

func TestAllSuiteSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	tables := All(tinySweep(), tinyFamilies())
	if len(tables) != 12 {
		t.Fatalf("tables=%d, want 12", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("empty table %q", tab.Title)
		}
		if tab.Render() == "" || tab.CSV() == "" {
			t.Fatalf("render failed for %q", tab.Title)
		}
	}
}
