package benchtab

import (
	"strings"
	"testing"

	"mdst/internal/harness"
)

func TestE11ChoreographyTable(t *testing.T) {
	tab := E11Choreography([]int{12}, 2, harness.SchedSync)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (one per variant)", len(tab.Rows))
	}
	var coreRow, litRow []string
	for _, row := range tab.Rows {
		switch row[0] {
		case string(harness.VariantCore):
			coreRow = row
		case string(harness.VariantLiteral):
			litRow = row
		}
	}
	if coreRow == nil || litRow == nil {
		t.Fatalf("missing variant rows: %v", tab.Rows)
	}
	// Both implementations must reach legitimacy.
	if coreRow[len(coreRow)-1] != "true" || litRow[len(litRow)-1] != "true" {
		t.Fatalf("legitimacy failed: core=%v literal=%v", coreRow, litRow)
	}
	if !strings.Contains(tab.Render(), "E11") {
		t.Fatal("render misses the title")
	}
}
