package benchtab

import (
	"fmt"
	"math/rand"

	"mdst/internal/graph"
	"mdst/internal/harness"
)

// E11Choreography compares the two protocol implementations — the
// primary S3 ordered-chain exchange (internal/core) and the literal
// Remove/Back/Reverse choreography of the paper's Figures 1-2
// (internal/paperproto) — on identical workloads, seeds and schedulers.
//
// The expectation (DESIGN.md S3, paperproto package comment): both
// converge to legitimate configurations within the Theorem 2 bound; the
// literal variant transiently breaks the spanning tree mid-exchange
// (brokenRounds > 0 is legal for it, never for core) and pays extra
// repair churn, which this table quantifies.
func E11Choreography(sizes []int, seeds int, sched harness.SchedulerKind) *Table {
	t := &Table{
		Title: "E11: exchange choreography ablation — S3 chain (core) vs literal Remove/Back (paper Figs. 1-2)",
		Columns: []string{"variant", "n", "rounds(avg)", "messages(avg)",
			"exchanges", "aborts", "brokenRounds", "deg(T)", "legitimate"},
		Notes: []string{
			"identical graphs/seeds per cell; brokenRounds counts rounds without a valid spanning tree after the first valid one",
			"core's exchange keeps the tree valid at every atomic step; its brokenRounds are late formation churn only,",
			"while the literal choreography also breaks the tree mid-exchange (see the closure tests for the isolated comparison)",
		},
	}
	fam := graph.MustFamily("gnp")
	for _, variant := range []harness.Variant{harness.VariantCore, harness.VariantLiteral} {
		for _, n := range sizes {
			sumRounds, sumMsgs := 0.0, 0.0
			exch, aborts, brokenSum := 0, 0, 0
			worstDeg := 0
			allLegit := true
			for s := 0; s < seeds; s++ {
				seed := int64(n*11000 + s)
				rng := rand.New(rand.NewSource(seed))
				g := fam.Build(n, rng)
				res := harness.Run(harness.RunSpec{
					Graph: g, Variant: variant, Scheduler: sched,
					Start: harness.StartCorrupt, Seed: seed, TrackSafety: true,
				})
				sumRounds += float64(res.LastChange)
				sumMsgs += float64(res.TotalMessages)
				exch += res.Exchanges
				aborts += res.Aborts
				brokenSum += res.BrokenRounds
				if res.Tree != nil && res.Tree.MaxDegree() > worstDeg {
					worstDeg = res.Tree.MaxDegree()
				}
				if !res.Legit.OK() {
					allLegit = false
				}
			}
			t.Rows = append(t.Rows, []string{string(variant), itoa(n),
				ftoa(sumRounds / float64(seeds)),
				fmt.Sprintf("%.0f", sumMsgs/float64(seeds)),
				itoa(exch), itoa(aborts), itoa(brokenSum),
				itoa(worstDeg), btos(allLegit)})
		}
	}
	return t
}
