package benchtab

import (
	"fmt"

	"mdst/internal/harness"
	"mdst/internal/scenario"
)

// E11Choreography compares the two protocol implementations — the
// primary S3 ordered-chain exchange (internal/core) and the literal
// Remove/Back/Reverse choreography of the paper's Figures 1-2
// (internal/paperproto) — on identical workloads, seeds and schedulers.
// Both variants are axes of ONE scenario matrix (sharded across CPUs);
// the engine's instance-derived seeding guarantees the same graphs per
// cell, and Spec.TrackSafety surfaces the per-run broken-round counts.
//
// The expectation (DESIGN.md S3, paperproto package comment): both
// converge to legitimate configurations within the Theorem 2 bound; the
// literal variant transiently breaks the spanning tree mid-exchange
// (brokenRounds > 0 is legal for it, never for core) and pays extra
// repair churn, which this table quantifies.
func E11Choreography(sizes []int, seeds int, sched harness.SchedulerKind) *Table {
	t := &Table{
		Title: "E11: exchange choreography ablation — S3 chain (core) vs literal Remove/Back (paper Figs. 1-2)",
		Columns: []string{"variant", "n", "rounds(avg)", "messages(avg)",
			"exchanges", "aborts", "brokenRounds", "deg(T)", "legitimate"},
		Notes: []string{
			"identical graphs/seeds per cell; brokenRounds counts rounds without a valid spanning tree after the first valid one",
			"core's exchange keeps the tree valid at every atomic step; its brokenRounds are late formation churn only,",
			"while the literal choreography also breaks the tree mid-exchange (see the closure tests for the isolated comparison)",
		},
	}
	m := mustExecute(scenario.Spec{
		Families:     []string{"gnp"},
		Sizes:        sizes,
		Schedulers:   []harness.SchedulerKind{sched},
		Starts:       []harness.StartMode{harness.StartCorrupt},
		Variants:     []harness.Variant{harness.VariantCore, harness.VariantLiteral},
		SeedsPerCell: seeds,
		BaseSeed:     11000,
		TrackSafety:  true,
	})
	// Cells expand in (size, variant) order; the table historically lists
	// all core rows before all literal rows, so group by variant.
	for _, variant := range []string{string(harness.VariantCore), string(harness.VariantLiteral)} {
		for _, c := range m.Cells {
			if c.Variant != variant {
				continue
			}
			exch, aborts, brokenSum := 0, 0, 0
			for _, rr := range m.Runs {
				if rr.Cell != c.Cell {
					continue
				}
				exch += rr.Exchanges
				aborts += rr.Aborts
				brokenSum += rr.BrokenRounds
			}
			deg := c.MaxDegree
			if deg < 0 {
				deg = 0
			}
			t.Rows = append(t.Rows, []string{c.Variant, itoa(c.N),
				ftoa(c.RoundsAvg),
				fmt.Sprintf("%.0f", c.MessagesAvg),
				itoa(exch), itoa(aborts), itoa(brokenSum),
				itoa(deg), btos(c.Legitimate)})
		}
	}
	return t
}
