package benchtab

import (
	"strconv"
	"strings"
	"testing"

	"mdst/internal/harness"
)

func TestSeriesConvergenceShape(t *testing.T) {
	s, res := SeriesConvergence("gnp", 16, 3, harness.SchedSync)
	if !res.Legit.OK() {
		t.Fatalf("run failed: %+v", res.Legit)
	}
	if s.Len() < 10 {
		t.Fatalf("series too short: %d", s.Len())
	}
	// Roots must end at 1 (single spanning tree).
	if s.Last("roots") != 1 {
		t.Fatalf("final roots=%v", s.Last("roots"))
	}
	// Final degree matches the run result.
	if int(s.Last("treeDeg")) != res.Tree.MaxDegree() {
		t.Fatalf("final treeDeg %v vs %d", s.Last("treeDeg"), res.Tree.MaxDegree())
	}
	// dmax agreement ends at n.
	if s.Last("dmaxAgree") != 16 {
		t.Fatalf("final dmaxAgree=%v", s.Last("dmaxAgree"))
	}
	if !strings.Contains(s.Name, "convergence-gnp") {
		t.Fatalf("name %q", s.Name)
	}
}

func TestSeriesRecoveryHealsDegree(t *testing.T) {
	s, res := SeriesRecovery("geometric", 20, 5, 4, harness.SchedSync)
	if !res.Legit.OK() {
		t.Fatalf("recovery failed: %+v", res.Legit)
	}
	if s.Last("roots") != 1 {
		t.Fatalf("roots=%v", s.Last("roots"))
	}
	// CSV export is well-formed: header + rows with 6 columns.
	lines := strings.Split(strings.TrimSpace(s.CSV()), "\n")
	if len(lines) != s.Len()+1 {
		t.Fatalf("csv lines %d vs %d rows", len(lines), s.Len())
	}
	for _, l := range lines {
		if len(strings.Split(l, ",")) != 6 {
			t.Fatalf("bad csv row %q", l)
		}
	}
}

func TestE2FitRanksReasonably(t *testing.T) {
	tab := E2Fit("ring+chords", []int{12, 16, 24, 32}, 1, harness.SchedSync)
	if len(tab.Rows) == 0 {
		t.Fatal("no fits")
	}
	// Every row parses; the top fit's exponent is positive (cost grows).
	exp, err := strconv.ParseFloat(tab.Rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if exp <= 0 {
		t.Fatalf("nonpositive growth exponent %v", exp)
	}
	// The paper's worst-case model must fit with exponent < 1 (measured
	// growth is far below the bound).
	for _, row := range tab.Rows {
		if row[0] == "m n^2 log n" {
			e, _ := strconv.ParseFloat(row[1], 64)
			if e >= 1 {
				t.Fatalf("measured growth at/above the worst-case bound: %v", e)
			}
		}
	}
}

func TestE8TargetedFaults(t *testing.T) {
	tab := E8TargetedFaults("gnp", 14, 1, harness.SchedSync)
	if len(tab.Rows) != len(TargetRoles()) {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[4] != "true" {
			t.Fatalf("role %s did not recover: %v", row[0], row)
		}
	}
}

func TestE9LossyLinks(t *testing.T) {
	tab := E9LossyLinks("gnp", 14, 1)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// Safety must hold at every loss rate: a valid min-rooted tree.
		if row[4] != "true" {
			t.Fatalf("loss rate %s broke the tree: %v", row[0], row)
		}
	}
	// The zero-loss baseline must be fully legitimate with zero drops.
	if tab.Rows[0][3] != "0" || tab.Rows[0][5] != "true" {
		t.Fatalf("baseline wrong: %v", tab.Rows[0])
	}
}

func TestE10Churn(t *testing.T) {
	tab := E10Churn("gnp", 14, 2, harness.SchedSync)
	if len(tab.Rows) != len(harness.ChurnOps()) {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] != "true" {
			t.Fatalf("churn op %s failed: %v", row[0], row)
		}
	}
}

func TestSeriesConvergenceLiteralVariant(t *testing.T) {
	s, res := SeriesConvergenceVariant("gnp", 12, 1, harness.SchedSync, harness.VariantLiteral)
	if !res.Converged || !res.Legit.OK() {
		t.Fatalf("literal series run failed: %+v", res.Legit)
	}
	if s.Len() < 2 {
		t.Fatalf("series too short: %d", s.Len())
	}
	if s.Name != "convergence-literal-gnp-n12" {
		t.Fatalf("series name %q", s.Name)
	}
}
