package benchtab

import (
	"fmt"

	"mdst/internal/harness"
	"mdst/internal/scenario"
)

// E10 (extension; the paper's §6 open problem): topology churn. A
// legitimate configuration is migrated onto a changed graph (edge
// removed or added) with all node state carried over, and the protocol
// re-stabilizes on the new topology. Removing a NON-tree edge should be
// almost free (the tree is untouched; at most the fixed point shifts);
// removing a TREE edge orphans a subtree that must re-attach; adding an
// edge may enable a better tree and re-trigger reduction.
//
// The stabilize→mutate→migrate→re-run cycle is scenario.Churn, the
// shared Executor fault model; this file only renders the table.

// E10Churn measures re-stabilization per churn operation.
func E10Churn(famName string, n, seeds int, sched harness.SchedulerKind) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E10: topology churn on %s n=%d — re-stabilization by operation (extension)", famName, n),
		Columns: []string{"operation", "rounds(avg)", "rounds(max)", "legitimate"},
		Notes: []string{
			"a legitimate configuration is carried onto the changed graph and re-run (super-stabilization probe)",
			"removals preserve connectivity; rounds = last state change on the new topology",
		},
	}
	ops := harness.ChurnOps()
	faults := make([]scenario.FaultModel, len(ops))
	for i, op := range ops {
		faults[i] = scenario.Churn{Op: op}
	}
	m := mustExecute(scenario.Spec{
		Families:     []string{famName},
		Sizes:        []int{n},
		Schedulers:   []harness.SchedulerKind{sched},
		Starts:       []harness.StartMode{harness.StartLegitimate},
		Faults:       faults,
		SeedsPerCell: seeds,
		BaseSeed:     int64(n * 15000),
		MaxRounds:    200*n + 20000,
	})
	for i, c := range m.Cells {
		t.Rows = append(t.Rows, []string{string(ops[i]), ftoa(c.RoundsAvg),
			itoa(c.RoundsMax), btos(c.Legitimate)})
	}
	return t
}
