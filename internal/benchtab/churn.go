package benchtab

import (
	"fmt"
	"math/rand"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/sim"
)

// E10 (extension; the paper's §6 open problem): topology churn. A
// legitimate configuration is migrated onto a changed graph (edge
// removed or added) with all node state carried over, and the protocol
// re-stabilizes on the new topology. Removing a NON-tree edge should be
// almost free (the tree is untouched; at most the fixed point shifts);
// removing a TREE edge orphans a subtree that must re-attach; adding an
// edge may enable a better tree and re-trigger reduction.

// E10Churn measures re-stabilization per churn operation.
func E10Churn(famName string, n, seeds int, sched harness.SchedulerKind) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E10: topology churn on %s n=%d — re-stabilization by operation (extension)", famName, n),
		Columns: []string{"operation", "rounds(avg)", "rounds(max)", "legitimate"},
		Notes: []string{
			"a legitimate configuration is carried onto the changed graph and re-run (super-stabilization probe)",
			"removals preserve connectivity; rounds = last state change on the new topology",
		},
	}
	fam := graph.MustFamily(famName)
	for _, op := range harness.ChurnOps() {
		sum, worst, runs := 0, 0, 0
		allLegit := true
		for s := 0; s < seeds; s++ {
			seed := int64(n*15000 + s)
			rng := rand.New(rand.NewSource(seed))
			g := fam.Build(n, rng)
			cfg := core.DefaultConfig(g.N())

			// Stabilize on the original topology.
			net := core.BuildNetwork(g, cfg, seed)
			if err := harness.Preload(g, core.NodesOf(net), cfg); err != nil {
				allLegit = false
				continue
			}
			tree, err := core.ExtractTree(g, core.NodesOf(net))
			if err != nil {
				allLegit = false
				continue
			}

			// Apply the churn operation and migrate.
			newG, _, ok := harness.ApplyChurn(g, tree, op, rng)
			if !ok {
				continue // no applicable edge on this instance
			}
			newNet, err := harness.Migrate(net, newG, cfg, seed+1)
			if err != nil {
				allLegit = false
				continue
			}
			res := newNet.Run(sim.RunConfig{
				Scheduler:     harness.NewScheduler(sched),
				MaxRounds:     200*n + 20000,
				QuiesceRounds: 2*n + 40,
				ActiveKinds:   core.ReductionKinds(),
			})
			runs++
			sum += res.LastChangeRound
			if res.LastChangeRound > worst {
				worst = res.LastChangeRound
			}
			if !core.CheckLegitimacy(newG, core.NodesOf(newNet)).OK() {
				allLegit = false
			}
		}
		avg := 0.0
		if runs > 0 {
			avg = float64(sum) / float64(runs)
		}
		t.Rows = append(t.Rows, []string{string(op), ftoa(avg), itoa(worst), btos(allLegit)})
	}
	return t
}
