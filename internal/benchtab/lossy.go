package benchtab

import (
	"fmt"
	"math/rand"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/sim"
)

// E9 (extension beyond the paper): lossy links. The paper assumes
// reliable FIFO channels; this experiment drops each delivery with a
// fixed probability. The tree machinery is naturally loss-tolerant
// (InfoMsg is periodic, a lost Reverse hop aborts a chain into a valid
// tree), so the spanning tree always forms; the OPTIMIZATION however
// relies on Search tokens surviving up to 2n consecutive hops, whose
// probability decays as (1-p)^{2n} — at high loss the tree is valid but
// can stall short of the Fürer–Raghavachari fixed point. The table
// separates the two: treeOK (safety) versus fixedPoint (optimality).

// E9LossyLinks sweeps drop rates on one family.
func E9LossyLinks(famName string, n, seeds int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E9: lossy links on %s n=%d — rounds vs drop rate (extension)", famName, n),
		Columns: []string{"dropRate", "rounds(avg)", "rounds(max)", "dropped(avg)", "treeOK", "fixedPoint"},
		Notes: []string{
			"the paper's model assumes reliable links; with loss the tree still forms (safety)",
			"but Search tokens die with prob 1-(1-p)^{2n}, so optimality can stall at high loss",
		},
	}
	fam := graph.MustFamily(famName)
	for _, rate := range []float64{0, 0.01, 0.05, 0.1, 0.25} {
		sum, worst := 0, 0
		var droppedSum int64
		allTree, allFixed := true, true
		for s := 0; s < seeds; s++ {
			seed := int64(n*13000 + s)
			rng := rand.New(rand.NewSource(seed))
			g := fam.Build(n, rng)
			cfg := core.DefaultConfig(g.N())
			net := core.BuildNetwork(g, cfg, seed)
			net.SetDropRate(rate)
			nodes := core.NodesOf(net)
			for _, nd := range nodes {
				nd.Corrupt(rng, g.N())
			}
			res := net.Run(sim.RunConfig{
				Scheduler:     harness.NewScheduler(harness.SchedSync),
				MaxRounds:     400*g.N() + 40000,
				QuiesceRounds: 2*g.N() + 40,
				ActiveKinds:   core.ReductionKinds(),
			})
			sum += res.LastChangeRound
			if res.LastChangeRound > worst {
				worst = res.LastChangeRound
			}
			droppedSum += net.Dropped()
			leg := core.CheckLegitimacy(g, nodes)
			if !leg.TreeValid || !leg.RootIsMin {
				allTree = false
			}
			if !leg.FixedPoint {
				allFixed = false
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", rate),
			ftoa(float64(sum) / float64(seeds)),
			itoa(worst),
			fmt.Sprintf("%.0f", float64(droppedSum)/float64(seeds)),
			btos(allTree),
			btos(allFixed),
		})
	}
	return t
}
