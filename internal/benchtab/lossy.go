package benchtab

import (
	"fmt"

	"mdst/internal/harness"
	"mdst/internal/scenario"
)

// E9 (extension beyond the paper): lossy links. The paper assumes
// reliable FIFO channels; this experiment drops each delivery with a
// fixed probability. The tree machinery is naturally loss-tolerant
// (InfoMsg is periodic, a lost Reverse hop aborts a chain into a valid
// tree), so the spanning tree always forms; the OPTIMIZATION however
// relies on Search tokens surviving up to 2n consecutive hops, whose
// probability decays as (1-p)^{2n} — at high loss the tree is valid but
// can stall short of the Fürer–Raghavachari fixed point. The table
// separates the two: treeOK (safety) versus fixedPoint (optimality).
//
// The sweep executes through the scenario engine: one cell per drop
// rate, runs sharded across all CPUs, with scenario.Lossy as the shared
// fault model.

// E9LossyLinks sweeps drop rates on one family.
func E9LossyLinks(famName string, n, seeds int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E9: lossy links on %s n=%d — rounds vs drop rate (extension)", famName, n),
		Columns: []string{"dropRate", "rounds(avg)", "rounds(max)", "dropped(avg)", "treeOK", "fixedPoint"},
		Notes: []string{
			"the paper's model assumes reliable links; with loss the tree still forms (safety)",
			"but Search tokens die with prob 1-(1-p)^{2n}, so optimality can stall at high loss",
		},
	}
	rates := []float64{0, 0.01, 0.05, 0.1, 0.25}
	faults := make([]scenario.FaultModel, len(rates))
	for i, rate := range rates {
		faults[i] = scenario.Lossy{Rate: rate}
	}
	m := mustExecute(scenario.Spec{
		Families:     []string{famName},
		Sizes:        []int{n},
		Schedulers:   []harness.SchedulerKind{harness.SchedSync},
		Starts:       []harness.StartMode{harness.StartCorrupt},
		Faults:       faults,
		SeedsPerCell: seeds,
		BaseSeed:     int64(n * 13000),
		MaxRounds:    400*n + 40000,
	})
	for i, c := range m.Cells {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", rates[i]),
			ftoa(c.RoundsAvg),
			itoa(c.RoundsMax),
			fmt.Sprintf("%.0f", c.DroppedAvg),
			btos(c.TreeOK),
			btos(c.FixedPoint),
		})
	}
	return t
}
