package benchtab

import (
	"fmt"
	"math/rand"

	"mdst/internal/analysis"
	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/trace"
)

// Figure-series generators: per-round traces (the data behind the plots
// that a paper with an empirical section would show), plus the
// complexity-model fit table that formalizes E2's "shape check".

// SeriesConvergence traces one stabilization run from a corrupted
// configuration: tree degree, root count, dmax agreement and traffic per
// round (figure F-conv).
func SeriesConvergence(famName string, n int, seed int64, sched harness.SchedulerKind) (*trace.Series, harness.Result) {
	return SeriesConvergenceVariant(famName, n, seed, sched, harness.VariantCore)
}

// SeriesConvergenceVariant is SeriesConvergence for a chosen protocol
// implementation — the time-resolved view of ablation E11.
func SeriesConvergenceVariant(famName string, n int, seed int64, sched harness.SchedulerKind, variant harness.Variant) (*trace.Series, harness.Result) {
	fam := graph.MustFamily(famName)
	rng := rand.New(rand.NewSource(seed))
	g := fam.Build(n, rng)
	res, s := runTracedSeries(g, harness.RunSpec{
		Graph: g, Variant: variant, Scheduler: sched, Start: harness.StartCorrupt, Seed: seed,
	})
	if variant == harness.VariantLiteral {
		s.Name = fmt.Sprintf("convergence-literal-%s-n%d", famName, n)
	} else {
		s.Name = fmt.Sprintf("convergence-%s-n%d", famName, n)
	}
	return s, res
}

// SeriesRecovery traces a fault-recovery run: a legitimate configuration
// with `faults` corrupted nodes re-stabilizing (figure F-recovery).
func SeriesRecovery(famName string, n, faults int, seed int64, sched harness.SchedulerKind) (*trace.Series, harness.Result) {
	fam := graph.MustFamily(famName)
	rng := rand.New(rand.NewSource(seed))
	g := fam.Build(n, rng)
	res, s := runTracedSeries(g, harness.RunSpec{
		Graph: g, Scheduler: sched, Start: harness.StartLegitimate,
		CorruptNodes: faults, Seed: seed,
	})
	s.Name = fmt.Sprintf("recovery-%s-n%d-f%d", famName, n, faults)
	return s, res
}

func runTracedSeries(g *graph.Graph, spec harness.RunSpec) (harness.Result, *trace.Series) {
	every := 1
	if g.N() > 32 {
		every = 4
	}
	if spec.Variant == harness.VariantLiteral {
		return harness.RunTracedLiteral(spec, every)
	}
	return harness.RunTraced(spec, every)
}

// E2Fit regresses the measured convergence rounds of a family against
// the standard complexity models and reports the ranked fits — the
// formal version of E2's ratio column. Sizes should span at least a
// factor of 4 for a meaningful exponent.
func E2Fit(famName string, sizes []int, seeds int, sched harness.SchedulerKind) *Table {
	fam := graph.MustFamily(famName)
	var pts []analysis.Point
	for _, n := range sizes {
		for s := 0; s < seeds; s++ {
			seed := int64(n*9000 + s)
			rng := rand.New(rand.NewSource(seed))
			g := fam.Build(n, rng)
			res := harness.MustRun(harness.RunSpec{
				Graph: g, Scheduler: sched, Start: harness.StartCorrupt, Seed: seed,
			})
			if res.LastChange > 0 {
				pts = append(pts, analysis.Point{N: g.N(), M: g.M(), Cost: float64(res.LastChange)})
			}
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("E2-fit: measured rounds vs complexity models (%s)", famName),
		Columns: []string{"model", "exponent", "scale", "R2"},
		Notes: []string{
			"log-log regression of rounds against each model; exponent 1 = matching growth",
			"the paper's O(m n^2 log n) is an upper bound: exponents well below 1 are expected",
		},
	}
	for _, fit := range analysis.BestFit(pts, analysis.StandardModels()) {
		t.Rows = append(t.Rows, []string{
			fit.Model.Name,
			fmt.Sprintf("%.3f", fit.Exponent),
			fmt.Sprintf("%.3g", fit.Scale),
			fmt.Sprintf("%.3f", fit.R2),
		})
	}
	return t
}
