package benchtab

import (
	"fmt"
	"math/rand"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// E8 (extension beyond the paper): targeted transient faults. The
// paper's Definition 1 treats all corruptions alike; operationally it
// matters WHERE the fault hits. This experiment corrupts specific roles
// — the root, the deepest leaf, a maximum-degree node, or a random node
// — and compares recovery cost, quantifying the intuition that
// root-adjacent corruption is the most expensive (it can re-trigger the
// global election).

// TargetRole names a fault location.
type TargetRole string

// Fault locations.
const (
	RoleRoot    TargetRole = "root"
	RoleLeaf    TargetRole = "deepest-leaf"
	RoleMaxDeg  TargetRole = "max-degree"
	RoleRandom  TargetRole = "random"
	RoleParents TargetRole = "root+children"
)

// TargetRoles returns the roles in display order.
func TargetRoles() []TargetRole {
	return []TargetRole{RoleRoot, RoleLeaf, RoleMaxDeg, RoleRandom, RoleParents}
}

// pickTargets resolves a role to concrete node IDs on the preloaded
// fixed-point tree.
func pickTargets(tree *spanning.Tree, role TargetRole, rng *rand.Rand) []int {
	switch role {
	case RoleRoot:
		return []int{tree.Root()}
	case RoleLeaf:
		deepest, depth := 0, -1
		for v := 0; v < tree.Graph().N(); v++ {
			if d := tree.Depth(v); d > depth {
				deepest, depth = v, d
			}
		}
		return []int{deepest}
	case RoleMaxDeg:
		k := tree.MaxDegree()
		for v := 0; v < tree.Graph().N(); v++ {
			if tree.Degree(v) == k {
				return []int{v}
			}
		}
		return []int{0}
	case RoleParents:
		out := []int{tree.Root()}
		out = append(out, tree.Children(tree.Root())...)
		return out
	default:
		return []int{rng.Intn(tree.Graph().N())}
	}
}

// E8TargetedFaults measures recovery cost per fault role on one family.
func E8TargetedFaults(famName string, n, seeds int, sched harness.SchedulerKind) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E8: targeted faults on %s n=%d — recovery rounds by role (extension)", famName, n),
		Columns: []string{"role", "nodes", "rounds(avg)", "rounds(max)", "legitimate"},
		Notes: []string{
			"each run corrupts only the named role's node(s) in a legitimate configuration",
			"extension beyond the paper: Definition 1 is location-oblivious; operations care",
		},
	}
	fam := graph.MustFamily(famName)
	for _, role := range TargetRoles() {
		sum, worst, count := 0, 0, 0
		allLegit := true
		for s := 0; s < seeds; s++ {
			seed := int64(n*11000 + s)
			rng := rand.New(rand.NewSource(seed))
			g := fam.Build(n, rng)
			cfg := core.DefaultConfig(g.N())
			net := core.BuildNetwork(g, cfg, seed)
			nodes := core.NodesOf(net)
			if err := harness.Preload(g, nodes, cfg); err != nil {
				allLegit = false
				continue
			}
			tree, err := core.ExtractTree(g, nodes)
			if err != nil {
				allLegit = false
				continue
			}
			targets := pickTargets(tree, role, rng)
			for _, v := range targets {
				nodes[v].Corrupt(rng, g.N())
			}
			count = len(targets)
			run := runPrepared(net, g, sched)
			sum += run.LastChangeRound
			if run.LastChangeRound > worst {
				worst = run.LastChangeRound
			}
			if !core.CheckLegitimacy(g, nodes).OK() {
				allLegit = false
			}
		}
		t.Rows = append(t.Rows, []string{string(role), itoa(count),
			ftoa(float64(sum) / float64(seeds)), itoa(worst), btos(allLegit)})
	}
	return t
}

// runPrepared runs an already-prepared network to quiescence.
func runPrepared(net *sim.Network, g *graph.Graph, sched harness.SchedulerKind) sim.RunResult {
	return net.Run(sim.RunConfig{
		Scheduler:     harness.NewScheduler(sched),
		MaxRounds:     200*g.N() + 20000,
		QuiesceRounds: 2*g.N() + 40,
		ActiveKinds:   core.ReductionKinds(),
	})
}
