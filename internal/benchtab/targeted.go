package benchtab

import (
	"fmt"

	"mdst/internal/harness"
	"mdst/internal/scenario"
)

// E8 (extension beyond the paper): targeted transient faults. The
// paper's Definition 1 treats all corruptions alike; operationally it
// matters WHERE the fault hits. This experiment corrupts specific roles
// — the root, the deepest leaf, a maximum-degree node, or a random node
// — and compares recovery cost, quantifying the intuition that
// root-adjacent corruption is the most expensive (it can re-trigger the
// global election).
//
// The role machinery lives in internal/scenario (scenario.Targeted /
// scenario.PickTargets) and is shared with the matrix CLI; this file
// only renders the table. The aliases below preserve this package's
// historical API.

// TargetRole names a fault location (moved to internal/scenario).
type TargetRole = scenario.TargetRole

// Fault locations.
const (
	RoleRoot    = scenario.RoleRoot
	RoleLeaf    = scenario.RoleLeaf
	RoleMaxDeg  = scenario.RoleMaxDeg
	RoleRandom  = scenario.RoleRandom
	RoleParents = scenario.RoleParents
)

// TargetRoles returns the roles in display order.
func TargetRoles() []TargetRole { return scenario.TargetRoles() }

// E8TargetedFaults measures recovery cost per fault role on one family.
func E8TargetedFaults(famName string, n, seeds int, sched harness.SchedulerKind) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E8: targeted faults on %s n=%d — recovery rounds by role (extension)", famName, n),
		Columns: []string{"role", "nodes", "rounds(avg)", "rounds(max)", "legitimate"},
		Notes: []string{
			"each run corrupts only the named role's node(s) in a legitimate configuration",
			"extension beyond the paper: Definition 1 is location-oblivious; operations care",
		},
	}
	roles := TargetRoles()
	faults := make([]scenario.FaultModel, len(roles))
	for i, role := range roles {
		faults[i] = scenario.Targeted{Role: role}
	}
	m := mustExecute(scenario.Spec{
		Families:     []string{famName},
		Sizes:        []int{n},
		Schedulers:   []harness.SchedulerKind{sched},
		Starts:       []harness.StartMode{harness.StartLegitimate},
		Faults:       faults,
		SeedsPerCell: seeds,
		BaseSeed:     int64(n * 11000),
	})
	for i, c := range m.Cells {
		t.Rows = append(t.Rows, []string{string(roles[i]), itoa(c.Corrupted),
			ftoa(c.RoundsAvg), itoa(c.RoundsMax), btos(c.Legitimate)})
	}
	return t
}
