package benchtab

import (
	"fmt"

	"mdst/internal/harness"
	"mdst/internal/scenario"
)

// E12SearchTraffic measures the search-traffic suppression hot path
// (core.Config.SuppressSearches): the same drawn instances (the
// suppression axis is excluded from run seeds) with duplicate-token
// pruning off and on, per family × size. The quality columns must agree
// between the paired rows — suppression is outcome-equivalent — while
// the traffic columns show what the pruning saves; the committed large-n
// version of this comparison lives in BENCH_scale.json's suppression
// section.
func E12SearchTraffic(famName string, sizes []int, seeds int, sched harness.SchedulerKind) *Table {
	t := &Table{
		Title: fmt.Sprintf("E12: search-traffic suppression on %s — paired on/off message volume", famName),
		Columns: []string{"n", "suppress", "rounds(avg)", "messages(avg)",
			"searchMsgs(avg)", "suppressed(avg)", "deg(T)", "legitimate", "within Δ*+1"},
		Notes: []string{
			"paired instances: the suppression axis draws identical graphs and corruptions",
			"suppression defers redundant Search tokens; legitimacy and the degree bracket must not move",
			"suppressed runs quiesce over a retry-period-aware (longer) stability window, so at small n",
			"the extra gossip rounds can outweigh the Search savings; the committed large-n comparison",
			"is BENCH_scale.json's suppression section (~3.4x fewer Search messages at n=512)",
		},
	}
	m := mustExecute(scenario.Spec{
		Families:     []string{famName},
		Sizes:        sizes,
		Schedulers:   []harness.SchedulerKind{sched},
		Starts:       []harness.StartMode{harness.StartCorrupt},
		Suppression:  []bool{false, true},
		SeedsPerCell: seeds,
		BaseSeed:     12000,
	})
	// Search-kind volume rides on RunResult's programmatic fields; fold
	// it per cell here (the engine's serialized aggregates must stay
	// byte-stable, so the column lives in this table only).
	searchAvg := map[scenario.Cell]float64{}
	count := map[scenario.Cell]int{}
	for _, rr := range m.Runs {
		if rr.Err != "" || rr.Skipped {
			continue
		}
		searchAvg[rr.Cell] += float64(rr.SearchMessages)
		count[rr.Cell]++
	}
	for _, c := range m.Cells {
		deg := c.MaxDegree
		if deg < 0 {
			deg = 0
		}
		search := 0.0
		if n := count[c.Cell]; n > 0 {
			search = searchAvg[c.Cell] / float64(n)
		}
		t.Rows = append(t.Rows, []string{
			itoa(c.Nodes), c.SuppressName(),
			ftoa(c.RoundsAvg),
			fmt.Sprintf("%.0f", c.MessagesAvg),
			fmt.Sprintf("%.0f", search),
			fmt.Sprintf("%.0f", c.SuppressedAvg),
			itoa(deg), btos(c.Legitimate), btos(c.WithinBound)})
	}
	return t
}
