// Package benchtab generates the experiment tables E1–E12 of
// EXPERIMENTS.md: each function sweeps a workload, runs the harness and
// returns a Table that can be rendered as aligned text or CSV. The
// bench targets in the repository root and cmd/mdstbench are thin
// wrappers over these functions. Every experiment table (E1–E12)
// executes its runs through the internal/scenario matrix engine,
// sharded across all CPUs: the fault injections are the shared
// scenario.FaultModel values rather than per-experiment one-offs, and
// per-run quantities the engine does not serialize (state bits, message
// words, broken rounds) ride on scenario.RunResult's programmatic
// fields. Only the figure-series generators (series.go) still drive
// single traced runs directly.
package benchtab

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/mdstseq"
	"mdst/internal/scenario"
	"mdst/internal/spanning"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render returns an aligned plain-text rendering.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV returns a comma-separated rendering (no quoting needed: cells are
// numbers and simple identifiers).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(v int) string      { return fmt.Sprintf("%d", v) }
func i64toa(v int64) string  { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string  { return fmt.Sprintf("%.2f", v) }
func btos(v bool) string     { return fmt.Sprintf("%v", v) }
func log2ceil(n int) float64 { return math.Ceil(math.Log2(float64(n))) }

// Workers caps the scenario-engine parallelism used by this package's
// engine-backed tables (<= 0: GOMAXPROCS). cmd/mdstbench sets it from
// its -workers flag; results never depend on it, only wall time.
var Workers int

// mustExecute runs a matrix on the package engine. The specs built by
// this package are static, so an error is a programmer error — the
// same contract as graph.MustFamily.
func mustExecute(spec scenario.Spec) *scenario.Matrix {
	m, err := scenario.Engine{Workers: Workers}.Execute(spec)
	if err != nil {
		panic("benchtab: " + err.Error())
	}
	return m
}

// SweepSpec controls the shared sweep dimensions.
type SweepSpec struct {
	Sizes []int // requested node counts
	Seeds int   // runs per cell (averaged / maxed as appropriate)
	Sched harness.SchedulerKind
}

// DefaultSweep returns the sweep used by the committed experiment
// outputs: modest sizes so the full suite runs in minutes.
func DefaultSweep() SweepSpec {
	return SweepSpec{Sizes: []int{16, 24, 32, 48}, Seeds: 3, Sched: harness.SchedSync}
}

// E1DegreeQuality checks Theorem 2 across families: the stabilized degree
// versus the exact or bracketed Δ*, with the Δ*+1 bound verdict. The runs
// execute through the scenario engine (one per family × size × seed,
// sharded across all CPUs); the exact Δ* label is re-derived per row by
// rebuilding the run's graph from its seed.
func E1DegreeQuality(sweep SweepSpec, families []graph.Family) *Table {
	t := &Table{
		Title:   "E1: degree quality — deg(T) vs Δ*+1 (Theorem 2)",
		Columns: []string{"family", "n", "m", "deg(T)", "deltaStar", "bound", "withinBound"},
		Notes: []string{
			"deltaStar is exact (branch-and-bound) when n <= 20, otherwise bracketed by [FR-1, FR]",
			"withinBound asserts deg(T) <= deltaStar+1 (paper Theorem 2)",
		},
	}
	m := mustExecute(scenario.Spec{
		Families:     familyNames(families),
		Sizes:        sweep.Sizes,
		Schedulers:   []harness.SchedulerKind{sweep.Sched},
		Starts:       []harness.StartMode{harness.StartCorrupt},
		SeedsPerCell: sweep.Seeds,
		BaseSeed:     1000,
	})
	for _, rr := range m.Runs {
		if rr.MaxDegree < 0 {
			t.Rows = append(t.Rows, []string{rr.Family, itoa(rr.Nodes), itoa(rr.Edges),
				"FAIL", "-", "-", "false"})
			continue
		}
		g, err := scenario.BuildGraph(rr.Run)
		if err != nil {
			panic("benchtab: " + err.Error())
		}
		deg := rr.MaxDegree
		star, exact := deltaStar(g)
		bound := star + 1
		within := deg <= bound
		label := itoa(star)
		if !exact {
			label = fmt.Sprintf("[%d..%d]", star, starUpper(g))
			bound = starUpper(g) + 1
			within = deg <= bound
		}
		t.Rows = append(t.Rows, []string{rr.Family, itoa(rr.Nodes), itoa(rr.Edges),
			itoa(deg), label, itoa(bound), btos(within)})
	}
	return t
}

// familyNames projects the registered names of a family slice (the
// scenario engine resolves families by name).
func familyNames(families []graph.Family) []string {
	names := make([]string, len(families))
	for i, f := range families {
		names[i] = f.Name
	}
	return names
}

// deltaStar returns the exact Δ* for small graphs, else the FR-derived
// lower end of the bracket (Δ* >= deg(T_FR)-1).
func deltaStar(g *graph.Graph) (int, bool) {
	if g.N() <= 20 {
		if star, ok := mdstseq.ExactDelta(g, 2_000_000); ok {
			return star, true
		}
	}
	return starUpper(g) - 1, false
}

// starUpper returns deg of the FR tree, an upper bound on Δ*+1's base.
func starUpper(g *graph.Graph) int {
	return mdstseq.Approximate(g).MaxDegree()
}

// E2Convergence measures rounds-to-stabilization against the paper's
// O(m n^2 log n) bound.
func E2Convergence(sweep SweepSpec, families []graph.Family) *Table {
	t := &Table{
		Title:   "E2: convergence rounds vs O(m n^2 log n) (Lemma 5)",
		Columns: []string{"family", "n", "m", "rounds", "m*n^2*log2(n)", "ratio(x1e6)"},
		Notes: []string{
			"rounds = last state change under the synchronous scheduler, worst of seeds",
			"ratio should stay bounded (and in practice tiny) as n grows",
		},
	}
	m := mustExecute(scenario.Spec{
		Families:     familyNames(families),
		Sizes:        sweep.Sizes,
		Schedulers:   []harness.SchedulerKind{sweep.Sched},
		Starts:       []harness.StartMode{harness.StartCorrupt},
		SeedsPerCell: sweep.Seeds,
		BaseSeed:     2000,
	})
	for _, c := range m.Cells {
		worst := c.RoundsMax
		bound := float64(c.Edges) * float64(c.Nodes) * float64(c.Nodes) * log2ceil(c.Nodes)
		t.Rows = append(t.Rows, []string{c.Family, itoa(c.Nodes), itoa(c.Edges),
			itoa(worst), fmt.Sprintf("%.0f", bound), ftoa(float64(worst) / bound * 1e6)})
	}
	return t
}

// E3Memory compares measured per-node state with the paper's O(δ log n).
// The runs execute through the scenario engine (sharded across CPUs);
// each row's δ is re-derived by rebuilding the run's graph from its seed.
func E3Memory(sweep SweepSpec, families []graph.Family) *Table {
	t := &Table{
		Title:   "E3: memory — max state bits per node vs δ·ceil(log2 n) (Lemma 5)",
		Columns: []string{"family", "n", "delta", "stateBits", "delta*log2n", "ratio"},
		Notes:   []string{"ratio = stateBits / (delta*ceil(log2 n)); O(δ log n) means bounded ratio"},
	}
	m := mustExecute(scenario.Spec{
		Families:     familyNames(families),
		Sizes:        sweep.Sizes,
		Schedulers:   []harness.SchedulerKind{sweep.Sched},
		Starts:       []harness.StartMode{harness.StartCorrupt},
		SeedsPerCell: 1,
		BaseSeed:     3000,
	})
	for _, rr := range m.Runs {
		g, err := scenario.BuildGraph(rr.Run)
		if err != nil {
			panic("benchtab: " + err.Error())
		}
		delta := g.MaxDegree()
		ref := float64(delta) * log2ceil(g.N())
		t.Rows = append(t.Rows, []string{rr.Family, itoa(rr.Nodes), itoa(delta),
			itoa(rr.MaxStateBits), fmt.Sprintf("%.0f", ref),
			ftoa(float64(rr.MaxStateBits) / ref)})
	}
	return t
}

// E4MessageLength compares the largest message with the paper's
// O(n log n) buffer claim, one engine-backed run per family × size.
func E4MessageLength(sweep SweepSpec, families []graph.Family) *Table {
	t := &Table{
		Title:   "E4: message length — max words vs n (buffer bound O(n log n))",
		Columns: []string{"family", "n", "maxWords", "kind", "words/n"},
		Notes:   []string{"one word = O(log n) bits; the paper's bound is O(n) words per message"},
	}
	m := mustExecute(scenario.Spec{
		Families:     familyNames(families),
		Sizes:        sweep.Sizes,
		Schedulers:   []harness.SchedulerKind{sweep.Sched},
		Starts:       []harness.StartMode{harness.StartCorrupt},
		SeedsPerCell: 1,
		BaseSeed:     4000,
	})
	for _, rr := range m.Runs {
		t.Rows = append(t.Rows, []string{rr.Family, itoa(rr.Nodes),
			itoa(rr.MaxMsgWords), rr.MaxMsgKind,
			ftoa(float64(rr.MaxMsgWords) / float64(rr.Nodes))})
	}
	return t
}

// E5FaultRecovery measures re-stabilization time after corrupting k nodes
// of a legitimate configuration (Definition 1's convergence). Each fault
// count is a scenario.CorruptRandom cell; cells share graph instances
// (the engine derives seeds from the instance axes only), so the sweep
// is a paired comparison on identical workloads.
func E5FaultRecovery(n int, seeds int, sched harness.SchedulerKind) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E5: fault recovery on geometric n=%d — rounds to re-stabilize vs faults", n),
		Columns: []string{"faults", "rounds(avg)", "rounds(max)", "legitimate"},
		Notes:   []string{"faults = nodes with fully randomized state injected into a legitimate configuration"},
	}
	fracs := []float64{0, 0.05, 0.1, 0.25, 0.5, 1.0}
	var faults []scenario.FaultModel
	ks := make([]int, len(fracs))
	seen := map[int]bool{}
	for i, f := range fracs {
		ks[i] = int(math.Round(f * float64(n)))
		if !seen[ks[i]] { // small n can round two fractions to the same k
			seen[ks[i]] = true
			faults = append(faults, scenario.CorruptRandom{K: ks[i]})
		}
	}
	m := mustExecute(scenario.Spec{
		Families:     []string{"geometric"},
		Sizes:        []int{n},
		Schedulers:   []harness.SchedulerKind{sched},
		Starts:       []harness.StartMode{harness.StartLegitimate},
		Faults:       faults,
		SeedsPerCell: seeds,
		BaseSeed:     5000,
	})
	byK := map[string]scenario.CellResult{}
	for _, c := range m.Cells {
		byK[c.Fault] = c
	}
	for _, k := range ks {
		c := byK[scenario.CorruptRandom{K: k}.Name()]
		t.Rows = append(t.Rows, []string{itoa(k), ftoa(c.RoundsAvg),
			itoa(c.RoundsMax), btos(c.Legitimate)})
	}
	return t
}

// E6Baselines compares the stabilized distributed tree against an
// arbitrary BFS tree, a random spanning tree, the centralized FR tree and
// (small n) the exact optimum. The protocol runs execute through the
// scenario engine; the centralized baselines are re-derived per row from
// the run's rebuilt graph (the random tree draws from a run-seeded RNG).
func E6Baselines(sweep SweepSpec, families []graph.Family) *Table {
	t := &Table{
		Title:   "E6: baselines — tree degree by construction method",
		Columns: []string{"family", "n", "bfs", "random", "worstBFS", "FR", "selfstab", "deltaStar"},
		Notes: []string{
			"bfs/random/worstBFS are non-optimized spanning trees; FR is the centralized Δ*+1 algorithm",
			"selfstab is this paper's protocol, stabilized from a corrupted state",
		},
	}
	m := mustExecute(scenario.Spec{
		Families:     familyNames(families),
		Sizes:        sweep.Sizes,
		Schedulers:   []harness.SchedulerKind{sweep.Sched},
		Starts:       []harness.StartMode{harness.StartCorrupt},
		SeedsPerCell: 1,
		BaseSeed:     6000,
	})
	for _, rr := range m.Runs {
		g, err := scenario.BuildGraph(rr.Run)
		if err != nil {
			panic("benchtab: " + err.Error())
		}
		rng := rand.New(rand.NewSource(rr.Seed ^ 0xba5e))
		bfs := spanning.BFSTree(g, 0).MaxDegree()
		random := spanning.RandomTree(g, 0, rng).MaxDegree()
		worst := spanning.WorstDegreeTree(g, 0).MaxDegree()
		fr := mdstseq.Approximate(g).MaxDegree()
		star, exact := deltaStar(g)
		label := itoa(star)
		if !exact {
			label = fmt.Sprintf(">=%d", star)
		}
		t.Rows = append(t.Rows, []string{rr.Family, itoa(rr.Nodes), itoa(bfs),
			itoa(random), itoa(worst), itoa(fr), itoa(rr.MaxDegree), label})
	}
	return t
}

// AblationSpec is one configuration variant for E7.
type AblationSpec struct {
	Name  string
	Sched harness.SchedulerKind
	Mut   func(*core.Config)
}

// Ablations returns the standard ablation set of DESIGN.md.
func Ablations() []AblationSpec {
	return []AblationSpec{
		{"default(sync,patch)", harness.SchedSync, func(c *core.Config) {}},
		{"repair=reset", harness.SchedSync, func(c *core.Config) { c.Repair = core.RepairReset }},
		{"sched=async", harness.SchedAsync, func(c *core.Config) {}},
		{"sched=adversarial", harness.SchedAdversarial, func(c *core.Config) {}},
		{"deblockTTL=1", harness.SchedSync, func(c *core.Config) { c.DeblockTTL = 1 }},
		{"noTieBreak", harness.SchedSync, func(c *core.Config) { c.DeblockTieBreak = false }},
		{"searchPeriod=4", harness.SchedSync, func(c *core.Config) { c.SearchPeriod = 4 }},
		{"searchPeriod=64", harness.SchedSync, func(c *core.Config) { c.SearchPeriod = 64 }},
	}
}

// E7Ablations measures rounds, messages and final degree for each policy
// variant on a fixed workload. One engine-backed matrix per ablation
// (the scheduler and config mutation are spec-wide axes); all ablations
// share graph instances because the engine derives seeds from the
// instance identity only.
func E7Ablations(n int, seeds int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E7: ablations on gnp n=%d — policy vs cost and quality", n),
		Columns: []string{"variant", "rounds(avg)", "messages(avg)", "deg(T)", "legitimate"},
	}
	for _, ab := range Ablations() {
		mut := ab.Mut
		m := mustExecute(scenario.Spec{
			Families:     []string{"gnp"},
			Sizes:        []int{n},
			Schedulers:   []harness.SchedulerKind{ab.Sched},
			Starts:       []harness.StartMode{harness.StartCorrupt},
			SeedsPerCell: seeds,
			BaseSeed:     7000,
			Config: func(n int) core.Config {
				cfg := core.DefaultConfig(n)
				mut(&cfg)
				return cfg
			},
		})
		c := m.Cells[0]
		deg := c.MaxDegree
		if deg < 0 {
			deg = 0
		}
		t.Rows = append(t.Rows, []string{ab.Name,
			ftoa(c.RoundsAvg),
			fmt.Sprintf("%.0f", c.MessagesAvg),
			itoa(deg), btos(c.Legitimate)})
	}
	return t
}

// SortRows orders rows lexicographically (stable output for goldens).
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool {
		for c := range t.Rows[i] {
			if t.Rows[i][c] != t.Rows[j][c] {
				return t.Rows[i][c] < t.Rows[j][c]
			}
		}
		return false
	})
}

// All runs the full experiment suite with the default sweep and returns
// the tables in order. families defaults to graph.Families().
func All(sweep SweepSpec, families []graph.Family) []*Table {
	if families == nil {
		families = graph.Families()
	}
	return []*Table{
		E1DegreeQuality(sweep, families),
		E2Convergence(sweep, families),
		E3Memory(sweep, families),
		E4MessageLength(sweep, families),
		E5FaultRecovery(32, sweep.Seeds, sweep.Sched),
		E6Baselines(sweep, families),
		E7Ablations(24, sweep.Seeds),
		E8TargetedFaults("gnp", 32, sweep.Seeds, sweep.Sched),
		E9LossyLinks("gnp", 24, sweep.Seeds),
		E10Churn("gnp", 24, sweep.Seeds, sweep.Sched),
		E11Choreography([]int{16, 24}, sweep.Seeds, sweep.Sched),
		E12SearchTraffic("gnp", []int{16, 24}, sweep.Seeds, sweep.Sched),
	}
}

var _ = i64toa // reserved for future columns
