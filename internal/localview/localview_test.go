package localview

import (
	"math/rand"
	"testing"
)

func TestTableLookup(t *testing.T) {
	tab := NewTable([]int{7, 2, 11})
	if tab.Len() != 3 {
		t.Fatalf("len=%d", tab.Len())
	}
	// Sorted positions.
	for i, want := range []int{2, 7, 11} {
		if tab.ID(i) != want {
			t.Fatalf("ID(%d)=%d, want %d", i, tab.ID(i), want)
		}
	}
	for _, u := range []int{2, 7, 11} {
		v := tab.Get(u)
		if v == nil {
			t.Fatalf("Get(%d)=nil", u)
		}
		v.Root = u * 10
	}
	for _, u := range []int{0, 1, 3, 12} {
		if tab.Get(u) != nil {
			t.Fatalf("Get(%d) found a non-neighbor", u)
		}
	}
	// Get returns stable in-place storage.
	if tab.Get(7).Root != 70 || tab.At(1).Root != 70 {
		t.Fatal("mutation through Get not visible")
	}
}

func TestTableCloneIsDeep(t *testing.T) {
	tab := NewTable([]int{1, 2})
	tab.Get(1).Distance = 5
	c := tab.Clone()
	c.Get(1).Distance = 9
	if tab.Get(1).Distance != 5 {
		t.Fatal("clone shares view storage")
	}
	if c.Get(2) == nil || c.ID(0) != 1 {
		t.Fatal("clone lost index")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	tab := NewTable([]int{3, 4})
	base := Fingerprint(0, 1, 2, 3, 4, false, &tab)
	if Fingerprint(0, 1, 2, 3, 4, true, &tab) == base {
		t.Fatal("color not hashed")
	}
	tab.Get(3).Deg = 7
	if Fingerprint(0, 1, 2, 3, 4, false, &tab) == base {
		t.Fatal("view change not hashed")
	}
}

func TestLookupMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		seen := map[int]bool{}
		var ids []int
		for len(ids) < n {
			u := rng.Intn(100)
			if !seen[u] {
				seen[u] = true
				ids = append(ids, u)
			}
		}
		tab := NewTable(ids)
		for u := 0; u < 100; u++ {
			got := tab.Get(u) != nil
			if got != seen[u] {
				t.Fatalf("trial %d: Get(%d)=%v, want %v", trial, u, got, seen[u])
			}
		}
	}
}
