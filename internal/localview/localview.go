// Package localview is the dense per-neighbor view storage shared by
// the two protocol implementations (internal/core and
// internal/paperproto). A node's local copies of its neighbors'
// variables used to live in a map[int]*View per node; at matrix scale
// the map lookups and the per-entry pointer chasing dominate the
// simulator's hot path (every InfoMsg receive reads and writes a view,
// every fingerprint walks all of them). Table stores the views in one
// contiguous slice indexed by neighbor position, with an ID lookup by
// binary search over the sorted neighbor list — no hashing, no per-view
// allocation, cache-friendly iteration.
//
// The package also hosts the single Fingerprint implementation over
// (own variables, view table); both protocol variants previously
// duplicated it verbatim.
package localview

import "sort"

// View is a node's local copy of one neighbor's protocol variables (the
// send/receive atomicity model): refreshed only by InfoMsg, possibly
// stale, initially arbitrary.
type View struct {
	Root     int
	Parent   int
	Distance int
	Dmax     int
	Submax   int
	Deg      int
	Color    bool
}

// Table holds one node's views of all its neighbors, indexed by the
// neighbor's position in the sorted neighbor list.
type Table struct {
	ids   []int  // sorted ascending; shared between clones (immutable)
	views []View // views[i] is the copy of neighbor ids[i]
}

// NewTable builds a table for the given neighbor set. The input slice
// is copied and sorted; IDs must be distinct (graph adjacency lists
// are — a duplicate would shadow its twin's entry).
func NewTable(neighbors []int) Table {
	ids := append([]int(nil), neighbors...)
	sort.Ints(ids)
	return Table{ids: ids, views: make([]View, len(ids))}
}

// Len returns the number of neighbors.
func (t *Table) Len() int { return len(t.views) }

// ID returns the neighbor ID at position i.
func (t *Table) ID(i int) int { return t.ids[i] }

// At returns the view at position i for mutation in place.
func (t *Table) At(i int) *View { return &t.views[i] }

// Get returns the view of neighbor u, or nil when u is not a neighbor.
// The pointer stays valid for the lifetime of the table and may be used
// to mutate the view in place.
func (t *Table) Get(u int) *View {
	lo, hi := 0, len(t.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.ids[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.ids) && t.ids[lo] == u {
		return &t.views[lo]
	}
	return nil
}

// Clone returns a deep copy of the view contents. The neighbor-ID index
// is immutable and shared.
func (t *Table) Clone() Table {
	return Table{ids: t.ids, views: append([]View(nil), t.views...)}
}

// FNV-1a constants of the per-node state hash (the same mix both
// protocol variants have always used).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Fingerprint hashes a node's protocol-visible state — its own six
// variables plus every neighbor view, message traffic excluded — so
// quiescence means both the tree and all views have stopped changing.
// It is the shared implementation of sim.Fingerprinter for both
// protocol variants.
func Fingerprint(root, parent, distance, dmax, submax int, color bool, t *Table) uint64 {
	h := uint64(fnvOffset)
	mix := func(x uint64) {
		h ^= x
		h *= fnvPrime
	}
	mix(uint64(root))
	mix(uint64(parent))
	mix(uint64(distance))
	mix(uint64(dmax))
	mix(uint64(submax))
	if color {
		mix(1)
	} else {
		mix(2)
	}
	for i := range t.views {
		v := &t.views[i]
		mix(uint64(v.Root))
		mix(uint64(v.Parent))
		mix(uint64(v.Distance))
		mix(uint64(v.Dmax))
		mix(uint64(v.Submax))
		mix(uint64(v.Deg))
		if v.Color {
			mix(3)
		} else {
			mix(4)
		}
	}
	return h
}
