package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// metricsSpec is a small deterministic sim matrix with the
// observability plane on.
func metricsSpec() Spec {
	return Spec{
		Families:     []string{"gnp"},
		Sizes:        []int{12},
		SeedsPerCell: 2,
		BaseSeed:     3,
		Metrics:      true,
	}
}

// TestMatrixMetricsWorkerInvariant: the audit chain heads and metrics
// streams of a sim matrix are a pure function of the spec — serial and
// parallel execution must produce identical per-run observability data
// (this is the matrix-level form of the two-observers claim: the worker
// pool is just another observer arrangement).
func TestMatrixMetricsWorkerInvariant(t *testing.T) {
	spec := metricsSpec()
	serial, err := Engine{Workers: 1}.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Engine{Workers: 4}.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Runs) != len(parallel.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(serial.Runs), len(parallel.Runs))
	}
	for i := range serial.Runs {
		a, b := serial.Runs[i], parallel.Runs[i]
		if a.AuditChain == "" {
			t.Fatalf("run %d: empty audit chain with Metrics on", i)
		}
		if a.AuditChain != b.AuditChain {
			t.Fatalf("run %d: audit chain differs across worker counts: %s vs %s",
				i, a.AuditChain, b.AuditChain)
		}
		if len(a.Metrics) == 0 {
			t.Fatalf("run %d: empty metrics stream with Metrics on", i)
		}
		if len(a.Metrics) != len(b.Metrics) {
			t.Fatalf("run %d: stream lengths differ: %d vs %d", i, len(a.Metrics), len(b.Metrics))
		}
	}
	aj, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatal("matrix JSON differs across worker counts with Metrics on")
	}
	if !strings.Contains(string(aj), `"auditChain"`) || !strings.Contains(string(aj), `"metrics"`) {
		t.Fatal("metrics-on JSON missing the observability fields")
	}
}

// TestMatrixMetricsOffOmitsFields: with the plane off, the serialized
// matrix carries no observability keys at all — the byte-identity
// guarantee for the committed baselines, stated directly.
func TestMatrixMetricsOffOmitsFields(t *testing.T) {
	spec := metricsSpec()
	spec.Metrics = false
	m, err := Engine{Workers: 2}.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"auditChain"`, `"metrics"`} {
		if strings.Contains(string(b), key) {
			t.Fatalf("metrics-off JSON contains %s", key)
		}
	}
	// And the runs really carry nothing.
	for i, r := range m.Runs {
		if r.AuditChain != "" || len(r.Metrics) != 0 {
			t.Fatalf("run %d has observability data with Metrics off", i)
		}
	}
}

// TestRunResultMetricsRoundTrip: per-run snapshots survive a JSON
// round-trip through the matrix container (the -metrics -format json
// consumer contract).
func TestRunResultMetricsRoundTrip(t *testing.T) {
	m, err := Engine{Workers: 1}.Execute(metricsSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != len(m.Runs) {
		t.Fatalf("run count changed over round-trip: %d vs %d", len(back.Runs), len(m.Runs))
	}
	for i := range m.Runs {
		if back.Runs[i].AuditChain != m.Runs[i].AuditChain {
			t.Fatalf("run %d audit chain changed over round-trip", i)
		}
		if len(back.Runs[i].Metrics) != len(m.Runs[i].Metrics) {
			t.Fatalf("run %d metrics length changed over round-trip", i)
		}
		for j, s := range m.Runs[i].Metrics {
			got := back.Runs[i].Metrics[j]
			if got.Epoch != s.Epoch || got.SentTotal != s.SentTotal ||
				got.VersionFill != s.VersionFill || got.Fingerprint != s.Fingerprint {
				t.Fatalf("run %d snapshot %d changed over round-trip: %+v vs %+v", i, j, got, s)
			}
		}
	}
}
