package scenario

import (
	"bytes"
	"testing"

	"mdst/internal/harness"
)

func tinySpec() Spec {
	return Spec{
		Families:     []string{"gnp", "ring+chords"},
		Sizes:        []int{10, 12},
		Faults:       []FaultModel{NoFault{}, Lossy{Rate: 0.1}},
		SeedsPerCell: 2,
		BaseSeed:     7,
	}
}

func TestExpandShapeAndDeterminism(t *testing.T) {
	spec := tinySpec()
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * 2 * 2 // families x sizes x faults x seeds
	if len(runs) != want {
		t.Fatalf("expanded %d runs, want %d", len(runs), want)
	}
	again, _ := spec.Expand()
	for i := range runs {
		if runs[i] != again[i] {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, runs[i], again[i])
		}
	}
	// Seeds identify the instance (family, n, seedIndex): cells that
	// differ only in scheduler/start/variant/fault must share seeds —
	// that pairing is what makes fault sweeps same-workload comparisons
	// — while distinct instances must draw distinct seeds.
	type instance struct {
		family string
		n      int
		idx    int
	}
	bySeed := map[int64]instance{}
	byInstance := map[instance]int64{}
	for _, r := range runs {
		inst := instance{r.Family, r.N, r.SeedIndex}
		if prev, ok := byInstance[inst]; ok {
			if prev != r.Seed {
				t.Fatalf("instance %+v drew different seeds %d and %d", inst, prev, r.Seed)
			}
		} else {
			byInstance[inst] = r.Seed
		}
		if prev, ok := bySeed[r.Seed]; ok && prev != inst {
			t.Fatalf("instances %+v and %+v collide on seed %d", prev, inst, r.Seed)
		}
		bySeed[r.Seed] = inst
	}
}

func TestExpandRejectsBadSpecs(t *testing.T) {
	cases := []Spec{
		{},
		{Families: []string{"no-such-family"}, Sizes: []int{10}},
		{Families: []string{"gnp"}, Sizes: []int{1}},
		{Families: []string{"gnp"}, Sizes: []int{10},
			Faults: []FaultModel{NoFault{}, NoFault{}}},
		{Families: []string{"gnp"}, Sizes: []int{10},
			Schedulers: []harness.SchedulerKind{"asinc"}},
		{Families: []string{"gnp"}, Sizes: []int{10},
			Variants: []harness.Variant{"litteral"}},
	}
	for i, spec := range cases {
		if _, err := spec.Expand(); err == nil {
			t.Fatalf("case %d: bad spec accepted", i)
		}
	}
}

// Satellite: identical scenario specs with identical seeds must produce
// byte-identical aggregated JSON across two executions and across
// serial vs maximally parallel workers (the GOMAXPROCS=1 vs N axis).
func TestDeterminismRegressionJSON(t *testing.T) {
	render := func(workers int) []byte {
		m, err := Engine{Workers: workers}.Execute(tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("JSON differs between 1 and 8 workers")
	}
	repeat := render(8)
	if !bytes.Equal(parallel, repeat) {
		t.Fatal("JSON differs across identical executions")
	}
}

func TestEngineCellAggregation(t *testing.T) {
	m, err := Engine{}.Execute(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalRuns != 16 || len(m.Runs) != 16 || len(m.Cells) != 8 {
		t.Fatalf("totals: runs=%d cells=%d", m.TotalRuns, len(m.Cells))
	}
	for _, c := range m.Cells {
		if c.Runs != 2 {
			t.Fatalf("cell %s: %d completed runs, want 2", c.Cell, c.Runs)
		}
		if !c.Converged || !c.Legitimate || !c.WithinBound {
			t.Fatalf("cell %s failed: conv=%v legit=%v within=%v",
				c.Cell, c.Converged, c.Legitimate, c.WithinBound)
		}
		if c.RoundsAvg <= 0 || c.RoundsMax < int(c.RoundsAvg) {
			t.Fatalf("cell %s: bad rounds aggregation avg=%v max=%d",
				c.Cell, c.RoundsAvg, c.RoundsMax)
		}
	}
	if m.RenderTable() == "" || m.CSV() == "" {
		t.Fatal("empty rendering")
	}
}

func TestTargetedFaultCorruptsRole(t *testing.T) {
	m, err := Engine{}.Execute(Spec{
		Families:     []string{"gnp"},
		Sizes:        []int{12},
		Starts:       []harness.StartMode{harness.StartLegitimate},
		Faults:       []FaultModel{Targeted{Role: RoleRoot}, Targeted{Role: RoleParents}},
		SeedsPerCell: 2,
		BaseSeed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Cells {
		if !c.Legitimate {
			t.Fatalf("cell %s did not recover", c.Cell)
		}
		if c.Corrupted < 1 {
			t.Fatalf("cell %s corrupted %d nodes, want >= 1", c.Cell, c.Corrupted)
		}
	}
	// root+children corrupts strictly more nodes than root alone.
	if m.Cells[1].Corrupted <= m.Cells[0].Corrupted {
		t.Fatalf("parents=%d not > root=%d", m.Cells[1].Corrupted, m.Cells[0].Corrupted)
	}
}

func TestChurnFaultReStabilizes(t *testing.T) {
	m, err := Engine{}.Execute(Spec{
		Families:     []string{"gnp"},
		Sizes:        []int{12},
		Starts:       []harness.StartMode{harness.StartLegitimate},
		Faults:       []FaultModel{Churn{Op: harness.OpAddEdge}, Churn{Op: harness.OpRemoveTreeEdge}},
		SeedsPerCell: 2,
		BaseSeed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Cells {
		if c.Runs+c.Skipped != 2 || c.Errors != 0 {
			t.Fatalf("cell %s: runs=%d skipped=%d errors=%d", c.Cell, c.Runs, c.Skipped, c.Errors)
		}
		if c.Runs > 0 && !c.Legitimate {
			t.Fatalf("cell %s did not re-stabilize", c.Cell)
		}
	}
}

func TestParseFaultRoundTrips(t *testing.T) {
	for _, name := range []string{"none", "lossy:0.05", "corrupt:4",
		"targeted:root", "targeted:deepest-leaf", "churn:add-edge",
		"churn:remove-tree-edge"} {
		fm, err := ParseFault(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fm.Name() != name {
			t.Fatalf("round trip %q -> %q", name, fm.Name())
		}
	}
	for _, bad := range []string{"lossy:1.5", "lossy:x", "corrupt:-1",
		"targeted:nowhere", "churn:rewire", "bogus"} {
		if _, err := ParseFault(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestBuildGraphMatchesEngineInstance(t *testing.T) {
	spec := Spec{Families: []string{"gnp"}, Sizes: []int{14}, SeedsPerCell: 3}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Engine{}.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range m.Runs {
		g, err := BuildGraph(runs[i])
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != rr.Nodes || g.M() != rr.Edges {
			t.Fatalf("run %d: rebuilt graph n=%d m=%d, engine saw n=%d m=%d",
				i, g.N(), g.M(), rr.Nodes, rr.Edges)
		}
	}
}
