package scenario

import (
	"math/rand"
	"testing"
	"time"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/mdstseq"
	"mdst/internal/sim"
)

// Satellite: differential test between the two runtimes. The same
// (graph, seed) spec — same topology, same corrupted initial state —
// runs through the deterministic sim.Network (via harness.Run) and the
// goroutine-per-node sim.LiveNetwork, and both must stabilize to a
// legitimate tree within the Δ*+1 degree guarantee. The live side uses
// the restartable Start/Stop loop to poll the legitimacy predicate
// between bursts without racing the node goroutines (the whole package
// runs under -race in the Makefile's race job).
func TestDifferentialDeterministicVsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock live runtime test")
	}
	cases := []struct {
		name  string
		build func() *graph.Graph
		seed  int64
	}{
		{"wheel-8", func() *graph.Graph { return graph.Wheel(8) }, 11},
		{"gnp-10", func() *graph.Graph {
			return graph.RandomGnp(10, 0.4, rand.New(rand.NewSource(11)))
		}, 12},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			g := tc.build()
			n := g.N()
			star, ok := mdstseq.ExactDelta(g, 2_000_000)
			if !ok {
				t.Fatal("exact solver budget exceeded")
			}

			// Deterministic runtime.
			det := harness.MustRun(harness.RunSpec{
				Graph: g, Start: harness.StartCorrupt, Seed: tc.seed,
			})
			if !det.Legit.OK() {
				t.Fatalf("deterministic run not legitimate: %+v", det.Legit)
			}
			if det.Tree == nil || det.Tree.MaxDegree() > star+1 {
				t.Fatalf("deterministic degree %d violates Δ*+1=%d", det.Tree.MaxDegree(), star+1)
			}

			// Live CSP runtime: same graph, same corrupted start (the
			// harness corrupts with rng(seed^0x5eed) in node order).
			cfg := core.DefaultConfig(n)
			ln := sim.NewLiveNetwork(g, func(id sim.NodeID, nbrs []sim.NodeID) sim.Process {
				return core.NewNode(id, nbrs, cfg)
			}, sim.LiveConfig{TickInterval: 50 * time.Microsecond})
			nodes := make([]*core.Node, n)
			for i := range nodes {
				nodes[i] = ln.Process(i).(*core.Node)
			}
			rng := rand.New(rand.NewSource(tc.seed ^ 0x5eed))
			for _, nd := range nodes {
				nd.Corrupt(rng, n)
			}

			deadline := time.Now().Add(90 * time.Second)
			var leg core.Legitimacy
			for {
				ln.Start()
				time.Sleep(250 * time.Millisecond)
				ln.Stop()
				leg = core.CheckLegitimacy(g, nodes)
				if leg.OK() || time.Now().After(deadline) {
					break
				}
			}
			if !leg.OK() {
				t.Fatalf("live run not legitimate after deadline: %+v", leg)
			}
			if leg.MaxDegree > star+1 {
				t.Fatalf("live degree %d violates Δ*+1=%d", leg.MaxDegree, star+1)
			}
			// Differential: both runtimes must land within the same
			// guarantee band (tie-breaking may differ, the bound may not).
			if det.Tree.MaxDegree() > star+1 || leg.MaxDegree > star+1 {
				t.Fatalf("runtimes disagree on the guarantee: det=%d live=%d bound=%d",
					det.Tree.MaxDegree(), leg.MaxDegree, star+1)
			}
		})
	}
}
