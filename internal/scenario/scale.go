package scenario

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/sim"
)

// Scale sweep: the large-n matrix cells (n > 256) that the incremental
// simulator hot path unlocks, plus the committed before/after comparison
// against the full-rehash baseline. Every reported field is a
// deterministic function of the seeds — no wall-clock numbers — so
// BENCH_scale.json is byte-identical across machines and reruns; the
// figure of merit is the count of per-node fingerprint recomputations
// the quiescence detector performs (sim.Metrics.FingerprintRecomputes),
// which is exactly the work the incremental cache removes.

// ScaleSpec configures ScaleSweep. The zero value selects the committed
// defaults: star-of-cliques at n=256/512/1024. The default family is
// chosen to isolate what this sweep measures — the SIMULATOR's
// fingerprint/round/quiescence machinery at large n — from the
// protocol's own convergence schedule: its hub-degree spanning tree is
// already at the Fürer–Raghavachari fixed point (the hub is an
// articulation point, so deg(T) cannot drop below the clique count),
// which keeps the reduction phase short while the long quiescence
// window (2n+Θ(1) rounds of full gossip at every node) still hammers
// the round loop. Protocol-active scaling lives in the paired
// full-vs-incremental baseline and in BenchmarkScaleSweep's
// ring+chords ladder; families with long reduction schedules (gnp,
// grid, hypercube) run the same ladder via -families/-sizes at the
// cost of O(n) extra convergence rounds of search traffic.
type ScaleSpec struct {
	Family    string // graph family (default "star-of-cliques")
	Sizes     []int  // node counts (default 256, 512, 1024)
	BaselineN int    // size of the full-rehash baseline run (default: smallest size)
	Seeds     int    // seeds per size (default 1)
	BaseSeed  int64  // matrix base seed (default 1)
	Workers   int    // engine parallelism (default GOMAXPROCS)

	// The event-engine ladder: closure runs at sizes the compat core
	// cannot reach in CI time, executed on the discrete-event core
	// (harness.EngineEvent) from the StartPath preload. EventFamily
	// defaults to "ring+chords" — a canonical-ring family, so the
	// Hamiltonian-path configuration (degree 2, Δ* = 2) exists and is a
	// reduction fixed point with the search module off; the whole
	// network parks after the first quiet tick and the quiescence window
	// (2n+Θ(1) derived rounds) is fast-forwarded by the event loop
	// instead of swept. Compat would execute every one of those rounds
	// at n ticks + Θ(n) gossip each — hours at n=16384, seconds here.
	// EventSizes defaults to 4096 and 16384.
	EventFamily string
	EventSizes  []int

	// The steady-state decay section: paired static-vs-adaptive
	// suppression runs on the event core from the legitimate preload
	// (see DecayCell). DecaySizes defaults to 256 (one cell); the family
	// is ScaleSpec.Family — star-of-cliques keeps dmax > deg(T) at the
	// fixed point, so the retry schedule never goes structurally silent
	// and the decay measured is entirely the backoff's doing.
	// DecayWindows is the number of cap-length observation windows
	// (default 3: the first absorbs the tier climb, the last is fully at
	// the cap).
	DecaySizes   []int
	DecayWindows int
}

func (s ScaleSpec) normalized() ScaleSpec {
	if s.Family == "" {
		s.Family = "star-of-cliques"
	}
	if len(s.Sizes) == 0 {
		s.Sizes = []int{256, 512, 1024}
	}
	if s.BaselineN == 0 {
		s.BaselineN = s.Sizes[0]
		for _, n := range s.Sizes {
			if n < s.BaselineN {
				s.BaselineN = n
			}
		}
	}
	if s.Seeds <= 0 {
		s.Seeds = 1
	}
	if s.BaseSeed == 0 {
		s.BaseSeed = 1
	}
	if s.EventFamily == "" {
		s.EventFamily = "ring+chords"
	}
	if len(s.EventSizes) == 0 {
		s.EventSizes = []int{4096, 16384}
	}
	if len(s.DecaySizes) == 0 {
		s.DecaySizes = []int{256}
	}
	if s.DecayWindows <= 0 {
		s.DecayWindows = 3
	}
	return s
}

// ScaleCell is one run of the scale sweep.
type ScaleCell struct {
	Family                string `json:"family"`
	N                     int    `json:"n"`
	Edges                 int    `json:"edges"`
	Seed                  int64  `json:"seed"`
	Converged             bool   `json:"converged"`
	Rounds                int    `json:"rounds"`
	LastChange            int    `json:"lastChange"`
	Messages              int64  `json:"messages"`
	SearchMessages        int64  `json:"searchMessages"`
	MaxDegree             int    `json:"maxDegree"`
	DegreeBound           int    `json:"degreeBound"`
	WithinBound           bool   `json:"withinBound"`
	FingerprintRecomputes int64  `json:"fingerprintRecomputes"`
}

// SuppressionCell is one paired on/off comparison of the search-traffic
// suppression hot path: the identical instance (same seed, graph and
// corruptions — run seeds exclude the suppression axis) executed with
// the knob off and on. The off columns repeat the main ladder's run; the
// on columns must reach the same legitimacy predicate and the identical
// Δ*+1 degree bracket (enforced by ScaleSweep), differing only in
// traffic and possibly in timing.
type SuppressionCell struct {
	Family             string `json:"family"`
	N                  int    `json:"n"`
	Seed               int64  `json:"seed"`
	RoundsOff          int    `json:"roundsOff"`
	RoundsOn           int    `json:"roundsOn"`
	MessagesOff        int64  `json:"messagesOff"`
	MessagesOn         int64  `json:"messagesOn"`
	SearchMessagesOff  int64  `json:"searchMessagesOff"`
	SearchMessagesOn   int64  `json:"searchMessagesOn"`
	SearchesSuppressed int64  `json:"searchesSuppressed"`
	MaxDegreeOn        int    `json:"maxDegreeOn"`
	DegreeBound        int    `json:"degreeBound"`
	WithinBound        bool   `json:"withinBound"`
	// SearchReduction = searchMessagesOff / searchMessagesOn — the
	// committed figure of merit (the acceptance bar is >= 2 at n=512).
	SearchReduction float64 `json:"searchReduction"`
	// MessageReduction is the same ratio over all message kinds.
	MessageReduction float64 `json:"messageReduction"`
}

// EventCell is one run of the event-engine ladder: sizes executed on
// the discrete-event core, where rounds without work are skipped and
// idle nodes park. Every field is a deterministic function of the seed.
type EventCell struct {
	Family    string `json:"family"`
	N         int    `json:"n"`
	Edges     int    `json:"edges"`
	Seed      int64  `json:"seed"`
	Converged bool   `json:"converged"`
	// Certified asserts the run produced a quiescence certificate (the
	// event loop's empty-queue + expired-timers evidence).
	Certified   bool  `json:"certified"`
	Rounds      int   `json:"rounds"`
	LastChange  int   `json:"lastChange"`
	Messages    int64 `json:"messages"`
	MaxDegree   int   `json:"maxDegree"`
	DegreeBound int   `json:"degreeBound"`
	WithinBound bool  `json:"withinBound"`
	// Events is the total executed simulator events (ticks + deliveries);
	// TailEvents is the portion after the last state change, i.e. the
	// work the engine still did across the TailRounds of the quiescence
	// window. TailEventsPerNodeRound = TailEvents / (TailRounds × N) is
	// the frontier figure of merit: the compat core's floor is 1.0
	// (every node ticks every round); sub-linear per-round work after the
	// frontier shrinks means a value far below it.
	Events                 int64   `json:"events"`
	TailEvents             int64   `json:"tailEvents"`
	TailRounds             int     `json:"tailRounds"`
	TailEventsPerNodeRound float64 `json:"tailEventsPerNodeRound"`
}

// DecayCell is one paired steady-state silence measurement: the
// identical instance (same seed, graph and legitimate preload) executed
// on the event core with the static suppression window and with
// adaptive backoff, observed over DecayWindows cap-length windows past
// convergence. The committed figure of merit is DecayRatio — the static
// twin's last-window message volume over the adaptive twin's — with an
// acceptance bar of >= 10 enforced by ScaleSweep. The cell then
// injects a fault at the deepest backoff tier (a node whose retry
// spacing reached the cap) and re-runs under the dynamic
// quiescence-stability window: re-convergence with a certificate
// inside RecoveryBudget (twice the cap-based stability window, the
// wall-clock drivers' budget-deadline floor shape) is also enforced.
type DecayCell struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	Seed   int64  `json:"seed"`
	// BaseWindow/CapWindow are the static pruning window and the
	// adaptive cap, in ticks; WindowRounds is the observation window
	// length (one cap) in virtual rounds.
	BaseWindow   int `json:"baseWindow"`
	CapWindow    int `json:"capWindow"`
	WindowRounds int `json:"windowRounds"`
	// Per-observation-window total message volumes (all kinds), static
	// twin vs adaptive twin. The static series stays flat; the adaptive
	// series decays geometrically as tiers deepen.
	StaticPerWindow  []int64 `json:"staticPerWindow"`
	BackoffPerWindow []int64 `json:"backoffPerWindow"`
	// DecayRatio = StaticPerWindow[last] / BackoffPerWindow[last]
	// (acceptance bar: >= 10).
	DecayRatio float64 `json:"decayRatio"`
	// Fault-at-deepest-tier phase: RetryAtFault is the network's maximum
	// retry spacing at injection (must equal CapWindow — the proof the
	// fault really hit the deepest tier), FaultNode the corrupted node.
	RetryAtFault int `json:"retryAtFault"`
	FaultNode    int `json:"faultNode"`
	// RecoveryRounds is rounds from injection to the quiescence
	// certificate; RecoveredInBudget asserts it landed inside
	// RecoveryBudget with the legitimacy predicate restored.
	RecoveryRounds    int  `json:"recoveryRounds"`
	RecoveryBudget    int  `json:"recoveryBudget"`
	RecoveredInBudget bool `json:"recoveredInBudget"`
	Legitimate        bool `json:"legitimate"`
}

// ScaleReport is the deterministic content of BENCH_scale.json.
type ScaleReport struct {
	Cells []ScaleCell `json:"cells"`

	// Suppression pairs every ladder size with its suppression-on twin:
	// the committed on/off Search-kind message-volume comparison.
	Suppression []SuppressionCell `json:"suppression"`

	// Event is the event-engine ladder (see EventCell): the large-n
	// cells that frontier-only scheduling unlocks.
	Event []EventCell `json:"event"`

	// Decay is the steady-state silence section (see DecayCell): the
	// committed adaptive-backoff idle-traffic baselines.
	Decay []DecayCell `json:"decay"`

	// Full-rehash baseline vs the incremental cache on the SAME run
	// (identical seed, identical rounds/messages/degree outputs): the
	// recompute counts differ, nothing else may.
	BaselineN             int   `json:"baselineN"`
	BaselineRounds        int   `json:"baselineRounds"`
	FullRehashRecomputes  int64 `json:"fullRehashRecomputes"`
	IncrementalRecomputes int64 `json:"incrementalRecomputes"`
	// OverheadReduction = full / incremental; the acceptance bar is >= 5.
	OverheadReduction float64 `json:"overheadReduction"`
}

// JSON renders the report as deterministic indented JSON.
func (r *ScaleReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ScaleSweep executes the scale matrix with the incremental hot path,
// re-executes the baseline size under the full-rehash reference mode,
// and cross-checks that both modes produce identical protocol results.
// It flips the package-wide sim fingerprint mode while the baseline
// runs, so it must not execute concurrently with other engine use.
func ScaleSweep(spec ScaleSpec) (*ScaleReport, error) {
	ns := spec.normalized()
	matrixSpec := func(sizes []int) Spec {
		return Spec{
			Families:     []string{ns.Family},
			Sizes:        sizes,
			Schedulers:   []harness.SchedulerKind{harness.SchedSync},
			Starts:       []harness.StartMode{harness.StartCorrupt},
			SeedsPerCell: ns.Seeds,
			BaseSeed:     ns.BaseSeed,
		}
	}

	m, err := Engine{Workers: ns.Workers}.Execute(matrixSpec(ns.Sizes))
	if err != nil {
		return nil, err
	}
	report := &ScaleReport{BaselineN: ns.BaselineN}
	var incBaseline *RunResult
	for i := range m.Runs {
		rr := &m.Runs[i]
		if rr.Err != "" {
			return nil, fmt.Errorf("scenario: scale run %s failed: %s", rr.Cell, rr.Err)
		}
		report.Cells = append(report.Cells, ScaleCell{
			Family:                rr.Family,
			N:                     rr.N,
			Edges:                 rr.Edges,
			Seed:                  rr.Seed,
			Converged:             rr.Converged,
			Rounds:                rr.Rounds,
			LastChange:            rr.LastChange,
			Messages:              rr.Messages,
			SearchMessages:        rr.SearchMessages,
			MaxDegree:             rr.MaxDegree,
			DegreeBound:           rr.DegreeBound,
			WithinBound:           rr.WithinBound,
			FingerprintRecomputes: rr.FingerprintRecomputes,
		})
		if rr.N == ns.BaselineN && rr.SeedIndex == 0 && incBaseline == nil {
			incBaseline = rr
		}
	}
	if incBaseline == nil {
		return nil, fmt.Errorf("scenario: baseline size %d not in sweep sizes %v", ns.BaselineN, ns.Sizes)
	}

	// The suppression-on twin of the ladder: the suppression axis is
	// excluded from run seeds, so every run below executes the IDENTICAL
	// instance (graph + corruptions) as its entry in report.Cells —
	// paired on/off message-volume comparisons, not cross-instance noise.
	sup, err := Engine{Workers: ns.Workers}.Execute(func() Spec {
		s := matrixSpec(ns.Sizes)
		s.Suppression = []bool{true}
		return s
	}())
	if err != nil {
		return nil, err
	}
	for i := range sup.Runs {
		on := &sup.Runs[i]
		if on.Err != "" {
			return nil, fmt.Errorf("scenario: suppressed scale run %s failed: %s", on.Cell, on.Err)
		}
		off := &m.Runs[i]
		if off.N != on.N || off.Seed != on.Seed {
			return nil, fmt.Errorf("scenario: suppression ladder misaligned at %d: n=%d/%d seed=%d/%d",
				i, off.N, on.N, off.Seed, on.Seed)
		}
		// Outcome equivalence is part of the committed contract: the
		// suppressed run must converge to the same legitimacy predicate
		// and the identical Δ*+1 bracket (the exact tree and timing may
		// differ — suppression defers redundant tokens, nothing else).
		if !on.Converged || !on.Legitimate || !on.WithinBound || on.DegreeBound != off.DegreeBound {
			return nil, fmt.Errorf(
				"scenario: suppression broke outcome equivalence at n=%d: converged=%v legit=%v deg=%d bound=%d (off bound %d)",
				on.N, on.Converged, on.Legitimate, on.MaxDegree, on.DegreeBound, off.DegreeBound)
		}
		cell := SuppressionCell{
			Family:             on.Family,
			N:                  on.N,
			Seed:               on.Seed,
			RoundsOff:          off.Rounds,
			RoundsOn:           on.Rounds,
			MessagesOff:        off.Messages,
			MessagesOn:         on.Messages,
			SearchMessagesOff:  off.SearchMessages,
			SearchMessagesOn:   on.SearchMessages,
			SearchesSuppressed: int64(on.SearchesSuppressed),
			MaxDegreeOn:        on.MaxDegree,
			DegreeBound:        on.DegreeBound,
			WithinBound:        on.WithinBound,
		}
		if on.SearchMessages > 0 {
			cell.SearchReduction = float64(off.SearchMessages) / float64(on.SearchMessages)
		}
		if on.Messages > 0 {
			cell.MessageReduction = float64(off.Messages) / float64(on.Messages)
		}
		report.Suppression = append(report.Suppression, cell)
	}

	// The event-engine ladder: closure runs at sizes the compat core
	// cannot sweep in CI time, one seed per size on the discrete-event
	// core from the StartPath preload (see ScaleSpec.EventSizes for why
	// the closure shape is the one that scales). Acceptance is enforced
	// here, not just recorded — a cell that fails to converge, reach
	// legitimacy, stay within the Δ*+1 bracket, or produce a quiescence
	// certificate fails the whole sweep (and therefore `make drift`).
	ev, err := Engine{Workers: ns.Workers}.Execute(Spec{
		Families:     []string{ns.EventFamily},
		Sizes:        ns.EventSizes,
		Schedulers:   []harness.SchedulerKind{harness.SchedSync},
		Starts:       []harness.StartMode{harness.StartPath},
		Engines:      []harness.Engine{harness.EngineEvent},
		SeedsPerCell: 1,
		BaseSeed:     ns.BaseSeed,
	})
	if err != nil {
		return nil, err
	}
	for i := range ev.Runs {
		rr := &ev.Runs[i]
		if rr.Err != "" {
			return nil, fmt.Errorf("scenario: event-ladder run %s failed: %s", rr.Cell, rr.Err)
		}
		if !rr.Converged || !rr.Legitimate || !rr.WithinBound {
			return nil, fmt.Errorf(
				"scenario: event-ladder run %s missed acceptance: converged=%v legit=%v deg=%d bound=%d",
				rr.Cell, rr.Converged, rr.Legitimate, rr.MaxDegree, rr.DegreeBound)
		}
		if rr.Cert == nil {
			return nil, fmt.Errorf("scenario: event-ladder run %s converged without a quiescence certificate", rr.Cell)
		}
		cell := EventCell{
			Family:      rr.Family,
			N:           rr.N,
			Edges:       rr.Edges,
			Seed:        rr.Seed,
			Converged:   rr.Converged,
			Certified:   rr.Cert != nil,
			Rounds:      rr.Rounds,
			LastChange:  rr.LastChange,
			Messages:    rr.Messages,
			MaxDegree:   rr.MaxDegree,
			DegreeBound: rr.DegreeBound,
			WithinBound: rr.WithinBound,
			Events:      rr.Events,
			TailEvents:  rr.TailEvents,
			TailRounds:  rr.Rounds - rr.LastChange,
		}
		if cell.TailRounds > 0 && rr.N > 0 {
			cell.TailEventsPerNodeRound = float64(cell.TailEvents) /
				(float64(cell.TailRounds) * float64(rr.N))
		}
		report.Event = append(report.Event, cell)
	}

	// The steady-state decay section. Acceptance is enforced in-sweep —
	// a cell whose last-window decay misses the 10x bar, whose fault
	// missed the deepest tier, or whose recovery blew the budget fails
	// the whole sweep (and therefore `make drift`).
	for _, n := range ns.DecaySizes {
		seed := runSeed(ns.BaseSeed, Cell{Family: ns.Family, N: n}, 0)
		cell, err := decayCell(ns.Family, n, seed, ns.DecayWindows)
		if err != nil {
			return nil, err
		}
		if cell.DecayRatio < 10 {
			return nil, fmt.Errorf(
				"scenario: decay cell n=%d missed the 10x bar: static %v vs backoff %v (ratio %.2f)",
				cell.N, cell.StaticPerWindow, cell.BackoffPerWindow, cell.DecayRatio)
		}
		if cell.RetryAtFault != cell.CapWindow {
			return nil, fmt.Errorf(
				"scenario: decay cell n=%d fault missed the deepest tier: retry %d, cap %d",
				cell.N, cell.RetryAtFault, cell.CapWindow)
		}
		if !cell.RecoveredInBudget || !cell.Legitimate {
			return nil, fmt.Errorf(
				"scenario: decay cell n=%d failed recovery: %d rounds (budget %d), legit=%v",
				cell.N, cell.RecoveryRounds, cell.RecoveryBudget, cell.Legitimate)
		}
		report.Decay = append(report.Decay, cell)
	}

	sim.SetFullFingerprintRehash(true)
	defer sim.SetFullFingerprintRehash(false)
	base, err := Engine{Workers: 1}.Execute(Spec{
		Families:     []string{ns.Family},
		Sizes:        []int{ns.BaselineN},
		Schedulers:   []harness.SchedulerKind{harness.SchedSync},
		Starts:       []harness.StartMode{harness.StartCorrupt},
		SeedsPerCell: 1,
		BaseSeed:     ns.BaseSeed,
	})
	if err != nil {
		return nil, err
	}
	full := &base.Runs[0]
	if full.Err != "" {
		return nil, fmt.Errorf("scenario: baseline run failed: %s", full.Err)
	}
	// The two modes are the same detector at different costs: any drift
	// in protocol outputs means the incremental cache is wrong.
	if full.Rounds != incBaseline.Rounds || full.Messages != incBaseline.Messages ||
		full.MaxDegree != incBaseline.MaxDegree || full.Converged != incBaseline.Converged {
		return nil, fmt.Errorf(
			"scenario: full-rehash baseline diverged from incremental run: rounds %d vs %d, messages %d vs %d, deg %d vs %d",
			full.Rounds, incBaseline.Rounds, full.Messages, incBaseline.Messages,
			full.MaxDegree, incBaseline.MaxDegree)
	}
	report.BaselineRounds = full.Rounds
	report.FullRehashRecomputes = full.FingerprintRecomputes
	report.IncrementalRecomputes = incBaseline.FingerprintRecomputes
	if incBaseline.FingerprintRecomputes > 0 {
		report.OverheadReduction = float64(full.FingerprintRecomputes) /
			float64(incBaseline.FingerprintRecomputes)
	}
	return report, nil
}

// decayCell executes one steady-state decay measurement (see DecayCell).
// Both twins run on the event core — the compat core ticks every node
// every round, so its gossip volume can never decay regardless of the
// retry schedule; frontier parking is what turns suppressed retries
// into absent traffic. The fault phase runs on the compat core: after
// the corruption every node must actually step each round for the
// stability-window accounting (stable rounds = virtual rounds) that the
// budget bound is stated in.
func decayCell(family string, size int, seed int64, windows int) (DecayCell, error) {
	fam, ok := graph.LookupFamily(family)
	if !ok {
		return DecayCell{}, fmt.Errorf("scenario: unknown graph family %q", family)
	}
	g := fam.Build(size, rand.New(rand.NewSource(seed)))
	n := g.N()
	cfgStatic := core.DefaultConfig(n)
	cfgStatic.SuppressSearches = true
	cfgBackoff := cfgStatic
	cfgBackoff.BackoffSearches = true
	capW := cfgBackoff.BackoffCapWindow()
	cell := DecayCell{
		Family:       family,
		N:            n,
		Seed:         seed,
		BaseWindow:   cfgStatic.PruneWindow(),
		CapWindow:    capW,
		WindowRounds: capW,
	}
	total := windows * capW

	// observe runs one twin from the legitimate preload for `total`
	// virtual rounds (no quiescence detection — the point is to watch
	// the steady state, not to stop at it) and returns the per-window
	// message volumes plus the still-live network for the fault phase.
	observe := func(cfg core.Config) ([]int64, *sim.Network, error) {
		net := core.BuildNetwork(g, cfg, seed)
		if err := harness.Preload(g, core.NodesOf(net), cfg); err != nil {
			return nil, nil, err
		}
		sent := func() int64 {
			var t int64
			for _, v := range net.Metrics().SentByKind {
				t += v
			}
			return t
		}
		per := make([]int64, 0, windows)
		var prev int64
		net.RunEvents(sim.EventConfig{
			Policy:    sim.EventPolicySync,
			MaxRounds: total,
			OnRound: func(r int) bool {
				// r+1 = virtual rounds completed; close every window the
				// execution has crossed (the event core reports only
				// executed rounds, so a boundary can be crossed mid-gap).
				for len(per) < windows && r+1 >= (len(per)+1)*capW {
					cur := sent()
					per = append(per, cur-prev)
					prev = cur
				}
				return true
			},
		})
		// The final boundary round itself is never reported by OnRound
		// (the engine stops at the bound); flush the residue.
		if cur := sent(); len(per) < windows {
			per = append(per, cur-prev)
		}
		for len(per) < windows {
			per = append(per, 0)
		}
		return per, net, nil
	}

	staticPer, _, err := observe(cfgStatic)
	if err != nil {
		return cell, err
	}
	backoffPer, net, err := observe(cfgBackoff)
	if err != nil {
		return cell, err
	}
	cell.StaticPerWindow = staticPer
	cell.BackoffPerWindow = backoffPer
	if last := backoffPer[windows-1]; last > 0 {
		cell.DecayRatio = float64(staticPer[windows-1]) / float64(last)
	} else if staticPer[windows-1] > 0 {
		// Total silence beats any finite ratio; report the static volume
		// itself as the (lower-bound) ratio.
		cell.DecayRatio = float64(staticPer[windows-1])
	}

	// Fault at the deepest tier: corrupt the first node whose retry
	// spacing reached the network maximum (asserted == cap by the
	// caller), then re-run under the dynamic stability window and the
	// cap-derived budget.
	nodes := core.NodesOf(net)
	cell.RetryAtFault = net.MaxRetryPeriod(0)
	cell.FaultNode = -1
	for i, nd := range nodes {
		if nd.CurrentRetryPeriod() == cell.RetryAtFault {
			cell.FaultNode = i
			break
		}
	}
	if cell.FaultNode < 0 {
		return cell, fmt.Errorf("scenario: decay cell n=%d has no node at the deepest tier", n)
	}
	nodes[cell.FaultNode].Corrupt(rand.New(rand.NewSource(seed^0x0fa17)), n)

	flat := cfgBackoff
	flat.BackoffSearches = false
	flatRetry := flat.EffectiveRetryPeriod()
	cell.RecoveryBudget = 2 * harness.QuiesceWindowRounds(n, cfgBackoff.EffectiveRetryPeriod())
	start := net.Metrics().Rounds
	res := net.Run(sim.RunConfig{
		Scheduler:     harness.NewScheduler(harness.SchedSync),
		MaxRounds:     cell.RecoveryBudget,
		QuiesceRounds: harness.QuiesceWindowRounds(n, flatRetry),
		QuiesceWindow: func() int {
			return harness.QuiesceWindowRounds(n, net.MaxRetryPeriod(flatRetry))
		},
		ActiveKinds: core.ReductionKinds(),
	})
	cell.RecoveryRounds = res.Rounds - start
	cell.RecoveredInBudget = res.Converged && cell.RecoveryRounds <= cell.RecoveryBudget
	cell.Legitimate = core.CheckLegitimacy(g, nodes).OK()
	return cell, nil
}
