package scenario

import (
	"bytes"
	"math/rand"
	"testing"

	"mdst/internal/harness"
	"mdst/internal/sim"
)

// defaultMatrixSpec mirrors cmd/mdstmatrix's default 108-run matrix
// (3 families × 3 sizes × 2 schedulers × 6 seeds).
func defaultMatrixSpec() Spec {
	return Spec{
		Families:     []string{"ring+chords", "gnp", "geometric"},
		Sizes:        []int{16, 24, 32},
		Schedulers:   []harness.SchedulerKind{harness.SchedSync, harness.SchedAsync},
		Starts:       []harness.StartMode{harness.StartCorrupt},
		SeedsPerCell: 6,
		BaseSeed:     1,
	}
}

// executeWithMode runs a spec with the simulator's fingerprint mode
// pinned for the whole execution.
func executeWithMode(t *testing.T, spec Spec, fullRehash bool) []byte {
	t.Helper()
	sim.SetFullFingerprintRehash(fullRehash)
	defer sim.SetFullFingerprintRehash(false)
	m, err := Engine{}.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The incremental fingerprint cache must be invisible in results: the
// full-rehash reference mode is the seed implementation's behavior
// (hash every node, every round), so the aggregated JSON — rounds,
// messages, degrees, every per-run record — must be byte-identical
// between the two modes on the default matrix.
func TestIncrementalMatrixJSONMatchesFullRehash(t *testing.T) {
	spec := defaultMatrixSpec()
	if testing.Short() {
		spec.Sizes = []int{16}
		spec.SeedsPerCell = 2
	}
	inc := executeWithMode(t, spec, false)
	full := executeWithMode(t, spec, true)
	if !bytes.Equal(inc, full) {
		t.Fatal("matrix JSON differs between incremental and full-rehash fingerprinting")
	}
}

// Same oracle across the axes the default matrix does not cover: the
// literal protocol variant (its own version-bump sites) and lossy links
// (the drop path of the round accounting).
func TestIncrementalMatrixMatchesFullRehashVariantsAndFaults(t *testing.T) {
	spec := Spec{
		Families:     []string{"gnp"},
		Sizes:        []int{14},
		Schedulers:   []harness.SchedulerKind{harness.SchedSync, harness.SchedAsync},
		Starts:       []harness.StartMode{harness.StartCorrupt},
		Variants:     []harness.Variant{harness.VariantCore, harness.VariantLiteral},
		Faults:       []FaultModel{NoFault{}, Lossy{Rate: 0.2}},
		SeedsPerCell: 3,
		BaseSeed:     9,
	}
	inc := executeWithMode(t, spec, false)
	full := executeWithMode(t, spec, true)
	if !bytes.Equal(inc, full) {
		t.Fatal("variant/fault matrix JSON differs between incremental and full-rehash fingerprinting")
	}
}

// A bad drop rate must surface as the run's Err (and poison the cell's
// quality flags) instead of panicking inside a scenario worker.
func TestInvalidDropRateSurfacesAsRunError(t *testing.T) {
	m, err := Engine{}.Execute(Spec{
		Families:     []string{"gnp"},
		Sizes:        []int{10},
		Faults:       []FaultModel{badDrop{}},
		SeedsPerCell: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range m.Runs {
		if rr.Err == "" {
			t.Fatalf("run %s executed with drop rate 1.5", rr.Cell)
		}
	}
	if c := m.Cells[0]; c.Errors != 2 || c.Converged || c.Legitimate {
		t.Fatalf("cell did not report the failure: %+v", c)
	}
}

// badDrop bypasses Lossy's own validation to prove the harness-level
// guard catches it.
type badDrop struct{}

func (badDrop) Name() string { return "bad-drop" }
func (badDrop) Apply(spec harness.RunSpec, _ *rand.Rand) (harness.RunSpec, error) {
	spec.DropRate = 1.5
	return spec, nil
}
