package scenario

import (
	"bytes"
	"os"
	"testing"
)

// Satellite: the backoff axis off must be invisible — expanding the
// default 108-run matrix with an explicit Backoff=[false] axis yields
// byte-identical JSON to the committed PR-2 baseline (the axis label
// serializes empty and run seeds exclude the axis entirely).
func TestBackoffOffMatrixByteIdenticalToCommittedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full 108-run matrix")
	}
	want, err := os.ReadFile("testdata/default_matrix_pr2.json")
	if err != nil {
		t.Fatal(err)
	}
	spec := defaultMatrixSpec()
	spec.Backoff = []bool{false}
	m, err := Engine{}.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("explicit backoff-off matrix diverged from the committed baseline (len %d vs %d)",
			len(got), len(want))
	}
}

// The backoff axis expands like the other modes: cells double, the off
// label stays empty, the on label is "backoff", and the run seed never
// depends on the axis — backed-off runs draw the SAME instances as
// their static twins.
func TestBackoffAxisExpansion(t *testing.T) {
	spec := Spec{
		Families:     []string{"wheel"},
		Sizes:        []int{8},
		Backoff:      []bool{false, true},
		SeedsPerCell: 2,
		BaseSeed:     7,
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("expanded to %d runs, want 4 (2 modes x 2 seeds)", len(runs))
	}
	seeds := map[string]map[int]int64{"": {}, "on": {}}
	for _, r := range runs {
		m, ok := seeds[r.Backoff]
		if !ok {
			t.Fatalf("unexpected backoff label %q", r.Backoff)
		}
		m[r.SeedIndex] = r.Seed
	}
	if len(seeds[""]) != 2 || len(seeds["on"]) != 2 {
		t.Fatalf("mode split %d/%d, want 2/2", len(seeds[""]), len(seeds["on"]))
	}
	for i, a := range seeds[""] {
		if b := seeds["on"][i]; a != b {
			t.Fatalf("backoff axis changed run seed[%d]: %d vs %d", i, a, b)
		}
	}
	if _, err := (Spec{Families: []string{"wheel"}, Sizes: []int{8},
		Backoff: []bool{true, true}}).Expand(); err == nil {
		t.Fatal("duplicate backoff mode accepted")
	}
}

// Satellite: the steady-state decay cell — the acceptance numbers the
// scale sweep commits into BENCH_scale.json — meets its bars on the
// sweep's own instance (same runSeed inputs as ScaleSweep): the
// post-convergence message rate in the final cap-length window decays
// at least 10x against the static-window twin on the paired seed, the
// fault is injected at the deepest backoff tier (retry spacing == cap),
// and recovery re-certifies legitimately inside the budget deadline.
func TestDecayCellMeetsAcceptanceBars(t *testing.T) {
	if testing.Short() {
		t.Skip("six cap-length event-core windows plus a fault recovery")
	}
	seed := runSeed(1, Cell{Family: "star-of-cliques", N: 256}, 0)
	cell, err := decayCell("star-of-cliques", 256, seed, 3)
	if err != nil {
		t.Fatal(err)
	}
	last := len(cell.StaticPerWindow) - 1
	if last != 2 {
		t.Fatalf("observed %d windows, want 3", last+1)
	}
	if cell.DecayRatio < 10 {
		t.Fatalf("final-window decay ratio %.2f, want >= 10 (static %d vs backoff %d)",
			cell.DecayRatio, cell.StaticPerWindow[last], cell.BackoffPerWindow[last])
	}
	if cell.RetryAtFault != cell.CapWindow {
		t.Fatalf("fault injected at retry spacing %d, want the cap %d",
			cell.RetryAtFault, cell.CapWindow)
	}
	if !cell.RecoveredInBudget {
		t.Fatalf("recovery took %d rounds against budget %d without certifying",
			cell.RecoveryRounds, cell.RecoveryBudget)
	}
	if !cell.Legitimate {
		t.Fatal("post-recovery configuration not legitimate")
	}
}
