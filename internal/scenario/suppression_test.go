package scenario

import (
	"bytes"
	"testing"
)

// Tentpole: outcome equivalence of the search-traffic suppression hot
// path. The suppression axis pairs every run (seeds exclude the axis, so
// on/off cells draw identical workloads and corruptions); suppressed
// runs must reach the same legitimacy predicate and the identical Δ*+1
// degree bracket as their unsuppressed twins on the property-sweep
// families, while actually pruning traffic (suppressed > 0 and fewer
// Search-kind messages in aggregate). Exact trees and round counts may
// differ — suppression defers redundant tokens — but the paper's
// guarantee may not.
func TestSuppressionOutcomeEquivalence(t *testing.T) {
	// The ladder is never trimmed under -short: the aggregate traffic
	// assertion below needs the n=16 cells, where the Search savings
	// dominate, because at the toy sizes (8, 12) the suppressed run's
	// longer quiescence tail (the retry-period-aware stability window)
	// can offset the per-round savings.
	spec := Spec{
		Families:     []string{"wheel", "grid", "gnp"},
		Sizes:        []int{8, 12, 16},
		Suppression:  []bool{false, true},
		SeedsPerCell: 2,
		BaseSeed:     42,
	}
	m, err := Engine{}.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}

	type inst struct {
		family string
		n      int
		idx    int
	}
	type outcome struct {
		seed   int64
		bound  int
		search int64
	}
	off := map[inst]outcome{}
	var onSuppressed, onSearch, offSearch int64
	for _, rr := range m.Runs {
		if rr.Err != "" || rr.Skipped {
			t.Fatalf("run %s[%d]: err=%q skipped=%v", rr.Cell, rr.SeedIndex, rr.Err, rr.Skipped)
		}
		if !rr.Converged || !rr.Legitimate || !rr.WithinBound {
			t.Fatalf("run %s[%d] (suppress=%s): converged=%v legitimate=%v deg=%d bound=%d",
				rr.Cell, rr.SeedIndex, rr.SuppressName(), rr.Converged, rr.Legitimate,
				rr.MaxDegree, rr.DegreeBound)
		}
		if rr.Suppress == "" {
			if rr.SearchesSuppressed != 0 {
				t.Fatalf("run %s[%d]: suppression counter %d moved with the knob off",
					rr.Cell, rr.SeedIndex, rr.SearchesSuppressed)
			}
			off[inst{rr.Family, rr.N, rr.SeedIndex}] = outcome{rr.Seed, rr.DegreeBound, rr.SearchMessages}
			offSearch += rr.SearchMessages
		} else {
			onSuppressed += int64(rr.SearchesSuppressed)
			onSearch += rr.SearchMessages
		}
	}
	for _, rr := range m.Runs {
		if rr.Suppress == "" {
			continue
		}
		twin, ok := off[inst{rr.Family, rr.N, rr.SeedIndex}]
		if !ok {
			t.Fatalf("no unsuppressed twin for %s[%d]", rr.Cell, rr.SeedIndex)
		}
		if twin.seed != rr.Seed {
			t.Fatalf("suppression axis changed the run seed: %s[%d]: %d vs %d",
				rr.Cell, rr.SeedIndex, twin.seed, rr.Seed)
		}
		if twin.bound != rr.DegreeBound {
			t.Fatalf("%s[%d]: degree bracket %d with suppression vs %d without",
				rr.Cell, rr.SeedIndex, rr.DegreeBound, twin.bound)
		}
	}
	if onSuppressed == 0 {
		t.Fatal("suppression-on sweep pruned nothing")
	}
	if onSearch >= offSearch {
		t.Fatalf("suppression did not reduce Search traffic: %d on vs %d off", onSearch, offSearch)
	}
}

// Satellite: the suppression counters (and everything else) must be
// deterministic across worker counts — the workers-1-vs-N byte-identical
// JSON regression extended to a suppression-on spec, exactly as the
// original test covers the suppression-off default.
func TestSuppressionDeterminismAcrossWorkers(t *testing.T) {
	spec := tinySpec()
	spec.Suppression = []bool{false, true}
	render := func(workers int) []byte {
		m, err := Engine{Workers: workers}.Execute(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("suppression-on JSON differs between 1 and 8 workers")
	}
	if !bytes.Contains(serial, []byte(`"searchesSuppressed"`)) {
		t.Fatal("suppression-on runs serialized no suppression counters")
	}
}

// The scale sweep's committed suppression section: every ladder size is
// paired with its suppression-on twin on the identical instance, the
// twin passes the outcome-equivalence gate inside ScaleSweep, and the
// Search-kind reduction is real. The committed BENCH_scale.json carries
// the full n=256/512/1024 ladder (acceptance: >= 2x at n=512); this
// regression keeps the machinery honest at test-friendly sizes.
func TestScaleSweepSuppressionComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep")
	}
	rep, err := ScaleSweep(ScaleSpec{Sizes: []int{32, 48}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suppression) != len(rep.Cells) {
		t.Fatalf("%d suppression pairs for %d cells", len(rep.Suppression), len(rep.Cells))
	}
	for i, s := range rep.Suppression {
		c := rep.Cells[i]
		if s.N != c.N || s.Seed != c.Seed {
			t.Fatalf("pair %d misaligned: n=%d/%d seed=%d/%d", i, s.N, c.N, s.Seed, c.Seed)
		}
		if s.SearchMessagesOff != c.SearchMessages || s.MessagesOff != c.Messages {
			t.Fatalf("pair %d off columns diverge from the ladder run", i)
		}
		if !s.WithinBound || s.DegreeBound != c.DegreeBound {
			t.Fatalf("pair %d: suppressed run outside the paired bracket: %+v", i, s)
		}
		if s.SearchesSuppressed <= 0 || s.SearchReduction <= 1.5 {
			t.Fatalf("pair %d: suppression ineffective: suppressed=%d reduction=%.2f",
				i, s.SearchesSuppressed, s.SearchReduction)
		}
	}
}

// The suppression axis follows the backend-axis labeling contract: the
// off default keeps the empty (JSON-omitted) label, on cells are marked,
// seeds exclude the axis, and duplicates are rejected.
func TestSuppressionAxisExpansion(t *testing.T) {
	spec := Spec{
		Families:    []string{"wheel"},
		Sizes:       []int{8},
		Suppression: []bool{false, true},
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("expanded %d runs, want 2", len(runs))
	}
	if runs[0].Suppress != "" || runs[1].Suppress != "on" {
		t.Fatalf("labels %q/%q, want \"\"/\"on\"", runs[0].Suppress, runs[1].Suppress)
	}
	if runs[0].Seed != runs[1].Seed {
		t.Fatalf("suppression axis changed the seed: %d vs %d", runs[0].Seed, runs[1].Seed)
	}
	if runs[0].SuppressName() != "off" || runs[1].SuppressName() != "on" {
		t.Fatalf("display names %q/%q", runs[0].SuppressName(), runs[1].SuppressName())
	}
	if _, err := (Spec{Families: []string{"wheel"}, Sizes: []int{8},
		Suppression: []bool{true, true}}).Expand(); err == nil {
		t.Fatal("duplicate suppression mode accepted")
	}
}
