// Package scenario is the worker-sharded, batched scenario-matrix
// engine: it expands a declarative Spec (graph families × sizes ×
// schedulers × start modes × protocol variants × fault models × seeds)
// into a run matrix, executes the runs across GOMAXPROCS workers with a
// per-run seeded RNG for bit-reproducibility, and aggregates per-cell
// metrics (rounds, messages, exchanges, max degree vs the Δ*+1 bound)
// into a single result table with deterministic JSON output.
//
// Every run's randomness — graph construction, fault placement,
// scheduling — derives from a seed hashed from the cell coordinates and
// the seed index, so results are byte-identical across repeated
// executions and across any worker count; worker sharding only changes
// wall-clock time. internal/benchtab's experiment tables and the
// cmd/mdstmatrix CLI are thin renderers over this engine, and the
// churn/lossy/targeted fault injections are shared FaultModel values
// (fault.go) rather than per-experiment one-offs.
package scenario

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/harness"
)

// Spec declares a scenario matrix. Zero-valued axes default to a single
// canonical element (sync scheduler, corrupt start, core variant, no
// fault, one seed), so the minimal spec is Families × Sizes.
type Spec struct {
	// Families names registered graph families (graph.LookupFamily).
	Families []string
	// Sizes are the requested node counts (families may round them).
	Sizes []int
	// Schedulers defaults to [sync].
	Schedulers []harness.SchedulerKind
	// Starts defaults to [StartCorrupt]. Fault models may override the
	// declared mode (targeted/corrupt/churn faults always begin from a
	// preloaded legitimate configuration); the per-run EffectiveStart
	// field records what actually executed.
	Starts []harness.StartMode
	// Variants defaults to [VariantCore].
	Variants []harness.Variant
	// Backends defaults to [BackendSim]. Only the sim backend is
	// deterministic; live and tcp cells execute on the wall clock, so
	// their rounds/messages vary across repeats (the legitimacy and
	// degree-bound claims are what a cross-backend matrix compares).
	Backends []harness.Backend
	// Engines defaults to [EngineCompat]. The engine axis selects the sim
	// backend's execution core (compat full-sweep vs discrete-event
	// frontier scheduling); run seeds exclude it, so [compat, event]
	// yields paired comparisons on identical workloads. The compat label
	// serializes empty, keeping engine-free matrix JSON byte-identical to
	// the committed baselines. Event cells require the sim backend and
	// lossless links (harness.RunSpec.Validate).
	Engines []harness.Engine
	// Suppression defaults to [false]: each true entry runs its cells
	// with the search-traffic suppression hot path on
	// (harness.RunSpec.Suppress). Run seeds exclude this axis, so
	// [false, true] yields paired on/off comparisons on identical
	// workloads; the off label serializes empty, keeping suppression-free
	// matrix JSON byte-identical to the committed baselines.
	Suppression []bool
	// Backoff defaults to [false]: each true entry runs its cells with
	// adaptive suppression backoff on (harness.RunSpec.Backoff, which
	// implies suppression). Run seeds exclude this axis — [false, true]
	// yields paired static/adaptive comparisons on identical workloads —
	// and the off label serializes empty, keeping backoff-free matrix
	// JSON byte-identical to the committed baselines.
	Backoff []bool
	// Faults defaults to [NoFault]. Names must be unique.
	Faults []FaultModel
	// SeedsPerCell defaults to 1.
	SeedsPerCell int
	// BaseSeed perturbs every derived run seed; specs differing only in
	// BaseSeed draw disjoint instances.
	BaseSeed int64
	// MaxRounds bounds each run (zero: the harness default).
	MaxRounds int
	// TrackSafety counts rounds without a valid spanning tree in every
	// run (harness.RunSpec.TrackSafety; surfaces as RunResult.BrokenRounds).
	// Costs one tree validation per round — leave off for large matrices.
	TrackSafety bool
	// Config, if non-nil, overrides the protocol configuration per node
	// count (zero Config means the core default).
	Config func(n int) core.Config `json:"-"`
	// Tuning adjusts the wall-clock backends (tick, probe interval,
	// per-run deadline, convergence-aware Budget mode — with Budget set
	// each wall-clock cell's deadline is scaled from the paired sim
	// run's observed rounds, since run seeds exclude the backend axis);
	// the sim backend ignores it.
	Tuning harness.BackendTuning `json:"-"`
	// Metrics enables the observability plane on every run: a metrics
	// collector (stride sized to the instance: one snapshot per n
	// rounds/probe epochs) plus the hash-chained audit log, surfaced as
	// RunResult.Metrics and RunResult.AuditChain. Off (the default)
	// keeps every run on its exact pre-metrics path, so the committed
	// JSON baselines stay byte-identical.
	Metrics bool
}

// Cell identifies one aggregation cell of the matrix: every axis except
// the seed index.
type Cell struct {
	Family    string `json:"family"`
	N         int    `json:"n"`
	Scheduler string `json:"scheduler"`
	Start     string `json:"start"`
	Variant   string `json:"variant"`
	// Backend is the execution backend label. The sim default is the
	// empty string (omitted from JSON) so matrices that never leave the
	// simulator serialize exactly as they did before the backend axis
	// existed — the committed PR-2 baseline stays byte-identical.
	Backend string `json:"backend,omitempty"`
	// Engine is the sim execution-core label. The compat default is the
	// empty string (omitted from JSON, same contract as Backend) so
	// matrices that never opt into the event core serialize exactly as
	// before the engine axis existed.
	Engine string `json:"engine,omitempty"`
	// Suppress is the search-suppression axis label: "on" for suppressed
	// cells, empty (omitted from JSON, same contract as Backend) for the
	// paper-literal search schedule.
	Suppress string `json:"suppress,omitempty"`
	// Backoff is the adaptive-backoff axis label: "on" for cells running
	// the adaptive suppression window, empty (omitted from JSON, same
	// contract as Suppress) for the static window.
	Backoff string `json:"backoff,omitempty"`
	Fault   string `json:"fault"`
}

// SuppressName returns the display name of the cell's suppression mode
// ("off" for the empty default label).
func (c Cell) SuppressName() string {
	if c.Suppress == "" {
		return "off"
	}
	return c.Suppress
}

// BackoffName returns the display name of the cell's adaptive-backoff
// mode ("off" for the empty default label).
func (c Cell) BackoffName() string {
	if c.Backoff == "" {
		return "off"
	}
	return c.Backoff
}

// BackendName returns the display name of the cell's backend ("sim" for
// the empty default label).
func (c Cell) BackendName() string {
	if c.Backend == "" {
		return string(harness.BackendSim)
	}
	return c.Backend
}

// EngineName returns the display name of the cell's execution core
// ("compat" for the empty default label).
func (c Cell) EngineName() string {
	if c.Engine == "" {
		return string(harness.EngineCompat)
	}
	return c.Engine
}

func (c Cell) String() string {
	s := fmt.Sprintf("%s/n=%d/%s/%s/%s/%s",
		c.Family, c.N, c.Scheduler, c.Start, c.Variant, c.Fault)
	if c.Backend != "" {
		s += "/" + c.Backend
	}
	if c.Engine != "" {
		s += "/" + c.Engine
	}
	if c.Suppress != "" {
		s += "/suppress"
	}
	if c.Backoff != "" {
		s += "/backoff"
	}
	return s
}

// Run is one executable element of the matrix.
type Run struct {
	Cell
	SeedIndex int   `json:"seedIndex"`
	Seed      int64 `json:"seed"`
}

// normalized returns a copy with defaulted axes.
func (s Spec) normalized() Spec {
	if len(s.Schedulers) == 0 {
		s.Schedulers = []harness.SchedulerKind{harness.SchedSync}
	}
	if len(s.Starts) == 0 {
		s.Starts = []harness.StartMode{harness.StartCorrupt}
	}
	if len(s.Variants) == 0 {
		s.Variants = []harness.Variant{harness.VariantCore}
	}
	if len(s.Backends) == 0 {
		s.Backends = []harness.Backend{harness.BackendSim}
	}
	if len(s.Engines) == 0 {
		s.Engines = []harness.Engine{harness.EngineCompat}
	}
	if len(s.Suppression) == 0 {
		s.Suppression = []bool{false}
	}
	if len(s.Backoff) == 0 {
		s.Backoff = []bool{false}
	}
	if len(s.Faults) == 0 {
		s.Faults = []FaultModel{NoFault{}}
	}
	if s.SeedsPerCell <= 0 {
		s.SeedsPerCell = 1
	}
	return s
}

// validate checks the axes of a normalized spec.
func (s Spec) validate() error {
	if len(s.Families) == 0 || len(s.Sizes) == 0 {
		return fmt.Errorf("scenario: spec needs at least one family and one size")
	}
	for _, f := range s.Families {
		if _, ok := graph.LookupFamily(f); !ok {
			return fmt.Errorf("scenario: unknown graph family %q", f)
		}
	}
	for _, n := range s.Sizes {
		if n < 2 {
			return fmt.Errorf("scenario: size %d too small", n)
		}
	}
	// Unknown scheduler and variant names would silently execute as the
	// sync/core defaults while labeling the cell with the bogus name —
	// poison for a reproducibility tool, so reject them here.
	for _, k := range s.Schedulers {
		switch k {
		case harness.SchedSync, harness.SchedAsync, harness.SchedAdversarial:
		default:
			return fmt.Errorf("scenario: unknown scheduler %q", k)
		}
	}
	for _, v := range s.Variants {
		switch v {
		case harness.VariantCore, harness.VariantLiteral, "":
		default:
			return fmt.Errorf("scenario: unknown variant %q", v)
		}
	}
	seenBackend := map[harness.Backend]bool{}
	for _, b := range s.Backends {
		nb, err := harness.ParseBackend(string(b))
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if seenBackend[nb] {
			return fmt.Errorf("scenario: duplicate backend %q", nb)
		}
		seenBackend[nb] = true
	}
	seenEngine := map[harness.Engine]bool{}
	for _, e := range s.Engines {
		ne, err := harness.ParseEngine(string(e))
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if seenEngine[ne] {
			return fmt.Errorf("scenario: duplicate engine %q", ne)
		}
		seenEngine[ne] = true
		if ne == harness.EngineEvent {
			// An event cell on a wall-clock backend would fail run by run
			// deep in the workers; reject the axis combination up front.
			for _, b := range s.Backends {
				if nb, err := harness.ParseBackend(string(b)); err == nil && nb != harness.BackendSim {
					return fmt.Errorf("scenario: engine %q requires the sim backend (spec also lists %q)", ne, nb)
				}
			}
		}
	}
	seenSuppress := map[bool]bool{}
	for _, sup := range s.Suppression {
		if seenSuppress[sup] {
			return fmt.Errorf("scenario: duplicate suppression mode %v", sup)
		}
		seenSuppress[sup] = true
	}
	seenBackoff := map[bool]bool{}
	for _, bo := range s.Backoff {
		if seenBackoff[bo] {
			return fmt.Errorf("scenario: duplicate backoff mode %v", bo)
		}
		seenBackoff[bo] = true
	}
	seen := map[string]bool{}
	for _, fm := range s.Faults {
		if fm == nil {
			return fmt.Errorf("scenario: nil fault model")
		}
		if seen[fm.Name()] {
			return fmt.Errorf("scenario: duplicate fault model %q", fm.Name())
		}
		seen[fm.Name()] = true
	}
	return nil
}

// runSeed derives the per-run seed from the instance identity (family,
// size, seed index, base seed) — deliberately NOT from the scheduler,
// start, variant, backend, engine, suppression, backoff or fault axes.
// Cells that differ only in those axes
// therefore draw the SAME graph instances, so sweeps like "rounds vs
// drop rate" or "recovery cost by fault role" are paired comparisons
// on identical workloads rather than cross-instance noise. The hash —
// not the worker or completion order — is the single source of
// randomness for the run, which is what makes the matrix
// bit-reproducible under any GOMAXPROCS.
func runSeed(base int64, c Cell, idx int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d", c.Family, c.N, base, idx)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Expand enumerates the full run matrix in deterministic order (family,
// size, scheduler, start, variant, backend, engine, suppression,
// backoff, fault, seed).
func (s Spec) Expand() ([]Run, error) {
	ns := s.normalized()
	if err := ns.validate(); err != nil {
		return nil, err
	}
	var runs []Run
	for _, fam := range ns.Families {
		for _, n := range ns.Sizes {
			for _, sched := range ns.Schedulers {
				for _, start := range ns.Starts {
					for _, variant := range ns.Variants {
						if variant == "" {
							variant = harness.VariantCore
						}
						for _, backend := range ns.Backends {
							// The sim default keeps the empty label so
							// sim-only matrices serialize unchanged.
							label := string(backend)
							if backend == harness.BackendSim {
								label = ""
							}
							for _, engine := range ns.Engines {
								// Same contract: the compat default keeps
								// the empty label so engine-free matrices
								// serialize unchanged.
								engLabel := string(engine)
								if engine == harness.EngineCompat {
									engLabel = ""
								}
								for _, sup := range ns.Suppression {
									// Same contract: the off default keeps the
									// empty label so suppression-free matrices
									// serialize unchanged.
									supLabel := ""
									if sup {
										supLabel = "on"
									}
									for _, bo := range ns.Backoff {
										// Same contract again for the adaptive-
										// backoff axis.
										boLabel := ""
										if bo {
											boLabel = "on"
										}
										for _, fm := range ns.Faults {
											cell := Cell{
												Family:    fam,
												N:         n,
												Scheduler: string(sched),
												Start:     start.String(),
												Variant:   string(variant),
												Backend:   label,
												Engine:    engLabel,
												Suppress:  supLabel,
												Backoff:   boLabel,
												Fault:     fm.Name(),
											}
											for idx := 0; idx < ns.SeedsPerCell; idx++ {
												runs = append(runs, Run{
													Cell:      cell,
													SeedIndex: idx,
													Seed:      runSeed(ns.BaseSeed, cell, idx),
												})
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return runs, nil
}

// BuildGraph reconstructs the exact workload graph of a run: the
// family's builder driven by a fresh RNG seeded with the run seed,
// which is precisely how the engine drew it. Table renderers use this
// to re-derive per-instance quantities (e.g. the exact Δ* label of E1)
// without the engine having to retain every graph.
func BuildGraph(r Run) (*graph.Graph, error) {
	fam, ok := graph.LookupFamily(r.Family)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown graph family %q", r.Family)
	}
	return fam.Build(r.N, rand.New(rand.NewSource(r.Seed))), nil
}
