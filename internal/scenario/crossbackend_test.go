package scenario

import (
	"encoding/json"
	"os"
	"testing"

	"mdst/internal/harness"
)

// loadCrossBackendTable reads the committed medium-n table.
func loadCrossBackendTable(t *testing.T) []CrossBackendRow {
	t.Helper()
	b, err := os.ReadFile("testdata/crossbackend_medium.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep CrossBackendReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	return rep.Rows
}

// The committed table's shape and claims: every (size × backend) pair of
// the default preset present exactly once, suppression on everywhere,
// and every invariant column true — a row that ever shipped with
// converged=false would commit a broken claim.
func TestCrossBackendTableShape(t *testing.T) {
	rows := loadCrossBackendTable(t)
	def := CrossBackendSpec{}.normalized()
	want := len(def.Sizes) * len(harness.Backends())
	if len(rows) != want {
		t.Fatalf("committed table has %d rows, want %d", len(rows), want)
	}
	i := 0
	for _, n := range def.Sizes {
		for _, b := range harness.Backends() {
			row := rows[i]
			i++
			if row.N != n || row.Backend != string(b) {
				t.Fatalf("row %d is (n=%d, %s), want (n=%d, %s)", i-1, row.N, row.Backend, n, b)
			}
			if row.Family != def.Family || row.Suppress != "on" {
				t.Fatalf("row %d: family=%q suppress=%q", i-1, row.Family, row.Suppress)
			}
			if !row.Converged || !row.Legitimate || !row.WithinBound {
				t.Fatalf("row %d commits a broken claim: %+v", i-1, row)
			}
			if row.Edges <= 0 || row.DegreeBound <= 0 {
				t.Fatalf("row %d: missing instance columns: %+v", i-1, row)
			}
		}
	}
}

// Regenerating the preset must reproduce the committed rows. The full
// ladder's tcp n=128 cell alone costs ~30-60s of wall clock, so the
// regression re-executes the n=64..96 slice (still all three backends,
// still the identical instances — run seeds exclude both wall-clock
// axes) and compares those rows byte-for-byte with the committed file;
// `mdstmatrix -xbackend` regenerates the full table.
func TestCrossBackendTableReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock live/tcp backends at medium n")
	}
	committed := loadCrossBackendTable(t)
	rep, err := CrossBackendSweep(CrossBackendSpec{Sizes: []int{64, 96}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) > len(committed) {
		t.Fatalf("slice produced %d rows, committed table has %d", len(rep.Rows), len(committed))
	}
	for i, got := range rep.Rows {
		if got != committed[i] {
			t.Fatalf("row %d diverged from the committed table:\n got %+v\nwant %+v", i, got, committed[i])
		}
	}
}
