package scenario

import (
	"testing"

	"mdst/internal/mdstseq"
)

// Satellite: property-based sweep over random graph families × seeds —
// after stabilization from an arbitrary corrupted configuration, every
// run must satisfy the legitimacy predicate and the Δ*+1 degree
// guarantee (Theorem 2). The sweep runs through the engine, so the
// whole table executes in parallel across GOMAXPROCS workers.
func TestPropertySweepDegreeGuarantee(t *testing.T) {
	spec := Spec{
		Families:     []string{"wheel", "grid", "gnp"},
		Sizes:        []int{8, 12, 16},
		SeedsPerCell: 2,
		BaseSeed:     42,
	}
	m, err := Engine{}.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalRuns != 3*3*2 {
		t.Fatalf("expanded %d runs", m.TotalRuns)
	}
	for _, rr := range m.Runs {
		if rr.Err != "" || rr.Skipped {
			t.Fatalf("run %s[%d] failed: err=%q skipped=%v", rr.Cell, rr.SeedIndex, rr.Err, rr.Skipped)
		}
		if !rr.Converged || !rr.Legitimate {
			t.Fatalf("run %s[%d]: converged=%v legitimate=%v", rr.Cell, rr.SeedIndex, rr.Converged, rr.Legitimate)
		}
		// Engine-level bracket: deg(T) <= deg(T_FR)+1 >= Δ*+1.
		if !rr.WithinBound {
			t.Fatalf("run %s[%d]: degree %d above bracket %d", rr.Cell, rr.SeedIndex, rr.MaxDegree, rr.DegreeBound)
		}
		// Exact Δ*+1 check where the branch-and-bound solver is cheap.
		if rr.Nodes <= 14 {
			g, err := BuildGraph(rr.Run)
			if err != nil {
				t.Fatal(err)
			}
			if star, ok := mdstseq.ExactDelta(g, 2_000_000); ok {
				if rr.MaxDegree > star+1 {
					t.Fatalf("run %s[%d]: degree %d violates exact Δ*+1=%d",
						rr.Cell, rr.SeedIndex, rr.MaxDegree, star+1)
				}
			}
		}
	}
}
