package scenario

import (
	"encoding/json"
	"fmt"
	"time"

	"mdst/internal/harness"
)

// Cross-backend medium-n comparison: the committed 64..256 paired table
// that exercises the PR-4 control channel (quiescence certificates over
// the tcp side channel, concurrent probes on the live runtime) under
// real contention, enabled by the search-traffic suppression hot path
// cutting the token volume the wall-clock backends must carry and by
// the PR-6 frame coalescing letting the tcp backend keep its fast 2ms
// tick past n=128.
//
// The committed artifact (internal/scenario/testdata/
// crossbackend_medium.json) holds only the columns that are
// deterministic (family, n, edges, degreeBound — pure functions of the
// seed) or invariant claims (converged, legitimate, withinBound — the
// Theorem 2 guarantee every backend must reproduce on every repeat).
// Rounds, messages and wall time vary across wall-clock repeats and are
// deliberately absent; the cross-backend determinism contract is
// documented in ROADMAP.md (PR 3).

// CrossBackendSpec configures CrossBackendSweep. The zero value selects
// the committed defaults.
type CrossBackendSpec struct {
	Family   string // graph family (default "ring+chords")
	Sizes    []int  // node counts (default 64, 96, 128, 256)
	BaseSeed int64  // matrix base seed (default 1)
	Workers  int    // engine parallelism for the sim+live matrix
	// LiveDeadline / TCPDeadline cap each wall-clock run (defaults 60s /
	// 600s — converging runs stop at their certificate long before; the
	// tcp budget is sized by the n=256 cell, whose certificate can take
	// several minutes of single-machine wall clock under loopback
	// contention).
	LiveDeadline time.Duration
	TCPDeadline  time.Duration
	// TCPTick is the tcp cluster's gossip period (default 2ms). Before
	// frame coalescing the medium-n ladder needed a coarser 8ms tick:
	// at 2ms the one-syscall-per-message fan-out kept enough stale
	// tokens in flight that the protocol plateaued in long illegitimate
	// lulls (certify→fail→restart thrash). With the default TCPBatch
	// the same instances hold the fast tick through n=256. The live
	// backend keeps its 200µs default.
	TCPTick time.Duration
	// TCPBatch / TCPBatchWait configure the tcp transport's per-link
	// frame coalescing (defaults 32 messages / 12ms hold — heavier than
	// the BENCH_tcp.json sweet spot at n=128 because the ladder's n=256
	// cell needs the extra coalescing to certify at the 2ms tick; at
	// n=256 it measures ~0.09 frames/message). Set TCPBatch to 1 for
	// the pre-batching one-frame-per-message wire format.
	TCPBatch     int
	TCPBatchWait time.Duration
}

func (s CrossBackendSpec) normalized() CrossBackendSpec {
	if s.Family == "" {
		s.Family = "ring+chords"
	}
	if len(s.Sizes) == 0 {
		s.Sizes = []int{64, 96, 128, 256}
	}
	if s.BaseSeed == 0 {
		s.BaseSeed = 1
	}
	if s.LiveDeadline <= 0 {
		s.LiveDeadline = 60 * time.Second
	}
	if s.TCPDeadline <= 0 {
		s.TCPDeadline = 600 * time.Second
	}
	if s.TCPTick <= 0 {
		s.TCPTick = 2 * time.Millisecond
	}
	if s.TCPBatch <= 0 {
		s.TCPBatch = 32
	}
	if s.TCPBatchWait <= 0 {
		s.TCPBatchWait = 12 * time.Millisecond
	}
	return s
}

// CrossBackendRow is one (size × backend) entry of the committed table.
type CrossBackendRow struct {
	Family      string `json:"family"`
	N           int    `json:"n"`
	Edges       int    `json:"edges"`
	Backend     string `json:"backend"`
	Suppress    string `json:"suppress"`
	Converged   bool   `json:"converged"`
	Legitimate  bool   `json:"legitimate"`
	WithinBound bool   `json:"withinBound"`
	DegreeBound int    `json:"degreeBound"`
}

// CrossBackendReport is the deterministic content of the committed
// cross-backend table, plus per-row execution diagnostics that are NOT
// serialized (wall-clock variance must stay out of the artifact).
type CrossBackendReport struct {
	Rows []CrossBackendRow `json:"rows"`

	// Walls and Restarts parallel Rows — diagnostics for the CLI
	// summary, excluded from JSON like every cross-run-varying field.
	Walls    []time.Duration `json:"-"`
	Restarts []int           `json:"-"`
}

// JSON renders the committed table as deterministic indented JSON.
func (r *CrossBackendReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CrossBackendSweep executes the medium-n paired comparison: the same
// drawn instances (run seeds exclude both the backend and suppression
// axes) from the same corrupted initial configurations, with search
// suppression on, across the deterministic simulator, the
// goroutine-per-node runtime and the loopback TCP cluster. The tcp
// cells run in a second engine pass so they can carry their own coarser
// tick (see CrossBackendSpec.TCPTick) without touching the live
// backend's tuning.
func CrossBackendSweep(spec CrossBackendSpec) (*CrossBackendReport, error) {
	ns := spec.normalized()
	base := Spec{
		Families:     []string{ns.Family},
		Sizes:        ns.Sizes,
		Starts:       []harness.StartMode{harness.StartCorrupt},
		Suppression:  []bool{true},
		SeedsPerCell: 1,
		BaseSeed:     ns.BaseSeed,
	}

	simLive := base
	simLive.Backends = []harness.Backend{harness.BackendSim, harness.BackendLive}
	simLive.Tuning = harness.BackendTuning{Deadline: ns.LiveDeadline}
	m1, err := Engine{Workers: ns.Workers}.Execute(simLive)
	if err != nil {
		return nil, err
	}

	tcp := base
	tcp.Backends = []harness.Backend{harness.BackendTCP}
	tcp.Tuning = harness.BackendTuning{
		Tick:         ns.TCPTick,
		Deadline:     ns.TCPDeadline,
		BatchSize:    ns.TCPBatch,
		BatchMaxWait: ns.TCPBatchWait,
	}
	// The tcp pass runs serially: its cells are wall-clock heavy and at
	// medium n a single cluster already saturates the socket layer;
	// running two clusters concurrently would add cross-run contention.
	m2, err := Engine{Workers: 1}.Execute(tcp)
	if err != nil {
		return nil, err
	}

	type key struct {
		n       int
		backend string
	}
	index := map[key]*RunResult{}
	for _, m := range []*Matrix{m1, m2} {
		for i := range m.Runs {
			rr := &m.Runs[i]
			if rr.Err != "" {
				return nil, fmt.Errorf("scenario: cross-backend run %s failed: %s", rr.Cell, rr.Err)
			}
			index[key{rr.N, rr.BackendName()}] = rr
		}
	}

	report := &CrossBackendReport{}
	for _, n := range ns.Sizes {
		for _, b := range harness.Backends() {
			rr, ok := index[key{n, string(b)}]
			if !ok {
				return nil, fmt.Errorf("scenario: cross-backend row n=%d backend=%s missing", n, b)
			}
			report.Rows = append(report.Rows, CrossBackendRow{
				Family:      rr.Family,
				N:           rr.N,
				Edges:       rr.Edges,
				Backend:     rr.BackendName(),
				Suppress:    rr.SuppressName(),
				Converged:   rr.Converged,
				Legitimate:  rr.Legitimate,
				WithinBound: rr.WithinBound,
				DegreeBound: rr.DegreeBound,
			})
			report.Walls = append(report.Walls, rr.Wall)
			report.Restarts = append(report.Restarts, rr.Restarts)
		}
	}
	return report, nil
}
