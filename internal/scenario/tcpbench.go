package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"mdst/internal/harness"
)

// TCP transport bench: the committed BENCH_tcp.json sweep that records
// what per-link frame coalescing (netrun batching, PR 6) buys on the
// only backend with a real wire. One drawn instance (ring+chords n=128
// by default, suppression on — the medium-n sweep conditions) runs once
// per batch size over loopback TCP; the committed figures of merit are
// frames-per-message (how many syscall bursts a message costs; 1.0 at
// batch=1 by construction) and wall-time-per-round (wall clock divided
// by the paired deterministic sim run's convergence rounds — the wall
// cost of one protocol round on this transport, which batching must
// not inflate).
//
// Unlike BENCH_scale.json, every number here is wall-clock and varies
// across machines and reruns: the artifact is a recorded snapshot, NOT
// a byte-identity baseline, and is deliberately excluded from the
// `make drift` gate.

// TCPBenchSpec configures TCPBenchSweep. The zero value selects the
// committed defaults.
type TCPBenchSpec struct {
	Family   string // graph family (default "ring+chords")
	N        int    // node count (default 128)
	Batches  []int  // batch sizes to sweep (default 1, 8, 16)
	BaseSeed int64  // matrix base seed (default 1)
	// Tick is the tcp gossip period (default 2ms — the fast tick the
	// coalescing layer is meant to sustain at medium n).
	Tick time.Duration
	// BatchMaxWait is applied to every batch>1 row (default 6ms — three
	// ticks): the frame hold that lets sends from consecutive gossip
	// ticks coalesce into one frame. A hold of one tick or less only
	// packs same-tick bursts and plateaus near 0.45 frames/message;
	// three ticks reaches ~0.17 at batch=16 on the default instance.
	BatchMaxWait time.Duration
	// Deadline caps each tcp run (default 150s).
	Deadline time.Duration
}

func (s TCPBenchSpec) normalized() TCPBenchSpec {
	if s.Family == "" {
		s.Family = "ring+chords"
	}
	if s.N <= 0 {
		s.N = 128
	}
	if len(s.Batches) == 0 {
		s.Batches = []int{1, 8, 16}
	}
	if s.BaseSeed == 0 {
		s.BaseSeed = 1
	}
	if s.Tick <= 0 {
		s.Tick = 2 * time.Millisecond
	}
	if s.BatchMaxWait <= 0 {
		s.BatchMaxWait = 6 * time.Millisecond
	}
	if s.Deadline <= 0 {
		s.Deadline = 150 * time.Second
	}
	return s
}

// TCPBenchRow is one batch-size point of the sweep.
type TCPBenchRow struct {
	Batch          int     `json:"batch"`
	BatchMaxWaitMS float64 `json:"batchMaxWaitMS"`
	Converged      bool    `json:"converged"`
	Legitimate     bool    `json:"legitimate"`
	Messages       int64   `json:"messages"`
	Frames         int64   `json:"frames"`
	// FramesPerMessage = Frames/Messages — the syscall-burst cost of one
	// message (1.0 at batch=1; the headline is how far below it drops).
	FramesPerMessage float64 `json:"framesPerMessage"`
	WallMS           float64 `json:"wallMS"`
	// WallPerRoundMS = WallMS / SimRounds — the wall cost of one
	// protocol round on this transport.
	WallPerRoundMS float64 `json:"wallPerRoundMS"`
	Restarts       int     `json:"restarts"`
}

// TCPBenchReport is the content of BENCH_tcp.json.
type TCPBenchReport struct {
	Family string  `json:"family"`
	N      int     `json:"n"`
	Edges  int     `json:"edges"`
	TickMS float64 `json:"tickMS"`
	// SimRounds is the paired deterministic sim run's convergence round
	// count — same instance, same corruptions (run seeds exclude the
	// backend axis) — the denominator of every WallPerRoundMS.
	SimRounds int           `json:"simRounds"`
	Rows      []TCPBenchRow `json:"rows"`
}

// JSON renders the report as indented JSON (committed as a snapshot;
// NOT byte-stable across machines — see the package comment above).
func (r *TCPBenchReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// round3 keeps the committed floats readable (3 decimal places is well
// inside measurement noise for every reported ratio).
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

// TCPBenchSweep measures frame coalescing on the loopback TCP cluster:
// the identical corrupted instance, once per batch size, serially (a
// medium-n cluster saturates the socket layer by itself — concurrent
// clusters would contaminate the wall numbers). The paired sim run
// supplies the protocol-round denominator.
func TCPBenchSweep(spec TCPBenchSpec) (*TCPBenchReport, error) {
	ns := spec.normalized()
	cell := func(backend harness.Backend, tuning harness.BackendTuning) Spec {
		return Spec{
			Families:     []string{ns.Family},
			Sizes:        []int{ns.N},
			Starts:       []harness.StartMode{harness.StartCorrupt},
			Suppression:  []bool{true},
			SeedsPerCell: 1,
			BaseSeed:     ns.BaseSeed,
			Backends:     []harness.Backend{backend},
			Tuning:       tuning,
		}
	}

	sim, err := Engine{Workers: 1}.Execute(cell(harness.BackendSim, harness.BackendTuning{}))
	if err != nil {
		return nil, err
	}
	pair := &sim.Runs[0]
	if pair.Err != "" {
		return nil, fmt.Errorf("scenario: tcp bench sim pairing failed: %s", pair.Err)
	}
	if !pair.Converged || pair.Rounds <= 0 {
		return nil, fmt.Errorf("scenario: tcp bench sim pairing did not converge (rounds=%d)", pair.Rounds)
	}

	report := &TCPBenchReport{
		Family:    ns.Family,
		N:         ns.N,
		Edges:     pair.Edges,
		TickMS:    round3(float64(ns.Tick) / float64(time.Millisecond)),
		SimRounds: pair.Rounds,
	}
	for _, batch := range ns.Batches {
		tuning := harness.BackendTuning{
			Tick:      ns.Tick,
			Deadline:  ns.Deadline,
			BatchSize: batch,
		}
		if batch > 1 {
			tuning.BatchMaxWait = ns.BatchMaxWait
		}
		m, err := Engine{Workers: 1}.Execute(cell(harness.BackendTCP, tuning))
		if err != nil {
			return nil, err
		}
		rr := &m.Runs[0]
		if rr.Err != "" {
			return nil, fmt.Errorf("scenario: tcp bench batch=%d failed: %s", batch, rr.Err)
		}
		row := TCPBenchRow{
			Batch:          batch,
			BatchMaxWaitMS: round3(float64(tuning.BatchMaxWait) / float64(time.Millisecond)),
			Converged:      rr.Converged,
			Legitimate:     rr.Legitimate,
			Messages:       rr.Messages,
			Frames:         rr.Frames,
			WallMS:         round3(float64(rr.Wall) / float64(time.Millisecond)),
			Restarts:       rr.Restarts,
		}
		if rr.Messages > 0 {
			row.FramesPerMessage = round3(float64(rr.Frames) / float64(rr.Messages))
		}
		row.WallPerRoundMS = round3(row.WallMS / float64(pair.Rounds))
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}
