package scenario

import (
	"bytes"
	"os"
	"testing"
	"time"

	"mdst/internal/harness"
)

// Satellite: the sim backend's default 108-run matrix JSON must stay
// byte-identical to the committed PR-2 baseline — the refactor onto
// pluggable backends (and the backend axis itself, via its omitempty
// label) must be invisible to the deterministic simulator's output.
func TestSimMatrixByteIdenticalToCommittedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full 108-run matrix")
	}
	want, err := os.ReadFile("testdata/default_matrix_pr2.json")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Engine{}.Execute(defaultMatrixSpec())
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("default matrix JSON diverged from the committed PR-2 baseline (len %d vs %d)",
			len(got), len(want))
	}
}

// Satellite: cross-backend differential. One declarative spec expands
// over the backend axis; the deterministic simulator, the goroutine
// runtime and the loopback TCP cluster all run the SAME drawn instances
// (run seeds exclude the backend axis) with the SAME corrupted initial
// configurations, and every backend must converge to a legitimate
// spanning tree within the assertable Δ*+1 bracket. Tie-breaking (and
// hence the exact tree) may differ across backends; the guarantee may
// not.
func TestCrossBackendDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock live/tcp backends")
	}
	spec := Spec{
		Families:     []string{"ring+chords", "wheel"},
		Sizes:        []int{8},
		Backends:     []harness.Backend{harness.BackendSim, harness.BackendLive, harness.BackendTCP},
		SeedsPerCell: 2,
		BaseSeed:     5,
		Tuning:       harness.BackendTuning{Deadline: 60 * time.Second},
	}
	m, err := Engine{}.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalRuns != 2*3*2 {
		t.Fatalf("expanded to %d runs, want 12", m.TotalRuns)
	}

	// Paired workloads: the same (family, seed index) run draws the same
	// seed — and therefore the same graph and corruptions — on every
	// backend.
	seeds := map[[2]string]map[int]int64{}
	for _, rr := range m.Runs {
		if rr.Err != "" {
			t.Fatalf("%s seed[%d]: %s", rr.Cell, rr.SeedIndex, rr.Err)
		}
		if !rr.Converged || !rr.Legitimate || !rr.TreeValid {
			t.Fatalf("%s seed[%d] backend %q: converged=%v legit=%v tree=%v",
				rr.Cell, rr.SeedIndex, rr.BackendName(), rr.Converged, rr.Legitimate, rr.TreeValid)
		}
		if !rr.WithinBound {
			t.Fatalf("%s seed[%d] backend %q: degree %d violates bound %d",
				rr.Cell, rr.SeedIndex, rr.BackendName(), rr.MaxDegree, rr.DegreeBound)
		}
		key := [2]string{rr.Family, rr.Start}
		if seeds[key] == nil {
			seeds[key] = map[int]int64{}
		}
		if prev, ok := seeds[key][rr.SeedIndex]; ok && prev != rr.Seed {
			t.Fatalf("backend axis changed the run seed: %s idx %d: %d vs %d",
				rr.Family, rr.SeedIndex, prev, rr.Seed)
		}
		seeds[key][rr.SeedIndex] = rr.Seed
	}

	// Every backend's wall-clock cells must aggregate separately and the
	// degree guarantee must hold per cell.
	if len(m.Cells) != 6 {
		t.Fatalf("aggregated to %d cells, want 6 (2 families x 3 backends)", len(m.Cells))
	}
	for _, c := range m.Cells {
		if !c.WithinBound {
			t.Fatalf("cell %s (backend %s): outside the Δ*+1 bracket", c.Cell, c.BackendName())
		}
	}
}

// Satellite: cross-backend certificate agreement. From a preloaded
// legitimate start the protocol is silent — no register ever changes —
// so all three backends quiesce on the IDENTICAL configuration (paired
// instances: run seeds exclude the backend axis, and the preload is
// deterministic). The quiescence certificates issued by the live
// in-process probe and the tcp control-channel probe must therefore
// carry exactly the sim backend's quiesced fingerprint: one shared
// combine over one shared per-node state hash, end to end through
// three completely different observation paths.
func TestCrossBackendCertificateAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock live/tcp backends")
	}
	spec := Spec{
		Families:     []string{"wheel", "ring+chords"},
		Sizes:        []int{8},
		Starts:       []harness.StartMode{harness.StartLegitimate},
		Backends:     []harness.Backend{harness.BackendSim, harness.BackendLive, harness.BackendTCP},
		SeedsPerCell: 2,
		BaseSeed:     13,
		Tuning:       harness.BackendTuning{Deadline: 60 * time.Second},
	}
	m, err := Engine{}.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Index the sim certificates by paired instance.
	type inst struct {
		family string
		idx    int
	}
	simFP := map[inst]uint64{}
	for _, rr := range m.Runs {
		if rr.Err != "" {
			t.Fatalf("%s seed[%d]: %s", rr.Cell, rr.SeedIndex, rr.Err)
		}
		if rr.Cert == nil {
			t.Fatalf("%s seed[%d] backend %q: converged=%v without a certificate",
				rr.Cell, rr.SeedIndex, rr.BackendName(), rr.Converged)
		}
		if rr.BackendName() == string(harness.BackendSim) {
			simFP[inst{rr.Family, rr.SeedIndex}] = rr.Cert.Fingerprint
		}
	}
	for _, rr := range m.Runs {
		if rr.BackendName() == string(harness.BackendSim) {
			continue
		}
		want, ok := simFP[inst{rr.Family, rr.SeedIndex}]
		if !ok {
			t.Fatalf("no paired sim run for %s seed[%d]", rr.Cell, rr.SeedIndex)
		}
		if rr.Cert.Fingerprint != want {
			t.Fatalf("%s seed[%d] backend %q: certificate fingerprint %x != sim quiesced fingerprint %x",
				rr.Cell, rr.SeedIndex, rr.BackendName(), rr.Cert.Fingerprint, want)
		}
		if rr.Cert.Backend != rr.BackendName() {
			t.Fatalf("certificate backend %q on a %q run", rr.Cert.Backend, rr.BackendName())
		}
		if rr.Restarts != 0 {
			t.Fatalf("%s seed[%d] backend %q: %d restarts from a legitimate start",
				rr.Cell, rr.SeedIndex, rr.BackendName(), rr.Restarts)
		}
	}
}

// The wall-clock backends reject sim-only features loudly instead of
// silently running a different experiment than the cell label claims.
func TestBackendSimOnlyFeaturesSurfaceAsRunErrors(t *testing.T) {
	m, err := Engine{}.Execute(Spec{
		Families:     []string{"wheel"},
		Sizes:        []int{8},
		Backends:     []harness.Backend{harness.BackendLive},
		Faults:       []FaultModel{Lossy{Rate: 0.1}},
		SeedsPerCell: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range m.Runs {
		if rr.Err == "" {
			t.Fatalf("lossy fault executed on the live backend: %+v", rr)
		}
	}
	m, err = Engine{}.Execute(Spec{
		Families:     []string{"wheel"},
		Sizes:        []int{8},
		Backends:     []harness.Backend{harness.BackendTCP},
		Faults:       []FaultModel{Churn{Op: harness.ChurnOps()[0]}},
		SeedsPerCell: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range m.Runs {
		if rr.Err == "" && !rr.Skipped {
			t.Fatalf("churn executed on the tcp backend: %+v", rr)
		}
	}
}

// The backend axis itself is validated at expansion time.
func TestSpecRejectsBadBackends(t *testing.T) {
	if _, err := (Spec{Families: []string{"wheel"}, Sizes: []int{8},
		Backends: []harness.Backend{"quantum"}}).Expand(); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := (Spec{Families: []string{"wheel"}, Sizes: []int{8},
		Backends: []harness.Backend{harness.BackendSim, harness.BackendSim}}).Expand(); err == nil {
		t.Fatal("duplicate backend accepted")
	}
}
