package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"mdst/internal/core"
	"mdst/internal/harness"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// A FaultModel perturbs one run of the matrix. Most models rewrite the
// base RunSpec (lossy links set a drop rate, targeted faults pick the
// nodes to corrupt); models that must control the whole run lifecycle —
// churn stabilizes, mutates the topology, migrates and re-runs — also
// implement Executor. The models here are the first-class versions of
// the fault injections that used to live as one-offs in the E8/E9/E10
// loops of internal/benchtab; benchtab and the matrix CLI now share
// them through this interface.
type FaultModel interface {
	// Name is the model's stable identifier; it labels the matrix cell
	// and must be unique within a Spec (e.g. "lossy:0.05").
	Name() string
	// Apply rewrites the base spec for this fault. rng is the run's
	// private seeded RNG (shared with graph construction), so every
	// random choice is reproducible from the run seed alone.
	Apply(spec harness.RunSpec, rng *rand.Rand) (harness.RunSpec, error)
}

// Executor is implemented by fault models that replace the default
// harness.Run execution entirely.
type Executor interface {
	FaultModel
	Execute(spec harness.RunSpec, rng *rand.Rand) (harness.Result, error)
}

// ErrNotApplicable is returned by a fault model when the drawn instance
// admits no applicable fault (e.g. churn on a graph with no removable
// edge); the engine records the run as skipped rather than failed.
var ErrNotApplicable = errors.New("scenario: fault not applicable to this instance")

// NoFault is the identity model: the run executes exactly as specified.
type NoFault struct{}

// Name implements FaultModel.
func (NoFault) Name() string { return "none" }

// Apply implements FaultModel.
func (NoFault) Apply(spec harness.RunSpec, _ *rand.Rand) (harness.RunSpec, error) {
	return spec, nil
}

// Lossy drops each delivery independently with probability Rate,
// violating the paper's reliable-link assumption (extension E9).
type Lossy struct {
	Rate float64
}

// Name implements FaultModel.
func (f Lossy) Name() string {
	return "lossy:" + strconv.FormatFloat(f.Rate, 'g', -1, 64)
}

// Apply implements FaultModel.
func (f Lossy) Apply(spec harness.RunSpec, _ *rand.Rand) (harness.RunSpec, error) {
	if f.Rate < 0 || f.Rate >= 1 {
		return spec, fmt.Errorf("scenario: lossy rate %v out of [0,1)", f.Rate)
	}
	spec.DropRate = f.Rate
	return spec, nil
}

// CorruptRandom preloads a legitimate configuration and corrupts K
// uniformly random nodes (the E5 fault-recovery shape).
type CorruptRandom struct {
	K int
}

// Name implements FaultModel.
func (f CorruptRandom) Name() string { return "corrupt:" + strconv.Itoa(f.K) }

// Apply implements FaultModel.
func (f CorruptRandom) Apply(spec harness.RunSpec, _ *rand.Rand) (harness.RunSpec, error) {
	spec.Start = harness.StartLegitimate
	spec.CorruptNodes = f.K
	return spec, nil
}

// TargetRole names a fault location on the preloaded legitimate tree.
// The paper's Definition 1 treats all corruptions alike; operationally
// it matters WHERE the fault hits (extension E8): corrupting the root
// can re-trigger the global election, a leaf is nearly free.
type TargetRole string

// Fault locations.
const (
	RoleRoot    TargetRole = "root"
	RoleLeaf    TargetRole = "deepest-leaf"
	RoleMaxDeg  TargetRole = "max-degree"
	RoleRandom  TargetRole = "random"
	RoleParents TargetRole = "root+children"
)

// TargetRoles returns the roles in display order.
func TargetRoles() []TargetRole {
	return []TargetRole{RoleRoot, RoleLeaf, RoleMaxDeg, RoleRandom, RoleParents}
}

// PickTargets resolves a role to concrete node IDs on the preloaded
// fixed-point tree.
func PickTargets(tree *spanning.Tree, role TargetRole, rng *rand.Rand) []int {
	switch role {
	case RoleRoot:
		return []int{tree.Root()}
	case RoleLeaf:
		deepest, depth := 0, -1
		for v := 0; v < tree.Graph().N(); v++ {
			if d := tree.Depth(v); d > depth {
				deepest, depth = v, d
			}
		}
		return []int{deepest}
	case RoleMaxDeg:
		k := tree.MaxDegree()
		for v := 0; v < tree.Graph().N(); v++ {
			if tree.Degree(v) == k {
				return []int{v}
			}
		}
		return []int{0}
	case RoleParents:
		out := []int{tree.Root()}
		out = append(out, tree.Children(tree.Root())...)
		return out
	default:
		return []int{rng.Intn(tree.Graph().N())}
	}
}

// Targeted preloads a legitimate configuration and corrupts the node(s)
// holding the named role on the preloaded tree.
type Targeted struct {
	Role TargetRole
}

// Name implements FaultModel.
func (f Targeted) Name() string { return "targeted:" + string(f.Role) }

// Apply implements FaultModel. The preload tree is computed here to
// pick the role and again inside harness.Run's Preload; the
// duplication is deliberate — threading the tree through RunSpec would
// couple the harness API to this model, and the sequential reduction
// is cheap at matrix sizes.
func (f Targeted) Apply(spec harness.RunSpec, rng *rand.Rand) (harness.RunSpec, error) {
	tree, err := harness.PreloadTree(spec.Graph)
	if err != nil {
		return spec, err
	}
	spec.Start = harness.StartLegitimate
	spec.CorruptTargets = PickTargets(tree, f.Role, rng)
	return spec, nil
}

// Churn is the topology-churn fault (extension E10, the paper's §6 open
// problem): the run stabilizes on the drawn graph, the named operation
// mutates the topology, all node state migrates onto the new graph, and
// the protocol re-stabilizes. The reported metrics are those of the
// re-stabilization on the new topology.
type Churn struct {
	Op harness.ChurnOp
}

// Name implements FaultModel.
func (f Churn) Name() string { return "churn:" + string(f.Op) }

// Apply implements FaultModel (identity; Churn executes via Execute).
func (f Churn) Apply(spec harness.RunSpec, _ *rand.Rand) (harness.RunSpec, error) {
	return spec, nil
}

// Execute implements Executor.
func (f Churn) Execute(spec harness.RunSpec, rng *rand.Rand) (harness.Result, error) {
	if spec.Variant == harness.VariantLiteral {
		return harness.Result{}, fmt.Errorf("scenario: churn supports only the core variant")
	}
	if spec.Backend != "" && spec.Backend != harness.BackendSim {
		// The stabilize→mutate→migrate→re-run cycle drives sim.Network
		// directly; running it under a wall-clock backend would silently
		// execute a different experiment than the cell label claims.
		return harness.Result{}, fmt.Errorf("scenario: churn requires the sim backend (got %q)", spec.Backend)
	}
	g := spec.Graph
	n := g.N()
	cfg := spec.Config
	if cfg.MaxDist == 0 {
		cfg = core.DefaultConfig(n)
	}
	if spec.Suppress {
		cfg.SuppressSearches = true
	}
	net := core.BuildNetwork(g, cfg, spec.Seed)
	if err := harness.Preload(g, core.NodesOf(net), cfg); err != nil {
		return harness.Result{}, err
	}
	tree, err := core.ExtractTree(g, core.NodesOf(net))
	if err != nil {
		return harness.Result{}, err
	}
	newG, _, ok := harness.ApplyChurn(g, tree, f.Op, rng)
	if !ok {
		return harness.Result{}, ErrNotApplicable
	}
	newNet, err := harness.Migrate(net, newG, cfg, spec.Seed+1)
	if err != nil {
		return harness.Result{}, err
	}
	if spec.DropRate > 0 {
		newNet.SetDropRate(spec.DropRate)
	}
	maxRounds := spec.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200*n + 20000
	}
	quiesce := harness.QuiesceWindowRounds(n, cfg.EffectiveRetryPeriod())
	var res sim.RunResult
	if spec.Engine == harness.EngineEvent {
		// Mirror harness.RunSpec.Validate: the event core requires
		// reliable links (parked senders never re-send lost gossip).
		if spec.DropRate > 0 {
			return harness.Result{}, fmt.Errorf("scenario: churn with lossy links requires the compat engine")
		}
		res = newNet.RunEvents(sim.EventConfig{
			Policy:        harness.EventPolicyFor(spec.Scheduler),
			MaxRounds:     maxRounds,
			QuiesceRounds: quiesce,
			ActiveKinds:   core.ReductionKinds(),
		})
	} else {
		res = newNet.Run(sim.RunConfig{
			Scheduler:     harness.NewScheduler(spec.Scheduler),
			MaxRounds:     maxRounds,
			QuiesceRounds: quiesce,
			ActiveKinds:   core.ReductionKinds(),
		})
	}
	nodes := core.NodesOf(newNet)
	st := core.AggregateStats(nodes)
	out := harness.Result{
		Backend:            harness.BackendSim,
		Converged:          res.Converged,
		Rounds:             res.Rounds,
		LastChange:         res.LastChangeRound,
		Legit:              core.CheckLegitimacy(newG, nodes),
		Metrics:            newNet.Metrics(),
		MaxStateBits:       newNet.MaxStateBits(),
		Dropped:            newNet.Dropped(),
		Exchanges:          st.ExchangesComplete,
		Aborts:             st.ChainsAborted,
		SearchesSuppressed: st.SearchesSuppressed,
	}
	for _, c := range out.Metrics.SentByKind {
		out.TotalMessages += c
	}
	if t, err := core.ExtractTree(newG, nodes); err == nil {
		out.Tree = t
	}
	return out, nil
}

// ParseFault resolves a fault-model name as accepted by the matrix CLI:
// none | lossy:RATE | corrupt:K | targeted:ROLE | churn:OP.
func ParseFault(s string) (FaultModel, error) {
	name, arg, _ := strings.Cut(s, ":")
	switch name {
	case "none", "":
		return NoFault{}, nil
	case "lossy":
		rate, err := strconv.ParseFloat(arg, 64)
		if err != nil || rate < 0 || rate >= 1 {
			return nil, fmt.Errorf("scenario: bad lossy rate %q (want [0,1))", arg)
		}
		return Lossy{Rate: rate}, nil
	case "corrupt":
		k, err := strconv.Atoi(arg)
		if err != nil || k < 0 {
			return nil, fmt.Errorf("scenario: bad corrupt count %q", arg)
		}
		return CorruptRandom{K: k}, nil
	case "targeted":
		for _, r := range TargetRoles() {
			if string(r) == arg {
				return Targeted{Role: r}, nil
			}
		}
		return nil, fmt.Errorf("scenario: unknown target role %q", arg)
	case "churn":
		for _, op := range harness.ChurnOps() {
			if string(op) == arg {
				return Churn{Op: op}, nil
			}
		}
		return nil, fmt.Errorf("scenario: unknown churn op %q", arg)
	}
	return nil, fmt.Errorf("scenario: unknown fault model %q", s)
}

// ParseFaults resolves a comma-separated fault list.
func ParseFaults(list string) ([]FaultModel, error) {
	var out []FaultModel
	for _, s := range strings.Split(list, ",") {
		f, err := ParseFault(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
