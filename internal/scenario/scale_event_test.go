package scenario

import (
	"bytes"
	"testing"
)

// The scale sweep's event ladder: StartPath closure runs on the
// discrete-event core. The committed BENCH_scale.json carries the
// n=4096/16384 cells; this regression keeps the machinery honest at
// test-friendly sizes — the acceptance gate (converged + legitimate +
// within Δ*+1 + certified) is enforced inside ScaleSweep itself, so the
// test checks the recorded figures of merit.
func TestScaleSweepEventLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep")
	}
	rep, err := ScaleSweep(ScaleSpec{Sizes: []int{32}, EventSizes: []int{256, 512}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Event) != 2 {
		t.Fatalf("%d event cells, want 2", len(rep.Event))
	}
	for _, c := range rep.Event {
		if !c.Converged || !c.Certified || !c.WithinBound {
			t.Fatalf("n=%d: acceptance flags not recorded: %+v", c.N, c)
		}
		// Below seqBoundMaxN the bound comes from the FR oracle (deg+1,
		// possibly 4 on ring+chords); above it, from the canonical-ring
		// witness (3). The closure tree is the degree-2 optimum either way.
		if c.MaxDegree != 2 || c.DegreeBound < 3 {
			t.Fatalf("n=%d: closure run degree %d / bound %d, want 2 / >=3",
				c.N, c.MaxDegree, c.DegreeBound)
		}
		if c.LastChange != 0 {
			t.Fatalf("n=%d: path preload is not a fixed point (last change %d)",
				c.N, c.LastChange)
		}
		// The frontier figure of merit: the compat core executes >= 1
		// tick per node per round through the whole quiescence window;
		// the parked event core must be far below that floor.
		if c.TailRounds <= 0 || c.TailEventsPerNodeRound >= 0.1 {
			t.Fatalf("n=%d: tail work not sub-linear: %d events over %d rounds (%.4f/node/round)",
				c.N, c.TailEvents, c.TailRounds, c.TailEventsPerNodeRound)
		}
		// The window itself must still be a real 2n+Θ(1) certificate span,
		// fast-forwarded rather than skipped.
		if c.Rounds < 2*c.N {
			t.Fatalf("n=%d: quiescence window too short: %d rounds", c.N, c.Rounds)
		}
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"tailEventsPerNodeRound"`)) {
		t.Fatal("event ladder not serialized into the scale report")
	}
}
