package scenario

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"mdst/internal/core"
	"mdst/internal/detect"
	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/mdstseq"
	"mdst/internal/metrics"
)

// Engine executes scenario matrices. The zero value uses GOMAXPROCS
// workers.
type Engine struct {
	// Workers is the number of concurrent run executors (<= 0 means
	// GOMAXPROCS). The worker count never affects results, only wall
	// time: runs are seeded individually and aggregated in matrix order.
	Workers int
}

// Default returns an engine sized to the machine.
func Default() Engine { return Engine{} }

// RunResult is the outcome of one run of the matrix.
type RunResult struct {
	Run
	// Skipped: the fault model was not applicable to the drawn instance.
	Skipped bool `json:"skipped,omitempty"`
	// Err is a non-empty execution error (the run carries no metrics).
	Err string `json:"err,omitempty"`

	// EffectiveStart is the start mode actually executed. Fault models
	// may override the declared axis (targeted/corrupt/churn faults
	// always begin from a preloaded legitimate configuration); the cell
	// keeps the declared label, this field records the truth.
	EffectiveStart string `json:"effectiveStart"`

	Nodes      int   `json:"nodes"`
	Edges      int   `json:"edges"`
	Converged  bool  `json:"converged"`
	Legitimate bool  `json:"legitimate"`
	TreeValid  bool  `json:"treeValid"`
	FixedPoint bool  `json:"fixedPoint"`
	Rounds     int   `json:"rounds"`
	LastChange int   `json:"lastChange"`
	Messages   int64 `json:"messages"`
	Exchanges  int   `json:"exchanges"`
	Aborts     int   `json:"aborts"`
	Dropped    int64 `json:"dropped"`
	// SearchesSuppressed counts Search launches and token arrivals pruned
	// by the suppression module — zero and omitted from JSON unless the
	// run's cell enabled the suppression axis, so suppression-free matrix
	// output (including the committed PR-2 baseline) is byte-identical.
	SearchesSuppressed int `json:"searchesSuppressed,omitempty"`
	// Corrupted is the number of nodes the fault model corrupted after
	// preloading (targeted and corrupt-k models).
	Corrupted int `json:"corrupted"`
	// MaxDegree is deg(T) of the stabilized tree, or -1 if none formed.
	MaxDegree int `json:"maxDegree"`
	// DegreeBound is the assertable Δ*+1 bracket deg(T_FR)+1 (Δ* <=
	// deg(T_FR), so deg(T) <= Δ*+1 implies deg(T) <= DegreeBound) on the
	// run's final topology.
	DegreeBound int `json:"degreeBound"`
	// WithinBound asserts MaxDegree <= DegreeBound.
	WithinBound bool `json:"withinBound"`

	// Programmatic fields for table renderers (benchtab E3/E4/E11) and
	// the scale sweep. Excluded from JSON so the committed matrix output
	// stays byte-identical with earlier revisions.
	MaxStateBits          int    `json:"-"` // max per-node state bits (E3)
	MaxMsgWords           int    `json:"-"` // largest message, in words (E4)
	MaxMsgKind            string `json:"-"` // kind of that largest message
	BrokenRounds          int    `json:"-"` // rounds without a valid tree (Spec.TrackSafety)
	FingerprintRecomputes int64  `json:"-"` // per-node state hashes for quiescence detection
	SearchMessages        int64  `json:"-"` // Search-kind sends (sim backend; the suppression figure of merit)
	// Events and TailEvents are the event-core figures of merit: total
	// executed simulator events, and how many of them came after the last
	// state change. Tail events divided by the quiescence window bound
	// the per-round work once the frontier has emptied — the sub-linear
	// claim of the event engine (compat cells fill them too, for paired
	// comparison).
	Events     int64 `json:"-"`
	TailEvents int64 `json:"-"`
	// Wall is the run's wall-clock duration — excluded from JSON (the
	// harness.Result json:"-" pattern) so output stays byte-identical
	// across machines; only the wall-clock backends make it meaningful.
	Wall time.Duration `json:"-"`
	// Frames counts wire frames the tcp backend flushed (zero elsewhere);
	// Frames/Messages is the coalescing ratio TCPBenchSweep reports.
	Frames int64 `json:"-"`
	// Cert is the quiescence certificate that decided convergence
	// (internal/detect; nil when the run never certified). Excluded from
	// JSON like every cross-run-varying field, so the committed sim
	// matrix baseline stays byte-identical.
	Cert *detect.Certificate `json:"-"`
	// Restarts counts wall-clock driver resumptions after a certified
	// stop that was not legitimate (zero on converging runs).
	Restarts int `json:"-"`
	// Metrics is the run's sampled snapshot stream and AuditChain the
	// hex-rendered mutation hash-chain head (Spec.Metrics); both empty
	// and omitted from JSON when the observability plane is off, so the
	// committed matrix baselines stay byte-identical.
	Metrics    []metrics.Snapshot `json:"metrics,omitempty"`
	AuditChain string             `json:"auditChain,omitempty"`
}

// CellResult aggregates the runs of one cell. Boolean fields hold over
// every completed run (vacuously true when all runs were skipped,
// false when any run errored); averages and maxima are over completed
// runs only.
type CellResult struct {
	Cell
	Runs    int `json:"runs"` // completed runs
	Skipped int `json:"skippedRuns,omitempty"`
	Errors  int `json:"errorRuns,omitempty"`

	Converged   bool    `json:"converged"`
	Legitimate  bool    `json:"legitimate"`
	TreeOK      bool    `json:"treeOK"`
	FixedPoint  bool    `json:"fixedPoint"`
	WithinBound bool    `json:"withinBound"`
	RoundsAvg   float64 `json:"roundsAvg"`
	RoundsMax   int     `json:"roundsMax"`
	MessagesAvg float64 `json:"messagesAvg"`
	ExchangeAvg float64 `json:"exchangesAvg"`
	DroppedAvg  float64 `json:"droppedAvg"`
	// SuppressedAvg is the mean SearchesSuppressed over completed runs —
	// zero and omitted from JSON for suppression-off cells (baseline
	// byte-identity contract).
	SuppressedAvg float64 `json:"searchesSuppressedAvg,omitempty"`
	Corrupted     int     `json:"corrupted"`   // max over runs
	MaxDegree     int     `json:"maxDegree"`   // worst over runs (-1: none)
	DegreeBound   int     `json:"degreeBound"` // max over runs
	Nodes         int     `json:"nodes"`       // max over runs
	Edges         int     `json:"edges"`       // max over runs
}

// Matrix is the executed scenario matrix: the per-cell aggregate table
// plus every per-run result, both in deterministic expansion order.
type Matrix struct {
	TotalRuns int          `json:"totalRuns"`
	Cells     []CellResult `json:"cells"`
	Runs      []RunResult  `json:"runs"`

	// Elapsed and Workers describe the execution, not the results; they
	// are excluded from JSON so output stays byte-identical across
	// machines and worker counts.
	Elapsed time.Duration `json:"-"`
	Workers int           `json:"-"`
}

// JSON renders the matrix as deterministic indented JSON (stable field
// order, no maps, no timing).
func (m *Matrix) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Execute expands and runs the matrix across the engine's workers.
func (e Engine) Execute(spec Spec) (*Matrix, error) {
	start := time.Now()
	ns := spec.normalized()
	runs, err := ns.Expand()
	if err != nil {
		return nil, err
	}
	faults := make(map[string]FaultModel, len(ns.Faults))
	for _, fm := range ns.Faults {
		faults[fm.Name()] = fm
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]RunResult, len(runs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = executeRun(ns, faults[runs[i].Fault], runs[i])
			}
		}()
	}
	for i := range runs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	m := aggregate(results)
	m.Elapsed = time.Since(start)
	m.Workers = workers
	return m, nil
}

// executeRun performs one run: draw the graph from the run seed, apply
// the fault model, execute, and summarize.
func executeRun(spec Spec, fault FaultModel, r Run) RunResult {
	out := RunResult{Run: r, MaxDegree: -1}
	fam, ok := graph.LookupFamily(r.Family)
	if !ok {
		out.Err = fmt.Sprintf("unknown family %q", r.Family)
		return out
	}
	start, err := harness.ParseStartMode(r.Start)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	backend, err := harness.ParseBackend(r.Backend)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	engine, err := harness.ParseEngine(r.Engine)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	rng := rand.New(rand.NewSource(r.Seed))
	g := fam.Build(r.N, rng)
	out.Nodes, out.Edges = g.N(), g.M()

	base := harness.RunSpec{
		Graph:       g,
		Scheduler:   harness.SchedulerKind(r.Scheduler),
		Start:       start,
		Variant:     harness.Variant(r.Variant),
		Seed:        r.Seed,
		MaxRounds:   spec.MaxRounds,
		TrackSafety: spec.TrackSafety,
		Backend:     backend,
		Engine:      engine,
		Tuning:      spec.Tuning,
		Suppress:    r.Suppress != "",
		Backoff:     r.Backoff != "",
	}
	if spec.Config != nil {
		base.Config = spec.Config(g.N())
	}
	var coll *metrics.Collector
	if spec.Metrics {
		stride := g.N()
		if stride < 1 {
			stride = 1
		}
		coll = &metrics.Collector{Every: stride}
		base.Collect = coll
		base.Audit = true
	}

	var res harness.Result
	if ex, isEx := fault.(Executor); isEx {
		// Churn-style executors always begin from a preloaded
		// legitimate configuration.
		out.EffectiveStart = harness.StartLegitimate.String()
		res, err = ex.Execute(base, rng)
		if err == ErrNotApplicable {
			out.Skipped = true
			return out
		}
		if err != nil {
			out.Err = err.Error()
			return out
		}
	} else {
		base, err = fault.Apply(base, rng)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		out.EffectiveStart = base.Start.String()
		// Upper bound on corrupted nodes: the harness corrupts at most n
		// random nodes, and explicit targets could in principle overlap
		// them (no shipped model sets both).
		corrupted := len(base.CorruptTargets)
		if k := base.CorruptNodes; k > 0 {
			if k > g.N() {
				k = g.N()
			}
			corrupted += k
		}
		if corrupted > g.N() {
			corrupted = g.N()
		}
		out.Corrupted = corrupted
		// An invalid spec (e.g. an out-of-range drop rate) surfaces as the
		// run's Err instead of panicking inside a worker.
		res, err = harness.Run(base)
		if err != nil {
			out.Err = err.Error()
			return out
		}
	}

	out.Converged = res.Converged
	out.Legitimate = res.Legit.OK()
	out.TreeValid = res.Legit.TreeValid
	out.FixedPoint = res.Legit.FixedPoint
	out.Rounds = res.Rounds
	out.LastChange = res.LastChange
	out.Messages = res.TotalMessages
	out.Exchanges = res.Exchanges
	out.Aborts = res.Aborts
	out.Dropped = res.Dropped
	out.SearchesSuppressed = res.SearchesSuppressed
	out.MaxStateBits = res.MaxStateBits
	out.BrokenRounds = res.BrokenRounds
	out.Wall = res.WallTime
	out.Frames = res.Frames
	out.Cert = res.Cert
	out.Restarts = res.Restarts
	if coll != nil {
		out.Metrics = coll.Snapshots()
		out.AuditChain = fmt.Sprintf("%016x", res.AuditChain)
	}
	if res.Metrics != nil {
		out.MaxMsgWords = res.Metrics.MaxMsgSize
		out.MaxMsgKind = res.Metrics.MaxMsgSizeKind
		out.FingerprintRecomputes = res.Metrics.FingerprintRecomputes
		out.SearchMessages = res.Metrics.SentByKind[core.KindSearch]
		out.Events = res.Metrics.Events
		out.TailEvents = res.Metrics.Events - res.Metrics.EventsAtLastChange
	}
	if res.Tree != nil {
		finalG := res.Tree.Graph() // churn re-stabilizes on a mutated graph
		out.Nodes, out.Edges = finalG.N(), finalG.M()
		out.MaxDegree = res.Tree.MaxDegree()
		out.DegreeBound = degreeBound(r.Family, finalG, finalG == g)
		out.WithinBound = out.MaxDegree <= out.DegreeBound
	} else {
		out.DegreeBound = degreeBound(r.Family, g, true)
	}
	return out
}

// seqBoundMaxN is the largest instance the per-run Fürer–Raghavachari
// oracle is run on to compute DegreeBound. The oracle's local search is
// polynomial but far from linear (minutes at n=1024 on ring+chords), so
// beyond this size degreeBound falls back to the family's constructive
// Δ* witness where one exists. Every committed baseline sits below the
// cap, so their degreeBound columns keep the oracle's (possibly looser)
// deg(T_FR)+1 value byte for byte.
const seqBoundMaxN = 2048

// degreeBound computes RunResult.DegreeBound for a run on graph g.
// unmutated reports that g is the family-built instance (false after
// churn rewires the topology, which can remove the witness edges).
func degreeBound(family string, g *graph.Graph, unmutated bool) int {
	if unmutated && g.N() > seqBoundMaxN {
		if f, ok := graph.LookupFamily(family); ok && f.CanonicalRing {
			return 3 // Δ*+1 from the canonical-ring witness (Δ* = 2)
		}
	}
	return mdstseq.Approximate(g).MaxDegree() + 1
}

// aggregate folds run results into per-cell rows, preserving expansion
// order.
func aggregate(results []RunResult) *Matrix {
	m := &Matrix{TotalRuns: len(results), Runs: results}
	index := map[Cell]int{}
	for _, rr := range results {
		ci, seen := index[rr.Cell]
		if !seen {
			ci = len(m.Cells)
			index[rr.Cell] = ci
			m.Cells = append(m.Cells, CellResult{
				Cell: rr.Cell, Converged: true, Legitimate: true,
				TreeOK: true, FixedPoint: true, WithinBound: true,
				MaxDegree: -1,
			})
		}
		c := &m.Cells[ci]
		// Instance dimensions are known even for skipped/errored runs
		// (the graph was drawn before the fault applied); aggregate them
		// first so an all-skipped cell still reports its real n and m.
		if rr.Nodes > c.Nodes {
			c.Nodes = rr.Nodes
		}
		if rr.Edges > c.Edges {
			c.Edges = rr.Edges
		}
		if rr.Skipped {
			c.Skipped++
			continue
		}
		if rr.Err != "" {
			// An errored run produced no tree: every quality claim of
			// the cell is false, not vacuously true.
			c.Errors++
			c.Converged = false
			c.Legitimate = false
			c.TreeOK = false
			c.FixedPoint = false
			c.WithinBound = false
			continue
		}
		c.Runs++
		c.Converged = c.Converged && rr.Converged
		c.Legitimate = c.Legitimate && rr.Legitimate
		c.TreeOK = c.TreeOK && rr.TreeValid
		c.FixedPoint = c.FixedPoint && rr.FixedPoint
		c.WithinBound = c.WithinBound && rr.WithinBound
		c.RoundsAvg += float64(rr.LastChange)
		if rr.LastChange > c.RoundsMax {
			c.RoundsMax = rr.LastChange
		}
		c.MessagesAvg += float64(rr.Messages)
		c.ExchangeAvg += float64(rr.Exchanges)
		c.DroppedAvg += float64(rr.Dropped)
		c.SuppressedAvg += float64(rr.SearchesSuppressed)
		if rr.Corrupted > c.Corrupted {
			c.Corrupted = rr.Corrupted
		}
		if rr.MaxDegree > c.MaxDegree {
			c.MaxDegree = rr.MaxDegree
		}
		if rr.DegreeBound > c.DegreeBound {
			c.DegreeBound = rr.DegreeBound
		}
	}
	for i := range m.Cells {
		if n := m.Cells[i].Runs; n > 0 {
			m.Cells[i].RoundsAvg /= float64(n)
			m.Cells[i].MessagesAvg /= float64(n)
			m.Cells[i].ExchangeAvg /= float64(n)
			m.Cells[i].DroppedAvg /= float64(n)
			m.Cells[i].SuppressedAvg /= float64(n)
		}
	}
	return m
}

// RenderTable returns an aligned plain-text rendering of the cell table.
func (m *Matrix) RenderTable() string {
	cols := []string{"family", "n", "sched", "start", "variant", "backend",
		"engine", "suppr", "backoff", "fault", "runs", "conv", "legit", "rounds(avg)", "rounds(max)",
		"msgs(avg)", "suppr(avg)", "deg", "bound", "within"}
	rows := make([][]string, 0, len(m.Cells))
	for _, c := range m.Cells {
		rows = append(rows, []string{
			c.Family, fmt.Sprintf("%d", c.Nodes), c.Scheduler, c.Start,
			c.Variant, c.BackendName(), c.EngineName(), c.SuppressName(), c.BackoffName(), c.Fault,
			fmt.Sprintf("%d", c.Runs),
			fmt.Sprintf("%v", c.Converged), fmt.Sprintf("%v", c.Legitimate),
			fmt.Sprintf("%.1f", c.RoundsAvg), fmt.Sprintf("%d", c.RoundsMax),
			fmt.Sprintf("%.0f", c.MessagesAvg), fmt.Sprintf("%.0f", c.SuppressedAvg),
			fmt.Sprintf("%d", c.MaxDegree),
			fmt.Sprintf("%d", c.DegreeBound), fmt.Sprintf("%v", c.WithinBound),
		})
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(cols)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns a comma-separated rendering of the cell table.
func (m *Matrix) CSV() string {
	var b strings.Builder
	b.WriteString("family,n,scheduler,start,variant,backend,engine,suppress,backoff,fault,runs,converged,legitimate,roundsAvg,roundsMax,messagesAvg,searchesSuppressedAvg,maxDegree,degreeBound,withinBound\n")
	for _, c := range m.Cells {
		fmt.Fprintf(&b, "%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%d,%v,%v,%.2f,%d,%.0f,%.0f,%d,%d,%v\n",
			c.Family, c.Nodes, c.Scheduler, c.Start, c.Variant,
			c.BackendName(), c.EngineName(), c.SuppressName(), c.BackoffName(), c.Fault, c.Runs, c.Converged,
			c.Legitimate, c.RoundsAvg, c.RoundsMax, c.MessagesAvg,
			c.SuppressedAvg, c.MaxDegree, c.DegreeBound, c.WithinBound)
	}
	return b.String()
}
