// Package detect is the backend-shared convergence-detection subsystem:
// it decides, from a stream of in-band observations, when a run of the
// self-stabilizing protocol has reached its silent fixed point, and it
// attests that decision with a quiescence Certificate instead of a raw
// "fingerprint unchanged twice" heuristic.
//
// The paper's composed protocol is silent — in a legitimate
// configuration no register changes — so quiescence is the protocol's
// own observable property. detect turns that property into a
// Dijkstra–Scholten-style termination condition over the harness's
// message counters: the system has terminated when every process is
// passive (its state version stopped moving and its state hash is a
// fixed point) AND the message deficit of the protocol's active kinds —
// reduction messages sent minus reduction messages received — is zero,
// i.e. no diffusing computation is still in flight. A Detector demands
// that the whole condition hold over a configurable window of
// consecutive observations (sized by the caller to cover the protocol's
// longest internal timer, the jittered search retry period) and then
// issues a Certificate carrying the per-node version vector (the
// quiescence epochs), the combined state fingerprint and the frozen
// message counters.
//
// One Detector implementation serves every backend:
//
//   - The deterministic simulator feeds it per-round samples built from
//     sim.Network's versioners and pending-message counters; driven this
//     way it is the sequential reference detector, and tests use it as
//     ground truth against sim.Network.Run's own quiescence decision.
//   - The live backend (sim.LiveNetwork) feeds it concurrent probes:
//     ProbeSample piggybacks on the StateVersioner/touched-flag
//     machinery, so a probe costs O(n) version compares and O(changed)
//     hashes.
//   - The tcp backend (internal/netrun) feeds it samples fetched over a
//     side-channel control connection, so the driver never has to stop
//     the cluster to look for quiescence.
//
// A Certificate is a *claim* of observed stability, not a proof of
// legitimacy: messages can hide in OS buffers between two probes, and a
// self-stabilizing run may pause at a pseudo-fixed point longer than
// the window. Drivers therefore verify the legitimacy predicate on the
// stopped network after a certificate is issued, and resume (resetting
// the detector's stability streak) when the check fails — the
// certificate's role is to make that stop worthwhile, replacing the
// stop-the-world inspection loops both wall-clock drivers used before.
package detect

import "fmt"

// Sample is one in-band observation of the global configuration. All
// fields are cumulative or absolute, never per-interval, so samples can
// be compared for equality to establish stability.
type Sample struct {
	// Versions is the per-node quiescence-epoch vector: each entry is
	// the node's StateVersion (bumped by the protocol's guarded writes,
	// a fixed point once the node quiesces), or the node's state hash
	// for processes that do not report versions.
	Versions []uint64
	// Fingerprint is the combined state fingerprint over all nodes
	// (Combine of the per-node hashes).
	Fingerprint uint64
	// ActiveSent and ActiveReceived count the protocol's active-kind
	// messages (the reduction kinds that must drain at quiescence —
	// periodic gossip is excluded, since a silent protocol keeps
	// gossiping forever). Their difference is the Dijkstra–Scholten
	// deficit: the number of reduction messages still in flight.
	ActiveSent     int64
	ActiveReceived int64
}

// Deficit is the number of active-kind messages in flight: sent but not
// yet received. Zero is the Dijkstra–Scholten termination condition's
// "no messages in transit" half.
func (s Sample) Deficit() int64 { return s.ActiveSent - s.ActiveReceived }

// stableWith reports whether s and prev describe the same frozen
// configuration: identical version vectors, fingerprints and message
// counters. Counter equality matters — two samples with equal deficits
// but moved counters mean traffic flowed between them.
func (s Sample) stableWith(prev Sample) bool {
	if s.Fingerprint != prev.Fingerprint ||
		s.ActiveSent != prev.ActiveSent ||
		s.ActiveReceived != prev.ActiveReceived ||
		len(s.Versions) != len(prev.Versions) {
		return false
	}
	for i, v := range s.Versions {
		if v != prev.Versions[i] {
			return false
		}
	}
	return true
}

// Certificate attests a window of observed quiescence. It is issued by
// a Detector when the configuration held perfectly still — versions,
// fingerprint and message counters frozen, deficit zero — for Window
// consecutive observations.
//
// What it guarantees: over the covered observations, no node's
// protocol-visible state changed and no active-kind message was sent,
// received or in flight at observation instants. What it does NOT
// guarantee: legitimacy (a pseudo-fixed point can outlast any finite
// window), so drivers still verify the legitimacy predicate on the
// stopped network before declaring convergence.
type Certificate struct {
	// Backend names the execution backend that produced the samples
	// (harness.Backend values: "sim", "live", "tcp").
	Backend string `json:"backend"`
	// Epoch is the 1-based observation index at which the stability
	// window completed. For the sim backend this is a round index; for
	// the wall-clock backends a probe index. Epochs keep counting across
	// a Detector Reset, so a certificate issued after a failed
	// legitimacy check records the total observation effort.
	Epoch uint64 `json:"epoch"`
	// Window is the number of consecutive stable observations covered.
	Window int `json:"window"`
	// Versions is the per-node quiescence-epoch vector at issue.
	Versions []uint64 `json:"versions"`
	// Fingerprint is the combined state fingerprint the window held.
	Fingerprint uint64 `json:"fingerprint"`
	// Sent and Received are the frozen active-kind message counters
	// (equal by construction: the deficit was zero throughout).
	Sent     int64 `json:"sent"`
	Received int64 `json:"received"`
}

// String renders the certificate's one-line summary (CLI reporting).
func (c Certificate) String() string {
	return fmt.Sprintf("quiescence certificate: backend=%s epoch=%d window=%d fingerprint=%016x active sent=received=%d",
		c.Backend, c.Epoch, c.Window, c.Fingerprint, c.Sent)
}

// Config controls a Detector.
type Config struct {
	// Window is the number of consecutive stable observations required
	// before a certificate is issued (minimum 1; values below are
	// raised to 1). Callers size it so the covered span exceeds the
	// protocol's longest internal timer — for the MDST protocol a full
	// jittered search retry period — or a slow phase is mistaken for a
	// fixed point.
	Window int
	// Backend is stamped into issued certificates.
	Backend string
}

// Detector accumulates observations and issues a Certificate once the
// configuration holds still for the configured window. It is a purely
// sequential, deterministic state machine: given the same sample stream
// it makes the same decision at the same epoch, which is what makes it
// usable as the reference detector for the deterministic simulator and
// as ground truth in tests of the concurrent probing paths.
//
// A Detector is not safe for concurrent use; each driver owns one.
type Detector struct {
	cfg    Config
	epoch  uint64
	stable int
	last   Sample
	have   bool
	// fill is the version-vector fill of the latest observation: the
	// fraction of nodes whose quiescence epoch held still since the
	// previous sample (see Progress).
	fill float64
}

// New returns a Detector over cfg.
func New(cfg Config) *Detector {
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	return &Detector{cfg: cfg}
}

// Epoch returns the number of observations made so far (monotone across
// Reset).
func (d *Detector) Epoch() uint64 { return d.epoch }

// Stable returns the current consecutive-stable-observation streak.
func (d *Detector) Stable() int { return d.stable }

// Reset clears the stability streak and the remembered sample, but not
// the epoch counter. Drivers call it after a certificate's legitimacy
// check failed: the run resumes and stability must be re-established
// from scratch.
func (d *Detector) Reset() {
	d.stable = 0
	d.have = false
	d.fill = 0
	d.last = Sample{}
}

// Progress is the detector's advancement toward a certificate — the
// certificate-progress block of a metrics.Snapshot. It reports observed
// facts only: a detector that has not yet seen two samples reports a
// zero VersionFill, never a spuriously complete one.
type Progress struct {
	// Epoch is the number of observations so far.
	Epoch uint64
	// Stable is the consecutive-stable streak, out of Window.
	Stable int
	Window int
	// VersionFill is the fraction of nodes whose quiescence epoch
	// (state version) was unchanged between the last two observations:
	// 1.0 means every node looked passive, 0 before two samples exist.
	VersionFill float64
	// Deficit and Fingerprint are from the latest observation.
	Deficit     int64
	Fingerprint uint64
}

// Progress returns the detector's current certificate progress.
func (d *Detector) Progress() Progress {
	return Progress{
		Epoch:       d.epoch,
		Stable:      d.stable,
		Window:      d.cfg.Window,
		VersionFill: d.fill,
		Deficit:     d.last.Deficit(),
		Fingerprint: d.last.Fingerprint,
	}
}

// Observe feeds one sample. It returns a Certificate and true when this
// observation completes a full stability window: the sample equals the
// previous one (versions, fingerprint, counters) with a zero active
// deficit, for the Window-th consecutive time. The sample's Versions
// slice is copied; callers may reuse their buffer between observations.
func (d *Detector) Observe(s Sample) (Certificate, bool) {
	d.epoch++
	if d.have && s.Deficit() == 0 && s.stableWith(d.last) {
		d.stable++
	} else {
		d.stable = 0
	}
	// Version-vector fill for Progress: how many nodes held still since
	// the previous sample. Computed before d.last is overwritten; a
	// first observation has no baseline and fills zero.
	d.fill = 0
	if d.have && len(s.Versions) == len(d.last.Versions) && len(s.Versions) > 0 {
		held := 0
		for i, v := range s.Versions {
			if v == d.last.Versions[i] {
				held++
			}
		}
		d.fill = float64(held) / float64(len(s.Versions))
	}
	// Copy into the retained sample, reusing its buffer when possible
	// (probe loops observe every few ms; this keeps them allocation-free
	// at steady state).
	d.last.Versions = append(d.last.Versions[:0], s.Versions...)
	d.last.Fingerprint = s.Fingerprint
	d.last.ActiveSent = s.ActiveSent
	d.last.ActiveReceived = s.ActiveReceived
	d.have = true
	if d.stable < d.cfg.Window {
		return Certificate{}, false
	}
	return Certificate{
		Backend:     d.cfg.Backend,
		Epoch:       d.epoch,
		Window:      d.cfg.Window,
		Versions:    append([]uint64(nil), s.Versions...),
		Fingerprint: s.Fingerprint,
		Sent:        s.ActiveSent,
		Received:    s.ActiveReceived,
	}, true
}

// MixNode folds one node's state hash into the combined fingerprint
// with a position-dependent bijective finalizer (splitmix64). The
// combine is commutative — the global fingerprint is the XOR over nodes
// of MixNode(id, hash) — and therefore patchable in O(1) per changed
// node. Every backend uses this one function (sim.Network and
// sim.LiveNetwork incrementally, netrun's control channel from its
// published per-node hashes), which is what makes certificate
// fingerprints comparable across backends.
func MixNode(id int, f uint64) uint64 {
	x := f + uint64(id+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Combine mixes the per-node state hashes into the order-independent
// combined fingerprint.
func Combine(fps []uint64) uint64 {
	var combined uint64
	for id, f := range fps {
		combined ^= MixNode(id, f)
	}
	return combined
}
