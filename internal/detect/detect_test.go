package detect_test

import (
	"testing"

	"mdst/internal/detect"
	"mdst/internal/graph"
	"mdst/internal/sim"
)

func sample(fp uint64, versions []uint64, sent, recv int64) detect.Sample {
	return detect.Sample{
		Versions:       versions,
		Fingerprint:    fp,
		ActiveSent:     sent,
		ActiveReceived: recv,
	}
}

// The detector's core contract: a certificate is issued exactly when the
// whole observation — version vector, fingerprint, message counters —
// held still with a zero deficit for Window consecutive transitions, and
// any perturbation restarts the streak.
func TestDetectorStabilityWindow(t *testing.T) {
	d := detect.New(detect.Config{Window: 3, Backend: "test"})
	v := []uint64{1, 2, 3}

	// Observation i+1 has seen i stable transitions: only the 4th
	// completes a window of 3.
	for i := 0; i < 3; i++ {
		if _, ok := d.Observe(sample(7, v, 10, 10)); ok {
			t.Fatalf("certified after %d observations", i+1)
		}
	}
	c, ok := d.Observe(sample(7, v, 10, 10))
	if !ok {
		t.Fatalf("no certificate after 4 identical observations (stable=%d)", d.Stable())
	}
	if c.Epoch != 4 || c.Window != 3 || c.Fingerprint != 7 || c.Sent != 10 || c.Received != 10 {
		t.Fatalf("bad certificate: %+v", c)
	}
	if len(c.Versions) != 3 || c.Versions[1] != 2 {
		t.Fatalf("bad certificate versions: %v", c.Versions)
	}
	if c.Backend != "test" {
		t.Fatalf("backend not stamped: %+v", c)
	}
}

func TestDetectorStreakResets(t *testing.T) {
	perturb := []struct {
		name string
		s    detect.Sample
	}{
		{"fingerprint", sample(8, []uint64{1, 2}, 10, 10)},
		{"version", sample(7, []uint64{1, 3}, 10, 10)},
		{"counters", sample(7, []uint64{1, 2}, 11, 11)},
		{"deficit", sample(7, []uint64{1, 2}, 11, 10)},
	}
	base := sample(7, []uint64{1, 2}, 10, 10)
	for _, tc := range perturb {
		d := detect.New(detect.Config{Window: 2})
		d.Observe(base)
		d.Observe(base)
		if d.Stable() != 1 {
			t.Fatalf("%s: warmup streak %d, want 1", tc.name, d.Stable())
		}
		if _, ok := d.Observe(tc.s); ok {
			t.Fatalf("%s: perturbed observation certified", tc.name)
		}
		if d.Stable() != 0 {
			t.Fatalf("%s: streak %d after perturbation, want 0", tc.name, d.Stable())
		}
	}

	// A nonzero deficit blocks the streak even when the sample repeats
	// exactly: messages in flight mean the configuration can still act.
	d := detect.New(detect.Config{Window: 1})
	inFlight := sample(7, []uint64{1}, 5, 4)
	d.Observe(inFlight)
	if _, ok := d.Observe(inFlight); ok {
		t.Fatal("certified with a standing deficit")
	}
}

// Reset clears stability but not the epoch, so certificates issued
// after a resume still record total observation effort.
func TestDetectorReset(t *testing.T) {
	d := detect.New(detect.Config{Window: 1})
	s := sample(1, []uint64{9}, 0, 0)
	d.Observe(s)
	if _, ok := d.Observe(s); !ok {
		t.Fatal("no certificate before reset")
	}
	d.Reset()
	if d.Stable() != 0 {
		t.Fatal("streak survived Reset")
	}
	if _, ok := d.Observe(s); ok {
		t.Fatal("certified immediately after Reset (no prior sample to be stable with)")
	}
	c, ok := d.Observe(s)
	if !ok {
		t.Fatal("no certificate after re-established stability")
	}
	if c.Epoch != 4 {
		t.Fatalf("epoch %d after reset, want 4 (epochs are monotone)", c.Epoch)
	}
}

// The detector copies samples; callers may reuse their Versions buffer.
func TestDetectorSampleBufferReuse(t *testing.T) {
	d := detect.New(detect.Config{Window: 1})
	buf := []uint64{1, 2}
	d.Observe(sample(3, buf, 0, 0))
	buf[0] = 99 // caller reuses the buffer
	if _, ok := d.Observe(sample(3, []uint64{1, 2}, 0, 0)); !ok {
		t.Fatal("retained sample aliased the caller's buffer")
	}
}

// minProc is a deterministic min-gossip process: periodic "info" gossip
// (flows forever) plus an event-driven "flood" burst on every
// improvement (an active kind that stops at the fixed point) — the same
// quiescence shape as the MDST protocol's gossip vs reduction split.
type minProc struct {
	min     int
	version uint64
}

type minMsg struct {
	val   int
	kind  string
	width int
}

func (m minMsg) Kind() string { return m.kind }
func (m minMsg) Size() int    { return m.width }

func (p *minProc) Init(*sim.Context) {}
func (p *minProc) Tick(ctx *sim.Context) {
	for _, nb := range ctx.Neighbors() {
		ctx.Send(nb, minMsg{val: p.min, kind: "info", width: 1})
	}
}
func (p *minProc) Receive(ctx *sim.Context, _ sim.NodeID, m sim.Message) {
	if v := m.(minMsg).val; v < p.min {
		p.min = v
		p.version++
		for _, nb := range ctx.Neighbors() {
			ctx.Send(nb, minMsg{val: p.min, kind: "flood", width: 1})
		}
	}
}
func (p *minProc) Fingerprint() uint64  { return uint64(p.min) + 1 }
func (p *minProc) StateVersion() uint64 { return p.version }

// Ground truth against the deterministic simulator: drive one seeded
// sim.Network round by round, feed the detector a sample per round
// built from the network's fingerprints, state versions and message
// counters (the Dijkstra–Scholten deficit of the active "flood" kind),
// and compare its decision against an identical network executed by
// sim.Network.Run with the same quiescence window.
//
// The detector can never certify before Run declares quiescence (its
// stability condition is strictly stronger: counters must freeze, not
// just the fingerprint) and must certify within a couple of rounds
// after (flood deliveries trailing the last state change perturb the
// counters for at most the rounds they are in flight).
func TestDetectorGroundTruthAgainstSimRun(t *testing.T) {
	const seed, window = 42, 12
	build := func() *sim.Network {
		g := graph.Wheel(12)
		return sim.NewNetwork(g, func(id sim.NodeID, _ []sim.NodeID) sim.Process {
			return &minProc{min: int(id) + 100}
		}, seed)
	}

	ref := build()
	res := ref.Run(sim.RunConfig{
		Scheduler:     sim.NewSyncScheduler(),
		MaxRounds:     4096,
		QuiesceRounds: window,
		ActiveKinds:   []string{"flood"},
	})
	if !res.Converged {
		t.Fatalf("reference Run did not converge: %+v", res)
	}

	net := build()
	net.InvalidateFingerprints() // mirror Run's entry rehash
	sched := sim.NewSyncScheduler()
	det := detect.New(detect.Config{Window: window, Backend: "sim"})
	var cert detect.Certificate
	certified := false
	for r := 0; r < 4096 && !certified; r++ {
		sched.RunRound(net)
		sent := net.Metrics().SentByKind["flood"]
		s := detect.Sample{
			Versions:       net.StateVersions(),
			Fingerprint:    net.Fingerprint(),
			ActiveSent:     sent,
			ActiveReceived: sent - int64(net.PendingKind("flood")),
		}
		cert, certified = det.Observe(s)
	}
	if !certified {
		t.Fatal("detector never certified the converged execution")
	}
	if int(cert.Epoch) < res.Rounds {
		t.Fatalf("detector certified at round %d, before Run's quiescence at %d", cert.Epoch, res.Rounds)
	}
	if int(cert.Epoch) > res.Rounds+3 {
		t.Fatalf("detector certified at round %d, long after Run's quiescence at %d", cert.Epoch, res.Rounds)
	}
	// Both executions are the same seeded run, so the quiesced
	// fingerprints must agree bit for bit.
	if cert.Fingerprint != ref.LastFingerprint() {
		t.Fatalf("certificate fingerprint %x != Run's quiesced fingerprint %x",
			cert.Fingerprint, ref.LastFingerprint())
	}
	if cert.Sent != cert.Received {
		t.Fatalf("certificate with nonzero deficit: %+v", cert)
	}
	// The certificate fingerprint must be reconstructible from the raw
	// per-node state hashes with the shared combine — the property that
	// makes certificates comparable across backends.
	fps := make([]uint64, 12)
	for id := range fps {
		fps[id] = net.Process(id).(*minProc).Fingerprint()
	}
	if got := detect.Combine(fps); got != cert.Fingerprint {
		t.Fatalf("Combine(state hashes) = %x, certificate says %x", got, cert.Fingerprint)
	}
}
