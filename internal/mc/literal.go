package mc

import (
	"fmt"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/paperproto"
	"mdst/internal/sim"
)

// Bounded exhaustive exploration of the literal-choreography variant
// (internal/paperproto). The literal exchange transiently breaks the
// spanning tree by design, so tree validity cannot be an every-state
// invariant; instead, callers assert it at QUIESCENT states — states
// with no message in flight — which is exactly the paper's claim that a
// completed (or fully aborted and repaired) exchange leaves a spanning
// tree. Every-state invariants still catch domain violations (forged
// roots, degree explosions) in every interleaving.

// LitInvariant is checked on literal-variant node slices.
type LitInvariant func(nodes []*paperproto.Node) error

// ExploreLiteral explores every interleaving from the configuration
// held by `nodes`, applying `every` in each visited state and
// `quiescent` only in states whose links are all empty.
func ExploreLiteral(g *graph.Graph, nodes []*paperproto.Node, cfg Config,
	every []LitInvariant, quiescent []LitInvariant) Result {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 50_000
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 24
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 2
	}
	init := &litState{nodes: cloneLitNodes(nodes), queues: map[[2]int][]sim.Message{}}
	res := Result{}
	seen := map[uint64]bool{}
	stack := []*litState{init}
	for len(stack) > 0 && res.States < cfg.MaxStates {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h := hashLitState(g, st)
		if seen[h] {
			continue
		}
		seen[h] = true
		res.States++

		for _, inv := range every {
			if err := inv(st.nodes); err != nil {
				res.Violation = fmt.Errorf("depth %d: %w", st.depth, err)
				return res
			}
		}
		if len(st.queues) == 0 {
			for _, inv := range quiescent {
				if err := inv(st.nodes); err != nil {
					res.Violation = fmt.Errorf("quiescent depth %d: %w", st.depth, err)
					return res
				}
			}
		}
		if !res.FoundLegit && paperproto.CheckLegitimacy(g, st.nodes).OK() {
			res.FoundLegit = true
		}
		if st.depth >= cfg.MaxDepth {
			res.Truncated = true
			continue
		}

		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				key := [2]int{u, v}
				q := st.queues[key]
				if len(q) == 0 {
					continue
				}
				succ := cloneLitState(st)
				msg := succ.queues[key][0]
				succ.queues[key] = succ.queues[key][1:]
				if len(succ.queues[key]) == 0 {
					delete(succ.queues, key)
				}
				ctx := litContextFor(g, succ, v, cfg.MaxQueue)
				succ.nodes[v].Receive(ctx, u, copyLitMsg(msg))
				succ.depth = st.depth + 1
				stack = append(stack, succ)
			}
		}
		if cfg.IncludeTicks {
			for id := 0; id < g.N(); id++ {
				succ := cloneLitState(st)
				ctx := litContextFor(g, succ, id, cfg.MaxQueue)
				succ.nodes[id].Tick(ctx)
				succ.depth = st.depth + 1
				stack = append(stack, succ)
			}
		}
	}
	if len(stack) > 0 {
		res.Truncated = true
	}
	return res
}

type litState struct {
	nodes  []*paperproto.Node
	queues map[[2]int][]sim.Message
	depth  int
}

func litContextFor(g *graph.Graph, st *litState, id, maxQueue int) *sim.Context {
	return sim.NewContext(id, g.Neighbors(id), func(from, to int, m sim.Message) {
		key := [2]int{from, to}
		if len(st.queues[key]) >= maxQueue {
			return
		}
		st.queues[key] = append(st.queues[key], copyLitMsg(m))
	})
}

func cloneLitNodes(nodes []*paperproto.Node) []*paperproto.Node {
	out := make([]*paperproto.Node, len(nodes))
	for i, nd := range nodes {
		out[i] = nd.Clone()
	}
	return out
}

func cloneLitState(st *litState) *litState {
	q := make(map[[2]int][]sim.Message, len(st.queues))
	for k, msgs := range st.queues {
		cp := make([]sim.Message, len(msgs))
		for i, m := range msgs {
			cp[i] = copyLitMsg(m)
		}
		q[k] = cp
	}
	return &litState{nodes: cloneLitNodes(st.nodes), queues: q, depth: st.depth}
}

// copyLitMsg deep-copies messages whose slices handlers mutate.
func copyLitMsg(m sim.Message) sim.Message {
	switch msg := m.(type) {
	case core.SearchMsg:
		msg.Path = append([]core.PathEntry(nil), msg.Path...)
		return msg
	case paperproto.RemoveMsg:
		msg.Path = append([]int(nil), msg.Path...)
		return msg
	case paperproto.BackMsg:
		msg.Path = append([]int(nil), msg.Path...)
		return msg
	default:
		return m
	}
}

func hashLitState(g *graph.Graph, st *litState) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	for _, nd := range st.nodes {
		mix(nd.Fingerprint())
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			q := st.queues[[2]int{u, v}]
			mix(uint64(u)<<32 | uint64(v))
			for _, m := range q {
				mix(hashLitMsg(m))
			}
		}
	}
	mix(uint64(st.depth) << 48)
	return h
}

func hashLitMsg(m sim.Message) uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	switch msg := m.(type) {
	case paperproto.RemoveMsg:
		mix(11)
		mix(uint64(msg.Init.U))
		mix(uint64(msg.Init.V))
		mix(uint64(msg.DegMax))
		mix(uint64(msg.Target.U))
		mix(uint64(msg.Target.V))
		mix(uint64(msg.WDeg))
		mix(uint64(msg.Pos))
		if msg.Reorient {
			mix(13)
		}
		for _, v := range msg.Path {
			mix(uint64(v))
		}
	case paperproto.BackMsg:
		mix(12)
		mix(uint64(msg.Init.U))
		mix(uint64(msg.Init.V))
		mix(uint64(msg.Pos))
		for _, v := range msg.Path {
			mix(uint64(v))
		}
	case paperproto.ReverseMsg:
		mix(14)
		mix(uint64(msg.Target))
	default:
		return hashMsg(m) // core wire formats (InfoMsg, Search, Deblock, UpdateDist)
	}
	return h
}

// LitRootBoundInvariant fails when any root variable escapes [0, n).
func LitRootBoundInvariant(n int) LitInvariant {
	return func(nodes []*paperproto.Node) error {
		for _, nd := range nodes {
			if nd.Root() < 0 || nd.Root() >= n {
				return fmt.Errorf("node %d: root %d out of range", nd.ID(), nd.Root())
			}
		}
		return nil
	}
}

// LitTreeValidInvariant fails when the parent pointers stop forming a
// single spanning tree — use it as a QUIESCENT invariant: the literal
// choreography legally breaks the tree while messages are in flight.
func LitTreeValidInvariant(g *graph.Graph) LitInvariant {
	return func(nodes []*paperproto.Node) error {
		if _, err := paperproto.ExtractTree(g, nodes); err != nil {
			return err
		}
		return nil
	}
}

// LitDegreeBoundInvariant fails when any node's tree degree exceeds
// `bound` (used from legitimate starts: no exchange may push any degree
// above the initial maximum).
func LitDegreeBoundInvariant(bound int) LitInvariant {
	return func(nodes []*paperproto.Node) error {
		for _, nd := range nodes {
			if d := nd.Deg(); d > bound {
				return fmt.Errorf("node %d: degree %d exceeds bound %d", nd.ID(), d, bound)
			}
		}
		return nil
	}
}
