package mc

import (
	"math/rand"
	"testing"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/sim"
)

// buildLegit returns a triangle-plus-pendant network in a legitimate
// configuration (small enough to explore meaningfully).
func buildLegit(t *testing.T, g *graph.Graph) []*core.Node {
	t.Helper()
	cfg := core.DefaultConfig(g.N())
	net := core.BuildNetwork(g, cfg, 1)
	nodes := core.NodesOf(net)
	if err := harness.Preload(g, nodes, cfg); err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestExploreLegitTriangleInvariants(t *testing.T) {
	// Triangle: the degree-2 tree is optimal, so no exchange can ever
	// fire; across ALL interleavings of gossip and searches the tree must
	// stay identical and root values in range.
	g := graph.Complete(3)
	nodes := buildLegit(t, g)
	res := Explore(g, nodes, Config{MaxStates: 30_000, MaxDepth: 12, MaxQueue: 2, IncludeTicks: true},
		TreeValidInvariant(g), RootBoundInvariant(3))
	if res.Violation != nil {
		t.Fatalf("invariant violated: %v", res.Violation)
	}
	if res.States < 100 {
		t.Fatalf("explored only %d states", res.States)
	}
	if !res.FoundLegit {
		t.Fatal("initial state itself is legitimate; must be found")
	}
}

func TestExploreLegitSquareWithChord(t *testing.T) {
	// C4 plus chord: a non-tree edge exists, searches flow, yet from the
	// fixed point no interleaving may break the tree or mint a root.
	g := graph.Ring(4)
	g.MustAddEdge(0, 2)
	nodes := buildLegit(t, g)
	res := Explore(g, nodes, Config{MaxStates: 40_000, MaxDepth: 10, MaxQueue: 2, IncludeTicks: true},
		TreeValidInvariant(g), RootBoundInvariant(4))
	if res.Violation != nil {
		t.Fatalf("invariant violated: %v", res.Violation)
	}
}

func TestExploreFindsLegitFromCleanStart(t *testing.T) {
	// From a clean start (every node its own root) on P3, some
	// interleaving within the horizon reaches a legitimate configuration
	// — convergence witnessed exhaustively rather than by sampling.
	g := graph.Path(3)
	cfg := core.DefaultConfig(3)
	net := core.BuildNetwork(g, cfg, 1)
	nodes := core.NodesOf(net)
	res := Explore(g, nodes, Config{MaxStates: 150_000, MaxDepth: 20, MaxQueue: 2, IncludeTicks: true},
		RootBoundInvariant(3))
	if res.Violation != nil {
		t.Fatalf("invariant violated: %v", res.Violation)
	}
	if !res.FoundLegit {
		t.Fatalf("no legitimate state within %d states (truncated=%v)", res.States, res.Truncated)
	}
}

func TestExploreDeliveryOnlyPermutations(t *testing.T) {
	// Without ticks: pre-load one round of gossip and permute deliveries
	// exhaustively; state must be identical regardless of order at the
	// fixed point (confluence of Update_State).
	g := graph.Path(3)
	nodes := buildLegit(t, g)
	// Seed queues by ticking each node once in a scratch state.
	st := &state{nodes: cloneNodes(nodes), queues: map[[2]int][]sim.Message{}}
	for id := 0; id < 3; id++ {
		tick(g, st, id, 4)
	}
	res := Explore(g, st.nodes, Config{MaxStates: 10_000, MaxDepth: 8, MaxQueue: 4},
		TreeValidInvariant(g))
	if res.Violation != nil {
		t.Fatalf("violated: %v", res.Violation)
	}
	if res.Truncated && res.States >= 10_000 {
		t.Fatal("delivery-only space should be small")
	}
}

func TestCopyMsgIsolatesSlices(t *testing.T) {
	orig := core.SearchMsg{Path: []core.PathEntry{{Node: 1, Cursor: -1}}}
	cp := copyMsg(orig).(core.SearchMsg)
	cp.Path[0].Cursor = 99
	if orig.Path[0].Cursor != -1 {
		t.Fatal("copyMsg shared the Path slice")
	}
	rev := core.ReverseMsg{Nodes: []int{1, 2}}
	cr := copyMsg(rev).(core.ReverseMsg)
	cr.Nodes[0] = 9
	if rev.Nodes[0] != 1 {
		t.Fatal("copyMsg shared the Nodes slice")
	}
}

func TestHashDistinguishesStates(t *testing.T) {
	g := graph.Path(2)
	cfg := core.DefaultConfig(2)
	net := core.BuildNetwork(g, cfg, 1)
	a := &state{nodes: cloneNodes(core.NodesOf(net)), queues: map[[2]int][]sim.Message{}}
	b := cloneState(a)
	if hashState(g, a) != hashState(g, b) {
		t.Fatal("identical states hash differently")
	}
	b.nodes[0].SetState(1, 1, 0, 0, 0, false)
	if hashState(g, a) == hashState(g, b) {
		t.Fatal("different states collide")
	}
	c := cloneState(a)
	c.queues[[2]int{0, 1}] = []sim.Message{core.UpdateDistMsg{Dist: 3}}
	if hashState(g, a) == hashState(g, c) {
		t.Fatal("queue contents not hashed")
	}
}

func TestRootBoundInvariantFires(t *testing.T) {
	g := graph.Path(2)
	cfg := core.DefaultConfig(2)
	net := core.BuildNetwork(g, cfg, 1)
	nodes := core.NodesOf(net)
	nodes[0].SetState(-5, 0, 0, 0, 0, false)
	if err := RootBoundInvariant(2)(nodes); err == nil {
		t.Fatal("out-of-range root not caught")
	}
}

func TestNodeCloneIndependence(t *testing.T) {
	g := graph.Path(3)
	net := core.BuildNetwork(g, core.DefaultConfig(3), 1)
	rng := rand.New(rand.NewSource(1))
	nd := core.NodesOf(net)[1]
	nd.Corrupt(rng, 3)
	c := nd.Clone()
	if c.Fingerprint() != nd.Fingerprint() {
		t.Fatal("clone differs")
	}
	c.SetState(0, 0, 1, 2, 2, true)
	if c.Fingerprint() == nd.Fingerprint() {
		t.Fatal("clone shares state")
	}
	c.SetView(0, core.View{Root: 2})
	v, _ := nd.ViewOf(0)
	if v.Root == 2 {
		t.Fatal("clone shares views")
	}
}
