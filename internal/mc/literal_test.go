package mc

import (
	"testing"

	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/paperproto"
)

// buildLitLegit returns literal-variant nodes over g in a legitimate
// configuration.
func buildLitLegit(t *testing.T, g *graph.Graph) []*paperproto.Node {
	t.Helper()
	cfg := paperproto.DefaultConfig(g.N())
	net := paperproto.BuildNetwork(g, cfg, 1)
	nodes := paperproto.NodesOf(net)
	if err := harness.PreloadLiteral(g, nodes, cfg); err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestExploreLiteralLegitTriangle(t *testing.T) {
	// Triangle at the fixed point: no exchange can fire in any
	// interleaving, so tree validity holds in EVERY state (not just
	// quiescent ones) and roots stay in range.
	g := graph.Complete(3)
	nodes := buildLitLegit(t, g)
	res := ExploreLiteral(g, nodes,
		Config{MaxStates: 30_000, MaxDepth: 12, MaxQueue: 2, IncludeTicks: true},
		[]LitInvariant{LitTreeValidInvariant(g), LitRootBoundInvariant(3)}, nil)
	if res.Violation != nil {
		t.Fatalf("invariant violated: %v", res.Violation)
	}
	if res.States < 100 {
		t.Fatalf("explored only %d states", res.States)
	}
	if !res.FoundLegit {
		t.Fatal("initial legitimate state not found")
	}
}

func TestExploreLiteralQuiescentTreeOnChordedRing(t *testing.T) {
	// C4 plus chord from the fixed point: searches and deblock floods
	// flow through every interleaving. The literal choreography may
	// transiently break the tree mid-exchange, but whenever the network
	// drains (quiescent state) the structure must be a spanning tree,
	// and no node degree may ever exceed the fixed point's maximum.
	g := graph.Ring(4)
	g.MustAddEdge(0, 2)
	nodes := buildLitLegit(t, g)
	tree, err := paperproto.ExtractTree(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	k := tree.MaxDegree()
	res := ExploreLiteral(g, nodes,
		Config{MaxStates: 40_000, MaxDepth: 10, MaxQueue: 2, IncludeTicks: true},
		[]LitInvariant{LitRootBoundInvariant(4), LitDegreeBoundInvariant(k)},
		[]LitInvariant{LitTreeValidInvariant(g)})
	if res.Violation != nil {
		t.Fatalf("invariant violated: %v", res.Violation)
	}
	if res.States < 100 {
		t.Fatalf("explored only %d states", res.States)
	}
}

func TestExploreLiteralFindsLegitFromCleanStart(t *testing.T) {
	g := graph.Path(3)
	cfg := paperproto.DefaultConfig(3)
	net := paperproto.BuildNetwork(g, cfg, 1)
	nodes := paperproto.NodesOf(net)
	res := ExploreLiteral(g, nodes,
		Config{MaxStates: 150_000, MaxDepth: 20, MaxQueue: 2, IncludeTicks: true},
		[]LitInvariant{LitRootBoundInvariant(3)}, nil)
	if res.Violation != nil {
		t.Fatalf("invariant violated: %v", res.Violation)
	}
	if !res.FoundLegit {
		t.Fatalf("no legitimate state within %d states (truncated=%v)", res.States, res.Truncated)
	}
}

func TestLitInvariantsFire(t *testing.T) {
	g := graph.Path(3)
	cfg := paperproto.DefaultConfig(3)
	net := paperproto.BuildNetwork(g, cfg, 1)
	nodes := paperproto.NodesOf(net)
	nodes[0].SetState(99, 0, 0, 1, 1, false)
	if err := LitRootBoundInvariant(3)(nodes); err == nil {
		t.Fatal("root bound did not fire")
	}
	nodes[0].SetState(0, 0, 0, 9, 9, false)
	nodes[1].SetState(0, 1, 0, 9, 9, false) // second self-root: no single tree
	if err := LitTreeValidInvariant(g)(nodes); err == nil {
		t.Fatal("tree-valid did not fire on a forest")
	}
}

func TestLitCloneIndependence(t *testing.T) {
	g := graph.Path(3)
	nodes := buildLitLegit(t, g)
	c := nodes[1].Clone()
	before := c.Fingerprint()
	// Mutating the original's state and views must not affect the clone.
	nodes[1].SetState(2, 2, 0, 5, 5, true)
	nodes[1].SetView(0, paperproto.View{Root: 7})
	if c.Fingerprint() != before {
		t.Fatal("clone shares state or views with original")
	}
	if nodes[1].Fingerprint() == before {
		t.Fatal("mutation did not change the original's fingerprint")
	}
}
