// Package mc is a bounded exhaustive model checker for the protocol: on
// tiny instances it explores EVERY interleaving of message deliveries
// and node ticks (up to a state/depth budget), checking safety
// invariants in every reachable configuration and optionally searching
// for a legitimate state. Randomized schedules sample the execution
// space; the checker covers it, catching concurrency windows that seeds
// miss.
//
// States are memoized by a structural hash of all node states plus all
// queue contents, so the search collapses confluent interleavings.
package mc

import (
	"fmt"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/sim"
)

// Config bounds the exploration.
type Config struct {
	// MaxStates caps the number of distinct visited states (default 50k).
	MaxStates int
	// MaxDepth caps the exploration depth in atomic steps (default 24).
	MaxDepth int
	// MaxQueue caps per-link queue length; branches that would exceed it
	// are pruned (keeps the space finite despite ticks; default 2).
	MaxQueue int
	// IncludeTicks explores tick steps as well as deliveries. Without
	// ticks only the in-flight messages are permuted.
	IncludeTicks bool
}

// Invariant is checked in every visited state; return an error to fail.
type Invariant func(nodes []*core.Node) error

// Result summarizes an exploration.
type Result struct {
	States     int
	Truncated  bool // budget exhausted before full coverage
	FoundLegit bool // some visited state satisfied the legitimacy predicate
	Violation  error
}

// state is one configuration: node clones + per-link queues.
type state struct {
	nodes  []*core.Node
	queues map[[2]int][]sim.Message
	depth  int
}

// Explore runs the bounded search from the configuration currently held
// by `nodes` over graph g.
func Explore(g *graph.Graph, nodes []*core.Node, cfg Config, invariants ...Invariant) Result {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 50_000
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 24
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 2
	}
	init := &state{nodes: cloneNodes(nodes), queues: map[[2]int][]sim.Message{}}
	res := Result{}
	seen := map[uint64]bool{}
	stack := []*state{init}
	for len(stack) > 0 && res.States < cfg.MaxStates {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h := hashState(g, st)
		if seen[h] {
			continue
		}
		seen[h] = true
		res.States++

		for _, inv := range invariants {
			if err := inv(st.nodes); err != nil {
				res.Violation = fmt.Errorf("depth %d: %w", st.depth, err)
				return res
			}
		}
		if !res.FoundLegit && core.CheckLegitimacy(g, st.nodes).OK() {
			res.FoundLegit = true
		}
		if st.depth >= cfg.MaxDepth {
			res.Truncated = true
			continue
		}

		// Branch over deliveries: the head of every non-empty link.
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				key := [2]int{u, v}
				q := st.queues[key]
				if len(q) == 0 {
					continue
				}
				succ := cloneState(st)
				msg := succ.queues[key][0]
				succ.queues[key] = succ.queues[key][1:]
				if len(succ.queues[key]) == 0 {
					delete(succ.queues, key)
				}
				deliver(g, succ, v, u, msg, cfg.MaxQueue)
				succ.depth = st.depth + 1
				stack = append(stack, succ)
			}
		}
		if cfg.IncludeTicks {
			for id := 0; id < g.N(); id++ {
				succ := cloneState(st)
				tick(g, succ, id, cfg.MaxQueue)
				succ.depth = st.depth + 1
				stack = append(stack, succ)
			}
		}
	}
	if len(stack) > 0 {
		res.Truncated = true
	}
	return res
}

// deliver runs one receive step on the cloned state.
func deliver(g *graph.Graph, st *state, to, from int, msg sim.Message, maxQueue int) {
	ctx := contextFor(g, st, to, maxQueue)
	st.nodes[to].Receive(ctx, from, copyMsg(msg))
}

// tick runs one tick step on the cloned state.
func tick(g *graph.Graph, st *state, id, maxQueue int) {
	ctx := contextFor(g, st, id, maxQueue)
	st.nodes[id].Tick(ctx)
}

// contextFor wires sends into the state's queues, capping queue length.
func contextFor(g *graph.Graph, st *state, id, maxQueue int) *sim.Context {
	return sim.NewContext(id, g.Neighbors(id), func(from, to int, m sim.Message) {
		key := [2]int{from, to}
		if len(st.queues[key]) >= maxQueue {
			return // prune: model a slow link absorbing the overflow
		}
		st.queues[key] = append(st.queues[key], copyMsg(m))
	})
}

func cloneNodes(nodes []*core.Node) []*core.Node {
	out := make([]*core.Node, len(nodes))
	for i, nd := range nodes {
		out[i] = nd.Clone()
	}
	return out
}

func cloneState(st *state) *state {
	q := make(map[[2]int][]sim.Message, len(st.queues))
	for k, msgs := range st.queues {
		cp := make([]sim.Message, len(msgs))
		for i, m := range msgs {
			cp[i] = copyMsg(m)
		}
		q[k] = cp
	}
	return &state{nodes: cloneNodes(st.nodes), queues: q, depth: st.depth}
}

// copyMsg deep-copies a protocol message (slices must not be shared
// between branches: handlers mutate Path entries in place).
func copyMsg(m sim.Message) sim.Message {
	switch msg := m.(type) {
	case core.SearchMsg:
		msg.Path = append([]core.PathEntry(nil), msg.Path...)
		return msg
	case core.ReverseMsg:
		msg.Nodes = append([]int(nil), msg.Nodes...)
		return msg
	default:
		return m // value types without slices
	}
}

// hashState folds all node fingerprints and queue contents.
func hashState(g *graph.Graph, st *state) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	for _, nd := range st.nodes {
		mix(nd.Fingerprint())
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			q := st.queues[[2]int{u, v}]
			mix(uint64(u)<<32 | uint64(v))
			for _, m := range q {
				mix(hashMsg(m))
			}
		}
	}
	mix(uint64(st.depth) << 48) // depth distinguishes budget frontiers
	return h
}

func hashMsg(m sim.Message) uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	switch msg := m.(type) {
	case core.InfoMsg:
		mix(1)
		mix(uint64(msg.Root))
		mix(uint64(msg.Parent))
		mix(uint64(msg.Distance))
		mix(uint64(msg.Dmax))
		mix(uint64(msg.Submax))
		mix(uint64(msg.Deg))
		if msg.Color {
			mix(7)
		}
	case core.SearchMsg:
		mix(2)
		mix(uint64(msg.Init.U))
		mix(uint64(msg.Init.V))
		mix(uint64(msg.Block + 1))
		mix(uint64(msg.TTL))
		for _, p := range msg.Path {
			mix(uint64(p.Node))
			mix(uint64(p.Deg))
			mix(uint64(p.Parent))
			mix(uint64(p.Cursor + 1))
		}
	case core.ReverseMsg:
		mix(3)
		mix(uint64(msg.Init.U))
		mix(uint64(msg.Init.V))
		mix(uint64(msg.DegMax))
		mix(uint64(msg.TargetNode))
		mix(uint64(msg.TargetDeg))
		mix(uint64(msg.Dist))
		for _, v := range msg.Nodes {
			mix(uint64(v))
		}
	case core.DeblockMsg:
		mix(4)
		mix(uint64(msg.Block))
		mix(uint64(msg.TTL))
	case core.UpdateDistMsg:
		mix(5)
		mix(uint64(msg.Dist))
	}
	return h
}

// TreeValidInvariant fails when the parent pointers stop forming a
// single spanning tree (use from legitimate starts where no concurrent
// exchange can run).
func TreeValidInvariant(g *graph.Graph) Invariant {
	return func(nodes []*core.Node) error {
		if _, err := core.ExtractTree(g, nodes); err != nil {
			return err
		}
		return nil
	}
}

// RootBoundInvariant fails when any root variable escapes [0, n): forged
// values must never be (re)introduced by the protocol itself.
func RootBoundInvariant(n int) Invariant {
	return func(nodes []*core.Node) error {
		for _, nd := range nodes {
			if nd.Root() < 0 || nd.Root() >= n {
				return fmt.Errorf("node %d: root %d out of range", nd.ID(), nd.Root())
			}
		}
		return nil
	}
}
