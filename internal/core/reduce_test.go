package core

import (
	"testing"

	"mdst/internal/graph"
	"mdst/internal/sim"
)

// Fig. 5 replay: the two reversal orientations of the paper's
// Reverse_Orientation, driven end-to-end through real messages.

// TestReversalOrientationRemoveDirection exercises the Fig. 5(a) case:
// the removed edge's child end lies on the initiator's side, so the
// chain is launched toward the initiator (the paper's Remove direction).
func TestReversalOrientationRemoveDirection(t *testing.T) {
	// Tree: 0 root; children 1, 2; 3 under 1; 4 under 2; 5 under 1.
	// Non-tree edge {3,4}. Node 1 has degree 3 = dmax.
	g := graph.New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(1, 5)
	g.MustAddEdge(3, 4)
	net := BuildNetwork(g, DefaultConfig(6), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 0}, {3, 1}, {4, 2}, {5, 1}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)

	// Initiator 3 searches for 4; cycle path 3-1-0-2, terminus 4.
	// Target w = 1 (deg 3); z = 0 is w's parent => child end is w:
	// the chain goes x(4) -> y(3) -> ... -> w(1), terminator 0.
	nodes[3].startSearch(net.Context(3), 4, -1, 0)
	drain(net, 10000)

	got, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasTreeEdge(3, 4) || got.HasTreeEdge(0, 1) {
		t.Fatalf("expected swap {3,4} in / {0,1} out; edges=%v", got.Edges())
	}
	if d := got.Degree(1); d != 2 {
		t.Fatalf("node 1 degree %d, want 2", d)
	}
	// Orientation: 3 re-parented onto 4, 1 onto 3.
	if got.Parent(3) != 4 || got.Parent(1) != 3 {
		t.Fatalf("orientation wrong: parent(3)=%d parent(1)=%d", got.Parent(3), got.Parent(1))
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestReversalOrientationBackDirection exercises the Fig. 5(b) case: the
// removed edge's child end lies on the terminus side, so the terminus
// applies the first hop locally and the chain walks back (the paper's
// Back direction).
func TestReversalOrientationBackDirection(t *testing.T) {
	// Chain tree 0-1-2-3 plus leaf 4 on 1 and chord {0,3}.
	// Node 1 has degree 3 = dmax; cycle of {0,3} is 0-1-2-3.
	// Target w=1, z=2 with parent(2)=1 => child end is z: terminus 3
	// re-parents locally onto 0, then 2 onto 3, dropping {1,2}.
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(1, 4)
	net := BuildNetwork(g, DefaultConfig(5), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 2}, {4, 1}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)

	nodes[0].startSearch(net.Context(0), 3, -1, 0)
	drain(net, 10000)

	got, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasTreeEdge(0, 3) || got.HasTreeEdge(1, 2) {
		t.Fatalf("expected swap {0,3} in / {1,2} out; edges=%v", got.Edges())
	}
	if got.Parent(3) != 0 || got.Parent(2) != 3 {
		t.Fatalf("orientation wrong: parent(3)=%d parent(2)=%d", got.Parent(3), got.Parent(2))
	}
	// Distances must be repaired along the reversed chain.
	if nodes[3].Distance() != 1 || nodes[2].Distance() != 2 {
		t.Fatalf("distances not updated: d3=%d d2=%d", nodes[3].Distance(), nodes[2].Distance())
	}
}

func TestReverseStaleChainAborts(t *testing.T) {
	g := graph.Ring(5)
	net := BuildNetwork(g, DefaultConfig(5), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 2}, {4, 3}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)
	before := nodes[2].Parent()
	// Chain claiming node 2's parent is 3 (it is 1): must abort.
	nodes[2].handleReverse(net.Context(2), 1, ReverseMsg{
		Init:       graph.Edge{U: 0, V: 4},
		DegMax:     2,
		TargetNode: 3,
		TargetDeg:  2,
		Nodes:      []int{2, 3, 4},
		Dist:       2,
	})
	if nodes[2].Parent() != before {
		t.Fatal("stale chain applied")
	}
	if net.Pending() != 0 {
		t.Fatal("aborted chain must not forward")
	}
}

func TestReverseFinalHopValidatesTarget(t *testing.T) {
	// Final hop at the target with a changed degree must abort.
	g := graph.New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(1, 5)
	g.MustAddEdge(3, 4)
	net := BuildNetwork(g, DefaultConfig(6), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 0}, {3, 1}, {4, 2}, {5, 1}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)
	// Directly hand node 1 the final hop with a wrong TargetDeg.
	nodes[1].handleReverse(net.Context(1), 3, ReverseMsg{
		Init:       graph.Edge{U: 3, V: 4},
		DegMax:     3,
		TargetNode: 1,
		TargetDeg:  9, // stale
		Nodes:      []int{1, 0},
		Dist:       3,
	})
	if nodes[1].Parent() != 0 {
		t.Fatal("stale final hop applied")
	}
}

func TestReverseFirstHopValidatesEdgeAndDegree(t *testing.T) {
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(1, 4)
	net := BuildNetwork(g, DefaultConfig(5), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 2}, {4, 1}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)
	// First hop at node 0 (attachment) arriving from 3 (other endpoint of
	// init edge {0,3}) with a mismatched dmax: abort.
	nodes[0].handleReverse(net.Context(0), 3, ReverseMsg{
		Init:       graph.Edge{U: 3, V: 0}, // hypothetical reverse direction
		DegMax:     7,                      // wrong dmax
		TargetNode: 1,
		TargetDeg:  3,
		Nodes:      []int{0, 1, 2},
		Dist:       1,
	})
	if nodes[0].Parent() != 0 || net.Pending() != 0 {
		t.Fatal("first hop with wrong dmax must abort")
	}
}

func TestUpdateDistFloodsSubtree(t *testing.T) {
	g := graph.Path(4)
	net := BuildNetwork(g, DefaultConfig(4), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 2}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)
	// Parent 0 announces distance 5 to node 1: 1 adopts 6 and forwards.
	nodes[1].handleUpdateDist(net.Context(1), 0, UpdateDistMsg{Dist: 5})
	if nodes[1].Distance() != 6 {
		t.Fatalf("distance %d, want 6", nodes[1].Distance())
	}
	drain(net, 100)
	if nodes[2].Distance() != 7 || nodes[3].Distance() != 8 {
		t.Fatalf("flood failed: d2=%d d3=%d", nodes[2].Distance(), nodes[3].Distance())
	}
	// A non-parent announcement is ignored.
	nodes[1].handleUpdateDist(net.Context(1), 2, UpdateDistMsg{Dist: 50})
	if nodes[1].Distance() != 6 {
		t.Fatal("non-parent UpdateDist applied")
	}
}

func TestDeblockFloodReachesSubtreeAndSearches(t *testing.T) {
	// Star-of-cliques-like shape: blocking node 1 with subtree below.
	g := graph.New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(3, 4) // non-tree edge inside subtree(1)
	g.MustAddEdge(0, 5)
	net := BuildNetwork(g, DefaultConfig(6), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 0}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)
	nodes[1].handleDeblock(net.Context(1), 0, DeblockMsg{Block: 1, TTL: 3})
	// The flood must reach children 2 and 3 and spawn deblock searches
	// for the non-tree edge {3,4} (from both endpoints).
	if net.PendingKind(KindDeblock) == 0 {
		t.Fatal("no deblock forwarded to children")
	}
	drain(net, 10000)
	m := net.Metrics()
	if m.SentByKind[KindSearch] == 0 {
		t.Fatal("deblock flood spawned no searches")
	}
}

func TestDeblockSuppressionWindow(t *testing.T) {
	g := graph.Path(3)
	net := BuildNetwork(g, DefaultConfig(3), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)
	nodes[1].handleDeblock(net.Context(1), 0, DeblockMsg{Block: 7, TTL: 2})
	first := net.Metrics().SentByKind[KindDeblock]
	nodes[1].handleDeblock(net.Context(1), 0, DeblockMsg{Block: 7, TTL: 2})
	if net.Metrics().SentByKind[KindDeblock] != first {
		t.Fatal("repeat deblock for the same blocker not suppressed")
	}
	// TTL zero is dropped outright.
	nodes[1].handleDeblock(net.Context(1), 0, DeblockMsg{Block: 8, TTL: 0})
	if net.Metrics().SentByKind[KindDeblock] != first {
		t.Fatal("TTL-0 deblock forwarded")
	}
}

func TestDeblockEndToEndUnblocksImprovement(t *testing.T) {
	// Construct a blocked improvement: hub 0 with three arms, where the
	// improving edge for the hub has a blocking endpoint that can itself
	// be reduced. Let the full protocol run and require the hub's degree
	// to drop.
	//
	//      0 —— 1 —— 2
	//      |    |    |
	//      3    4    |
	//      |  (1-4)  |
	//      5 —— 6 ———+   edges {5,6},{6,2} close cycles
	g := graph.New(7)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(1, 4)
	g.MustAddEdge(3, 5)
	g.MustAddEdge(5, 6)
	g.MustAddEdge(6, 2)
	net := BuildNetwork(g, DefaultConfig(7), 7)
	res := net.Run(sim.RunConfig{
		Scheduler:     sim.NewSyncScheduler(),
		MaxRounds:     20000,
		QuiesceRounds: 2*g.N() + 40,
		ActiveKinds:   ReductionKinds(),
	})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	leg := CheckLegitimacy(g, NodesOf(net))
	if !leg.OK() {
		t.Fatalf("not legitimate: %+v", leg)
	}
}
