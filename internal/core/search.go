package core

import (
	"mdst/internal/graph"
	"mdst/internal/sim"
)

// Fundamental-cycle detection module (paper §3.2.2, Fig. 3). For every
// non-tree edge {v,u} with ID v < ID u, v periodically launches a Search
// token that performs a DFS over tree edges; the token's Path is the DFS
// stack, so when it first reaches u the stack is exactly the tree path
// from v to u — the fundamental cycle of {v,u}. No per-search state is
// stored at nodes: each stack entry carries a cursor marking the last
// tree neighbor tried, and backtracking resumes from it.

// searchKey identifies the fundamental cycle a Search token works on:
// the initiating non-tree edge plus the deblock context. Tokens with the
// same key are redundant while the tree (as this node sees it) has not
// changed — the basis of the suppression module below.
type searchKey struct {
	init  graph.Edge
	block int
}

// searchSeen is the suppression record for one key: when this node last
// let an equivalent token through, and what its own state version was at
// that moment.
type searchSeen struct {
	tick    int
	version uint64
}

// seenSearchCap caps the suppression map. At the cap, expired and
// version-stale entries are evicted (per-entry predicates only, so the
// map contents stay deterministic regardless of iteration order); if
// every entry is still live the map is cleared outright — records are
// an optimization, and dropping them only re-admits a few redundant
// tokens, whereas keeping a saturated map would re-run the O(cap)
// sweep on every subsequent pass.
const seenSearchCap = 512

// SearchSuppressor holds one node's duplicate-token pruning records —
// the search-suppression module's only state, shared by both protocol
// variants (paperproto embeds it too, exactly as it reuses SearchMsg).
// It is transient bookkeeping like the retry schedule: never
// fingerprinted, and recording a pass must not bump the node's state
// version, or quiescence could never be reached.
type SearchSuppressor struct {
	seen map[searchKey]searchSeen
}

// NewSearchSuppressor returns an empty record set.
func NewSearchSuppressor() *SearchSuppressor {
	return &SearchSuppressor{seen: make(map[searchKey]searchSeen)}
}

// Clone deep-copies the records (model-checker branching).
func (s *SearchSuppressor) Clone() *SearchSuppressor {
	c := &SearchSuppressor{seen: make(map[searchKey]searchSeen, len(s.seen))}
	for k, v := range s.seen {
		c.seen[k] = v
	}
	return c
}

// Suppress is the duplicate-pruning decision: true when an equivalent
// token (same fundamental-cycle key) already passed this node within
// `window` ticks and the node's state version is unchanged since —
// re-walking the cycle could not reach a different classification
// sooner than the recorded token's retry will. On false the pass is
// recorded.
func (s *SearchSuppressor) Suppress(window, tick int, version uint64, init graph.Edge, block int) bool {
	pruned, _ := s.SuppressEx(window, tick, version, init, block)
	return pruned
}

// SuppressEx is Suppress plus the adaptive-backoff observable: on a
// pass, lapsed reports that the key's record outlived the window with
// the node's version unchanged — a full pruning window elapsed at a
// fixed point, the evidence Config.BackoffSearches deepens on (a
// first-ever pass or a version change is not a lapse; both mean the
// schedule should stay at its base).
func (s *SearchSuppressor) SuppressEx(window, tick int, version uint64, init graph.Edge, block int) (pruned, lapsed bool) {
	key := searchKey{init: init, block: block}
	if r, ok := s.seen[key]; ok && r.version == version {
		if tick-r.tick < window {
			return true, false
		}
		lapsed = true
	}
	if len(s.seen) >= seenSearchCap {
		for k, r := range s.seen {
			if tick-r.tick >= window || r.version != version {
				delete(s.seen, k)
			}
		}
		if len(s.seen) >= seenSearchCap {
			s.seen = make(map[searchKey]searchSeen)
		}
	}
	s.seen[key] = searchSeen{tick: tick, version: version}
	return false, lapsed
}

// PassTick returns the earliest tick at which a token with this key
// would pass the pruner under the given window — the recorded pass's
// tick plus the window while the record is live at this version, 0
// when nothing suppresses it. Read-only; the event core parks nodes
// on it.
func (s *SearchSuppressor) PassTick(window int, version uint64, init graph.Edge, block int) int {
	if r, ok := s.seen[searchKey{init: init, block: block}]; ok && r.version == version {
		return r.tick + window
	}
	return 0
}

// suppressSearch applies the node's suppressor (counting prunes) over
// the current effective pruning window, deepening the adaptive backoff
// when a pass proves a full window elapsed at a fixed point. Never
// called with suppression off.
func (n *Node) suppressSearch(init graph.Edge, block int) bool {
	pruned, lapsed := n.suppress.SuppressEx(n.effectiveWindow(), n.tick, n.version, init, block)
	if pruned {
		n.stats.SearchesSuppressed++
		return true
	}
	if lapsed {
		n.deepenBackoff()
	}
	return false
}

// effectiveWindow resolves the node's pruning window for a suppression
// decision: the static PruneWindow without backoff, else the adaptive
// window after applying the instant-reset rule — any state-version
// movement since the tier was earned (a neighbor change observed via
// gossip, or a local mutation) collapses the tier to the base before
// it is consulted, so recovery retries run on the base schedule.
func (n *Node) effectiveWindow() int {
	if !n.cfg.BackoffSearches {
		return n.cfg.PruneWindow()
	}
	if n.version != n.backoffVersion {
		n.backoffTier = 0
		n.backoffVersion = n.version
	}
	return n.backoffWindowAt(n.backoffTier)
}

// backoffWindowAt maps a tier to its window: PruneWindow doubled tier
// times, saturating at BackoffCapWindow.
func (n *Node) backoffWindowAt(tier int) int {
	w, cap := n.cfg.PruneWindow(), n.cfg.BackoffCapWindow()
	for i := 0; i < tier && w < cap; i++ {
		w <<= 1
	}
	if w > cap {
		w = cap
	}
	return w
}

// deepenBackoff advances the tier after a full effective window lapsed
// at a fixed point — at most one doubling per tick, so concurrent
// lapses on several edges deepen like a single one — saturating once
// the window reaches the cap.
func (n *Node) deepenBackoff() {
	if !n.cfg.BackoffSearches || n.backoffTick == n.tick {
		return
	}
	n.backoffTick = n.tick
	if n.backoffWindowAt(n.backoffTier) < n.cfg.BackoffCapWindow() {
		n.backoffTier++
	}
}

// searchPassTick returns the earliest tick at which a plain-search
// launch for the non-tree edge {n.id, u} would pass the duplicate
// pruner under the current window; 0 when nothing suppresses it.
// Read-only (the reset rule is applied as a view, not a write), so
// observers and the event core's parking decision can call it freely.
func (n *Node) searchPassTick(u int) int {
	if n.suppress == nil {
		return 0
	}
	return n.suppress.PassTick(n.currentWindow(), n.version, graph.Edge{U: n.id, V: u}, -1)
}

// currentWindow is the read-only view of effectiveWindow: a tier whose
// version is stale reads as the base window (the reset that
// effectiveWindow would apply) without mutating the node.
func (n *Node) currentWindow() int {
	if !n.cfg.BackoffSearches || n.version != n.backoffVersion {
		return n.cfg.PruneWindow()
	}
	return n.backoffWindowAt(n.backoffTier)
}

// CurrentRetryPeriod is the node's present worst-case spacing between
// consecutive full passes of an equivalent Search token — the
// time-varying counterpart of Config.EffectiveRetryPeriod, tracking
// the adaptive backoff tier. Read-only: the sim cores derive dynamic
// quiescence-stability windows from the maximum over nodes, and the
// metrics plane samples it.
func (n *Node) CurrentRetryPeriod() int {
	p := n.cfg.SearchPeriod
	if !n.cfg.SuppressSearches {
		return p
	}
	if w := n.currentWindow(); w > p {
		return w
	}
	return p
}

// maybeStartSearches launches due searches from this node: plain searches
// (Block = -1) for non-tree edges toward higher IDs, guarded by the
// paper's locally_stabilized predicate and paced by SearchPeriod. With
// suppression on, launches are additionally batched: at most SearchBatch
// tokens leave per tick and the deferred edges stay due, so a node with
// many non-tree edges spreads its token burst over consecutive ticks
// instead of flooding them all at once.
func (n *Node) maybeStartSearches(ctx *sim.Context) {
	if !n.locallyStabilized() {
		return
	}
	// No reduction is ever possible below degree 3 (a degree-2 tree is a
	// Hamiltonian path, the global optimum).
	if n.dmax <= 2 {
		return
	}
	batch := -1
	if n.cfg.SuppressSearches {
		if batch = n.cfg.SearchBatch; batch <= 0 {
			batch = 2
		}
	}
	for _, u := range n.nbrs {
		if n.isTreeEdge(u) || n.id > u {
			continue
		}
		if n.tick < n.nextSearch[u] {
			continue
		}
		if batch == 0 {
			break // paced: the remaining due edges retry next tick
		}
		n.nextSearch[u] = n.tick + n.cfg.SearchPeriod + n.searchJitter(u)
		n.startSearch(ctx, u, -1, 0)
		if batch > 0 {
			batch--
		}
	}
}

// searchJitter desynchronizes retries of different initiators: two
// concurrent exchanges whose first hops compose into a parent cycle are
// individually legal (the conflict is not locally detectable), and with
// a common retry period the same pair can re-collide after every repair
// — a resonance that keeps the tree broken for over half of all rounds
// on some instances. A deterministic hash of (id, edge, tick) shifts
// each retry phase differently per node while keeping executions fully
// reproducible.
func (n *Node) searchJitter(u int) int {
	span := n.cfg.SearchPeriod / 2
	if span < 2 {
		return 0
	}
	h := uint64(n.id)*0x9e3779b97f4a7c15 ^ uint64(u)*0xc2b2ae3d27d4eb4f ^ uint64(n.tick)*0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int(h % uint64(span))
}

// startSearch launches one DFS token seeking `target` (the other
// endpoint of the non-tree edge {n.id, target}). block/ttl carry deblock
// context (-1/0 for plain searches).
func (n *Node) startSearch(ctx *sim.Context, target, block, ttl int) {
	first := n.firstTreeNeighbor(-1, -1, nil)
	if first < 0 {
		return // isolated in the tree: nothing to traverse
	}
	// Launch-side pruning: skip the token entirely when an equivalent one
	// left here within the window and nothing changed locally (the
	// deblock storm and the periodic retry of an unchanged cycle are the
	// two big redundant-traffic sources).
	if n.cfg.SuppressSearches && n.suppressSearch(graph.Edge{U: n.id, V: target}, block) {
		return
	}
	n.stats.SearchesLaunched++
	msg := SearchMsg{
		Init:  graph.Edge{U: n.id, V: target},
		Block: block,
		TTL:   ttl,
		Path:  []PathEntry{{Node: n.id, Deg: n.Deg(), Parent: n.parent, Cursor: first}},
	}
	ctx.Send(first, msg)
}

// firstTreeNeighbor returns the smallest tree neighbor with ID > after,
// excluding `exclude` and any node already on the path; -1 if none.
func (n *Node) firstTreeNeighbor(after, exclude int, path []PathEntry) int {
	for _, u := range n.nbrs {
		if u <= after || u == exclude || !n.isTreeEdge(u) {
			continue
		}
		onPath := false
		for i := range path {
			if path[i].Node == u {
				onPath = true
				break
			}
		}
		if !onPath {
			return u
		}
	}
	return -1
}

// handleSearch advances a DFS token through this node.
func (n *Node) handleSearch(ctx *sim.Context, from int, msg SearchMsg) {
	// The paper freezes the reduction modules until the neighborhood is
	// locally stabilized; tokens are simply dropped (searches repeat).
	if !n.locallyStabilized() {
		return
	}
	if len(msg.Path) == 0 {
		return
	}
	// Terminus: the token reached the sought endpoint of the init edge.
	if n.id == msg.Init.V {
		if from != msg.Path[len(msg.Path)-1].Node || !n.isTreeEdge(from) {
			return // stale token: the final hop is no longer a tree edge
		}
		if n.isTreeEdge(msg.Init.U) {
			return // init edge joined the tree meanwhile: no cycle
		}
		// Terminus pruning: an equivalent cycle was classified here within
		// the window with this node unchanged — the classification (and
		// any reversal or deblock it triggered) would repeat verbatim.
		if n.cfg.SuppressSearches && n.suppressSearch(msg.Init, msg.Block) {
			return
		}
		n.actionOnCycle(ctx, msg)
		return
	}
	top := len(msg.Path) - 1
	if msg.Path[top].Node == n.id {
		// Backtrack arrival: resume scanning from the stored cursor.
		if n.parent != msg.Path[top].Parent {
			return // this node re-parented since the token passed: drop
		}
	} else {
		// Descent arrival over a tree edge: push our entry. Backtrack
		// arrivals (the branch above) are one token's own DFS walk and are
		// never pruned — only this first arrival of a token is a candidate
		// duplicate of an earlier equivalent token.
		if !n.isTreeEdge(from) || msg.Path[top].Node != from {
			return
		}
		if n.cfg.SuppressSearches && n.suppressSearch(msg.Init, msg.Block) {
			return
		}
		msg.Path = append(msg.Path, PathEntry{Node: n.id, Deg: n.Deg(), Parent: n.parent, Cursor: -1})
		top++
	}
	prev := -1
	if top > 0 {
		prev = msg.Path[top-1].Node
	}
	next := n.firstTreeNeighbor(msg.Path[top].Cursor, prev, msg.Path[:top])
	if next >= 0 {
		msg.Path[top].Cursor = next
		ctx.Send(next, msg)
		return
	}
	// Subtree exhausted: backtrack.
	msg.Path = msg.Path[:top]
	if len(msg.Path) == 0 {
		return // initiator exhausted every branch without finding the
		// endpoint (the tree changed underneath): the search dies and a
		// later periodic search retries
	}
	if prev >= 0 && n.isTreeEdge(prev) {
		ctx.Send(prev, msg)
	}
}
