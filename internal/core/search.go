package core

import (
	"mdst/internal/graph"
	"mdst/internal/sim"
)

// Fundamental-cycle detection module (paper §3.2.2, Fig. 3). For every
// non-tree edge {v,u} with ID v < ID u, v periodically launches a Search
// token that performs a DFS over tree edges; the token's Path is the DFS
// stack, so when it first reaches u the stack is exactly the tree path
// from v to u — the fundamental cycle of {v,u}. No per-search state is
// stored at nodes: each stack entry carries a cursor marking the last
// tree neighbor tried, and backtracking resumes from it.

// maybeStartSearches launches due searches from this node: plain searches
// (Block = -1) for non-tree edges toward higher IDs, guarded by the
// paper's locally_stabilized predicate and paced by SearchPeriod.
func (n *Node) maybeStartSearches(ctx *sim.Context) {
	if !n.locallyStabilized() {
		return
	}
	// No reduction is ever possible below degree 3 (a degree-2 tree is a
	// Hamiltonian path, the global optimum).
	if n.dmax <= 2 {
		return
	}
	for _, u := range n.nbrs {
		if n.isTreeEdge(u) || n.id > u {
			continue
		}
		if n.tick < n.nextSearch[u] {
			continue
		}
		n.nextSearch[u] = n.tick + n.cfg.SearchPeriod + n.searchJitter(u)
		n.startSearch(ctx, u, -1, 0)
	}
}

// searchJitter desynchronizes retries of different initiators: two
// concurrent exchanges whose first hops compose into a parent cycle are
// individually legal (the conflict is not locally detectable), and with
// a common retry period the same pair can re-collide after every repair
// — a resonance that keeps the tree broken for over half of all rounds
// on some instances. A deterministic hash of (id, edge, tick) shifts
// each retry phase differently per node while keeping executions fully
// reproducible.
func (n *Node) searchJitter(u int) int {
	span := n.cfg.SearchPeriod / 2
	if span < 2 {
		return 0
	}
	h := uint64(n.id)*0x9e3779b97f4a7c15 ^ uint64(u)*0xc2b2ae3d27d4eb4f ^ uint64(n.tick)*0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int(h % uint64(span))
}

// startSearch launches one DFS token seeking `target` (the other
// endpoint of the non-tree edge {n.id, target}). block/ttl carry deblock
// context (-1/0 for plain searches).
func (n *Node) startSearch(ctx *sim.Context, target, block, ttl int) {
	first := n.firstTreeNeighbor(-1, -1, nil)
	if first < 0 {
		return // isolated in the tree: nothing to traverse
	}
	n.stats.SearchesLaunched++
	msg := SearchMsg{
		Init:  graph.Edge{U: n.id, V: target},
		Block: block,
		TTL:   ttl,
		Path:  []PathEntry{{Node: n.id, Deg: n.Deg(), Parent: n.parent, Cursor: first}},
	}
	ctx.Send(first, msg)
}

// firstTreeNeighbor returns the smallest tree neighbor with ID > after,
// excluding `exclude` and any node already on the path; -1 if none.
func (n *Node) firstTreeNeighbor(after, exclude int, path []PathEntry) int {
	for _, u := range n.nbrs {
		if u <= after || u == exclude || !n.isTreeEdge(u) {
			continue
		}
		onPath := false
		for i := range path {
			if path[i].Node == u {
				onPath = true
				break
			}
		}
		if !onPath {
			return u
		}
	}
	return -1
}

// handleSearch advances a DFS token through this node.
func (n *Node) handleSearch(ctx *sim.Context, from int, msg SearchMsg) {
	// The paper freezes the reduction modules until the neighborhood is
	// locally stabilized; tokens are simply dropped (searches repeat).
	if !n.locallyStabilized() {
		return
	}
	if len(msg.Path) == 0 {
		return
	}
	// Terminus: the token reached the sought endpoint of the init edge.
	if n.id == msg.Init.V {
		if from != msg.Path[len(msg.Path)-1].Node || !n.isTreeEdge(from) {
			return // stale token: the final hop is no longer a tree edge
		}
		if n.isTreeEdge(msg.Init.U) {
			return // init edge joined the tree meanwhile: no cycle
		}
		n.actionOnCycle(ctx, msg)
		return
	}
	top := len(msg.Path) - 1
	if msg.Path[top].Node == n.id {
		// Backtrack arrival: resume scanning from the stored cursor.
		if n.parent != msg.Path[top].Parent {
			return // this node re-parented since the token passed: drop
		}
	} else {
		// Descent arrival over a tree edge: push our entry.
		if !n.isTreeEdge(from) || msg.Path[top].Node != from {
			return
		}
		msg.Path = append(msg.Path, PathEntry{Node: n.id, Deg: n.Deg(), Parent: n.parent, Cursor: -1})
		top++
	}
	prev := -1
	if top > 0 {
		prev = msg.Path[top-1].Node
	}
	next := n.firstTreeNeighbor(msg.Path[top].Cursor, prev, msg.Path[:top])
	if next >= 0 {
		msg.Path[top].Cursor = next
		ctx.Send(next, msg)
		return
	}
	// Subtree exhausted: backtrack.
	msg.Path = msg.Path[:top]
	if len(msg.Path) == 0 {
		return // initiator exhausted every branch without finding the
		// endpoint (the tree changed underneath): the search dies and a
		// later periodic search retries
	}
	if prev >= 0 && n.isTreeEdge(prev) {
		ctx.Send(prev, msg)
	}
}
