package core

import (
	"mdst/internal/graph"
	"mdst/internal/sim"
)

// Degree-reduction module (paper §3.2.4, Figs. 1, 2, 4, 5).
//
// actionOnCycle runs at the terminus x of a Search for the non-tree edge
// {y, x} (y = Init.U) once the token has collected the fundamental cycle
// y .. x. It classifies the cycle exactly as the paper's
// Action_on_Cycle: a direct improvement when the cycle holds a
// maximum-degree node and both endpoints have degree < dmax-1; a Deblock
// when an endpoint is a blocking node (degree dmax-1); for deblock
// searches (Block >= 0) the same tests target the blocked node instead.
//
// The exchange itself (improve) is a ReverseMsg chain along the cycle:
// each hop re-parents one node onto the message sender, so the tree
// remains a spanning tree after every atomic step, and the final hop
// both removes the target edge and flips the local color (the paper's
// Remove/Back/Reverse + color toggle, substitution S3 in DESIGN.md).

// actionOnCycle classifies the completed cycle and reacts.
func (n *Node) actionOnCycle(ctx *sim.Context, msg SearchMsg) {
	n.stats.CyclesClassified++
	path := msg.Path
	y := msg.Init.U
	vy := n.views.Get(y)
	if vy == nil {
		return
	}
	myDeg := n.Deg()
	endMax := myDeg
	if vy.Deg > endMax {
		endMax = vy.Deg
	}
	if msg.Block < 0 {
		dpath := 0
		for i := range path {
			if path[i].Deg > dpath {
				dpath = path[i].Deg
			}
		}
		if dpath != n.dmax {
			return // no maximum-degree node on this cycle
		}
		switch {
		case endMax < n.dmax-1:
			// Improving edge (the paper's Eq. 1): pick the min-ID node of
			// maximum degree on the path and remove its successor edge.
			wi := -1
			for i := range path {
				if path[i].Deg == dpath && (wi == -1 || path[i].Node < path[wi].Node) {
					wi = i
				}
			}
			if wi > 0 { // endpoints can never be targets (degree < dmax-1)
				n.startReversal(ctx, msg.Init, path, wi, path[wi].Deg)
			}
		case endMax == n.dmax-1:
			// A blocking endpoint: try to reduce its degree first.
			n.triggerDeblock(ctx, y, myDeg, vy.Deg)
		}
		return
	}

	// Deblock search: the cycle must pass through the blocked node.
	b := msg.Block
	if b == n.id || b == y {
		return
	}
	bi := -1
	for i := range path {
		if path[i].Node == b {
			bi = i
			break
		}
	}
	if bi <= 0 {
		return // not on this cycle (or recorded as initiator: impossible)
	}
	if path[bi].Deg != n.dmax-1 {
		return // no longer a blocking node: stale
	}
	switch {
	case endMax < n.dmax-1:
		if n.cfg.DeblockTieBreak {
			// Equal-potential exchange guard (DESIGN.md S4): an endpoint
			// rising to dmax-1 must have a smaller ID than the blocked
			// node it replaces, or the exchange could oscillate. When the
			// removed edge (b, successor) is incident to this node (the
			// successor is the terminus itself), its degree change nets
			// to zero and the guard does not apply to it.
			zIsSelf := bi+1 == len(path)
			if !zIsSelf && myDeg == n.dmax-2 && n.id > b {
				return
			}
			if vy.Deg == n.dmax-2 && y > b {
				return
			}
		}
		n.startReversal(ctx, msg.Init, path, bi, path[bi].Deg)
	case endMax == n.dmax-1 && msg.TTL > 0:
		n.triggerDeblockTTL(ctx, y, myDeg, vy.Deg, msg.TTL-1)
	}
}

// triggerDeblock starts a deblock for whichever endpoint of the init
// edge blocks the improvement, with a fresh TTL.
func (n *Node) triggerDeblock(ctx *sim.Context, y, myDeg, yDeg int) {
	n.triggerDeblockTTL(ctx, y, myDeg, yDeg, n.cfg.DeblockTTL)
}

// triggerDeblockTTL is the paper's Deblock(y, s): the higher-degree
// endpoint becomes the blocked node; ties trigger both.
func (n *Node) triggerDeblockTTL(ctx *sim.Context, y, myDeg, yDeg, ttl int) {
	if ttl <= 0 {
		return
	}
	if myDeg >= yDeg {
		n.broadcastDeblock(ctx, n.id, ttl, -1)
	}
	if yDeg >= myDeg {
		ctx.Send(y, DeblockMsg{Block: y, TTL: ttl})
	}
}

// broadcastDeblock floods a Deblock through the blocked node's subtree
// (the paper's Broadcast) and launches the local deblock searches.
func (n *Node) broadcastDeblock(ctx *sim.Context, block, ttl, except int) {
	if last, ok := n.lastDeblock[block]; ok && n.tick-last < n.cfg.SearchPeriod {
		return // suppress storms: this subtree was just asked
	}
	n.lastDeblock[block] = n.tick
	n.stats.DeblocksTriggered++
	for _, u := range n.nbrs {
		if u == except || !n.isTreeEdge(u) {
			continue
		}
		if v := n.views.Get(u); v.Parent == n.id { // children only: subtree flood
			ctx.Send(u, DeblockMsg{Block: block, TTL: ttl})
		}
	}
	// Cycle_Search(idblock) for every incident non-tree edge: deblock
	// searches ignore the ID-order rule (the cycle just has to pass
	// through the blocked node).
	for _, u := range n.nbrs {
		if !n.isTreeEdge(u) {
			n.startSearch(ctx, u, block, ttl)
		}
	}
}

// handleDeblock processes a Deblock received from a neighbor.
func (n *Node) handleDeblock(ctx *sim.Context, from int, msg DeblockMsg) {
	if !n.locallyStabilized() || msg.TTL <= 0 {
		return
	}
	n.broadcastDeblock(ctx, msg.Block, msg.TTL, from)
}

// startReversal builds and launches the edge-exchange chain for the
// cycle C = path .. x (x = this node), targeting the cycle edge
// {w, z} where w = path[wi].Node and z is w's successor on the cycle.
func (n *Node) startReversal(ctx *sim.Context, init graph.Edge, path []PathEntry, wi, targetDeg int) {
	w := path[wi].Node
	var z, zParent int
	if wi+1 < len(path) {
		z = path[wi+1].Node
		zParent = path[wi+1].Parent
	} else {
		z = n.id
		zParent = n.parent
	}
	y := init.U

	switch {
	case path[wi].Parent == z:
		// Child end is w: the detached component contains y (Fig. 5a);
		// the chain re-parents y, path[1..wi], ending at w, terminator z.
		chain := make([]int, 0, wi+2)
		for i := 0; i <= wi; i++ {
			chain = append(chain, path[i].Node)
		}
		chain = append(chain, z)
		ctx.Send(y, ReverseMsg{
			Init:       init,
			DegMax:     n.dmax,
			TargetNode: w,
			TargetDeg:  targetDeg,
			Nodes:      chain,
			Dist:       n.distance + 1,
		})
	case zParent == w:
		// Child end is z: the detached component contains this node
		// (Fig. 5b); the chain starts here and walks back to z,
		// terminator w. Apply the first hop locally.
		chain := make([]int, 0, len(path)-wi+1)
		chain = append(chain, n.id)
		for i := len(path) - 1; i > wi; i-- {
			chain = append(chain, path[i].Node)
		}
		chain = append(chain, w)
		if n.parent != chain[1] {
			return // stale orientation
		}
		vy := n.views.Get(y)
		old := n.parent
		n.parent = y
		n.distance = vy.Distance + 1
		n.version++
		n.stats.ExchangesApplied++
		if n.audit != nil {
			n.audit(MutationExchange, old, y)
		}
		if len(chain) == 2 {
			// Degenerate chain [x, w]: the exchange is complete and this
			// node was adjacent to the target.
			n.stats.ExchangesComplete++
			n.color = !n.color
		} else {
			ctx.Send(chain[1], ReverseMsg{
				Init:       init,
				DegMax:     n.dmax,
				TargetNode: w,
				TargetDeg:  targetDeg,
				Nodes:      chain[1:],
				Dist:       n.distance + 1,
			})
		}
		n.notifyChildrenDist(ctx, chain[1])
	default:
		// Neither endpoint of {w,z} is the other's parent: the tree
		// changed since the token recorded the path. Drop.
	}
}

// handleReverse applies one hop of an edge-exchange chain.
func (n *Node) handleReverse(ctx *sim.Context, from int, msg ReverseMsg) {
	if len(msg.Nodes) < 2 || msg.Nodes[0] != n.id {
		return
	}
	expectedParent := msg.Nodes[1]
	if n.parent != expectedParent {
		n.stats.ChainsAborted++
		return // stale chain: abort (the tree stays a spanning tree)
	}
	first := (msg.Init.U == from && msg.Init.V == n.id) ||
		(msg.Init.V == from && msg.Init.U == n.id)
	last := len(msg.Nodes) == 2
	if first {
		// Attachment hop: re-validate the improving-edge conditions with
		// this node's exact local knowledge before mutating anything.
		if n.isTreeEdge(from) || n.dmax != msg.DegMax || n.Deg() > msg.DegMax-2 {
			n.stats.ChainsAborted++
			return
		}
	}
	if last && msg.TargetNode == n.id {
		// Final hop at the reduced node itself: the paper's target_remove
		// check — degree and dmax must still match the decision context.
		if n.Deg() != msg.TargetDeg || n.dmax != msg.DegMax {
			n.stats.ChainsAborted++
			return
		}
	}
	n.parent = from
	n.distance = msg.Dist
	n.version++
	n.stats.ExchangesApplied++
	if n.audit != nil {
		n.audit(MutationExchange, expectedParent, from)
	}
	if last {
		n.stats.ExchangesComplete++
		n.color = !n.color // the paper's color toggle at the removal site
	} else {
		ctx.Send(expectedParent, ReverseMsg{
			Init:       msg.Init,
			DegMax:     msg.DegMax,
			TargetNode: msg.TargetNode,
			TargetDeg:  msg.TargetDeg,
			Nodes:      msg.Nodes[1:],
			Dist:       msg.Dist + 1,
		})
	}
	n.notifyChildrenDist(ctx, expectedParent)
}

// notifyChildrenDist floods UpdateDist to the node's children (except the
// chain successor, which re-parents itself) so their subtree distances
// are repaired proactively rather than by R2 churn.
func (n *Node) notifyChildrenDist(ctx *sim.Context, except int) {
	for _, u := range n.nbrs {
		if u == except {
			continue
		}
		if v := n.views.Get(u); v.Parent == n.id {
			ctx.Send(u, UpdateDistMsg{Dist: n.distance})
		}
	}
}

// handleUpdateDist repairs this node's distance from its parent's
// announcement and propagates downward on change. Announcements beyond
// the distance bound are dropped: in a transient parent cycle the flood
// would otherwise circulate forever (the forwarding condition is met all
// the way around), repeatedly re-raising distances that rule R2's patch
// repair pulls back down — a livelock that keeps the cycle alive. With
// the bound the flood dies out and the patch-climb reaches MaxDist,
// where create_new_root breaks the cycle.
func (n *Node) handleUpdateDist(ctx *sim.Context, from int, msg UpdateDistMsg) {
	if from != n.parent {
		return
	}
	if msg.Dist+1 > n.cfg.MaxDist {
		return
	}
	if n.distance == msg.Dist+1 {
		return
	}
	n.distance = msg.Dist + 1
	n.version++
	for _, u := range n.nbrs {
		if v := n.views.Get(u); v.Parent == n.id {
			ctx.Send(u, UpdateDistMsg{Dist: n.distance})
		}
	}
}
