package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mdst/internal/graph"
	"mdst/internal/sim"
)

func runOnce(t *testing.T, name string, g *graph.Graph, cfg Config, seed int64, sched sim.Scheduler, corrupt bool) {
	t.Helper()
	net := BuildNetwork(g, cfg, seed)
	if corrupt {
		rng := rand.New(rand.NewSource(seed + 1000))
		for _, nd := range NodesOf(net) {
			nd.Corrupt(rng, g.N())
		}
	}
	res := net.Run(sim.RunConfig{
		Scheduler:     sched,
		MaxRounds:     20000,
		QuiesceRounds: 2*g.N() + 40,
		ActiveKinds:   ReductionKinds(),
	})
	leg := CheckLegitimacy(g, NodesOf(net))
	fmt.Printf("%s: converged=%v rounds=%d lastChange=%d deg=%d legOK=%v detail=%s\n",
		name, res.Converged, res.Rounds, res.LastChangeRound, leg.MaxDegree, leg.OK(), leg.Detail)
	if !res.Converged || !leg.OK() {
		t.Errorf("%s FAILED: %+v", name, leg)
	}
}

func TestSmokeConvergence(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"wheel8", graph.Wheel(8)},
		{"ring12", graph.Ring(12)},
		{"grid4", graph.Grid(4, 4)},
		{"gnp20", graph.RandomGnp(20, 0.25, rand.New(rand.NewSource(1)))},
		{"cliques", graph.StarOfCliques(3, 4)},
		{"ham24", graph.HamiltonianAugmented(24, 40, rand.New(rand.NewSource(2)))},
	} {
		runOnce(t, tc.name+"/sync", tc.g, DefaultConfig(tc.g.N()), 42, sim.NewSyncScheduler(), false)
		runOnce(t, tc.name+"/sync-corrupt", tc.g, DefaultConfig(tc.g.N()), 43, sim.NewSyncScheduler(), true)
		runOnce(t, tc.name+"/async-corrupt", tc.g, DefaultConfig(tc.g.N()), 44, sim.NewAsyncScheduler(), true)
	}
}

func TestSmokeRepairReset(t *testing.T) {
	g := graph.RandomGnp(16, 0.3, rand.New(rand.NewSource(3)))
	cfg := DefaultConfig(g.N())
	cfg.Repair = RepairReset
	runOnce(t, "reset-corrupt", g, cfg, 45, sim.NewSyncScheduler(), true)
}
