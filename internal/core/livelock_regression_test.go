package core

import (
	"math/rand"
	"testing"

	"mdst/internal/graph"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// Regression for a concurrent-exchange livelock: two first hops of
// different exchanges (init edges {5,7} and {3,5} on this instance)
// each pass their local staleness checks yet compose into a parent
// cycle 3→7→5→3 — a conflict that is not locally detectable. The cycle
// heals by counting distances to MaxDist (~30 rounds), but with a
// common fixed SearchPeriod the same two initiators retried in lockstep
// and re-collided after every repair: the tree stayed broken for over
// half of 30000 rounds. Fixed by deterministic per-(node,edge,tick)
// search jitter plus the MaxDist guard on UpdateDist floods (which
// otherwise circulate in a parent cycle forever).
func TestLivelockRegressionSeed(t *testing.T) {
	seed := int64(-1323176858476467178)
	rng := rand.New(rand.NewSource(seed))
	n := 6 + rng.Intn(10) // 14 for this seed
	g := graph.RandomGnp(n, 0.35, rng)
	net := BuildNetwork(g, DefaultConfig(n), seed)
	tree := spanning.BFSTree(g, 0)
	loadTreeQ(g, net, tree)
	broken := 0
	net.Run(sim.RunConfig{
		Scheduler: sim.NewSyncScheduler(),
		MaxRounds: 80 * n,
		OnRound: func(r int) bool {
			if _, err := ExtractTree(g, NodesOf(net)); err != nil {
				broken++
			}
			return true
		},
	})
	if _, err := ExtractTree(g, NodesOf(net)); err != nil {
		t.Fatalf("tree still broken after %d broken rounds: %v", broken, err)
	}
	if broken > 8*n {
		t.Fatalf("breakage not transient: %d broken rounds", broken)
	}
}

// The searchJitter hash must spread retry phases: over one period the
// jitters of distinct (node, edge) pairs must not all coincide, and the
// value must stay within [0, SearchPeriod).
func TestSearchJitterSpreads(t *testing.T) {
	cfg := DefaultConfig(16)
	seen := map[int]bool{}
	for id := 0; id < 8; id++ {
		nd := NewNode(id, []int{(id + 1) % 16}, cfg)
		nd.tick = 100
		j := nd.searchJitter((id + 1) % 16)
		if j < 0 || j >= cfg.SearchPeriod {
			t.Fatalf("jitter %d out of [0,%d)", j, cfg.SearchPeriod)
		}
		seen[j] = true
	}
	if len(seen) < 3 {
		t.Fatalf("jitter collapsed to %d distinct values across 8 nodes", len(seen))
	}
}

// Regression for the wrong-root trap: rule R1 only adopts strictly
// smaller advertised roots and R2 fires only on local incoherence, so a
// corruption that leaves the minimum-ID node coherently parented inside
// a tree claiming a larger root was STABLE — the network converged to a
// fixed point rooted at the wrong node (RootIsMin false, everything
// else legitimate). Fixed by the self-ID guard in new_root_candidate
// (root > id is always illegal). Seed from a testing/quick failure.
func TestWrongRootRegressionSeed(t *testing.T) {
	seed := int64(-1786155139805918231)
	rng := rand.New(rand.NewSource(seed))
	n := 5 + rng.Intn(8)
	g := graph.RandomGnp(n, 0.25+rng.Float64()*0.3, rng)
	net := BuildNetwork(g, DefaultConfig(n), seed)
	for _, nd := range NodesOf(net) {
		nd.Corrupt(rng, n)
	}
	res := runToQuiescence(net, g, sim.NewAsyncScheduler(), 0)
	if !res.Converged {
		t.Fatal("no quiescence")
	}
	leg := CheckLegitimacy(g, NodesOf(net))
	if !leg.OK() {
		t.Fatalf("not legitimate: %+v", leg)
	}
}

// Unit form of the trap: node 0 corrupted into a coherent position of a
// tree rooted at 2 must still escape (its root variable exceeds its ID).
func TestSelfIDGuardEscapesWrongRoot(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	net := BuildNetwork(g, DefaultConfig(3), 1)
	nodes := NodesOf(net)
	// Tree rooted at 2: 2 self-parented, 1 -> 2, 0 -> 1; all roots = 2;
	// coherent distances; coherent views.
	nodes[2].SetState(2, 2, 0, 1, 1, false)
	nodes[1].SetState(2, 2, 1, 1, 1, false)
	nodes[0].SetState(2, 1, 2, 1, 1, false)
	nodes[0].SetView(1, View{Root: 2, Parent: 2, Distance: 1, Dmax: 1, Submax: 1, Deg: 2})
	nodes[1].SetView(2, View{Root: 2, Parent: 2, Distance: 0, Dmax: 1, Submax: 1, Deg: 1})
	nodes[1].SetView(0, View{Root: 2, Parent: 1, Distance: 2, Dmax: 1, Submax: 1, Deg: 1})
	nodes[2].SetView(1, View{Root: 2, Parent: 2, Distance: 1, Dmax: 1, Submax: 1, Deg: 2})
	res := runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
	if !res.Converged {
		t.Fatal("no quiescence")
	}
	leg := CheckLegitimacy(g, NodesOf(net))
	if !leg.RootIsMin {
		t.Fatalf("still rooted at the wrong node: %+v", leg)
	}
}
