package core

// Spanning-tree module (paper §3.2.1): a simplification of the BFS
// construction of Afek-Kutten-Yung [1]. The tree is rooted at the
// minimum known root value; rule R1 ("correction parent") adopts a
// neighbor advertising a smaller root, rule R2 ("correction root")
// re-creates a local root on incoherence. All predicates evaluate the
// node's own variables against its local copies of the neighbors'
// variables, exactly as in the paper.
//
// Distances are bounded by cfg.MaxDist (nodes know an upper bound on n),
// which terminates the count-to-infinity epidemic of forged root values
// that the pure rules admit; see DESIGN.md.

// betterParent is the paper's better_parent(v): some neighbor advertises
// a strictly smaller root (and would not push us past the distance
// bound).
func (n *Node) betterParent() bool {
	for _, u := range n.nbrs {
		v := n.view[u]
		if v.Root < n.root && v.Distance+1 <= n.cfg.MaxDist {
			return true
		}
	}
	return false
}

// bestParentCandidate returns the neighbor with the minimal advertised
// root, ties broken by minimal ID (the paper's argmin).
func (n *Node) bestParentCandidate() int {
	best := -1
	for _, u := range n.nbrs { // nbrs sorted ascending: first hit wins ties
		v := n.view[u]
		if v.Root >= n.root || v.Distance+1 > n.cfg.MaxDist {
			continue
		}
		if best == -1 || v.Root < n.view[best].Root {
			best = u
		}
	}
	return best
}

// coherentParent is the paper's coherent_parent(v), strengthened with the
// implied self-root consistency (parent = v requires root = v, which
// create_new_root always establishes).
func (n *Node) coherentParent() bool {
	if n.parent == n.id {
		return n.root == n.id
	}
	v, ok := n.view[n.parent]
	return ok && v.Root == n.root
}

// coherentDistance is the paper's coherent_distance(v) plus the distance
// bound.
func (n *Node) coherentDistance() bool {
	if n.parent == n.id {
		return n.distance == 0
	}
	v, ok := n.view[n.parent]
	if !ok {
		return false
	}
	return n.distance == v.Distance+1 && n.distance <= n.cfg.MaxDist
}

// newRootCandidate is the paper's new_root_candidate(v), strengthened
// with the self-ID guard of the Afek-Kutten-Yung election the paper
// builds on: a root variable exceeding the node's own ID is always
// illegal (the node itself would be the better root). Without this
// guard a corruption that leaves the minimum-ID node in a locally
// coherent position inside a tree claiming a larger root is STABLE:
// rule R1 only ever adopts smaller advertised roots, so nobody ever
// injects the true minimum and the network converges to a legitimate-
// looking configuration rooted at the wrong node.
func (n *Node) newRootCandidate() bool {
	return n.root > n.id || !n.coherentParent() || !n.coherentDistance()
}

// treeStabilized is the paper's tree_stabilized(v).
func (n *Node) treeStabilized() bool {
	return !n.betterParent() && !n.newRootCandidate()
}

// degreeStabilized is the paper's degree_stabilized(v): all neighbors
// agree on dmax.
func (n *Node) degreeStabilized() bool {
	for _, u := range n.nbrs {
		if n.view[u].Dmax != n.dmax {
			return false
		}
	}
	return true
}

// colorStabilized is the paper's color_stabilized(v).
func (n *Node) colorStabilized() bool {
	for _, u := range n.nbrs {
		if n.view[u].Color != n.color {
			return false
		}
	}
	return true
}

// locallyStabilized is the paper's locally_stabilized(v): the guard that
// freezes the reduction modules while the tree or the degree information
// is in flux.
func (n *Node) locallyStabilized() bool {
	return n.treeStabilized() && n.degreeStabilized() && n.colorStabilized()
}

// createNewRoot is the paper's create_new_root(v).
func (n *Node) createNewRoot() {
	n.root = n.id
	n.parent = n.id
	n.distance = 0
}

// changeParentTo is the paper's change_parent_to(v,u).
func (n *Node) changeParentTo(u int) {
	v := n.view[u]
	n.root = v.Root
	n.parent = u
	n.distance = v.Distance + 1
}

// runTreeModule applies R2 then R1 — the highest-priority module.
func (n *Node) runTreeModule() {
	if n.newRootCandidate() {
		switch n.cfg.Repair {
		case RepairReset:
			n.createNewRoot()
		case RepairPatch:
			if n.root > n.id || n.parent == n.id || !n.coherentParent() ||
				n.view[n.parent].Distance+1 > n.cfg.MaxDist {
				n.createNewRoot()
			} else {
				// Parent relation is sound; only the distance drifted
				// (typically after an edge reversal): re-derive it.
				n.distance = n.view[n.parent].Distance + 1
			}
		}
	}
	if !n.newRootCandidate() && n.betterParent() {
		if u := n.bestParentCandidate(); u >= 0 {
			n.changeParentTo(u)
		}
	}
}

// Maximum-degree module (paper §3.2.3): the continuous piggybacked PIF.
// The feedback half folds subtree maxima upward through submax; the
// propagation half copies (dmax, color) downward from the parent; the
// root flips color whenever its computed maximum changes, freezing
// reductions network-wide until every neighborhood agrees again.
func (n *Node) runDegreeModule() {
	deg := n.Deg()
	sub := deg
	for _, u := range n.nbrs {
		v := n.view[u]
		if v.Parent == n.id && u != n.parent { // u is a child
			if v.Submax > sub {
				sub = v.Submax
			}
		}
	}
	n.submax = sub
	if n.parent == n.id {
		if n.dmax != sub {
			n.dmax = sub
			n.color = !n.color
		}
		return
	}
	if v, ok := n.view[n.parent]; ok {
		n.dmax = v.Dmax
		n.color = v.Color
	}
}
