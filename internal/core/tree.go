package core

// Spanning-tree module (paper §3.2.1): a simplification of the BFS
// construction of Afek-Kutten-Yung [1]. The tree is rooted at the
// minimum known root value; rule R1 ("correction parent") adopts a
// neighbor advertising a smaller root, rule R2 ("correction root")
// re-creates a local root on incoherence. All predicates evaluate the
// node's own variables against its local copies of the neighbors'
// variables, exactly as in the paper.
//
// Distances are bounded by cfg.MaxDist (nodes know an upper bound on n),
// which terminates the count-to-infinity epidemic of forged root values
// that the pure rules admit; see DESIGN.md.
//
// Every write below goes through a changed-value guard that bumps the
// node's state version: the simulator's incremental fingerprint cache
// relies on the version staying put across no-op module runs.

// betterParent is the paper's better_parent(v): some neighbor advertises
// a strictly smaller root (and would not push us past the distance
// bound).
func (n *Node) betterParent() bool {
	for i := 0; i < n.views.Len(); i++ {
		v := n.views.At(i)
		if v.Root < n.root && v.Distance+1 <= n.cfg.MaxDist {
			return true
		}
	}
	return false
}

// bestParentCandidate returns the neighbor with the minimal advertised
// root, ties broken by minimal ID (the paper's argmin).
func (n *Node) bestParentCandidate() int {
	best := -1
	var bestRoot int
	for i := 0; i < n.views.Len(); i++ { // positions sorted by ID: first hit wins ties
		v := n.views.At(i)
		if v.Root >= n.root || v.Distance+1 > n.cfg.MaxDist {
			continue
		}
		if best == -1 || v.Root < bestRoot {
			best = n.views.ID(i)
			bestRoot = v.Root
		}
	}
	return best
}

// coherentParent is the paper's coherent_parent(v), strengthened with the
// implied self-root consistency (parent = v requires root = v, which
// create_new_root always establishes).
func (n *Node) coherentParent() bool {
	if n.parent == n.id {
		return n.root == n.id
	}
	v := n.views.Get(n.parent)
	return v != nil && v.Root == n.root
}

// coherentDistance is the paper's coherent_distance(v) plus the distance
// bound.
func (n *Node) coherentDistance() bool {
	if n.parent == n.id {
		return n.distance == 0
	}
	v := n.views.Get(n.parent)
	if v == nil {
		return false
	}
	return n.distance == v.Distance+1 && n.distance <= n.cfg.MaxDist
}

// newRootCandidate is the paper's new_root_candidate(v), strengthened
// with the self-ID guard of the Afek-Kutten-Yung election the paper
// builds on: a root variable exceeding the node's own ID is always
// illegal (the node itself would be the better root). Without this
// guard a corruption that leaves the minimum-ID node in a locally
// coherent position inside a tree claiming a larger root is STABLE:
// rule R1 only ever adopts smaller advertised roots, so nobody ever
// injects the true minimum and the network converges to a legitimate-
// looking configuration rooted at the wrong node.
func (n *Node) newRootCandidate() bool {
	return n.root > n.id || !n.coherentParent() || !n.coherentDistance()
}

// treeStabilized is the paper's tree_stabilized(v).
func (n *Node) treeStabilized() bool {
	return !n.betterParent() && !n.newRootCandidate()
}

// degreeStabilized is the paper's degree_stabilized(v): all neighbors
// agree on dmax.
func (n *Node) degreeStabilized() bool {
	for i := 0; i < n.views.Len(); i++ {
		if n.views.At(i).Dmax != n.dmax {
			return false
		}
	}
	return true
}

// colorStabilized is the paper's color_stabilized(v).
func (n *Node) colorStabilized() bool {
	for i := 0; i < n.views.Len(); i++ {
		if n.views.At(i).Color != n.color {
			return false
		}
	}
	return true
}

// locallyStabilized is the paper's locally_stabilized(v): the guard that
// freezes the reduction modules while the tree or the degree information
// is in flux.
func (n *Node) locallyStabilized() bool {
	return n.treeStabilized() && n.degreeStabilized() && n.colorStabilized()
}

// createNewRoot is the paper's create_new_root(v).
func (n *Node) createNewRoot() {
	if n.root != n.id || n.parent != n.id || n.distance != 0 {
		old := n.parent
		n.root = n.id
		n.parent = n.id
		n.distance = 0
		n.version++
		if n.audit != nil {
			n.audit(MutationReset, old, n.id)
		}
	}
}

// changeParentTo is the paper's change_parent_to(v,u).
func (n *Node) changeParentTo(u int) {
	v := n.views.Get(u)
	if n.root != v.Root || n.parent != u || n.distance != v.Distance+1 {
		old := n.parent
		n.root = v.Root
		n.parent = u
		n.distance = v.Distance + 1
		n.version++
		if n.audit != nil {
			n.audit(MutationParent, old, u)
		}
	}
}

// setDistance writes the distance variable through the version guard.
func (n *Node) setDistance(d int) {
	if n.distance != d {
		n.distance = d
		n.version++
	}
}

// runTreeModule applies R2 then R1 — the highest-priority module.
func (n *Node) runTreeModule() {
	if n.newRootCandidate() {
		switch n.cfg.Repair {
		case RepairReset:
			n.createNewRoot()
		case RepairPatch:
			if n.root > n.id || n.parent == n.id || !n.coherentParent() ||
				n.views.Get(n.parent).Distance+1 > n.cfg.MaxDist {
				n.createNewRoot()
			} else {
				// Parent relation is sound; only the distance drifted
				// (typically after an edge reversal): re-derive it.
				n.setDistance(n.views.Get(n.parent).Distance + 1)
			}
		}
	}
	if !n.newRootCandidate() && n.betterParent() {
		if u := n.bestParentCandidate(); u >= 0 {
			n.changeParentTo(u)
		}
	}
}

// Maximum-degree module (paper §3.2.3): the continuous piggybacked PIF.
// The feedback half folds subtree maxima upward through submax; the
// propagation half copies (dmax, color) downward from the parent; the
// root flips color whenever its computed maximum changes, freezing
// reductions network-wide until every neighborhood agrees again.
func (n *Node) runDegreeModule() {
	deg := n.Deg()
	sub := deg
	for i := 0; i < n.views.Len(); i++ {
		v := n.views.At(i)
		if v.Parent == n.id && n.views.ID(i) != n.parent { // a child
			if v.Submax > sub {
				sub = v.Submax
			}
		}
	}
	if n.submax != sub {
		n.submax = sub
		n.version++
	}
	if n.parent == n.id {
		if n.dmax != sub {
			n.dmax = sub
			n.color = !n.color
			n.version++
		}
		return
	}
	if v := n.views.Get(n.parent); v != nil {
		if n.dmax != v.Dmax || n.color != v.Color {
			n.dmax = v.Dmax
			n.color = v.Color
			n.version++
		}
	}
}
