package core

import "mdst/internal/graph"

// Message kinds, exported for metric queries and stop conditions.
const (
	KindInfo       = "info"
	KindSearch     = "search"
	KindReverse    = "reverse"
	KindDeblock    = "deblock"
	KindUpdateDist = "updatedist"
)

// ReductionKinds lists the message kinds that must drain before a
// configuration can be considered quiescent (an in-flight reversal can
// still change the tree). Search and Deblock are deliberately absent:
// both keep flowing forever at a fixed point by design (periodic
// searches, deblock floods that find nothing), and neither mutates state
// by itself; runners pair this list with a fingerprint-stability window
// of at least 2n rounds, which covers any token still in flight.
func ReductionKinds() []string {
	return []string{KindReverse, KindUpdateDist}
}

// InfoMsg is the paper's InfoMsg: the periodic gossip carrying a node's
// protocol variables to its neighbors, implementing the send/receive
// atomicity model (each node keeps a local copy of its neighbors'
// variables, refreshed only by these messages).
type InfoMsg struct {
	Root     int
	Parent   int
	Distance int
	Dmax     int
	Submax   int
	Deg      int
	Color    bool
}

// Kind implements sim.Message.
func (InfoMsg) Kind() string { return KindInfo }

// Size implements sim.Message: seven O(log n) words.
func (InfoMsg) Size() int { return 7 }

// PathEntry is one node's record on a Search token's DFS stack: its
// identity, tree degree and parent (used to orient the removal), and the
// cursor of the last tree neighbor tried (so no per-search state is ever
// stored at nodes, as in the paper — the path lives in the message).
type PathEntry struct {
	Node   int
	Deg    int
	Parent int
	Cursor int // last tree neighbor tried at this node; -1 before any
}

// SearchMsg is the paper's Search message: a DFS token over tree edges
// looking for the fundamental cycle of the non-tree edge Init. Block is
// the blocking node being deblocked (-1 for a plain search); TTL bounds
// deblock recursion.
type SearchMsg struct {
	Init  graph.Edge // Init.U = initiator, Init.V = sought endpoint
	Block int
	TTL   int
	Path  []PathEntry
}

// Kind implements sim.Message.
func (SearchMsg) Kind() string { return KindSearch }

// Size implements sim.Message: four words per stack entry plus header —
// O(n log n) bits in the worst case, matching the paper's buffer bound.
func (m SearchMsg) Size() int { return 4*len(m.Path) + 5 }

// ReverseMsg executes an edge exchange: it travels along the fundamental
// cycle re-parenting each chain node onto the message's sender, realizing
// the paper's Remove/Back/Reverse orientation correction (Fig. 5) as a
// sequence of single-parent moves, each of which keeps the structure a
// spanning tree.
//
// Nodes[0] is the next node to re-parent; the final element is the
// terminator (the old parent of the last re-parented node) and is never
// re-parented itself. TargetNode/TargetDeg/DegMax freeze the decision
// context so stale reversals abort.
type ReverseMsg struct {
	Init       graph.Edge
	DegMax     int
	TargetNode int
	TargetDeg  int
	Nodes      []int
	Dist       int // distance the receiving node adopts
}

// Kind implements sim.Message.
func (ReverseMsg) Kind() string { return KindReverse }

// Size implements sim.Message.
func (m ReverseMsg) Size() int { return len(m.Nodes) + 7 }

// DeblockMsg asks the subtree of a blocking node to look for a cycle
// through Block that can reduce Block's degree (the paper's Deblock).
type DeblockMsg struct {
	Block int
	TTL   int
}

// Kind implements sim.Message.
func (DeblockMsg) Kind() string { return KindDeblock }

// Size implements sim.Message.
func (DeblockMsg) Size() int { return 2 }

// UpdateDistMsg repairs distances in the subtree below a re-parented
// node (the paper's UpdateDist): receivers whose parent sent it adopt
// Dist+1 and forward.
type UpdateDistMsg struct {
	Dist int
}

// Kind implements sim.Message.
func (UpdateDistMsg) Kind() string { return KindUpdateDist }

// Size implements sim.Message.
func (UpdateDistMsg) Size() int { return 1 }
