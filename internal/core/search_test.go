package core

import (
	"testing"

	"mdst/internal/graph"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// drain delivers all pending messages repeatedly until the network is
// quiet or the step budget is exhausted (no ticks: only the injected
// traffic flows, keeping tests fully deterministic).
func drain(net *sim.Network, maxSteps int) int {
	steps := 0
	for steps < maxSteps {
		links := net.NonEmptyLinks()
		if len(links) == 0 {
			return steps
		}
		net.Deliver(links[0])
		steps++
	}
	return steps
}

func TestSearchTokenFindsCyclePath(t *testing.T) {
	// Theta graph: path 0-1-2-3 plus chord {0,3} and pendant 4 on 1.
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(1, 4)
	net := BuildNetwork(g, DefaultConfig(5), 1)
	preload(t, g, net)
	nodes := NodesOf(net)

	// The preloaded tree is the BFS tree from 0 (possibly FR-reduced);
	// rebuild state deterministically: parents 1->0, 2->1, 3->0?, ... To
	// keep the cycle well-defined, install an explicit chain tree.
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 2}, {4, 1}})
	loadTree(g, net, tree)

	// Search for non-tree edge {0,3}: the fundamental cycle path must be
	// 0-1-2 (token at 3 = terminus).
	nodes[0].startSearch(net.Context(0), 3, -1, 0)
	// Drive until the terminus would act; intercept by checking that the
	// search triggered the expected classification: with dmax=3 (node 1
	// has degree 3) and endpoints deg(0)=1, deg(3)=1 < dmax-1, a reversal
	// must start targeting node 1.
	drain(net, 10000)
	extracted, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatalf("tree broken after search: %v", err)
	}
	// The improvement must have removed one edge at node 1 and added
	// {0,3}: degree of node 1 drops from 3 to 2.
	if d := extracted.Degree(1); d != 2 {
		t.Fatalf("node 1 degree %d, want 2 after improvement", d)
	}
	if !extracted.HasTreeEdge(0, 3) {
		t.Fatal("improving edge {0,3} not in tree")
	}
}

// chainTree builds a spanning tree from explicit (child, parent) pairs
// rooted at 0.
func chainTree(t *testing.T, g *graph.Graph, pairs [][2]int) *spanning.Tree {
	t.Helper()
	parents := make([]int, g.N())
	parents[0] = 0
	for _, p := range pairs {
		parents[p[0]] = p[1]
	}
	tr, err := spanning.NewFromParents(g, parents, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSearchGuardDropsWhenNotStabilized(t *testing.T) {
	g := graph.Ring(4)
	net := BuildNetwork(g, DefaultConfig(4), 1)
	preload(t, g, net)
	nodes := NodesOf(net)
	// Destabilize node 2 (dmax disagreement) and hand it a token.
	nodes[2].SetView(1, View{Root: 0, Parent: 0, Dmax: 9})
	msg := SearchMsg{Init: graph.Edge{U: 1, V: 3}, Block: -1,
		Path: []PathEntry{{Node: 1, Deg: 2, Parent: 0, Cursor: 2}}}
	nodes[2].handleSearch(net.Context(2), 1, msg)
	if net.Pending() != 0 {
		t.Fatal("destabilized node must drop the token, not forward it")
	}
}

func TestSearchBacktrackDiesAtInitiator(t *testing.T) {
	// Star graph: node 0 center. Non-tree edges absent (star tree = the
	// graph), so fake a search from 1 seeking a nonexistent endpoint to
	// force full exhaustion: token must die without residue.
	g := graph.Star(4)
	net := BuildNetwork(g, DefaultConfig(4), 1)
	preload(t, g, net)
	nodes := NodesOf(net)
	// Craft a token at node 0 from 1 seeking node 99... IDs must be real
	// neighbors for sends; instead search for edge {1,3}: the tree path
	// is 1-0-3, terminus 3 — but make 3's handler reject by
	// destabilizing it, so the token backtracks and dies at the
	// initiator: actually a rejected terminus drops the token at 3.
	nodes[3].SetView(0, View{Root: 0, Parent: 0, Dmax: 9})
	nodes[1].startSearch(net.Context(1), 3, -1, 0)
	drain(net, 1000)
	if net.Pending() != 0 {
		t.Fatal("token leaked")
	}
	// Tree unchanged.
	tr, err := ExtractTree(g, nodes)
	if err != nil || tr.MaxDegree() != 3 {
		t.Fatalf("tree changed: %v", err)
	}
}

func TestSearchStaleTreeEdgeDropped(t *testing.T) {
	g := graph.Ring(5)
	net := BuildNetwork(g, DefaultConfig(5), 1)
	preload(t, g, net)
	nodes := NodesOf(net)
	// Token claims to come from node 1 but records a path whose last
	// entry is node 3 (mismatch): must be dropped at the terminus.
	msg := SearchMsg{Init: graph.Edge{U: 1, V: 2}, Block: -1,
		Path: []PathEntry{{Node: 1, Deg: 2, Parent: 0, Cursor: 3}, {Node: 3, Deg: 2, Parent: 2, Cursor: -1}}}
	nodes[2].handleSearch(net.Context(2), 1, msg)
	if net.Pending() != 0 {
		t.Fatal("stale token must be dropped")
	}
}

func TestSearchPeriodThrottles(t *testing.T) {
	g := graph.Ring(6) // ring tree: one non-tree edge
	cfg := DefaultConfig(6)
	cfg.SearchPeriod = 1000
	net := BuildNetwork(g, cfg, 1)
	preload(t, g, net)
	nodes := NodesOf(net)
	// Find the initiator of the single non-tree edge.
	tr, _ := ExtractTree(g, nodes)
	nte := tr.NonTreeEdges()
	if len(nte) != 1 {
		t.Fatalf("ring tree must have one non-tree edge, got %v", nte)
	}
	init := nte[0].U
	ctx := net.Context(init)
	nodes[init].Tick(ctx)
	afterFirst := net.Metrics().SentByKind[KindSearch]
	nodes[init].Tick(ctx)
	nodes[init].Tick(ctx)
	if got := net.Metrics().SentByKind[KindSearch]; got != afterFirst {
		t.Fatalf("cooldown violated: %d searches after, %d before", got, afterFirst)
	}
}

func TestNoSearchBelowDegreeThree(t *testing.T) {
	// dmax = 2 (Hamiltonian path): searches are pointless and must not
	// be launched.
	g := graph.Ring(6)
	net := BuildNetwork(g, DefaultConfig(6), 1)
	preload(t, g, net)
	nodes := NodesOf(net)
	for i, nd := range nodes {
		nd.Tick(net.Context(i))
	}
	if got := net.Metrics().SentByKind[KindSearch]; got != 0 {
		t.Fatalf("searches launched at dmax=2: %d", got)
	}
}
