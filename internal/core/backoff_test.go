package core

import (
	"testing"

	"mdst/internal/graph"
)

// TestBackoffDeepensToCapAndNeighborBumpResets drives one node's
// adaptive suppression schedule through its whole life cycle: while the
// node's state version is a fixed point, every full effective window
// that lapses before an equivalent launch doubles the pruning window
// (4 → 8 → 16 → 32), saturating at BackoffCapWindow; then a single
// neighbor version bump at the deepest tier collapses the window back
// to the base instantly — the very next launch decision passes, before
// any tick runs.
func TestBackoffDeepensToCapAndNeighborBumpResets(t *testing.T) {
	g := graph.Wheel(8)
	cfg := DefaultConfig(8)
	cfg.SuppressSearches = true
	cfg.BackoffSearches = true
	cfg.SearchPeriod = 2
	cfg.SuppressWindow = 4
	cfg.BackoffCap = 32
	net := BuildNetwork(g, cfg, 1)
	tr := preload(t, g, net)
	nodes := NodesOf(net)

	nte := tr.NonTreeEdges()
	if len(nte) == 0 {
		t.Fatal("wheel tree must leave non-tree edges")
	}
	u, v := nte[0].U, nte[0].V
	nd := nodes[u]
	ctx := net.Context(u)

	if got := nd.CurrentRetryPeriod(); got != cfg.PruneWindow() {
		t.Fatalf("initial retry period %d, want base %d", got, cfg.PruneWindow())
	}

	// First launch: no record yet, passes without deepening.
	nd.startSearch(ctx, v, -1, 0)
	if got := nd.CurrentRetryPeriod(); got != cfg.PruneWindow() {
		t.Fatalf("first pass deepened the schedule to %d", got)
	}

	// Each round trip: a launch one tick inside the effective window is
	// pruned; the launch at window expiry passes and earns exactly one
	// doubling, saturating at the cap.
	for i, want := range []struct{ window, next int }{
		{4, 8}, {8, 16}, {16, 32}, {32, 32},
	} {
		if got := nd.CurrentRetryPeriod(); got != want.window {
			t.Fatalf("step %d: retry period %d, want %d", i, got, want.window)
		}
		st := nd.NodeStats()
		nd.tick += want.window - 1
		nd.startSearch(ctx, v, -1, 0)
		mid := nd.NodeStats()
		if mid.SearchesLaunched != st.SearchesLaunched {
			t.Fatalf("step %d: launch inside the %d-tick window not pruned", i, want.window)
		}
		if mid.SearchesSuppressed != st.SearchesSuppressed+1 {
			t.Fatalf("step %d: suppressed counter %d, want +1", i, mid.SearchesSuppressed)
		}
		nd.tick++
		nd.startSearch(ctx, v, -1, 0)
		if after := nd.NodeStats(); after.SearchesLaunched != mid.SearchesLaunched+1 {
			t.Fatalf("step %d: post-window launch pruned", i)
		}
		if got := nd.CurrentRetryPeriod(); got != want.next {
			t.Fatalf("step %d: retry period %d after lapse, want %d", i, got, want.next)
		}
	}
	if got, cap := nd.CurrentRetryPeriod(), cfg.BackoffCapWindow(); got != cap {
		t.Fatalf("deepest retry period %d, want cap %d", got, cap)
	}

	// At the deepest tier, one tick after the last pass: still pruned.
	nd.tick++
	st := nd.NodeStats()
	nd.startSearch(ctx, v, -1, 0)
	if after := nd.NodeStats(); after.SearchesLaunched != st.SearchesLaunched {
		t.Fatal("launch at the deepest tier not pruned inside the cap window")
	}

	// Neighbor version bump (a changed view applied by gossip): the
	// schedule collapses to the base before any tick runs, and the very
	// same launch that was just pruned now passes.
	w, ok := nd.ViewOf(nd.nbrs[0])
	if !ok {
		t.Fatal("no view of first neighbor")
	}
	w.Submax++
	nd.SetView(nd.nbrs[0], w)
	if got := nd.CurrentRetryPeriod(); got != cfg.PruneWindow() {
		t.Fatalf("retry period %d after neighbor bump, want base %d", got, cfg.PruneWindow())
	}
	st = nd.NodeStats()
	nd.startSearch(ctx, v, -1, 0)
	if after := nd.NodeStats(); after.SearchesLaunched != st.SearchesLaunched+1 {
		t.Fatal("launch after neighbor version bump still pruned")
	}
	if got := nd.CurrentRetryPeriod(); got != cfg.PruneWindow() {
		t.Fatalf("retry period %d after recovery pass, want base %d", got, cfg.PruneWindow())
	}
}

// TestBackoffOffIsInert: with BackoffSearches off, the suppression
// window never moves off the base — the committed baselines depend on
// static suppression being unchanged by the backoff code path.
func TestBackoffOffIsInert(t *testing.T) {
	g := graph.Wheel(8)
	cfg := DefaultConfig(8)
	cfg.SuppressSearches = true
	cfg.SuppressWindow = 4
	net := BuildNetwork(g, cfg, 1)
	tr := preload(t, g, net)
	nodes := NodesOf(net)

	nte := tr.NonTreeEdges()
	u, v := nte[0].U, nte[0].V
	nd := nodes[u]
	ctx := net.Context(u)
	for i := 0; i < 6; i++ {
		nd.startSearch(ctx, v, -1, 0)
		if got := nd.CurrentRetryPeriod(); got != cfg.SearchPeriod {
			t.Fatalf("lapse %d moved the static retry period to %d", i, got)
		}
		if nd.backoffTier != 0 {
			t.Fatalf("lapse %d earned tier %d with backoff off", i, nd.backoffTier)
		}
		nd.tick += cfg.PruneWindow()
	}
}
