package core

import (
	"math/rand"
	"testing"

	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// preload writes a legitimate configuration (stabilized BFS tree reduced
// to a Fürer–Raghavachari fixed point, coherent views) into a network.
// Mirrors harness.Preload but lives here to avoid an import cycle.
func preload(t *testing.T, g *graph.Graph, net *sim.Network) *spanning.Tree {
	t.Helper()
	tree := spanning.BFSTree(g, 0)
	mdstseq.FurerRaghavachari(tree)
	loadTree(g, net, tree)
	return tree
}

// loadTree installs an arbitrary valid tree (plus coherent degree data)
// as the current configuration.
func loadTree(g *graph.Graph, net *sim.Network, tree *spanning.Tree) {
	k := tree.MaxDegree()
	deg := tree.Degrees()
	submax := make([]int, g.N())
	// Fold submax bottom-up by repeated passes (n is small in tests).
	for pass := 0; pass < g.N(); pass++ {
		for v := 0; v < g.N(); v++ {
			submax[v] = deg[v]
			for _, c := range tree.Children(v) {
				if submax[c] > submax[v] {
					submax[v] = submax[c]
				}
			}
		}
	}
	nodes := NodesOf(net)
	for i, nd := range nodes {
		nd.SetState(tree.Root(), tree.Parent(i), tree.Depth(i), k, submax[i], false)
	}
	for i, nd := range nodes {
		for _, u := range g.Neighbors(i) {
			nd.SetView(u, View{
				Root:     tree.Root(),
				Parent:   tree.Parent(u),
				Distance: tree.Depth(u),
				Dmax:     k,
				Submax:   submax[u],
				Deg:      deg[u],
				Color:    false,
			})
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(20)
	if cfg.MaxDist != 44 || cfg.SearchPeriod <= 0 || cfg.DeblockTTL <= 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if cfg.WordBits != bitsFor(44) {
		t.Fatal("WordBits")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9}
	for in, want := range cases {
		if got := bitsFor(in); got != want {
			t.Errorf("bitsFor(%d)=%d, want %d", in, got, want)
		}
	}
}

func TestDegDerivation(t *testing.T) {
	// Path 0-1-2: node 1's degree derives from its own parent pointer and
	// the neighbors' copied parent pointers.
	g := graph.Path(3)
	net := BuildNetwork(g, DefaultConfig(3), 1)
	nodes := NodesOf(net)
	// Tree: 1 -> 0, 2 -> 1.
	nodes[1].SetState(0, 0, 1, 2, 2, false)
	nodes[1].SetView(0, View{Root: 0, Parent: 0, Deg: 1})
	nodes[1].SetView(2, View{Root: 0, Parent: 1, Distance: 2, Deg: 1})
	if nodes[1].Deg() != 2 {
		t.Fatalf("deg=%d, want 2", nodes[1].Deg())
	}
	// If 2 re-parents away (view update), node 1 loses the edge.
	nodes[1].SetView(2, View{Root: 0, Parent: 2, Deg: 0})
	if nodes[1].Deg() != 1 {
		t.Fatalf("deg=%d, want 1", nodes[1].Deg())
	}
}

func TestPredicatesOnCleanStart(t *testing.T) {
	g := graph.Path(3)
	net := BuildNetwork(g, DefaultConfig(3), 1)
	n1 := NodesOf(net)[1]
	// Clean start: every node is its own root; views claim neighbors are
	// their own roots too.
	if !n1.coherentParent() || !n1.coherentDistance() {
		t.Fatal("self-root must be coherent")
	}
	if !n1.betterParent() {
		t.Fatal("node 1 must see node 0 as a better parent")
	}
	n1.runTreeModule()
	if n1.Parent() != 0 || n1.Root() != 0 || n1.Distance() != 1 {
		t.Fatalf("R1 failed: parent=%d root=%d dist=%d", n1.Parent(), n1.Root(), n1.Distance())
	}
}

func TestRuleR2Reset(t *testing.T) {
	g := graph.Path(3)
	cfg := DefaultConfig(3)
	cfg.Repair = RepairReset
	net := BuildNetwork(g, cfg, 1)
	n1 := NodesOf(net)[1]
	// Incoherent: parent 0 claims root 0, but node 1 believes root 2.
	n1.SetState(2, 0, 1, 0, 0, false)
	n1.SetView(0, View{Root: 0, Parent: 0, Distance: 0})
	n1.SetView(2, View{Root: 2, Parent: 2, Distance: 0})
	n1.runTreeModule()
	// R2 resets, then R1 may immediately adopt the better root 0.
	if n1.Root() != 0 || n1.Parent() != 0 {
		t.Fatalf("after repair: root=%d parent=%d", n1.Root(), n1.Parent())
	}
}

func TestRuleR2PatchKeepsParent(t *testing.T) {
	g := graph.Path(3)
	cfg := DefaultConfig(3)
	cfg.Repair = RepairPatch
	net := BuildNetwork(g, cfg, 1)
	n1 := NodesOf(net)[1]
	// Parent relation sound (roots match) but distance drifted.
	n1.SetState(0, 0, 7, 0, 0, false)
	n1.SetView(0, View{Root: 0, Parent: 0, Distance: 0})
	n1.SetView(2, View{Root: 0, Parent: 1, Distance: 8})
	n1.runTreeModule()
	if n1.Parent() != 0 || n1.Distance() != 1 {
		t.Fatalf("patch failed: parent=%d dist=%d", n1.Parent(), n1.Distance())
	}
}

func TestRuleR2PatchResetsOnBadParent(t *testing.T) {
	g := graph.Path(3)
	cfg := DefaultConfig(3)
	cfg.Repair = RepairPatch
	net := BuildNetwork(g, cfg, 1)
	n2 := NodesOf(net)[2]
	// Root mismatch with parent: must reset even under patch policy,
	// then adopt the better root via R1.
	n2.SetState(5, 1, 3, 0, 0, false)
	n2.SetView(1, View{Root: 1, Parent: 1, Distance: 0})
	n2.runTreeModule()
	if n2.Root() != 1 || n2.Parent() != 1 {
		t.Fatalf("root=%d parent=%d", n2.Root(), n2.Parent())
	}
}

func TestDistanceBoundCutsFakeRoot(t *testing.T) {
	// A forged root value smaller than every real ID dies out because the
	// distance bound refuses candidates beyond MaxDist. Use a ring where
	// every node initially believes in root -1 (simulated by large
	// distances); R1 must not adopt a candidate past the bound.
	g := graph.Ring(4)
	cfg := DefaultConfig(4)
	net := BuildNetwork(g, cfg, 1)
	n2 := NodesOf(net)[2]
	n2.SetState(2, 2, 0, 0, 0, false)
	// Neighbor 1 advertises an attractive root but an illegal distance.
	n2.SetView(1, View{Root: -5, Parent: 0, Distance: cfg.MaxDist + 1})
	n2.SetView(3, View{Root: 3, Parent: 3, Distance: 0})
	if n2.betterParent() {
		t.Fatal("candidate beyond MaxDist must not count as better parent")
	}
	n2.runTreeModule()
	if n2.Root() == -5 {
		t.Fatal("adopted a fake root past the distance bound")
	}
}

func TestDegreeModulePropagation(t *testing.T) {
	// On a preloaded path, corrupt the root's dmax; the root must restore
	// it from submax and flip its color.
	g := graph.Path(4)
	net := BuildNetwork(g, DefaultConfig(4), 1)
	preload(t, g, net)
	n0 := NodesOf(net)[0]
	colorBefore := n0.Color()
	n0.SetState(0, 0, 0, 9, n0.submax, colorBefore)
	n0.runDegreeModule()
	if n0.Dmax() != 2 {
		t.Fatalf("root dmax=%d, want 2", n0.Dmax())
	}
	if n0.Color() == colorBefore {
		t.Fatal("root must flip color on dmax change")
	}
	// A child copies (dmax, color) from its parent's view.
	n1 := NodesOf(net)[1]
	n1.SetView(0, View{Root: 0, Parent: 0, Distance: 0, Dmax: 7, Color: true, Deg: 1})
	n1.runDegreeModule()
	if n1.Dmax() != 7 || !n1.Color() {
		t.Fatalf("child did not adopt parent dmax/color: %d %v", n1.Dmax(), n1.Color())
	}
}

func TestLocallyStabilizedGuards(t *testing.T) {
	g := graph.Path(3)
	net := BuildNetwork(g, DefaultConfig(3), 1)
	preload(t, g, net)
	n1 := NodesOf(net)[1]
	if !n1.locallyStabilized() {
		t.Fatal("preloaded configuration must be locally stabilized")
	}
	// A dmax disagreement freezes the node.
	n1.SetView(0, View{Root: 0, Parent: 0, Distance: 0, Dmax: 9, Submax: 1, Deg: 1})
	if n1.locallyStabilized() {
		t.Fatal("dmax disagreement must break local stabilization")
	}
}

func TestStateBits(t *testing.T) {
	g := graph.Star(5)
	cfg := DefaultConfig(5)
	net := BuildNetwork(g, cfg, 1)
	hub := NodesOf(net)[0]
	want := (6 + 7*4) * cfg.WordBits
	if hub.StateBits() != want {
		t.Fatalf("StateBits=%d, want %d", hub.StateBits(), want)
	}
}

func TestFingerprintReflectsState(t *testing.T) {
	g := graph.Path(3)
	net := BuildNetwork(g, DefaultConfig(3), 1)
	n1 := NodesOf(net)[1]
	f1 := n1.Fingerprint()
	n1.SetState(0, 0, 1, 2, 2, true)
	if n1.Fingerprint() == f1 {
		t.Fatal("fingerprint did not change with state")
	}
	f2 := n1.Fingerprint()
	n1.SetView(0, View{Root: 0, Parent: 0, Deg: 1})
	if n1.Fingerprint() == f2 {
		t.Fatal("fingerprint did not change with view")
	}
}

func TestCorruptRandomizes(t *testing.T) {
	g := graph.Ring(6)
	net := BuildNetwork(g, DefaultConfig(6), 1)
	rng := rand.New(rand.NewSource(5))
	nd := NodesOf(net)[3]
	seen := make(map[uint64]bool)
	for i := 0; i < 10; i++ {
		nd.Corrupt(rng, 6)
		seen[nd.Fingerprint()] = true
	}
	if len(seen) < 5 {
		t.Fatalf("corruption not random enough: %d distinct states", len(seen))
	}
}

func TestSetViewNonNeighborPanics(t *testing.T) {
	g := graph.Path(3)
	net := BuildNetwork(g, DefaultConfig(3), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NodesOf(net)[0].SetView(2, View{})
}

func TestExtractTreeErrors(t *testing.T) {
	g := graph.Path(3)
	net := BuildNetwork(g, DefaultConfig(3), 1)
	nodes := NodesOf(net)
	// Clean start: three roots.
	if _, err := ExtractTree(g, nodes); err == nil {
		t.Fatal("multiple roots must fail")
	}
	// No root at all.
	nodes[0].SetState(0, 1, 1, 0, 0, false)
	nodes[1].SetState(0, 0, 1, 0, 0, false)
	nodes[2].SetState(0, 1, 2, 0, 0, false)
	if _, err := ExtractTree(g, nodes); err == nil {
		t.Fatal("rootless must fail")
	}
}

func TestCheckLegitimacyOnPreload(t *testing.T) {
	g := graph.Grid(3, 3)
	net := BuildNetwork(g, DefaultConfig(9), 1)
	preload(t, g, net)
	leg := CheckLegitimacy(g, NodesOf(net))
	if !leg.OK() {
		t.Fatalf("preload not legitimate: %+v", leg)
	}
	if leg.MaxDegree < 2 {
		t.Fatal("degree missing")
	}
}

func TestCheckLegitimacyDetectsStaleView(t *testing.T) {
	g := graph.Path(4)
	net := BuildNetwork(g, DefaultConfig(4), 1)
	preload(t, g, net)
	NodesOf(net)[2].SetView(1, View{Root: 3, Parent: 3})
	leg := CheckLegitimacy(g, NodesOf(net))
	if leg.ViewsOK {
		t.Fatal("stale view not detected")
	}
	if leg.OK() {
		t.Fatal("legitimacy must fail")
	}
}

func TestDisableReduction(t *testing.T) {
	// With reduction off, the protocol is a plain self-stabilizing BFS
	// tree: it must converge but never swap edges.
	g := graph.Wheel(8)
	cfg := DefaultConfig(8)
	cfg.DisableReduction = true
	net := BuildNetwork(g, cfg, 3)
	res := net.Run(sim.RunConfig{Scheduler: sim.NewSyncScheduler(), MaxRounds: 2000,
		QuiesceRounds: 56, ActiveKinds: ReductionKinds()})
	if !res.Converged {
		t.Fatal("BFS-only mode did not converge")
	}
	tree, err := ExtractTree(g, NodesOf(net))
	if err != nil {
		t.Fatal(err)
	}
	// BFS from the hub-adjacent min root: the wheel's BFS tree from node 0
	// is the star, degree 7 — reduction would have lowered it.
	if tree.MaxDegree() != 7 {
		t.Fatalf("degree=%d, want 7 (no reduction)", tree.MaxDegree())
	}
	m := net.Metrics()
	if m.SentByKind[KindSearch] != 0 || m.SentByKind[KindReverse] != 0 {
		t.Fatal("reduction messages sent in disabled mode")
	}
}
