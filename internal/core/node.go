// Package core implements the paper's contribution: the self-stabilizing
// minimum-degree spanning tree protocol of Blin, Gradinariu
// Potop-Butucaru and Rovedakis (IPDPS 2009). Each Node is a sim.Process
// composed of four modules executed in the paper's priority order
// (§3.2): the spanning-tree module (rules R1/R2), the maximum-degree
// module (continuous PIF piggybacked on InfoMsg), the fundamental-cycle
// detection module (Search DFS tokens) and the degree-reduction module
// (Action_on_Cycle / Improve / Deblock with the Remove/Back/Reverse edge
// exchange and UpdateDist repair).
//
// Starting from an arbitrary configuration the network converges to a
// single spanning tree rooted at the minimum ID whose degree is at most
// Δ*+1 (Theorem 2); see snapshot.go for the legitimacy predicate used by
// tests and experiments.
package core

import (
	"math/rand"

	"mdst/internal/localview"
	"mdst/internal/sim"
)

// RepairPolicy selects how the tree module reacts to a distance
// incoherence (ablation A-repair in DESIGN.md).
type RepairPolicy int

const (
	// RepairReset is the paper's rule R2 verbatim: any local incoherence
	// creates a fresh root.
	RepairReset RepairPolicy = iota
	// RepairPatch keeps the parent when only the distance disagrees and
	// re-derives it from the parent's distance, falling back to a reset
	// when the distance bound is exceeded. This reduces churn after edge
	// reversals.
	RepairPatch
)

// Config tunes a Node. The zero value is NOT usable; call DefaultConfig.
type Config struct {
	// Repair selects the R2 variant.
	Repair RepairPolicy
	// MaxDist bounds legal tree distances (any bound >= n works; the
	// standard assumption that nodes know an upper bound N on the network
	// size). It cuts the count-to-infinity livelock of fake root values.
	MaxDist int
	// SearchPeriod is the number of ticks between successive cycle
	// searches for the same non-tree edge.
	SearchPeriod int
	// DeblockTTL bounds the recursion depth of blocking-node reduction.
	DeblockTTL int
	// DeblockTieBreak enables the ID tie-break for equal-potential
	// deblock exchanges (DESIGN.md substitution S4).
	DeblockTieBreak bool
	// DisableReduction turns off modules 3-4, leaving only the
	// self-stabilizing BFS tree (baseline mode for E6).
	DisableReduction bool
	// SuppressSearches enables the search-traffic suppression hot path:
	// per-initiator duplicate-token pruning (a node that already launched
	// or forwarded an equivalent Search token — same fundamental-cycle
	// key {initiator edge, deblock target} — within the suppression
	// window drops re-arrivals instead of re-walking the cycle, unless
	// its own protocol state changed since) plus batched launch pacing in
	// maybeStartSearches. Suppression is a bounded delay, never a
	// permanent block: every key passes at least once per window at every
	// node, so convergence to the legitimacy predicate and the Δ*+1
	// degree bracket is preserved (differential-tested). Off by default —
	// the paper-literal schedule and every committed baseline are
	// byte-identical with the knob off.
	SuppressSearches bool
	// SuppressWindow is the duplicate-pruning window in ticks (0 means
	// 4×SearchPeriod). It must stay well below the quiescence stability
	// window so a deferred search always retries before quiescence could
	// be declared around it.
	SuppressWindow int
	// SearchBatch caps the plain searches launched per tick when
	// suppression is on (0 means 2); deferred edges stay due and launch
	// on subsequent ticks, spreading token bursts.
	SearchBatch int
	// BackoffSearches makes the suppression window adaptive: while a
	// node's state version (own variables plus neighbor views — its
	// local image of the neighborhood version vector) is a fixed point,
	// the effective pruning window doubles each time a full window
	// elapses unchanged, from PruneWindow up to BackoffCapWindow; any
	// version movement collapses it back to the base instantly. The
	// steady-state retry rate therefore decays geometrically toward
	// zero while fault-recovery latency keeps the base-window schedule
	// (the reset happens before the next launch decision). Requires
	// SuppressSearches (the harness and CLIs set both); off by default,
	// leaving every committed baseline byte-identical.
	BackoffSearches bool
	// BackoffCap bounds the adaptive window in ticks (0 means
	// 16×PruneWindow). Quiescence-stability windows derive from it via
	// EffectiveRetryPeriod: past the cap a retry is guaranteed every
	// BackoffCap ticks, so certification never waits on an unbounded
	// schedule.
	BackoffCap int
	// WordBits is the width of one variable in bits, used only by the
	// StateBits metric (harness sets ceil(log2 n)+1).
	WordBits int
}

// DefaultConfig returns the configuration used by the experiments for a
// network of n nodes.
func DefaultConfig(n int) Config {
	return Config{
		Repair:          RepairPatch,
		MaxDist:         2*n + 4,
		SearchPeriod:    16,
		DeblockTTL:      8,
		DeblockTieBreak: true,
		WordBits:        bitsFor(2*n + 4),
	}
}

// PruneWindow resolves the duplicate-pruning window (SuppressWindow,
// defaulting to 4×SearchPeriod); both variants' suppressors use it.
func (c Config) PruneWindow() int {
	if c.SuppressWindow > 0 {
		return c.SuppressWindow
	}
	return 4 * c.SearchPeriod
}

// BackoffCapWindow resolves the deepest adaptive pruning window
// (BackoffCap, defaulting to 16×PruneWindow — four doublings).
func (c Config) BackoffCapWindow() int {
	if c.BackoffCap > 0 {
		return c.BackoffCap
	}
	return 16 * c.PruneWindow()
}

// EffectiveRetryPeriod is the worst-case spacing between consecutive
// full passes of an equivalent Search token: SearchPeriod with the
// paper-literal schedule, additionally the pruning window when
// duplicate suppression may defer retries, and the backoff cap when
// the window is adaptive (the deepest tier a node can ever reach).
// Quiescence-stability windows must be derived from this value, not
// from SearchPeriod alone — otherwise a suppressed configuration can
// be certified quiescent before its deferred search ever re-fires.
// With backoff on this static bound is conservative; the sim cores
// additionally track the time-varying per-node schedule through
// Node.CurrentRetryPeriod, and the wall-clock drivers (which cannot
// cheaply scan node tiers behind sockets) take this cap. Suppression
// only ever delays retries, so the result is floored at SearchPeriod:
// a pruning window shorter than the retry period must not shrink the
// stability window below the paper-literal floor.
func (c Config) EffectiveRetryPeriod() int {
	if !c.SuppressSearches {
		return c.SearchPeriod
	}
	w := c.PruneWindow()
	if c.BackoffSearches {
		if cap := c.BackoffCapWindow(); cap > w {
			w = cap
		}
	}
	if w > c.SearchPeriod {
		return w
	}
	return c.SearchPeriod
}

// bitsFor returns ceil(log2(x+1)), the width needed to store values in
// [0, x].
func bitsFor(x int) int {
	b := 0
	for v := x; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// View is a node's local copy of one neighbor's variables; the storage
// is the dense table shared with the literal variant (localview).
type View = localview.View

// Node is one protocol participant.
type Node struct {
	id   int
	cfg  Config
	nbrs []int

	// The paper's per-node variables (§3.1).
	root     int
	parent   int
	distance int
	dmax     int
	submax   int
	color    bool

	// Local copies of neighbor variables, dense by neighbor position.
	views localview.Table

	// version counts mutations of the protocol-visible state (own
	// variables and views). The simulator's incremental fingerprint cache
	// re-hashes a node only when its version moved — the O(1) dirty check
	// that keeps quiescence detection off the hot path. Every mutation
	// site below bumps it (no-op writes are skipped so a quiesced node's
	// version is a fixed point).
	version uint64

	// Implementation bookkeeping (transient; not protocol state).
	tick        int
	nextSearch  map[int]int // per non-tree neighbor: earliest tick to search
	lastDeblock map[int]int // per blocker: last tick we broadcast it
	// Event-core parking state (sim.EventProcess): restVersion is the
	// state version at the end of the last Tick, tickMoved records
	// whether that Tick itself mutated state (a module still converging
	// to its fixed point must keep ticking even though deliveries have
	// stopped). A node whose version equals restVersion with tickMoved
	// false can only produce duplicate gossip by ticking — safe to park.
	restVersion uint64
	tickMoved   bool
	// suppress is the duplicate-token pruning state (nil unless
	// Config.SuppressSearches); see SearchSuppressor.
	suppress *SearchSuppressor
	// Adaptive-backoff state (Config.BackoffSearches). Transient like
	// the suppressor: never fingerprinted, and moving it must not bump
	// the state version — the backoff observes quiescence, it is not
	// part of it. backoffTier is the doubling exponent (effective
	// window = PruneWindow << tier, capped), earned while version ==
	// backoffVersion and reset lazily the moment they diverge;
	// backoffTick limits deepening to once per tick so several edges
	// lapsing together still advance one tier per round.
	backoffTier    int
	backoffVersion uint64
	backoffTick    int

	// audit, when non-nil, observes every accepted tree mutation (see
	// MutationHook). It lives on the Node — not on Config — because
	// Config must stay comparable (the harness keys caches by it).
	audit MutationHook

	stats Stats
}

// MutationKind classifies an accepted tree mutation for audit hooks.
// The values are stable: the audit log folds them into its hash chain
// (internal/auditlog maps them 1:1 onto its Kind values).
type MutationKind uint8

// Mutation kinds reported to MutationHook.
const (
	// MutationParent: the tree module adopted a better parent
	// (change_parent_to).
	MutationParent MutationKind = 1
	// MutationReset: the tree module re-created a local root
	// (create_new_root), including deblock-triggered resets.
	MutationReset MutationKind = 2
	// MutationExchange: the degree-reduction choreography re-parented
	// the node (a blocking-edge exchange hop).
	MutationExchange MutationKind = 3
)

// MutationHook observes one accepted tree mutation: the node changed
// its parent pointer (or re-rooted) with the given old and new parent.
// Hooks fire inside the mutation site, after the changed-value guard
// accepted the write — never on no-op module runs — so the call
// sequence is a pure function of the node's execution. Shared with the
// literal variant (paperproto aliases this type).
type MutationHook func(kind MutationKind, oldParent, newParent int)

// SetMutationHook installs the audit observer (nil disables). Drivers
// install it before the run starts; the hook must not retain references
// into the node.
func (n *Node) SetMutationHook(h MutationHook) { n.audit = h }

// Stats counts protocol events at this node (observability only; not
// part of the protocol state or the memory-complexity accounting).
type Stats struct {
	SearchesLaunched  int // DFS tokens this node initiated
	CyclesClassified  int // actionOnCycle invocations at this node
	ExchangesApplied  int // reversal hops applied (first/middle/final)
	ExchangesComplete int // final hops: one per completed edge exchange
	ChainsAborted     int // reversal hops dropped by a staleness check
	DeblocksTriggered int // Deblock floods this node started or forwarded
	// SearchesSuppressed counts Search launches and token arrivals
	// dropped by the duplicate-pruning module (Config.SuppressSearches);
	// always zero with the knob off.
	SearchesSuppressed int
}

// NewNode creates a node in a clean initial state (its own root). Use
// Corrupt or SetState to start from an arbitrary configuration.
func NewNode(id int, neighbors []int, cfg Config) *Node {
	n := &Node{
		id:          id,
		cfg:         cfg,
		nbrs:        append([]int(nil), neighbors...),
		root:        id,
		parent:      id,
		distance:    0,
		views:       localview.NewTable(neighbors),
		nextSearch:  make(map[int]int),
		lastDeblock: make(map[int]int),
		tickMoved:   true, // never ticked: the first tick must run
	}
	if cfg.SuppressSearches {
		n.suppress = NewSearchSuppressor()
	}
	for _, u := range n.nbrs {
		*n.views.Get(u) = View{Root: u, Parent: u}
	}
	return n
}

// Clone returns a deep copy of the node (state, views and bookkeeping),
// used by the exhaustive model checker to branch executions.
func (n *Node) Clone() *Node {
	c := *n
	c.views = n.views.Clone()
	c.nextSearch = make(map[int]int, len(n.nextSearch))
	for k, v := range n.nextSearch {
		c.nextSearch[k] = v
	}
	c.lastDeblock = make(map[int]int, len(n.lastDeblock))
	for k, v := range n.lastDeblock {
		c.lastDeblock[k] = v
	}
	if n.suppress != nil {
		c.suppress = n.suppress.Clone()
	}
	return &c
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Root returns the locally known root of the spanning tree.
func (n *Node) Root() int { return n.root }

// Parent returns the node's parent pointer (itself when it is a root).
func (n *Node) Parent() int { return n.parent }

// Distance returns the node's distance-to-root variable.
func (n *Node) Distance() int { return n.distance }

// Dmax returns the node's estimate of deg(T).
func (n *Node) Dmax() int { return n.dmax }

// Submax returns the subtree-maximum feedback value (the PIF fold).
func (n *Node) Submax() int { return n.submax }

// Color returns the freeze-wave color bit.
func (n *Node) Color() bool { return n.color }

// Deg returns the node's degree in the current tree, derived from its own
// parent pointer and its neighbors' (locally copied) parent pointers —
// the paper's edge_status.
func (n *Node) Deg() int {
	d := 0
	for _, u := range n.nbrs {
		if n.isTreeEdge(u) {
			d++
		}
	}
	return d
}

// isTreeEdge is the paper's is_tree_edge(v,u) evaluated on v's local
// copies: parent_v = u or parent_u = v.
func (n *Node) isTreeEdge(u int) bool {
	if n.parent == u && n.id != n.root {
		return true
	}
	if v := n.views.Get(u); v != nil && v.Parent == n.id {
		return true
	}
	return false
}

// SetState overwrites the protocol variables (test/fault injection).
func (n *Node) SetState(root, parent, distance, dmax, submax int, color bool) {
	n.root, n.parent, n.distance = root, parent, distance
	n.dmax, n.submax, n.color = dmax, submax, color
	n.version++
}

// SetView overwrites the local copy of neighbor u (test/fault injection).
func (n *Node) SetView(u int, v View) {
	p := n.views.Get(u)
	if p == nil {
		panic("core: SetView for non-neighbor")
	}
	*p = v
	n.version++
}

// NodeStats returns the node's protocol event counters.
func (n *Node) NodeStats() Stats { return n.stats }

// ViewOf returns a copy of the local view of neighbor u; ok is false for
// non-neighbors. Used by the harness to carry state across topology
// changes (the super-stabilization experiments).
func (n *Node) ViewOf(u int) (View, bool) {
	v := n.views.Get(u)
	if v == nil {
		return View{}, false
	}
	return *v, true
}

// Corrupt randomizes every protocol variable and neighbor copy — the
// arbitrary initial configuration of Definition 1. idSpace is the
// exclusive upper bound for forged IDs/roots (use n).
func (n *Node) Corrupt(rng *rand.Rand, idSpace int) {
	pick := func() int {
		// Parent candidates: self or any neighbor (coherent domain), or a
		// completely bogus value with small probability.
		if rng.Float64() < 0.2 {
			return rng.Intn(idSpace)
		}
		if len(n.nbrs) == 0 || rng.Float64() < 0.3 {
			return n.id
		}
		return n.nbrs[rng.Intn(len(n.nbrs))]
	}
	n.root = rng.Intn(idSpace)
	n.parent = pick()
	n.distance = rng.Intn(n.cfg.MaxDist + 2)
	n.dmax = rng.Intn(idSpace + 2)
	n.submax = rng.Intn(idSpace + 2)
	n.color = rng.Intn(2) == 0
	for _, u := range n.nbrs {
		*n.views.Get(u) = View{
			Root:     rng.Intn(idSpace),
			Parent:   rng.Intn(idSpace),
			Distance: rng.Intn(n.cfg.MaxDist + 2),
			Dmax:     rng.Intn(idSpace + 2),
			Submax:   rng.Intn(idSpace + 2),
			Deg:      rng.Intn(idSpace + 1),
			Color:    rng.Intn(2) == 0,
		}
	}
	n.version++
}

// Init implements sim.Process. Deliberately empty: self-stabilization
// must work from whatever state the node carries.
func (n *Node) Init(ctx *sim.Context) {}

// Tick implements sim.Process: one iteration of the paper's "do forever"
// loop — run the modules in priority order, then gossip.
func (n *Node) Tick(ctx *sim.Context) {
	entry := n.version
	n.tick++
	n.runTreeModule()
	n.runDegreeModule()
	if !n.cfg.DisableReduction {
		n.maybeStartSearches(ctx)
	}
	n.sendInfo(ctx)
	n.tickMoved = n.version != entry
	n.restVersion = n.version
}

// NextWork implements sim.EventProcess. The modules are deterministic
// functions of the protocol state, so a tick that found a fixed point
// (tickMoved false) with no input since (version == restVersion) can
// only repeat itself; the single tick-driven schedule left is the
// periodic cycle-search retry, whose earliest deadline over the
// eligible non-tree edges bounds how long the node may sleep.
func (n *Node) NextWork() int {
	if n.tickMoved || n.version != n.restVersion {
		return 1
	}
	if n.cfg.DisableReduction || n.dmax <= 2 || !n.locallyStabilized() {
		return sim.NoWork
	}
	next := -1
	for _, u := range n.nbrs {
		if n.isTreeEdge(u) || n.id > u {
			continue
		}
		due := n.nextSearch[u]
		// With adaptive backoff, a retry inside the effective window
		// would be pruned at the launch site anyway; park straight
		// through to the recorded pass's expiry so a deeply backed-off
		// node costs no wake-ups at all (deliveries still wake it, and
		// a version bump resets the schedule before the next decision).
		if n.cfg.BackoffSearches {
			if pass := n.searchPassTick(u); pass > due {
				due = pass
			}
		}
		if next == -1 || due < next {
			next = due
		}
	}
	if next == -1 {
		return sim.NoWork
	}
	if w := next - n.tick; w > 1 {
		return w
	}
	return 1
}

// SkipTicks implements sim.EventProcess: advance the local clock over
// parked rounds so tick-keyed schedules (search retries, deblock and
// suppression windows) keep their round meaning when the node wakes.
func (n *Node) SkipTicks(k int) { n.tick += k }

// Receive implements sim.Process.
func (n *Node) Receive(ctx *sim.Context, from sim.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case InfoMsg:
		n.handleInfo(from, msg)
	case SearchMsg:
		if !n.cfg.DisableReduction {
			n.handleSearch(ctx, from, msg)
		}
	case ReverseMsg:
		if !n.cfg.DisableReduction {
			n.handleReverse(ctx, from, msg)
		}
	case DeblockMsg:
		if !n.cfg.DisableReduction {
			n.handleDeblock(ctx, from, msg)
		}
	case UpdateDistMsg:
		n.handleUpdateDist(ctx, from, msg)
	}
}

// sendInfo gossips the current variables to every neighbor.
func (n *Node) sendInfo(ctx *sim.Context) {
	msg := InfoMsg{
		Root:     n.root,
		Parent:   n.parent,
		Distance: n.distance,
		Dmax:     n.dmax,
		Submax:   n.submax,
		Deg:      n.Deg(),
		Color:    n.color,
	}
	for _, u := range n.nbrs {
		ctx.Send(u, msg)
	}
}

// handleInfo is the paper's Update_State: refresh the local copy, then
// re-run the correction rules. The copy is skipped (and the state
// version left untouched) when the gossip repeats what we already hold —
// the common case once the neighborhood quiesces.
func (n *Node) handleInfo(from int, m InfoMsg) {
	v := n.views.Get(from)
	if v == nil {
		return
	}
	if v.Root != m.Root || v.Parent != m.Parent || v.Distance != m.Distance ||
		v.Dmax != m.Dmax || v.Submax != m.Submax || v.Deg != m.Deg ||
		v.Color != m.Color {
		v.Root, v.Parent, v.Distance = m.Root, m.Parent, m.Distance
		v.Dmax, v.Submax, v.Deg, v.Color = m.Dmax, m.Submax, m.Deg, m.Color
		n.version++
	}
	n.runTreeModule()
}

// Fingerprint implements sim.Fingerprinter over the protocol variables
// and neighbor copies (message traffic excluded), so quiescence means
// both the tree and all views have stopped changing.
func (n *Node) Fingerprint() uint64 {
	return localview.Fingerprint(n.root, n.parent, n.distance, n.dmax,
		n.submax, n.color, &n.views)
}

// StateVersion implements sim.StateVersioner: it moves exactly when the
// fingerprinted state may have changed.
func (n *Node) StateVersion() uint64 { return n.version }

// StateBits implements sim.StateSizer: the paper's O(δ log n) memory —
// six own variables plus a seven-word copy per neighbor, WordBits each
// (the color bit counted as one word for simplicity).
func (n *Node) StateBits() int {
	words := 6 + 7*len(n.nbrs)
	return words * n.cfg.WordBits
}
