package core

import (
	"math/rand"
	"testing"

	"mdst/internal/graph"
	"mdst/internal/sim"
)

func TestMessageSizes(t *testing.T) {
	if (InfoMsg{}).Size() != 7 {
		t.Fatal("InfoMsg size")
	}
	s := SearchMsg{Path: make([]PathEntry, 3)}
	if s.Size() != 4*3+5 {
		t.Fatalf("SearchMsg size %d", s.Size())
	}
	r := ReverseMsg{Nodes: make([]int, 4)}
	if r.Size() != 4+7 {
		t.Fatalf("ReverseMsg size %d", r.Size())
	}
	if (DeblockMsg{}).Size() != 2 || (UpdateDistMsg{}).Size() != 1 {
		t.Fatal("small message sizes")
	}
	// Kinds are distinct.
	kinds := map[string]bool{}
	for _, k := range []string{(InfoMsg{}).Kind(), s.Kind(), r.Kind(),
		(DeblockMsg{}).Kind(), (UpdateDistMsg{}).Kind()} {
		if kinds[k] {
			t.Fatalf("duplicate kind %s", k)
		}
		kinds[k] = true
	}
}

func TestSearchMessageSizeBoundedByN(t *testing.T) {
	// After a full corrupted run, the largest search token must be at
	// most 4n+5 words (the paper's O(n log n) buffer bound).
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomGnp(18, 0.3, rng)
	net := BuildNetwork(g, DefaultConfig(18), 3)
	for _, nd := range NodesOf(net) {
		nd.Corrupt(rng, 18)
	}
	runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
	if max := net.Metrics().MaxMsgSize; max > 4*18+5 {
		t.Fatalf("message of %d words exceeds 4n+5", max)
	}
}

func TestDeblockTieBreakBlocksEqualPotentialSwap(t *testing.T) {
	// Deblock case where the rising endpoint (the search initiator, ID 4,
	// degree dmax-2) has a LARGER ID than the blocked node (ID 1): with
	// the tie-break enabled the exchange must not start; with it
	// disabled the reversal chain must launch.
	//
	// Tree chain 0-1-2-3-4 with leaf 5 on 2 (deg(2)=3=dmax); non-tree
	// edge {0,4}; blocker b=1 (deg 2 = dmax-1); the removed edge is
	// (1, successor 0) so endpoint 0 nets zero and only endpoint 4 rises.
	build := func(tieBreak bool) (*sim.Network, []*Node) {
		g := graph.New(6)
		g.MustAddEdge(0, 1)
		g.MustAddEdge(1, 2)
		g.MustAddEdge(2, 3)
		g.MustAddEdge(3, 4)
		g.MustAddEdge(2, 5)
		g.MustAddEdge(0, 4)
		cfg := DefaultConfig(6)
		cfg.DeblockTieBreak = tieBreak
		net := BuildNetwork(g, cfg, 1)
		tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 2}, {4, 3}, {5, 2}})
		loadTree(g, net, tree)
		return net, NodesOf(net)
	}
	// Search initiated at 4 for edge {4,0}: path 4-3-2-1, terminus 0.
	msg := SearchMsg{
		Init:  graph.Edge{U: 4, V: 0},
		Block: 1,
		TTL:   3,
		Path: []PathEntry{
			{Node: 4, Deg: 1, Parent: 3, Cursor: 3},
			{Node: 3, Deg: 2, Parent: 2, Cursor: 2},
			{Node: 2, Deg: 3, Parent: 1, Cursor: 1},
			{Node: 1, Deg: 2, Parent: 0, Cursor: 0},
		},
	}

	netA, nodesA := build(true)
	nodesA[0].handleSearch(netA.Context(0), 1, msg)
	if netA.PendingKind(KindReverse) != 0 {
		t.Fatal("tie-break enabled: reversal must not start (rising ID 4 > blocker 1)")
	}

	netB, nodesB := build(false)
	nodesB[0].handleSearch(netB.Context(0), 1, msg)
	if netB.PendingKind(KindReverse) == 0 {
		t.Fatal("tie-break disabled: reversal must start")
	}
	// Drain and verify the exchange: {0,4} in, {0,1} out, blocker reduced.
	drain(netB, 10000)
	tr, err := ExtractTree(netB.Graph(), nodesB)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasTreeEdge(0, 4) || tr.HasTreeEdge(0, 1) {
		t.Fatalf("swap wrong: %v", tr.Edges())
	}
	if tr.Degree(1) != 1 {
		t.Fatalf("blocker degree %d, want 1", tr.Degree(1))
	}
}

func TestDeblockRecursionRespectsTTL(t *testing.T) {
	// A deblock search whose endpoints are also blocking triggers a
	// recursive deblock with TTL-1; at TTL 0 nothing is sent.
	g := graph.Ring(6)
	net := BuildNetwork(g, DefaultConfig(6), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 2}, {4, 3}, {5, 4}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)
	// Fake a deblock search arriving at terminus 5 with blocking
	// endpoints: endpoints 0 and 5 with deg == dmax-1. The preloaded ring
	// has dmax=2, so endpoints deg 1 = dmax-1: blocking.
	msg := SearchMsg{
		Init:  graph.Edge{U: 0, V: 5},
		Block: 2,
		TTL:   0, // expired
		Path: []PathEntry{
			{Node: 0, Deg: 1, Parent: 0, Cursor: 1},
			{Node: 1, Deg: 2, Parent: 0, Cursor: 2},
			{Node: 2, Deg: 2, Parent: 1, Cursor: 3},
			{Node: 3, Deg: 2, Parent: 2, Cursor: 4},
			{Node: 4, Deg: 2, Parent: 3, Cursor: 5},
		},
	}
	nodes[5].handleSearch(net.Context(5), 4, msg)
	if net.PendingKind(KindDeblock) != 0 {
		t.Fatal("TTL-0 deblock search must not recurse")
	}
}

func TestDegreeModuleWithMultipleRoots(t *testing.T) {
	// During stabilization several roots coexist; each computes dmax from
	// its own fragment without panicking or cross-talk.
	g := graph.Path(4)
	net := BuildNetwork(g, DefaultConfig(4), 1)
	nodes := NodesOf(net)
	// Two fragments: 0<-1, 2<-3 (roots 0 and 2).
	nodes[0].SetState(0, 0, 0, 0, 0, false)
	nodes[1].SetState(0, 0, 1, 0, 0, false)
	nodes[2].SetState(2, 2, 0, 0, 0, false)
	nodes[3].SetState(2, 2, 1, 0, 0, false)
	nodes[0].SetView(1, View{Root: 0, Parent: 0, Distance: 1, Deg: 1, Submax: 1})
	nodes[1].SetView(0, View{Root: 0, Parent: 0, Distance: 0, Deg: 1, Submax: 1})
	nodes[1].SetView(2, View{Root: 2, Parent: 2, Distance: 0, Deg: 1, Submax: 1})
	nodes[2].SetView(1, View{Root: 0, Parent: 0, Distance: 1, Deg: 1, Submax: 1})
	nodes[2].SetView(3, View{Root: 2, Parent: 2, Distance: 1, Deg: 1, Submax: 1})
	nodes[3].SetView(2, View{Root: 2, Parent: 2, Distance: 0, Deg: 1, Submax: 1})
	for _, nd := range nodes {
		nd.runDegreeModule()
	}
	if nodes[0].Dmax() < 1 || nodes[2].Dmax() < 1 {
		t.Fatal("fragment roots did not compute dmax")
	}
}

func TestInfoMsgRefreshesViewAndRunsRules(t *testing.T) {
	g := graph.Path(3)
	net := BuildNetwork(g, DefaultConfig(3), 1)
	n2 := NodesOf(net)[2]
	// Node 2 starts as its own root; learning node 1's adoption of root 0
	// via InfoMsg must trigger R1.
	n2.handleInfo(1, InfoMsg{Root: 0, Parent: 0, Distance: 1, Deg: 1})
	if n2.Root() != 0 || n2.Parent() != 1 || n2.Distance() != 2 {
		t.Fatalf("R1 after InfoMsg: root=%d parent=%d dist=%d",
			n2.Root(), n2.Parent(), n2.Distance())
	}
}

func TestCorruptedViewsHealViaGossip(t *testing.T) {
	g := graph.Ring(6)
	net := BuildNetwork(g, DefaultConfig(6), 2)
	preload(t, g, net)
	// Corrupt only the VIEWS of one node (its own variables stay good).
	rng := rand.New(rand.NewSource(9))
	nd := NodesOf(net)[3]
	for _, u := range g.Neighbors(3) {
		nd.SetView(u, View{Root: rng.Intn(6), Parent: rng.Intn(6),
			Distance: rng.Intn(12), Dmax: rng.Intn(6)})
	}
	res := runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if leg := CheckLegitimacy(g, NodesOf(net)); !leg.OK() {
		t.Fatalf("views did not heal: %+v", leg)
	}
}

func TestWordBitsScalesWithN(t *testing.T) {
	small := DefaultConfig(8)
	large := DefaultConfig(1 << 16)
	if small.WordBits >= large.WordBits {
		t.Fatalf("WordBits: %d vs %d", small.WordBits, large.WordBits)
	}
}

func TestAccessors(t *testing.T) {
	g := graph.Path(2)
	net := BuildNetwork(g, DefaultConfig(2), 1)
	nd := NodesOf(net)[1]
	if nd.ID() != 1 || nd.Root() != 1 || nd.Parent() != 1 || nd.Distance() != 0 {
		t.Fatal("fresh node accessors")
	}
	if nd.Dmax() != 0 || nd.Color() {
		t.Fatal("fresh dmax/color")
	}
}

func TestStatsCountExchanges(t *testing.T) {
	g := graph.Wheel(8)
	net := BuildNetwork(g, DefaultConfig(8), 5)
	runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
	stats := AggregateStats(NodesOf(net))
	if stats.SearchesLaunched == 0 || stats.CyclesClassified == 0 {
		t.Fatalf("search counters empty: %+v", stats)
	}
	// The wheel's star tree (degree 7) reduces to degree 2: at least 5
	// completed exchanges (some may be applied locally at the decider and
	// bypass handleReverse, so this is a lower-bound check on activity).
	tree, err := ExtractTree(g, NodesOf(net))
	if err != nil || tree.MaxDegree() != 2 {
		t.Fatalf("wheel not reduced: %v", err)
	}
	if stats.ExchangesApplied == 0 {
		t.Fatalf("no exchanges recorded: %+v", stats)
	}
}
