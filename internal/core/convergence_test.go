package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// runToQuiescence runs the full protocol with the standard stop rule.
func runToQuiescence(net *sim.Network, g *graph.Graph, sched sim.Scheduler, maxRounds int) sim.RunResult {
	if maxRounds <= 0 {
		maxRounds = 200*g.N() + 20000
	}
	return net.Run(sim.RunConfig{
		Scheduler:     sched,
		MaxRounds:     maxRounds,
		QuiesceRounds: 2*g.N() + 40,
		ActiveKinds:   ReductionKinds(),
	})
}

// Property: from a fully corrupted configuration on a random connected
// graph, the protocol converges to a legitimate configuration whose tree
// degree is at most Δ*+1 (checked against the exact solver) — the
// paper's Theorem 2 plus Definition 1 convergence, end to end.
func TestQuickConvergenceWithinOneOfOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("long protocol property test")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(8) // 5..12: exact solver territory
		g := graph.RandomGnp(n, 0.25+rng.Float64()*0.3, rng)
		net := BuildNetwork(g, DefaultConfig(n), seed)
		for _, nd := range NodesOf(net) {
			nd.Corrupt(rng, n)
		}
		res := runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
		if !res.Converged {
			t.Logf("seed %d: no quiescence", seed)
			return false
		}
		leg := CheckLegitimacy(g, NodesOf(net))
		if !leg.OK() {
			t.Logf("seed %d: legitimacy %+v", seed, leg)
			return false
		}
		star, ok := mdstseq.ExactDelta(g, 0)
		if !ok {
			return true
		}
		if leg.MaxDegree > star+1 {
			t.Logf("seed %d: degree %d > Δ*+1 = %d", seed, leg.MaxDegree, star+1)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: safety with healing — once the tree module has formed a
// single spanning tree, a reversal chain executing in isolation keeps it
// a spanning tree at every step (proved by the orientation tests);
// concurrent chains can transiently break it, but the tree module must
// always heal: after the run the configuration is a single valid
// spanning tree again, and breakage is transient (never the final
// state).
func TestQuickTreeBreakageHeals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		g := graph.RandomGnp(n, 0.35, rng)
		net := BuildNetwork(g, DefaultConfig(n), seed)
		// Start from an already-formed tree: the BFS tree before
		// reduction, so mostly the reduction machinery runs.
		tree := spanning.BFSTree(g, 0)
		loadTreeQ(g, net, tree)
		broken := 0
		// Budget: colliding concurrent exchanges can oscillate for
		// thousands of rounds on small dense instances before the
		// jittered retries separate — still within the paper's own
		// O(m n^2 log n) bound, which for n=8, m=17 already exceeds
		// 3000 rounds. 800n covers the worst observed seed with margin.
		net.Run(sim.RunConfig{
			Scheduler: sim.NewSyncScheduler(),
			MaxRounds: 800 * n,
			OnRound: func(r int) bool {
				if _, err := ExtractTree(g, NodesOf(net)); err != nil {
					broken++
				}
				return true
			},
		})
		if _, err := ExtractTree(g, NodesOf(net)); err != nil {
			t.Logf("seed %d: tree still broken at end (%d broken rounds): %v", seed, broken, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// loadTreeQ is loadTree without the *testing.T (for quick functions).
func loadTreeQ(g *graph.Graph, net *sim.Network, tree *spanning.Tree) {
	k := tree.MaxDegree()
	deg := tree.Degrees()
	submax := make([]int, g.N())
	for pass := 0; pass < g.N(); pass++ {
		for v := 0; v < g.N(); v++ {
			submax[v] = deg[v]
			for _, c := range tree.Children(v) {
				if submax[c] > submax[v] {
					submax[v] = submax[c]
				}
			}
		}
	}
	nodes := NodesOf(net)
	for i, nd := range nodes {
		nd.SetState(tree.Root(), tree.Parent(i), tree.Depth(i), k, submax[i], false)
	}
	for i, nd := range nodes {
		for _, u := range g.Neighbors(i) {
			nd.SetView(u, View{Root: tree.Root(), Parent: tree.Parent(u),
				Distance: tree.Depth(u), Dmax: k, Submax: submax[u],
				Deg: deg[u], Color: false})
		}
	}
}

// Closure/safety from a legitimate configuration: the tree may only be
// rearranged by legal exchanges, so at every round the structure is a
// valid spanning tree and its degree never exceeds the initial fixed
// point's degree.
func TestClosureFromLegitimateConfiguration(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGnp(14, 0.3, rng)
		net := BuildNetwork(g, DefaultConfig(14), seed)
		start := preload(t, g, net)
		k := start.MaxDegree()
		net.Run(sim.RunConfig{
			Scheduler: sim.NewSyncScheduler(),
			MaxRounds: 400,
			OnRound: func(r int) bool {
				tree, err := ExtractTree(g, NodesOf(net))
				if err != nil {
					t.Fatalf("seed %d round %d: tree broken: %v", seed, r, err)
				}
				if tree.MaxDegree() > k {
					t.Fatalf("seed %d round %d: degree %d exceeded initial %d",
						seed, r, tree.MaxDegree(), k)
				}
				return true
			},
		})
		leg := CheckLegitimacy(g, NodesOf(net))
		if !leg.TreeValid || !leg.RootIsMin {
			t.Fatalf("seed %d: closure violated: %+v", seed, leg)
		}
	}
}

// Determinism: identical seeds give identical executions.
func TestDeterministicExecution(t *testing.T) {
	g := graph.Grid(4, 4)
	run := func() (uint64, int64) {
		net := BuildNetwork(g, DefaultConfig(16), 77)
		rng := rand.New(rand.NewSource(99))
		for _, nd := range NodesOf(net) {
			nd.Corrupt(rng, 16)
		}
		runToQuiescence(net, g, sim.NewAsyncScheduler(), 3000)
		return net.Fingerprint(), net.Metrics().Events
	}
	f1, e1 := run()
	f2, e2 := run()
	if f1 != f2 || e1 != e2 {
		t.Fatalf("nondeterministic: fp %d/%d events %d/%d", f1, f2, e1, e2)
	}
}

// The adversarial scheduler must also converge (fairness is preserved).
func TestAdversarialSchedulerConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.RandomGnp(14, 0.3, rng)
	net := BuildNetwork(g, DefaultConfig(14), 8)
	for _, nd := range NodesOf(net) {
		nd.Corrupt(rng, 14)
	}
	res := runToQuiescence(net, g, sim.NewAdversarialScheduler(), 0)
	if !res.Converged {
		t.Fatal("no convergence under adversarial scheduler")
	}
	leg := CheckLegitimacy(g, NodesOf(net))
	if !leg.OK() {
		t.Fatalf("not legitimate: %+v", leg)
	}
}

// Both repair policies converge from corrupted states.
func TestRepairPolicies(t *testing.T) {
	for _, pol := range []RepairPolicy{RepairReset, RepairPatch} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			g := graph.RandomGnp(12, 0.3, rng)
			cfg := DefaultConfig(12)
			cfg.Repair = pol
			net := BuildNetwork(g, cfg, seed)
			for _, nd := range NodesOf(net) {
				nd.Corrupt(rng, 12)
			}
			res := runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
			if !res.Converged {
				t.Fatalf("policy %d seed %d: no convergence", pol, seed)
			}
			if leg := CheckLegitimacy(g, NodesOf(net)); !leg.OK() {
				t.Fatalf("policy %d seed %d: %+v", pol, seed, leg)
			}
		}
	}
}

// The protocol also runs on the live goroutine/channel runtime: after a
// wall-clock budget the tree must be a valid spanning tree with the
// expected degree bound (the run is nondeterministic, so only the
// structural outcome is asserted).
func TestLiveNetworkConvergence(t *testing.T) {
	g := graph.Wheel(10)
	cfg := DefaultConfig(10)
	ln := sim.NewLiveNetwork(g, func(id sim.NodeID, nbrs []sim.NodeID) sim.Process {
		return NewNode(id, nbrs, cfg)
	}, sim.LiveConfig{TickInterval: 100 * time.Microsecond})
	ln.RunFor(2 * time.Second)
	nodes := make([]*Node, g.N())
	for i := range nodes {
		nodes[i] = ln.Process(i).(*Node)
	}
	tree, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatalf("live run did not form a tree: %v", err)
	}
	// Wheel: Δ* = 2, bound 3. The live run may not have fully finished
	// reducing, but the hub BFS tree (degree 9) must at least have been
	// improved below the trivial star if reduction ran at all; require
	// the hard bound only.
	if d := tree.MaxDegree(); d > 9 {
		t.Fatalf("degree %d out of range", d)
	}
}

// The same end-to-end property under the asynchronous scheduler: random
// delivery interleavings must not break convergence or the bound.
func TestQuickConvergenceAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("long protocol property test")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(7)
		g := graph.RandomGnp(n, 0.3+rng.Float64()*0.2, rng)
		net := BuildNetwork(g, DefaultConfig(n), seed)
		for _, nd := range NodesOf(net) {
			nd.Corrupt(rng, n)
		}
		res := runToQuiescence(net, g, sim.NewAsyncScheduler(), 0)
		if !res.Converged {
			return false
		}
		leg := CheckLegitimacy(g, NodesOf(net))
		if !leg.OK() {
			t.Logf("seed %d: %+v", seed, leg)
			return false
		}
		star, ok := mdstseq.ExactDelta(g, 0)
		return !ok || leg.MaxDegree <= star+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Scale test: a 64-node sparse overlay stabilizes from full corruption
// (kept out of -short runs; ~10s).
func TestScaleGnp64(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	rng := rand.New(rand.NewSource(100))
	g := graph.MustFamily("gnp").Build(64, rng)
	net := BuildNetwork(g, DefaultConfig(64), 100)
	for _, nd := range NodesOf(net) {
		nd.Corrupt(rng, 64)
	}
	res := runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
	if !res.Converged {
		t.Fatal("n=64 did not converge")
	}
	leg := CheckLegitimacy(g, NodesOf(net))
	if !leg.OK() {
		t.Fatalf("not legitimate: %+v", leg)
	}
	// The FR bracket bound must hold.
	fr := mdstseq.Approximate(g).MaxDegree()
	if leg.MaxDegree > fr+1 {
		t.Fatalf("degree %d above FR+1 = %d", leg.MaxDegree, fr+1)
	}
	t.Logf("n=64: degree %d (FR %d), stabilized at round %d, %d messages",
		leg.MaxDegree, fr, res.LastChangeRound, net.Metrics().Deliveries)
}
