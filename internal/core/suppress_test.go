package core

import (
	"testing"

	"mdst/internal/graph"
)

// TestSuppressDuplicateLaunch: an equivalent Search launched again
// within the window with unchanged local state is pruned at the
// initiator; after the window it passes again — suppression is a
// bounded delay, never a permanent block.
func TestSuppressDuplicateLaunch(t *testing.T) {
	g := graph.Wheel(8)
	cfg := DefaultConfig(8)
	cfg.SuppressSearches = true
	cfg.SuppressWindow = 10
	net := BuildNetwork(g, cfg, 1)
	preload(t, g, net)
	nodes := NodesOf(net)

	tr, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	nte := tr.NonTreeEdges()
	if len(nte) == 0 {
		t.Fatal("wheel tree must leave non-tree edges")
	}
	u, v := nte[0].U, nte[0].V
	ctx := net.Context(u)

	before := nodes[u].NodeStats()
	nodes[u].startSearch(ctx, v, -1, 0)
	nodes[u].startSearch(ctx, v, -1, 0)
	after := nodes[u].NodeStats()
	if got := after.SearchesLaunched - before.SearchesLaunched; got != 1 {
		t.Fatalf("launched %d tokens, want 1 (duplicate pruned)", got)
	}
	if got := after.SearchesSuppressed - before.SearchesSuppressed; got != 1 {
		t.Fatalf("suppressed counter %d, want 1", got)
	}

	// Advance past the window (ticks only; the node's state is already
	// stable so versions stay put) and retry: the launch must pass.
	for i := 0; i < cfg.SuppressWindow+1; i++ {
		nodes[u].tick++
	}
	nodes[u].startSearch(ctx, v, -1, 0)
	final := nodes[u].NodeStats()
	if got := final.SearchesLaunched - after.SearchesLaunched; got != 1 {
		t.Fatalf("post-window launch pruned: %d launches", got)
	}
}

// TestSuppressReleasedByStateChange: a local state change (version bump)
// re-enables an otherwise-suppressed key immediately — suppression never
// hides a cycle whose classification could have changed.
func TestSuppressReleasedByStateChange(t *testing.T) {
	g := graph.Wheel(8)
	cfg := DefaultConfig(8)
	cfg.SuppressSearches = true
	net := BuildNetwork(g, cfg, 1)
	preload(t, g, net)
	nodes := NodesOf(net)

	tr, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	nte := tr.NonTreeEdges()
	u, v := nte[0].U, nte[0].V
	ctx := net.Context(u)

	nodes[u].startSearch(ctx, v, -1, 0)
	// Any real state write moves the version; SetView is one.
	w, _ := nodes[u].ViewOf(nodes[u].nbrs[0])
	w.Submax++
	nodes[u].SetView(nodes[u].nbrs[0], w)
	before := nodes[u].NodeStats()
	nodes[u].startSearch(ctx, v, -1, 0)
	after := nodes[u].NodeStats()
	if got := after.SearchesLaunched - before.SearchesLaunched; got != 1 {
		t.Fatalf("launch after state change pruned: %d launches", got)
	}
}

// TestSuppressBacktrackNeverPruned: a single token's own DFS walk
// revisits nodes on backtrack; those arrivals must never be pruned or
// the walk dies mid-search. The theta-graph improvement of
// TestSearchTokenFindsCyclePath must therefore complete unchanged with
// suppression on.
func TestSuppressBacktrackNeverPruned(t *testing.T) {
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(1, 4)
	cfg := DefaultConfig(5)
	cfg.SuppressSearches = true
	net := BuildNetwork(g, cfg, 1)
	preload(t, g, net)
	nodes := NodesOf(net)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 2}, {4, 1}})
	loadTree(g, net, tree)

	nodes[0].startSearch(net.Context(0), 3, -1, 0)
	drain(net, 10000)
	extracted, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatalf("tree broken after suppressed-mode search: %v", err)
	}
	if d := extracted.Degree(1); d != 2 {
		t.Fatalf("node 1 degree %d, want 2 after improvement", d)
	}
	if !extracted.HasTreeEdge(0, 3) {
		t.Fatal("improving edge {0,3} not in tree")
	}
}

// TestSearchBatchPacesLaunches: with suppression on, at most SearchBatch
// plain searches leave per tick; the deferred edges stay due and launch
// on the following ticks instead of being dropped.
func TestSearchBatchPacesLaunches(t *testing.T) {
	// Tree path 0-1-2-3 branching at 3 (dmax=4 > 2, so searches run) plus
	// three non-tree chords from 0 toward higher IDs — all due at once.
	g := graph.New(7)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(3, 5)
	g.MustAddEdge(3, 6)
	g.MustAddEdge(0, 4)
	g.MustAddEdge(0, 5)
	g.MustAddEdge(0, 6)
	cfg := DefaultConfig(7)
	cfg.SuppressSearches = true
	cfg.SearchBatch = 1
	cfg.SuppressWindow = 1 << 20 // isolate pacing from window expiry
	net := BuildNetwork(g, cfg, 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 2}, {4, 3}, {5, 3}, {6, 3}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)

	ctx := net.Context(0)
	before := nodes[0].NodeStats().SearchesLaunched
	nodes[0].Tick(ctx)
	perTick := nodes[0].NodeStats().SearchesLaunched - before
	if perTick > 1 {
		t.Fatalf("batch=1 launched %d searches in one tick", perTick)
	}
	// Subsequent ticks drain the deferred edges one by one.
	total := perTick
	for i := 0; i < 8; i++ {
		prev := nodes[0].NodeStats().SearchesLaunched
		nodes[0].Tick(ctx)
		d := nodes[0].NodeStats().SearchesLaunched - prev
		if d > 1 {
			t.Fatalf("tick %d launched %d searches with batch=1", i, d)
		}
		total += d
	}
	if total != 3 {
		t.Fatalf("launched %d searches over the paced ticks, want all 3 chords", total)
	}
}

// TestSuppressionOffIsInert: with the knob off the maps stay nil, the
// counter stays zero and Clone round-trips — the committed baselines
// depend on the off path being byte-identical to the pre-suppression
// code.
func TestSuppressionOffIsInert(t *testing.T) {
	g := graph.Wheel(8)
	net := BuildNetwork(g, DefaultConfig(8), 1)
	preload(t, g, net)
	nodes := NodesOf(net)
	for i := 0; i < 100; i++ {
		for id := range nodes {
			net.Tick(id)
		}
		drain(net, 1<<20)
	}
	st := AggregateStats(nodes)
	if st.SearchesSuppressed != 0 {
		t.Fatalf("suppression counter %d with the knob off", st.SearchesSuppressed)
	}
	if nodes[0].suppress != nil {
		t.Fatal("suppressor allocated with the knob off")
	}
	c := nodes[0].Clone()
	if c.suppress != nil {
		t.Fatal("Clone allocated a suppressor with the knob off")
	}
}
