// Package viz renders a graph and a spanning tree as an SVG image using
// only the standard library: non-tree edges are drawn thin and grey,
// tree edges thick, nodes colored by their tree degree (the quantity the
// paper minimizes), making degree hotspots visible at a glance.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"mdst/internal/graph"
	"mdst/internal/spanning"
)

// Options controls the rendering.
type Options struct {
	// Size is the square canvas side in pixels (default 640).
	Size int
	// Layout chooses node placement: "circle" (default) or "spring".
	Layout string
	// Title is drawn in the top-left corner when non-empty.
	Title string
}

// Render writes an SVG of g (and, if tree is non-nil, of the tree
// embedded in it) to w.
func Render(w io.Writer, g *graph.Graph, tree *spanning.Tree, opt Options) error {
	if opt.Size <= 0 {
		opt.Size = 640
	}
	var pos [][2]float64
	if opt.Layout == "spring" {
		pos = springLayout(g, opt.Size)
	} else {
		pos = circleLayout(g.N(), opt.Size)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opt.Size, opt.Size, opt.Size, opt.Size)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	var treeSet map[graph.Edge]bool
	var degs []int
	maxDeg := 1
	if tree != nil {
		treeSet = tree.EdgeSet()
		degs = tree.Degrees()
		for _, d := range degs {
			if d > maxDeg {
				maxDeg = d
			}
		}
	}
	// Non-tree edges first (underneath).
	for _, e := range g.Edges() {
		if treeSet != nil && treeSet[e] {
			continue
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#cccccc" stroke-width="1"/>`+"\n",
			pos[e.U][0], pos[e.U][1], pos[e.V][0], pos[e.V][1])
	}
	for e := range treeSet {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#2255cc" stroke-width="3"/>`+"\n",
			pos[e.U][0], pos[e.U][1], pos[e.V][0], pos[e.V][1])
	}
	// Nodes colored by tree degree: green (low) to red (max).
	r := float64(opt.Size) / 60
	for v := 0; v < g.N(); v++ {
		fill := "#888888"
		if degs != nil {
			fill = heat(degs[v], maxDeg)
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="black" stroke-width="1"/>`+"\n",
			pos[v][0], pos[v][1], r, fill)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="%.0f" text-anchor="middle" dy=".3em">%d</text>`+"\n",
			pos[v][0], pos[v][1], r, v)
	}
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="8" y="18" font-size="14" font-family="monospace">%s</text>`+"\n",
			escape(opt.Title))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// heat maps degree d in [1,max] to a green-to-red hex color.
func heat(d, max int) string {
	if max <= 1 {
		max = 2
	}
	t := float64(d-1) / float64(max-1)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	rr := int(80 + t*175)
	gg := int(200 - t*160)
	return fmt.Sprintf("#%02x%02x40", rr, gg)
}

// escape sanitizes text content for XML.
func escape(s string) string {
	repl := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return repl.Replace(s)
}

// circleLayout places n nodes on a circle.
func circleLayout(n, size int) [][2]float64 {
	pos := make([][2]float64, n)
	c := float64(size) / 2
	rad := c * 0.85
	for v := 0; v < n; v++ {
		a := 2 * math.Pi * float64(v) / float64(maxInt(n, 1))
		pos[v] = [2]float64{c + rad*math.Cos(a), c + rad*math.Sin(a)}
	}
	return pos
}

// springLayout runs a small deterministic Fruchterman–Reingold-style
// relaxation seeded from the circle layout.
func springLayout(g *graph.Graph, size int) [][2]float64 {
	n := g.N()
	pos := circleLayout(n, size)
	if n < 3 {
		return pos
	}
	area := float64(size) * float64(size)
	k := math.Sqrt(area / float64(n))
	disp := make([][2]float64, n)
	for iter := 0; iter < 120; iter++ {
		for i := range disp {
			disp[i] = [2]float64{}
		}
		// Repulsion.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				dx := pos[u][0] - pos[v][0]
				dy := pos[u][1] - pos[v][1]
				d := math.Hypot(dx, dy) + 1e-9
				f := k * k / d
				disp[u][0] += dx / d * f
				disp[u][1] += dy / d * f
				disp[v][0] -= dx / d * f
				disp[v][1] -= dy / d * f
			}
		}
		// Attraction along edges.
		for _, e := range g.Edges() {
			dx := pos[e.U][0] - pos[e.V][0]
			dy := pos[e.U][1] - pos[e.V][1]
			d := math.Hypot(dx, dy) + 1e-9
			f := d * d / k
			disp[e.U][0] -= dx / d * f
			disp[e.U][1] -= dy / d * f
			disp[e.V][0] += dx / d * f
			disp[e.V][1] += dy / d * f
		}
		// Bounded displacement with cooling.
		temp := float64(size) / 10 * (1 - float64(iter)/120)
		for v := 0; v < n; v++ {
			dx, dy := disp[v][0], disp[v][1]
			d := math.Hypot(dx, dy) + 1e-9
			step := math.Min(d, temp)
			pos[v][0] += dx / d * step
			pos[v][1] += dy / d * step
			pos[v][0] = clamp(pos[v][0], 20, float64(size)-20)
			pos[v][1] = clamp(pos[v][1], 20, float64(size)-20)
		}
	}
	return pos
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
