package viz

import (
	"bytes"
	"strings"
	"testing"

	"mdst/internal/graph"
	"mdst/internal/spanning"
)

func TestRenderGraphOnly(t *testing.T) {
	g := graph.Ring(6)
	var buf bytes.Buffer
	if err := Render(&buf, g, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(out, "</svg>\n") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(out, "<line") != 6 {
		t.Fatalf("want 6 edges, got %d", strings.Count(out, "<line"))
	}
	if strings.Count(out, "<circle") != 6 {
		t.Fatalf("want 6 nodes, got %d", strings.Count(out, "<circle"))
	}
}

func TestRenderWithTree(t *testing.T) {
	g := graph.Wheel(8)
	tr := spanning.BFSTree(g, 0)
	var buf bytes.Buffer
	if err := Render(&buf, g, tr, Options{Title: "wheel <8>"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 7 thick tree edges + the rest thin.
	if got := strings.Count(out, `stroke-width="3"`); got != 7 {
		t.Fatalf("tree edges %d, want 7", got)
	}
	if strings.Count(out, `stroke-width="1"`) < g.M()-7 {
		t.Fatal("non-tree edges missing")
	}
	// Title escaped.
	if !strings.Contains(out, "wheel &lt;8&gt;") {
		t.Fatal("title not escaped")
	}
}

func TestRenderSpringLayout(t *testing.T) {
	g := graph.Grid(3, 3)
	tr := spanning.BFSTree(g, 0)
	var buf bytes.Buffer
	if err := Render(&buf, g, tr, Options{Layout: "spring", Size: 320}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="320"`) {
		t.Fatal("size not applied")
	}
}

func TestRenderTinyGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{graph.New(1), graph.Path(2)} {
		var buf bytes.Buffer
		if err := Render(&buf, g, nil, Options{Layout: "spring"}); err != nil {
			t.Fatalf("n=%d: %v", g.N(), err)
		}
	}
}

func TestHeatRange(t *testing.T) {
	lo := heat(1, 5)
	hi := heat(5, 5)
	if lo == hi {
		t.Fatal("heat does not differentiate")
	}
	if heat(1, 1) == "" || heat(7, 5) == "" {
		t.Fatal("degenerate inputs must still render")
	}
}
