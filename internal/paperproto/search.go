package paperproto

import (
	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/sim"
)

// Fundamental-cycle detection (paper §3.2.2, Fig. 3) — identical to the
// primary variant: a DFS token over tree edges whose Path is the DFS
// stack, reusing core's Search wire format.

// suppressSearch applies the shared duplicate-token pruning module
// (core.SearchSuppressor — the two variants share the whole search
// schedule; only the exchange choreography differs) over the current
// effective window, deepening the adaptive backoff when a pass proves
// a full window elapsed at a fixed point. Never called with
// suppression off.
func (n *Node) suppressSearch(init graph.Edge, block int) bool {
	pruned, lapsed := n.suppress.SuppressEx(n.effectiveWindow(), n.tick, n.version, init, block)
	if pruned {
		n.stats.SearchesSuppressed++
		return true
	}
	if lapsed {
		n.deepenBackoff()
	}
	return false
}

// effectiveWindow, backoffWindowAt, deepenBackoff, searchPassTick,
// currentWindow and CurrentRetryPeriod mirror internal/core exactly;
// the adaptive-backoff schedule is part of the shared search module.

func (n *Node) effectiveWindow() int {
	if !n.cfg.BackoffSearches {
		return n.cfg.PruneWindow()
	}
	if n.version != n.backoffVersion {
		n.backoffTier = 0
		n.backoffVersion = n.version
	}
	return n.backoffWindowAt(n.backoffTier)
}

func (n *Node) backoffWindowAt(tier int) int {
	w, cap := n.cfg.PruneWindow(), n.cfg.BackoffCapWindow()
	for i := 0; i < tier && w < cap; i++ {
		w <<= 1
	}
	if w > cap {
		w = cap
	}
	return w
}

func (n *Node) deepenBackoff() {
	if !n.cfg.BackoffSearches || n.backoffTick == n.tick {
		return
	}
	n.backoffTick = n.tick
	if n.backoffWindowAt(n.backoffTier) < n.cfg.BackoffCapWindow() {
		n.backoffTier++
	}
}

func (n *Node) searchPassTick(u int) int {
	if n.suppress == nil {
		return 0
	}
	return n.suppress.PassTick(n.currentWindow(), n.version, graph.Edge{U: n.id, V: u}, -1)
}

func (n *Node) currentWindow() int {
	if !n.cfg.BackoffSearches || n.version != n.backoffVersion {
		return n.cfg.PruneWindow()
	}
	return n.backoffWindowAt(n.backoffTier)
}

// CurrentRetryPeriod is the node's present worst-case retry spacing —
// the time-varying counterpart of Config.EffectiveRetryPeriod; see
// core.Node.CurrentRetryPeriod.
func (n *Node) CurrentRetryPeriod() int {
	p := n.cfg.SearchPeriod
	if !n.cfg.SuppressSearches {
		return p
	}
	if w := n.currentWindow(); w > p {
		return w
	}
	return p
}

// maybeStartSearches launches due plain searches for non-tree edges
// toward higher IDs, guarded by locally_stabilized and paced by
// SearchPeriod; with suppression on, launches are batched exactly as in
// internal/core.
func (n *Node) maybeStartSearches(ctx *sim.Context) {
	if !n.locallyStabilized() {
		return
	}
	if n.dmax <= 2 {
		return // a degree-2 tree is a Hamiltonian path: globally optimal
	}
	batch := -1
	if n.cfg.SuppressSearches {
		if batch = n.cfg.SearchBatch; batch <= 0 {
			batch = 2
		}
	}
	for _, u := range n.nbrs {
		if n.isTreeEdge(u) || n.id > u {
			continue
		}
		if n.tick < n.nextSearch[u] {
			continue
		}
		if batch == 0 {
			break // paced: the remaining due edges retry next tick
		}
		n.nextSearch[u] = n.tick + n.cfg.SearchPeriod + n.searchJitter(u)
		n.startSearch(ctx, u, -1, 0)
		if batch > 0 {
			batch--
		}
	}
}

// searchJitter desynchronizes retries of different initiators with a
// deterministic hash of (id, edge, tick), breaking the concurrent
// exchange retry resonance (see the matching function in internal/core).
func (n *Node) searchJitter(u int) int {
	span := n.cfg.SearchPeriod / 2
	if span < 2 {
		return 0
	}
	h := uint64(n.id)*0x9e3779b97f4a7c15 ^ uint64(u)*0xc2b2ae3d27d4eb4f ^ uint64(n.tick)*0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int(h % uint64(span))
}

// startSearch launches one DFS token seeking target.
func (n *Node) startSearch(ctx *sim.Context, target, block, ttl int) {
	first := n.firstTreeNeighbor(-1, -1, nil)
	if first < 0 {
		return
	}
	if n.cfg.SuppressSearches && n.suppressSearch(graph.Edge{U: n.id, V: target}, block) {
		return
	}
	n.stats.SearchesLaunched++
	msg := core.SearchMsg{
		Init:  graph.Edge{U: n.id, V: target},
		Block: block,
		TTL:   ttl,
		Path:  []core.PathEntry{{Node: n.id, Deg: n.Deg(), Parent: n.parent, Cursor: first}},
	}
	ctx.Send(first, msg)
}

// firstTreeNeighbor returns the smallest tree neighbor with ID > after,
// excluding `exclude` and any node already on the path; -1 if none.
func (n *Node) firstTreeNeighbor(after, exclude int, path []core.PathEntry) int {
	for _, u := range n.nbrs {
		if u <= after || u == exclude || !n.isTreeEdge(u) {
			continue
		}
		onPath := false
		for i := range path {
			if path[i].Node == u {
				onPath = true
				break
			}
		}
		if !onPath {
			return u
		}
	}
	return -1
}

// handleSearch advances a DFS token through this node.
func (n *Node) handleSearch(ctx *sim.Context, from int, msg core.SearchMsg) {
	if !n.locallyStabilized() {
		return
	}
	if len(msg.Path) == 0 {
		return
	}
	if n.id == msg.Init.V {
		if from != msg.Path[len(msg.Path)-1].Node || !n.isTreeEdge(from) {
			return
		}
		if n.isTreeEdge(msg.Init.U) {
			return
		}
		if n.cfg.SuppressSearches && n.suppressSearch(msg.Init, msg.Block) {
			return
		}
		n.actionOnCycle(ctx, msg)
		return
	}
	top := len(msg.Path) - 1
	if msg.Path[top].Node == n.id {
		if n.parent != msg.Path[top].Parent {
			return
		}
	} else {
		if !n.isTreeEdge(from) || msg.Path[top].Node != from {
			return
		}
		// Only a token's first (descent) arrival is a duplicate candidate;
		// backtrack arrivals are its own DFS walk and pass untouched.
		if n.cfg.SuppressSearches && n.suppressSearch(msg.Init, msg.Block) {
			return
		}
		msg.Path = append(msg.Path, core.PathEntry{Node: n.id, Deg: n.Deg(), Parent: n.parent, Cursor: -1})
		top++
	}
	prev := -1
	if top > 0 {
		prev = msg.Path[top-1].Node
	}
	next := n.firstTreeNeighbor(msg.Path[top].Cursor, prev, msg.Path[:top])
	if next >= 0 {
		msg.Path[top].Cursor = next
		ctx.Send(next, msg)
		return
	}
	msg.Path = msg.Path[:top]
	if len(msg.Path) == 0 {
		return
	}
	if prev >= 0 && n.isTreeEdge(prev) {
		ctx.Send(prev, msg)
	}
}
