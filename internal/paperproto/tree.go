package paperproto

import "mdst/internal/core"

// Spanning-tree and maximum-degree modules (paper §3.2.1 and §3.2.3).
// These are the same modules as in internal/core — both variants share
// them verbatim; only the degree-reduction choreography differs. They
// are re-stated here on this package's Node type so that the variant is
// a self-contained protocol implementation.

// betterParent is the paper's better_parent(v).
func (n *Node) betterParent() bool {
	for _, u := range n.nbrs {
		v := n.view[u]
		if v.Root < n.root && v.Distance+1 <= n.cfg.MaxDist {
			return true
		}
	}
	return false
}

// bestParentCandidate returns the neighbor with the minimal advertised
// root, ties broken by minimal ID (the paper's argmin).
func (n *Node) bestParentCandidate() int {
	best := -1
	for _, u := range n.nbrs {
		v := n.view[u]
		if v.Root >= n.root || v.Distance+1 > n.cfg.MaxDist {
			continue
		}
		if best == -1 || v.Root < n.view[best].Root {
			best = u
		}
	}
	return best
}

// coherentParent is the paper's coherent_parent(v).
func (n *Node) coherentParent() bool {
	if n.parent == n.id {
		return n.root == n.id
	}
	v, ok := n.view[n.parent]
	return ok && v.Root == n.root
}

// coherentDistance is the paper's coherent_distance(v) plus the distance
// bound.
func (n *Node) coherentDistance() bool {
	if n.parent == n.id {
		return n.distance == 0
	}
	v, ok := n.view[n.parent]
	if !ok {
		return false
	}
	return n.distance == v.Distance+1 && n.distance <= n.cfg.MaxDist
}

// newRootCandidate is the paper's new_root_candidate(v) plus the
// self-ID guard (root > id is always illegal: the node itself would be
// the better root); see the matching comment in internal/core.
func (n *Node) newRootCandidate() bool {
	return n.root > n.id || !n.coherentParent() || !n.coherentDistance()
}

// treeStabilized is the paper's tree_stabilized(v).
func (n *Node) treeStabilized() bool {
	return !n.betterParent() && !n.newRootCandidate()
}

// degreeStabilized is the paper's degree_stabilized(v).
func (n *Node) degreeStabilized() bool {
	for _, u := range n.nbrs {
		if n.view[u].Dmax != n.dmax {
			return false
		}
	}
	return true
}

// colorStabilized is the paper's color_stabilized(v).
func (n *Node) colorStabilized() bool {
	for _, u := range n.nbrs {
		if n.view[u].Color != n.color {
			return false
		}
	}
	return true
}

// locallyStabilized is the paper's locally_stabilized(v), the guard on
// every reduction-module handler.
func (n *Node) locallyStabilized() bool {
	return n.treeStabilized() && n.degreeStabilized() && n.colorStabilized()
}

// createNewRoot is the paper's create_new_root(v).
func (n *Node) createNewRoot() {
	n.root = n.id
	n.parent = n.id
	n.distance = 0
}

// changeParentTo is the paper's change_parent_to(v,u).
func (n *Node) changeParentTo(u int) {
	v := n.view[u]
	n.root = v.Root
	n.parent = u
	n.distance = v.Distance + 1
}

// runTreeModule applies R2 then R1 — the highest-priority module.
func (n *Node) runTreeModule() {
	if n.newRootCandidate() {
		switch n.cfg.Repair {
		case core.RepairReset:
			n.createNewRoot()
		case core.RepairPatch:
			if n.root > n.id || n.parent == n.id || !n.coherentParent() ||
				n.view[n.parent].Distance+1 > n.cfg.MaxDist {
				n.createNewRoot()
			} else {
				n.distance = n.view[n.parent].Distance + 1
			}
		}
	}
	if !n.newRootCandidate() && n.betterParent() {
		if u := n.bestParentCandidate(); u >= 0 {
			n.changeParentTo(u)
		}
	}
}

// runDegreeModule is the continuous piggybacked PIF (paper §3.2.3).
func (n *Node) runDegreeModule() {
	deg := n.Deg()
	sub := deg
	for _, u := range n.nbrs {
		v := n.view[u]
		if v.Parent == n.id && u != n.parent {
			if v.Submax > sub {
				sub = v.Submax
			}
		}
	}
	n.submax = sub
	if n.parent == n.id {
		if n.dmax != sub {
			n.dmax = sub
			n.color = !n.color
		}
		return
	}
	if v, ok := n.view[n.parent]; ok {
		n.dmax = v.Dmax
		n.color = v.Color
	}
}
