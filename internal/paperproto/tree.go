package paperproto

import "mdst/internal/core"

// Spanning-tree and maximum-degree modules (paper §3.2.1 and §3.2.3).
// These are the same modules as in internal/core — both variants share
// them verbatim; only the degree-reduction choreography differs. They
// are re-stated here on this package's Node type so that the variant is
// a self-contained protocol implementation. As in core, every write
// goes through a changed-value guard that bumps the node's state
// version for the simulator's incremental fingerprint cache.

// betterParent is the paper's better_parent(v).
func (n *Node) betterParent() bool {
	for i := 0; i < n.views.Len(); i++ {
		v := n.views.At(i)
		if v.Root < n.root && v.Distance+1 <= n.cfg.MaxDist {
			return true
		}
	}
	return false
}

// bestParentCandidate returns the neighbor with the minimal advertised
// root, ties broken by minimal ID (the paper's argmin).
func (n *Node) bestParentCandidate() int {
	best := -1
	var bestRoot int
	for i := 0; i < n.views.Len(); i++ { // positions sorted by ID: first hit wins ties
		v := n.views.At(i)
		if v.Root >= n.root || v.Distance+1 > n.cfg.MaxDist {
			continue
		}
		if best == -1 || v.Root < bestRoot {
			best = n.views.ID(i)
			bestRoot = v.Root
		}
	}
	return best
}

// coherentParent is the paper's coherent_parent(v).
func (n *Node) coherentParent() bool {
	if n.parent == n.id {
		return n.root == n.id
	}
	v := n.views.Get(n.parent)
	return v != nil && v.Root == n.root
}

// coherentDistance is the paper's coherent_distance(v) plus the distance
// bound.
func (n *Node) coherentDistance() bool {
	if n.parent == n.id {
		return n.distance == 0
	}
	v := n.views.Get(n.parent)
	if v == nil {
		return false
	}
	return n.distance == v.Distance+1 && n.distance <= n.cfg.MaxDist
}

// newRootCandidate is the paper's new_root_candidate(v) plus the
// self-ID guard (root > id is always illegal: the node itself would be
// the better root); see the matching comment in internal/core.
func (n *Node) newRootCandidate() bool {
	return n.root > n.id || !n.coherentParent() || !n.coherentDistance()
}

// treeStabilized is the paper's tree_stabilized(v).
func (n *Node) treeStabilized() bool {
	return !n.betterParent() && !n.newRootCandidate()
}

// degreeStabilized is the paper's degree_stabilized(v).
func (n *Node) degreeStabilized() bool {
	for i := 0; i < n.views.Len(); i++ {
		if n.views.At(i).Dmax != n.dmax {
			return false
		}
	}
	return true
}

// colorStabilized is the paper's color_stabilized(v).
func (n *Node) colorStabilized() bool {
	for i := 0; i < n.views.Len(); i++ {
		if n.views.At(i).Color != n.color {
			return false
		}
	}
	return true
}

// locallyStabilized is the paper's locally_stabilized(v), the guard on
// every reduction-module handler.
func (n *Node) locallyStabilized() bool {
	return n.treeStabilized() && n.degreeStabilized() && n.colorStabilized()
}

// createNewRoot is the paper's create_new_root(v).
func (n *Node) createNewRoot() {
	if n.root != n.id || n.parent != n.id || n.distance != 0 {
		old := n.parent
		n.root = n.id
		n.parent = n.id
		n.distance = 0
		n.version++
		if n.audit != nil {
			n.audit(core.MutationReset, old, n.id)
		}
	}
}

// changeParentTo is the paper's change_parent_to(v,u).
func (n *Node) changeParentTo(u int) {
	v := n.views.Get(u)
	if n.root != v.Root || n.parent != u || n.distance != v.Distance+1 {
		old := n.parent
		n.root = v.Root
		n.parent = u
		n.distance = v.Distance + 1
		n.version++
		if n.audit != nil {
			n.audit(core.MutationParent, old, u)
		}
	}
}

// setDistance writes the distance variable through the version guard.
func (n *Node) setDistance(d int) {
	if n.distance != d {
		n.distance = d
		n.version++
	}
}

// runTreeModule applies R2 then R1 — the highest-priority module.
func (n *Node) runTreeModule() {
	if n.newRootCandidate() {
		switch n.cfg.Repair {
		case core.RepairReset:
			n.createNewRoot()
		case core.RepairPatch:
			if n.root > n.id || n.parent == n.id || !n.coherentParent() ||
				n.views.Get(n.parent).Distance+1 > n.cfg.MaxDist {
				n.createNewRoot()
			} else {
				n.setDistance(n.views.Get(n.parent).Distance + 1)
			}
		}
	}
	if !n.newRootCandidate() && n.betterParent() {
		if u := n.bestParentCandidate(); u >= 0 {
			n.changeParentTo(u)
		}
	}
}

// runDegreeModule is the continuous piggybacked PIF (paper §3.2.3).
func (n *Node) runDegreeModule() {
	deg := n.Deg()
	sub := deg
	for i := 0; i < n.views.Len(); i++ {
		v := n.views.At(i)
		if v.Parent == n.id && n.views.ID(i) != n.parent {
			if v.Submax > sub {
				sub = v.Submax
			}
		}
	}
	if n.submax != sub {
		n.submax = sub
		n.version++
	}
	if n.parent == n.id {
		if n.dmax != sub {
			n.dmax = sub
			n.color = !n.color
			n.version++
		}
		return
	}
	if v := n.views.Get(n.parent); v != nil {
		if n.dmax != v.Dmax || n.color != v.Color {
			n.dmax = v.Dmax
			n.color = v.Color
			n.version++
		}
	}
}
