package paperproto

import (
	"testing"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// Aliases keeping the choreography tests terse.
type (
	coreSearch    = core.SearchMsg
	corePathEntry = core.PathEntry
)

func deblockMsg(block, ttl int) core.DeblockMsg { return core.DeblockMsg{Block: block, TTL: ttl} }

func updateDist(d int) core.UpdateDistMsg { return core.UpdateDistMsg{Dist: d} }

// drain delivers every pending message in deterministic order until the
// network is quiet (no ticks run: handler-level tests drive messages
// only).
func drain(net *sim.Network, maxSteps int) int {
	steps := 0
	for steps < maxSteps {
		links := net.NonEmptyLinks()
		if len(links) == 0 {
			return steps
		}
		net.Deliver(links[0])
		steps++
	}
	return steps
}

// chainTree builds a spanning tree from explicit (child, parent) pairs
// rooted at 0.
func chainTree(t *testing.T, g *graph.Graph, pairs [][2]int) *spanning.Tree {
	t.Helper()
	parents := make([]int, g.N())
	parents[0] = 0
	for _, p := range pairs {
		parents[p[0]] = p[1]
	}
	tr, err := spanning.NewFromParents(g, parents, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// preload writes a legitimate configuration (stabilized BFS tree reduced
// to a Fürer–Raghavachari fixed point, coherent views) into a network.
func preload(t *testing.T, g *graph.Graph, net *sim.Network) *spanning.Tree {
	t.Helper()
	tree := spanning.BFSTree(g, 0)
	mdstseq.FurerRaghavachari(tree)
	loadTree(g, net, tree)
	return tree
}

// loadTree installs an arbitrary valid tree (plus coherent degree data)
// as the current configuration.
func loadTree(g *graph.Graph, net *sim.Network, tree *spanning.Tree) {
	k := tree.MaxDegree()
	deg := tree.Degrees()
	submax := make([]int, g.N())
	for pass := 0; pass < g.N(); pass++ {
		for v := 0; v < g.N(); v++ {
			submax[v] = deg[v]
			for _, c := range tree.Children(v) {
				if submax[c] > submax[v] {
					submax[v] = submax[c]
				}
			}
		}
	}
	nodes := NodesOf(net)
	for i, nd := range nodes {
		nd.SetState(tree.Root(), tree.Parent(i), tree.Depth(i), k, submax[i], false)
	}
	for i, nd := range nodes {
		for _, u := range g.Neighbors(i) {
			nd.SetView(u, View{
				Root:     tree.Root(),
				Parent:   tree.Parent(u),
				Distance: tree.Depth(u),
				Dmax:     k,
				Submax:   submax[u],
				Deg:      deg[u],
				Color:    false,
			})
		}
	}
}
