package paperproto

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdst/internal/graph"
)

func TestMessageKindsAndSizes(t *testing.T) {
	r := RemoveMsg{Path: []int{1, 2, 3}}
	if r.Kind() != KindRemove || r.Size() != 11 {
		t.Fatalf("Remove kind=%q size=%d", r.Kind(), r.Size())
	}
	b := BackMsg{Path: []int{1, 2}}
	if b.Kind() != KindBack || b.Size() != 6 {
		t.Fatalf("Back kind=%q size=%d", b.Kind(), b.Size())
	}
	v := ReverseMsg{Target: 3}
	if v.Kind() != KindReverse || v.Size() != 1 {
		t.Fatalf("Reverse kind=%q size=%d", v.Kind(), v.Size())
	}
	kinds := ReductionKinds()
	if len(kinds) != 4 {
		t.Fatalf("ReductionKinds = %v", kinds)
	}
}

// Message length property: a Remove carrying a cycle of c nodes is
// O(c) words — the paper's O(n log n)-bit buffer bound.
func TestQuickRemoveSizeLinearInPath(t *testing.T) {
	f := func(k uint8) bool {
		c := int(k%64) + 2
		m := RemoveMsg{Path: make([]int, c)}
		return m.Size() == c+8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegAndTreeEdgeDerivation(t *testing.T) {
	g := graph.Star(5) // five nodes: hub 0, leaves 1..4
	net := BuildNetwork(g, DefaultConfig(5), 1)
	nodes := NodesOf(net)
	// Clean start: every node its own root, no tree edges except those
	// implied by views (leaves' views say hub parents are themselves).
	hub := nodes[0]
	hub.SetState(0, 0, 0, 0, 0, false)
	for leaf := 1; leaf <= 4; leaf++ {
		nodes[leaf].SetState(0, 0, 1, 0, 0, false)
		hub.SetView(leaf, View{Root: 0, Parent: 0, Distance: 1})
	}
	if d := hub.Deg(); d != 4 {
		t.Fatalf("hub degree %d, want 4", d)
	}
	if !hub.isTreeEdge(1) || nodes[1].Parent() != 0 {
		t.Fatal("tree edge derivation broken")
	}
}

func TestStateBitsMatchesAccounting(t *testing.T) {
	g := graph.Complete(6)
	cfg := DefaultConfig(6)
	net := BuildNetwork(g, cfg, 1)
	for _, nd := range NodesOf(net) {
		want := (6 + 7*5) * cfg.WordBits
		if nd.StateBits() != want {
			t.Fatalf("StateBits %d, want %d", nd.StateBits(), want)
		}
	}
}

// Property: the memory stays within the paper's O(δ log n) bound with a
// small constant across random graphs (experiment E3, literal variant).
func TestQuickMemoryWithinDeltaLogN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		g := graph.RandomGnp(n, 0.4, rng)
		cfg := DefaultConfig(n)
		net := BuildNetwork(g, cfg, seed)
		delta := 0
		for v := 0; v < n; v++ {
			if d := g.Degree(v); d > delta {
				delta = d
			}
		}
		logN := 1
		for v := n; v > 1; v >>= 1 {
			logN++
		}
		bound := 16 * (delta + 1) * logN // generous constant; the point is the shape
		return net.MaxStateBits() <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptStaysInDomain(t *testing.T) {
	g := graph.Ring(8)
	net := BuildNetwork(g, DefaultConfig(8), 3)
	rng := rand.New(rand.NewSource(3))
	for _, nd := range NodesOf(net) {
		nd.Corrupt(rng, 8)
		if nd.Root() < 0 || nd.Root() >= 8 {
			t.Fatalf("corrupted root %d out of ID space", nd.Root())
		}
	}
}

// The Deblock flood is rate-limited per blocker and respects TTL.
func TestDeblockFloodRateLimitAndTTL(t *testing.T) {
	g := graph.Star(3)
	net := BuildNetwork(g, DefaultConfig(4), 1)
	preload(t, g, net)
	nodes := NodesOf(net)

	ctx := net.Context(0)
	nodes[0].broadcastDeblock(ctx, 0, 2, -1)
	first := nodes[0].NodeStats().DeblocksTriggered
	nodes[0].broadcastDeblock(ctx, 0, 2, -1) // within SearchPeriod: suppressed
	if nodes[0].NodeStats().DeblocksTriggered != first {
		t.Fatal("deblock storm not suppressed")
	}
	// TTL zero messages are ignored by receivers.
	before := nodes[1].NodeStats().DeblocksTriggered
	nodes[1].handleDeblock(net.Context(1), 0, deblockMsg(0, 0))
	if nodes[1].NodeStats().DeblocksTriggered != before {
		t.Fatal("TTL-0 deblock processed")
	}
}

// UpdateDist only applies when coming from the parent and propagates on
// change.
func TestUpdateDistParentOnly(t *testing.T) {
	g := graph.Path(3)
	net := BuildNetwork(g, DefaultConfig(3), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)

	nodes[1].handleUpdateDist(net.Context(1), 2, updateDist(9)) // from child: ignored
	if nodes[1].Distance() != 1 {
		t.Fatalf("distance changed by non-parent UpdateDist: %d", nodes[1].Distance())
	}
	nodes[1].handleUpdateDist(net.Context(1), 0, updateDist(4)) // from parent: applied
	if nodes[1].Distance() != 5 {
		t.Fatalf("distance %d, want 5", nodes[1].Distance())
	}
	drain(net, 100)
	if nodes[2].Distance() != 6 {
		t.Fatalf("child distance %d, want 6 (flood)", nodes[2].Distance())
	}
}

// A search from a node with no tree neighbors dies silently.
func TestStartSearchIsolatedInTree(t *testing.T) {
	g := graph.Ring(4)
	net := BuildNetwork(g, DefaultConfig(4), 1)
	nodes := NodesOf(net)
	// Node 2 is its own root with no children in anyone's view.
	nodes[2].SetState(2, 2, 0, 3, 3, false)
	nodes[2].startSearch(net.Context(2), 3, -1, 0)
	if net.Pending() != 0 {
		t.Fatal("isolated node launched a token")
	}
}
