package paperproto

import (
	"math/rand"

	"mdst/internal/core"
	"mdst/internal/localview"
	"mdst/internal/sim"
)

// Config reuses the primary implementation's tuning knobs: the two
// variants share the spanning-tree, maximum-degree and cycle-search
// modules and differ only in the exchange choreography.
type Config = core.Config

// DefaultConfig returns the configuration used by the experiments for a
// network of n nodes (identical to core.DefaultConfig).
func DefaultConfig(n int) Config { return core.DefaultConfig(n) }

// View is a node's local copy of one neighbor's variables (send/receive
// atomicity), refreshed only by InfoMsg. Both protocol variants share
// the dense localview storage.
type View = localview.View

// Node is one participant of the literal-choreography protocol variant.
type Node struct {
	id   int
	cfg  Config
	nbrs []int

	// The paper's per-node variables (§3.1).
	root     int
	parent   int
	distance int
	dmax     int
	submax   int
	color    bool

	// Local copies of neighbor variables, dense by neighbor position.
	views localview.Table

	// version counts protocol-state mutations; see the matching field in
	// core.Node — the simulator's incremental fingerprint cache re-hashes
	// a node only when its version moved.
	version uint64

	// Implementation bookkeeping (transient; not protocol state).
	tick        int
	nextSearch  map[int]int
	lastDeblock map[int]int
	// Event-core parking state (sim.EventProcess); see the matching
	// fields in core.Node.
	restVersion uint64
	tickMoved   bool
	// suppress is the shared duplicate-token pruning state (nil unless
	// Config.SuppressSearches); see core.SearchSuppressor.
	suppress *core.SearchSuppressor
	// Adaptive-backoff state (Config.BackoffSearches); see the matching
	// fields in core.Node — transient, never fingerprinted, never bumps
	// the state version.
	backoffTier    int
	backoffVersion uint64
	backoffTick    int

	// audit observes accepted tree mutations; see core.MutationHook
	// (the hook type and kind values are shared across variants so
	// audit-log chains are comparable between implementations).
	audit core.MutationHook

	stats Stats
}

// SetMutationHook installs the audit observer (nil disables); same
// contract as core.Node.SetMutationHook.
func (n *Node) SetMutationHook(h core.MutationHook) { n.audit = h }

// Stats counts protocol events at this node (observability only).
type Stats struct {
	SearchesLaunched  int // DFS tokens this node initiated
	CyclesClassified  int // actionOnCycle invocations at this node
	RemovesStarted    int // Improve invocations (Remove sent across the init edge)
	ReorientHops      int // re-parenting hops applied in the reorientation phase
	BacksStarted      int // case-(b) Back messages emitted at the target edge
	ExchangesComplete int // source_remove attachments: one per completed exchange
	ChoreoAborted     int // Remove/Back hops discarded by a staleness check
	ReversesSent      int // literal Reverse messages emitted (Reverse_Aux path)
	DeblocksTriggered int // Deblock floods this node started or forwarded
	// SearchesSuppressed counts Search launches and token arrivals
	// dropped by duplicate pruning (Config.SuppressSearches); always zero
	// with the knob off.
	SearchesSuppressed int
}

// NewNode creates a node in a clean initial state (its own root).
func NewNode(id int, neighbors []int, cfg Config) *Node {
	n := &Node{
		id:          id,
		cfg:         cfg,
		nbrs:        append([]int(nil), neighbors...),
		root:        id,
		parent:      id,
		views:       localview.NewTable(neighbors),
		nextSearch:  make(map[int]int),
		lastDeblock: make(map[int]int),
		tickMoved:   true, // never ticked: the first tick must run
	}
	if cfg.SuppressSearches {
		n.suppress = core.NewSearchSuppressor()
	}
	for _, u := range n.nbrs {
		*n.views.Get(u) = View{Root: u, Parent: u}
	}
	return n
}

// Clone returns a deep copy of the node (state, views and bookkeeping),
// used by the exhaustive model checker to branch executions.
func (n *Node) Clone() *Node {
	c := *n
	c.views = n.views.Clone()
	c.nextSearch = make(map[int]int, len(n.nextSearch))
	for k, v := range n.nextSearch {
		c.nextSearch[k] = v
	}
	c.lastDeblock = make(map[int]int, len(n.lastDeblock))
	for k, v := range n.lastDeblock {
		c.lastDeblock[k] = v
	}
	if n.suppress != nil {
		c.suppress = n.suppress.Clone()
	}
	return &c
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Root returns the locally known root of the spanning tree.
func (n *Node) Root() int { return n.root }

// Parent returns the node's parent pointer (itself when it is a root).
func (n *Node) Parent() int { return n.parent }

// Distance returns the node's distance-to-root variable.
func (n *Node) Distance() int { return n.distance }

// Dmax returns the node's estimate of deg(T).
func (n *Node) Dmax() int { return n.dmax }

// Color returns the freeze-wave color bit.
func (n *Node) Color() bool { return n.color }

// NodeStats returns the node's protocol event counters.
func (n *Node) NodeStats() Stats { return n.stats }

// Deg returns the node's degree in the current tree (the paper's
// edge_status derived from parent pointers and neighbor copies).
func (n *Node) Deg() int {
	d := 0
	for _, u := range n.nbrs {
		if n.isTreeEdge(u) {
			d++
		}
	}
	return d
}

// isTreeEdge is the paper's is_tree_edge(v,u) on v's local copies.
func (n *Node) isTreeEdge(u int) bool {
	if n.parent == u && n.id != n.root {
		return true
	}
	if v := n.views.Get(u); v != nil && v.Parent == n.id {
		return true
	}
	return false
}

// SetState overwrites the protocol variables (test/fault injection).
func (n *Node) SetState(root, parent, distance, dmax, submax int, color bool) {
	n.root, n.parent, n.distance = root, parent, distance
	n.dmax, n.submax, n.color = dmax, submax, color
	n.version++
}

// SetView overwrites the local copy of neighbor u (test/fault injection).
func (n *Node) SetView(u int, v View) {
	p := n.views.Get(u)
	if p == nil {
		panic("paperproto: SetView for non-neighbor")
	}
	*p = v
	n.version++
}

// Corrupt randomizes every protocol variable and neighbor copy — the
// arbitrary initial configuration of Definition 1.
func (n *Node) Corrupt(rng *rand.Rand, idSpace int) {
	pick := func() int {
		if rng.Float64() < 0.2 {
			return rng.Intn(idSpace)
		}
		if len(n.nbrs) == 0 || rng.Float64() < 0.3 {
			return n.id
		}
		return n.nbrs[rng.Intn(len(n.nbrs))]
	}
	n.root = rng.Intn(idSpace)
	n.parent = pick()
	n.distance = rng.Intn(n.cfg.MaxDist + 2)
	n.dmax = rng.Intn(idSpace + 2)
	n.submax = rng.Intn(idSpace + 2)
	n.color = rng.Intn(2) == 0
	for _, u := range n.nbrs {
		*n.views.Get(u) = View{
			Root:     rng.Intn(idSpace),
			Parent:   rng.Intn(idSpace),
			Distance: rng.Intn(n.cfg.MaxDist + 2),
			Dmax:     rng.Intn(idSpace + 2),
			Submax:   rng.Intn(idSpace + 2),
			Deg:      rng.Intn(idSpace + 1),
			Color:    rng.Intn(2) == 0,
		}
	}
	n.version++
}

// Init implements sim.Process. Deliberately empty: self-stabilization
// must work from whatever state the node carries.
func (n *Node) Init(ctx *sim.Context) {}

// Tick implements sim.Process: one iteration of the "do forever" loop.
func (n *Node) Tick(ctx *sim.Context) {
	entry := n.version
	n.tick++
	n.runTreeModule()
	n.runDegreeModule()
	if !n.cfg.DisableReduction {
		n.maybeStartSearches(ctx)
	}
	n.sendInfo(ctx)
	n.tickMoved = n.version != entry
	n.restVersion = n.version
}

// NextWork implements sim.EventProcess; same reasoning as
// core.Node.NextWork — the modules are deterministic in the protocol
// state, so with no input and a fixed-point last tick the only
// tick-driven schedule left is the periodic cycle-search retry.
func (n *Node) NextWork() int {
	if n.tickMoved || n.version != n.restVersion {
		return 1
	}
	if n.cfg.DisableReduction || n.dmax <= 2 || !n.locallyStabilized() {
		return sim.NoWork
	}
	next := -1
	for _, u := range n.nbrs {
		if n.isTreeEdge(u) || n.id > u {
			continue
		}
		due := n.nextSearch[u]
		// With adaptive backoff, park straight through to the recorded
		// pass's expiry (a retry inside the effective window would be
		// pruned at the launch site anyway); see core.Node.NextWork.
		if n.cfg.BackoffSearches {
			if pass := n.searchPassTick(u); pass > due {
				due = pass
			}
		}
		if next == -1 || due < next {
			next = due
		}
	}
	if next == -1 {
		return sim.NoWork
	}
	if w := next - n.tick; w > 1 {
		return w
	}
	return 1
}

// SkipTicks implements sim.EventProcess: advance the local clock over
// parked rounds so tick-keyed schedules keep their round meaning.
func (n *Node) SkipTicks(k int) { n.tick += k }

// Receive implements sim.Process.
func (n *Node) Receive(ctx *sim.Context, from sim.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case core.InfoMsg:
		n.handleInfo(from, msg)
	case core.SearchMsg:
		if !n.cfg.DisableReduction {
			n.handleSearch(ctx, from, msg)
		}
	case RemoveMsg:
		if !n.cfg.DisableReduction {
			n.handleRemove(ctx, from, msg)
		}
	case BackMsg:
		if !n.cfg.DisableReduction {
			n.handleBack(ctx, from, msg)
		}
	case ReverseMsg:
		if !n.cfg.DisableReduction {
			n.handleReverseMsg(ctx, from, msg)
		}
	case core.DeblockMsg:
		if !n.cfg.DisableReduction {
			n.handleDeblock(ctx, from, msg)
		}
	case core.UpdateDistMsg:
		n.handleUpdateDist(ctx, from, msg)
	}
}

// sendInfo gossips the current variables to every neighbor.
func (n *Node) sendInfo(ctx *sim.Context) {
	msg := core.InfoMsg{
		Root:     n.root,
		Parent:   n.parent,
		Distance: n.distance,
		Dmax:     n.dmax,
		Submax:   n.submax,
		Deg:      n.Deg(),
		Color:    n.color,
	}
	for _, u := range n.nbrs {
		ctx.Send(u, msg)
	}
}

// handleInfo is the paper's Update_State: refresh the local copy, then
// re-run the correction rules. A gossip that repeats the held copy is
// skipped so the state version stays put once the neighborhood quiesces.
func (n *Node) handleInfo(from int, m core.InfoMsg) {
	v := n.views.Get(from)
	if v == nil {
		return
	}
	if v.Root != m.Root || v.Parent != m.Parent || v.Distance != m.Distance ||
		v.Dmax != m.Dmax || v.Submax != m.Submax || v.Deg != m.Deg ||
		v.Color != m.Color {
		v.Root, v.Parent, v.Distance = m.Root, m.Parent, m.Distance
		v.Dmax, v.Submax, v.Deg, v.Color = m.Dmax, m.Submax, m.Deg, m.Color
		n.version++
	}
	n.runTreeModule()
}

// Fingerprint implements sim.Fingerprinter (protocol variables and
// neighbor copies; message traffic excluded) via the shared localview
// implementation.
func (n *Node) Fingerprint() uint64 {
	return localview.Fingerprint(n.root, n.parent, n.distance, n.dmax,
		n.submax, n.color, &n.views)
}

// StateVersion implements sim.StateVersioner: it moves exactly when the
// fingerprinted state may have changed.
func (n *Node) StateVersion() uint64 { return n.version }

// StateBits implements sim.StateSizer: same accounting as the primary
// variant — the choreography adds no per-node state, only messages.
func (n *Node) StateBits() int {
	words := 6 + 7*len(n.nbrs)
	return words * n.cfg.WordBits
}
