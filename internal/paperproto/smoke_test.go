package paperproto

import (
	"math/rand"
	"testing"

	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/sim"
)

// runToQuiescence runs the full protocol with the standard stop rule.
func runToQuiescence(net *sim.Network, g *graph.Graph, sched sim.Scheduler, maxRounds int) sim.RunResult {
	if maxRounds <= 0 {
		maxRounds = 200*g.N() + 20000
	}
	return net.Run(sim.RunConfig{
		Scheduler:     sched,
		MaxRounds:     maxRounds,
		QuiesceRounds: 2*g.N() + 40,
		ActiveKinds:   ReductionKinds(),
	})
}

// TestSmokeWheel runs the literal variant on a wheel graph (hub degree
// n-1 in the worst starting tree; Δ* = 3 for n >= 7) from a clean start.
func TestSmokeWheel(t *testing.T) {
	g := graph.Wheel(10)
	net := BuildNetwork(g, DefaultConfig(g.N()), 1)
	res := runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
	if !res.Converged {
		t.Fatalf("no quiescence in %d rounds", res.Rounds)
	}
	leg := CheckLegitimacy(g, NodesOf(net))
	if !leg.OK() {
		t.Fatalf("not legitimate: %+v", leg)
	}
	star, ok := mdstseq.ExactDelta(g, 0)
	if !ok {
		t.Fatal("exact solver gave up on a 10-node wheel")
	}
	if leg.MaxDegree > star+1 {
		t.Fatalf("degree %d > Δ*+1 = %d", leg.MaxDegree, star+1)
	}
	st := AggregateStats(NodesOf(net))
	if st.ExchangesComplete == 0 {
		t.Fatal("no exchange ever completed: the choreography never ran")
	}
	t.Logf("rounds=%d deg=%d Δ*=%d stats=%+v", res.Rounds, leg.MaxDegree, star, st)
}

// TestSmokeCorrupted runs from fully corrupted states on a few seeds.
func TestSmokeCorrupted(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(6)
		g := graph.RandomGnp(n, 0.4, rng)
		net := BuildNetwork(g, DefaultConfig(n), seed)
		CorruptAll(net, rng)
		res := runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
		if !res.Converged {
			t.Fatalf("seed %d: no quiescence in %d rounds", seed, res.Rounds)
		}
		leg := CheckLegitimacy(g, NodesOf(net))
		if !leg.OK() {
			t.Fatalf("seed %d: not legitimate: %+v", seed, leg)
		}
		star, ok := mdstseq.ExactDelta(g, 0)
		if ok && leg.MaxDegree > star+1 {
			t.Fatalf("seed %d: degree %d > Δ*+1 = %d", seed, leg.MaxDegree, star+1)
		}
	}
}
