package paperproto

import "mdst/internal/graph"

// Message kinds specific to the literal choreography. InfoMsg, Search
// and Deblock reuse the wire formats of internal/core (identical in the
// paper); Remove, Back and Reverse are this variant's own.
const (
	KindRemove  = "remove"
	KindBack    = "back"
	KindReverse = "reverse"
)

// ReductionKinds lists the message kinds that must drain before a
// configuration is considered quiescent: an in-flight Remove, Back,
// Reverse or UpdateDist can still change the tree. (Search and Deblock
// keep flowing at a fixed point by design, exactly as in core.)
func ReductionKinds() []string {
	return []string{KindRemove, KindBack, KindReverse, "updatedist"}
}

// RemoveMsg is the paper's Remove message: ⟨Remove, init_edge, deg_max,
// target, path⟩. It is routed from the search terminus across the
// initiating non-tree edge and then along the fundamental cycle to the
// target edge; past the target edge it drives the reorientation of the
// detached segment (Figure 5a).
//
// Path holds the cycle node IDs in traversal order: the initiator
// (Init.U) first, the terminus (Init.V) last. Pos is the index of the
// node the message is currently addressed to — the paper encodes the
// same information as the list1 ⊕ v ⊕ list2 split of the carried path.
// Reorient marks that the target edge has been processed (the "w,z ∉
// list2" state of Figure 2, line 10).
type RemoveMsg struct {
	Init     graph.Edge // Init.U = initiator (low ID), Init.V = terminus
	DegMax   int        // deg(T) frozen at decision time
	Target   graph.Edge // Target.U = w (the node whose degree drops), Target.V = z
	WDeg     int        // degree of w at decision time (target_remove check)
	Path     []int
	Pos      int
	Reorient bool
}

// Kind implements sim.Message.
func (RemoveMsg) Kind() string { return KindRemove }

// Size implements sim.Message: one word per path entry plus header,
// O(n log n) bits as in the paper's buffer-length analysis.
func (m RemoveMsg) Size() int { return len(m.Path) + 8 }

// BackMsg is the paper's Back message: ⟨Back, init_edge, path⟩. It
// retraces the already-traversed prefix of the cycle in reverse order
// (Figure 5b), re-parenting each node onto its predecessor, and finally
// re-attaches the detached segment through the initiating edge.
type BackMsg struct {
	Init graph.Edge
	Path []int // reversed prefix: Path[0] is the first node to re-parent
	Pos  int
}

// Kind implements sim.Message.
func (BackMsg) Kind() string { return KindBack }

// Size implements sim.Message.
func (m BackMsg) Size() int { return len(m.Path) + 4 }

// ReverseMsg is the paper's Reverse message (Figure 2, lines 23-24): it
// walks up the parent chain re-parenting every traversed node onto the
// message's sender until it reaches Target, reversing the chain's
// orientation. It is the messenger half of the Reverse_Aux handshake.
type ReverseMsg struct {
	Target int
}

// Kind implements sim.Message.
func (ReverseMsg) Kind() string { return KindReverse }

// Size implements sim.Message.
func (ReverseMsg) Size() int { return 1 }
