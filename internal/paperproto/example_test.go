package paperproto_test

import (
	"fmt"

	"mdst/internal/graph"
	"mdst/internal/paperproto"
	"mdst/internal/sim"
)

// Example runs the literal-choreography variant on a wheel graph from a
// clean start and prints the stabilized tree degree.
func Example() {
	g := graph.Wheel(10) // hub + 9-ring: Δ* = 2, naive trees reach degree 9
	net := paperproto.BuildNetwork(g, paperproto.DefaultConfig(g.N()), 1)
	net.Run(sim.RunConfig{
		Scheduler:     sim.NewSyncScheduler(),
		MaxRounds:     5000,
		QuiesceRounds: 2*g.N() + 40,
		ActiveKinds:   paperproto.ReductionKinds(),
	})
	leg := paperproto.CheckLegitimacy(g, paperproto.NodesOf(net))
	fmt.Println("legitimate:", leg.OK())
	fmt.Println("degree within Δ*+1:", leg.MaxDegree <= 3)
	// Output:
	// legitimate: true
	// degree within Δ*+1: true
}
