package paperproto

import (
	"fmt"
	"math/rand"

	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// Global-observer helpers, mirroring internal/core's: experiments and
// tests use them to decide legitimacy and extract the constructed tree.

// BuildNetwork wires a simulated network of literal-variant nodes over g.
func BuildNetwork(g *graph.Graph, cfg Config, seed int64) *sim.Network {
	return sim.NewNetwork(g, func(id sim.NodeID, nbrs []sim.NodeID) sim.Process {
		return NewNode(id, nbrs, cfg)
	}, seed)
}

// NodesOf extracts the protocol nodes from a network built by
// BuildNetwork.
func NodesOf(net *sim.Network) []*Node {
	out := make([]*Node, net.Graph().N())
	for i := range out {
		out[i] = net.Process(i).(*Node)
	}
	return out
}

// CorruptAll drives every node into an arbitrary configuration
// (Definition 1's worst case: no bound on the number of corrupted
// nodes).
func CorruptAll(net *sim.Network, rng *rand.Rand) {
	nodes := NodesOf(net)
	for _, nd := range nodes {
		nd.Corrupt(rng, len(nodes))
	}
}

// ExtractTree reconstructs the spanning tree from the nodes' parent
// pointers. It fails if the pointers do not form a single spanning tree
// rooted at a self-parented node.
func ExtractTree(g *graph.Graph, nodes []*Node) (*spanning.Tree, error) {
	root := -1
	parents := make([]int, g.N())
	for i, nd := range nodes {
		parents[i] = nd.Parent()
		if nd.Parent() == nd.ID() {
			if root != -1 {
				return nil, fmt.Errorf("paperproto: multiple roots (%d and %d)", root, i)
			}
			root = i
		}
	}
	if root == -1 {
		return nil, fmt.Errorf("paperproto: no root")
	}
	return spanning.NewFromParents(g, parents, root)
}

// AggregateStats sums the per-node protocol counters.
func AggregateStats(nodes []*Node) Stats {
	var total Stats
	for _, nd := range nodes {
		s := nd.NodeStats()
		total.SearchesLaunched += s.SearchesLaunched
		total.CyclesClassified += s.CyclesClassified
		total.RemovesStarted += s.RemovesStarted
		total.ReorientHops += s.ReorientHops
		total.BacksStarted += s.BacksStarted
		total.ExchangesComplete += s.ExchangesComplete
		total.ChoreoAborted += s.ChoreoAborted
		total.ReversesSent += s.ReversesSent
		total.DeblocksTriggered += s.DeblocksTriggered
		total.SearchesSuppressed += s.SearchesSuppressed
	}
	return total
}

// Legitimacy is the result of checking the global legitimacy predicate
// (DESIGN.md §5) on a configuration of this variant.
type Legitimacy struct {
	TreeValid   bool
	RootIsMin   bool
	DistancesOK bool
	ViewsOK     bool
	DmaxOK      bool
	FixedPoint  bool
	MaxDegree   int
	Detail      string
}

// OK reports whether every component of the predicate holds.
func (l Legitimacy) OK() bool {
	return l.TreeValid && l.RootIsMin && l.DistancesOK && l.ViewsOK &&
		l.DmaxOK && l.FixedPoint
}

// CheckLegitimacy evaluates the full legitimacy predicate on a
// configuration snapshot.
func CheckLegitimacy(g *graph.Graph, nodes []*Node) Legitimacy {
	var leg Legitimacy
	tree, err := ExtractTree(g, nodes)
	if err != nil {
		leg.Detail = err.Error()
		return leg
	}
	leg.TreeValid = true
	leg.MaxDegree = tree.MaxDegree()

	leg.RootIsMin = tree.Root() == 0
	for _, nd := range nodes {
		if nd.Root() != 0 {
			leg.RootIsMin = false
		}
	}

	leg.DistancesOK = true
	for i, nd := range nodes {
		if nd.Distance() != tree.Depth(i) {
			leg.DistancesOK = false
			leg.Detail = fmt.Sprintf("node %d distance %d, depth %d", i, nd.Distance(), tree.Depth(i))
			break
		}
	}

	leg.ViewsOK = true
viewCheck:
	for i, nd := range nodes {
		for _, u := range g.Neighbors(i) {
			v := nd.views.Get(u)
			o := nodes[u]
			if v.Root != o.root || v.Parent != o.parent || v.Distance != o.distance ||
				v.Dmax != o.dmax || v.Submax != o.submax || v.Color != o.color ||
				v.Deg != o.Deg() {
				leg.ViewsOK = false
				leg.Detail = fmt.Sprintf("node %d stale view of %d", i, u)
				break viewCheck
			}
		}
	}

	leg.DmaxOK = true
	color := nodes[0].Color()
	for _, nd := range nodes {
		if nd.Dmax() != leg.MaxDegree || nd.Color() != color {
			leg.DmaxOK = false
			break
		}
	}

	leg.FixedPoint = mdstseq.IsFixedPoint(tree)
	return leg
}
