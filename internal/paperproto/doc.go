// Package paperproto is the literal-choreography variant of the
// self-stabilizing minimum-degree spanning tree protocol (Blin,
// Gradinariu Potop-Butucaru, Rovedakis; IPDPS 2009).
//
// The primary implementation, internal/core, realizes the paper's edge
// exchange as an ordered chain of single-parent moves so that every
// intermediate configuration is a spanning tree (DESIGN.md substitution
// S3). This package instead keeps the paper's two-phase message
// choreography of Figures 1-2 on the wire:
//
//   - Improve sends a Remove message from the search terminus across the
//     initiating non-tree edge; the Remove is routed hop by hop along the
//     fundamental-cycle path it carries, mutating nothing until it
//     reaches the target edge (Figure 2, lines 3-14, the "w,z ∈ list2"
//     transit case).
//   - At the target edge, Reverse_Orientation (Figure 1, lines 31-43)
//     deletes the edge and corrects the orientation of the detached
//     segment, continuing with either the same Remove (Figure 5a) or a
//     Back message retracing the traversed prefix (Figure 5b). Each hop
//     of that second phase re-parents one node onto its successor on the
//     cycle; the final hop re-attaches the detached segment through the
//     initiating edge (the source_remove case).
//   - UpdateDist floods repair the distances of the reversed region
//     (Figure 2, lines 25-27), and Reverse (Figure 2, lines 23-24)
//     reverses a parent chain when a transit node finds the expected
//     tree edge already gone (the Reverse_Aux handshake).
//
// Because the removal happens at the target edge *before* the detached
// segment is re-attached, intermediate configurations are NOT spanning
// trees: the detached region is transiently parent-cycled or rootless
// exactly as in the paper, and the spanning-tree module (rules R1/R2)
// absorbs any choreography that aborts midway. That is the property this
// package exists to exercise; the differential tests in choreo_test.go
// check that both variants converge to legitimate configurations with
// deg(T) <= Δ*+1 and that this variant pays for its fidelity with extra
// repair churn (experiment E11).
//
// # Interpretation notes
//
// The paper's pseudo-code leaves the orientation bookkeeping of
// Reverse_Orientation under-determined (the roles of list1/list2 and the
// re-parent at the first target endpoint cannot all hold simultaneously
// for any consistent reading of path order; see DESIGN.md §3,
// interpretation I1). This implementation derives the case split from
// the actual tree state at the target edge, which is the only reading
// that realizes Figure 5(c)'s net effect:
//
//   - If the far endpoint of the target edge is the child (its parent
//     pointer crosses the target edge against the travel direction), the
//     detached segment lies ahead: continue with Remove (case a).
//   - If the near endpoint is the child, the detached segment is the
//     already-traversed prefix: send Back along the reversed prefix
//     (case b).
//   - Otherwise the target edge has already been removed by a concurrent
//     exchange and the message is discarded, the paper's staleness rule.
package paperproto
