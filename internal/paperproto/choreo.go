package paperproto

import (
	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/sim"
)

// Degree-reduction module, literal choreography (paper §3.2.4, Figures
// 1-2, 4, 5). See the package comment for the phase structure and the
// interpretation notes.

// actionOnCycle runs at the terminus x of a Search for the non-tree edge
// {y, x} once the token has collected the fundamental cycle. The
// classification is the paper's Action_on_Cycle, identical to the
// primary variant; only the reaction to an improvement differs (Improve
// sends a literal Remove across the init edge instead of starting an
// ordered re-parent chain).
func (n *Node) actionOnCycle(ctx *sim.Context, msg core.SearchMsg) {
	n.stats.CyclesClassified++
	path := msg.Path
	y := msg.Init.U
	vy := n.views.Get(y)
	if vy == nil {
		return
	}
	myDeg := n.Deg()
	endMax := myDeg
	if vy.Deg > endMax {
		endMax = vy.Deg
	}
	if msg.Block < 0 {
		dpath := 0
		for i := range path {
			if path[i].Deg > dpath {
				dpath = path[i].Deg
			}
		}
		if dpath != n.dmax {
			return // no maximum-degree node on this cycle
		}
		switch {
		case endMax < n.dmax-1:
			// Improving edge (Eq. 1): min-ID interior node of maximum
			// degree; the target edge is its successor edge on the cycle.
			wi := -1
			for i := 1; i < len(path); i++ {
				if path[i].Deg == dpath && (wi == -1 || path[i].Node < path[wi].Node) {
					wi = i
				}
			}
			if wi > 0 {
				n.improve(ctx, msg, wi)
			}
		case endMax == n.dmax-1:
			n.triggerDeblock(ctx, y, myDeg, vy.Deg)
		}
		return
	}

	// Deblock search: the cycle must pass through the blocked node.
	b := msg.Block
	if b == n.id || b == y {
		return
	}
	bi := -1
	for i := range path {
		if path[i].Node == b {
			bi = i
			break
		}
	}
	if bi <= 0 {
		return
	}
	if path[bi].Deg != n.dmax-1 {
		return // no longer a blocking node: stale
	}
	switch {
	case endMax < n.dmax-1:
		if n.cfg.DeblockTieBreak {
			zIsSelf := bi+1 == len(path)
			if !zIsSelf && myDeg == n.dmax-2 && n.id > b {
				return
			}
			if vy.Deg == n.dmax-2 && y > b {
				return
			}
		}
		n.improve(ctx, msg, bi)
	case endMax == n.dmax-1 && msg.TTL > 0:
		n.triggerDeblockTTL(ctx, y, myDeg, vy.Deg, msg.TTL-1)
	}
}

// improve is the paper's Improve(y, deg, e, path): it freezes the
// decision context into a Remove message and sends it to the head of the
// path — the initiator y, reached across the initiating non-tree edge.
// The cycle order carried by the message is [y, n1, .., nk, x].
func (n *Node) improve(ctx *sim.Context, msg core.SearchMsg, wi int) {
	path := msg.Path
	ids := make([]int, 0, len(path)+1)
	for i := range path {
		ids = append(ids, path[i].Node)
	}
	ids = append(ids, n.id)
	w := path[wi].Node
	z := ids[wi+1] // successor on the cycle (x itself when wi is last)
	n.stats.RemovesStarted++
	ctx.Send(msg.Init.U, RemoveMsg{
		Init:   msg.Init,
		DegMax: n.dmax,
		Target: graph.Edge{U: w, V: z},
		WDeg:   path[wi].Deg,
		Path:   ids,
		Pos:    0,
	})
}

// handleRemove processes one hop of a Remove message (Figure 2, lines
// 3-14, including the closing "send InfoMsg to all" of line 14).
func (n *Node) handleRemove(ctx *sim.Context, from int, msg RemoveMsg) {
	if msg.Pos < 0 || msg.Pos >= len(msg.Path) || msg.Path[msg.Pos] != n.id {
		n.stats.ChoreoAborted++
		return
	}
	defer n.sendInfo(ctx)
	if msg.Reorient {
		n.reorientHop(ctx, from, msg)
		return
	}
	// Routing phase: the paper freezes reduction handling while the
	// neighborhood is unstable; the message is simply dropped (the
	// periodic search retries).
	if !n.locallyStabilized() || n.dmax != msg.DegMax {
		n.stats.ChoreoAborted++
		return
	}
	if n.id == msg.Target.U {
		n.reverseOrientation(ctx, from, msg)
		return
	}
	if msg.Pos+1 >= len(msg.Path) {
		n.stats.ChoreoAborted++
		return // the target was not on the remaining path: malformed
	}
	// Transit: forward toward the target edge, mutating nothing — even
	// across an edge deleted by a concurrent exchange ("carries on as if
	// the deleted edge would be still alive").
	msg.Pos++
	ctx.Send(msg.Path[msg.Pos], msg)
}

// reverseOrientation is the paper's Reverse_Orientation (Figure 1, lines
// 31-43) at the target node w: it performs the removal and decides,
// from the orientation of the tree at the target edge, whether the
// reorientation of the detached segment continues forward with the same
// Remove (Figure 5a) or retraces the prefix with a Back (Figure 5b).
func (n *Node) reverseOrientation(ctx *sim.Context, from int, msg RemoveMsg) {
	wi := msg.Pos
	z := msg.Target.V
	if wi < 1 || wi+1 >= len(msg.Path) || msg.Path[wi+1] != z {
		n.stats.ChoreoAborted++
		return
	}
	// target_remove: the degree and status of the target must match the
	// decision context, otherwise the Remove is discarded (Lemma 3,
	// case 2: a concurrent improvement already happened).
	if n.Deg() != msg.WDeg || n.dmax != msg.DegMax || !n.isTreeEdge(z) {
		n.stats.ChoreoAborted++
		return
	}
	pred := msg.Path[wi-1]
	switch {
	case n.parent == pred:
		// Figure 5a: the segment ahead (z..x) is the detached side; w
		// leaves its parent (removing edge {pred, w}) and joins the
		// reversed chain. The Remove continues forward.
		vz := n.views.Get(z)
		n.parent = z
		n.distance = vz.Distance + 1
		n.color = !n.color
		n.version++
		n.stats.ReorientHops++
		if n.audit != nil {
			n.audit(core.MutationExchange, pred, z)
		}
		msg.Pos++
		msg.Reorient = true
		ctx.Send(z, msg)
	case n.parent == z:
		// Figure 5b: the traversed prefix (y..w) is the detached side; w
		// leaves z (removing the target edge {w, z}) and re-parents onto
		// its predecessor; a Back retraces the prefix in reverse.
		vp := n.views.Get(pred)
		n.parent = pred
		n.distance = vp.Distance + 1
		n.color = !n.color
		n.version++
		n.stats.BacksStarted++
		if n.audit != nil {
			n.audit(core.MutationExchange, z, pred)
		}
		rev := make([]int, 0, wi)
		for i := wi - 1; i >= 0; i-- {
			rev = append(rev, msg.Path[i])
		}
		ctx.Send(pred, BackMsg{Init: msg.Init, Path: rev, Pos: 0})
	case !n.pathNeighborIsParent(pred, z):
		// w is the apex of the cycle (its parent is off-path): the target
		// edge {w, z} is removed by z's own reorientation hop; w itself
		// keeps its parent (interpretation I1 in the package comment).
		n.color = !n.color
		n.version++
		msg.Pos++
		msg.Reorient = true
		ctx.Send(z, msg)
	default:
		n.stats.ChoreoAborted++
	}
}

// pathNeighborIsParent reports whether either path neighbor of the
// target node is its parent (false exactly in the apex case).
func (n *Node) pathNeighborIsParent(pred, z int) bool {
	return n.parent == pred || n.parent == z
}

// reorientHop applies one hop of the forward reorientation (the "w,z ∉
// list2" state of Figure 2, lines 10-13): the node leaves its old parent
// (the sender) and re-parents onto its successor on the cycle; the final
// hop is the source_remove attachment through the initiating edge.
func (n *Node) reorientHop(ctx *sim.Context, from int, msg RemoveMsg) {
	if n.parent != from {
		// The expected tree edge to the sender is gone: the tree changed
		// under the exchange. The paper performs the Reverse_Aux
		// handshake here; this implementation aborts and lets the
		// spanning-tree module repair the partial exchange
		// (interpretation I2).
		n.stats.ChoreoAborted++
		return
	}
	if n.id == msg.Init.V { // source_remove: re-attach through the init edge
		y := msg.Init.U
		if n.isTreeEdge(y) {
			n.stats.ChoreoAborted++
			return
		}
		vy := n.views.Get(y)
		n.parent = y
		n.distance = vy.Distance + 1
		n.version++
		n.stats.ExchangesComplete++
		if n.audit != nil {
			n.audit(core.MutationExchange, from, y)
		}
		n.floodDist(ctx, -1)
		return
	}
	if msg.Pos+1 >= len(msg.Path) {
		n.stats.ChoreoAborted++
		return
	}
	next := msg.Path[msg.Pos+1]
	vn := n.views.Get(next)
	n.parent = next
	n.distance = vn.Distance + 1
	n.version++
	n.stats.ReorientHops++
	if n.audit != nil {
		n.audit(core.MutationExchange, from, next)
	}
	msg.Pos++
	ctx.Send(next, msg)
}

// handleBack applies one hop of the backward reorientation (Figure 2,
// lines 15-21): each prefix node re-parents onto its predecessor on the
// cycle; the initiator finally re-attaches through the initiating edge
// (the paper's line 17 with the endpoint corrected to the far endpoint,
// see the package comment).
func (n *Node) handleBack(ctx *sim.Context, from int, msg BackMsg) {
	if msg.Pos < 0 || msg.Pos >= len(msg.Path) || msg.Path[msg.Pos] != n.id {
		n.stats.ChoreoAborted++
		return
	}
	defer n.sendInfo(ctx) // Figure 2, line 21
	if n.parent != from {
		n.stats.ChoreoAborted++ // Reverse_Aux situation: abort (I2)
		return
	}
	if n.id == msg.Init.U { // source attach: re-parent onto the terminus
		x := msg.Init.V
		if n.isTreeEdge(x) {
			n.stats.ChoreoAborted++
			return
		}
		vx := n.views.Get(x)
		n.parent = x
		n.distance = vx.Distance + 1
		n.version++
		n.stats.ExchangesComplete++
		if n.audit != nil {
			n.audit(core.MutationExchange, from, x)
		}
		n.floodDist(ctx, -1)
		return
	}
	if msg.Pos+1 >= len(msg.Path) {
		n.stats.ChoreoAborted++
		return
	}
	next := msg.Path[msg.Pos+1]
	vn := n.views.Get(next)
	n.parent = next
	n.distance = vn.Distance + 1
	n.version++
	n.stats.ReorientHops++
	if n.audit != nil {
		n.audit(core.MutationExchange, from, next)
	}
	msg.Pos++
	ctx.Send(next, msg)
}

// handleReverseMsg is the paper's Reverse handler, literal (Figure 2,
// lines 23-24): forward up the old parent chain, then adopt the sender
// as the new parent — reversing the chain's orientation hop by hop until
// Target is reached.
func (n *Node) handleReverseMsg(ctx *sim.Context, from int, msg ReverseMsg) {
	if msg.Target != n.id && n.parent != n.id && n.parent != from {
		ctx.Send(n.parent, ReverseMsg{Target: msg.Target})
		n.stats.ReversesSent++
	}
	if v := n.views.Get(from); v != nil {
		if n.parent != from || n.distance != v.Distance+1 {
			old := n.parent
			n.parent = from
			n.distance = v.Distance + 1
			n.version++
			if n.audit != nil && old != from {
				n.audit(core.MutationExchange, old, from)
			}
		}
	}
}

// triggerDeblock starts a deblock for whichever endpoint of the init
// edge blocks the improvement, with a fresh TTL.
func (n *Node) triggerDeblock(ctx *sim.Context, y, myDeg, yDeg int) {
	n.triggerDeblockTTL(ctx, y, myDeg, yDeg, n.cfg.DeblockTTL)
}

// triggerDeblockTTL is the paper's Deblock(y, s): the higher-degree
// endpoint becomes the blocked node; ties trigger both.
func (n *Node) triggerDeblockTTL(ctx *sim.Context, y, myDeg, yDeg, ttl int) {
	if ttl <= 0 {
		return
	}
	if myDeg >= yDeg {
		n.broadcastDeblock(ctx, n.id, ttl, -1)
	}
	if yDeg >= myDeg {
		ctx.Send(y, core.DeblockMsg{Block: y, TTL: ttl})
	}
}

// broadcastDeblock floods a Deblock through the blocked node's subtree
// and launches the local deblock searches (the paper's Broadcast +
// Cycle_Search(idblock)).
func (n *Node) broadcastDeblock(ctx *sim.Context, block, ttl, except int) {
	if last, ok := n.lastDeblock[block]; ok && n.tick-last < n.cfg.SearchPeriod {
		return
	}
	n.lastDeblock[block] = n.tick
	n.stats.DeblocksTriggered++
	for _, u := range n.nbrs {
		if u == except || !n.isTreeEdge(u) {
			continue
		}
		if v := n.views.Get(u); v.Parent == n.id {
			ctx.Send(u, core.DeblockMsg{Block: block, TTL: ttl})
		}
	}
	for _, u := range n.nbrs {
		if !n.isTreeEdge(u) {
			n.startSearch(ctx, u, block, ttl)
		}
	}
}

// handleDeblock processes a Deblock received from a neighbor.
func (n *Node) handleDeblock(ctx *sim.Context, from int, msg core.DeblockMsg) {
	if !n.locallyStabilized() || msg.TTL <= 0 {
		return
	}
	n.broadcastDeblock(ctx, msg.Block, msg.TTL, from)
}

// floodDist sends UpdateDist to every tree child except `except`,
// repairing the distances of the reversed region (Figure 2, lines
// 25-27).
func (n *Node) floodDist(ctx *sim.Context, except int) {
	for _, u := range n.nbrs {
		if u == except {
			continue
		}
		if v := n.views.Get(u); v.Parent == n.id {
			ctx.Send(u, core.UpdateDistMsg{Dist: n.distance})
		}
	}
}

// handleUpdateDist repairs this node's distance from its parent's
// announcement and propagates downward on change. Announcements beyond
// the distance bound are dropped so a flood circulating in a transient
// parent cycle dies out instead of livelocking the repair (see the
// matching guard in internal/core).
func (n *Node) handleUpdateDist(ctx *sim.Context, from int, msg core.UpdateDistMsg) {
	if from != n.parent {
		return
	}
	if msg.Dist+1 > n.cfg.MaxDist {
		return
	}
	if n.distance == msg.Dist+1 {
		return
	}
	n.distance = msg.Dist + 1
	n.version++
	for _, u := range n.nbrs {
		if v := n.views.Get(u); v.Parent == n.id {
			ctx.Send(u, core.UpdateDistMsg{Dist: n.distance})
		}
	}
}
