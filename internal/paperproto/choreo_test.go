package paperproto

import (
	"testing"

	"mdst/internal/graph"
	"mdst/internal/sim"
)

// Figure 5 replay for the literal choreography: the Remove continuation
// (a), the Back retrace (b), and the apex case (interpretation I1),
// driven end-to-end through real messages with ticks suppressed.

// caseAFixture builds: ring 0-1-2-3-4 plus pendant {2,5}; tree is the
// chain 0-1-2-3-4 with 5 under 2, so deg(2) = 3 = dmax and the cycle of
// the non-tree edge {0,4} is 0-1-2-3-4. The target node w = 2 has its
// path predecessor as parent: Figure 5(a).
func caseAFixture(t *testing.T) (*graph.Graph, *sim.Network) {
	t.Helper()
	g := graph.New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(0, 4)
	g.MustAddEdge(2, 5)
	net := BuildNetwork(g, DefaultConfig(6), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 2}, {4, 3}, {5, 2}})
	loadTree(g, net, tree)
	return g, net
}

func TestChoreoCaseARemoveContinuation(t *testing.T) {
	g, net := caseAFixture(t)
	nodes := NodesOf(net)

	nodes[0].startSearch(net.Context(0), 4, -1, 0)
	drain(net, 10000)

	got, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasTreeEdge(0, 4) || got.HasTreeEdge(1, 2) {
		t.Fatalf("expected swap {0,4} in / {1,2} out; edges=%v", got.Edges())
	}
	if d := got.Degree(2); d != 2 {
		t.Fatalf("node 2 degree %d, want 2", d)
	}
	// Reorientation: the segment w..x flipped toward the init edge.
	if got.Parent(2) != 3 || got.Parent(3) != 4 || got.Parent(4) != 0 {
		t.Fatalf("orientation wrong: p(2)=%d p(3)=%d p(4)=%d",
			got.Parent(2), got.Parent(3), got.Parent(4))
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	st := AggregateStats(nodes)
	if st.ExchangesComplete != 1 || st.BacksStarted != 0 {
		t.Fatalf("stats: %+v (want one completed exchange via Remove)", st)
	}
	// The color flip at the removal site (Figure 2, line 5).
	if !nodes[2].Color() {
		t.Fatal("node 2 did not flip its color at the removal")
	}
}

// caseBFixture builds: cycle 1-2-3-4 with chord edge {1,4} non-tree,
// pendant 0 on 4 carrying the root, pendants 5 and 6 on 2 so that
// deg(2) = 4 = dmax. The tree is rooted at 0 through 4, so the target
// node w = 2 has its path successor as parent: Figure 5(b).
func caseBFixture(t *testing.T) (*graph.Graph, *sim.Network) {
	t.Helper()
	g := graph.New(7)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(1, 4)
	g.MustAddEdge(0, 4)
	g.MustAddEdge(2, 5)
	g.MustAddEdge(2, 6)
	net := BuildNetwork(g, DefaultConfig(7), 1)
	tree := chainTree(t, g, [][2]int{{4, 0}, {3, 4}, {2, 3}, {1, 2}, {5, 2}, {6, 2}})
	loadTree(g, net, tree)
	return g, net
}

func TestChoreoCaseBBackRetrace(t *testing.T) {
	g, net := caseBFixture(t)
	nodes := NodesOf(net)

	nodes[1].startSearch(net.Context(1), 4, -1, 0)
	drain(net, 10000)

	got, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasTreeEdge(1, 4) || got.HasTreeEdge(2, 3) {
		t.Fatalf("expected swap {1,4} in / {2,3} out; edges=%v", got.Edges())
	}
	if d := got.Degree(2); d != 3 {
		t.Fatalf("node 2 degree %d, want 3", d)
	}
	// The prefix retrace: w re-parented onto its predecessor, the
	// initiator onto the terminus.
	if got.Parent(2) != 1 || got.Parent(1) != 4 {
		t.Fatalf("orientation wrong: p(2)=%d p(1)=%d", got.Parent(2), got.Parent(1))
	}
	st := AggregateStats(nodes)
	if st.BacksStarted != 1 || st.ExchangesComplete != 1 {
		t.Fatalf("stats: %+v (want one completed exchange via Back)", st)
	}
	if !nodes[2].Color() {
		t.Fatal("node 2 did not flip its color at the removal")
	}
}

// apexFixture builds a 5-cycle 1-2-3-4-5 with the root 0 hanging off 2
// and a pendant 6 on 2, so w = 2 is the apex of the fundamental cycle of
// {1,5}: its parent (0) is off the cycle.
func apexFixture(t *testing.T) (*graph.Graph, *sim.Network) {
	t.Helper()
	g := graph.New(7)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	g.MustAddEdge(1, 5)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(2, 6)
	net := BuildNetwork(g, DefaultConfig(7), 1)
	tree := chainTree(t, g, [][2]int{{2, 0}, {1, 2}, {3, 2}, {4, 3}, {5, 4}, {6, 2}})
	loadTree(g, net, tree)
	return g, net
}

func TestChoreoApexCase(t *testing.T) {
	g, net := apexFixture(t)
	nodes := NodesOf(net)

	nodes[1].startSearch(net.Context(1), 5, -1, 0)
	drain(net, 10000)

	got, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasTreeEdge(1, 5) || got.HasTreeEdge(2, 3) {
		t.Fatalf("expected swap {1,5} in / {2,3} out; edges=%v", got.Edges())
	}
	if d := got.Degree(2); d != 3 {
		t.Fatalf("node 2 degree %d, want 3", d)
	}
	// The apex keeps its parent; the detached segment flipped.
	if got.Parent(2) != 0 || got.Parent(3) != 4 || got.Parent(4) != 5 || got.Parent(5) != 1 {
		t.Fatalf("orientation wrong: p(2)=%d p(3)=%d p(4)=%d p(5)=%d",
			got.Parent(2), got.Parent(3), got.Parent(4), got.Parent(5))
	}
}

// A Remove whose decision context went stale (the target's degree
// changed) must be discarded at the target, leaving the tree unchanged.
func TestChoreoStaleTargetDegreeAborts(t *testing.T) {
	g, net := caseAFixture(t)
	nodes := NodesOf(net)

	msg := RemoveMsg{
		Init:   graph.Edge{U: 0, V: 4},
		DegMax: 3,
		Target: graph.Edge{U: 2, V: 3},
		WDeg:   2, // stale: node 2 actually has tree degree 3
		Path:   []int{0, 1, 2, 3, 4},
		Pos:    2,
	}
	before, _ := ExtractTree(g, nodes)
	nodes[2].handleRemove(net.Context(2), 1, msg)
	drain(net, 1000)
	after, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if before.Parent(v) != after.Parent(v) {
			t.Fatalf("tree changed despite stale Remove: parent(%d) %d -> %d",
				v, before.Parent(v), after.Parent(v))
		}
	}
	if st := nodes[2].NodeStats(); st.ChoreoAborted != 1 {
		t.Fatalf("aborts = %d, want 1", st.ChoreoAborted)
	}
}

// A reorientation hop arriving at a node that already re-parented away
// from the sender aborts without touching the node.
func TestChoreoReorientParentMismatchAborts(t *testing.T) {
	g, net := caseAFixture(t)
	nodes := NodesOf(net)

	msg := RemoveMsg{
		Init:     graph.Edge{U: 0, V: 4},
		DegMax:   3,
		Target:   graph.Edge{U: 2, V: 3},
		WDeg:     3,
		Path:     []int{0, 1, 2, 3, 4},
		Pos:      3,
		Reorient: true,
	}
	// Node 3's parent is 2, but the hop claims to come from 1.
	nodes[3].handleRemove(net.Context(3), 1, msg)
	if nodes[3].Parent() != 2 {
		t.Fatalf("node 3 re-parented to %d on a mismatched hop", nodes[3].Parent())
	}
	if st := nodes[3].NodeStats(); st.ChoreoAborted != 1 {
		t.Fatalf("aborts = %d, want 1", st.ChoreoAborted)
	}
	_ = g
}

// The routing phase forwards across a concurrently deleted edge ("as if
// the deleted edge would be still alive") and the exchange still
// completes when the target context is intact.
func TestChoreoRoutingSurvivesDeletedEdge(t *testing.T) {
	g, net := caseAFixture(t)
	nodes := NodesOf(net)

	// Route a Remove through node 1 whose path edge {1,2} has "already
	// been deleted": flip node 1's view so {1,2} is not a tree edge from
	// its perspective (parent(2)=3 already applied elsewhere).
	nodes[1].SetView(2, View{Root: 0, Parent: 3, Distance: 2, Dmax: 3, Submax: 3, Deg: 3})
	msg := RemoveMsg{
		Init:   graph.Edge{U: 0, V: 4},
		DegMax: 3,
		Target: graph.Edge{U: 2, V: 3},
		WDeg:   3,
		Path:   []int{0, 1, 2, 3, 4},
		Pos:    1,
	}
	nodes[1].handleRemove(net.Context(1), 0, msg)
	drain(net, 10000)
	got, err := ExtractTree(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasTreeEdge(0, 4) || got.HasTreeEdge(1, 2) {
		t.Fatalf("exchange did not complete: edges=%v", got.Edges())
	}
}

// The literal Reverse handler (Figure 2, lines 23-24): walking up a
// chain re-parents every node onto the message sender.
func TestReverseHandlerFlipsChain(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3, tree = the path itself
	net := BuildNetwork(g, DefaultConfig(4), 1)
	tree := chainTree(t, g, [][2]int{{1, 0}, {2, 1}, {3, 2}})
	loadTree(g, net, tree)
	nodes := NodesOf(net)

	// Node 3 wants the chain up to node 1 reversed: send Reverse
	// targeting 1 to its parent 2.
	net.Context(3).Send(2, ReverseMsg{Target: 1})
	drain(net, 100)

	// 2 forwarded to its old parent 1 and adopted 3; 1 is the target so
	// it only adopts 2.
	if nodes[2].Parent() != 3 || nodes[1].Parent() != 2 {
		t.Fatalf("chain not reversed: p(2)=%d p(1)=%d", nodes[2].Parent(), nodes[1].Parent())
	}
	st := AggregateStats(nodes)
	if st.ReversesSent != 1 {
		t.Fatalf("ReversesSent = %d, want 1 (2 forwarding to 1)", st.ReversesSent)
	}
}

// Search guard: tokens are dropped while the neighborhood is not locally
// stabilized (the paper's freeze).
func TestSearchGuardDropsWhenNotStabilized(t *testing.T) {
	g := graph.Ring(4)
	net := BuildNetwork(g, DefaultConfig(4), 1)
	preload(t, g, net)
	nodes := NodesOf(net)
	nodes[2].SetView(1, View{Root: 0, Parent: 0, Dmax: 9})
	msg := sim.Message(nil)
	_ = msg
	before := nodes[2].NodeStats().CyclesClassified
	nodes[2].handleSearch(net.Context(2), 1, searchToken(t))
	if nodes[2].NodeStats().CyclesClassified != before {
		t.Fatal("token processed despite destabilized neighborhood")
	}
}

// searchToken builds a minimal token addressed at node 2 of a 4-ring.
func searchToken(t *testing.T) (m coreSearch) {
	t.Helper()
	m.Init = graph.Edge{U: 1, V: 2}
	m.Block = -1
	m.Path = []corePathEntry{{Node: 1, Deg: 2, Parent: 0, Cursor: 2}}
	return m
}
