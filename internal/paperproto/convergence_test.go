package paperproto

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// Property: from a fully corrupted configuration on a random connected
// graph, the literal variant converges to a legitimate configuration
// whose tree degree is at most Δ*+1 — Theorem 2 plus Definition 1
// convergence for the second implementation of the protocol.
func TestQuickConvergenceWithinOneOfOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("long protocol property test")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(8)
		g := graph.RandomGnp(n, 0.25+rng.Float64()*0.3, rng)
		net := BuildNetwork(g, DefaultConfig(n), seed)
		CorruptAll(net, rng)
		res := runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
		if !res.Converged {
			t.Logf("seed %d: no quiescence", seed)
			return false
		}
		leg := CheckLegitimacy(g, NodesOf(net))
		if !leg.OK() {
			t.Logf("seed %d: legitimacy %+v", seed, leg)
			return false
		}
		star, ok := mdstseq.ExactDelta(g, 0)
		if !ok {
			return true
		}
		if leg.MaxDegree > star+1 {
			t.Logf("seed %d: degree %d > Δ*+1 = %d", seed, leg.MaxDegree, star+1)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Differential property: on the same instance, the primary (S3 chain)
// and the literal variants both converge within the Theorem 2 bound.
// Their final trees may differ (the exchanges commit in different
// orders) but both are Fürer–Raghavachari fixed points.
func TestQuickDifferentialVsCore(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential property test")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		g := graph.RandomGnp(n, 0.3+rng.Float64()*0.2, rng)

		litNet := BuildNetwork(g, DefaultConfig(n), seed)
		CorruptAll(litNet, rand.New(rand.NewSource(seed)))
		litRes := runToQuiescence(litNet, g, sim.NewSyncScheduler(), 0)

		coreNet := core.BuildNetwork(g, core.DefaultConfig(n), seed)
		coreRng := rand.New(rand.NewSource(seed))
		for _, nd := range core.NodesOf(coreNet) {
			nd.Corrupt(coreRng, n)
		}
		coreRes := coreNet.Run(sim.RunConfig{
			Scheduler:     sim.NewSyncScheduler(),
			MaxRounds:     200*n + 20000,
			QuiesceRounds: 2*n + 40,
			ActiveKinds:   core.ReductionKinds(),
		})

		if !litRes.Converged || !coreRes.Converged {
			t.Logf("seed %d: converged lit=%v core=%v", seed, litRes.Converged, coreRes.Converged)
			return false
		}
		litLeg := CheckLegitimacy(g, NodesOf(litNet))
		coreLeg := core.CheckLegitimacy(g, core.NodesOf(coreNet))
		if !litLeg.OK() || !coreLeg.OK() {
			t.Logf("seed %d: legit lit=%+v core=%+v", seed, litLeg, coreLeg)
			return false
		}
		star, ok := mdstseq.ExactDelta(g, 0)
		if !ok {
			return true
		}
		if litLeg.MaxDegree > star+1 || coreLeg.MaxDegree > star+1 {
			t.Logf("seed %d: degrees lit=%d core=%d Δ*+1=%d",
				seed, litLeg.MaxDegree, coreLeg.MaxDegree, star+1)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The variant converges under the random-asynchronous and adversarial
// schedulers too (the paper's model is fully asynchronous).
func TestConvergenceUnderAsyncSchedulers(t *testing.T) {
	scheds := map[string]func() sim.Scheduler{
		"async":       func() sim.Scheduler { return sim.NewAsyncScheduler() },
		"adversarial": func() sim.Scheduler { return sim.NewAdversarialScheduler() },
	}
	for name, mk := range scheds {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 8 + rng.Intn(5)
				g := graph.RandomGnp(n, 0.35, rng)
				net := BuildNetwork(g, DefaultConfig(n), seed)
				CorruptAll(net, rng)
				res := runToQuiescence(net, g, mk(), 0)
				if !res.Converged {
					t.Fatalf("seed %d: no quiescence in %d rounds", seed, res.Rounds)
				}
				leg := CheckLegitimacy(g, NodesOf(net))
				if !leg.OK() {
					t.Fatalf("seed %d: not legitimate: %+v", seed, leg)
				}
			}
		})
	}
}

// Closure: from a legitimate configuration the tree degree never grows.
// Unlike the S3 chain variant — whose closure test asserts a valid
// spanning tree at *every* round — the literal choreography may
// transiently break the tree while a blocking-node exchange is mid
// flight (that is precisely what this variant exists to exercise); the
// degree bound must hold for every valid configuration, breakage must
// be transient, and the run must end in a valid tree of degree <= k.
func TestClosureFromLegitimateConfiguration(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGnp(14, 0.3, rng)
		net := BuildNetwork(g, DefaultConfig(14), seed)
		start := preload(t, g, net)
		k := start.MaxDegree()
		broken, total := 0, 0
		net.Run(sim.RunConfig{
			Scheduler: sim.NewSyncScheduler(),
			MaxRounds: 400,
			OnRound: func(r int) bool {
				total++
				tree, err := ExtractTree(g, NodesOf(net))
				if err != nil {
					broken++
					return true
				}
				if tree.MaxDegree() > k {
					t.Fatalf("seed %d round %d: degree %d exceeded initial %d",
						seed, r, tree.MaxDegree(), k)
				}
				return true
			},
		})
		if broken > total/4 {
			t.Fatalf("seed %d: tree broken in %d/%d rounds — not transient", seed, broken, total)
		}
		leg := CheckLegitimacy(g, NodesOf(net))
		if !leg.TreeValid || !leg.RootIsMin {
			t.Fatalf("seed %d: closure violated: %+v", seed, leg)
		}
		tree, _ := ExtractTree(g, NodesOf(net))
		if tree.MaxDegree() > k {
			t.Fatalf("seed %d: final degree %d exceeds initial fixed point %d",
				seed, tree.MaxDegree(), k)
		}
	}
}

// Transient breakage is allowed mid-exchange but must always heal: the
// run ends with a single valid spanning tree.
func TestQuickTreeBreakageHeals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		g := graph.RandomGnp(n, 0.35, rng)
		net := BuildNetwork(g, DefaultConfig(n), seed)
		tree := spanning.BFSTree(g, 0)
		loadTree(g, net, tree)
		broken := 0
		// Budget: colliding concurrent exchanges can oscillate for
		// thousands of rounds on small dense instances before the
		// jittered retries separate — still within the paper's own
		// O(m n^2 log n) bound, which for n=8, m=17 already exceeds
		// 3000 rounds. 800n covers the worst observed seed with margin.
		net.Run(sim.RunConfig{
			Scheduler: sim.NewSyncScheduler(),
			MaxRounds: 800 * n,
			OnRound: func(r int) bool {
				if _, err := ExtractTree(g, NodesOf(net)); err != nil {
					broken++
				}
				return true
			},
		})
		if _, err := ExtractTree(g, NodesOf(net)); err != nil {
			t.Logf("seed %d: tree still broken at end (%d broken rounds): %v", seed, broken, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: identical seeds give identical executions.
func TestDeterministicExecution(t *testing.T) {
	g := graph.Grid(4, 4)
	run := func() (uint64, int64) {
		net := BuildNetwork(g, DefaultConfig(16), 77)
		CorruptAll(net, rand.New(rand.NewSource(99)))
		runToQuiescence(net, g, sim.NewAsyncScheduler(), 3000)
		return net.Fingerprint(), net.Metrics().Events
	}
	f1, e1 := run()
	f2, e2 := run()
	if f1 != f2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", f1, e1, f2, e2)
	}
}

// Fault recovery: corrupt a subset of nodes in a stabilized network and
// verify re-convergence (Definition 1 applied mid-run).
func TestRecoveryFromPartialCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomGeometric(20, 0.45, rng)
	net := BuildNetwork(g, DefaultConfig(20), 7)
	res := runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
	if !res.Converged {
		t.Fatal("initial convergence failed")
	}
	nodes := NodesOf(net)
	for _, v := range []int{3, 9, 14} {
		nodes[v].Corrupt(rng, 20)
	}
	res = runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
	if !res.Converged {
		t.Fatal("no re-convergence after corruption")
	}
	leg := CheckLegitimacy(g, nodes)
	if !leg.OK() {
		t.Fatalf("not legitimate after recovery: %+v", leg)
	}
}

// Fault injection in the middle of a running exchange: corruptions
// landing while Remove/Back messages are in flight must not prevent
// re-convergence (the choreography's staleness checks abort against
// corrupted parents and the periodic search retries).
func TestCorruptionMidChoreography(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(6)
		g := graph.RandomGnp(n, 0.4, rng)
		net := BuildNetwork(g, DefaultConfig(n), seed)
		CorruptAll(net, rng)
		hits := 0
		net.Run(sim.RunConfig{
			Scheduler: sim.NewSyncScheduler(),
			MaxRounds: 60 * n,
			OnRound: func(r int) bool {
				// Whenever choreography traffic is in flight, corrupt a
				// random node (at most 3 times per run).
				if hits < 3 && (net.PendingKind(KindRemove) > 0 || net.PendingKind(KindBack) > 0) {
					NodesOf(net)[rng.Intn(n)].Corrupt(rng, n)
					hits++
				}
				return true
			},
		})
		res := runToQuiescence(net, g, sim.NewSyncScheduler(), 0)
		if !res.Converged {
			t.Fatalf("seed %d: no quiescence after %d mid-exchange corruptions", seed, hits)
		}
		leg := CheckLegitimacy(g, NodesOf(net))
		if !leg.OK() {
			t.Fatalf("seed %d: not legitimate after mid-exchange faults: %+v", seed, leg)
		}
	}
}
