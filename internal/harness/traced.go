package harness

import (
	"math/rand"

	"mdst/internal/core"
	"mdst/internal/sim"
	"mdst/internal/trace"
)

// RunTraced is Run plus a per-round time series: at every `every`-th
// round it records the tree state, degree information and traffic — the
// figure data behind experiments E2 and E5. every <= 0 samples every
// round.
//
// Columns: round, treeDeg (-1 while no valid spanning tree exists),
// roots (number of self-parented nodes), dmaxAgree (nodes whose dmax
// equals the true tree degree), pending (undelivered messages),
// reversals (cumulative Reverse messages sent).
//
// Per-round sampling only exists on the deterministic simulator, so
// RunTraced always executes there; a spec naming another backend is a
// programmer error and panics (it must not silently run a different
// experiment than it claims).
func RunTraced(spec RunSpec, every int) (Result, *trace.Series) {
	if spec.backend() != BackendSim {
		panic("harness: RunTraced requires the sim backend")
	}
	if every <= 0 {
		every = 1
	}
	g := spec.Graph
	n := g.N()
	cfg := spec.Config
	if cfg.MaxDist == 0 {
		cfg = core.DefaultConfig(n)
	}
	if spec.Suppress {
		cfg.SuppressSearches = true
	}
	net := core.BuildNetwork(g, cfg, spec.Seed)
	nodes := core.NodesOf(net)
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))

	switch spec.Start {
	case StartCorrupt:
		for _, nd := range nodes {
			nd.Corrupt(rng, n)
		}
	case StartLegitimate:
		if err := Preload(g, nodes, cfg); err != nil {
			return Result{Legit: core.Legitimacy{Detail: err.Error()}}, nil
		}
		perm := rng.Perm(n)
		for i := 0; i < spec.CorruptNodes && i < n; i++ {
			nodes[perm[i]].Corrupt(rng, n)
		}
	}

	series := trace.NewSeries("run",
		"round", "treeDeg", "roots", "dmaxAgree", "pending", "reversals")
	sample := func(round int) {
		treeDeg := -1.0
		agree := 0.0
		if tree, err := core.ExtractTree(g, nodes); err == nil {
			treeDeg = float64(tree.MaxDegree())
			for _, nd := range nodes {
				if nd.Dmax() == tree.MaxDegree() {
					agree++
				}
			}
		}
		roots := 0.0
		for _, nd := range nodes {
			if nd.Parent() == nd.ID() {
				roots++
			}
		}
		series.Append(float64(round), treeDeg, roots, agree,
			float64(net.Pending()),
			float64(net.Metrics().SentByKind[core.KindReverse]))
	}
	sample(0)

	maxRounds := spec.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200*n + 20000
	}
	res := net.Run(sim.RunConfig{
		Scheduler:     NewScheduler(spec.Scheduler),
		MaxRounds:     maxRounds,
		QuiesceRounds: QuiesceWindowRounds(n, cfg.EffectiveRetryPeriod()),
		ActiveKinds:   core.ReductionKinds(),
		OnRound: func(r int) bool {
			if (r+1)%every == 0 {
				sample(r + 1)
			}
			return true
		},
	})

	out := Result{
		Backend:      BackendSim,
		Converged:    res.Converged,
		Rounds:       res.Rounds,
		LastChange:   res.LastChangeRound,
		Legit:        core.CheckLegitimacy(g, nodes),
		Metrics:      net.Metrics(),
		MaxStateBits: net.MaxStateBits(),
	}
	for _, c := range out.Metrics.SentByKind {
		out.TotalMessages += c
	}
	if t, err := core.ExtractTree(g, nodes); err == nil {
		out.Tree = t
	}
	return out, series
}
