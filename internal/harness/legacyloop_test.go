package harness

import (
	"math/rand"
	"testing"

	"mdst/internal/graph"
	"mdst/internal/sim"
)

// Differential guard for the Run-loop refactor (the quiesceTracker
// extraction): an inline replica of the pre-refactor per-round loop —
// scheduler round, fingerprint compare, stability counter, active-kind
// drain — must agree with the refactored sim.Network.Run on the derived
// round counter, the last-change round and every per-round fingerprint.
// Three families × two seeds, the same coverage the committed matrix
// baseline locks at the byte level.
func TestRunMatchesLegacyLoopReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	graphs := map[string]*graph.Graph{
		"wheel": graph.Wheel(12),
		"grid":  graph.Grid(4, 5),
		"gnp":   graph.RandomGnp(14, 0.3, rng),
	}
	for name, g := range graphs {
		for seed := int64(1); seed <= 2; seed++ {
			spec := RunSpec{Graph: g, Scheduler: SchedSync, Start: StartCorrupt, Seed: seed}
			ops := variantFor(spec)
			window := QuiesceWindowRounds(g.N(), ops.cfg.EffectiveRetryPeriod())
			maxRounds := 200*g.N() + 20000

			// Refactored path: Network.Run, recording per-round prints.
			netA := sim.NewNetwork(g, ops.factory, spec.Seed)
			if _, _, ok := buildInitial(spec, ops, netA.Process); !ok {
				t.Fatalf("%s seed %d: buildInitial failed", name, seed)
			}
			var fpsA []uint64
			resA := netA.Run(sim.RunConfig{
				Scheduler:     NewScheduler(spec.Scheduler),
				MaxRounds:     maxRounds,
				QuiesceRounds: window,
				ActiveKinds:   ops.kinds,
				OnRound: func(int) bool {
					fpsA = append(fpsA, netA.LastFingerprint())
					return true
				},
			})

			// Inline replica of the legacy loop over the same spec/seed.
			netB := sim.NewNetwork(g, ops.factory, spec.Seed)
			if _, _, ok := buildInitial(spec, ops, netB.Process); !ok {
				t.Fatalf("%s seed %d: buildInitial failed", name, seed)
			}
			sched := NewScheduler(spec.Scheduler)
			netB.InvalidateFingerprints()
			lastFP := netB.Fingerprint()
			var fpsB []uint64
			rounds, lastChange, stable := 0, 0, 0
			converged := false
			for r := 0; r < maxRounds; r++ {
				sched.RunRound(netB)
				rounds++
				fp := netB.Fingerprint()
				if fp != lastFP {
					lastFP = fp
					stable = 0
					lastChange = rounds
				} else {
					stable++
				}
				drained := true
				for _, k := range ops.kinds {
					if netB.PendingKind(k) > 0 {
						drained = false
						break
					}
				}
				if window > 0 && stable >= window && drained {
					converged = true
					break
				}
				fpsB = append(fpsB, fp)
			}

			if resA.Converged != converged || resA.Rounds != rounds ||
				resA.LastChangeRound != lastChange {
				t.Fatalf("%s seed %d: refactored (conv=%v rounds=%d last=%d) vs replica (conv=%v rounds=%d last=%d)",
					name, seed, resA.Converged, resA.Rounds, resA.LastChangeRound,
					converged, rounds, lastChange)
			}
			if len(fpsA) != len(fpsB) {
				t.Fatalf("%s seed %d: %d vs %d per-round fingerprints",
					name, seed, len(fpsA), len(fpsB))
			}
			for i := range fpsA {
				if fpsA[i] != fpsB[i] {
					t.Fatalf("%s seed %d: round %d fingerprint %#x vs %#x",
						name, seed, i+1, fpsA[i], fpsB[i])
				}
			}
		}
	}
}
