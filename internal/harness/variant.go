package harness

import (
	"math/rand"

	"mdst/internal/auditlog"
	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/paperproto"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// variantOps is the per-protocol-implementation surface the backend
// drivers execute against. Every backend (deterministic simulator, live
// goroutine runtime, TCP cluster) constructs processes through factory
// and then manipulates them only through these closures, so run
// orchestration is written once for both internal/core and
// internal/paperproto instead of per-variant (the old harness.Run /
// runLiteral duplication).
type variantOps struct {
	cfg     core.Config
	factory func(id sim.NodeID, nbrs []sim.NodeID) sim.Process
	corrupt func(procs []sim.Process, id int, rng *rand.Rand, idSpace int)
	preload func(g *graph.Graph, procs []sim.Process) error
	// preloadPath writes the canonical Hamiltonian-path configuration
	// (StartPath); it fails on graphs without the canonical path edges.
	preloadPath func(g *graph.Graph, procs []sim.Process) error
	legit       func(g *graph.Graph, procs []sim.Process) core.Legitimacy
	tree        func(g *graph.Graph, procs []sim.Process) (*spanning.Tree, error)
	stats       func(procs []sim.Process) statsAgg
	// degrees returns each node's current tree degree (Deg()); the
	// metrics sampler's degree histogram. Sim backend only — node state
	// may not be inspected while a wall-clock backend is running.
	degrees func(procs []sim.Process) []int
	// attachAudit installs the mutation hooks that feed the run's audit
	// recorder (RunSpec.Audit); called after the initial configuration is
	// written, so only run-time mutations are chained.
	attachAudit func(procs []sim.Process, rec *auditlog.Recorder)
	kinds       []string // reduction message kinds that must drain at quiescence
}

// statsAgg is the cross-variant aggregate of the per-node protocol
// event counters the drivers report (each variant maps its own Stats
// fields onto it).
type statsAgg struct {
	Exchanges  int // completed edge exchanges
	Aborts     int // staleness-aborted choreography hops
	Suppressed int // suppression-module drops
	Deblocks   int // Deblock floods started or forwarded
}

// auditKindOf maps the protocol layer's mutation kinds onto the audit
// log's chained kinds (explicit so a renumbering on either side fails
// tests instead of silently changing committed chain heads).
func auditKindOf(k core.MutationKind) auditlog.Kind {
	switch k {
	case core.MutationParent:
		return auditlog.KindParentChange
	case core.MutationReset:
		return auditlog.KindReset
	default:
		return auditlog.KindExchange
	}
}

// auditHook binds one node's mutation stream to the recorder.
func auditHook(rec *auditlog.Recorder, id int) core.MutationHook {
	h := rec.Hook(id)
	return func(k core.MutationKind, old, new int) { h(auditKindOf(k), old, new) }
}

// variantFor resolves the spec's protocol variant to its operation set,
// defaulting the configuration exactly as the per-variant runners did
// (zero Config means the variant's DefaultConfig).
func variantFor(spec RunSpec) variantOps {
	n := spec.Graph.N()
	cfg := spec.Config
	if spec.Variant == VariantLiteral {
		if cfg.MaxDist == 0 {
			cfg = paperproto.DefaultConfig(n)
		}
		if spec.Suppress {
			cfg.SuppressSearches = true
		}
		if spec.Backoff {
			cfg.SuppressSearches = true
			cfg.BackoffSearches = true
		}
		return literalOps(cfg)
	}
	if cfg.MaxDist == 0 {
		cfg = core.DefaultConfig(n)
	}
	if spec.Suppress {
		cfg.SuppressSearches = true
	}
	if spec.Backoff {
		cfg.SuppressSearches = true
		cfg.BackoffSearches = true
	}
	return coreOps(cfg)
}

func coreNodes(procs []sim.Process) []*core.Node {
	out := make([]*core.Node, len(procs))
	for i, p := range procs {
		out[i] = p.(*core.Node)
	}
	return out
}

func coreOps(cfg core.Config) variantOps {
	return variantOps{
		cfg: cfg,
		factory: func(id sim.NodeID, nbrs []sim.NodeID) sim.Process {
			return core.NewNode(id, nbrs, cfg)
		},
		corrupt: func(procs []sim.Process, id int, rng *rand.Rand, idSpace int) {
			procs[id].(*core.Node).Corrupt(rng, idSpace)
		},
		preload: func(g *graph.Graph, procs []sim.Process) error {
			return Preload(g, coreNodes(procs), cfg)
		},
		preloadPath: func(g *graph.Graph, procs []sim.Process) error {
			tree, err := PathTree(g)
			if err != nil {
				return err
			}
			return PreloadFromTree(g, coreNodes(procs), cfg, tree)
		},
		legit: func(g *graph.Graph, procs []sim.Process) core.Legitimacy {
			return core.CheckLegitimacy(g, coreNodes(procs))
		},
		tree: func(g *graph.Graph, procs []sim.Process) (*spanning.Tree, error) {
			return core.ExtractTree(g, coreNodes(procs))
		},
		stats: func(procs []sim.Process) statsAgg {
			st := core.AggregateStats(coreNodes(procs))
			return statsAgg{
				Exchanges:  st.ExchangesComplete,
				Aborts:     st.ChainsAborted,
				Suppressed: st.SearchesSuppressed,
				Deblocks:   st.DeblocksTriggered,
			}
		},
		degrees: func(procs []sim.Process) []int {
			out := make([]int, len(procs))
			for i, p := range procs {
				out[i] = p.(*core.Node).Deg()
			}
			return out
		},
		attachAudit: func(procs []sim.Process, rec *auditlog.Recorder) {
			for i, p := range procs {
				p.(*core.Node).SetMutationHook(auditHook(rec, i))
			}
		},
		kinds: core.ReductionKinds(),
	}
}

func literalNodes(procs []sim.Process) []*paperproto.Node {
	out := make([]*paperproto.Node, len(procs))
	for i, p := range procs {
		out[i] = p.(*paperproto.Node)
	}
	return out
}

func literalOps(cfg core.Config) variantOps {
	return variantOps{
		cfg: cfg,
		factory: func(id sim.NodeID, nbrs []sim.NodeID) sim.Process {
			return paperproto.NewNode(id, nbrs, cfg)
		},
		corrupt: func(procs []sim.Process, id int, rng *rand.Rand, idSpace int) {
			procs[id].(*paperproto.Node).Corrupt(rng, idSpace)
		},
		preload: func(g *graph.Graph, procs []sim.Process) error {
			return PreloadLiteral(g, literalNodes(procs), cfg)
		},
		preloadPath: func(g *graph.Graph, procs []sim.Process) error {
			tree, err := PathTree(g)
			if err != nil {
				return err
			}
			return PreloadLiteralFromTree(g, literalNodes(procs), cfg, tree)
		},
		legit: func(g *graph.Graph, procs []sim.Process) core.Legitimacy {
			leg := paperproto.CheckLegitimacy(g, literalNodes(procs))
			// Report in the core Legitimacy shape so experiment tables can
			// compare the two implementations side by side (ablation E11).
			return core.Legitimacy{
				TreeValid:   leg.TreeValid,
				RootIsMin:   leg.RootIsMin,
				DistancesOK: leg.DistancesOK,
				ViewsOK:     leg.ViewsOK,
				DmaxOK:      leg.DmaxOK,
				FixedPoint:  leg.FixedPoint,
				MaxDegree:   leg.MaxDegree,
				Detail:      leg.Detail,
			}
		},
		tree: func(g *graph.Graph, procs []sim.Process) (*spanning.Tree, error) {
			return paperproto.ExtractTree(g, literalNodes(procs))
		},
		stats: func(procs []sim.Process) statsAgg {
			st := paperproto.AggregateStats(literalNodes(procs))
			return statsAgg{
				Exchanges:  st.ExchangesComplete,
				Aborts:     st.ChoreoAborted,
				Suppressed: st.SearchesSuppressed,
				Deblocks:   st.DeblocksTriggered,
			}
		},
		degrees: func(procs []sim.Process) []int {
			out := make([]int, len(procs))
			for i, p := range procs {
				out[i] = p.(*paperproto.Node).Deg()
			}
			return out
		},
		attachAudit: func(procs []sim.Process, rec *auditlog.Recorder) {
			for i, p := range procs {
				p.(*paperproto.Node).SetMutationHook(auditHook(rec, i))
			}
		},
		kinds: paperproto.ReductionKinds(),
	}
}

// buildInitial collects a backend's processes and writes the spec's
// initial configuration into them. Keeping the corruption-RNG derivation
// (seed^0x5eed) and the initStart call in one place is what guarantees
// every backend draws identical initial configurations for the same
// spec. The bool is initStart's preload-failure contract.
func buildInitial(spec RunSpec, ops variantOps, procAt func(sim.NodeID) sim.Process) ([]sim.Process, Result, bool) {
	procs := make([]sim.Process, spec.Graph.N())
	for i := range procs {
		procs[i] = procAt(i)
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))
	res, ok := initStart(spec, ops, procs, rng)
	return procs, res, ok
}

// initStart writes the spec's initial configuration into the processes:
// nothing for a clean start, per-node randomization for a corrupt one,
// and a pre-loaded configuration (plus targeted/random corruptions) for
// StartLegitimate (the Fürer–Raghavachari tree) and StartPath (the
// canonical Hamiltonian path). rng must be the run's corruption RNG
// (seed^0x5eed) so
// every backend draws the identical initial configuration for the same
// spec. The bool is false when the preload failed; the Result carries
// the detail (same contract as the pre-refactor runners: a preload
// failure is a reported illegitimacy, not an execution error).
func initStart(spec RunSpec, ops variantOps, procs []sim.Process, rng *rand.Rand) (Result, bool) {
	n := spec.Graph.N()
	switch spec.Start {
	case StartCorrupt:
		for id := range procs {
			ops.corrupt(procs, id, rng, n)
		}
	case StartLegitimate, StartPath:
		load := ops.preload
		if spec.Start == StartPath {
			load = ops.preloadPath
		}
		if err := load(spec.Graph, procs); err != nil {
			return Result{Backend: spec.backend(), Legit: core.Legitimacy{Detail: err.Error()}}, false
		}
		for _, v := range spec.CorruptTargets {
			if v >= 0 && v < n {
				ops.corrupt(procs, v, rng, n)
			}
		}
		perm := rng.Perm(n)
		for i := 0; i < spec.CorruptNodes && i < n; i++ {
			ops.corrupt(procs, perm[i], rng, n)
		}
	}
	return Result{}, true
}
