package harness

import (
	"math/rand"
	"testing"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/sim"
)

// stabilize builds and preloads a legitimate network over g.
func stabilize(t *testing.T, g *graph.Graph, cfg core.Config, seed int64) *sim.Network {
	t.Helper()
	net := core.BuildNetwork(g, cfg, seed)
	if err := Preload(g, core.NodesOf(net), cfg); err != nil {
		t.Fatal(err)
	}
	return net
}

func rerun(net *sim.Network, g *graph.Graph) sim.RunResult {
	return net.Run(sim.RunConfig{
		Scheduler:     sim.NewSyncScheduler(),
		MaxRounds:     200*g.N() + 20000,
		QuiesceRounds: 2*g.N() + 40,
		ActiveKinds:   core.ReductionKinds(),
	})
}

func TestMigrateCarriesState(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomGnp(12, 0.35, rng)
	cfg := core.DefaultConfig(12)
	net := stabilize(t, g, cfg, 1)
	// Identity migration: same graph, state must be carried verbatim and
	// remain legitimate.
	newNet, err := Migrate(net, g.Clone(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, old := range core.NodesOf(net) {
		nd := core.NodesOf(newNet)[i]
		if nd.Root() != old.Root() || nd.Parent() != old.Parent() ||
			nd.Distance() != old.Distance() || nd.Dmax() != old.Dmax() {
			t.Fatalf("node %d state not carried", i)
		}
	}
	if leg := core.CheckLegitimacy(g, core.NodesOf(newNet)); !leg.OK() {
		t.Fatalf("identity migration lost legitimacy: %+v", leg)
	}
}

func TestMigrateRejectsDifferentNodeCount(t *testing.T) {
	g := graph.Ring(6)
	cfg := core.DefaultConfig(6)
	net := stabilize(t, g, cfg, 1)
	if _, err := Migrate(net, graph.Ring(7), cfg, 2); err == nil {
		t.Fatal("node-count change accepted")
	}
}

func TestChurnRemoveTreeEdgeHeals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomGnp(14, 0.4, rng)
	cfg := core.DefaultConfig(14)
	net := stabilize(t, g, cfg, 3)
	tree, err := core.ExtractTree(g, core.NodesOf(net))
	if err != nil {
		t.Fatal(err)
	}
	newG, removed, ok := ApplyChurn(g, tree, OpRemoveTreeEdge, rng)
	if !ok {
		t.Skip("no removable non-bridge tree edge on this instance")
	}
	if newG.HasEdge(removed.U, removed.V) {
		t.Fatal("edge not removed")
	}
	newNet, err := Migrate(net, newG, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := rerun(newNet, newG)
	if !res.Converged {
		t.Fatal("no re-convergence after tree-edge removal")
	}
	if leg := core.CheckLegitimacy(newG, core.NodesOf(newNet)); !leg.OK() {
		t.Fatalf("not legitimate on new topology: %+v", leg)
	}
}

func TestChurnRemoveNonTreeEdgeCheap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomGnp(14, 0.4, rng)
	cfg := core.DefaultConfig(14)
	net := stabilize(t, g, cfg, 5)
	tree, err := core.ExtractTree(g, core.NodesOf(net))
	if err != nil {
		t.Fatal(err)
	}
	newG, _, ok := ApplyChurn(g, tree, OpRemoveNonTreeEdge, rng)
	if !ok {
		t.Skip("no removable non-tree edge")
	}
	newNet, err := Migrate(net, newG, cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	res := rerun(newNet, newG)
	if !res.Converged {
		t.Fatal("no convergence")
	}
	// Removing a non-tree edge leaves the tree intact: the tree edges
	// must be unchanged (the fixed point may differ, but the carried tree
	// remains a valid spanning tree of the new graph).
	if leg := core.CheckLegitimacy(newG, core.NodesOf(newNet)); !leg.TreeValid {
		t.Fatalf("tree broken by non-tree-edge removal: %+v", leg)
	}
}

func TestChurnAddEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Ring(10) // sparse: plenty of room to add
	cfg := core.DefaultConfig(10)
	net := stabilize(t, g, cfg, 7)
	tree, err := core.ExtractTree(g, core.NodesOf(net))
	if err != nil {
		t.Fatal(err)
	}
	newG, added, ok := ApplyChurn(g, tree, OpAddEdge, rng)
	if !ok {
		t.Fatal("could not add an edge to a ring")
	}
	if !newG.HasEdge(added.U, added.V) {
		t.Fatal("edge not added")
	}
	newNet, err := Migrate(net, newG, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := rerun(newNet, newG)
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if leg := core.CheckLegitimacy(newG, core.NodesOf(newNet)); !leg.OK() {
		t.Fatalf("not legitimate after edge addition: %+v", leg)
	}
}

func TestApplyChurnNoCandidates(t *testing.T) {
	// A tree graph has no non-tree edges and every edge is a bridge.
	g := graph.Path(5)
	cfg := core.DefaultConfig(5)
	net := stabilize(t, g, cfg, 9)
	tree, err := core.ExtractTree(g, core.NodesOf(net))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	if _, _, ok := ApplyChurn(g, tree, OpRemoveTreeEdge, rng); ok {
		t.Fatal("bridge removal offered")
	}
	if _, _, ok := ApplyChurn(g, tree, OpRemoveNonTreeEdge, rng); ok {
		t.Fatal("nonexistent non-tree edge offered")
	}
	if _, _, ok := ApplyChurn(g, tree, ChurnOp("bogus"), rng); ok {
		t.Fatal("unknown op accepted")
	}
}
