package harness

import (
	"fmt"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/sim"
)

// Dynamic-topology support (the paper's §6 open problem): a topology
// change is modeled as the same processes continuing on a modified
// graph, carrying over all volatile state. The resulting configuration
// is an arbitrary (generally incoherent) state of the NEW network — a
// node whose parent edge vanished sees an incoherent parent and rule R2
// heals it; views of new neighbors start stale and refresh via gossip.
// Measuring re-stabilization from such states is the super-stabilization
// probe of experiment E10.

// Migrate builds a network over newG whose node states are copied from
// the processes of oldNet (built over a graph with the same node set).
// Views toward surviving neighbors carry over; views toward new
// neighbors start at the zero value. Messages in flight are dropped
// (links were torn down).
func Migrate(oldNet *sim.Network, newG *graph.Graph, cfg core.Config, seed int64) (*sim.Network, error) {
	oldG := oldNet.Graph()
	if oldG.N() != newG.N() {
		return nil, fmt.Errorf("harness: migrate changed node count %d -> %d", oldG.N(), newG.N())
	}
	oldNodes := core.NodesOf(oldNet)
	newNet := core.BuildNetwork(newG, cfg, seed)
	newNodes := core.NodesOf(newNet)
	for i, old := range oldNodes {
		nd := newNodes[i]
		nd.SetState(old.Root(), old.Parent(), old.Distance(),
			old.Dmax(), old.Submax(), old.Color())
		for _, u := range newG.Neighbors(i) {
			if v, ok := old.ViewOf(u); ok {
				nd.SetView(u, v)
			}
		}
	}
	return newNet, nil
}

// ChurnOp names a topology change for the churn experiment.
type ChurnOp string

// Churn operations.
const (
	OpRemoveTreeEdge    ChurnOp = "remove-tree-edge"
	OpRemoveNonTreeEdge ChurnOp = "remove-nontree-edge"
	OpAddEdge           ChurnOp = "add-edge"
)

// ChurnOps returns the operations in display order.
func ChurnOps() []ChurnOp {
	return []ChurnOp{OpRemoveNonTreeEdge, OpRemoveTreeEdge, OpAddEdge}
}

// ApplyChurn returns a modified copy of g according to op, using the
// current tree to classify edges. Removals preserve connectivity (the
// paper's model requires a connected network); if no applicable edge
// exists, ok is false.
func ApplyChurn(g *graph.Graph, tree interface {
	HasTreeEdge(u, v int) bool
}, op ChurnOp, rng interface{ Intn(int) int }) (*graph.Graph, graph.Edge, bool) {
	edges := g.Edges()
	switch op {
	case OpRemoveTreeEdge, OpRemoveNonTreeEdge:
		wantTree := op == OpRemoveTreeEdge
		// Collect candidates whose removal keeps the graph connected.
		var cands []graph.Edge
		for _, e := range edges {
			if tree.HasTreeEdge(e.U, e.V) != wantTree {
				continue
			}
			if !g.IsBridge(e.U, e.V) {
				cands = append(cands, e)
			}
		}
		if len(cands) == 0 {
			return nil, graph.Edge{}, false
		}
		e := cands[rng.Intn(len(cands))]
		h := g.Clone()
		h.RemoveEdge(e.U, e.V)
		return h, e, true
	case OpAddEdge:
		n := g.N()
		for attempt := 0; attempt < 10*n; attempt++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				h := g.Clone()
				h.MustAddEdge(u, v)
				return h, graph.Edge{U: u, V: v}.Normalize(), true
			}
		}
		return nil, graph.Edge{}, false
	}
	return nil, graph.Edge{}, false
}
