package harness

import (
	"fmt"

	"mdst/internal/sim"
)

// Engine selects which execution core of the sim backend drives a run.
// Both cores execute the same protocol processes under the same round
// semantics; they differ in how a round is produced.
type Engine string

// Simulator engines.
const (
	// EngineCompat is the per-round full-sweep loop (sim.Network.Run with
	// a Scheduler): every node ticks every round. It is the default and
	// the engine every committed deterministic baseline was generated
	// with — its delivery/tick order is regression-locked byte for byte.
	EngineCompat Engine = "compat"
	// EngineEvent is the discrete-event core (sim.Network.RunEvents):
	// pending deliveries and node timers live in a calendar queue, idle
	// nodes park (sim.EventProcess), and rounds without work are skipped
	// outright — per-round cost tracks the active frontier, which is what
	// makes n=16384 runs tractable. Reaches the same legitimacy predicate
	// and Δ*+1 bracket as compat (differential-tested) but not the same
	// byte-level schedule.
	EngineEvent Engine = "event"
)

// Engines returns the simulator engines in display order.
func Engines() []Engine { return []Engine{EngineCompat, EngineEvent} }

// ParseEngine resolves an engine name (compat|event); the empty string
// is the compat default.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", string(EngineCompat):
		return EngineCompat, nil
	case string(EngineEvent):
		return EngineEvent, nil
	}
	return "", fmt.Errorf("harness: unknown engine %q (want compat|event)", s)
}

// EventPolicyFor maps a scheduler kind onto the event core's intra-round
// ordering policy (used by every event-engine execution path, including
// the scenario churn executor's re-stabilization run).
func EventPolicyFor(kind SchedulerKind) sim.EventPolicy {
	switch kind {
	case SchedAsync:
		return sim.EventPolicyAsync
	case SchedAdversarial:
		return sim.EventPolicyAdversarial
	default:
		return sim.EventPolicySync
	}
}
