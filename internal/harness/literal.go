package harness

import (
	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/paperproto"
	"mdst/internal/spanning"
)

// The literal-choreography variant (internal/paperproto) executes
// through the same orchestration as the primary implementation — see
// variantOps in variant.go; only its preload helper lives here.

// PreloadLiteral writes a legitimate configuration into literal-variant
// nodes (the counterpart of Preload).
func PreloadLiteral(g *graph.Graph, nodes []*paperproto.Node, cfg core.Config) error {
	tree, err := PreloadTree(g)
	if err != nil {
		return err
	}
	return PreloadLiteralFromTree(g, nodes, cfg, tree)
}

// PreloadLiteralFromTree is PreloadFromTree for literal-variant nodes:
// it writes the legitimate configuration induced by the given spanning
// tree (used by the StartPath preload).
func PreloadLiteralFromTree(g *graph.Graph, nodes []*paperproto.Node, cfg core.Config, tree *spanning.Tree) error {
	k := tree.MaxDegree()
	deg := tree.Degrees()
	submax := make([]int, g.N())
	order := depthOrder(tree)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		submax[v] = deg[v]
		for _, c := range tree.Children(v) {
			if submax[c] > submax[v] {
				submax[v] = submax[c]
			}
		}
	}
	for i, nd := range nodes {
		nd.SetState(0, tree.Parent(i), tree.Depth(i), k, submax[i], false)
	}
	for i, nd := range nodes {
		for _, u := range g.Neighbors(i) {
			nd.SetView(u, paperproto.View{
				Root:     0,
				Parent:   tree.Parent(u),
				Distance: tree.Depth(u),
				Dmax:     k,
				Submax:   submax[u],
				Deg:      deg[u],
				Color:    false,
			})
		}
	}
	return nil
}
