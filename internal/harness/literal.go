package harness

import (
	"math/rand"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/paperproto"
	"mdst/internal/sim"
)

// runLiteral executes one run of the literal-choreography variant
// (internal/paperproto) with the same spec semantics as the primary
// implementation; results are reported in the same Result shape so
// experiment tables can compare the two side by side (ablation E11).
func runLiteral(spec RunSpec) Result {
	g := spec.Graph
	n := g.N()
	cfg := spec.Config
	if cfg.MaxDist == 0 {
		cfg = paperproto.DefaultConfig(n)
	}
	net := paperproto.BuildNetwork(g, cfg, spec.Seed)
	if spec.DropRate > 0 {
		net.SetDropRate(spec.DropRate)
	}
	nodes := paperproto.NodesOf(net)
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))

	switch spec.Start {
	case StartCorrupt:
		for _, nd := range nodes {
			nd.Corrupt(rng, n)
		}
	case StartLegitimate:
		if err := PreloadLiteral(g, nodes, cfg); err != nil {
			return Result{Legit: core.Legitimacy{Detail: err.Error()}}
		}
		for _, v := range spec.CorruptTargets {
			if v >= 0 && v < n {
				nodes[v].Corrupt(rng, n)
			}
		}
		perm := rng.Perm(n)
		for i := 0; i < spec.CorruptNodes && i < n; i++ {
			nodes[perm[i]].Corrupt(rng, n)
		}
	}

	maxRounds := spec.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200*n + 20000
	}
	broken := 0
	var onRound func(int) bool
	if spec.TrackSafety {
		formed := false
		onRound = func(int) bool {
			if _, err := paperproto.ExtractTree(g, nodes); err != nil {
				if formed {
					broken++
				}
			} else {
				formed = true
			}
			return true
		}
	}
	res := net.Run(sim.RunConfig{
		Scheduler:     NewScheduler(spec.Scheduler),
		MaxRounds:     maxRounds,
		QuiesceRounds: 2*n + 40 + 2*cfg.SearchPeriod,
		ActiveKinds:   paperproto.ReductionKinds(),
		OnRound:       onRound,
	})

	leg := paperproto.CheckLegitimacy(g, nodes)
	out := Result{
		Converged:  res.Converged,
		Rounds:     res.Rounds,
		LastChange: res.LastChangeRound,
		Legit: core.Legitimacy{
			TreeValid:   leg.TreeValid,
			RootIsMin:   leg.RootIsMin,
			DistancesOK: leg.DistancesOK,
			ViewsOK:     leg.ViewsOK,
			DmaxOK:      leg.DmaxOK,
			FixedPoint:  leg.FixedPoint,
			MaxDegree:   leg.MaxDegree,
			Detail:      leg.Detail,
		},
		Metrics:      net.Metrics(),
		MaxStateBits: net.MaxStateBits(),
		BrokenRounds: broken,
		Dropped:      net.Dropped(),
	}
	st := paperproto.AggregateStats(nodes)
	out.Exchanges = st.ExchangesComplete
	out.Aborts = st.ChoreoAborted
	for _, c := range out.Metrics.SentByKind {
		out.TotalMessages += c
	}
	if t, err := paperproto.ExtractTree(g, nodes); err == nil {
		out.Tree = t
	}
	return out
}

// PreloadLiteral writes a legitimate configuration into literal-variant
// nodes (the counterpart of Preload).
func PreloadLiteral(g *graph.Graph, nodes []*paperproto.Node, cfg core.Config) error {
	tree, err := PreloadTree(g)
	if err != nil {
		return err
	}
	k := tree.MaxDegree()
	deg := tree.Degrees()
	submax := make([]int, g.N())
	order := depthOrder(tree)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		submax[v] = deg[v]
		for _, c := range tree.Children(v) {
			if submax[c] > submax[v] {
				submax[v] = submax[c]
			}
		}
	}
	for i, nd := range nodes {
		nd.SetState(0, tree.Parent(i), tree.Depth(i), k, submax[i], false)
	}
	for i, nd := range nodes {
		for _, u := range g.Neighbors(i) {
			nd.SetView(u, paperproto.View{
				Root:     0,
				Parent:   tree.Parent(u),
				Distance: tree.Depth(u),
				Dmax:     k,
				Submax:   submax[u],
				Deg:      deg[u],
				Color:    false,
			})
		}
	}
	return nil
}
