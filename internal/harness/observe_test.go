package harness

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mdst/internal/auditlog"
	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/metrics"
	"mdst/internal/paperproto"
)

// --- Audit chain ---------------------------------------------------------

// TestAuditChainGenesisCrossBackend: a run started from the preloaded
// legitimate configuration mutates nothing — self-stabilization's
// closure property — so every backend's chain head must equal the
// genesis value, byte for byte. This is the cross-backend differential
// claim in its sharpest form: three completely different execution
// drivers (deterministic rounds, goroutine CSP, loopback TCP) observing
// the same seeded run agree on the audit chain.
func TestAuditChainGenesisCrossBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock backends under -short")
	}
	g := graph.Wheel(8)
	const seed = 7
	want := auditlog.Genesis(seed, g.N())
	for _, backend := range Backends() {
		res, err := Run(RunSpec{
			Graph:   g,
			Start:   StartLegitimate,
			Seed:    seed,
			Backend: backend,
			Audit:   true,
			Tuning:  smokeTuning(t),
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if !res.Legit.OK() {
			t.Fatalf("%s: legitimate start did not stay legitimate: %+v", backend, res.Legit)
		}
		if res.AuditRecords != 0 {
			t.Errorf("%s: %d mutations recorded from a legitimate start", backend, res.AuditRecords)
		}
		if res.AuditChain != want {
			t.Errorf("%s: chain head %016x, want genesis %016x", backend, res.AuditChain, want)
		}
	}
}

// TestAuditChainSimDeterministic: two observers of the same seeded sim
// run — here literally two executions — must produce byte-identical,
// non-trivial chain heads, for both protocol variants.
func TestAuditChainSimDeterministic(t *testing.T) {
	for _, variant := range []Variant{VariantCore, VariantLiteral} {
		g := graph.RandomGnp(16, 0.3, rand.New(rand.NewSource(3)))
		run := func() Result {
			return MustRun(RunSpec{
				Graph:   g,
				Start:   StartCorrupt,
				Seed:    3,
				Variant: variant,
				Audit:   true,
			})
		}
		a, b := run(), run()
		if !a.Converged || !b.Converged {
			t.Fatalf("%s: corrupt runs did not converge", variant)
		}
		if a.AuditRecords == 0 {
			t.Fatalf("%s: corrupt start produced no audited mutations", variant)
		}
		if a.AuditChain == auditlog.Genesis(3, g.N()) {
			t.Fatalf("%s: non-empty chain head equals genesis", variant)
		}
		if a.AuditChain != b.AuditChain || a.AuditRecords != b.AuditRecords {
			t.Fatalf("%s: audit chain not deterministic: %016x/%d vs %016x/%d",
				variant, a.AuditChain, a.AuditRecords, b.AuditChain, b.AuditRecords)
		}
	}
}

// TestAuditChainSeedSensitive: different seeds draw different corruption
// patterns, so their mutation chains (and genesis blocks) must diverge.
func TestAuditChainSeedSensitive(t *testing.T) {
	g := graph.Wheel(10)
	head := func(seed int64) uint64 {
		return MustRun(RunSpec{
			Graph: g, Start: StartCorrupt, Seed: seed, Audit: true,
		}).AuditChain
	}
	if head(1) == head(2) {
		t.Fatal("seeds 1 and 2 produced identical chain heads")
	}
}

// TestAuditOffIsZeroCost: with Audit unset no recorder exists and the
// result reports a zero head — and the run's deterministic figures are
// byte-identical to an audited run of the same spec (hooks observe,
// never steer).
func TestAuditOffIsZeroCost(t *testing.T) {
	g := graph.RandomGnp(14, 0.35, rand.New(rand.NewSource(5)))
	spec := RunSpec{Graph: g, Start: StartCorrupt, Seed: 5}
	plain := MustRun(spec)
	spec.Audit = true
	audited := MustRun(spec)
	if plain.AuditChain != 0 || plain.AuditRecords != 0 {
		t.Fatalf("audit fields set without Audit: %016x/%d", plain.AuditChain, plain.AuditRecords)
	}
	if plain.Rounds != audited.Rounds || plain.TotalMessages != audited.TotalMessages ||
		plain.Exchanges != audited.Exchanges {
		t.Fatalf("audit hooks perturbed the run: rounds %d vs %d, messages %d vs %d",
			plain.Rounds, audited.Rounds, plain.TotalMessages, audited.TotalMessages)
	}
	if audited.AuditRecords == 0 {
		t.Fatal("audited corrupt run chained no mutations")
	}
}

// --- Metrics stream ------------------------------------------------------

// TestMetricsStreamConvergedRun: a converged sim run's stream ends with
// the quiesced state — complete version-vector fill, zero deficit — and
// carries live traffic/degree data throughout.
func TestMetricsStreamConvergedRun(t *testing.T) {
	g := graph.RandomGnp(16, 0.3, rand.New(rand.NewSource(2)))
	coll := &metrics.Collector{}
	res := MustRun(RunSpec{
		Graph: g, Start: StartCorrupt, Seed: 2, Collect: coll,
	})
	if !res.Converged {
		t.Fatal("run did not converge")
	}
	if coll.Len() == 0 {
		t.Fatal("collector empty after a collected run")
	}
	last, _ := coll.Last()
	if last.VersionFill != 1 {
		t.Fatalf("converged run's final snapshot fill = %v, want 1", last.VersionFill)
	}
	if last.Deficit != 0 {
		t.Fatalf("converged run's final snapshot deficit = %d", last.Deficit)
	}
	if last.Epoch != uint64(res.Rounds) {
		t.Fatalf("final snapshot epoch %d, want converged round %d", last.Epoch, res.Rounds)
	}
	if last.SentTotal != res.TotalMessages {
		t.Fatalf("final snapshot SentTotal %d, want %d", last.SentTotal, res.TotalMessages)
	}
	if len(last.SentByKind) == 0 || len(last.DegreeHist) == 0 {
		t.Fatal("final snapshot missing per-kind or degree data")
	}
	var epochs []uint64
	for _, s := range coll.Snapshots() {
		epochs = append(epochs, s.Epoch)
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatalf("epochs not strictly increasing: %v", epochs)
		}
	}
}

// TestMetricsPartialFillOnCutRun (satellite): a run stopped by MaxRounds
// mid-stabilization must report a partial version-vector fill in its
// last snapshot — never a spuriously complete one fabricated by
// re-sampling an unchanged state.
func TestMetricsPartialFillOnCutRun(t *testing.T) {
	g := graph.RandomGnp(24, 0.3, rand.New(rand.NewSource(9)))
	coll := &metrics.Collector{}
	res := MustRun(RunSpec{
		Graph: g, Start: StartCorrupt, Seed: 9, MaxRounds: 6, Collect: coll,
	})
	if res.Converged {
		t.Skip("run converged inside 6 rounds; instance unusable for the cut test")
	}
	last, ok := coll.Last()
	if !ok {
		t.Fatal("no snapshots from the cut run")
	}
	if last.VersionFill >= 1 {
		t.Fatalf("cut run's final snapshot claims complete fill (%v) at epoch %d",
			last.VersionFill, last.Epoch)
	}
	if last.Stable >= last.Window {
		t.Fatalf("cut run's final snapshot claims a full stability window (%d/%d)",
			last.Stable, last.Window)
	}
}

// TestMetricsOffIsByteIdentical: a collected run and a plain run of the
// same spec report identical deterministic figures, including the
// incremental-fingerprint recompute counter — the sampled reads are
// pure, which is what keeps the committed drift baselines intact.
func TestMetricsOffIsByteIdentical(t *testing.T) {
	g := graph.RandomGnp(16, 0.3, rand.New(rand.NewSource(4)))
	spec := RunSpec{Graph: g, Start: StartCorrupt, Seed: 4}
	plain := MustRun(spec)
	spec.Collect = &metrics.Collector{Every: 2}
	collected := MustRun(spec)
	if plain.Rounds != collected.Rounds ||
		plain.TotalMessages != collected.TotalMessages ||
		plain.Metrics.FingerprintRecomputes != collected.Metrics.FingerprintRecomputes {
		t.Fatalf("metrics sampling perturbed the run: rounds %d vs %d, recomputes %d vs %d",
			plain.Rounds, collected.Rounds,
			plain.Metrics.FingerprintRecomputes, collected.Metrics.FingerprintRecomputes)
	}
}

// TestMetricsWallBackends: the live and tcp drivers stream non-empty
// snapshots from their detection loops, ending with a complete per-node
// view (degrees, protocol counters) taken after the final stop.
func TestMetricsWallBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock backends under -short")
	}
	g := graph.Wheel(8)
	for _, backend := range []Backend{BackendLive, BackendTCP} {
		coll := &metrics.Collector{}
		res, err := Run(RunSpec{
			Graph:   g,
			Start:   StartCorrupt,
			Seed:    6,
			Backend: backend,
			Collect: coll,
			Audit:   true,
			Tuning:  smokeTuning(t),
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge: %+v", backend, res.Legit)
		}
		if coll.Len() < 2 {
			t.Fatalf("%s: stream too short: %d snapshot(s)", backend, coll.Len())
		}
		last, _ := coll.Last()
		if last.VersionFill != 1 || last.Deficit != 0 {
			t.Fatalf("%s: converged but final snapshot fill=%v deficit=%d",
				backend, last.VersionFill, last.Deficit)
		}
		if len(last.DegreeHist) == 0 {
			t.Fatalf("%s: final snapshot missing the post-stop degree histogram", backend)
		}
		if last.SentTotal <= 0 || len(last.SentByKind) == 0 {
			t.Fatalf("%s: final snapshot missing traffic counters (total=%d kinds=%d)",
				backend, last.SentTotal, len(last.SentByKind))
		}
		if res.AuditRecords == 0 {
			t.Fatalf("%s: corrupt start chained no mutations", backend)
		}
	}
}

// --- Stats parity (satellite) --------------------------------------------

// statNames reflects the exported int counter field names of a Stats
// struct type.
func statNames(v any) []string {
	t := reflect.TypeOf(v)
	out := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		out = append(out, t.Field(i).Name)
	}
	sort.Strings(out)
	return out
}

// TestStatsCounterSetsAligned pins the relationship between the two
// variants' Stats structs: the shared counters must exist in both under
// identical names (the differential tables compare them positionally),
// and every non-shared field must be in the variant's declared extras
// allowlist — a new counter added to one side without classification
// fails here instead of silently skewing cross-variant comparisons.
func TestStatsCounterSetsAligned(t *testing.T) {
	shared := []string{
		"CyclesClassified", "DeblocksTriggered", "ExchangesComplete",
		"SearchesLaunched", "SearchesSuppressed",
	}
	coreExtras := map[string]bool{"ExchangesApplied": true, "ChainsAborted": true}
	literalExtras := map[string]bool{
		"RemovesStarted": true, "ReorientHops": true, "BacksStarted": true,
		"ChoreoAborted": true, "ReversesSent": true,
	}
	check := func(variant string, got []string, extras map[string]bool) {
		have := map[string]bool{}
		for _, name := range got {
			have[name] = true
		}
		for _, name := range shared {
			if !have[name] {
				t.Errorf("%s Stats missing shared counter %s", variant, name)
			}
			delete(have, name)
		}
		for name := range have {
			if !extras[name] {
				t.Errorf("%s Stats has unclassified counter %s (add it to the shared set or the extras allowlist)", variant, name)
			}
			delete(extras, name)
		}
		for name := range extras {
			t.Errorf("%s Stats extras allowlist names missing field %s", variant, name)
		}
	}
	check("core", statNames(core.Stats{}), coreExtras)
	check("paperproto", statNames(paperproto.Stats{}), literalExtras)
}
