package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/mdstseq"
)

// smokeTuning keeps the wall-clock backends snappy; under -short the
// deadline tightens further (these tests are the `make smoke` gate, so
// they must stay cheap in CI's short-mode race job too).
func smokeTuning(t *testing.T) BackendTuning {
	t.Helper()
	deadline := 30 * time.Second
	if testing.Short() {
		deadline = 10 * time.Second
	}
	return BackendTuning{Deadline: deadline}
}

// smokeCheck asserts the common post-conditions of a converged run,
// including zero driver restarts (in-band detection needs none on the
// paper-literal search schedule).
func smokeCheck(t *testing.T, res Result, wantBackend Backend) {
	t.Helper()
	smokeCheckRestarts(t, res, wantBackend, 0)
}

// smokeCheckRestarts is smokeCheck with an explicit restart allowance:
// suppressed wall-clock runs may legitimately certify during a
// deferred-retry plateau and recover through the driver's
// resume-on-failed-legitimacy path, so a small restart count is part of
// the design there, not a regression.
func smokeCheckRestarts(t *testing.T, res Result, wantBackend Backend, maxRestarts int) {
	t.Helper()
	if res.Backend != wantBackend {
		t.Fatalf("Result.Backend = %q, want %q", res.Backend, wantBackend)
	}
	if !res.Converged || !res.Legit.OK() {
		t.Fatalf("backend %s did not converge: converged=%v legit=%+v",
			wantBackend, res.Converged, res.Legit)
	}
	if res.Tree == nil {
		t.Fatalf("backend %s: no tree extracted", wantBackend)
	}
	if res.WallTime <= 0 {
		t.Fatalf("backend %s: WallTime not recorded", wantBackend)
	}
	if res.Rounds <= 0 || res.LastChange != res.Rounds {
		t.Fatalf("backend %s: rounds=%d lastChange=%d (wall-clock backends mirror Rounds)",
			wantBackend, res.Rounds, res.LastChange)
	}
	if res.TotalMessages <= 0 {
		t.Fatalf("backend %s: no message accounting", wantBackend)
	}
	// Convergence is decided by internal/detect certificates on the
	// wall-clock backends (and attested on sim): a converged run must
	// carry one, with the frozen active-kind counters balanced.
	if res.Cert == nil {
		t.Fatalf("backend %s: converged without a quiescence certificate", wantBackend)
	}
	if res.Cert.Backend != string(wantBackend) {
		t.Fatalf("certificate backend %q, want %q", res.Cert.Backend, wantBackend)
	}
	if res.Cert.Sent != res.Cert.Received {
		t.Fatalf("backend %s: certificate deficit %d", wantBackend, res.Cert.Sent-res.Cert.Received)
	}
	if res.Restarts > maxRestarts {
		t.Fatalf("backend %s: %d restarts on a converging run (allowed %d)",
			wantBackend, res.Restarts, maxRestarts)
	}
	if wantBackend != BackendSim && res.Deadline <= 0 {
		t.Fatalf("backend %s: effective deadline not recorded", wantBackend)
	}
}

// TestBackendLiveSmoke drives the goroutine-per-node runtime through the
// shared orchestration: corrupted start, quiescence by concurrent
// fingerprint probing, Δ*+1 degree check.
func TestBackendLiveSmoke(t *testing.T) {
	g := graph.Wheel(8)
	res, err := Run(RunSpec{
		Graph:   g,
		Start:   StartCorrupt,
		Seed:    11,
		Backend: BackendLive,
		Tuning:  smokeTuning(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	smokeCheck(t, res, BackendLive)
}

// TestBackendTCPSmoke drives the loopback TCP cluster through the same
// orchestration, on the literal variant for cross-product coverage.
func TestBackendTCPSmoke(t *testing.T) {
	g := graph.Wheel(8)
	res, err := Run(RunSpec{
		Graph:   g,
		Variant: VariantLiteral,
		Start:   StartClean,
		Seed:    7,
		Backend: BackendTCP,
		Tuning:  smokeTuning(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	smokeCheck(t, res, BackendTCP)
}

// TestBackendLegitimatePreload: the wall-clock backends share initStart,
// so a preloaded legitimate configuration must hold immediately (closure
// under the live runtime).
func TestBackendLivePreloadedStaysLegitimate(t *testing.T) {
	g := graph.Wheel(8)
	res, err := Run(RunSpec{
		Graph:   g,
		Start:   StartLegitimate,
		Seed:    3,
		Backend: BackendLive,
		Tuning:  smokeTuning(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	smokeCheck(t, res, BackendLive)
}

func TestBackendValidation(t *testing.T) {
	g := graph.Ring(6)
	cases := []struct {
		name string
		spec RunSpec
		want string
	}{
		{"unknown", RunSpec{Graph: g, Backend: "quantum"}, "unknown backend"},
		{"lossy-live", RunSpec{Graph: g, Backend: BackendLive, DropRate: 0.1}, "DropRate requires"},
		{"safety-tcp", RunSpec{Graph: g, Backend: BackendTCP, TrackSafety: true}, "TrackSafety requires"},
		{"sched-live", RunSpec{Graph: g, Backend: BackendLive, Scheduler: SchedAsync}, "scheduler \"async\" requires"},
		{"rounds-tcp", RunSpec{Graph: g, Backend: BackendTCP, MaxRounds: 100}, "MaxRounds requires"},
	}
	for _, tc := range cases {
		if _, err := Run(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err=%v, want substring %q", tc.name, err, tc.want)
		}
	}
	// The sim default still accepts every feature; the wall-clock
	// backends accept the canonical sync/default scheduler label.
	if err := (RunSpec{Graph: g, DropRate: 0.1, TrackSafety: true,
		Scheduler: SchedAdversarial, MaxRounds: 10}).Validate(); err != nil {
		t.Fatalf("sim spec rejected: %v", err)
	}
	if err := (RunSpec{Graph: g, Backend: BackendLive, Scheduler: SchedSync}).Validate(); err != nil {
		t.Fatalf("live+sync rejected: %v", err)
	}
}

// Acceptance: on a converging run the tcp driver performs ZERO cluster
// restarts for legitimacy probing — quiescence is watched over the
// side-channel control connection and the cluster is stopped exactly
// once, after a stable certificate. The restart counter is maintained
// by netrun.Cluster itself, so a driver regression (e.g. falling back
// to the old restart-per-inspection loop) cannot hide. Exercised at
// batch=1 (the pre-batching wire format) and batch=16 (coalesced
// frames): in-band detection must not care how messages are framed.
func TestBackendTCPZeroRestartsOnConvergence(t *testing.T) {
	for _, batch := range []int{1, 16} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			tn := smokeTuning(t)
			tn.BatchSize = batch
			res, err := Run(RunSpec{
				Graph:   graph.Wheel(8),
				Start:   StartCorrupt,
				Seed:    19,
				Backend: BackendTCP,
				Tuning:  tn,
			})
			if err != nil {
				t.Fatal(err)
			}
			smokeCheck(t, res, BackendTCP)
			if res.Restarts != 0 {
				t.Fatalf("tcp driver restarted the cluster %d times on a converging run", res.Restarts)
			}
			if res.Cert == nil || res.Cert.Epoch == 0 {
				t.Fatalf("tcp convergence without a probe-derived certificate: %+v", res.Cert)
			}
			if res.Frames <= 0 || res.Frames > res.TotalMessages {
				t.Fatalf("frame accounting out of range: %d frames for %d messages",
					res.Frames, res.TotalMessages)
			}
		})
	}
}

// Satellite (differential): the same scenario spec at batch=1 and
// batch=16 — paired seeds, suppression on — must reach identical
// legitimacy and the same Δ*+1 degree bracket, each with a quiescence
// certificate. Framing is a transport concern; if the outcome shifts
// with the batch knob, coalescing broke message order or lost frames.
// Part of the `make smoke` tcp-batch job.
func TestBatchedTCPDifferentialOutcome(t *testing.T) {
	g := graph.Wheel(8)
	bound := mdstseq.Approximate(g).MaxDegree() + 1
	results := make(map[int]Result)
	for _, batch := range []int{1, 16} {
		tn := smokeTuning(t)
		tn.BatchSize = batch
		if batch > 1 {
			tn.BatchMaxWait = time.Millisecond
		}
		res, err := Run(RunSpec{
			Graph:    g,
			Start:    StartCorrupt,
			Seed:     29,
			Backend:  BackendTCP,
			Suppress: true,
			Tuning:   tn,
		})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		// Suppression defers retries, so allow the driver's bounded
		// resume path (same allowance as the suppression smoke).
		smokeCheckRestarts(t, res, BackendTCP, 5)
		if res.Tree.MaxDegree() > bound {
			t.Fatalf("batch=%d: tree degree %d above the Δ*+1 bracket %d",
				batch, res.Tree.MaxDegree(), bound)
		}
		results[batch] = res
	}
	a, b := results[1], results[16]
	if a.Legit.OK() != b.Legit.OK() || a.Converged != b.Converged {
		t.Fatalf("batch knob changed the outcome: batch=1 %+v vs batch=16 %+v", a.Legit, b.Legit)
	}
	if (a.Cert == nil) != (b.Cert == nil) {
		t.Fatalf("certificate presence differs across batch sizes")
	}
	// Coalescing must show up in the frame accounting: batch=16 needs
	// strictly fewer frames than messages, batch=1 exactly as many.
	if a.Frames != a.TotalMessages {
		t.Fatalf("batch=1 wrote %d frames for %d messages (want 1:1)", a.Frames, a.TotalMessages)
	}
	if b.Frames >= b.TotalMessages {
		t.Fatalf("batch=16 wrote %d frames for %d messages (no coalescing)", b.Frames, b.TotalMessages)
	}
}

// Satellite (smoke): the search-suppression knob exercised on both
// wall-clock backends, not just the deterministic simulator — the
// `make smoke` suppression job. Outcome must be unchanged by the knob
// (legitimacy + certificate). Suppression defers retries, so a tiny
// corrupt start can certify mid-plateau and take a few
// resume-on-failed-legitimacy restarts before the legitimate
// certificate — allowed within a small bound; whether tokens are
// actually pruned is wall-clock timing and is asserted only as
// non-negative.
func TestSuppressionSmokeLiveTCP(t *testing.T) {
	for _, backend := range []Backend{BackendLive, BackendTCP} {
		res, err := Run(RunSpec{
			Graph:    graph.Wheel(8),
			Start:    StartCorrupt,
			Seed:     23,
			Backend:  backend,
			Suppress: true,
			Tuning:   smokeTuning(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		smokeCheckRestarts(t, res, backend, 5)
		if res.SearchesSuppressed < 0 {
			t.Fatalf("backend %s: negative suppression counter %d", backend, res.SearchesSuppressed)
		}
	}
}

// With adaptive backoff the wall-clock drivers derive their stability
// windows from the conservative cap (they cannot scan per-node tiers
// behind sockets), so a backed-off live/tcp run must still converge and
// certify within its budget deadline. The windows are shrunk so the
// cap-derived stability window stays smoke-sized.
func TestBackoffSmokeLiveTCP(t *testing.T) {
	cfg := core.DefaultConfig(8)
	cfg.SuppressWindow = 8
	cfg.BackoffCap = 32
	for _, backend := range []Backend{BackendLive, BackendTCP} {
		res, err := Run(RunSpec{
			Graph:   graph.Wheel(8),
			Config:  cfg,
			Start:   StartCorrupt,
			Seed:    23,
			Backend: backend,
			Backoff: true,
			Tuning:  smokeTuning(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		smokeCheckRestarts(t, res, backend, 5)
	}
}

// Deterministic suppression accounting on the sim backend: same spec,
// same seed — byte-identical JSON including the suppression counter,
// which must be positive for a corrupted medium start.
func TestSuppressionSimDeterministicCounter(t *testing.T) {
	spec := RunSpec{Graph: graph.Wheel(24), Start: StartCorrupt, Seed: 9, Suppress: true}
	a, b := MustRun(spec), MustRun(spec)
	if a.SearchesSuppressed != b.SearchesSuppressed {
		t.Fatalf("suppression counter nondeterministic: %d vs %d",
			a.SearchesSuppressed, b.SearchesSuppressed)
	}
	if a.SearchesSuppressed <= 0 {
		t.Fatalf("no suppression on a corrupted wheel start: %d", a.SearchesSuppressed)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(aj), `"searchesSuppressed"`) {
		t.Fatalf("suppression counter missing from Result JSON: %s", aj)
	}
	// The knob off must keep the counter out of the JSON entirely — the
	// omitempty half of the baseline byte-identity contract.
	off := MustRun(RunSpec{Graph: graph.Wheel(24), Start: StartCorrupt, Seed: 9})
	oj, _ := json.Marshal(off)
	if strings.Contains(string(oj), "searchesSuppressed") {
		t.Fatalf("suppression field serialized with the knob off: %s", oj)
	}
}

// Satellite: Tuning fields are validated loudly with a named error
// instead of hanging a ticker or silently substituting defaults for
// negative values.
func TestTuningValidation(t *testing.T) {
	g := graph.Ring(6)
	bad := []BackendTuning{
		{Tick: -time.Millisecond},
		{Probe: -time.Millisecond},
		{Deadline: -time.Second},
		{Budget: -1},
		{BatchSize: -1},
		{BatchMaxWait: -time.Millisecond},
	}
	for _, backend := range []Backend{BackendLive, BackendTCP} {
		for i, tn := range bad {
			_, err := Run(RunSpec{Graph: g, Backend: backend, Tuning: tn})
			if err == nil {
				t.Fatalf("%s case %d: bad tuning %+v accepted", backend, i, tn)
			}
			if !errors.Is(err, ErrTuning) {
				t.Fatalf("%s case %d: error %v does not wrap ErrTuning", backend, i, err)
			}
		}
	}
	// Zero values stay the documented "use the per-backend default".
	if err := (BackendTuning{}).Validate(); err != nil {
		t.Fatalf("zero tuning rejected: %v", err)
	}
	// The sim backend ignores tuning entirely, so it is not validated
	// there — a deterministic spec cannot start failing because of a
	// field the backend never reads.
	if err := (RunSpec{Graph: g, Tuning: BackendTuning{Tick: -1}}).Validate(); err != nil {
		t.Fatalf("sim spec rejected over ignored tuning: %v", err)
	}
}

// Tuning.Budget sizes the wall-clock deadline from the paired
// deterministic sim run instead of the one-size-fits-all 30s default.
func TestBackendBudgetDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock budget run")
	}
	g := graph.Wheel(8)
	res, err := Run(RunSpec{
		Graph:   g,
		Start:   StartCorrupt,
		Seed:    11,
		Backend: BackendLive,
		Tuning:  BackendTuning{Budget: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	smokeCheck(t, res, BackendLive)
	if res.Deadline <= 0 || res.Deadline >= 30*time.Second {
		t.Fatalf("budget deadline %v not derived from the paired sim run", res.Deadline)
	}
	// An explicit deadline takes precedence over the budget.
	res2, err := Run(RunSpec{
		Graph:   g,
		Start:   StartCorrupt,
		Seed:    11,
		Backend: BackendLive,
		Tuning:  BackendTuning{Budget: 200, Deadline: 17 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Deadline != 17*time.Second {
		t.Fatalf("explicit deadline overridden by budget: %v", res2.Deadline)
	}
}

func TestParseBackend(t *testing.T) {
	for _, b := range Backends() {
		got, err := ParseBackend(string(b))
		if err != nil || got != b {
			t.Fatalf("ParseBackend(%q) = %q, %v", b, got, err)
		}
	}
	if b, err := ParseBackend(""); err != nil || b != BackendSim {
		t.Fatalf("empty backend = %q, %v (want sim default)", b, err)
	}
	if _, err := ParseBackend("udp"); err == nil {
		t.Fatal("bogus backend accepted")
	}
	if !BackendSim.Deterministic() || BackendLive.Deterministic() || BackendTCP.Deterministic() {
		t.Fatal("determinism flags wrong")
	}
}

// Satellite: Result records its backend and serializes deterministically —
// wall time (the only cross-run-varying field) is json:"-", so two
// identical sim runs must produce byte-identical JSON even though their
// WallTime differs.
func TestResultJSONDeterministicModuloWallTime(t *testing.T) {
	g := graph.Wheel(8)
	spec := RunSpec{Graph: g, Start: StartCorrupt, Seed: 5}
	a := MustRun(spec)
	b := MustRun(spec)
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("sim Result JSON differs between identical runs:\n%s\n%s", aj, bj)
	}
	if !strings.Contains(string(aj), `"backend":"sim"`) {
		t.Fatalf("Result JSON does not record the backend: %s", aj)
	}
	if strings.Contains(strings.ToLower(string(aj)), "walltime") {
		t.Fatalf("WallTime leaked into Result JSON: %s", aj)
	}
	if a.WallTime <= 0 {
		t.Fatal("WallTime not recorded on the struct")
	}
}
