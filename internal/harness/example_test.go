package harness_test

import (
	"fmt"

	"mdst/internal/graph"
	"mdst/internal/harness"
)

// A complete run of the paper's protocol: a wheel network starts from a
// fully corrupted configuration and stabilizes to a minimum-degree
// spanning tree (Δ* = 2 for a wheel, guarantee Δ*+1 = 3).
func Example() {
	res := harness.MustRun(harness.RunSpec{
		Graph:     graph.Wheel(10),
		Scheduler: harness.SchedSync,
		Start:     harness.StartCorrupt,
		Seed:      1,
	})
	fmt.Println("legitimate:", res.Legit.OK())
	fmt.Println("degree:", res.Tree.MaxDegree(), "<= 3:", res.Tree.MaxDegree() <= 3)
	// Output:
	// legitimate: true
	// degree: 2 <= 3: true
}

// Fault recovery (Definition 1): corrupt three nodes of a legitimate
// configuration and re-stabilize.
func Example_faultRecovery() {
	res := harness.MustRun(harness.RunSpec{
		Graph:        graph.Grid(4, 4),
		Scheduler:    harness.SchedSync,
		Start:        harness.StartLegitimate,
		CorruptNodes: 3,
		Seed:         2,
	})
	fmt.Println("recovered:", res.Legit.OK())
	// Output: recovered: true
}
