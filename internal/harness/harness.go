// Package harness glues the substrates together for experiments: it
// builds a protocol network over a workload graph, optionally corrupts
// the initial configuration, runs the protocol to stabilization,
// verifies the legitimacy predicate and collects the metrics every
// experiment table is built from.
//
// Execution is layered: Run is backend-agnostic orchestration (graph,
// variant resolution, initial configuration, result collection) over
// three interchangeable execution backends — the deterministic seeded
// simulator (BackendSim, the default), the goroutine-per-node CSP
// runtime (BackendLive) and a loopback TCP cluster (BackendTCP). The
// variant axis (core vs the paper-literal choreography) is equally
// pluggable via variantOps, so every (variant × backend) pair shares
// this one orchestration path.
package harness

import (
	"fmt"
	"time"

	"mdst/internal/core"
	"mdst/internal/detect"
	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/metrics"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// SchedulerKind names a scheduler for table-driven experiments.
type SchedulerKind string

// Scheduler kinds.
const (
	SchedSync        SchedulerKind = "sync"
	SchedAsync       SchedulerKind = "async"
	SchedAdversarial SchedulerKind = "adversarial"
)

// NewScheduler instantiates the named scheduler.
func NewScheduler(kind SchedulerKind) sim.Scheduler {
	switch kind {
	case SchedAsync:
		return sim.NewAsyncScheduler()
	case SchedAdversarial:
		return sim.NewAdversarialScheduler()
	default:
		return sim.NewSyncScheduler()
	}
}

// StartMode selects the initial configuration of a run.
type StartMode int

const (
	// StartClean boots every node as its own fresh root (a correct but
	// arbitrary configuration: the tree must still be built).
	StartClean StartMode = iota
	// StartCorrupt randomizes every variable and neighbor copy at every
	// node (Definition 1's arbitrary configuration).
	StartCorrupt
	// StartLegitimate pre-loads a converged configuration (used by
	// closure tests and fault-recovery experiments).
	StartLegitimate
	// StartPath pre-loads the canonical Hamiltonian-path configuration:
	// the spanning tree parent(i) = i-1 rooted at node 0, with coherent
	// distances and dmax = 2. Only valid on graphs that contain every
	// path edge {i-1, i} (the ring-based families construct them); the
	// preload fails otherwise. Because dmax = 2 is the global optimum,
	// the configuration is a reduction fixed point with the cycle-search
	// module entirely off — the quiet start the event engine's parking
	// (sim.EventProcess) turns into zero steady-state work, which is what
	// makes closure runs at n >= 10^4 tractable.
	StartPath
)

// String returns the stable name used in scenario specs and CLIs.
func (m StartMode) String() string {
	switch m {
	case StartCorrupt:
		return "corrupt"
	case StartLegitimate:
		return "legitimate"
	case StartPath:
		return "path"
	default:
		return "clean"
	}
}

// ParseStartMode resolves a StartMode name (clean|corrupt|legitimate|path).
func ParseStartMode(s string) (StartMode, error) {
	switch s {
	case "clean":
		return StartClean, nil
	case "corrupt":
		return StartCorrupt, nil
	case "legitimate", "legit":
		return StartLegitimate, nil
	case "path":
		return StartPath, nil
	}
	return 0, fmt.Errorf("harness: unknown start mode %q", s)
}

// Variant selects which protocol implementation a run executes.
type Variant string

// Protocol variants.
const (
	// VariantCore is the primary implementation: the edge exchange is an
	// ordered chain of single-parent moves (DESIGN.md S3).
	VariantCore Variant = "core"
	// VariantLiteral is the literal Remove/Back/Reverse choreography of
	// the paper's Figures 1-2 (internal/paperproto).
	VariantLiteral Variant = "literal"
)

// RunSpec describes one experiment run.
type RunSpec struct {
	Graph     *graph.Graph
	Config    core.Config // zero Config means core.DefaultConfig(n)
	Variant   Variant     // empty means VariantCore
	Scheduler SchedulerKind
	Start     StartMode
	// CorruptNodes: with a pre-loaded start (StartLegitimate, StartPath),
	// the number of nodes to corrupt after pre-loading (fault-recovery
	// experiment E5).
	CorruptNodes int
	// CorruptTargets: with a pre-loaded start, the specific node IDs
	// to corrupt after pre-loading (targeted-fault models pick roles such
	// as the root or a maximum-degree node). Applied before CorruptNodes.
	CorruptTargets []int
	// DropRate enables lossy links: every delivery is independently lost
	// with this probability (the E9 fault model; zero keeps the paper's
	// reliable-link assumption). Sim backend only: the wall-clock
	// backends have no delivery hook to drop at.
	DropRate  float64
	Seed      int64
	MaxRounds int
	// TrackSafety counts rounds in which the parent pointers do not form
	// a single spanning tree (transient breakage under concurrent
	// exchanges; see DESIGN.md S3). Counting starts at the first round
	// with a valid tree, so the initial formation phase of a corrupted
	// start is excluded. Costs one validation per round. Sim backend
	// only: the wall-clock backends have no round hook. Under
	// EngineEvent only executed rounds are validated — rounds skipped as
	// eventless cannot change the tree, so the count is unaffected, but
	// the per-round hook fires fewer times.
	TrackSafety bool
	// Backend selects the execution target (empty means BackendSim, the
	// deterministic default). See the Backend constants.
	Backend Backend
	// Engine selects the sim backend's execution core (empty means
	// EngineCompat, the full-sweep loop every committed baseline was
	// generated with). EngineEvent runs the discrete-event core —
	// frontier-only scheduling for large n. Sim backend only.
	Engine Engine
	// Tuning adjusts the wall-clock backends; ignored by sim.
	Tuning BackendTuning
	// Suppress turns on the search-traffic suppression hot path
	// (core.Config.SuppressSearches) on top of whatever Config resolves
	// to — the declarative form used by the scenario engine's suppression
	// matrix axis. Off keeps the paper-literal search schedule and the
	// committed deterministic baselines byte-identical.
	Suppress bool
	// Backoff turns on the adaptive suppression backoff
	// (core.Config.BackoffSearches, implying SuppressSearches) — the
	// declarative form used by the scenario engine's backoff matrix
	// axis. Steady-state retry traffic then decays geometrically toward
	// zero; the sim cores track the time-varying stability window the
	// schedule requires, the wall-clock drivers take the conservative
	// cap. Off keeps the static suppression window (and, with Suppress
	// also off, the paper-literal baselines) byte-identical.
	Backoff bool
	// Collect, when non-nil, streams metrics.Snapshot observations into
	// the collector while the run executes: the sim backend samples its
	// run loop (pure reads of the incremental fingerprint cache — zero
	// extra hashing), the wall-clock backends sample their detection
	// probes. Nil keeps every backend on its exact pre-metrics path.
	Collect *metrics.Collector
	// Audit enables the hash-chained mutation log (internal/auditlog):
	// every accepted tree mutation is chained and the final head is
	// reported in Result.AuditChain. Off (the default) installs no hooks
	// — observability is zero-cost when not sampled.
	Audit bool
}

// backend returns the normalized backend (empty means sim).
func (s RunSpec) backend() Backend {
	if s.Backend == "" {
		return BackendSim
	}
	return s.Backend
}

// engine returns the normalized engine (empty means compat).
func (s RunSpec) engine() Engine {
	if s.Engine == "" {
		return EngineCompat
	}
	return s.Engine
}

// Result is the outcome of one run. The JSON rendering is deterministic
// for the sim backend: wall time — the only field that varies across
// repeats of an identical spec — is excluded via `json:"-"`, as are the
// unserializable Tree and Metrics pointers.
type Result struct {
	// Backend records which execution backend produced the result.
	Backend   Backend `json:"backend"`
	Converged bool    `json:"converged"`
	// Rounds: sim counts asynchronous rounds until quiescence was
	// declared; the wall-clock backends count fingerprint probes (live)
	// or run phases (tcp) — the driver's unit of observation.
	Rounds int `json:"rounds"`
	// LastChange is the round of the last state change (the sim
	// backend's figure of merit). The wall-clock backends have no round
	// clock to stamp changes with, so they mirror Rounds here — cell
	// aggregates then show the driver's observation count instead of a
	// misleading constant zero.
	LastChange int             `json:"lastChange"`
	Legit      core.Legitimacy `json:"legit"`
	Tree       *spanning.Tree  `json:"-"` // nil unless a valid tree was extracted
	Metrics    *sim.Metrics    `json:"-"` // sim backend only
	// TotalMessages is the sum over all kinds. For the wall-clock
	// backends it counts messages accepted by the runtime's send path —
	// live counts inbox accepts, tcp counts outbox accepts (its Dropped
	// counts outbox back-pressure losses).
	TotalMessages int64 `json:"messages"`
	MaxStateBits  int   `json:"maxStateBits"`
	// BrokenRounds counts rounds without a valid spanning tree (only
	// populated when RunSpec.TrackSafety is set).
	BrokenRounds int `json:"brokenRounds,omitempty"`
	// Dropped is the number of deliveries lost to RunSpec.DropRate (sim)
	// or to outbox back-pressure (tcp).
	Dropped int64 `json:"dropped,omitempty"`
	// Exchanges and Aborts are the protocol's completed edge exchanges
	// and staleness-aborted choreography hops (ablation E11 compares
	// them across variants).
	Exchanges int `json:"exchanges"`
	Aborts    int `json:"aborts"`
	// SearchesSuppressed counts Search launches and token arrivals pruned
	// by the suppression module; zero (and omitted from JSON, keeping
	// suppression-off output byte-identical) unless the run enabled
	// RunSpec.Suppress or Config.SuppressSearches.
	SearchesSuppressed int `json:"searchesSuppressed,omitempty"`
	// Frames counts wire frames flushed by the tcp backend's edge
	// writers; Frames/TotalMessages is the coalescing ratio (1.0 at
	// batch=1 by construction, the BENCH_tcp.json headline below it).
	// Zero for the other backends; excluded from JSON like every
	// wall-clock-shaped counter.
	Frames int64 `json:"-"`
	// WallTime is the run's wall-clock duration — excluded from JSON so
	// serialized results stay byte-identical across machines and reruns.
	WallTime time.Duration `json:"-"`
	// Cert is the quiescence certificate that decided convergence
	// (internal/detect): nil when the run never certified (deadline, or
	// a sim run that hit MaxRounds). Excluded from JSON — the wall-clock
	// backends' certificates vary across repeats, and the committed sim
	// matrix baseline predates certificates.
	Cert *detect.Certificate `json:"-"`
	// Restarts counts how many times a wall-clock driver had to resume
	// execution after a certified-but-not-legitimate stop. Zero on
	// converging runs — the acceptance claim of in-band detection.
	Restarts int `json:"-"`
	// Deadline is the effective wall-clock budget the driver ran under
	// (after Tuning.Budget resolution); zero for the sim backend.
	Deadline time.Duration `json:"-"`
	// AuditChain is the mutation hash-chain head and AuditRecords the
	// number of chained mutations (RunSpec.Audit; zero when auditing was
	// off). Deterministic for the sim backend; for any backend, two
	// observers of the same mutation sequence produce identical heads.
	// Excluded from JSON like every post-baseline field.
	AuditChain   uint64 `json:"-"`
	AuditRecords int    `json:"-"`
}

// Validate checks the spec invariants that would otherwise blow up deep
// inside a run (sim.SetDropRate panics on out-of-range rates — a bad
// rate used to crash the scenario worker that happened to execute it).
func (s RunSpec) Validate() error {
	if s.Graph == nil {
		return fmt.Errorf("harness: RunSpec.Graph is nil")
	}
	if s.DropRate < 0 || s.DropRate >= 1 {
		return fmt.Errorf("harness: drop rate %v out of [0,1)", s.DropRate)
	}
	switch s.Variant {
	case "", VariantCore, VariantLiteral:
	default:
		return fmt.Errorf("harness: unknown variant %q", s.Variant)
	}
	switch s.Backend {
	case "", BackendSim, BackendLive, BackendTCP:
	default:
		return fmt.Errorf("harness: unknown backend %q", s.Backend)
	}
	switch s.Engine {
	case "", EngineCompat, EngineEvent:
	default:
		return fmt.Errorf("harness: unknown engine %q", s.Engine)
	}
	if s.engine() == EngineEvent {
		// Fail loud instead of silently running a different experiment:
		// the engine axis exists only inside the deterministic simulator,
		// and the event core requires reliable links — a dropped gossip
		// message is never re-sent to a parked sender, so lossy runs would
		// lose the stale-view recovery the compat core's always-on gossip
		// provides.
		if s.backend() != BackendSim {
			return fmt.Errorf("harness: engine %q requires the sim backend (got %q)", s.Engine, s.backend())
		}
		if s.DropRate > 0 {
			return fmt.Errorf("harness: DropRate requires the compat engine (event-core nodes park and never re-send lost gossip)")
		}
	}
	if s.backend() != BackendSim {
		// Fail loud instead of silently running a different experiment
		// than the spec (or a matrix cell label) claims: the wall-clock
		// backends have no delivery hook for lossy links, no round hook
		// for safety tracking, no seeded scheduler to vary, and no round
		// bound (Tuning.Deadline is their budget).
		if s.DropRate > 0 {
			return fmt.Errorf("harness: DropRate requires the sim backend (got %q)", s.backend())
		}
		if s.TrackSafety {
			return fmt.Errorf("harness: TrackSafety requires the sim backend (got %q)", s.backend())
		}
		if s.Scheduler != "" && s.Scheduler != SchedSync {
			return fmt.Errorf("harness: scheduler %q requires the sim backend (got %q)", s.Scheduler, s.backend())
		}
		if s.MaxRounds > 0 {
			return fmt.Errorf("harness: MaxRounds requires the sim backend (got %q); bound wall-clock runs with Tuning.Deadline", s.backend())
		}
		// A malformed tuning would otherwise hang a ticker or silently
		// substitute defaults for negative values deep inside a driver.
		if err := s.Tuning.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// QuiesceWindowRounds is the stability window (in asynchronous rounds)
// that quiescence must hold before it is believed: it must cover a full
// search retry period, or a slow-searching configuration is declared
// quiescent before its reduction ever fires. retryPeriod is the
// worst-case spacing between full passes of an equivalent search —
// Config.SearchPeriod for the paper-literal schedule,
// core.Config.EffectiveRetryPeriod() when duplicate pruning may defer
// retries by up to the suppression window. Every detection path derives
// its window from this one formula — the sim run loop, the wall-clock
// drivers (converted to wall time via the tick period), and the churn
// executor's re-stabilization run — so they cannot drift apart.
func QuiesceWindowRounds(n, retryPeriod int) int {
	return 2*n + 40 + 2*retryPeriod
}

// Run executes one experiment run on the spec's backend. The error
// reports an invalid spec (see Validate) or — for the TCP backend only —
// a failure of the network substrate itself; protocol execution cannot
// fail.
func Run(spec RunSpec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	ops := variantFor(spec)
	switch spec.backend() {
	case BackendLive:
		return runLive(spec, ops)
	case BackendTCP:
		return runTCP(spec, ops)
	default:
		return runSim(spec, ops)
	}
}

// runSim executes the spec on the deterministic seeded simulator. Every
// step below replays the pre-backend harness exactly — network build,
// corruption RNG, quiescence window, result collection — so sim results
// are byte-identical to the pre-refactor harness (regression-locked by
// the committed default-matrix baseline in internal/scenario/testdata).
func runSim(spec RunSpec, ops variantOps) (Result, error) {
	g := spec.Graph
	n := g.N()
	begin := time.Now()
	net := sim.NewNetwork(g, ops.factory, spec.Seed)
	if spec.DropRate > 0 {
		net.SetDropRate(spec.DropRate)
	}
	procs, res0, ok := buildInitial(spec, ops, net.Process)
	if !ok {
		return res0, nil
	}

	maxRounds := spec.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200*n + 20000
	}
	// The stability window. Static schedules get the one fixed value;
	// with adaptive backoff the requirement is time-varying, so the
	// static floor is the un-backed-off window (base suppression
	// schedule) and windowFn reads the deepest tier currently in effect
	// — a network whose tiers never deepened (or just reset on a fault)
	// certifies on the base window instead of waiting out the cap.
	quiesceRetry := ops.cfg.EffectiveRetryPeriod()
	var windowFn func() int
	if ops.cfg.BackoffSearches {
		flat := ops.cfg
		flat.BackoffSearches = false
		quiesceRetry = flat.EffectiveRetryPeriod()
		windowFn = func() int {
			return QuiesceWindowRounds(n, net.MaxRetryPeriod(quiesceRetry))
		}
	}
	quiesceRounds := QuiesceWindowRounds(n, quiesceRetry)

	// Per-round hooks compose: safety tracking, audit round stamping and
	// metrics sampling all ride the one OnRound callback (every hook
	// runs; any false return stops the run, as before).
	var hooks []func(int) bool
	broken := 0
	if spec.TrackSafety {
		formed := false
		hooks = append(hooks, func(int) bool {
			if _, err := ops.tree(g, procs); err != nil {
				if formed {
					broken++
				}
			} else {
				formed = true
			}
			return true
		})
	}
	rec := auditRecorder(spec, ops, procs)
	if rec != nil {
		hooks = append(hooks, func(r int) bool {
			// OnRound(r) fires after round r completed; mutations observed
			// next belong to round r+1 (round 0 is the recorder's default).
			rec.SetRound(r + 1)
			return true
		})
	}
	var sample func(epoch uint64)
	if collect := spec.Collect; collect != nil {
		// All reads below are pure: LastFingerprint/StateVersions touch
		// neither the fingerprint cache nor its recompute counters, so
		// sampling cannot perturb the committed deterministic baselines.
		stride := 1
		if collect.Every > 1 {
			stride = collect.Every
		}
		window := (quiesceRounds + stride - 1) / stride
		var prevVers []uint64
		var prevFP uint64
		var lastEpoch uint64
		streak, have := 0, false
		sample = func(epoch uint64) {
			// Never observe the same epoch twice: a re-sample of an
			// unchanged state would fabricate a complete version-vector
			// fill for a run that merely stopped (MaxRounds).
			if have && epoch <= lastEpoch {
				return
			}
			lastEpoch = epoch
			vers := net.StateVersions()
			fp := net.LastFingerprint()
			var deficit int64
			for _, k := range ops.kinds {
				deficit += int64(net.PendingKind(k))
			}
			fill := 0.0
			if have && len(vers) == len(prevVers) && len(vers) > 0 {
				held := 0
				for i, v := range vers {
					if v == prevVers[i] {
						held++
					}
				}
				fill = float64(held) / float64(len(vers))
			}
			if have && fp == prevFP && fill == 1 && deficit == 0 {
				streak++
			} else {
				streak = 0
			}
			prevVers, prevFP, have = vers, fp, true

			sentByKind := make(map[string]int64, len(net.Metrics().SentByKind))
			var sentTotal int64
			for k, v := range net.Metrics().SentByKind {
				sentByKind[k] = v
				sentTotal += v
			}
			hist, maxDeg := degreeHist(ops.degrees(procs))
			st := ops.stats(procs)
			retry := 0
			if ops.cfg.SuppressSearches {
				retry = ops.cfg.EffectiveRetryPeriod()
				if ops.cfg.BackoffSearches {
					// Live per-node tiers: the snapshot series records the
					// retry spacing climbing toward the cap as the network
					// goes silent (statically suppressed runs report the
					// flat window).
					retry = net.MaxRetryPeriod(retry)
				}
			}
			collect.Add(metrics.Snapshot{
				Epoch:       epoch,
				Nodes:       n,
				SentTotal:   sentTotal,
				SentByKind:  sentByKind,
				DegreeHist:  hist,
				MaxDegree:   maxDeg,
				Exchanges:   st.Exchanges,
				Aborts:      st.Aborts,
				Suppressed:  st.Suppressed,
				Deblocks:    st.Deblocks,
				VersionFill: fill,
				Deficit:     deficit,
				Stable:      streak,
				Window:      window,
				Fingerprint: fp,
				RetryPeriod: retry,
			})
		}
		hooks = append(hooks, func(r int) bool {
			if collect.Due(r) {
				sample(uint64(r + 1))
			}
			return true
		})
	}
	var onRound func(int) bool
	if len(hooks) > 0 {
		onRound = func(r int) bool {
			cont := true
			for _, h := range hooks {
				if !h(r) {
					cont = false
				}
			}
			return cont
		}
	}
	var res sim.RunResult
	if spec.engine() == EngineEvent {
		res = net.RunEvents(sim.EventConfig{
			Policy:        EventPolicyFor(spec.Scheduler),
			MaxRounds:     maxRounds,
			QuiesceRounds: quiesceRounds,
			QuiesceWindow: windowFn,
			ActiveKinds:   ops.kinds,
			OnRound:       onRound,
		})
	} else {
		res = net.Run(sim.RunConfig{
			Scheduler:     NewScheduler(spec.Scheduler),
			MaxRounds:     maxRounds,
			QuiesceRounds: quiesceRounds,
			QuiesceWindow: windowFn,
			ActiveKinds:   ops.kinds,
			OnRound:       onRound,
		})
	}

	if sample != nil {
		// Final observation: the converged round itself never fires
		// OnRound (the run loop returns on quiescence first), so the
		// stream always ends with the quiesced state — a converged run's
		// last snapshot shows a complete version-vector fill, a run cut
		// off by MaxRounds a partial one.
		sample(uint64(res.Rounds))
	}
	st := ops.stats(procs)
	out := Result{
		Backend:            BackendSim,
		Converged:          res.Converged,
		Rounds:             res.Rounds,
		LastChange:         res.LastChangeRound,
		Legit:              ops.legit(g, procs),
		Metrics:            net.Metrics(),
		MaxStateBits:       net.MaxStateBits(),
		BrokenRounds:       broken,
		Dropped:            net.Dropped(),
		Exchanges:          st.Exchanges,
		Aborts:             st.Aborts,
		SearchesSuppressed: st.Suppressed,
		WallTime:           time.Since(begin),
	}
	if rec != nil {
		out.AuditChain = rec.ChainHead()
		out.AuditRecords = rec.Len()
	}
	for _, c := range out.Metrics.SentByKind {
		out.TotalMessages += c
	}
	if res.Converged {
		// The sim backend's certificate, assembled from the quiesced
		// state the run loop already computed: no extra hashing, so the
		// deterministic FingerprintRecomputes figure of merit (and every
		// serialized result) is unchanged by certification. Active-kind
		// counters are equal by construction — Run only declares
		// quiescence once the active kinds drained.
		var activeSent int64
		for _, k := range ops.kinds {
			activeSent += out.Metrics.SentByKind[k]
		}
		certWindow := quiesceRounds
		if windowFn != nil {
			// The adaptive requirement actually held at certification: the
			// floor raised to the deepest backoff tier in effect.
			if w := windowFn(); w > certWindow {
				certWindow = w
			}
		}
		out.Cert = &detect.Certificate{
			Backend:     string(BackendSim),
			Epoch:       uint64(res.Rounds),
			Window:      certWindow,
			Versions:    net.StateVersions(),
			Fingerprint: net.LastFingerprint(),
			Sent:        activeSent,
			Received:    activeSent,
		}
	}
	if t, err := ops.tree(g, procs); err == nil {
		out.Tree = t
	}
	return out, nil
}

// MustRun is Run for statically known-good specs (examples, benchmarks,
// experiment tables with hard-coded parameters): a spec error is a
// programmer error and panics.
func MustRun(spec RunSpec) Result {
	res, err := Run(spec)
	if err != nil {
		panic(err)
	}
	return res
}

// Preload writes a legitimate configuration into the nodes: the
// stabilized BFS-rooted tree reduced to a Fürer–Raghavachari fixed point,
// with coherent distances, dmax, submax, colors and views. It is the
// configuration the protocol itself converges to (up to tie-breaking),
// used as the starting point of closure and fault-recovery runs.
func Preload(g *graph.Graph, nodes []*core.Node, cfg core.Config) error {
	tree, err := PreloadTree(g)
	if err != nil {
		return err
	}
	return PreloadFromTree(g, nodes, cfg, tree)
}

// PreloadFromTree writes the legitimate configuration induced by the
// given spanning tree into the nodes: coherent parents, distances,
// dmax/submax/colors and views, exactly as Preload does for the
// Fürer–Raghavachari tree. The tree must be a fixed point for the
// resulting configuration to satisfy the full legitimacy predicate.
func PreloadFromTree(g *graph.Graph, nodes []*core.Node, cfg core.Config, tree *spanning.Tree) error {
	k := tree.MaxDegree()
	deg := tree.Degrees()
	// submax per node: max degree within its subtree.
	submax := make([]int, g.N())
	order := depthOrder(tree)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		submax[v] = deg[v]
		for _, c := range tree.Children(v) {
			if submax[c] > submax[v] {
				submax[v] = submax[c]
			}
		}
	}
	for i, nd := range nodes {
		parent := tree.Parent(i)
		nd.SetState(0, parent, tree.Depth(i), k, submax[i], false)
	}
	for i, nd := range nodes {
		for _, u := range g.Neighbors(i) {
			nd.SetView(u, core.View{
				Root:     0,
				Parent:   tree.Parent(u),
				Distance: tree.Depth(u),
				Dmax:     k,
				Submax:   submax[u],
				Deg:      deg[u],
				Color:    false,
			})
		}
	}
	return nil
}

// PreloadTree returns the deterministic legitimate tree that Preload
// writes into the nodes: the BFS tree rooted at node 0 reduced to a
// Fürer–Raghavachari fixed point. Targeted-fault models use it to pick
// role nodes (root, deepest leaf, ...) consistent with the preloaded
// configuration.
func PreloadTree(g *graph.Graph) (*spanning.Tree, error) {
	tree := spanning.BFSTree(g, 0)
	// Reduce to a fixed point with the same sequential semantics.
	if err := reduceToFixedPoint(tree); err != nil {
		return nil, err
	}
	return tree, nil
}

// PathTree returns the canonical Hamiltonian-path spanning tree
// parent(i) = i-1 rooted at node 0 (the StartPath preload). It errors
// when the graph is missing any path edge {i-1, i} — only the
// ring-based families guarantee them by construction. Degree 2 is the
// global optimum for any spanning tree, so the path is trivially a
// Fürer–Raghavachari fixed point: no sequential reduction is needed,
// which keeps the preload O(n) at sizes where reduceToFixedPoint is
// far too slow.
func PathTree(g *graph.Graph) (*spanning.Tree, error) {
	parent := make([]int, g.N())
	for i := 1; i < g.N(); i++ {
		parent[i] = i - 1
	}
	tree, err := spanning.NewFromParents(g, parent, 0)
	if err != nil {
		return nil, fmt.Errorf("harness: graph has no canonical Hamiltonian path: %w", err)
	}
	return tree, nil
}

// depthOrder returns the nodes sorted by increasing depth (parents before
// children).
func depthOrder(t *spanning.Tree) []int {
	n := t.Graph().N()
	order := make([]int, 0, n)
	queue := []int{t.Root()}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		queue = append(queue, t.Children(v)...)
	}
	return order
}

// reduceToFixedPoint applies the sequential local search.
func reduceToFixedPoint(t *spanning.Tree) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("harness: preload tree invalid: %w", err)
	}
	mdstseq.FurerRaghavachari(t)
	return nil
}
