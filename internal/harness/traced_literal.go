package harness

import (
	"math/rand"

	"mdst/internal/core"
	"mdst/internal/paperproto"
	"mdst/internal/sim"
	"mdst/internal/trace"
)

// RunTracedLiteral is RunTraced for the literal-choreography variant.
// The series has the same columns as RunTraced's, with the "reversals"
// column counting Remove+Back reorientation traffic instead of core's
// Reverse chain messages, so the two variants' figure series can be
// plotted side by side (figure F-conv, E11's time-resolved view).
func RunTracedLiteral(spec RunSpec, every int) (Result, *trace.Series) {
	if spec.backend() != BackendSim {
		panic("harness: RunTracedLiteral requires the sim backend")
	}
	if every <= 0 {
		every = 1
	}
	g := spec.Graph
	n := g.N()
	cfg := spec.Config
	if cfg.MaxDist == 0 {
		cfg = paperproto.DefaultConfig(n)
	}
	if spec.Suppress {
		cfg.SuppressSearches = true
	}
	net := paperproto.BuildNetwork(g, cfg, spec.Seed)
	nodes := paperproto.NodesOf(net)
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))

	switch spec.Start {
	case StartCorrupt:
		for _, nd := range nodes {
			nd.Corrupt(rng, n)
		}
	case StartLegitimate:
		if err := PreloadLiteral(g, nodes, cfg); err != nil {
			return Result{Legit: core.Legitimacy{Detail: err.Error()}}, nil
		}
		perm := rng.Perm(n)
		for i := 0; i < spec.CorruptNodes && i < n; i++ {
			nodes[perm[i]].Corrupt(rng, n)
		}
	}

	series := trace.NewSeries("run",
		"round", "treeDeg", "roots", "dmaxAgree", "pending", "reversals")
	sample := func(round int) {
		treeDeg := -1.0
		agree := 0.0
		if tree, err := paperproto.ExtractTree(g, nodes); err == nil {
			treeDeg = float64(tree.MaxDegree())
			for _, nd := range nodes {
				if nd.Dmax() == tree.MaxDegree() {
					agree++
				}
			}
		}
		roots := 0.0
		for _, nd := range nodes {
			if nd.Parent() == nd.ID() {
				roots++
			}
		}
		reorient := net.Metrics().SentByKind[paperproto.KindRemove] +
			net.Metrics().SentByKind[paperproto.KindBack]
		series.Append(float64(round), treeDeg, roots, agree,
			float64(net.Pending()), float64(reorient))
	}
	sample(0)

	maxRounds := spec.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200*n + 20000
	}
	res := net.Run(sim.RunConfig{
		Scheduler:     NewScheduler(spec.Scheduler),
		MaxRounds:     maxRounds,
		QuiesceRounds: QuiesceWindowRounds(n, cfg.EffectiveRetryPeriod()),
		ActiveKinds:   paperproto.ReductionKinds(),
		OnRound: func(r int) bool {
			if (r+1)%every == 0 {
				sample(r + 1)
			}
			return true
		},
	})

	leg := paperproto.CheckLegitimacy(g, nodes)
	out := Result{
		Backend:    BackendSim,
		Converged:  res.Converged,
		Rounds:     res.Rounds,
		LastChange: res.LastChangeRound,
		Legit: core.Legitimacy{
			TreeValid:   leg.TreeValid,
			RootIsMin:   leg.RootIsMin,
			DistancesOK: leg.DistancesOK,
			ViewsOK:     leg.ViewsOK,
			DmaxOK:      leg.DmaxOK,
			FixedPoint:  leg.FixedPoint,
			MaxDegree:   leg.MaxDegree,
			Detail:      leg.Detail,
		},
		Metrics:      net.Metrics(),
		MaxStateBits: net.MaxStateBits(),
	}
	for _, c := range out.Metrics.SentByKind {
		out.TotalMessages += c
	}
	if t, err := paperproto.ExtractTree(g, nodes); err == nil {
		out.Tree = t
	}
	return out, series
}
