package harness

import (
	"fmt"
	"time"

	"mdst/internal/core"
	"mdst/internal/netrun"
	"mdst/internal/sim"
)

// Backend selects the execution target of a run. All backends execute
// the same protocol processes over the same workload graph with the
// same initial configuration (corruptions are drawn from the run seed
// regardless of backend); they differ in who drives the processes.
type Backend string

// Execution backends.
const (
	// BackendSim is the deterministic seeded simulator (sim.Network) —
	// the default, and the only backend whose results are bit-reproducible
	// (rounds, messages and trees depend solely on the spec and seed).
	BackendSim Backend = "sim"
	// BackendLive is the goroutine-per-node CSP runtime (sim.LiveNetwork):
	// real concurrency over Go channels, quiescence detected by probing
	// the incremental fingerprint concurrently with execution. Wall-clock
	// nondeterministic; the legitimacy predicate and the Δ*+1 degree
	// guarantee are the reproducible claims.
	BackendLive Backend = "live"
	// BackendTCP runs one process per node over loopback TCP sockets
	// (internal/netrun), one connection per edge — the paper's
	// asynchronous reliable-FIFO model on an actual network stack. Also
	// wall-clock nondeterministic.
	BackendTCP Backend = "tcp"
)

// Backends returns all execution backends in display order.
func Backends() []Backend { return []Backend{BackendSim, BackendLive, BackendTCP} }

// ParseBackend resolves a backend name (sim|live|tcp); the empty string
// is the sim default.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", string(BackendSim):
		return BackendSim, nil
	case string(BackendLive):
		return BackendLive, nil
	case string(BackendTCP):
		return BackendTCP, nil
	}
	return "", fmt.Errorf("harness: unknown backend %q (want sim|live|tcp)", s)
}

// Deterministic reports whether the backend's full result (rounds,
// messages, tree shape) is a pure function of the spec and seed.
func (b Backend) Deterministic() bool { return b == BackendSim || b == "" }

// BackendTuning tunes the wall-clock backends (live, tcp); the sim
// backend ignores it entirely, so it never perturbs deterministic
// results. Zero values select per-backend defaults.
type BackendTuning struct {
	// Tick is the gossip period of each node's "do forever" loop
	// (live default 200µs, tcp default 2ms).
	Tick time.Duration
	// Probe is the live backend's fingerprint probe interval (default
	// 2ms) and the tcp backend's run-phase length between legitimacy
	// inspections (default 150ms).
	Probe time.Duration
	// Deadline is the total wall-clock budget of the run (default 30s).
	// A run that is not legitimate at the deadline reports
	// Converged=false.
	Deadline time.Duration
}

func (t BackendTuning) deadline() time.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return 30 * time.Second
}

// runLive executes the spec on the goroutine-per-node runtime. The
// driver alternates quiescence-detection bursts (concurrent fingerprint
// probing, O(changed) per probe) with legitimacy checks on the stopped
// network, until the configuration is legitimate or the deadline lapses:
// fingerprint stability is a heuristic — messages buffered in channels
// are invisible to the probe — so legitimacy on the quiesced state is
// what declares convergence, mirroring Theorem 1's closure argument.
func runLive(spec RunSpec, ops variantOps) (Result, error) {
	g := spec.Graph
	n := g.N()
	tick := spec.Tuning.Tick
	if tick <= 0 {
		tick = 200 * time.Microsecond
	}
	probe := spec.Tuning.Probe
	if probe <= 0 {
		probe = 2 * time.Millisecond
	}

	begin := time.Now()
	ln := sim.NewLiveNetwork(g, ops.factory, sim.LiveConfig{TickInterval: tick})
	procs, res0, ok := buildInitial(spec, ops, ln.Process)
	if !ok {
		return res0, nil
	}

	// The stability window mirrors the sim backend's QuiesceRounds
	// formula, converted from rounds to wall time via the tick period: it
	// must cover a full jittered search retry period or a slow-searching
	// configuration is declared quiescent before its reduction fires.
	window := time.Duration(2*n+40+2*ops.cfg.SearchPeriod) * tick
	stable := int(window/probe) + 1

	deadline := begin.Add(spec.Tuning.deadline())
	probes := 0
	var leg core.Legitimacy
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			break
		}
		p, quiesced := ln.RunUntilQuiescent(sim.QuiesceConfig{
			ProbeInterval: probe,
			StableProbes:  stable,
			MaxWait:       remain,
		})
		probes += p
		leg = ops.legit(g, procs)
		if quiesced && leg.OK() {
			break
		}
	}
	if probes == 0 {
		// Degenerate budget: the loop never ran, so judge the untouched
		// initial configuration.
		leg = ops.legit(g, procs)
	}
	// Legitimacy at exit decides convergence — same contract as the tcp
	// driver and the Tuning.Deadline doc. Quiescence only ends the loop
	// early; a run that turns legitimate right at the deadline, before a
	// full stability window elapses, still converged.
	converged := leg.OK()

	exch, aborts := ops.stats(procs)
	out := Result{
		Backend:       BackendLive,
		Converged:     converged,
		Rounds:        probes,
		LastChange:    probes,
		Legit:         leg,
		TotalMessages: ln.Sent(),
		MaxStateBits:  sim.MaxStateBitsOf(procs),
		Exchanges:     exch,
		Aborts:        aborts,
		WallTime:      time.Since(begin),
	}
	if t, err := ops.tree(g, procs); err == nil {
		out.Tree = t
	}
	return out, nil
}

// runTCP executes the spec on the loopback TCP cluster. Process state is
// only inspectable while the cluster is stopped, so the driver uses the
// restartable run-phase loop: run for a phase, stop, check legitimacy,
// resume — for a self-stabilizing protocol the restarts are just more
// asynchrony (in-flight messages are lost and must be tolerated).
func runTCP(spec RunSpec, ops variantOps) (Result, error) {
	g := spec.Graph
	phase := spec.Tuning.Probe
	if phase <= 0 {
		phase = 150 * time.Millisecond
	}
	maxPhases := int(spec.Tuning.deadline() / phase)
	if maxPhases < 1 {
		maxPhases = 1
	}

	begin := time.Now()
	c := netrun.NewCluster(g, ops.factory, netrun.Config{TickInterval: spec.Tuning.Tick})
	procs, res0, ok := buildInitial(spec, ops, c.Process)
	if !ok {
		return res0, nil
	}

	phases := 0
	var leg core.Legitimacy
	ok, err := c.RunUntil(phase, maxPhases, func() bool {
		phases++
		leg = ops.legit(g, procs)
		return leg.OK()
	})
	if err != nil {
		// Unlike the in-process backends, TCP execution itself can fail
		// (listen/dial); surface it as the run's error.
		return Result{Backend: BackendTCP}, fmt.Errorf("harness: tcp backend: %w", err)
	}

	exch, aborts := ops.stats(procs)
	out := Result{
		Backend:       BackendTCP,
		Converged:     ok,
		Rounds:        phases,
		LastChange:    phases,
		Legit:         leg,
		TotalMessages: c.Sent(),
		MaxStateBits:  sim.MaxStateBitsOf(procs),
		Dropped:       c.Dropped(),
		Exchanges:     exch,
		Aborts:        aborts,
		WallTime:      time.Since(begin),
	}
	if t, err := ops.tree(g, procs); err == nil {
		out.Tree = t
	}
	return out, nil
}
