package harness

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"mdst/internal/auditlog"
	"mdst/internal/core"
	"mdst/internal/detect"
	"mdst/internal/graph"
	"mdst/internal/metrics"
	"mdst/internal/netrun"
	"mdst/internal/sim"
)

// Backend selects the execution target of a run. All backends execute
// the same protocol processes over the same workload graph with the
// same initial configuration (corruptions are drawn from the run seed
// regardless of backend); they differ in who drives the processes.
type Backend string

// Execution backends.
const (
	// BackendSim is the deterministic seeded simulator (sim.Network) —
	// the default, and the only backend whose results are bit-reproducible
	// (rounds, messages and trees depend solely on the spec and seed).
	BackendSim Backend = "sim"
	// BackendLive is the goroutine-per-node CSP runtime (sim.LiveNetwork):
	// real concurrency over Go channels, convergence detected in-band by
	// feeding concurrent fingerprint/version probes to internal/detect
	// until a quiescence certificate is issued. Wall-clock
	// nondeterministic; the legitimacy predicate and the Δ*+1 degree
	// guarantee are the reproducible claims.
	BackendLive Backend = "live"
	// BackendTCP runs one process per node over loopback TCP sockets
	// (internal/netrun), one connection per edge — the paper's
	// asynchronous reliable-FIFO model on an actual network stack.
	// Convergence is detected over a side-channel control connection
	// (netrun.ProbeConn), so the driver never stops the cluster just to
	// look for quiescence. Also wall-clock nondeterministic.
	BackendTCP Backend = "tcp"
)

// Backends returns all execution backends in display order.
func Backends() []Backend { return []Backend{BackendSim, BackendLive, BackendTCP} }

// ParseBackend resolves a backend name (sim|live|tcp); the empty string
// is the sim default.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", string(BackendSim):
		return BackendSim, nil
	case string(BackendLive):
		return BackendLive, nil
	case string(BackendTCP):
		return BackendTCP, nil
	}
	return "", fmt.Errorf("harness: unknown backend %q (want sim|live|tcp)", s)
}

// Deterministic reports whether the backend's full result (rounds,
// messages, tree shape) is a pure function of the spec and seed.
func (b Backend) Deterministic() bool { return b == BackendSim || b == "" }

// ErrTuning is the named error wrapped by every BackendTuning
// validation failure (errors.Is-matchable).
var ErrTuning = errors.New("invalid backend tuning")

// BackendTuning tunes the wall-clock backends (live, tcp); the sim
// backend ignores it entirely, so it never perturbs deterministic
// results. Zero durations select per-backend defaults; negative values
// are invalid and fail Validate loudly (they used to be silently
// replaced by defaults, or to hang a ticker).
type BackendTuning struct {
	// Tick is the gossip period of each node's "do forever" loop
	// (live default 200µs, tcp default 2ms).
	Tick time.Duration
	// Probe is the convergence-detection sampling interval: how often
	// the driver takes one detect.Sample (live default 2ms over the
	// in-process probe, tcp default 25ms over the control connection).
	Probe time.Duration
	// Deadline is the total wall-clock budget of the run (default 30s).
	// A run that is not legitimate at the deadline reports
	// Converged=false. A positive Deadline takes precedence over
	// Budget.
	Deadline time.Duration
	// BatchSize caps how many protocol messages the tcp backend's
	// per-direction edge writers coalesce into one wire frame
	// (netrun.Config.BatchSize; default 1 — the pre-batching
	// one-frame-per-message format, byte-compatible on the wire). The
	// live backend has no wire to frame and ignores both batch knobs.
	BatchSize int
	// BatchMaxWait bounds how long the tcp backend may hold a partially
	// filled frame open for further messages (netrun.Config.BatchMaxWait;
	// 0: flush immediately with whatever is queued, adding no latency).
	// A positive wait stretches the quiescence stability window — see
	// resolveWall — so certificates still cover the slowed retries.
	BatchMaxWait time.Duration
	// Budget switches the deadline to convergence-aware mode: when
	// positive (and Deadline is zero), the driver first executes the
	// paired deterministic sim run — same spec, same seed, so the
	// identical workload and corruptions — and scales its observed
	// convergence rounds into this run's wall-clock deadline:
	// Budget × rounds × tick, floored at twice the certificate
	// stability window plus startup slack. This is what lets wall-clock
	// matrix cells grow past toy sizes without a one-size-fits-all 30s
	// budget. If the paired sim run does not converge, the driver falls
	// back to the 30s default.
	Budget float64
}

// Validate checks the tuning for values that would otherwise hang,
// spin, or be silently replaced. Every failure wraps ErrTuning.
func (t BackendTuning) Validate() error {
	if t.Tick < 0 {
		return fmt.Errorf("harness: %w: negative Tick %v", ErrTuning, t.Tick)
	}
	if t.Probe < 0 {
		return fmt.Errorf("harness: %w: negative Probe %v", ErrTuning, t.Probe)
	}
	if t.Deadline < 0 {
		return fmt.Errorf("harness: %w: negative Deadline %v", ErrTuning, t.Deadline)
	}
	if t.Budget < 0 || math.IsNaN(t.Budget) || math.IsInf(t.Budget, 0) {
		return fmt.Errorf("harness: %w: Budget %v out of range", ErrTuning, t.Budget)
	}
	if t.BatchSize < 0 {
		return fmt.Errorf("harness: %w: negative BatchSize %d", ErrTuning, t.BatchSize)
	}
	if t.BatchMaxWait < 0 {
		return fmt.Errorf("harness: %w: negative BatchMaxWait %v", ErrTuning, t.BatchMaxWait)
	}
	return nil
}

func (t BackendTuning) deadline() time.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return 30 * time.Second
}

// wallParams are a wall-clock driver's resolved knobs.
type wallParams struct {
	tick     time.Duration // gossip period
	unit     time.Duration // wall time of one protocol round (tick + frame hold)
	probe    time.Duration // detection sampling interval
	window   time.Duration // stability window the certificate must cover
	stable   int           // consecutive stable probes = window/probe
	deadline time.Duration // total wall-clock budget
}

// resolveWall turns the spec's tuning into driver parameters. The
// stability window mirrors the sim backend's QuiesceRounds formula,
// converted from rounds to wall time via the wall cost of one protocol
// round: the tick period, stretched by BatchMaxWait when the transport
// may hold a frame open that long (a batched retry can lag a full hold
// behind its tick, and a window counted in bare ticks would certify a
// slow-searching configuration quiescent mid-plateau, before its
// reduction fires). With Budget set (and no explicit Deadline) it
// executes the paired sim run to size the deadline.
func resolveWall(spec RunSpec, ops variantOps, tickDefault, probeDefault time.Duration) (wallParams, error) {
	p := wallParams{tick: spec.Tuning.Tick, probe: spec.Tuning.Probe}
	if p.tick <= 0 {
		p.tick = tickDefault
	}
	if p.probe <= 0 {
		p.probe = probeDefault
	}
	p.unit = p.tick + spec.Tuning.BatchMaxWait
	// With adaptive backoff (Config.BackoffSearches) the retry spacing is
	// time-varying per node, but a wall-clock driver cannot scan node
	// tiers behind goroutines or sockets, so EffectiveRetryPeriod returns
	// the conservative static bound (BackoffCapWindow) and the stability
	// window — and through it the Budget deadline floor — covers the
	// deepest tier. The sim backend's dynamic window is the optimization;
	// wall backends pay the cap for soundness.
	p.window = time.Duration(QuiesceWindowRounds(spec.Graph.N(), ops.cfg.EffectiveRetryPeriod())) * p.unit
	p.stable = int(p.window/p.probe) + 1
	p.deadline = spec.Tuning.Deadline
	if p.deadline == 0 && spec.Tuning.Budget > 0 {
		d, err := budgetDeadline(spec, ops, p)
		if err != nil {
			return p, err
		}
		p.deadline = d
	}
	if p.deadline <= 0 {
		p.deadline = spec.Tuning.deadline()
	}
	return p, nil
}

// budgetKey identifies a paired sim instance for the budget cache: it
// captures every input the deterministic sim result depends on for a
// wall-clock spec (DropRate/TrackSafety/MaxRounds are rejected on
// wall-clock backends, so they are always zero here).
type budgetKey struct {
	seed         int64
	start        StartMode
	variant      Variant
	corruptNodes int
	targets      string
	cfg          core.Config
	graph        uint64
}

// budgetRounds caches pairedSimRounds results so a matrix running both
// wall-clock backends (and possibly the sim backend itself) over the
// same paired instance pays for the sim pairing once per process, not
// once per wall-clock cell. One small entry per distinct instance.
var budgetRounds sync.Map // budgetKey -> int (rounds; -1: did not converge)

// graphHash folds the exact topology into the budget key.
func graphHash(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	write(g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			write(v)
		}
		write(-1)
	}
	return h.Sum64()
}

// pairedSimRounds executes (or recalls) the paired deterministic sim
// instance — same spec and seed, so the same graph and corruptions; run
// seeds already exclude the backend axis — and reports its observed
// convergence rounds, -1 when it did not converge. Deterministic, so a
// cache hit returns exactly what a re-run would.
func pairedSimRounds(spec RunSpec, ops variantOps) (int, error) {
	key := budgetKey{
		seed:         spec.Seed,
		start:        spec.Start,
		variant:      spec.Variant,
		corruptNodes: spec.CorruptNodes,
		targets:      fmt.Sprint(spec.CorruptTargets),
		cfg:          ops.cfg,
		graph:        graphHash(spec.Graph),
	}
	if v, ok := budgetRounds.Load(key); ok {
		return v.(int), nil
	}
	simSpec := spec
	simSpec.Backend = BackendSim
	simSpec.Tuning = BackendTuning{}
	res, err := Run(simSpec)
	if err != nil {
		return 0, fmt.Errorf("harness: budget pairing: %w", err)
	}
	rounds := -1
	if res.Converged {
		rounds = res.Rounds
	}
	budgetRounds.Store(key, rounds)
	return rounds, nil
}

// budgetDeadline scales the paired sim run's convergence rounds into a
// wall-clock budget. Returns zero (caller defaults) when the sim run
// does not converge.
func budgetDeadline(spec RunSpec, ops variantOps, p wallParams) (time.Duration, error) {
	rounds, err := pairedSimRounds(spec, ops)
	if err != nil {
		return 0, err
	}
	if rounds < 0 {
		return 0, nil
	}
	d := time.Duration(spec.Tuning.Budget * float64(rounds) * float64(p.unit))
	if min := 2*p.window + 250*time.Millisecond; d < min {
		d = min
	}
	return d, nil
}

// auditRecorder builds the run's audit recorder and installs its
// mutation hooks, nil when auditing is off. Must be called after
// buildInitial: the initial (possibly corrupted) configuration is the
// run's premise, only run-time mutations are chained.
func auditRecorder(spec RunSpec, ops variantOps, procs []sim.Process) *auditlog.Recorder {
	if !spec.Audit {
		return nil
	}
	n := spec.Graph.N()
	rec := auditlog.NewRecorder(n, auditlog.Genesis(spec.Seed, n))
	ops.attachAudit(procs, rec)
	return rec
}

// degreeHist folds per-node tree degrees into a histogram and maximum.
func degreeHist(degs []int) (hist []int, maxDeg int) {
	for _, d := range degs {
		if d > maxDeg {
			maxDeg = d
		}
	}
	hist = make([]int, maxDeg+1)
	for _, d := range degs {
		hist[d]++
	}
	return hist, maxDeg
}

// wallSnapshot shapes one wall-clock metrics observation from the
// detector's certificate progress and the transport's traffic counters.
// Node state (degrees, protocol stats) is not inspectable while a
// wall-clock backend runs, so in-flight snapshots carry traffic and
// detection fields only; the driver appends one final post-stop
// snapshot with the full per-node view (see wallFinalSnapshot).
func wallSnapshot(prog detect.Progress, nodes int, sentTotal int64, byKind map[string]int64) metrics.Snapshot {
	return metrics.Snapshot{
		Epoch:       prog.Epoch,
		Nodes:       nodes,
		SentTotal:   sentTotal,
		SentByKind:  byKind,
		VersionFill: prog.VersionFill,
		Deficit:     prog.Deficit,
		Stable:      prog.Stable,
		Window:      prog.Window,
		Fingerprint: prog.Fingerprint,
	}
}

// wallFinalSnapshot is the post-stop observation: the network is
// quiesced (or deadline-cut) and stopped, so per-node degrees and
// protocol event counters are safe to read and complete the stream.
func wallFinalSnapshot(prog detect.Progress, ops variantOps, procs []sim.Process, sentTotal int64, byKind map[string]int64) metrics.Snapshot {
	s := wallSnapshot(prog, len(procs), sentTotal, byKind)
	s.DegreeHist, s.MaxDegree = degreeHist(ops.degrees(procs))
	st := ops.stats(procs)
	s.Exchanges = st.Exchanges
	s.Aborts = st.Aborts
	s.Suppressed = st.Suppressed
	s.Deblocks = st.Deblocks
	return s
}

// runLive executes the spec on the goroutine-per-node runtime. The
// driver samples the network in-band (concurrent fingerprint + version
// probes, O(changed) per probe) and feeds a detect.Detector; once a
// quiescence certificate is issued it stops the network and verifies
// the legitimacy predicate — the certificate attests observed
// stability, legitimacy on the quiesced state is what declares
// convergence, mirroring Theorem 1's closure argument. A failed check
// resumes the run (counted in Result.Restarts) until the deadline.
func runLive(spec RunSpec, ops variantOps) (Result, error) {
	g := spec.Graph
	p, err := resolveWall(spec, ops, 200*time.Microsecond, 2*time.Millisecond)
	if err != nil {
		return Result{Backend: BackendLive}, err
	}

	begin := time.Now()
	collect := spec.Collect
	ln := sim.NewLiveNetwork(g, ops.factory, sim.LiveConfig{
		TickInterval: p.tick,
		ActiveKinds:  ops.kinds,
		CountKinds:   collect != nil,
	})
	procs, res0, ok := buildInitial(spec, ops, ln.Process)
	if !ok {
		return res0, nil
	}
	rec := auditRecorder(spec, ops, procs)

	det := detect.New(detect.Config{Window: p.stable, Backend: string(BackendLive)})
	deadline := begin.Add(p.deadline)
	var cert *detect.Certificate
	restarts := 0

	ln.Start()
	running := true
	ticker := time.NewTicker(p.probe)
	defer ticker.Stop()
	for cert == nil && time.Now().Before(deadline) {
		<-ticker.C
		c, issued := det.Observe(ln.ProbeSample())
		if collect != nil {
			// One detection observation = one metrics epoch; the stream
			// samples the detector's own progress plus the transport's
			// traffic counters (per-node state stays untouchable while
			// the network runs).
			if prog := det.Progress(); collect.Due(int(prog.Epoch) - 1) {
				collect.Add(wallSnapshot(prog, g.N(), ln.Sent(), ln.SentByKind()))
			}
		}
		if !issued {
			continue
		}
		ln.Stop()
		running = false
		if ops.legit(g, procs).OK() {
			cert = &c
			break
		}
		// Certified stability but not legitimacy (a pseudo-fixed point
		// outlasted the window): resume and re-establish stability.
		det.Reset()
		restarts++
		ln.Start()
		running = true
	}
	if running {
		ln.Stop()
	}
	// Legitimacy at exit decides convergence together with the
	// certificate — a certificate alone is stability, not correctness,
	// and legitimacy without certified quiescence (e.g. reached right at
	// the deadline) still counts, same contract as before the rebase.
	leg := ops.legit(g, procs)
	converged := leg.OK()

	if collect != nil {
		collect.Add(wallFinalSnapshot(det.Progress(), ops, procs, ln.Sent(), ln.SentByKind()))
	}
	st := ops.stats(procs)
	out := Result{
		Backend:            BackendLive,
		Converged:          converged,
		Rounds:             int(det.Epoch()),
		LastChange:         int(det.Epoch()),
		Legit:              leg,
		TotalMessages:      ln.Sent(),
		MaxStateBits:       sim.MaxStateBitsOf(procs),
		Exchanges:          st.Exchanges,
		Aborts:             st.Aborts,
		SearchesSuppressed: st.Suppressed,
		Cert:               cert,
		Restarts:           restarts,
		Deadline:           p.deadline,
		WallTime:           time.Since(begin),
	}
	if rec != nil {
		out.AuditChain = rec.ChainHead()
		out.AuditRecords = rec.Len()
	}
	if t, err := ops.tree(g, procs); err == nil {
		out.Tree = t
	}
	return out, nil
}

// runTCP executes the spec on the loopback TCP cluster. The driver
// watches for quiescence entirely in-band: it dials the cluster's
// side-channel control connection and feeds the probe samples (per-node
// quiescence epochs, combined fingerprint, active-kind deficit) to a
// detect.Detector, stopping the cluster only once — after a stable
// certificate — to verify legitimacy. On converging runs the cluster is
// therefore never restarted (Cluster.Restarts stays zero), replacing
// the old stop-the-world run-phase loop; a failed legitimacy check
// resumes the cluster, which for a self-stabilizing protocol is just
// more asynchrony.
func runTCP(spec RunSpec, ops variantOps) (Result, error) {
	g := spec.Graph
	p, err := resolveWall(spec, ops, 2*time.Millisecond, 25*time.Millisecond)
	if err != nil {
		return Result{Backend: BackendTCP}, err
	}

	begin := time.Now()
	collect := spec.Collect
	c := netrun.NewCluster(g, ops.factory, netrun.Config{
		TickInterval: p.tick,
		ActiveKinds:  ops.kinds,
		BatchSize:    spec.Tuning.BatchSize,
		BatchMaxWait: spec.Tuning.BatchMaxWait,
		CountKinds:   collect != nil,
	})
	procs, res0, ok := buildInitial(spec, ops, c.Process)
	if !ok {
		return res0, nil
	}
	rec := auditRecorder(spec, ops, procs)

	// Unlike the in-process backends, TCP execution itself can fail
	// (listen/dial); surface it as the run's error.
	if err := c.Start(); err != nil {
		return Result{Backend: BackendTCP}, fmt.Errorf("harness: tcp backend: %w", err)
	}
	probe, err := netrun.DialProbe(c.ControlAddr())
	if err != nil {
		c.Stop()
		return Result{Backend: BackendTCP}, fmt.Errorf("harness: tcp backend: %w", err)
	}

	det := detect.New(detect.Config{Window: p.stable, Backend: string(BackendTCP)})
	deadline := begin.Add(p.deadline)
	var cert *detect.Certificate

	running := true
	ticker := time.NewTicker(p.probe)
	defer ticker.Stop()
	for cert == nil && time.Now().Before(deadline) {
		<-ticker.C
		s, err := probe.Sample()
		if err != nil {
			probe.Close()
			c.Stop()
			return Result{Backend: BackendTCP}, fmt.Errorf("harness: tcp backend: %w", err)
		}
		crt, issued := det.Observe(s)
		if collect != nil {
			if prog := det.Progress(); collect.Due(int(prog.Epoch) - 1) {
				// Traffic counters ride the metrics request/reply pair on
				// the same control connection (one extra round trip per
				// due epoch); a failed fetch degrades the snapshot to
				// detection fields rather than failing the run.
				var total int64
				var byKind map[string]int64
				if ms, err := probe.Metrics(); err == nil {
					total = ms.SentTotal
					byKind = ms.SentByKind
				}
				collect.Add(wallSnapshot(prog, g.N(), total, byKind))
			}
		}
		if !issued {
			continue
		}
		probe.Close()
		c.Stop()
		running = false
		if ops.legit(g, procs).OK() {
			cert = &crt
			break
		}
		det.Reset()
		if err := c.Start(); err != nil {
			return Result{Backend: BackendTCP}, fmt.Errorf("harness: tcp backend: restart: %w", err)
		}
		running = true
		if probe, err = netrun.DialProbe(c.ControlAddr()); err != nil {
			c.Stop()
			return Result{Backend: BackendTCP}, fmt.Errorf("harness: tcp backend: %w", err)
		}
	}
	if running {
		probe.Close()
		c.Stop()
	}
	leg := ops.legit(g, procs)

	if collect != nil {
		// Post-stop: read the cluster's counters directly (the control
		// channel is down) and complete the stream with per-node state.
		collect.Add(wallFinalSnapshot(det.Progress(), ops, procs, c.Sent(), c.SentByKind()))
	}
	st := ops.stats(procs)
	out := Result{
		Backend:            BackendTCP,
		Converged:          leg.OK(),
		Rounds:             int(det.Epoch()),
		LastChange:         int(det.Epoch()),
		Legit:              leg,
		TotalMessages:      c.Sent(),
		MaxStateBits:       sim.MaxStateBitsOf(procs),
		Dropped:            c.Dropped(),
		Frames:             c.FramesWritten(),
		Exchanges:          st.Exchanges,
		Aborts:             st.Aborts,
		SearchesSuppressed: st.Suppressed,
		Cert:               cert,
		Restarts:           c.Restarts(),
		Deadline:           p.deadline,
		WallTime:           time.Since(begin),
	}
	if rec != nil {
		out.AuditChain = rec.ChainHead()
		out.AuditRecords = rec.Len()
	}
	if t, err := ops.tree(g, procs); err == nil {
		out.Tree = t
	}
	return out, nil
}
