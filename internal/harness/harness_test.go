package harness

import (
	"math/rand"
	"testing"

	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/sim"
)

func TestRunCleanStart(t *testing.T) {
	g := graph.Wheel(8)
	res := MustRun(RunSpec{Graph: g, Scheduler: SchedSync, Start: StartClean, Seed: 1})
	if !res.Converged || !res.Legit.OK() {
		t.Fatalf("clean run failed: %+v", res.Legit)
	}
	if res.Tree == nil || res.Tree.MaxDegree() > 3 {
		t.Fatalf("wheel degree: %v", res.Tree)
	}
	if res.TotalMessages == 0 || res.MaxStateBits == 0 {
		t.Fatal("metrics missing")
	}
}

func TestRunCorruptStart(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomGnp(16, 0.3, rng)
	res := MustRun(RunSpec{Graph: g, Scheduler: SchedAsync, Start: StartCorrupt, Seed: 2})
	if !res.Converged || !res.Legit.OK() {
		t.Fatalf("corrupt run failed: %+v", res.Legit)
	}
}

func TestRunLegitimateStartIsStableTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomGnp(14, 0.3, rng)
	res := MustRun(RunSpec{Graph: g, Scheduler: SchedSync, Start: StartLegitimate, Seed: 3})
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if !res.Legit.TreeValid || !res.Legit.RootIsMin {
		t.Fatalf("legitimate start lost the tree: %+v", res.Legit)
	}
}

func TestRunFaultRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomGeometric(20, 0.35, rng)
	res := MustRun(RunSpec{Graph: g, Scheduler: SchedSync, Start: StartLegitimate,
		CorruptNodes: 5, Seed: 4})
	if !res.Converged || !res.Legit.OK() {
		t.Fatalf("fault recovery failed: %+v", res.Legit)
	}
}

func TestPreloadIsLegitimate(t *testing.T) {
	g := graph.Grid(4, 4)
	cfg := core.DefaultConfig(16)
	net := core.BuildNetwork(g, cfg, 5)
	nodes := core.NodesOf(net)
	if err := Preload(g, nodes, cfg); err != nil {
		t.Fatal(err)
	}
	leg := core.CheckLegitimacy(g, nodes)
	if !leg.OK() {
		t.Fatalf("preload not legitimate: %+v", leg)
	}
	// Preloaded tree must be an FR fixed point.
	tree, err := core.ExtractTree(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !mdstseq.IsFixedPoint(tree) {
		t.Fatal("preload is not a fixed point")
	}
}

func TestNewScheduler(t *testing.T) {
	if _, ok := NewScheduler(SchedSync).(*sim.SyncScheduler); !ok {
		t.Fatal("sync")
	}
	if _, ok := NewScheduler(SchedAsync).(*sim.AsyncScheduler); !ok {
		t.Fatal("async")
	}
	if _, ok := NewScheduler(SchedAdversarial).(*sim.AdversarialScheduler); !ok {
		t.Fatal("adversarial")
	}
	if _, ok := NewScheduler("bogus").(*sim.SyncScheduler); !ok {
		t.Fatal("default")
	}
}

func TestTrackSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.RandomGnp(14, 0.35, rng)
	res := MustRun(RunSpec{Graph: g, Scheduler: SchedSync, Start: StartCorrupt,
		Seed: 6, TrackSafety: true})
	if !res.Legit.OK() {
		t.Fatalf("run failed: %+v", res.Legit)
	}
	// BrokenRounds excludes rounds before the first valid tree. A valid
	// snapshot can still appear mid root-competition, so a corrupted
	// start may count some late formation churn — but breakage must be a
	// strict minority of rounds.
	if res.BrokenRounds >= res.Rounds/2 {
		t.Fatalf("broken %d of %d rounds", res.BrokenRounds, res.Rounds)
	}

	// From a legitimate start the S3 exchange never breaks the tree:
	// every intermediate configuration of a chain move is a spanning
	// tree, and no formation churn can be misattributed.
	res = MustRun(RunSpec{Graph: g, Scheduler: SchedSync, Start: StartLegitimate,
		Seed: 6, TrackSafety: true})
	if res.BrokenRounds != 0 {
		t.Fatalf("S3 exchange broke the tree in %d rounds from a legitimate start", res.BrokenRounds)
	}
}

func TestRunRespectsMaxRounds(t *testing.T) {
	g := graph.Ring(8)
	res := MustRun(RunSpec{Graph: g, Scheduler: SchedSync, Start: StartCorrupt,
		Seed: 7, MaxRounds: 3})
	if res.Converged {
		t.Fatal("cannot converge in 3 rounds from corruption")
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds=%d", res.Rounds)
	}
}

func TestRunCustomConfig(t *testing.T) {
	g := graph.Wheel(8)
	cfg := core.DefaultConfig(8)
	cfg.DisableReduction = true
	res := MustRun(RunSpec{Graph: g, Config: cfg, Scheduler: SchedSync,
		Start: StartClean, Seed: 8})
	if !res.Converged {
		t.Fatal("no convergence")
	}
	// Reduction disabled: the tree is the BFS tree (degree 7), and the
	// fixed-point component of legitimacy fails by design.
	if res.Tree == nil || res.Tree.MaxDegree() != 7 {
		t.Fatalf("expected unreduced star tree, got %v", res.Tree)
	}
	if res.Legit.FixedPoint {
		t.Fatal("unreduced wheel tree cannot be a fixed point")
	}
}
