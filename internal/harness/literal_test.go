package harness

import (
	"math/rand"
	"testing"

	"mdst/internal/graph"
	"mdst/internal/paperproto"
)

func TestRunLiteralVariantConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomGnp(14, 0.35, rng)
	res := MustRun(RunSpec{
		Graph: g, Variant: VariantLiteral,
		Scheduler: SchedSync, Start: StartCorrupt, Seed: 5,
	})
	if !res.Converged {
		t.Fatalf("literal variant did not converge (rounds=%d)", res.Rounds)
	}
	if !res.Legit.OK() {
		t.Fatalf("not legitimate: %+v", res.Legit)
	}
	if res.Tree == nil {
		t.Fatal("no tree extracted")
	}
}

func TestRunLiteralFromLegitimate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomGnp(12, 0.4, rng)
	res := MustRun(RunSpec{
		Graph: g, Variant: VariantLiteral,
		Scheduler: SchedSync, Start: StartLegitimate,
		CorruptNodes: 2, Seed: 9, TrackSafety: true,
	})
	if !res.Converged || !res.Legit.OK() {
		t.Fatalf("recovery failed: converged=%v legit=%+v", res.Converged, res.Legit)
	}
}

func TestPreloadLiteralIsLegitimate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomGnp(10, 0.4, rng)
	cfg := paperproto.DefaultConfig(10)
	net := paperproto.BuildNetwork(g, cfg, 3)
	nodes := paperproto.NodesOf(net)
	if err := PreloadLiteral(g, nodes, cfg); err != nil {
		t.Fatal(err)
	}
	leg := paperproto.CheckLegitimacy(g, nodes)
	if !leg.OK() {
		t.Fatalf("preloaded configuration not legitimate: %+v", leg)
	}
}

func TestVariantDefaultIsCore(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomGnp(10, 0.4, rng)
	res := MustRun(RunSpec{Graph: g, Scheduler: SchedSync, Start: StartClean, Seed: 1})
	if !res.Converged || res.Tree == nil {
		t.Fatal("default (core) variant run failed")
	}
}

func TestRunTracedLiteralSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomGnp(12, 0.4, rng)
	res, series := RunTracedLiteral(RunSpec{
		Graph: g, Variant: VariantLiteral,
		Scheduler: SchedSync, Start: StartCorrupt, Seed: 4,
	}, 1)
	if !res.Converged || !res.Legit.OK() {
		t.Fatalf("traced literal run failed: %+v", res.Legit)
	}
	if series.Len() < 2 {
		t.Fatalf("series too short: %d", series.Len())
	}
	// The first sample of a corrupted start rarely has a valid tree; the
	// last sample must, and its treeDeg must equal the final degree.
	last := series.Row(series.Len() - 1)
	if int(last[1]) != res.Legit.MaxDegree {
		t.Fatalf("final series treeDeg %v != %d", last[1], res.Legit.MaxDegree)
	}
}
