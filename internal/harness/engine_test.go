package harness

import (
	"math/rand"
	"testing"

	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/sim"
)

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		err  bool
	}{
		{"", EngineCompat, false},
		{"compat", EngineCompat, false},
		{"event", EngineEvent, false},
		{"turbo", "", true},
	} {
		got, err := ParseEngine(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseEngine(%q) err = %v", tc.in, err)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseEngine(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if got := Engines(); len(got) != 2 || got[0] != EngineCompat || got[1] != EngineEvent {
		t.Errorf("Engines() = %v", got)
	}
}

func TestValidateRejectsEngineMisuse(t *testing.T) {
	g := graph.Ring(8)
	if err := (RunSpec{Graph: g, Engine: "warp"}).Validate(); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := (RunSpec{Graph: g, Engine: EngineEvent, Backend: BackendTCP}).Validate(); err == nil {
		t.Error("event engine accepted on a wall-clock backend")
	}
	if err := (RunSpec{Graph: g, Engine: EngineEvent, DropRate: 0.1}).Validate(); err == nil {
		t.Error("event engine accepted with lossy links")
	}
	if err := (RunSpec{Graph: g, Engine: EngineEvent}).Validate(); err != nil {
		t.Errorf("valid event spec rejected: %v", err)
	}
}

// The tentpole differential: on paired seeds the event core must reach
// the same legitimacy predicate and the same Δ*+1 degree bracket as the
// compat core — the schedules differ, the outcome claims may not.
func TestEventEngineMatchesCompatOutcome(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := map[string]*graph.Graph{
		"wheel": graph.Wheel(10),
		"grid":  graph.Grid(4, 4),
		"gnp":   graph.RandomGnp(12, 0.35, rng),
	}
	for name, g := range graphs {
		for _, sched := range []SchedulerKind{SchedSync, SchedAsync, SchedAdversarial} {
			for _, variant := range []Variant{VariantCore, VariantLiteral} {
				for seed := int64(1); seed <= 2; seed++ {
					spec := RunSpec{Graph: g, Scheduler: sched, Variant: variant,
						Start: StartCorrupt, Seed: seed}
					compat := MustRun(spec)
					spec.Engine = EngineEvent
					event := MustRun(spec)
					label := name + "/" + string(sched) + "/" + string(variant)
					if compat.Converged != event.Converged {
						t.Fatalf("%s seed %d: converged compat=%v event=%v",
							label, seed, compat.Converged, event.Converged)
					}
					if compat.Legit.OK() != event.Legit.OK() {
						t.Fatalf("%s seed %d: legit compat=%+v event=%+v",
							label, seed, compat.Legit, event.Legit)
					}
					star, ok := mdstseq.ExactDelta(g, 0)
					if ok && event.Legit.OK() && event.Legit.MaxDegree > star+1 {
						t.Fatalf("%s seed %d: event degree %d > Δ*+1 = %d",
							label, seed, event.Legit.MaxDegree, star+1)
					}
				}
			}
		}
	}
}

// Round-view equivalence on the event core. On a corrupt (or any
// still-moving) start the two cores take different — equally valid —
// asynchronous schedules, so only their OUTCOMES must agree
// (TestEventEngineMatchesCompatOutcome); the exact legacy delivery/tick
// replay is what EngineCompat is, and TestRunMatchesLegacyLoopReplica
// pins that byte for byte on wheel/grid/gnp. But at a protocol fixed
// point "parked" must mean "state no-op": the post-round fingerprint of
// every EXECUTED event round must equal the legacy full-sweep loop's
// fingerprint at the same round index, the fingerprint must hold still
// across fast-forwarded gaps, and the derived rounds/last-change
// counters must agree exactly — this is the contract that lets
// round-denominated outputs (windows, certificates) keep their meaning
// when most rounds are never executed.
func TestEventRoundViewMatchesLegacyLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	graphs := map[string]*graph.Graph{
		"ring":        graph.Ring(32),
		"wheel":       graph.Wheel(12), // rim 1..n-1 consecutive: canonical path exists
		"ring+chords": graph.RingWithChords(64, 32, rng),
	}
	for name, g := range graphs {
		for seed := int64(1); seed <= 2; seed++ {
			spec := RunSpec{Graph: g, Scheduler: SchedSync, Start: StartPath, Seed: seed}
			ops := variantFor(spec)
			window := QuiesceWindowRounds(g.N(), ops.cfg.EffectiveRetryPeriod())
			maxRounds := 200*g.N() + 20000

			netA := sim.NewNetwork(g, ops.factory, spec.Seed)
			if _, _, ok := buildInitial(spec, ops, netA.Process); !ok {
				t.Fatalf("%s seed %d: buildInitial failed", name, seed)
			}
			var fpsA []uint64 // fpsA[r] = fingerprint after legacy round r+1
			resA := netA.Run(sim.RunConfig{
				Scheduler: NewScheduler(spec.Scheduler), MaxRounds: maxRounds,
				QuiesceRounds: window, ActiveKinds: ops.kinds,
				OnRound: func(int) bool {
					fpsA = append(fpsA, netA.LastFingerprint())
					return true
				},
			})

			netB := sim.NewNetwork(g, ops.factory, spec.Seed)
			if _, _, ok := buildInitial(spec, ops, netB.Process); !ok {
				t.Fatalf("%s seed %d: buildInitial failed", name, seed)
			}
			type exec struct {
				round int
				fp    uint64
			}
			var execd []exec
			resB := netB.RunEvents(sim.EventConfig{
				Policy: sim.EventPolicySync, MaxRounds: maxRounds,
				QuiesceRounds: window, ActiveKinds: ops.kinds,
				OnRound: func(r int) bool {
					execd = append(execd, exec{r, netB.LastFingerprint()})
					return true
				},
			})

			label := name
			if resA.Rounds != resB.Rounds || resA.LastChangeRound != resB.LastChangeRound {
				t.Fatalf("%s seed %d: derived clock diverged: compat rounds=%d/last=%d event rounds=%d/last=%d",
					label, seed, resA.Rounds, resA.LastChangeRound, resB.Rounds, resB.LastChangeRound)
			}
			prev := 0
			var prevFP uint64
			first := true
			for _, e := range execd {
				if e.round >= len(fpsA) {
					break // legacy loop stopped inside its final window
				}
				if e.fp != fpsA[e.round] {
					t.Fatalf("%s seed %d: fingerprint diverged at executed round %d: compat %d event %d",
						label, seed, e.round, fpsA[e.round], e.fp)
				}
				// A fast-forwarded gap means no node had work, so the legacy
				// fingerprint must be flat across it.
				if !first {
					for r := prev + 1; r < e.round; r++ {
						if fpsA[r] != prevFP {
							t.Fatalf("%s seed %d: legacy state moved in skipped round %d",
								label, seed, r)
						}
					}
				}
				prev, prevFP, first = e.round, e.fp, false
			}
			if len(execd) == 0 {
				t.Fatalf("%s seed %d: event core executed no rounds", label, seed)
			}
		}
	}
}

// StartPath preloads the canonical Hamiltonian-path configuration: on a
// canonical-ring graph it is a full fixed point of degree 2 (the global
// optimum), so the closure run certifies with the search module off and
// — on the event engine — near-zero executed events. On a graph without
// the canonical path edges the preload must fail as a reported
// illegitimacy, not a panic or an execution error.
func TestStartPathClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RingWithChords(256, 128, rng)
	for _, eng := range Engines() {
		res := MustRun(RunSpec{Graph: g, Scheduler: SchedSync, Start: StartPath,
			Seed: 3, Engine: eng})
		if !res.Converged || !res.Legit.OK() {
			t.Fatalf("%s: path closure run failed: converged=%v legit=%+v",
				eng, res.Converged, res.Legit)
		}
		if res.LastChange != 0 {
			t.Fatalf("%s: path start is not a fixed point: last change at round %d",
				eng, res.LastChange)
		}
		if deg := res.Tree.MaxDegree(); deg != 2 {
			t.Fatalf("%s: path tree degree %d, want 2", eng, deg)
		}
		if res.Cert == nil {
			t.Fatalf("%s: converged closure run carries no certificate", eng)
		}
	}

	// Grid(4,4) has no edge between row ends (3,4), so the canonical path
	// does not exist.
	res, err := Run(RunSpec{Graph: graph.Grid(4, 4), Scheduler: SchedSync,
		Start: StartPath, Seed: 1})
	if err != nil {
		t.Fatalf("preload failure escalated to an execution error: %v", err)
	}
	if res.Legit.OK() || res.Legit.Detail == "" {
		t.Fatalf("missing canonical path not reported: %+v", res.Legit)
	}
}

// The event core is as deterministic as the compat core: a spec and seed
// fully determine the execution.
func TestEventEngineDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomGnp(20, 0.3, rng)
	spec := RunSpec{Graph: g, Scheduler: SchedSync, Start: StartCorrupt,
		Seed: 11, Engine: EngineEvent}
	a, b := MustRun(spec), MustRun(spec)
	if a.Rounds != b.Rounds || a.LastChange != b.LastChange ||
		a.TotalMessages != b.TotalMessages ||
		a.Metrics.Events != b.Metrics.Events {
		t.Fatalf("nondeterministic event runs: %+v vs %+v", a, b)
	}
}

// Frontier parking is the point of the event core: on a preloaded
// legitimate configuration nothing needs to run beyond the initial
// settling, so the event engine must execute far fewer events than the
// compat engine's full sweep of every quiescence-window round.
func TestEventEngineParksIdleNodes(t *testing.T) {
	g := graph.Ring(64)
	spec := RunSpec{Graph: g, Scheduler: SchedSync, Start: StartLegitimate, Seed: 5}
	compat := MustRun(spec)
	spec.Engine = EngineEvent
	event := MustRun(spec)
	if !compat.Converged || !event.Converged {
		t.Fatalf("legitimate start did not converge: compat=%v event=%v",
			compat.Converged, event.Converged)
	}
	if event.Metrics.Events*2 >= compat.Metrics.Events {
		t.Fatalf("no frontier win: event executed %d events, compat %d",
			event.Metrics.Events, compat.Metrics.Events)
	}
	// The quiescence certificate must exist and carry the event run's
	// derived round clock.
	if event.Cert == nil || event.Cert.Epoch != uint64(event.Rounds) {
		t.Fatalf("event certificate missing or mis-stamped: %+v", event.Cert)
	}
	// Tail work after the last state change is the frontier figure of
	// merit: the parked network must not keep executing events through
	// the stability window.
	tail := event.Metrics.Events - event.Metrics.EventsAtLastChange
	if tail > int64(g.N())*8 {
		t.Fatalf("tail events %d not sub-linear in window×n", tail)
	}
}
