package metrics

import (
	"strings"
	"testing"

	"mdst/internal/trace"
)

func TestCollectorSeriesRoundTrip(t *testing.T) {
	c := &Collector{}
	c.Add(Snapshot{Epoch: 1, Nodes: 4, SentTotal: 10, MaxDegree: 3, VersionFill: 0.5, Stable: 0, Window: 8})
	c.Add(Snapshot{Epoch: 2, Nodes: 4, SentTotal: 24, MaxDegree: 2, VersionFill: 1, Stable: 3, Window: 8})
	if c.Len() != 2 {
		t.Fatalf("Len=%d", c.Len())
	}
	last, ok := c.Last()
	if !ok || last.Epoch != 2 {
		t.Fatalf("Last=%+v ok=%v", last, ok)
	}
	s := c.Series("m")
	if s.Len() != 2 || len(s.Columns) != len(SeriesColumns) {
		t.Fatalf("series shape: len=%d cols=%v", s.Len(), s.Columns)
	}
	if s.Last("versionFill") != 1 || s.Last("sentTotal") != 24 {
		t.Fatalf("series values: fill=%v sent=%v", s.Last("versionFill"), s.Last("sentTotal"))
	}
	// The series round-trips through the shared trace JSON path.
	got, err := trace.ReadJSON(strings.NewReader(s.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Last("maxDegree") != 2 {
		t.Fatalf("JSON round-trip: len=%d maxDegree=%v", got.Len(), got.Last("maxDegree"))
	}
}

func TestCollectorStride(t *testing.T) {
	c := &Collector{Every: 5}
	due := 0
	for i := 0; i < 20; i++ {
		if c.Due(i) {
			due++
		}
	}
	if due != 4 {
		t.Fatalf("stride 5 over 20: %d due", due)
	}
	var zero *Collector
	if zero.stride() != 1 {
		t.Fatal("nil collector stride must default to 1")
	}
	if !(&Collector{}).Due(0) {
		t.Fatal("index 0 must always be due")
	}
}

func TestCollectorCallback(t *testing.T) {
	fired := 0
	c := &Collector{OnSnapshot: func(s Snapshot) { fired++ }}
	c.Add(Snapshot{Epoch: 1})
	c.Add(Snapshot{Epoch: 2})
	if fired != 2 {
		t.Fatalf("OnSnapshot fired %d times", fired)
	}
}

func TestPerNodeRates(t *testing.T) {
	prev := Snapshot{Epoch: 10, Nodes: 4, SentByKind: map[string]int64{"info": 100}}
	cur := Snapshot{Epoch: 20, Nodes: 4, SentByKind: map[string]int64{"info": 180, "search": 40}}
	r := cur.PerNodeRates(prev)
	if r["info"] != 2 { // 80 sends / 10 epochs / 4 nodes
		t.Fatalf("info rate = %v", r["info"])
	}
	if r["search"] != 1 {
		t.Fatalf("search rate = %v", r["search"])
	}
	if (Snapshot{}).PerNodeRates(Snapshot{}) != nil {
		t.Fatal("kindless snapshots must yield nil rates")
	}
	if got := cur.Kinds(); len(got) != 2 || got[0] != "info" || got[1] != "search" {
		t.Fatalf("Kinds() = %v", got)
	}
}
