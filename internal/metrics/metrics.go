// Package metrics is the run-observability surface: a flat,
// JSON/CSV-serializable Snapshot of a running protocol execution and a
// Collector that accumulates the snapshot stream into a time series.
//
// Snapshots are sampled from counters the backends already maintain —
// never computed fresh. The deterministic simulator fills them from its
// run loop using the incremental fingerprint cache's pure reads
// (sim.Network.LastFingerprint/StateVersions — zero extra hashing, so
// sampling cannot perturb the committed FingerprintRecomputes
// baselines); the live backend samples its concurrent ProbeSample path;
// the tcp backend fetches a metricsReply over the netrun control
// channel, next to the quiescence-probe pair. Collection is strictly
// opt-in (harness.RunSpec.Collect): with no Collector attached, no
// backend allocates, hashes or counts anything beyond what it always
// did — the committed byte-identical matrix baselines are the enforced
// proof.
//
// The certificate-progress fields (VersionFill, Deficit, Stable/Window)
// expose how far convergence detection has advanced: a run stopped
// before quiescence reports a partial version-vector fill, never a
// spuriously complete one.
package metrics

import (
	"sort"

	"mdst/internal/trace"
)

// Snapshot is one observation of a running execution. All counter
// fields are cumulative since run start, never per-interval, so
// consecutive snapshots can be differenced for rates.
type Snapshot struct {
	// Epoch is the observation index: the round for the sim backend, the
	// detector's probe epoch for the wall-clock backends.
	Epoch uint64 `json:"epoch"`
	// Nodes is the network size (per-node rates divide by it).
	Nodes int `json:"nodes"`
	// SentTotal counts messages accepted by the backend's send path.
	SentTotal int64 `json:"sentTotal"`
	// SentByKind breaks SentTotal down by message kind. Always present
	// on the sim backend (its metrics already track kinds); on the
	// wall-clock backends only when per-kind counting was enabled.
	SentByKind map[string]int64 `json:"sentByKind,omitempty"`
	// DegreeHist is the tree-degree histogram (index = degree, value =
	// node count) and MaxDegree its maximum. Sim backend only: the
	// wall-clock backends cannot inspect node state while running.
	DegreeHist []int `json:"degreeHist,omitempty"`
	MaxDegree  int   `json:"maxDegree"`
	// Protocol event counters (aggregated node stats; sim only while
	// running, every backend at the final snapshot).
	Exchanges  int `json:"exchanges"`
	Aborts     int `json:"aborts"`
	Suppressed int `json:"suppressed"`
	Deblocks   int `json:"deblocks"`
	// Certificate progress: VersionFill is the fraction of nodes whose
	// quiescence epoch (state version) held still since the previous
	// observation — 1.0 means every node is passive; Deficit is the
	// Dijkstra–Scholten active-kind deficit (messages in flight); Stable
	// is the detector's consecutive-stable-observation streak out of
	// Window.
	VersionFill float64 `json:"versionFill"`
	Deficit     int64   `json:"deficit"`
	Stable      int     `json:"stable"`
	Window      int     `json:"window"`
	// RetryPeriod is the worst-case cycle-search retry spacing across
	// nodes at the observation, in rounds. Static without adaptive
	// backoff; with Config.BackoffSearches on it climbs as nodes back
	// off toward the cap (the idle-traffic decay series' x-axis
	// companion). Zero and omitted when the run's backend cannot read it
	// (wall-clock backends) so pre-backoff snapshot JSON is unchanged.
	RetryPeriod int `json:"retryPeriod,omitempty"`
	// Fingerprint is the combined state fingerprint at the observation.
	Fingerprint uint64 `json:"fingerprint"`
}

// PerNodeRates differences two snapshots into per-node message rates by
// kind: (s - prev) sends per node per epoch step. Kinds absent from
// either snapshot count as zero; a nil map is returned when neither
// snapshot carries kind breakdowns.
func (s Snapshot) PerNodeRates(prev Snapshot) map[string]float64 {
	if s.SentByKind == nil && prev.SentByKind == nil {
		return nil
	}
	steps := float64(s.Epoch) - float64(prev.Epoch)
	if steps <= 0 {
		steps = 1
	}
	nodes := float64(s.Nodes)
	if nodes <= 0 {
		nodes = 1
	}
	out := make(map[string]float64, len(s.SentByKind))
	for k, v := range s.SentByKind {
		out[k] = float64(v-prev.SentByKind[k]) / steps / nodes
	}
	return out
}

// Kinds returns the snapshot's message kinds in sorted order
// (deterministic rendering of the SentByKind map).
func (s Snapshot) Kinds() []string {
	out := make([]string, 0, len(s.SentByKind))
	for k := range s.SentByKind {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SeriesColumns is the fixed column set of Collector.Series — the
// scalar snapshot fields, in declaration order. Kind breakdowns and the
// degree histogram stay in the snapshots themselves (JSON export);
// Fingerprint is excluded because float64 cells cannot hold a uint64
// exactly.
var SeriesColumns = []string{
	"epoch", "sentTotal", "deficit", "versionFill", "stable",
	"maxDegree", "exchanges", "aborts", "suppressed", "deblocks",
}

// Collector accumulates a run's snapshot stream. A Collector is owned
// by one driver at a time and is not safe for concurrent use; the
// harness samples it from the same loop that drives detection.
type Collector struct {
	// Every is the sampling stride: the sim backend samples every Every
	// rounds, the wall-clock backends every Every detection probes
	// (values below 1 mean every round/probe).
	Every int
	// OnSnapshot, if non-nil, is invoked synchronously with each added
	// snapshot — the live-dashboard hook (mdstviz -live).
	OnSnapshot func(Snapshot)

	snaps []Snapshot
}

// stride returns the normalized sampling stride.
func (c *Collector) stride() int {
	if c == nil || c.Every < 1 {
		return 1
	}
	return c.Every
}

// Due reports whether observation index i (0-based) is a sampling
// point under the collector's stride.
func (c *Collector) Due(i int) bool { return i%c.stride() == 0 }

// Add appends one snapshot and fires OnSnapshot.
func (c *Collector) Add(s Snapshot) {
	c.snaps = append(c.snaps, s)
	if c.OnSnapshot != nil {
		c.OnSnapshot(s)
	}
}

// Len returns the number of collected snapshots.
func (c *Collector) Len() int { return len(c.snaps) }

// Snapshots returns the collected stream in observation order (shared
// slice; do not modify).
func (c *Collector) Snapshots() []Snapshot { return c.snaps }

// Last returns the most recent snapshot, or false when none were
// collected.
func (c *Collector) Last() (Snapshot, bool) {
	if len(c.snaps) == 0 {
		return Snapshot{}, false
	}
	return c.snaps[len(c.snaps)-1], true
}

// Series renders the scalar snapshot fields as a trace.Series
// (SeriesColumns), sharing the CSV/JSON export path with the harness's
// OnRound traces.
func (c *Collector) Series(name string) *trace.Series {
	s := trace.NewSeries(name, SeriesColumns...)
	for _, sn := range c.snaps {
		s.Append(
			float64(sn.Epoch), float64(sn.SentTotal), float64(sn.Deficit),
			sn.VersionFill, float64(sn.Stable), float64(sn.MaxDegree),
			float64(sn.Exchanges), float64(sn.Aborts), float64(sn.Suppressed),
			float64(sn.Deblocks),
		)
	}
	return s
}
