package pif

import (
	"math/rand"
	"testing"

	"mdst/internal/graph"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

// buildPIF wires PIF nodes over a spanning tree of g, with values[v] as
// each node's local contribution.
func buildPIF(g *graph.Graph, tr *spanning.Tree, values []int, seed int64) *sim.Network {
	return sim.NewNetwork(g, func(id sim.NodeID, _ []sim.NodeID) sim.Process {
		parent := tr.Parent(id)
		return NewNode(id, parent, tr.Children(id), Max, func() int { return values[id] })
	}, seed)
}

func runToResult(t *testing.T, net *sim.Network, want int, n int) {
	t.Helper()
	// One PIF wave takes about 2*height rounds, so the quiescence window
	// must exceed a full wave or the run stops before the first result.
	res := net.Run(sim.RunConfig{Scheduler: sim.NewSyncScheduler(), MaxRounds: 4000, QuiesceRounds: 4*n + 20})
	if !res.Converged {
		t.Fatal("PIF run did not quiesce")
	}
	for id := 0; id < n; id++ {
		got, ok := net.Process(id).(*Node).Result()
		if !ok {
			t.Fatalf("node %d: no result", id)
		}
		if got != want {
			t.Fatalf("node %d: result %d, want %d", id, got, want)
		}
	}
}

func TestPIFComputesMaxOnPath(t *testing.T) {
	g := graph.Path(8)
	tr := spanning.BFSTree(g, 0)
	values := []int{3, 1, 4, 1, 5, 9, 2, 6}
	net := buildPIF(g, tr, values, 1)
	runToResult(t, net, 9, 8)
}

func TestPIFComputesMaxOnBushyTree(t *testing.T) {
	g := graph.Caterpillar(5, 3) // 20 nodes, tree graph
	tr := spanning.BFSTree(g, 0)
	values := make([]int, g.N())
	for i := range values {
		values[i] = (i * 7) % 13
	}
	want := 0
	for _, v := range values {
		want = Max(want, v)
	}
	net := buildPIF(g, tr, values, 2)
	runToResult(t, net, want, g.N())
}

func TestPIFSingleNode(t *testing.T) {
	g := graph.New(1)
	tr, err := spanning.NewFromParents(g, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	net := buildPIF(g, tr, []int{42}, 3)
	runToResult(t, net, 42, 1)
}

func TestPIFTracksValueChange(t *testing.T) {
	g := graph.Path(6)
	tr := spanning.BFSTree(g, 0)
	values := []int{1, 1, 1, 1, 1, 1}
	net := buildPIF(g, tr, values, 4)
	runToResult(t, net, 1, 6)
	// Raise a leaf's value; subsequent waves must propagate the new max.
	values[5] = 7
	runToResult(t, net, 7, 6)
	// Lower it again: PIF recomputes from scratch each wave, so the
	// aggregate must come back down (unlike a max-gossip protocol).
	values[5] = 1
	runToResult(t, net, 1, 6)
}

func TestPIFRecoversFromCorruption(t *testing.T) {
	g := graph.Grid(3, 3)
	tr := spanning.BFSTree(g, 0)
	values := make([]int, 9)
	for i := range values {
		values[i] = i
	}
	net := buildPIF(g, tr, values, 5)
	rng := rand.New(rand.NewSource(6))
	for id := 0; id < 9; id++ {
		net.Process(id).(*Node).Corrupt(uint32(rng.Intn(1000)), rng.Intn(100)-50)
	}
	runToResult(t, net, 8, 9)
}

func TestPIFIgnoresForeignMessages(t *testing.T) {
	// A node must ignore broadcast/result messages from non-parents and
	// feedback from non-children (corrupted-sender resilience).
	g := graph.Path(3)
	tr := spanning.BFSTree(g, 0)
	values := []int{5, 6, 7}
	net := buildPIF(g, tr, values, 7)
	// Deliver a bogus feedback from node 2 (child of 1) to... node 1's
	// parent is 0; feed node 1 a broadcast from node 2 (its child).
	n1 := net.Process(1).(*Node)
	waveBefore := n1.Wave()
	// Direct receive call with a fake context is not possible; instead run
	// normally and assert convergence is unaffected by construction.
	runToResult(t, net, 7, 3)
	if n1.Wave() == waveBefore && n1.Wave() == 0 {
		t.Fatal("wave never advanced")
	}
}

func TestPIFWaveAdvances(t *testing.T) {
	g := graph.Path(4)
	tr := spanning.BFSTree(g, 0)
	values := []int{1, 2, 3, 4}
	net := buildPIF(g, tr, values, 8)
	net.Run(sim.RunConfig{Scheduler: sim.NewSyncScheduler(), MaxRounds: 60})
	root := net.Process(0).(*Node)
	if root.Wave() < 3 {
		t.Fatalf("root completed only %d waves in 60 rounds", root.Wave())
	}
	if !root.IsRoot() || net.Process(1).(*Node).IsRoot() {
		t.Fatal("IsRoot wrong")
	}
}

func TestPIFAsyncScheduler(t *testing.T) {
	g := graph.Grid(4, 4)
	tr := spanning.BFSTree(g, 5)
	values := make([]int, 16)
	values[11] = 99
	net := buildPIF(g, tr, values, 9)
	res := net.Run(sim.RunConfig{Scheduler: sim.NewAsyncScheduler(), MaxRounds: 4000, QuiesceRounds: 120})
	if !res.Converged {
		t.Fatal("PIF run did not quiesce")
	}
	for id := 0; id < 16; id++ {
		if got, ok := net.Process(id).(*Node).Result(); !ok || got != 99 {
			t.Fatalf("node %d: result %d ok=%v, want 99", id, got, ok)
		}
	}
}

func TestStateBitsBounded(t *testing.T) {
	g := graph.Star(6)
	tr := spanning.BFSTree(g, 0)
	values := make([]int, 6)
	net := buildPIF(g, tr, values, 10)
	// Root of a star has 5 children: 32+64+5*64 bits.
	if got := net.Process(0).(*Node).StateBits(); got != 32+64+5*64 {
		t.Fatalf("StateBits=%d", got)
	}
}

func TestMaxCombiner(t *testing.T) {
	if Max(2, 3) != 3 || Max(3, 2) != 3 || Max(-1, -5) != -1 {
		t.Fatal("Max wrong")
	}
}
