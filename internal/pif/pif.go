// Package pif implements Propagation of Information with Feedback over a
// fixed rooted tree — the substrate the paper's maximum-degree module
// relies on ([16,17] in the paper). The root repeatedly runs waves: a
// broadcast phase queries the tree, a feedback phase folds each node's
// local value upward with an associative Combine, and the next broadcast
// disseminates the previous wave's global result.
//
// The protocol is stabilizing: wave numbers carried on every message
// resynchronize nodes that start from arbitrary (corrupted) state, and a
// node that observes an unknown wave simply re-joins it. The core MDST
// protocol uses the piggybacked continuous equivalent of this scheme
// (DESIGN.md substitution S2); this package reproduces the referenced
// wave protocol in isolation with its own tests.
package pif

import (
	"mdst/internal/sim"
)

// Combine is an associative, commutative fold (e.g. max).
type Combine func(a, b int) int

// Max is the combiner used by the paper's maximum-degree module.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// broadcast starts a wave.
type broadcast struct{ wave uint32 }

func (broadcast) Kind() string { return "pif-b" }
func (broadcast) Size() int    { return 2 }

// feedback folds values toward the root.
type feedback struct {
	wave uint32
	agg  int
}

func (feedback) Kind() string { return "pif-f" }
func (feedback) Size() int    { return 3 }

// result disseminates the global aggregate of a completed wave.
type result struct {
	wave uint32
	val  int
}

func (result) Kind() string { return "pif-r" }
func (result) Size() int    { return 3 }

// Node is a PIF participant on a fixed tree. Value() supplies the local
// contribution (re-read every wave, so it may change over time);
// Result() returns the most recent completed global aggregate.
type Node struct {
	id       sim.NodeID
	parent   sim.NodeID // == id at the root
	children []sim.NodeID
	combine  Combine
	value    func() int

	wave      uint32
	collected map[sim.NodeID]int
	agg       int
	haveRes   bool
	res       int
}

// NewNode creates a PIF node. parent must equal id at the root; children
// lists the node's tree children. value is sampled at each feedback.
func NewNode(id, parent sim.NodeID, children []sim.NodeID, combine Combine, value func() int) *Node {
	return &Node{
		id:        id,
		parent:    parent,
		children:  append([]sim.NodeID(nil), children...),
		combine:   combine,
		value:     value,
		collected: make(map[sim.NodeID]int),
	}
}

// IsRoot reports whether the node is the tree root.
func (n *Node) IsRoot() bool { return n.parent == n.id }

// Result returns the last completed global aggregate and whether one has
// completed since the node joined the current execution.
func (n *Node) Result() (int, bool) { return n.res, n.haveRes }

// Wave returns the node's current wave number (diagnostic).
func (n *Node) Wave() uint32 { return n.wave }

// Corrupt arbitrarily rewrites the stabilization-relevant state; used by
// fault-injection tests.
func (n *Node) Corrupt(wave uint32, res int) {
	n.wave = wave
	n.res = res
	n.haveRes = true
	n.collected = map[sim.NodeID]int{}
}

// Init implements sim.Process.
func (n *Node) Init(ctx *sim.Context) {}

// Tick implements sim.Process: the root (re)launches its current wave;
// non-roots re-emit feedback if their subtree has already folded (makes
// the protocol resilient to lost coordination after corruption — in a
// reliable network re-sends are idempotent thanks to wave numbers).
func (n *Node) Tick(ctx *sim.Context) {
	if n.IsRoot() {
		n.startWave(ctx)
		return
	}
	// A corrupted interior node may sit on a stale wave forever unless it
	// keeps the feedback flowing; re-fold if complete.
	if len(n.collected) == len(n.children) && len(n.children) > 0 {
		n.fold(ctx)
	}
}

// startWave (root only) begins the broadcast of wave n.wave, immediately
// folding if the root is a leaf-root.
func (n *Node) startWave(ctx *sim.Context) {
	for _, c := range n.children {
		ctx.Send(c, broadcast{wave: n.wave})
	}
	if len(n.children) == 0 {
		// Degenerate single-node tree: the wave completes instantly.
		n.res = n.value()
		n.haveRes = true
		n.wave++
	}
}

// Receive implements sim.Process.
func (n *Node) Receive(ctx *sim.Context, from sim.NodeID, m sim.Message) {
	switch msg := m.(type) {
	case broadcast:
		if from != n.parent {
			return // stale or corrupted topology information
		}
		if msg.wave != n.wave {
			// Join the parent's wave, discarding partial feedback.
			n.wave = msg.wave
			n.collected = map[sim.NodeID]int{}
		}
		if len(n.children) == 0 {
			ctx.Send(n.parent, feedback{wave: n.wave, agg: n.value()})
			return
		}
		for _, c := range n.children {
			ctx.Send(c, broadcast{wave: n.wave})
		}
	case feedback:
		if msg.wave != n.wave {
			return // feedback from another wave: drop
		}
		if !n.isChild(from) {
			return
		}
		n.collected[from] = msg.agg
		if len(n.collected) == len(n.children) {
			n.fold(ctx)
		}
	case result:
		if from != n.parent {
			return
		}
		n.res = msg.val
		n.haveRes = true
		for _, c := range n.children {
			ctx.Send(c, result{wave: msg.wave, val: msg.val})
		}
	}
}

// fold combines the children's aggregates with the local value; at the
// root this completes the wave and disseminates the result.
func (n *Node) fold(ctx *sim.Context) {
	agg := n.value()
	for _, v := range n.collected {
		agg = n.combine(agg, v)
	}
	n.agg = agg
	if n.IsRoot() {
		n.res = agg
		n.haveRes = true
		done := n.wave
		n.wave++
		n.collected = map[sim.NodeID]int{}
		for _, c := range n.children {
			ctx.Send(c, result{wave: done, val: agg})
		}
		return
	}
	ctx.Send(n.parent, feedback{wave: n.wave, agg: agg})
	n.collected = map[sim.NodeID]int{}
}

func (n *Node) isChild(v sim.NodeID) bool {
	for _, c := range n.children {
		if c == v {
			return true
		}
	}
	return false
}

// Fingerprint implements sim.Fingerprinter over the published result.
func (n *Node) Fingerprint() uint64 {
	f := uint64(n.res)<<1 | 1
	if !n.haveRes {
		f = 0
	}
	return f
}

// StateBits implements sim.StateSizer: wave + result + per-child slot.
func (n *Node) StateBits() int {
	return 32 + 64 + 64*len(n.children)
}
