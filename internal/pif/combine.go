package pif

// Additional combiners and derived aggregates. The paper's max-degree
// module needs Max; Sum/Count give the tree size, which is how a
// deployment can learn the bound N that the spanning-tree module's
// distance cap assumes (DESIGN.md), and Min is the dual used in
// min-root-style elections.

// Min combines by minimum.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Sum combines by addition (use with per-node value 1 to count nodes).
func Sum(a, b int) int { return a + b }

// NewCounter returns a PIF node configured to count the nodes of the
// tree: every node contributes 1 and the result is the tree size n —
// the self-configuration input for the protocol's distance bound.
func NewCounter(id, parent int, children []int) *Node {
	return NewNode(id, parent, children, Sum, func() int { return 1 })
}
