package pif

import (
	"testing"

	"mdst/internal/graph"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

func TestMinSumCombiners(t *testing.T) {
	if Min(2, 3) != 2 || Min(3, 2) != 2 {
		t.Fatal("Min")
	}
	if Sum(2, 3) != 5 {
		t.Fatal("Sum")
	}
}

func TestCounterComputesTreeSize(t *testing.T) {
	g := graph.Caterpillar(4, 2) // 12 nodes
	tr := spanning.BFSTree(g, 0)
	net := sim.NewNetwork(g, func(id sim.NodeID, _ []sim.NodeID) sim.Process {
		return NewCounter(id, tr.Parent(id), tr.Children(id))
	}, 1)
	res := net.Run(sim.RunConfig{Scheduler: sim.NewSyncScheduler(),
		MaxRounds: 4000, QuiesceRounds: 4*g.N() + 20})
	if !res.Converged {
		t.Fatal("counter did not quiesce")
	}
	for id := 0; id < g.N(); id++ {
		got, ok := net.Process(id).(*Node).Result()
		if !ok || got != g.N() {
			t.Fatalf("node %d: count %d ok=%v, want %d", id, got, ok, g.N())
		}
	}
}

func TestMinAggregation(t *testing.T) {
	g := graph.Path(5)
	tr := spanning.BFSTree(g, 0)
	values := []int{9, 7, 3, 8, 6}
	net := sim.NewNetwork(g, func(id sim.NodeID, _ []sim.NodeID) sim.Process {
		return NewNode(id, tr.Parent(id), tr.Children(id), Min, func() int { return values[id] })
	}, 2)
	res := net.Run(sim.RunConfig{Scheduler: sim.NewSyncScheduler(),
		MaxRounds: 4000, QuiesceRounds: 4*g.N() + 20})
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	for id := 0; id < g.N(); id++ {
		if got, ok := net.Process(id).(*Node).Result(); !ok || got != 3 {
			t.Fatalf("node %d: min %d ok=%v, want 3", id, got, ok)
		}
	}
}
