package mdstseq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdst/internal/graph"
	"mdst/internal/spanning"
)

func TestFindImprovementOnWheel(t *testing.T) {
	// Star tree inside a wheel: hub has degree n-1; ring edges allow
	// reduction down to degree 3.
	g := graph.Wheel(8)
	tr := spanning.WorstDegreeTree(g, 0)
	if tr.MaxDegree() != 7 {
		t.Fatalf("setup: hub degree %d", tr.MaxDegree())
	}
	imp, ok := FindDirectImprovement(tr)
	if !ok {
		t.Fatal("no direct improvement found on degenerate wheel tree")
	}
	before := tr.MaxDegree()
	if err := tr.Swap(imp.Add, imp.Remove); err != nil {
		t.Fatal(err)
	}
	if tr.Validate() != nil {
		t.Fatal("swap broke tree")
	}
	if tr.Degree(imp.Target) >= before {
		t.Fatal("target degree did not decrease")
	}
}

func TestFurerRaghavachariWheel(t *testing.T) {
	g := graph.Wheel(10)
	tr := spanning.WorstDegreeTree(g, 0)
	steps := FurerRaghavachari(tr)
	if steps == 0 {
		t.Fatal("no improvements applied")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Wheel Δ* = 2 (Hamiltonian path exists: hub + arc). FR guarantees <= 3.
	if d := tr.MaxDegree(); d > 3 {
		t.Fatalf("FR degree %d, want <= 3", d)
	}
	if !IsFixedPoint(tr) {
		t.Fatal("FR result is not a fixed point")
	}
}

func TestFixedPointOnPath(t *testing.T) {
	g := graph.Path(6)
	tr := spanning.BFSTree(g, 0)
	if !IsFixedPoint(tr) {
		t.Fatal("path tree must be a fixed point")
	}
	if _, ok := FindDirectImprovement(tr); ok {
		t.Fatal("improvement reported on unique spanning tree")
	}
	if ImproveOnce(tr.Clone()) {
		t.Fatal("chain improvement reported on unique spanning tree")
	}
}

func TestFixedPointOnStarGraph(t *testing.T) {
	// Star graph: unique spanning tree, degree n-1, but no improvement
	// possible — fixed point with deg = Δ* exactly.
	g := graph.Star(7)
	tr := spanning.BFSTree(g, 0)
	if !IsFixedPoint(tr) {
		t.Fatal("unique tree must be fixed point")
	}
}

func TestHamiltonianAugmentedReachesDegreeThree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.HamiltonianAugmented(16, 30, rng)
		tr := spanning.WorstDegreeTree(g, 0)
		FurerRaghavachari(tr)
		if d := tr.MaxDegree(); d > 3 { // Δ* = 2, guarantee Δ*+1 = 3
			t.Fatalf("seed %d: degree %d > Δ*+1 = 3", seed, d)
		}
	}
}

func TestApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomGnp(20, 0.3, rng)
	tr := Approximate(g)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !IsFixedPoint(tr) {
		t.Fatal("Approximate did not reach a fixed point")
	}
}

func TestExactDeltaSmallCases(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path", graph.Path(6), 2},
		{"ring", graph.Ring(6), 2},
		{"star", graph.Star(6), 5},
		{"complete", graph.Complete(6), 2},
		{"wheel", graph.Wheel(8), 2},
		{"grid", graph.Grid(3, 3), 2}, // boustrophedon Hamiltonian path
		{"two-node", graph.Path(2), 1},
		{"one-node", graph.New(1), 0},
	}
	for _, c := range cases {
		got, ok := ExactDelta(c.g, 0)
		if !ok {
			t.Errorf("%s: budget exhausted", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("%s: Δ* = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestExactDeltaStarOfCliques(t *testing.T) {
	g := graph.StarOfCliques(3, 3)
	got, ok := ExactDelta(g, 0)
	if !ok {
		t.Fatal("budget exhausted")
	}
	// Hub attaches to 3 cliques; hub degree must be 3; inside each clique a
	// path suffices, so Δ* = 3.
	if got != 3 {
		t.Fatalf("Δ* = %d, want 3", got)
	}
}

func TestHasSpanningTreeWithDegree(t *testing.T) {
	g := graph.Star(5)
	if found, _ := HasSpanningTreeWithDegree(g, 3, 0); found {
		t.Fatal("star cannot have a degree-3 spanning tree")
	}
	if found, _ := HasSpanningTreeWithDegree(g, 4, 0); !found {
		t.Fatal("star has its own spanning tree of degree 4")
	}
	if found, _ := HasSpanningTreeWithDegree(graph.New(1), 0, 0); !found {
		t.Fatal("singleton")
	}
	if found, _ := HasSpanningTreeWithDegree(graph.Path(3), 0, 0); found {
		t.Fatal("k=0 impossible for n=3")
	}
}

func TestExactBudgetExhaustion(t *testing.T) {
	g := graph.Complete(12)
	_, ok := ExactDelta(g, 5) // absurdly small budget
	if ok {
		t.Fatal("expected budget exhaustion")
	}
}

func TestLowerBoundDelta(t *testing.T) {
	if b := LowerBoundDelta(graph.Star(6)); b != 5 {
		t.Fatalf("star bound %d, want 5", b)
	}
	if b := LowerBoundDelta(graph.Ring(6)); b != 2 {
		t.Fatalf("ring bound %d, want 2", b)
	}
	if b := LowerBoundDelta(graph.StarOfCliques(4, 3)); b != 4 {
		t.Fatalf("star-of-cliques bound %d, want 4", b)
	}
	if b := LowerBoundDelta(graph.New(1)); b != 0 {
		t.Fatalf("singleton bound %d", b)
	}
	if b := LowerBoundDelta(graph.Path(2)); b != 1 {
		t.Fatalf("two-node bound %d", b)
	}
}

// Property: the FR guarantee deg(T) <= Δ*+1 holds on random small graphs,
// checked against the exact solver. This is the paper's Theorem 1/2
// centerpiece at the sequential level.
func TestQuickFRWithinOneOfOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(6) // 5..10: exact solver territory
		g := graph.RandomGnp(n, 0.4, rng)
		tr := spanning.RandomTree(g, rng.Intn(n), rng)
		FurerRaghavachari(tr)
		star, ok := ExactDelta(g, 0)
		if !ok {
			return true // budget blown: skip
		}
		return tr.MaxDegree() <= star+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every direct improvement strictly decreases the sorted degree
// sequence, and every committed chain improvement strictly decreases the
// potential (k, number of degree-k nodes) — the termination arguments for
// the local search.
func TestQuickImprovementDecreasesPotential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(12)
		g := graph.RandomGnp(n, 0.35, rng)
		tr := spanning.WorstDegreeTree(g, rng.Intn(n))
		for i := 0; i < 60; i++ {
			if imp, ok := FindDirectImprovement(tr); ok {
				before := tr.DegreeSequence()
				if err := tr.Swap(imp.Add, imp.Remove); err != nil {
					return false
				}
				if spanning.CompareDegreeSequences(tr.DegreeSequence(), before) != -1 {
					return false
				}
				continue
			}
			kBefore := tr.MaxDegree()
			countBefore := countDeg(tr, kBefore)
			if !ImproveOnce(tr) {
				return true
			}
			if tr.Validate() != nil {
				return false
			}
			kAfter := tr.MaxDegree()
			if kAfter > kBefore {
				return false
			}
			if kAfter == kBefore && countDeg(tr, kAfter) >= countBefore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func countDeg(t *spanning.Tree, k int) int {
	c := 0
	for _, d := range t.Degrees() {
		if d == k {
			c++
		}
	}
	return c
}

// Property: exact Δ* is never below the combinatorial lower bound and FR
// never beats it.
func TestQuickBoundsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		g := graph.RandomGnp(n, 0.5, rng)
		star, ok := ExactDelta(g, 0)
		if !ok {
			return true
		}
		if star < LowerBoundDelta(g) {
			return false
		}
		tr := Approximate(g)
		return tr.MaxDegree() >= star
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeProfile(t *testing.T) {
	g := graph.Star(4)
	tr := spanning.BFSTree(g, 0)
	p := DegreeProfile(tr)
	if p[0] != 3 || p[len(p)-1] != 1 {
		t.Fatalf("profile %v", p)
	}
}
