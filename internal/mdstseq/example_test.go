package mdstseq_test

import (
	"fmt"

	"mdst/internal/graph"
	"mdst/internal/mdstseq"
	"mdst/internal/spanning"
)

// The wheel graph has a degree-9 star as its worst spanning tree but a
// Hamiltonian path (degree 2) as its optimum; the Fürer–Raghavachari
// local search closes the gap to within one of Δ*.
func ExampleFurerRaghavachari() {
	g := graph.Wheel(10)
	tr := spanning.WorstDegreeTree(g, 0)
	fmt.Println("before:", tr.MaxDegree())
	mdstseq.FurerRaghavachari(tr)
	star, _ := mdstseq.ExactDelta(g, 0)
	fmt.Println("after:", tr.MaxDegree(), "optimal:", star)
	// Output:
	// before: 9
	// after: 2 optimal: 2
}

func ExampleExactDelta() {
	star, ok := mdstseq.ExactDelta(graph.StarOfCliques(3, 3), 0)
	fmt.Println(star, ok)
	// Output: 3 true
}

func ExampleLowerBoundDelta() {
	// The hub of a star must have degree n-1 in any spanning tree.
	fmt.Println(mdstseq.LowerBoundDelta(graph.Star(8)))
	// Output: 7
}

// ExampleSteinerLocalSearch reduces the degree of a Steiner tree over
// the rim terminals of a wheel.
func ExampleSteinerLocalSearch() {
	g := graph.Wheel(9) // hub 0 + rim 1..8
	st, _ := mdstseq.NewSteinerTree(g, []int{1, 2, 3, 4, 5, 6, 7, 8})
	mdstseq.SteinerLocalSearch(st)
	fmt.Println("valid:", st.Validate() == nil, "degree <= 3:", st.MaxDegree() <= 3)
	// Output: valid: true degree <= 3: true
}
