package mdstseq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdst/internal/graph"
)

func TestNewSteinerTreePath(t *testing.T) {
	// Path 0-1-2-3-4, terminals {0,4}: the tree is the whole path.
	g := graph.Path(5)
	st, err := NewSteinerTree(g, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes()) != 5 || st.MaxDegree() != 2 {
		t.Fatalf("nodes=%v deg=%d", st.Nodes(), st.MaxDegree())
	}
}

func TestNewSteinerTreePrunesSteinerLeaves(t *testing.T) {
	// Star hub 0 with leaves 1..4, terminals {1,2}: the tree must be
	// 1-0-2 only; leaves 3,4 never enter, and 0 stays as a Steiner node.
	g := graph.Star(5)
	st, err := NewSteinerTree(g, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	nodes := st.Nodes()
	if len(nodes) != 3 || nodes[0] != 0 || nodes[1] != 1 || nodes[2] != 2 {
		t.Fatalf("nodes = %v, want [0 1 2]", nodes)
	}
}

func TestNewSteinerTreeErrors(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	if _, err := NewSteinerTree(g, []int{0, 3}); err == nil {
		t.Fatal("disconnected terminals accepted")
	}
	if _, err := NewSteinerTree(g, nil); err == nil {
		t.Fatal("empty terminal set accepted")
	}
	if _, err := NewSteinerTree(g, []int{9}); err == nil {
		t.Fatal("out-of-range terminal accepted")
	}
}

func TestSteinerSingleTerminal(t *testing.T) {
	g := graph.Complete(4)
	st, err := NewSteinerTree(g, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes()) != 1 || st.MaxDegree() != 0 {
		t.Fatalf("single-terminal tree: nodes=%v", st.Nodes())
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSteinerLocalSearchReducesWheelHub(t *testing.T) {
	// Wheel hub 0, rim 1..8; terminals = all rim nodes. The heuristic
	// initial tree routes everything through the hub (degree 8); local
	// search must pull traffic onto the rim.
	g := graph.Wheel(9)
	terms := []int{1, 2, 3, 4, 5, 6, 7, 8}
	st, err := NewSteinerTree(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	before := st.MaxDegree()
	swaps := SteinerLocalSearch(st)
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.MaxDegree() > before {
		t.Fatalf("degree grew: %d -> %d", before, st.MaxDegree())
	}
	if before > 3 && swaps == 0 {
		t.Fatalf("no swaps from degree-%d start", before)
	}
	if st.MaxDegree() > 3 {
		t.Fatalf("wheel rim terminals should reach degree <= 3, got %d", st.MaxDegree())
	}
}

func TestExactSteinerDeltaKnown(t *testing.T) {
	// Path: terminals at the ends — only Steiner tree is the path, Δ*=2.
	g := graph.Path(5)
	d, ok := ExactSteinerDelta(g, []int{0, 4}, 0)
	if !ok || d != 2 {
		t.Fatalf("path exact = %d ok=%v, want 2", d, ok)
	}
	// Star with 3 terminals: the hub must be used, degree 3.
	g = graph.Star(6)
	d, ok = ExactSteinerDelta(g, []int{1, 2, 3}, 0)
	if !ok || d != 3 {
		t.Fatalf("star exact = %d ok=%v, want 3", d, ok)
	}
	// Complete graph, 4 terminals: a Hamiltonian path over any superset
	// gives degree 2.
	g = graph.Complete(6)
	d, ok = ExactSteinerDelta(g, []int{0, 2, 3, 5}, 0)
	if !ok || d != 2 {
		t.Fatalf("complete exact = %d ok=%v, want 2", d, ok)
	}
}

// Property: local search always yields a valid Steiner tree whose degree
// never exceeds the heuristic start, and on small instances stays within
// one of the exact optimum computed over the SAME node-set family
// (every superset of the terminals) — the Fürer–Raghavachari
// local-optimality bound, checked end to end.
func TestQuickSteinerWithinOneOfExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(5) // <= 10 nodes: the exact solver enumerates 2^(n-|D|) subsets
		g := graph.RandomGnp(n, 0.45, rng)
		k := 2 + rng.Intn(3)
		perm := rng.Perm(n)
		terms := perm[:k]
		st, err := NewSteinerTree(g, terms)
		if err != nil {
			return true // terminals disconnected: nothing to test
		}
		before := st.MaxDegree()
		SteinerLocalSearch(st)
		if st.Validate() != nil {
			t.Logf("seed %d: invalid tree after search", seed)
			return false
		}
		if st.MaxDegree() > before {
			t.Logf("seed %d: degree grew %d -> %d", seed, before, st.MaxDegree())
			return false
		}
		exact, ok := ExactSteinerDelta(g, terms, 0)
		if !ok {
			return true
		}
		if st.MaxDegree() > exact+1 {
			t.Logf("seed %d: degree %d > exact+1 = %d", seed, st.MaxDegree(), exact+1)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := graph.Ring(5)
	sub, ids := inducedSubgraph(g, []int{0, 1, 3})
	if sub.N() != 3 || sub.M() != 1 {
		t.Fatalf("induced n=%d m=%d, want 3,1", sub.N(), sub.M())
	}
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 3 {
		t.Fatalf("ids = %v", ids)
	}
	if s, _ := inducedSubgraph(g, nil); s != nil {
		t.Fatal("empty node set gave a graph")
	}
}
