// Package mdstseq implements the sequential minimum-degree spanning tree
// algorithms that the paper builds on and compares against:
//
//   - the Fürer–Raghavachari local search ([8,9] in the paper) producing a
//     spanning tree of degree at most Δ*+1, implemented with the same
//     eager blocking-node reduction chains as the paper's distributed
//     Deblock procedure,
//   - its fixed-point predicate (the hypothesis of the paper's Theorem 1),
//     used by tests and the harness as the legitimacy oracle for the
//     distributed protocol,
//   - an exact branch-and-bound Δ* solver for small instances, and
//   - combinatorial lower bounds on Δ*.
package mdstseq

import (
	"sort"

	"mdst/internal/graph"
	"mdst/internal/spanning"
)

// Improvement describes one direct degree-reducing edge exchange: Add
// enters the tree, Remove leaves it, and Target is the max-degree node
// whose degree decreases (an endpoint of Remove). Direct means both
// endpoints of Add already have degree <= deg(T)-2 (the paper's Eq. 1).
type Improvement struct {
	Add    graph.Edge
	Remove graph.Edge
	Target int
}

// FindDirectImprovement scans non-tree edges in canonical order and
// returns the first direct improvement for a maximum-degree node: a
// non-tree edge e = {u,v} with deg(u), deg(v) <= k-2 whose fundamental
// cycle contains a degree-k node w (k = deg(T)); the exchanged tree edge
// is the cycle edge at the min-ID such w. The boolean is false when no
// direct improvement exists (blocking-node chains may still apply; see
// ImproveOnce).
func FindDirectImprovement(t *spanning.Tree) (Improvement, bool) {
	k := t.MaxDegree()
	if k <= 2 || t.Graph().N() < 3 {
		return Improvement{}, false
	}
	deg := t.Degrees()
	for _, e := range t.NonTreeEdges() {
		if deg[e.U] > k-2 || deg[e.V] > k-2 {
			continue
		}
		cyc := t.FundamentalCycle(e)
		target := -1
		for _, w := range cyc[1 : len(cyc)-1] {
			if deg[w] == k && (target == -1 || w < target) {
				target = w
			}
		}
		if target != -1 {
			return Improvement{Add: e, Remove: cycleEdgeAt(cyc, target), Target: target}, true
		}
	}
	return Improvement{}, false
}

// cycleEdgeAt returns the cycle edge from w to its successor on the cycle
// path. cyc is a node path; w must appear before the last position.
func cycleEdgeAt(cyc []int, w int) graph.Edge {
	for i, v := range cyc {
		if v == w {
			return graph.Edge{U: w, V: cyc[i+1]}
		}
	}
	panic("mdstseq: target not on cycle")
}

// maxDeblockDepth bounds the blocking-node recursion; n levels suffice
// since every level marks a distinct node as visited.
func maxDeblockDepth(n int) int { return n }

// ImproveOnce attempts to reduce the degree of one maximum-degree node,
// applying blocking-node reduction chains when the improving edge's
// endpoints have degree k-1 (the paper's Deblock recursion). Chains are
// explored eagerly on a clone and committed only when a degree-k node's
// degree actually decreases, so every committed step strictly decreases
// the potential (k, number of degree-k nodes). It reports whether an
// improvement was committed.
func ImproveOnce(t *spanning.Tree) bool {
	k := t.MaxDegree()
	if k <= 2 || t.Graph().N() < 3 {
		return false
	}
	deg := t.Degrees()
	for x := 0; x < t.Graph().N(); x++ {
		if deg[x] != k {
			continue
		}
		clone := t.Clone()
		visited := map[int]bool{x: true}
		if tryReduce(clone, x, k, visited, maxDeblockDepth(t.Graph().N())) {
			t.Assign(clone)
			return true
		}
	}
	return false
}

// tryReduce attempts to reduce deg(target) by one on t (modified in
// place): it looks for a non-tree edge whose fundamental cycle passes
// through target with both endpoint degrees <= k-2, recursively reducing
// blocking endpoints of degree k-1 first. visited prevents revisiting a
// blocking node within one chain.
func tryReduce(t *spanning.Tree, target, k int, visited map[int]bool, depth int) bool {
	if depth <= 0 {
		return false
	}
	for _, e := range t.NonTreeEdges() {
		// Up to two endpoint-repair attempts per edge (one per endpoint).
		for attempt := 0; attempt < 3; attempt++ {
			// Recursive reductions may have pulled e into the tree.
			if t.HasTreeEdge(e.U, e.V) {
				break
			}
			cyc := t.FundamentalCycle(e)
			if !interiorOf(cyc, target) {
				break
			}
			deg := t.Degrees()
			if deg[e.U] <= k-2 && deg[e.V] <= k-2 {
				if err := t.Swap(e, cycleEdgeAt(cyc, target)); err != nil {
					panic("mdstseq: invalid chain swap: " + err.Error())
				}
				return true
			}
			b := -1
			for _, cand := range []int{e.U, e.V} {
				if deg[cand] == k-1 && !visited[cand] {
					b = cand
					break
				}
			}
			if b == -1 {
				break
			}
			visited[b] = true
			if !tryReduce(t, b, k, visited, depth-1) {
				break
			}
			// b's degree dropped; re-validate the cycle and retry e.
		}
	}
	return false
}

// interiorOf reports whether w is an interior node of the cycle path.
func interiorOf(cyc []int, w int) bool {
	for _, v := range cyc[1 : len(cyc)-1] {
		if v == w {
			return true
		}
	}
	return false
}

// IsFixedPoint reports whether t admits no improvement, direct or via
// blocking-node chains; by the paper's Theorem 1 such a tree satisfies
// deg(T) <= Δ*+1. The tree is not modified.
func IsFixedPoint(t *spanning.Tree) bool {
	return !ImproveOnce(t.Clone())
}

// FurerRaghavachari runs the local search from the given starting tree
// until no improvement exists and returns the number of committed
// max-degree reductions. The input tree is modified in place.
func FurerRaghavachari(t *spanning.Tree) int {
	steps := 0
	for ImproveOnce(t) {
		steps++
	}
	return steps
}

// Approximate builds a BFS tree rooted at the minimum-ID node (the same
// initial structure the distributed protocol stabilizes to) and reduces it
// with FurerRaghavachari. It returns the resulting tree.
func Approximate(g *graph.Graph) *spanning.Tree {
	t := spanning.BFSTree(g, 0)
	FurerRaghavachari(t)
	return t
}

// LowerBoundDelta returns a combinatorial lower bound on Δ*: for every
// vertex v, any spanning tree must use at least one edge from v into each
// connected component of G - v, so Δ* >= max_v components(G - v); and any
// spanning tree of a graph with n >= 3 has a node of degree >= 2.
func LowerBoundDelta(g *graph.Graph) int {
	n := g.N()
	if n <= 1 {
		return 0
	}
	if n == 2 {
		return 1
	}
	bound := 2
	for v := 0; v < n; v++ {
		if c := componentsWithout(g, v); c > bound {
			bound = c
		}
	}
	return bound
}

// componentsWithout counts the connected components of g with node v
// removed (the other n-1 nodes kept).
func componentsWithout(g *graph.Graph, v int) int {
	n := g.N()
	seen := make([]bool, n)
	seen[v] = true
	count := 0
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		count++
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return count
}

// DegreeProfile returns the sorted (descending) degree sequence of t —
// convenience re-export used by experiment tables.
func DegreeProfile(t *spanning.Tree) []int {
	seq := t.DegreeSequence()
	sort.Sort(sort.Reverse(sort.IntSlice(seq)))
	return seq
}
