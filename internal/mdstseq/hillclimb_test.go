package mdstseq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdst/internal/graph"
	"mdst/internal/spanning"
)

func TestHillClimbImprovesWheel(t *testing.T) {
	g := graph.Wheel(10)
	tr := spanning.WorstDegreeTree(g, 0) // star, degree 9
	rng := rand.New(rand.NewSource(1))
	applied := HillClimb(tr, rng, 300)
	if applied == 0 {
		t.Fatal("no swaps applied")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.MaxDegree() >= 9 {
		t.Fatalf("degree %d not improved", tr.MaxDegree())
	}
}

func TestHillClimbNoNonTreeEdges(t *testing.T) {
	g := graph.Path(5) // tree graph: nothing to swap
	tr := spanning.BFSTree(g, 0)
	if HillClimb(tr, rand.New(rand.NewSource(2)), 10) != 0 {
		t.Fatal("swaps applied on a tree graph")
	}
}

// Property: hill climbing never worsens the degree sequence and always
// leaves a valid tree; FR (with deblocking) is at least as good.
func TestQuickHillClimbVsFR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(12)
		g := graph.RandomGnp(n, 0.35, rng)
		hc := spanning.WorstDegreeTree(g, 0)
		before := hc.DegreeSequence()
		HillClimb(hc, rng, 150)
		if hc.Validate() != nil {
			return false
		}
		if spanning.CompareDegreeSequences(hc.DegreeSequence(), before) == 1 {
			return false
		}
		fr := spanning.WorstDegreeTree(g, 0)
		FurerRaghavachari(fr)
		if fr.Validate() != nil {
			return false
		}
		// FR guarantees deg <= Δ*+1; hill climbing guarantees nothing but
		// can luckily reach Δ* exactly, so FR may be one worse — never more.
		return fr.MaxDegree() <= hc.MaxDegree()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDegreeBounded(t *testing.T) {
	g := graph.Complete(6)
	tr := GreedyDegreeBounded(g, 2)
	if tr == nil {
		t.Fatal("greedy failed on K6 with k=2")
	}
	if tr.MaxDegree() > 2 {
		t.Fatalf("degree %d > 2", tr.MaxDegree())
	}
	// Star graph cannot do better than n-1.
	if GreedyDegreeBounded(graph.Star(5), 3) != nil {
		t.Fatal("impossible bound satisfied")
	}
	if GreedyDegreeBounded(graph.Star(5), 4) == nil {
		t.Fatal("star with k=4 must succeed")
	}
	if GreedyDegreeBounded(graph.New(0), 2) != nil {
		t.Fatal("empty graph")
	}
}

func TestGreedyMDST(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGnp(15, 0.3, rng)
		tr := GreedyMDST(g)
		if tr == nil || tr.Validate() != nil {
			t.Fatalf("seed %d: invalid greedy tree", seed)
		}
		// Sanity: the greedy tree is within the trivial bounds.
		if tr.MaxDegree() < 1 || tr.MaxDegree() >= g.N() {
			t.Fatalf("degree %d out of range", tr.MaxDegree())
		}
	}
}
