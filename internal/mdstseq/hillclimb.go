package mdstseq

import (
	"math/rand"

	"mdst/internal/graph"
	"mdst/internal/spanning"
)

// HillClimb is a randomized local-search baseline for MDST without the
// Fürer–Raghavachari blocking machinery: it repeatedly samples a
// non-tree edge and a cycle edge and applies the swap whenever it
// strictly improves the sorted degree sequence. It converges to a local
// optimum that is generally weaker than the FR fixed point — the
// comparison quantifies what the paper's Deblock recursion buys.
//
// The tree is modified in place; the return value is the number of
// applied swaps.
func HillClimb(t *spanning.Tree, rng *rand.Rand, maxIdle int) int {
	if maxIdle <= 0 {
		maxIdle = 200
	}
	applied := 0
	idle := 0
	for idle < maxIdle {
		nte := t.NonTreeEdges()
		if len(nte) == 0 {
			return applied
		}
		add := nte[rng.Intn(len(nte))]
		cyc := t.FundamentalCycle(add)
		i := rng.Intn(len(cyc) - 1)
		rm := graph.Edge{U: cyc[i], V: cyc[i+1]}
		before := t.DegreeSequence()
		clone := t.Clone()
		if err := clone.Swap(add, rm); err != nil {
			idle++
			continue
		}
		if spanning.CompareDegreeSequences(clone.DegreeSequence(), before) == -1 {
			t.Assign(clone)
			applied++
			idle = 0
		} else {
			idle++
		}
	}
	return applied
}

// GreedyDegreeBounded attempts to build a spanning tree with maximum
// degree at most k greedily: grow from the min-ID node, always attaching
// the frontier edge whose tree endpoint currently has the lowest degree.
// Returns nil when the greedy run dead-ends (it is a heuristic, not a
// decision procedure).
func GreedyDegreeBounded(g *graph.Graph, k int) *spanning.Tree {
	n := g.N()
	if n == 0 || k < 1 {
		return nil
	}
	parent := make([]int, n)
	deg := make([]int, n)
	inTree := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[0] = 0
	inTree[0] = true
	for count := 1; count < n; count++ {
		// Lowest-degree tree endpoint with an expandable edge wins.
		bu, bv := -1, -1
		for u := 0; u < n; u++ {
			if !inTree[u] || deg[u] >= k {
				continue
			}
			for _, v := range g.Neighbors(u) {
				if inTree[v] {
					continue
				}
				if bu == -1 || deg[u] < deg[bu] {
					bu, bv = u, v
				}
				break
			}
		}
		if bu == -1 {
			return nil
		}
		parent[bv] = bu
		inTree[bv] = true
		deg[bu]++
		deg[bv]++
	}
	t, err := spanning.NewFromParents(g, parent, 0)
	if err != nil {
		return nil
	}
	return t
}

// GreedyMDST runs GreedyDegreeBounded with increasing k until it
// succeeds, returning the tree (never nil for a connected graph, since
// k = n-1 always succeeds).
func GreedyMDST(g *graph.Graph) *spanning.Tree {
	for k := 1; k < g.N(); k++ {
		if t := GreedyDegreeBounded(g, k); t != nil {
			return t
		}
	}
	return spanning.BFSTree(g, 0)
}
