package mdstseq

import (
	"mdst/internal/graph"
)

// Exact Δ* computation by iterative-deepening branch and bound over the
// edge list. NP-hard in general; intended for the small instances of
// experiment E1 where the paper's Δ*+1 guarantee is checked against the
// true optimum. A node budget bounds the search; exceeding it yields
// ok=false rather than an unbounded run.

// DefaultExactBudget is the default number of search-tree expansions.
const DefaultExactBudget = 5_000_000

// ExactDelta returns the degree Δ* of a minimum-degree spanning tree of
// g, searching within the given expansion budget (DefaultExactBudget if
// budget <= 0). ok is false if the budget was exhausted before an answer
// was proven. The graph must be connected.
func ExactDelta(g *graph.Graph, budget int) (delta int, ok bool) {
	if budget <= 0 {
		budget = DefaultExactBudget
	}
	n := g.N()
	switch {
	case n <= 1:
		return 0, true
	case n == 2:
		return 1, true
	}
	if !g.IsConnected() {
		return 0, false
	}
	low := LowerBoundDelta(g)
	for k := low; k < n; k++ {
		found, exhausted := HasSpanningTreeWithDegree(g, k, budget)
		if found {
			return k, true
		}
		if exhausted {
			return 0, false
		}
	}
	return n - 1, true
}

// HasSpanningTreeWithDegree reports whether g has a spanning tree of
// maximum degree at most k. exhausted is true when the budget ran out
// before the search completed (found is then meaningless).
func HasSpanningTreeWithDegree(g *graph.Graph, k int, budget int) (found, exhausted bool) {
	if budget <= 0 {
		budget = DefaultExactBudget
	}
	n := g.N()
	if n <= 1 {
		return true, false
	}
	if k < 1 {
		return false, false
	}
	edges := g.Edges()
	s := &degreeSearch{
		n:      n,
		k:      k,
		edges:  edges,
		deg:    make([]int, n),
		uf:     make([]int, n),
		budget: budget,
	}
	for i := range s.uf {
		s.uf[i] = i
	}
	found = s.search(0, n-1)
	return found, s.budget <= 0
}

type degreeSearch struct {
	n      int
	k      int
	edges  []graph.Edge
	deg    []int
	uf     []int // union-find without path compression, so it can be undone
	budget int
}

func (s *degreeSearch) find(x int) int {
	for s.uf[x] != x {
		x = s.uf[x]
	}
	return x
}

// search tries to pick `need` more edges from edges[idx:] forming a forest
// with degree cap k that eventually spans.
func (s *degreeSearch) search(idx, need int) bool {
	if need == 0 {
		return true
	}
	if s.budget <= 0 {
		return false
	}
	s.budget--
	if len(s.edges)-idx < need {
		return false
	}
	e := s.edges[idx]
	ru, rv := s.find(e.U), s.find(e.V)
	if ru != rv && s.deg[e.U] < s.k && s.deg[e.V] < s.k {
		// Include e.
		s.uf[ru] = rv
		s.deg[e.U]++
		s.deg[e.V]++
		if s.search(idx+1, need-1) {
			return true
		}
		s.deg[e.U]--
		s.deg[e.V]--
		s.uf[ru] = ru
	}
	// Exclude e — but only if the remaining edges can still connect
	// everything (cheap prune: count is handled above; a stronger prune
	// would check reachability, omitted for simplicity).
	return s.search(idx+1, need)
}
