package mdstseq

import (
	"math/rand"
	"testing"

	"mdst/internal/graph"
)

// 600 fixed seeds of the quick property's instance space: the direct
// improving-edge local search stays within one of the exact Steiner
// optimum on every one (the Fürer–Raghavachari guarantee, which their
// full algorithm proves via blocking-node chains, holds empirically for
// plain swaps at these sizes).
func TestStressSteinerBound(t *testing.T) {
	if testing.Short() {
		t.Skip("600-seed stress")
	}
	over := 0
	total := 0
	for seed := int64(0); seed < 600; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(5)
		g := graph.RandomGnp(n, 0.45, rng)
		k := 2 + rng.Intn(3)
		perm := rng.Perm(n)
		terms := perm[:k]
		st, err := NewSteinerTree(g, terms)
		if err != nil {
			continue
		}
		SteinerLocalSearch(st)
		exact, ok := ExactSteinerDelta(g, terms, 0)
		if !ok {
			continue
		}
		total++
		if st.MaxDegree() > exact+1 {
			over++
			t.Errorf("seed %d: deg %d > exact+1 = %d", seed, st.MaxDegree(), exact+1)
		}
	}
	t.Logf("total=%d over=%d", total, over)
}
