package mdstseq

import (
	"fmt"
	"sort"

	"mdst/internal/graph"
)

// Minimum-degree Steiner trees — the problem of the paper's key
// reference [9] (Fürer & Raghavachari 1994), whose Theorem 1 the
// protocol's fixed-point argument relies on. Given a terminal set D, a
// Steiner tree is a tree in G spanning D (possibly through non-terminal
// Steiner nodes); the objective is minimizing its maximum degree.
//
// SteinerLocalSearch implements the edge-swap local search over the
// tree's node set — the same improving-edge rule the spanning-tree
// algorithms use, restricted to fundamental cycles within the current
// node set — together with Steiner-leaf pruning (a non-terminal leaf
// never helps the degree objective and is removed). The result is a
// Steiner tree with no improving edge over its final node set, the
// local-optimality property of [9]'s analysis; the exact solver below
// brackets how far that is from the true Steiner optimum on small
// instances.

// SteinerTree is a tree spanning a terminal set within a host graph.
type SteinerTree struct {
	g         *graph.Graph
	terminals []int
	nodes     map[int]bool  // nodes of the tree (terminals ∪ Steiner nodes)
	adj       map[int][]int // tree adjacency
	edges     map[graph.Edge]bool
}

// Terminals returns the terminal set (sorted copy).
func (t *SteinerTree) Terminals() []int {
	out := append([]int(nil), t.terminals...)
	sort.Ints(out)
	return out
}

// Nodes returns the tree's node set (sorted).
func (t *SteinerTree) Nodes() []int {
	out := make([]int, 0, len(t.nodes))
	for v := range t.nodes {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Edges returns the tree edges (sorted canonical order).
func (t *SteinerTree) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(t.edges))
	for e := range t.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Degree returns v's degree in the Steiner tree (0 if not a tree node).
func (t *SteinerTree) Degree(v int) int { return len(t.adj[v]) }

// MaxDegree returns the tree's maximum degree.
func (t *SteinerTree) MaxDegree() int {
	max := 0
	for v := range t.nodes {
		if d := len(t.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Validate checks the Steiner tree invariants: connected, acyclic,
// covers every terminal, every edge is a host-graph edge, and every
// leaf is a terminal.
func (t *SteinerTree) Validate() error {
	if len(t.nodes) == 0 {
		return fmt.Errorf("mdstseq: empty Steiner tree")
	}
	if len(t.edges) != len(t.nodes)-1 {
		return fmt.Errorf("mdstseq: %d edges for %d nodes", len(t.edges), len(t.nodes))
	}
	for _, d := range t.terminals {
		if !t.nodes[d] {
			return fmt.Errorf("mdstseq: terminal %d not covered", d)
		}
	}
	for e := range t.edges {
		if !t.g.HasEdge(e.U, e.V) {
			return fmt.Errorf("mdstseq: edge %v not in host graph", e)
		}
	}
	// Connectivity by BFS over tree adjacency.
	start := t.terminals[0]
	seen := map[int]bool{start: true}
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range t.adj[v] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	if len(seen) != len(t.nodes) {
		return fmt.Errorf("mdstseq: tree disconnected (%d of %d reachable)", len(seen), len(t.nodes))
	}
	term := map[int]bool{}
	for _, d := range t.terminals {
		term[d] = true
	}
	for v := range t.nodes {
		if len(t.adj[v]) == 1 && !term[v] {
			return fmt.Errorf("mdstseq: non-terminal leaf %d", v)
		}
	}
	return nil
}

// addEdge inserts a tree edge (both endpoints become tree nodes).
func (t *SteinerTree) addEdge(u, v int) {
	e := graph.Edge{U: u, V: v}.Normalize()
	if t.edges[e] {
		return
	}
	t.edges[e] = true
	t.nodes[u] = true
	t.nodes[v] = true
	t.adj[u] = append(t.adj[u], v)
	t.adj[v] = append(t.adj[v], u)
}

// removeEdge deletes a tree edge (adjacency only; node cleanup is the
// caller's job).
func (t *SteinerTree) removeEdge(u, v int) {
	e := graph.Edge{U: u, V: v}.Normalize()
	if !t.edges[e] {
		return
	}
	delete(t.edges, e)
	t.adj[u] = removeVal(t.adj[u], v)
	t.adj[v] = removeVal(t.adj[v], u)
}

func removeVal(xs []int, v int) []int {
	for i, x := range xs {
		if x == v {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// pruneSteinerLeaves removes non-terminal leaves until every leaf is a
// terminal (removing one can expose another).
func (t *SteinerTree) pruneSteinerLeaves() {
	term := map[int]bool{}
	for _, d := range t.terminals {
		term[d] = true
	}
	for {
		removed := false
		for v := range t.nodes {
			if term[v] || len(t.adj[v]) != 1 {
				continue
			}
			u := t.adj[v][0]
			t.removeEdge(v, u)
			delete(t.nodes, v)
			delete(t.adj, v)
			removed = true
		}
		if !removed {
			return
		}
	}
}

// NewSteinerTree builds an initial Steiner tree with the classic
// shortest-path heuristic: grow from the first terminal, repeatedly
// attaching the nearest uncovered terminal along a BFS shortest path.
// Returns an error if some terminal is unreachable.
func NewSteinerTree(g *graph.Graph, terminals []int) (*SteinerTree, error) {
	if len(terminals) == 0 {
		return nil, fmt.Errorf("mdstseq: no terminals")
	}
	seen := map[int]bool{}
	uniq := make([]int, 0, len(terminals))
	for _, d := range terminals {
		if d < 0 || d >= g.N() {
			return nil, fmt.Errorf("mdstseq: terminal %d out of range", d)
		}
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	t := &SteinerTree{
		g:         g,
		terminals: uniq,
		nodes:     map[int]bool{uniq[0]: true},
		adj:       map[int][]int{},
		edges:     map[graph.Edge]bool{},
	}
	covered := map[int]bool{uniq[0]: true}
	for len(covered) < len(uniq) {
		// BFS from all current tree nodes simultaneously.
		parent := make([]int, g.N())
		for i := range parent {
			parent[i] = -2 // unvisited
		}
		var queue []int
		for v := range t.nodes {
			parent[v] = -1
			queue = append(queue, v)
		}
		sort.Ints(queue) // deterministic
		target := -1
		for i := 0; i < len(queue) && target < 0; i++ {
			v := queue[i]
			for _, u := range g.Neighbors(v) {
				if parent[u] != -2 {
					continue
				}
				parent[u] = v
				queue = append(queue, u)
				if seen[u] && !covered[u] {
					target = u
					break
				}
			}
		}
		if target < 0 {
			return nil, fmt.Errorf("mdstseq: terminals not connected in host graph")
		}
		// Walk the path back into the tree.
		for v := target; parent[v] != -1; v = parent[v] {
			t.addEdge(v, parent[v])
		}
		covered[target] = true
	}
	t.pruneSteinerLeaves()
	return t, nil
}

// steinerImproveOnce applies one improving edge swap over the current
// node set: a host edge {u,v} between tree nodes whose fundamental
// cycle contains a node w of maximum tree degree with
// deg(w) >= max(deg(u), deg(v)) + 2 (the paper's Eq. 1); the swap
// removes a cycle edge incident to w. Returns false at a local optimum.
func (t *SteinerTree) steinerImproveOnce() bool {
	k := t.MaxDegree()
	if k <= 2 {
		return false
	}
	for _, u := range t.Nodes() { // sorted: deterministic local search
		for _, v := range t.g.Neighbors(u) {
			if u >= v || !t.nodes[v] {
				continue
			}
			e := graph.Edge{U: u, V: v}.Normalize()
			if t.edges[e] {
				continue
			}
			cyc := t.cyclePath(u, v)
			if cyc == nil {
				continue
			}
			if t.Degree(u) > k-2 || t.Degree(v) > k-2 {
				continue
			}
			// Find a maximum-degree node in the cycle interior.
			for i := 1; i < len(cyc)-1; i++ {
				w := cyc[i]
				if t.Degree(w) != k {
					continue
				}
				// Remove the cycle edge {w, successor}.
				t.removeEdge(w, cyc[i+1])
				t.addEdge(u, v)
				t.pruneSteinerLeaves()
				return true
			}
		}
	}
	return false
}

// cyclePath returns the tree path from u to v (inclusive), nil if they
// are disconnected in the tree.
func (t *SteinerTree) cyclePath(u, v int) []int {
	parent := map[int]int{u: -1}
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == v {
			var path []int
			for y := v; y != -1; y = parent[y] {
				path = append(path, y)
			}
			// reverse: path from u to v
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		for _, y := range t.adj[x] {
			if _, ok := parent[y]; !ok {
				parent[y] = x
				queue = append(queue, y)
			}
		}
	}
	return nil
}

// SteinerLocalSearch reduces the Steiner tree's maximum degree by
// repeated improving-edge swaps until no improvement over the current
// node set remains. Returns the number of swaps applied.
func SteinerLocalSearch(t *SteinerTree) int {
	swaps := 0
	for t.steinerImproveOnce() {
		swaps++
		if swaps > 16*t.g.N()*t.g.N() {
			break // defensive: the degree objective strictly improves per phase
		}
	}
	return swaps
}

// ExactSteinerDelta computes the true minimum maximum-degree over ALL
// Steiner trees for the terminals, by trying every superset of the
// terminal set as the tree's node set (exponential in the number of
// non-terminals; small instances only). budget caps the exact
// spanning-tree searches; ok is false when it trips.
func ExactSteinerDelta(g *graph.Graph, terminals []int, budget int) (delta int, ok bool) {
	if budget <= 0 {
		budget = 4_000_000
	}
	term := map[int]bool{}
	for _, d := range terminals {
		term[d] = true
	}
	var rest []int
	for v := 0; v < g.N(); v++ {
		if !term[v] {
			rest = append(rest, v)
		}
	}
	if len(rest) > 20 {
		return 0, false
	}
	best := g.N()
	found := false
	for mask := 0; mask < 1<<len(rest); mask++ {
		nodes := append([]int(nil), terminals...)
		for i, v := range rest {
			if mask&(1<<i) != 0 {
				nodes = append(nodes, v)
			}
		}
		sub, remap := inducedSubgraph(g, nodes)
		if sub == nil || !sub.IsConnected() {
			continue
		}
		_ = remap
		d, okd := ExactDelta(sub, budget)
		if !okd {
			return 0, false
		}
		if d < best {
			best = d
			found = true
			if best <= 2 {
				break // a path through the terminals: cannot do better than... 1 only for 2 nodes
			}
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// inducedSubgraph returns the subgraph induced by nodes, plus the
// old-ID-per-new-ID mapping; nil if nodes is empty.
func inducedSubgraph(g *graph.Graph, nodes []int) (*graph.Graph, []int) {
	if len(nodes) == 0 {
		return nil, nil
	}
	sorted := append([]int(nil), nodes...)
	sort.Ints(sorted)
	idx := map[int]int{}
	for i, v := range sorted {
		idx[v] = i
	}
	sub := graph.New(len(sorted))
	for _, v := range sorted {
		for _, u := range g.Neighbors(v) {
			if j, ok := idx[u]; ok && idx[v] < j {
				sub.MustAddEdge(idx[v], j)
			}
		}
	}
	return sub, sorted
}
