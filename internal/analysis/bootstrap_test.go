package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBootstrapMeanCoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Samples from N(10, 1): the 95% interval should contain 10 in the
	// vast majority of repetitions; with a fixed seed we assert directly.
	covered := 0
	for rep := 0; rep < 50; rep++ {
		samples := make([]float64, 40)
		for i := range samples {
			samples[i] = 10 + rng.NormFloat64()
		}
		iv := BootstrapMean(samples, 0.95, 500, rng)
		if iv.Lo <= 10 && 10 <= iv.Hi {
			covered++
		}
		if iv.Lo > iv.Point || iv.Point > iv.Hi {
			t.Fatalf("interval out of order: %v", iv)
		}
	}
	if covered < 42 { // expect ~47-48 of 50
		t.Fatalf("coverage %d/50 far below nominal 95%%", covered)
	}
}

func TestBootstrapDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	iv := BootstrapMean(nil, 0.9, 100, rng)
	if iv.Point != 0 || iv.Lo != 0 || iv.Hi != 0 {
		t.Fatalf("empty sample interval %v", iv)
	}
	iv = BootstrapMean([]float64{3}, 0.9, 100, rng)
	if iv.Lo != 3 || iv.Point != 3 || iv.Hi != 3 {
		t.Fatalf("single sample interval %v", iv)
	}
}

func TestBootstrapPanicsOnBadConfidence(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for conf=1")
		}
	}()
	BootstrapMean([]float64{1, 2}, 1.0, 10, rand.New(rand.NewSource(1)))
}

func TestBootstrapQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = float64(i)
	}
	iv := BootstrapQuantile(samples, 0.5, 0.9, 300, rng)
	if iv.Point < 90 || iv.Point > 110 {
		t.Fatalf("median estimate %f far from 99.5", iv.Point)
	}
	if iv.Lo > iv.Point || iv.Hi < iv.Point {
		t.Fatalf("interval out of order: %v", iv)
	}
}

// Property: the bootstrap interval always brackets its point estimate
// and widens with confidence.
func TestQuickBootstrapNesting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := make([]float64, 12+rng.Intn(20))
		for i := range samples {
			samples[i] = rng.Float64() * 100
		}
		lo := BootstrapMean(samples, 0.5, 400, rand.New(rand.NewSource(seed)))
		hi := BootstrapMean(samples, 0.99, 400, rand.New(rand.NewSource(seed)))
		if lo.Lo > lo.Point || lo.Point > lo.Hi {
			return false
		}
		// Same resample stream: the wider confidence must contain the
		// narrower interval.
		return hi.Lo <= lo.Lo && hi.Hi >= lo.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianAndMAD(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	if m := Median(xs); m != 3 {
		t.Fatalf("median %f, want 3", m)
	}
	// Deviations from 3: 2,1,0,1,97 -> median 1.
	if d := MAD(xs); d != 1 {
		t.Fatalf("MAD %f, want 1", d)
	}
	if MAD(nil) != 0 {
		t.Fatal("MAD(nil) != 0")
	}
}

func TestKendallTauExtremes(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if tau := KendallTau(xs, []float64{10, 20, 30, 40}); tau != 1 {
		t.Fatalf("tau %f, want 1", tau)
	}
	if tau := KendallTau(xs, []float64{40, 30, 20, 10}); tau != -1 {
		t.Fatalf("tau %f, want -1", tau)
	}
	if tau := KendallTau(xs[:1], []float64{1}); tau != 0 {
		t.Fatalf("tau %f, want 0 for single pair", tau)
	}
}

func TestKendallTauMixed(t *testing.T) {
	// One discordant pair among six: tau = (5-1)/6.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, 2, 4, 3}
	want := float64(5-1) / 6
	if tau := KendallTau(xs, ys); math.Abs(tau-want) > 1e-12 {
		t.Fatalf("tau %f, want %f", tau, want)
	}
}

// Property: tau is antisymmetric under reversing one coordinate.
func TestQuickKendallAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
			ys[i] = rng.Float64()
		}
		neg := make([]float64, n)
		for i := range ys {
			neg[i] = -ys[i]
		}
		return math.Abs(KendallTau(xs, ys)+KendallTau(xs, neg)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneIncreasing(t *testing.T) {
	if !MonotoneIncreasing([]float64{1, 2, 3}, []float64{5, 5, 9}) {
		t.Fatal("non-decreasing rejected")
	}
	if MonotoneIncreasing([]float64{1, 2, 3}, []float64{5, 4, 9}) {
		t.Fatal("decreasing accepted")
	}
	// Ties in x are ignored even when y differs there.
	if !MonotoneIncreasing([]float64{1, 1, 2}, []float64{9, 1, 10}) {
		t.Fatal("x-ties not ignored")
	}
}
