// Package analysis provides the statistical tooling behind the
// complexity experiments: log-log least-squares fits of measured costs
// against candidate complexity models (the shape check of Lemma 5),
// plus summary statistics used by the experiment tables.
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Point is one measurement: the workload parameters and the measured
// cost (rounds, messages, ...).
type Point struct {
	N, M int
	Cost float64
}

// Model is a candidate complexity function of (n, m).
type Model struct {
	Name string
	F    func(n, m int) float64
}

// StandardModels returns the candidate set used to classify measured
// growth, ordered from slowest- to fastest-growing on connected graphs.
func StandardModels() []Model {
	return []Model{
		{"n", func(n, m int) float64 { return float64(n) }},
		{"n log n", func(n, m int) float64 { return float64(n) * math.Log2(float64(n)) }},
		{"n^2", func(n, m int) float64 { return float64(n) * float64(n) }},
		{"m n", func(n, m int) float64 { return float64(m) * float64(n) }},
		{"m n log n", func(n, m int) float64 { return float64(m) * float64(n) * math.Log2(float64(n)) }},
		{"m n^2 log n", func(n, m int) float64 {
			return float64(m) * float64(n) * float64(n) * math.Log2(float64(n))
		}},
	}
}

// Fit is the result of regressing log(cost) = a + b·log(model).
type Fit struct {
	Model Model
	// Exponent b: b ≈ 1 means the model matches the growth; b < 1 means
	// the cost grows slower than the model.
	Exponent float64
	// Scale is e^a, the constant factor.
	Scale float64
	// R2 is the coefficient of determination of the log-log regression.
	R2 float64
}

// FitModel regresses the points against one model in log-log space.
// It requires at least two points with distinct model values and
// positive costs; otherwise ok is false.
func FitModel(points []Point, model Model) (Fit, bool) {
	var xs, ys []float64
	for _, p := range points {
		mv := model.F(p.N, p.M)
		if mv <= 0 || p.Cost <= 0 {
			continue
		}
		xs = append(xs, math.Log(mv))
		ys = append(ys, math.Log(p.Cost))
	}
	if len(xs) < 2 {
		return Fit{}, false
	}
	distinct := false
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[0] {
			distinct = true
			break
		}
	}
	if !distinct {
		return Fit{}, false
	}
	a, b, r2 := linreg(xs, ys)
	return Fit{Model: model, Exponent: b, Scale: math.Exp(a), R2: r2}, true
}

// linreg computes the least-squares line y = a + b x and R².
func linreg(xs, ys []float64) (a, b, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	// R² from the correlation coefficient.
	cd := (n*sxx - sx*sx) * (n*syy - sy*sy)
	if cd <= 0 {
		return a, b, 1 // degenerate: all y equal
	}
	r := (n*sxy - sx*sy) / math.Sqrt(cd)
	return a, b, r * r
}

// BestFit tries all models and returns them sorted by how close the
// exponent is to 1 with R² as tiebreak — the model whose growth most
// resembles the data comes first.
func BestFit(points []Point, models []Model) []Fit {
	var fits []Fit
	for _, m := range models {
		if f, ok := FitModel(points, m); ok {
			fits = append(fits, f)
		}
	}
	sort.Slice(fits, func(i, j int) bool {
		di := math.Abs(fits[i].Exponent - 1)
		dj := math.Abs(fits[j].Exponent - 1)
		if di != dj {
			return di < dj
		}
		return fits[i].R2 > fits[j].R2
	})
	return fits
}

// String renders a fit line.
func (f Fit) String() string {
	return fmt.Sprintf("cost ≈ %.3g·(%s)^%.2f (R²=%.3f)", f.Scale, f.Model.Name, f.Exponent, f.R2)
}

// Summary statistics used by the tables.

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-quantile (0<=q<=1) by nearest-rank on a sorted
// copy; 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
