package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Resampling and rank statistics for the experiment reports: percentile
// bootstrap confidence intervals for the table cells (rounds, messages)
// and Kendall rank correlation for monotonicity checks ("rounds grow
// with n") that do not assume a functional form.

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Lo, Point, Hi float64
	Confidence    float64
}

// String renders "point [lo, hi]@conf".
func (iv Interval) String() string {
	return fmt.Sprintf("%.2f [%.2f, %.2f]@%.0f%%", iv.Point, iv.Lo, iv.Hi, iv.Confidence*100)
}

// BootstrapMean returns the percentile-bootstrap confidence interval of
// the sample mean: resamples samples with replacement `resamples` times
// and takes the (1±conf)/2 quantiles of the resampled means. conf must
// be in (0,1); typical use is 0.95 with 1000 resamples.
func BootstrapMean(samples []float64, conf float64, resamples int, rng *rand.Rand) Interval {
	return bootstrapStat(samples, conf, resamples, rng, Mean)
}

// BootstrapQuantile returns the percentile-bootstrap interval of the
// q-quantile of the sample.
func BootstrapQuantile(samples []float64, q, conf float64, resamples int, rng *rand.Rand) Interval {
	return bootstrapStat(samples, conf, resamples, rng, func(xs []float64) float64 {
		return Quantile(xs, q)
	})
}

func bootstrapStat(samples []float64, conf float64, resamples int, rng *rand.Rand, stat func([]float64) float64) Interval {
	if conf <= 0 || conf >= 1 {
		panic("analysis: confidence must be in (0,1)")
	}
	if len(samples) == 0 {
		return Interval{Confidence: conf}
	}
	if resamples < 1 {
		resamples = 1000
	}
	point := stat(samples)
	if len(samples) == 1 {
		return Interval{Lo: point, Point: point, Hi: point, Confidence: conf}
	}
	stats := make([]float64, resamples)
	buf := make([]float64, len(samples))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = samples[rng.Intn(len(samples))]
		}
		stats[r] = stat(buf)
	}
	sort.Float64s(stats)
	alpha := (1 - conf) / 2
	return Interval{
		Lo:         Quantile(stats, alpha),
		Point:      point,
		Hi:         Quantile(stats, 1-alpha),
		Confidence: conf,
	}
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MAD returns the median absolute deviation from the median — the
// robust spread estimate used for outlier flags in the sweep reports.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// KendallTau returns the Kendall rank correlation τ-a between the paired
// samples: (concordant - discordant) / (n choose 2). +1 means strictly
// co-monotone, -1 strictly anti-monotone; ties contribute zero. Panics
// if the slices differ in length; returns 0 for fewer than two pairs.
func KendallTau(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("analysis: KendallTau needs equal-length samples")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	conc, disc := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch prod := dx * dy; {
			case prod > 0:
				conc++
			case prod < 0:
				disc++
			}
		}
	}
	return float64(conc-disc) / float64(n*(n-1)/2)
}

// MonotoneIncreasing reports whether ys is non-decreasing when ordered
// by xs (strict ties in x are ignored) — the weakest useful form of
// "grows with n" used by complexity sanity checks.
func MonotoneIncreasing(xs, ys []float64) bool {
	if len(xs) != len(ys) {
		panic("analysis: MonotoneIncreasing needs equal-length samples")
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	for k := 1; k < len(idx); k++ {
		i, j := idx[k-1], idx[k]
		if xs[i] == xs[j] {
			continue
		}
		if ys[j] < ys[i] {
			return false
		}
	}
	return true
}
