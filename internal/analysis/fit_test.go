package analysis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFitModelExactPower(t *testing.T) {
	// cost = 3·n², fitted against the n² model: exponent 1, scale 3.
	var pts []Point
	for _, n := range []int{8, 16, 32, 64} {
		pts = append(pts, Point{N: n, M: 2 * n, Cost: 3 * float64(n) * float64(n)})
	}
	model := Model{"n^2", func(n, m int) float64 { return float64(n) * float64(n) }}
	fit, ok := FitModel(pts, model)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(fit.Exponent-1) > 1e-9 || math.Abs(fit.Scale-3) > 1e-9 {
		t.Fatalf("exp=%v scale=%v", fit.Exponent, fit.Scale)
	}
	if fit.R2 < 0.9999 {
		t.Fatalf("R2=%v", fit.R2)
	}
}

func TestFitModelSubLinearGrowth(t *testing.T) {
	// cost = n fitted against n²: exponent 0.5.
	var pts []Point
	for _, n := range []int{8, 16, 32, 64} {
		pts = append(pts, Point{N: n, M: n, Cost: float64(n)})
	}
	model := Model{"n^2", func(n, m int) float64 { return float64(n) * float64(n) }}
	fit, ok := FitModel(pts, model)
	if !ok || math.Abs(fit.Exponent-0.5) > 1e-9 {
		t.Fatalf("fit=%+v ok=%v", fit, ok)
	}
}

func TestFitModelRejectsDegenerate(t *testing.T) {
	model := StandardModels()[0]
	if _, ok := FitModel(nil, model); ok {
		t.Fatal("empty input accepted")
	}
	if _, ok := FitModel([]Point{{N: 4, M: 4, Cost: 1}}, model); ok {
		t.Fatal("single point accepted")
	}
	same := []Point{{N: 4, M: 4, Cost: 1}, {N: 4, M: 8, Cost: 2}}
	if _, ok := FitModel(same, model); ok {
		t.Fatal("identical model values accepted")
	}
	zero := []Point{{N: 4, M: 4, Cost: 0}, {N: 8, M: 8, Cost: 0}}
	if _, ok := FitModel(zero, model); ok {
		t.Fatal("zero costs accepted")
	}
}

func TestBestFitPicksGeneratingModel(t *testing.T) {
	// Generate cost = m·n·log2(n): BestFit must rank that model first.
	var pts []Point
	for _, n := range []int{8, 16, 32, 64, 128} {
		m := 3 * n
		pts = append(pts, Point{N: n, M: m,
			Cost: float64(m) * float64(n) * math.Log2(float64(n))})
	}
	fits := BestFit(pts, StandardModels())
	if len(fits) == 0 {
		t.Fatal("no fits")
	}
	if fits[0].Model.Name != "m n log n" {
		t.Fatalf("best model %q, want m n log n (fits: %v)", fits[0].Model.Name, fits)
	}
	if !strings.Contains(fits[0].String(), "m n log n") {
		t.Fatal("String() missing model name")
	}
}

func TestStandardModelsMonotone(t *testing.T) {
	models := StandardModels()
	n, m := 64, 192
	prev := 0.0
	for i, mod := range models {
		v := mod.F(n, m)
		if v <= 0 {
			t.Fatalf("model %s nonpositive", mod.Name)
		}
		if i > 0 && v < prev {
			t.Fatalf("models not ordered at %s", mod.Name)
		}
		prev = v
	}
}

func TestMeanQuantileStddev(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Fatal("mean")
	}
	if Quantile(xs, 0.5) != 2 {
		t.Fatalf("median=%v", Quantile(xs, 0.5))
	}
	if Quantile(xs, 1.0) != 4 || Quantile(xs, 0.0) != 1 {
		t.Fatal("extreme quantiles")
	}
	if Mean(nil) != 0 || Quantile(nil, 0.5) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty stats")
	}
	if math.Abs(Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})-2) > 1e-9 {
		t.Fatalf("stddev=%v", Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

// Property: the log-log fit recovers a planted exponent within epsilon
// for arbitrary positive scales and exponents.
func TestQuickFitRecoversExponent(t *testing.T) {
	f := func(scaleSeed, expSeed uint8) bool {
		scale := 0.5 + float64(scaleSeed)/64.0
		exp := 0.25 + float64(expSeed%32)/16.0 // 0.25 .. 2.2
		var pts []Point
		for _, n := range []int{8, 16, 32, 64} {
			cost := scale * math.Pow(float64(n), exp)
			pts = append(pts, Point{N: n, M: n, Cost: cost})
		}
		model := Model{"n", func(n, m int) float64 { return float64(n) }}
		fit, ok := FitModel(pts, model)
		return ok && math.Abs(fit.Exponent-exp) < 1e-6 && math.Abs(fit.Scale-scale) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
