package graph

import (
	"math/rand"
)

// Additional generators and structural algorithms used by the extended
// workloads and lower-bound computations.

// CompleteBipartite returns K_{a,b}: parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	if a < 1 || b < 1 {
		panic("graph: CompleteBipartite requires positive parts")
	}
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// Barbell returns two cliques of size s joined by a path of length
// bridge (bridge >= 1 edges between the cliques).
func Barbell(s, bridge int) *Graph {
	if s < 2 || bridge < 1 {
		panic("graph: Barbell requires s >= 2, bridge >= 1")
	}
	n := 2*s + bridge - 1
	g := New(n)
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			g.MustAddEdge(i, j)
			g.MustAddEdge(s+bridge-1+i, s+bridge-1+j)
		}
	}
	prev := s - 1
	for k := 0; k < bridge-1; k++ {
		g.MustAddEdge(prev, s+k)
		prev = s + k
	}
	g.MustAddEdge(prev, s+bridge-1)
	return g
}

// BinaryTree returns the complete binary tree with `levels` levels
// (2^levels - 1 nodes). It is its own unique spanning tree (Δ* = 3 for
// levels >= 3).
func BinaryTree(levels int) *Graph {
	if levels < 1 || levels > 24 {
		panic("graph: BinaryTree levels out of range")
	}
	n := (1 << uint(levels)) - 1
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, (v-1)/2)
	}
	return g
}

// Circulant returns the circulant graph C_n(offsets): node i adjacent to
// i±o (mod n) for each offset o. A standard constant-degree expander
// workload when offsets are spread out.
func Circulant(n int, offsets []int) *Graph {
	if n < 3 {
		panic("graph: Circulant requires n >= 3")
	}
	g := New(n)
	for _, o := range offsets {
		if o <= 0 || 2*o > n && o != n/2 {
			// offsets beyond n/2 duplicate smaller ones
			if o <= 0 || o >= n {
				panic("graph: Circulant offset out of range")
			}
		}
		for i := 0; i < n; i++ {
			j := (i + o) % n
			if !g.HasEdge(i, j) && i != j {
				g.MustAddEdge(i, j)
			}
		}
	}
	return g
}

// RandomRegular returns a random d-regular graph on n nodes via the
// pairing model with retries, stitched to connectivity like the
// geometric generator. n*d must be even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if d < 2 || d >= n || n*d%2 != 0 {
		panic("graph: RandomRegular requires 2 <= d < n with n*d even")
	}
	for attempt := 0; attempt < 200; attempt++ {
		g, ok := tryPairing(n, d, rng)
		if ok && g.IsConnected() {
			return g
		}
	}
	// Fall back: ring plus random chords approximating d-regularity.
	// Each probe is bounded so a saturated neighborhood cannot spin forever.
	g := Ring(n)
	for u := 0; u < n; u++ {
		for probes := 0; g.Degree(u) < d && probes < 4*n; probes++ {
			v := rng.Intn(n)
			if v != u && !g.HasEdge(u, v) && g.Degree(v) < d {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// tryPairing attempts one pairing-model sample.
func tryPairing(n, d int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := New(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil, false
		}
		g.MustAddEdge(u, v)
	}
	return g, true
}

// ArticulationPoints returns the cut vertices of g (nodes whose removal
// increases the number of connected components), via an iterative
// Tarjan lowlink DFS.
func (g *Graph) ArticulationPoints() []int {
	n := g.n
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	isArt := make([]bool, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0
	type frame struct{ v, ni, children int }
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		stack := []frame{{v: s}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			adv := false
			for f.ni < len(g.adj[v]) {
				u := g.adj[v][f.ni]
				f.ni++
				if disc[u] == -1 {
					parent[u] = v
					f.children++
					disc[u] = timer
					low[u] = timer
					timer++
					stack = append(stack, frame{v: u})
					adv = true
					break
				} else if u != parent[v] {
					if disc[u] < low[v] {
						low[v] = disc[u]
					}
				}
			}
			if adv {
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[v]; p != -1 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if parent[p] != -1 && low[v] >= disc[p] {
					isArt[p] = true
				}
			}
			if parent[v] == -1 && f.children >= 2 {
				isArt[v] = true
			}
		}
	}
	var out []int
	for v, a := range isArt {
		if a {
			out = append(out, v)
		}
	}
	return out
}

// Bridges returns the bridge edges of g (edges whose removal disconnects
// their component), canonical order.
func (g *Graph) Bridges() []Edge {
	n := g.n
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0
	var out []Edge
	type frame struct{ v, ni int }
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		stack := []frame{{v: s}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			adv := false
			for f.ni < len(g.adj[v]) {
				u := g.adj[v][f.ni]
				f.ni++
				if disc[u] == -1 {
					parent[u] = v
					disc[u] = timer
					low[u] = timer
					timer++
					stack = append(stack, frame{v: u})
					adv = true
					break
				} else if u != parent[v] {
					if disc[u] < low[v] {
						low[v] = disc[u]
					}
				}
			}
			if adv {
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[v]; p != -1 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] > disc[p] {
					out = append(out, Edge{U: p, V: v}.Normalize())
				}
			}
		}
	}
	sortEdges(out)
	return out
}

func sortEdges(es []Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && (es[j].U < es[j-1].U ||
			es[j].U == es[j-1].U && es[j].V < es[j-1].V); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}
