// Package graph provides the undirected-graph substrate used by the
// self-stabilizing minimum-degree spanning tree reproduction: a compact
// adjacency representation, structural queries, connectivity, and the
// workload generators from which every experiment builds its topology.
//
// Nodes are identified by dense integer IDs 0..N-1. The protocol layer
// treats these IDs as the unique node identifiers of the paper's model
// (total order, min-ID root election); RelabelRandom can permute them to
// decouple topology position from ID order.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between nodes U and V. Canonical form has
// U < V; Normalize returns that form.
type Edge struct {
	U, V int
}

// Normalize returns the edge with endpoints ordered so that U < V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", x, e))
}

// String renders the edge as "{u,v}".
func (e Edge) String() string { return fmt.Sprintf("{%d,%d}", e.U, e.V) }

// Graph is a simple undirected graph over nodes 0..N-1. The zero value is
// an empty graph with no nodes; use New to allocate one with n nodes.
// Adjacency lists are kept sorted so iteration order is deterministic.
type Graph struct {
	n   int
	adj [][]int
	m   int
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// valid panics if u is out of range.
func (g *Graph) valid(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}

// AddEdge inserts the undirected edge {u,v}. Self-loops and duplicate
// edges are rejected with an error (the paper's model is a simple graph).
func (g *Graph) AddEdge(u, v int) error {
	g.valid(u)
	g.valid(v)
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.insert(u, v)
	g.insert(v, u)
	g.m++
	return nil
}

// MustAddEdge is AddEdge but panics on error; for use by generators and
// tests that construct graphs from known-good edge sets.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// insert places v into u's sorted adjacency list.
func (g *Graph) insert(u, v int) {
	lst := g.adj[u]
	i := sort.SearchInts(lst, v)
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = v
	g.adj[u] = lst
}

// RemoveEdge deletes the undirected edge {u,v} if present and reports
// whether it was removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.valid(u)
	g.valid(v)
	if !g.HasEdge(u, v) {
		return false
	}
	g.remove(u, v)
	g.remove(v, u)
	g.m--
	return true
}

func (g *Graph) remove(u, v int) {
	lst := g.adj[u]
	i := sort.SearchInts(lst, v)
	g.adj[u] = append(lst[:i], lst[i+1:]...)
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	g.valid(u)
	g.valid(v)
	lst := g.adj[u]
	i := sort.SearchInts(lst, v)
	return i < len(lst) && lst[i] == v
}

// Neighbors returns u's adjacency list in increasing order. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int {
	g.valid(u)
	return g.adj[u]
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	g.valid(u)
	return len(g.adj[u])
}

// MaxDegree returns the maximum node degree δ of the graph (0 for an
// empty or edgeless graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum node degree of the graph. It returns 0
// for a graph with no nodes.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := len(g.adj[0])
	for u := 1; u < g.n; u++ {
		if d := len(g.adj[u]); d < min {
			min = d
		}
	}
	return min
}

// Edges returns all edges in canonical (U<V) order, sorted
// lexicographically. The slice is freshly allocated.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, Edge{u, v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for u := 0; u < g.n; u++ {
		c.adj[u] = append([]int(nil), g.adj[u]...)
	}
	return c
}

// Equal reports whether g and h have identical node and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for i, v := range g.adj[u] {
			if h.adj[u][i] != v {
				return false
			}
		}
	}
	return true
}

// IsConnected reports whether the graph is connected. The empty graph and
// the single-node graph are connected.
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.componentOf(0)) == g.n
}

// componentOf returns the nodes reachable from start (including start) via
// an iterative BFS.
func (g *Graph) componentOf(start int) []int {
	seen := make([]bool, g.n)
	queue := []int{start}
	seen[start] = true
	var out []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		out = append(out, u)
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}

// Components returns the connected components as slices of node IDs, each
// sorted, ordered by their smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for u := 0; u < g.n; u++ {
		if seen[u] {
			continue
		}
		comp := g.componentOf(u)
		sort.Ints(comp)
		for _, v := range comp {
			seen[v] = true
		}
		comps = append(comps, comp)
	}
	return comps
}

// BFSFrom runs a breadth-first search from root and returns parent and
// distance arrays. Unreachable nodes have parent -1 and distance -1; the
// root has parent equal to itself and distance 0.
func (g *Graph) BFSFrom(root int) (parent, dist []int) {
	g.valid(root)
	parent = make([]int, g.n)
	dist = make([]int, g.n)
	for i := range parent {
		parent[i] = -1
		dist[i] = -1
	}
	parent[root] = root
	dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if parent[v] == -1 {
				parent[v] = u
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return parent, dist
}

// Diameter returns the graph diameter (longest shortest path) computed by
// BFS from every node; -1 if the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if g.n == 0 || !g.IsConnected() {
		return -1
	}
	diam := 0
	for u := 0; u < g.n; u++ {
		_, dist := g.BFSFrom(u)
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// DegreeHistogram returns a map from degree to the number of nodes with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[len(g.adj[u])]++
	}
	return h
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.n, g.m)
}

// FromEdges builds a graph with n nodes and the given edges. It returns an
// error on any invalid edge.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// IsBridge reports whether removing edge {u,v} would disconnect the
// component containing u and v. The edge must exist.
func (g *Graph) IsBridge(u, v int) bool {
	if !g.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: IsBridge on missing edge {%d,%d}", u, v))
	}
	g.RemoveEdge(u, v)
	reach := g.componentOf(u)
	g.MustAddEdge(u, v)
	for _, w := range reach {
		if w == v {
			return false
		}
	}
	return true
}
