package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	for u := 0; u < 5; u++ {
		if g.Degree(u) != 0 {
			t.Errorf("node %d: degree %d, want 0", u, g.Degree(u))
		}
	}
}

func TestAddEdgeBasic(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.M() != 1 {
		t.Fatalf("m=%d, want 1", g.M())
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	if err := g.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if g.M() != 1 {
		t.Fatalf("m=%d after duplicate, want 1", g.M())
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range node")
		}
	}()
	New(2).MustAddEdge(0, 5)
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge returned false for present edge")
	}
	if g.HasEdge(0, 1) || g.M() != 1 {
		t.Fatal("edge not removed")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge returned true for absent edge")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(6)
	for _, v := range []int{5, 2, 4, 1} {
		g.MustAddEdge(3, v)
	}
	nbrs := g.Neighbors(3)
	want := []int{1, 2, 4, 5}
	if len(nbrs) != len(want) {
		t.Fatalf("neighbors %v, want %v", nbrs, want)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("neighbors %v, want %v", nbrs, want)
		}
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(4)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(3, 1)
	for _, e := range g.Edges() {
		if e.U >= e.V {
			t.Errorf("edge %v not canonical", e)
		}
	}
	if len(g.Edges()) != 2 {
		t.Fatalf("got %d edges, want 2", len(g.Edges()))
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{3, 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other(5) should panic")
		}
	}()
	e.Other(5)
}

func TestEdgeNormalize(t *testing.T) {
	if (Edge{5, 2}).Normalize() != (Edge{2, 5}) {
		t.Fatal("Normalize failed")
	}
	if (Edge{2, 5}).Normalize() != (Edge{2, 5}) {
		t.Fatal("Normalize changed canonical edge")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Ring(5)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.RemoveEdge(0, 1)
	if g.Equal(c) || !g.HasEdge(0, 1) {
		t.Fatal("clone not independent")
	}
}

func TestConnectivity(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	g.MustAddEdge(1, 2)
	if !g.IsConnected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestSingleNodeConnected(t *testing.T) {
	if !New(1).IsConnected() || !New(0).IsConnected() {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestBFSFrom(t *testing.T) {
	g := Path(5)
	parent, dist := g.BFSFrom(0)
	for i := 0; i < 5; i++ {
		if dist[i] != i {
			t.Errorf("dist[%d]=%d, want %d", i, dist[i], i)
		}
	}
	if parent[0] != 0 || parent[3] != 2 {
		t.Errorf("parents wrong: %v", parent)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	parent, dist := g.BFSFrom(0)
	if parent[2] != -1 || dist[2] != -1 {
		t.Fatal("unreachable node should have parent/dist -1")
	}
}

func TestDiameter(t *testing.T) {
	if d := Path(6).Diameter(); d != 5 {
		t.Errorf("path diameter %d, want 5", d)
	}
	if d := Complete(5).Diameter(); d != 1 {
		t.Errorf("K5 diameter %d, want 1", d)
	}
	if d := Ring(6).Diameter(); d != 3 {
		t.Errorf("C6 diameter %d, want 3", d)
	}
	g := New(3)
	if d := g.Diameter(); d != -1 {
		t.Errorf("disconnected diameter %d, want -1", d)
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star(6)
	if g.MaxDegree() != 5 || g.MinDegree() != 1 {
		t.Fatalf("star degrees max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	h := g.DegreeHistogram()
	if h[5] != 1 || h[1] != 5 {
		t.Fatalf("histogram %v", h)
	}
}

func TestIsBridge(t *testing.T) {
	g := Lollipop(4, 3)
	if !g.IsBridge(3, 4) {
		t.Fatal("tail edge should be a bridge")
	}
	if g.IsBridge(0, 1) {
		t.Fatal("clique edge should not be a bridge")
	}
	// IsBridge must not mutate.
	if !g.HasEdge(3, 4) || !g.HasEdge(0, 1) {
		t.Fatal("IsBridge mutated graph")
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%d", g.M())
	}
	if _, err := FromEdges(2, []Edge{{0, 0}}); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestRoundTripSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomGnp(20, 0.2, rng)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("round trip changed graph")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                      // no node count
		"e 0 1\n",               // edge before n
		"n 2\nn 3\n",            // duplicate n
		"n 2\ne 0 5\n",          // out of range
		"n 2\ne 0\n",            // malformed edge
		"n 2\nx 1 2\n",          // unknown directive
		"n 2\ne 0 1\ne 0 1\n",   // duplicate edge
		"n notanumber\n",        // bad count
		"n 3\ne 1 1\n",          // self loop
		"n 3\ne one two\n",      // non-numeric edge
		"n 3\ne 0 1 extra ok\n", // too many fields
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: no error", c)
		}
	}
}

func TestReadSkipsComments(t *testing.T) {
	g, err := Read(strings.NewReader("# hello\nn 3\n\n# mid\ne 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 1 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
}

func TestDOT(t *testing.T) {
	g := Path(3)
	dot := g.DOT("p", map[Edge]bool{{0, 1}: true})
	if !strings.Contains(dot, "0 -- 1 [style=bold]") {
		t.Errorf("tree edge not bold:\n%s", dot)
	}
	if !strings.Contains(dot, "1 -- 2;") {
		t.Errorf("non-tree edge missing:\n%s", dot)
	}
}

// Property: handshake lemma holds for random graphs.
func TestQuickHandshake(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := RandomGnp(n, rng.Float64(), rng)
		sum := 0
		for u := 0; u < n; u++ {
			sum += g.Degree(u)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: adjacency symmetry for random graphs.
func TestQuickSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := RandomGnp(n, rng.Float64()*0.5, rng)
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: components partition the node set.
func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		g := New(n)
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		seen := make(map[int]bool)
		for _, comp := range g.Components() {
			for _, u := range comp {
				if seen[u] {
					return false
				}
				seen[u] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
