package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.M() != 4 || !g.IsConnected() {
		t.Fatalf("path: m=%d connected=%v", g.M(), g.IsConnected())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatal("path degrees wrong")
	}
}

func TestRing(t *testing.T) {
	g := Ring(6)
	if g.M() != 6 {
		t.Fatalf("ring m=%d, want 6", g.M())
	}
	for u := 0; u < 6; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("ring degree(%d)=%d", u, g.Degree(u))
		}
	}
}

func TestRingTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ring(2) should panic")
		}
	}()
	Ring(2)
}

func TestStar(t *testing.T) {
	g := Star(7)
	if g.Degree(0) != 6 || g.M() != 6 {
		t.Fatal("star shape wrong")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 {
		t.Fatalf("K6 m=%d, want 15", g.M())
	}
	if g.MinDegree() != 5 {
		t.Fatal("K6 degree wrong")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid n=%d", g.N())
	}
	// m = rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17
	if g.M() != 17 {
		t.Fatalf("grid m=%d, want 17", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("grid disconnected")
	}
}

func TestTorus(t *testing.T) {
	g := Torus(3, 4)
	if g.M() != 2*12 {
		t.Fatalf("torus m=%d, want 24", g.M())
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("torus degree(%d)=%d", u, g.Degree(u))
		}
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4 n=%d m=%d", g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Fatal("Q4 not 4-regular")
		}
	}
	if !g.IsConnected() {
		t.Fatal("Q4 disconnected")
	}
}

func TestWheel(t *testing.T) {
	g := Wheel(7)
	if g.Degree(0) != 6 {
		t.Fatal("hub degree wrong")
	}
	for u := 1; u < 7; u++ {
		if g.Degree(u) != 3 {
			t.Fatalf("rim degree(%d)=%d, want 3", u, g.Degree(u))
		}
	}
}

func TestRingWithChords(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RingWithChords(12, 5, rng)
	if g.M() != 17 {
		t.Fatalf("m=%d, want 17", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
	// Asking for more chords than possible must clamp, not loop forever.
	h := RingWithChords(5, 1000, rng)
	if h.M() != 10 { // K5
		t.Fatalf("clamped m=%d, want 10", h.M())
	}
}

func TestRandomGnpConnected(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGnp(30, 0.05, rng)
		if !g.IsConnected() {
			t.Fatalf("seed %d: G(n,p) not connected", seed)
		}
		if g.N() != 30 {
			t.Fatalf("n=%d", g.N())
		}
	}
}

func TestRandomGnpDeterministic(t *testing.T) {
	a := RandomGnp(25, 0.2, rand.New(rand.NewSource(42)))
	b := RandomGnp(25, 0.2, rand.New(rand.NewSource(42)))
	if !a.Equal(b) {
		t.Fatal("same seed produced different graphs")
	}
}

func TestRandomGeometricConnected(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGeometric(40, 0.15, rng) // small radius: stitching must kick in
		if !g.IsConnected() {
			t.Fatalf("seed %d: geometric graph not connected", seed)
		}
	}
}

func TestHamiltonianAugmented(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := HamiltonianAugmented(20, 10, rng)
	if g.M() != 19+10 {
		t.Fatalf("m=%d, want 29", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
	// Clamp check.
	h := HamiltonianAugmented(4, 1000, rng)
	if h.M() != 6 {
		t.Fatalf("clamped m=%d, want 6", h.M())
	}
}

func TestStarOfCliques(t *testing.T) {
	g := StarOfCliques(3, 4)
	if g.N() != 13 {
		t.Fatalf("n=%d, want 13", g.N())
	}
	if g.Degree(0) != 3 {
		t.Fatalf("hub degree %d, want 3", g.Degree(0))
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
}

func TestBridgedCliques(t *testing.T) {
	g := BridgedCliques(4, 3)
	if g.N() != 12 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
	// Bridges form a ring through the cliques, so a single bridge edge is
	// not a cut edge, but removing two of them disconnects the graph.
	if g.IsBridge(2, 3) {
		t.Fatal("ring bridge should not be a cut edge")
	}
	h := g.Clone()
	h.RemoveEdge(2, 3)
	if !h.IsBridge(5, 6) {
		t.Fatal("after removing one ring bridge the next must be a cut edge")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, 2)
	if g.N() != 12 || g.M() != 11 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(4, 3)
	if g.N() != 7 || !g.IsConnected() {
		t.Fatal("lollipop wrong")
	}
	if g.Degree(6) != 1 {
		t.Fatal("tail end degree wrong")
	}
}

func TestRelabelRandomPreservesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := Grid(4, 4)
	h := RelabelRandom(g, rng)
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatal("relabel changed size")
	}
	gh, hh := g.DegreeHistogram(), h.DegreeHistogram()
	for d, c := range gh {
		if hh[d] != c {
			t.Fatalf("degree histogram changed: %v vs %v", gh, hh)
		}
	}
	if !h.IsConnected() {
		t.Fatal("relabel broke connectivity")
	}
}

func TestFamiliesAllConnected(t *testing.T) {
	for _, f := range Families() {
		for _, n := range []int{10, 24, 40} {
			rng := rand.New(rand.NewSource(int64(n)))
			g := f.Build(n, rng)
			if !g.IsConnected() {
				t.Errorf("family %s n=%d: not connected", f.Name, n)
			}
			if g.N() < n/2 {
				t.Errorf("family %s n=%d: produced only %d nodes", f.Name, n, g.N())
			}
		}
	}
}

func TestMustFamily(t *testing.T) {
	if MustFamily("grid").Name != "grid" {
		t.Fatal("lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown family should panic")
		}
	}()
	MustFamily("nope")
}

// Property: generators always produce simple graphs (no dup/self edges is
// guaranteed by AddEdge; check edge count consistency instead).
func TestQuickGeneratorEdgeCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		g := HamiltonianAugmented(n, rng.Intn(n), rng)
		return len(g.Edges()) == g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
