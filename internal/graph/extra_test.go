package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(2, 3)
	if g.N() != 5 || g.M() != 6 {
		t.Fatalf("K23 n=%d m=%d", g.N(), g.M())
	}
	if g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatal("bipartition wrong")
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(4, 3)
	if g.N() != 10 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
	// The bridge path edges are bridges.
	bridges := g.Bridges()
	if len(bridges) != 3 {
		t.Fatalf("bridges=%v, want 3", bridges)
	}
}

func TestBarbellDirectJoin(t *testing.T) {
	g := Barbell(3, 1)
	if g.N() != 6 || !g.IsConnected() {
		t.Fatal("barbell-1 wrong")
	}
	if len(g.Bridges()) != 1 {
		t.Fatalf("bridges=%v", g.Bridges())
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(4)
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 3 || g.Degree(14) != 1 {
		t.Fatal("degrees wrong")
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
}

func TestCirculant(t *testing.T) {
	g := Circulant(10, []int{1, 3})
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d)=%d, want 4", v, g.Degree(v))
		}
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
	// Offset n/2 gives a perfect matching layer (degree contribution 1).
	h := Circulant(6, []int{3})
	for v := 0; v < 6; v++ {
		if h.Degree(v) != 1 {
			t.Fatalf("C6(3) degree(%d)=%d", v, h.Degree(v))
		}
	}
}

func TestRandomRegular(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := RandomRegular(16, 4, rng)
		if !g.IsConnected() {
			t.Fatalf("seed %d: disconnected", seed)
		}
		// The pairing model gives exact regularity; the fallback may be
		// slightly irregular but must stay within degree d.
		for v := 0; v < 16; v++ {
			if g.Degree(v) > 4 || g.Degree(v) < 2 {
				t.Fatalf("seed %d: degree(%d)=%d", seed, v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd n*d should panic")
		}
	}()
	RandomRegular(5, 3, rand.New(rand.NewSource(1)))
}

func TestArticulationPointsPath(t *testing.T) {
	g := Path(5)
	aps := g.ArticulationPoints()
	if len(aps) != 3 || aps[0] != 1 || aps[2] != 3 {
		t.Fatalf("path APs %v, want [1 2 3]", aps)
	}
}

func TestArticulationPointsCycleNone(t *testing.T) {
	if aps := Ring(6).ArticulationPoints(); len(aps) != 0 {
		t.Fatalf("ring APs %v, want none", aps)
	}
	if aps := Complete(5).ArticulationPoints(); len(aps) != 0 {
		t.Fatalf("K5 APs %v", aps)
	}
}

func TestArticulationPointsStar(t *testing.T) {
	aps := Star(6).ArticulationPoints()
	if len(aps) != 1 || aps[0] != 0 {
		t.Fatalf("star APs %v, want [0]", aps)
	}
}

func TestArticulationPointsLollipop(t *testing.T) {
	// Lollipop(4,3): clique 0-3, tail 4,5,6: cut vertices 3,4,5.
	aps := Lollipop(4, 3).ArticulationPoints()
	want := map[int]bool{3: true, 4: true, 5: true}
	if len(aps) != 3 {
		t.Fatalf("APs %v", aps)
	}
	for _, v := range aps {
		if !want[v] {
			t.Fatalf("unexpected AP %d in %v", v, aps)
		}
	}
}

func TestBridgesPath(t *testing.T) {
	g := Path(4)
	br := g.Bridges()
	if len(br) != 3 {
		t.Fatalf("bridges %v", br)
	}
}

func TestBridgesRingNone(t *testing.T) {
	if br := Ring(5).Bridges(); len(br) != 0 {
		t.Fatalf("ring bridges %v", br)
	}
}

// Property: Bridges agrees with the brute-force IsBridge check.
func TestQuickBridgesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := RandomGnp(n, 0.25, rng)
		set := make(map[Edge]bool)
		for _, e := range g.Bridges() {
			set[e] = true
		}
		for _, e := range g.Edges() {
			if g.IsBridge(e.U, e.V) != set[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: articulation points agree with brute-force component
// counting.
func TestQuickArticulationAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := RandomGnp(n, 0.3, rng)
		base := len(g.Components())
		set := make(map[int]bool)
		for _, v := range g.ArticulationPoints() {
			set[v] = true
		}
		for v := 0; v < n; v++ {
			// Removing v: count components among the rest.
			if (componentsWithoutNode(g, v) > base) != set[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// componentsWithoutNode counts components of g minus node v, ignoring v
// itself (so an isolated removal of a leaf keeps the count).
func componentsWithoutNode(g *Graph, v int) int {
	n := g.N()
	seen := make([]bool, n)
	seen[v] = true
	count := 0
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		count++
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return count
}
