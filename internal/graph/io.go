package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Serialization: a tiny line-oriented edge-list format and a Graphviz DOT
// exporter, used by cmd/graphgen and the examples.
//
// Format:
//
//	# comment
//	n <nodes>
//	e <u> <v>
//
// Order of "e" lines is irrelevant; "n" must come first.

// WriteTo serializes g in edge-list format.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "n %d\n", g.n)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, e := range g.Edges() {
		n, err = fmt.Fprintf(w, "e %d %d\n", e.U, e.V)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Read parses a graph in edge-list format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate node count", line)
			}
			var n int
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: bad node count", line)
			}
			g = New(n)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before node count", line)
			}
			var u, v int
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: bad edge", line)
			}
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &u, &v); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge: %v", line, err)
			}
			if u < 0 || u >= g.n || v < 0 || v >= g.n {
				return nil, fmt.Errorf("graph: line %d: edge {%d,%d} out of range", line, u, v)
			}
			if err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing node count")
	}
	return g, nil
}

// DOT renders the graph in Graphviz format. If treeEdges is non-nil,
// edges present in the set (canonical form) are drawn bold — used to
// visualize a spanning tree over its graph.
func (g *Graph) DOT(name string, treeEdges map[Edge]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	for u := 0; u < g.n; u++ {
		fmt.Fprintf(&b, "  %d;\n", u)
	}
	for _, e := range g.Edges() {
		if treeEdges != nil && treeEdges[e.Normalize()] {
			fmt.Fprintf(&b, "  %d -- %d [style=bold];\n", e.U, e.V)
		} else {
			fmt.Fprintf(&b, "  %d -- %d;\n", e.U, e.V)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
