package graph_test

import (
	"fmt"
	"math/rand"

	"mdst/internal/graph"
)

func ExampleGraph_basic() {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 0)
	fmt.Println(g, "connected:", g.IsConnected(), "diameter:", g.Diameter())
	// Output: graph(n=4, m=4) connected: true diameter: 2
}

func ExampleGraph_Bridges() {
	g := graph.Lollipop(3, 2) // triangle + 2-edge tail
	fmt.Println(g.Bridges())
	// Output: [{2,3} {3,4}]
}

func ExampleRandomGnp() {
	g := graph.RandomGnp(10, 0.3, rand.New(rand.NewSource(1)))
	fmt.Println("n:", g.N(), "connected:", g.IsConnected())
	// Output: n: 10 connected: true
}

func ExampleGraph_DegreeHistogram() {
	g := graph.Star(5)
	h := g.DegreeHistogram()
	fmt.Println("leaves:", h[1], "hubs:", h[4])
	// Output: leaves: 4 hubs: 1
}
