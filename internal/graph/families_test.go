package graph

import (
	"math/rand"
	"testing"
)

func TestLookupFamilySweepAndExtras(t *testing.T) {
	if _, ok := LookupFamily("gnp"); !ok {
		t.Fatal("sweep family gnp not found")
	}
	for _, name := range []string{"wheel", "complete", "regular"} {
		f, ok := LookupFamily(name)
		if !ok {
			t.Fatalf("extra family %q not found", name)
		}
		if f.Name != name {
			t.Fatalf("name mismatch: %q", f.Name)
		}
	}
	if _, ok := LookupFamily("nope"); ok {
		t.Fatal("unknown family found")
	}
}

func TestExtraFamiliesBuildConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, f := range ExtraFamilies() {
		for _, n := range []int{8, 17} {
			g := f.Build(n, rng)
			if !g.IsConnected() {
				t.Fatalf("family %s n=%d: disconnected", f.Name, n)
			}
			if g.N() < 4 {
				t.Fatalf("family %s n=%d: only %d nodes", f.Name, n, g.N())
			}
		}
	}
}

func TestExtraFamiliesNotInSweep(t *testing.T) {
	// The extras must not silently join the default experiment sweep:
	// committed table shapes depend on Families() being stable.
	sweep := map[string]bool{}
	for _, f := range Families() {
		sweep[f.Name] = true
	}
	for _, f := range ExtraFamilies() {
		if sweep[f.Name] {
			t.Fatalf("extra family %q shadows a sweep family", f.Name)
		}
	}
	if len(Families()) != 7 {
		t.Fatalf("sweep families = %d, want 7", len(Families()))
	}
}
