package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// This file contains the topology generators used as experiment workloads.
// Each family is motivated in DESIGN.md: rings with chords and geometric
// graphs model the ad-hoc networks of the paper's introduction; G(n,p) and
// Hamiltonian-augmented graphs model P2P overlays; star-of-cliques and
// caterpillar-like instances are adversarial for the minimum-degree
// objective (large gap between a BFS tree degree and Δ*).

// Path returns the path graph 0-1-...-n-1.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// Ring returns the cycle graph on n >= 3 nodes.
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: Ring requires n >= 3")
	}
	g := Path(n)
	g.MustAddEdge(n-1, 0)
	return g
}

// Star returns the star graph with center 0 and n-1 leaves. Its unique
// spanning tree is itself, so Δ* = n-1: a worst case for degree.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

// Complete returns the complete graph K_n. Δ* = 2 for n >= 2 (any
// Hamiltonian path is a spanning tree).
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// Grid returns the rows x cols 2D grid graph.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: Grid requires positive dimensions")
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows x cols 2D torus (grid with wraparound). Requires
// rows, cols >= 3 to stay a simple graph.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus requires rows, cols >= 3")
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.MustAddEdge(id(r, c), id(r, (c+1)%cols))
			g.MustAddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *Graph {
	if d < 0 || d > 20 {
		panic("graph: Hypercube dimension out of range")
	}
	n := 1 << uint(d)
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// Wheel returns the wheel graph: a ring on nodes 1..n-1 plus hub 0
// adjacent to all ring nodes. Requires n >= 4.
func Wheel(n int) *Graph {
	if n < 4 {
		panic("graph: Wheel requires n >= 4")
	}
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
		next := i + 1
		if next == n {
			next = 1
		}
		g.MustAddEdge(i, next)
	}
	return g
}

// RingWithChords returns a ring on n nodes plus chords chosen uniformly at
// random (without duplicates) using rng. The result is always connected;
// it is the sparse "m close to n" workload of experiment E2.
func RingWithChords(n, chords int, rng *rand.Rand) *Graph {
	g := Ring(n)
	maxExtra := n*(n-1)/2 - n
	if chords > maxExtra {
		chords = maxExtra
	}
	for added := 0; added < chords; {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
		added++
	}
	return g
}

// RandomGnp returns an Erdős–Rényi G(n,p) graph, augmented with a uniform
// random spanning-tree skeleton so the result is always connected (the
// paper's model assumes a connected network). rng drives all choices.
func RandomGnp(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	// Connected skeleton: random permutation chain attaching each node to
	// a uniformly random earlier node (a random recursive tree).
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		g.MustAddEdge(perm[i], perm[j])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// RandomGeometric returns a random geometric graph: n points placed
// uniformly in the unit square, edges between points within distance
// radius. Connectivity is ensured by chaining each isolated fragment to
// its nearest neighbor fragment, mimicking a deployed ad-hoc radio
// network with relay placement.
func RandomGeometric(n int, radius float64, rng *rand.Rand) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := New(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				g.MustAddEdge(u, v)
			}
		}
	}
	// Stitch components with the closest inter-component pair until
	// connected.
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			break
		}
		best := Edge{-1, -1}
		bestD := math.Inf(1)
		in0 := make([]bool, n)
		for _, u := range comps[0] {
			in0[u] = true
		}
		for _, u := range comps[0] {
			for v := 0; v < n; v++ {
				if in0[v] {
					continue
				}
				dx, dy := xs[u]-xs[v], ys[u]-ys[v]
				if d := dx*dx + dy*dy; d < bestD {
					bestD = d
					best = Edge{u, v}
				}
			}
		}
		g.MustAddEdge(best.U, best.V)
	}
	return g
}

// HamiltonianAugmented returns a graph that contains a hidden Hamiltonian
// path (so Δ* = 2) plus extra random edges. It is the canonical instance
// family where the Δ*+1 guarantee is non-trivial: an arbitrary spanning
// tree can have a large degree while the optimum is a path.
func HamiltonianAugmented(n, extra int, rng *rand.Rand) *Graph {
	perm := rng.Perm(n)
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(perm[i], perm[i+1])
	}
	maxExtra := n*(n-1)/2 - (n - 1)
	if extra > maxExtra {
		extra = maxExtra
	}
	for added := 0; added < extra; {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
		added++
	}
	return g
}

// StarOfCliques returns k cliques of size s whose node 0 of each clique is
// attached to a central hub (node 0 overall). The hub must have degree k
// in any spanning tree reaching all cliques through it, but each clique
// also carries alternative low-degree routes when bridged; this family
// stresses the blocking-node (Deblock) machinery.
func StarOfCliques(k, s int) *Graph {
	if k < 1 || s < 2 {
		panic("graph: StarOfCliques requires k >= 1, s >= 2")
	}
	n := 1 + k*s
	g := New(n)
	for c := 0; c < k; c++ {
		base := 1 + c*s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				g.MustAddEdge(base+i, base+j)
			}
		}
		g.MustAddEdge(0, base)
	}
	return g
}

// BridgedCliques returns k cliques of size s arranged in a ring, with
// consecutive cliques joined by a single bridge edge. Bridges are forced
// into every spanning tree, while inside a clique a Hamiltonian path
// suffices, so Δ* = 3 for s >= 3 and a naive BFS tree is much worse.
func BridgedCliques(k, s int) *Graph {
	if k < 3 || s < 2 {
		panic("graph: BridgedCliques requires k >= 3, s >= 2")
	}
	n := k * s
	g := New(n)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				g.MustAddEdge(base+i, base+j)
			}
		}
	}
	for c := 0; c < k; c++ {
		u := c*s + s - 1
		v := ((c + 1) % k) * s
		g.MustAddEdge(u, v)
	}
	return g
}

// Caterpillar returns a spine path of length spine with legs leaves
// attached to every spine node. Trees; useful for degree accounting and
// tree-module tests (the graph IS its own unique spanning tree).
func Caterpillar(spine, legs int) *Graph {
	if spine < 1 || legs < 0 {
		panic("graph: Caterpillar requires spine >= 1, legs >= 0")
	}
	n := spine + spine*legs
	g := New(n)
	for i := 0; i+1 < spine; i++ {
		g.MustAddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.MustAddEdge(i, next)
			next++
		}
	}
	return g
}

// Lollipop returns a clique of size s attached to a path of length tail.
func Lollipop(s, tail int) *Graph {
	if s < 2 || tail < 1 {
		panic("graph: Lollipop requires s >= 2, tail >= 1")
	}
	n := s + tail
	g := New(n)
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			g.MustAddEdge(i, j)
		}
	}
	g.MustAddEdge(s-1, s)
	for i := s; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// RelabelRandom returns a copy of g with node IDs permuted uniformly at
// random. The protocol elects the minimum ID as root, so relabeling
// decouples the root position from the topology.
func RelabelRandom(g *Graph, rng *rand.Rand) *Graph {
	perm := rng.Perm(g.N())
	h := New(g.N())
	for _, e := range g.Edges() {
		h.MustAddEdge(perm[e.U], perm[e.V])
	}
	return h
}

// Family names a generator for table-driven experiments.
type Family struct {
	Name string
	// Build returns a connected graph with approximately n nodes (exact
	// node count may be rounded by the family's structure).
	Build func(n int, rng *rand.Rand) *Graph
	// CanonicalRing marks families whose every instance contains the
	// canonical ring edges {i, (i+1) mod n} by construction. Such a graph
	// carries a constructive Δ* witness: the path 0-1-…-(n-1) is a
	// spanning tree of degree 2 (the optimum for any spanning tree), so
	// Δ* = 2 and the Δ*+1 bracket is 3 with no sequential reduction
	// needed. Large-n consumers (the scale sweep's event ladder, the
	// StartPath preload) rely on this flag where running the
	// Fürer–Raghavachari oracle on the instance is far too slow.
	CanonicalRing bool
}

// Families returns the standard workload families used across the
// experiment suite, in a fixed order.
func Families() []Family {
	return []Family{
		{Name: "ring+chords", Build: func(n int, rng *rand.Rand) *Graph {
			return RingWithChords(n, n/2, rng)
		}, CanonicalRing: true},
		{Name: "grid", Build: func(n int, rng *rand.Rand) *Graph {
			side := int(math.Round(math.Sqrt(float64(n))))
			if side < 2 {
				side = 2
			}
			return Grid(side, side)
		}},
		{Name: "hypercube", Build: func(n int, rng *rand.Rand) *Graph {
			d := 1
			for (1 << uint(d+1)) <= n {
				d++
			}
			return Hypercube(d)
		}},
		{Name: "gnp", Build: func(n int, rng *rand.Rand) *Graph {
			p := 2.0 * math.Log(float64(n)) / float64(n)
			return RandomGnp(n, p, rng)
		}},
		{Name: "geometric", Build: func(n int, rng *rand.Rand) *Graph {
			r := 1.6 * math.Sqrt(math.Log(float64(n))/float64(n))
			return RandomGeometric(n, r, rng)
		}},
		{Name: "ham-augmented", Build: func(n int, rng *rand.Rand) *Graph {
			return HamiltonianAugmented(n, 2*n, rng)
		}},
		{Name: "star-of-cliques", Build: func(n int, rng *rand.Rand) *Graph {
			s := 4
			k := (n - 1) / s
			if k < 2 {
				k = 2
			}
			return StarOfCliques(k, s)
		}},
	}
}

// ExtraFamilies returns additional named generators available to the
// CLIs by name but excluded from the default experiment sweep (they are
// either degenerate for the sweep — complete graphs converge trivially —
// or redundant with a sweep family).
func ExtraFamilies() []Family {
	return []Family{
		{Name: "wheel", Build: func(n int, rng *rand.Rand) *Graph {
			if n < 4 {
				n = 4
			}
			return Wheel(n)
		}},
		{Name: "complete", Build: func(n int, rng *rand.Rand) *Graph {
			return Complete(n)
		}},
		{Name: "regular", Build: func(n int, rng *rand.Rand) *Graph {
			if n < 5 {
				n = 5
			}
			d := 4
			if n*d%2 != 0 {
				n++
			}
			return RandomRegular(n, d, rng)
		}},
	}
}

// LookupFamily returns the named family (sweep families first, then the
// extras) and whether it exists.
func LookupFamily(name string) (Family, bool) {
	for _, f := range Families() {
		if f.Name == name {
			return f, true
		}
	}
	for _, f := range ExtraFamilies() {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// MustFamily returns the named family or panics.
func MustFamily(name string) Family {
	f, ok := LookupFamily(name)
	if !ok {
		panic(fmt.Sprintf("graph: unknown family %q", name))
	}
	return f
}
