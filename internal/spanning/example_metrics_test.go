package spanning_test

import (
	"fmt"
	"math/rand"

	"mdst/internal/graph"
	"mdst/internal/spanning"
)

// ExamplePruferEncode shows the tree/sequence bijection on a star.
func ExamplePruferEncode() {
	g := graph.Star(5) // hub 0, leaves 1..4
	tr := spanning.BFSTree(g, 0)
	fmt.Println(spanning.PruferEncode(tr))
	// Output: [0 0 0]
}

// ExampleTree_Center finds the middle of a path.
func ExampleTree_Center() {
	tr := spanning.BFSTree(graph.Path(7), 0)
	fmt.Println(tr.Center())
	// Output: [3]
}

// ExampleRandomLabeledTree samples a uniform labeled tree.
func ExampleRandomLabeledTree() {
	tr, _ := spanning.RandomLabeledTree(20, rand.New(rand.NewSource(1)))
	fmt.Println("nodes:", tr.Graph().N(), "edges:", len(tr.Edges()), "valid:", tr.Validate() == nil)
	// Output: nodes: 20 edges: 19 valid: true
}
