package spanning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdst/internal/graph"
)

func TestPruferEncodePath(t *testing.T) {
	// Path 0-1-2-3: removing leaves 0,1 yields sequence [1,2].
	g := graph.Path(4)
	tr := BFSTree(g, 0)
	seq := PruferEncode(tr)
	if len(seq) != 2 || seq[0] != 1 || seq[1] != 2 {
		t.Fatalf("seq = %v, want [1 2]", seq)
	}
}

func TestPruferEncodeStar(t *testing.T) {
	// Star with hub 0 and 4 leaves: sequence is [0,0,0].
	g := graph.Star(5)
	tr := BFSTree(g, 0)
	seq := PruferEncode(tr)
	if len(seq) != 3 {
		t.Fatalf("len = %d", len(seq))
	}
	for _, v := range seq {
		if v != 0 {
			t.Fatalf("seq = %v, want all zeros", seq)
		}
	}
}

func TestPruferDecodeInverseOfEncode(t *testing.T) {
	// Round trip: decode(encode(T)) has the same edge set as T.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(30)
		tr, err := RandomLabeledTree(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		seq := PruferEncode(tr)
		back, err := PruferDecode(seq)
		if err != nil {
			t.Fatal(err)
		}
		want := tr.EdgeSet()
		got := back.EdgeSet()
		if len(want) != len(got) {
			t.Fatalf("trial %d: edge counts differ: %d vs %d", trial, len(want), len(got))
		}
		for e := range want {
			if !got[e] {
				t.Fatalf("trial %d: edge %v missing after round trip", trial, e)
			}
		}
	}
}

// Property: every sequence in range decodes to a valid tree whose code
// is the sequence itself (the bijection, decode-then-encode direction).
func TestQuickPruferBijection(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 30 {
			raw = raw[:30]
		}
		n := len(raw) + 2
		seq := make([]int, len(raw))
		for i, b := range raw {
			seq[i] = int(b) % n
		}
		tr, err := PruferDecode(seq)
		if err != nil || tr.Validate() != nil {
			return false
		}
		got := PruferEncode(tr)
		if len(got) != len(seq) {
			return false
		}
		for i := range seq {
			if got[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: node v appears deg(v)-1 times in the Prüfer sequence.
func TestQuickPruferDegreeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		tr, err := RandomLabeledTree(n, rng)
		if err != nil {
			return false
		}
		seq := PruferEncode(tr)
		count := make([]int, n)
		for _, v := range seq {
			count[v]++
		}
		for v := 0; v < n; v++ {
			if count[v] != tr.Degree(v)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPruferDecodeRejectsOutOfRange(t *testing.T) {
	if _, err := PruferDecode([]int{5}); err == nil {
		t.Fatal("out-of-range symbol accepted")
	}
	if _, err := PruferDecode([]int{-1}); err == nil {
		t.Fatal("negative symbol accepted")
	}
}

func TestRandomLabeledTreeSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3} {
		tr, err := RandomLabeledTree(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Graph().N() != n {
			t.Fatalf("n=%d: got %d nodes", n, tr.Graph().N())
		}
	}
	if _, err := RandomLabeledTree(0, rng); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// Uniformity smoke check: over the 16 labeled trees on 4 nodes, a large
// sample should hit every shape with roughly equal frequency.
func TestRandomLabeledTreeUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	const trials = 4800
	for i := 0; i < trials; i++ {
		tr, err := RandomLabeledTree(4, rng)
		if err != nil {
			t.Fatal(err)
		}
		seq := PruferEncode(tr)
		key := string(rune('0'+seq[0])) + string(rune('0'+seq[1]))
		counts[key]++
	}
	if len(counts) != 16 {
		t.Fatalf("only %d of 16 codes seen", len(counts))
	}
	for key, c := range counts {
		if c < trials/16/2 || c > trials/16*2 {
			t.Fatalf("code %s count %d far from uniform %d", key, c, trials/16)
		}
	}
}
